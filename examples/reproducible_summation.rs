//! Reproducible parallel summation — the climate-modeling motivation from
//! the paper's introduction (He & Ding 2001: accurate arithmetic for
//! numerical reproducibility in parallel applications).
//!
//! Summing the same numbers in different orders gives different f64
//! results (floating-point addition is not associative), so runs on
//! different thread counts are not bit-reproducible. Accumulating in
//! extended precision makes the result insensitive to summation order far
//! below the f64 rounding floor — every ordering rounds to the *same* f64.
//!
//! Run with: `cargo run --release --example reproducible_summation`

use multifloats::{F64x2, F64x4, MpFloat};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn shuffled(values: &[f64], seed: u64) -> Vec<f64> {
    let mut v = values.to_vec();
    let mut rng = SmallRng::seed_from_u64(seed);
    for i in (1..v.len()).rev() {
        let j = rng.gen_range(0..=i);
        v.swap(i, j);
    }
    v
}

/// Simulate a parallel reduction: split into `chunks` partial sums, then
/// combine (this is what changes between machine configurations).
fn chunked_sum_f64(values: &[f64], chunks: usize) -> f64 {
    let per = values.len().div_ceil(chunks);
    values.chunks(per).map(|c| c.iter().sum::<f64>()).sum()
}

fn chunked_sum_mf2(values: &[f64], chunks: usize) -> f64 {
    let per = values.len().div_ceil(chunks);
    values
        .chunks(per)
        .map(|c| c.iter().fold(F64x2::ZERO, |acc, &v| acc.add_scalar(v)))
        .fold(F64x2::ZERO, |a, b| a + b)
        .to_f64()
}

fn chunked_sum_mf4(values: &[f64], chunks: usize) -> f64 {
    let per = values.len().div_ceil(chunks);
    values
        .chunks(per)
        .map(|c| c.iter().fold(F64x4::ZERO, |acc, &v| acc.add_scalar(v)))
        .fold(F64x4::ZERO, |a, b| a + b)
        .to_f64()
}

fn main() {
    let n = 1_000_000;
    let mut rng = SmallRng::seed_from_u64(2026);
    // Hostile distribution: nine orders of magnitude plus sign cancellation.
    let values: Vec<f64> = (0..n)
        .map(|_| {
            let mag = 10f64.powi(rng.gen_range(-5..5));
            rng.gen_range(-1.0..1.0) * mag
        })
        .collect();

    let exact = MpFloat::exact_sum(&values);
    println!("exact sum     = {}", exact.to_decimal_string(25));
    println!("(n = {n}, magnitudes spanning 1e-5..1e4)\n");

    let orders: Vec<Vec<f64>> = (0..4).map(|s| shuffled(&values, s)).collect();
    let chunkings = [1usize, 7, 64, 1024];

    let mut f64_results = std::collections::BTreeSet::new();
    let mut mf2_results = std::collections::BTreeSet::new();
    let mut mf4_results = std::collections::BTreeSet::new();
    for ord in &orders {
        for &ch in &chunkings {
            f64_results.insert(chunked_sum_f64(ord, ch).to_bits());
            mf2_results.insert(chunked_sum_mf2(ord, ch).to_bits());
            mf4_results.insert(chunked_sum_mf4(ord, ch).to_bits());
        }
    }

    let describe = |name: &str, set: &std::collections::BTreeSet<u64>| {
        let any = f64::from_bits(*set.iter().next().unwrap());
        let err =
            (MpFloat::from_f64(any, 53).sub(&exact, 300)).abs().to_f64() / exact.abs().to_f64();
        println!(
            "{name:<18} {} distinct result(s) over {} order/chunking configs; rel err of one: {err:.2e}",
            set.len(),
            orders.len() * chunkings.len()
        );
    };
    describe("f64:", &f64_results);
    describe("F64x2 accum:", &mf2_results);
    describe("F64x4 accum:", &mf4_results);

    println!(
        "\nExtended-precision accumulation is bit-reproducible across orderings\n\
         because every partial sum carries enough precision that the final\n\
         rounding to f64 is unambiguous — f64 alone gives a different answer\n\
         per configuration."
    );
}
