//! Evaluating the Wilkinson polynomial near its roots — a classic
//! demonstration of why extended precision matters for polynomial and
//! eigenvalue computations (the paper's §4.2 discusses the related
//! eigensolver-degradation problem for complex arithmetic).
//!
//! `w(x) = Π_{k=1..20} (x - k)` expanded into monomial coefficients has
//! coefficients up to 20! ≈ 2.4e18; evaluating it near x = 20 in f64 loses
//! every significant digit to cancellation. Horner evaluation in octuple
//! precision recovers the true values and lets Newton's method converge to
//! the correct roots.
//!
//! Run with: `cargo run --release --example polynomial_roots`

use multifloats::{F64x4, MpFloat};

/// Coefficients of Π (x - k), k = 1..=degree, lowest power first,
/// computed exactly in the oracle type (they are integers).
fn wilkinson_coeffs(degree: usize) -> Vec<MpFloat> {
    let prec = 600;
    let mut c = vec![MpFloat::from_f64(1.0, prec)];
    for k in 1..=degree {
        // multiply by (x - k)
        let mut next = vec![MpFloat::zero(prec); c.len() + 1];
        for (i, ci) in c.iter().enumerate() {
            next[i + 1] = next[i + 1].add(ci, prec);
            next[i] = next[i].sub(&ci.mul(&MpFloat::from_f64(k as f64, prec), prec), prec);
        }
        c = next;
    }
    c
}

fn horner_f64(c: &[f64], x: f64) -> f64 {
    c.iter().rev().fold(0.0, |acc, &ci| acc * x + ci)
}

fn horner_mf(c: &[F64x4], x: F64x4) -> F64x4 {
    c.iter().rev().fold(F64x4::ZERO, |acc, &ci| acc * x + ci)
}

fn main() {
    let degree = 20;
    let coeffs_mp = wilkinson_coeffs(degree);
    // The coefficients are exact integers up to 20! — representable in
    // F64x4 exactly, but NOT in f64 (20! needs 62 bits).
    let coeffs_f64: Vec<f64> = coeffs_mp.iter().map(|c| c.to_f64()).collect();
    let coeffs_mf: Vec<F64x4> = coeffs_mp.iter().map(F64x4::from_mp).collect();

    println!("Wilkinson polynomial w(x) = prod (x-k), k=1..{degree}\n");
    println!(
        "{:>6} {:>16} {:>16} {:>16}",
        "x", "f64 Horner", "F64x4 Horner", "true value"
    );
    for &x in &[10.5f64, 15.5, 19.5, 19.99, 20.5] {
        let f = horner_f64(&coeffs_f64, x);
        let m = horner_mf(&coeffs_mf, F64x4::from(x)).to_f64();
        // Ground truth: product form is perfectly conditioned.
        let t: f64 = (1..=degree).map(|k| x - k as f64).product();
        println!("{x:>6} {f:>16.6e} {m:>16.6e} {t:>16.6e}");
    }

    // Newton's method on the monomial form, from a perturbed start near
    // the (famously sensitive) root x = 20.
    println!("\nNewton iteration on the monomial form, start x0 = 20.3:");
    let dcoeffs_mf: Vec<F64x4> = coeffs_mf
        .iter()
        .enumerate()
        .skip(1)
        .map(|(i, &c)| c.mul_scalar(i as f64))
        .collect();
    let dcoeffs_f64: Vec<f64> = dcoeffs_mf.iter().map(|c| c.to_f64()).collect();

    let mut xf = 20.3f64;
    let mut xm = F64x4::from(20.3);
    for it in 1..=12 {
        xf -= horner_f64(&coeffs_f64, xf) / horner_f64(&dcoeffs_f64, xf);
        let num = horner_mf(&coeffs_mf, xm);
        let den = horner_mf(&dcoeffs_mf, xm);
        xm -= num / den;
        if it % 3 == 0 {
            println!(
                "  iter {it:>2}: f64 -> {xf:<22.16} F64x4 -> {}",
                xm.to_decimal_string(30)
            );
        }
    }
    println!(
        "\nf64 Newton wanders (the monomial form is numerically singular in\n\
         double precision); octuple-precision Horner converges to the exact\n\
         root x = 20."
    );
}
