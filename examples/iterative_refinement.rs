//! Iterative refinement of an ill-conditioned linear system — the paper's
//! motivating scenario (§1: condition numbers of 10^10–10^20 make plain
//! double-precision solutions meaningless).
//!
//! We solve `H x = b` for a Hilbert-like matrix (condition number grows
//! exponentially with n) three ways:
//!   1. f64 LU factorization alone;
//!   2. f64 LU + iterative refinement with the residual computed in
//!      `F64x2` (quad) precision;
//!   3. the same with `F64x4` (octuple) residuals.
//!
//! The factorization stays in fast machine precision; only the residual
//! `r = b - A·x` is computed in extended precision — the classic
//! mixed-precision pattern the paper's introduction cites (Higham & Mary
//! 2022). Run with: `cargo run --release --example iterative_refinement`

use multifloats::blas::kernels;
use multifloats::{F64x4, MultiFloat};

/// Plain f64 LU with partial pivoting. Returns (LU, perm).
fn lu_factor(a: &[Vec<f64>]) -> (Vec<Vec<f64>>, Vec<usize>) {
    let n = a.len();
    let mut lu: Vec<Vec<f64>> = a.to_vec();
    let mut perm: Vec<usize> = (0..n).collect();
    for k in 0..n {
        // Pivot.
        let (mut pi, mut pv) = (k, lu[k][k].abs());
        for i in k + 1..n {
            if lu[i][k].abs() > pv {
                pi = i;
                pv = lu[i][k].abs();
            }
        }
        lu.swap(k, pi);
        perm.swap(k, pi);
        // Eliminate.
        for i in k + 1..n {
            let f = lu[i][k] / lu[k][k];
            lu[i][k] = f;
            for j in k + 1..n {
                lu[i][j] -= f * lu[k][j];
            }
        }
    }
    (lu, perm)
}

fn lu_solve(lu: &[Vec<f64>], perm: &[usize], b: &[f64]) -> Vec<f64> {
    let n = lu.len();
    let mut x: Vec<f64> = perm.iter().map(|&p| b[p]).collect();
    for i in 1..n {
        for j in 0..i {
            x[i] -= lu[i][j] * x[j];
        }
    }
    for i in (0..n).rev() {
        for j in i + 1..n {
            x[i] -= lu[i][j] * x[j];
        }
        x[i] /= lu[i][i];
    }
    x
}

/// Residual r = b - A x computed in extended precision, returned in f64.
fn residual_extended<T, const N: usize>(a: &[Vec<f64>], b: &[f64], x: &[f64]) -> Vec<f64>
where
    T: multifloats::FloatBase,
    MultiFloat<T, N>: multifloats::blas::Scalar,
{
    use multifloats::blas::Scalar;
    let n = b.len();
    let xe: Vec<MultiFloat<T, N>> = x.iter().map(|&v| Scalar::s_from_f64(v)).collect();
    let mut r = Vec::with_capacity(n);
    for i in 0..n {
        let row: Vec<MultiFloat<T, N>> = a[i].iter().map(|&v| Scalar::s_from_f64(v)).collect();
        let ax = kernels::dot(&row, &xe);
        let ri = MultiFloat::<T, N>::from(b[i]).sub(ax);
        r.push(ri.to_f64());
    }
    r
}

/// Residual in plain f64 (for the baseline refinement).
fn residual_f64(a: &[Vec<f64>], b: &[f64], x: &[f64]) -> Vec<f64> {
    let n = b.len();
    (0..n)
        .map(|i| {
            let mut acc = b[i];
            for j in 0..n {
                acc -= a[i][j] * x[j];
            }
            acc
        })
        .collect()
}

fn norm_inf(v: &[f64]) -> f64 {
    v.iter().fold(0.0, |m, &x| m.max(x.abs()))
}

fn main() {
    let n = 12; // Hilbert condition number ~ 10^16 at n = 12
                // H[i][j] = 1 / (i + j + 1)
    let a: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..n).map(|j| 1.0 / ((i + j + 1) as f64)).collect())
        .collect();
    // Choose x_true = (1, ..., 1); b = H * x_true computed in octuple
    // precision so the experiment's ground truth is solid.
    let x_true = vec![1.0f64; n];
    let b: Vec<f64> = (0..n)
        .map(|i| {
            let row: Vec<F64x4> = a[i].iter().map(|&v| F64x4::from(v)).collect();
            let ones: Vec<F64x4> = x_true.iter().map(|&v| F64x4::from(v)).collect();
            kernels::dot(&row, &ones).to_f64()
        })
        .collect();

    let (lu, perm) = lu_factor(&a);
    let x0 = lu_solve(&lu, &perm, &b);
    println!("Hilbert system, n = {n} (condition number ~1e16)\n");
    println!(
        "plain f64 LU solve:         error_inf = {:.3e}",
        norm_inf(
            &x0.iter()
                .zip(&x_true)
                .map(|(a, b)| a - b)
                .collect::<Vec<_>>()
        )
    );

    for (label, mode) in [("f64", 0usize), ("F64x2", 2), ("F64x4", 4)] {
        let mut x = x0.clone();
        for _ in 0..6 {
            let r = match mode {
                0 => residual_f64(&a, &b, &x),
                2 => residual_extended::<f64, 2>(&a, &b, &x),
                _ => residual_extended::<f64, 4>(&a, &b, &x),
            };
            let d = lu_solve(&lu, &perm, &r);
            for i in 0..n {
                x[i] += d[i];
            }
        }
        let err = norm_inf(
            &x.iter()
                .zip(&x_true)
                .map(|(a, b)| a - b)
                .collect::<Vec<_>>(),
        );
        println!("refined ({label:>5} residual): error_inf = {err:.3e}");
    }

    println!(
        "\nExtended-precision residuals recover the solution to machine accuracy;\n\
         f64 residuals stall at the condition-number floor. Only the residual\n\
         (an extended-precision DOT per row) pays the extra cost."
    );
}
