//! Iterative refinement of an ill-conditioned linear system — the paper's
//! motivating scenario (§1: condition numbers of 10^10–10^20 make plain
//! double-precision solutions meaningless).
//!
//! We solve `H x = b` for the n = 12 Hilbert matrix (condition number
//! ~1e16) with `multifloats::solve`'s mixed-precision refinement: one f64
//! LU factorization, then per step a residual `r = b - H·x` computed in
//! extended precision (`MultiFloat<f64, N>`) and a cheap f64 correction
//! solve — the classic pattern of LAPACK `dsgesv` / Higham & Mary 2022.
//! `N = 1` (plain f64 residuals) is the control: it stalls at the
//! condition-number floor, because the residual itself is computed with
//! ~κ·eps relative error.
//!
//! **Measuring the error honestly:** we manufacture `b = H·1` in octuple
//! precision and round it to f64. That rounding already moves the *stored*
//! system's true solution away from the all-ones vector by ~κ·eps —
//! O(1e-1) here! — so judging refinement against `1` would show every
//! method "stalling" at 3e-1. The fair reference is the exact solution of
//! the f64 system actually being solved, which we get from a 512-bit
//! `MpFloat` elimination. Run with:
//! `cargo run --release --example iterative_refinement`

use multifloats::blas::kernels;
use multifloats::solve::{hilbert, lu_factor, norm_inf, refine_with_factors, RefineOptions};
use multifloats::{F64x4, MpFloat};

const PREC: u32 = 512;

/// Exact solution of the stored f64 system via 512-bit Gaussian
/// elimination (Hilbert is symmetric positive definite, so pivots stay
/// comfortably nonzero without row exchanges).
fn oracle_solve(a: &multifloats::solve::MatrixF64, b: &[f64]) -> Vec<f64> {
    let n = b.len();
    let mp = |v: f64| MpFloat::from_f64(v, PREC);
    let mut m: Vec<Vec<MpFloat>> = (0..n)
        .map(|i| (0..n).map(|j| mp(a.data[i * n + j])).collect())
        .collect();
    let mut rhs: Vec<MpFloat> = b.iter().map(|&v| mp(v)).collect();
    for k in 0..n {
        for i in k + 1..n {
            let f = m[i][k].div(&m[k][k], PREC);
            for j in k..n {
                let t = f.mul(&m[k][j], PREC);
                m[i][j] = m[i][j].sub(&t, PREC);
            }
            let t = f.mul(&rhs[k], PREC);
            rhs[i] = rhs[i].sub(&t, PREC);
        }
    }
    let mut x = vec![MpFloat::zero(PREC); n];
    for i in (0..n).rev() {
        let mut acc = rhs[i].clone();
        for j in i + 1..n {
            let t = m[i][j].mul(&x[j], PREC);
            acc = acc.sub(&t, PREC);
        }
        x[i] = acc.div(&m[i][i], PREC);
    }
    x.iter().map(|v| v.to_f64()).collect()
}

fn main() {
    let n = 12; // Hilbert condition number ~1e16 at n = 12
    let h = hilbert(n);
    // b = H·(1,...,1) computed in octuple precision, then rounded to f64.
    let b: Vec<f64> = (0..n)
        .map(|i| {
            let row: Vec<F64x4> = h.data[i * n..(i + 1) * n]
                .iter()
                .map(|&v| F64x4::from(v))
                .collect();
            let ones = vec![F64x4::from(1.0); n];
            kernels::dot(&row, &ones).to_f64()
        })
        .collect();

    let x_ref = oracle_solve(&h, &b);
    let err = |x: &[f64]| norm_inf(&x.iter().zip(&x_ref).map(|(a, b)| a - b).collect::<Vec<_>>());

    let factors = lu_factor(&h).expect("Hilbert matrix is nonsingular in f64");
    println!("Hilbert system, n = {n} (condition number ~1e16)\n");
    println!(
        "plain f64 LU solve:           error_inf = {:.3e}",
        err(&factors.solve(&b))
    );

    let opts = RefineOptions::default();
    for (label, nn) in [("f64", 1usize), ("F64x2", 2), ("F64x4", 4)] {
        let r = match nn {
            1 => refine_with_factors::<1>(&h, &factors, &b, opts),
            2 => refine_with_factors::<2>(&h, &factors, &b, opts),
            _ => refine_with_factors::<4>(&h, &factors, &b, opts),
        }
        .expect("refinement on a factored system cannot fail");
        println!(
            "refined ({label:>5} residual):   error_inf = {:.3e}   ({} iters, converged = {}, final ||r||_inf = {:.2e})",
            err(&r.x),
            r.iterations,
            r.converged,
            r.residual_norms.last().unwrap()
        );
    }

    println!(
        "\nExtended-precision residuals recover the stored system's solution to\n\
         machine accuracy; f64 residuals stall at the condition-number floor.\n\
         Only the residual (an extended-precision DOT per row, O(n^2) against\n\
         the O(n^3) factorization) pays the extra cost."
    );
}
