//! The paper's §4.2 motivation for commutative multiplication, made
//! concrete: with a *non-commutative* extended-precision product, the
//! complex conjugate product `(a+bi)(a-bi)` acquires a small nonzero
//! imaginary part — rounding noise that eigensolvers then chase. The FPAN
//! multiplication's commutativity layer makes it exactly zero.
//!
//! Run with: `cargo run --release --example complex_commutativity`

use multifloats::core_crate::complex::C64x2;
use multifloats::eft::{fast_two_sum, two_prod};
use multifloats::{F64x2, MultiFloat};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A double-word multiplication WITHOUT the commutativity layer: the cross
/// terms are combined with an FMA whose association depends on operand
/// order (`fma(x0, y1, x1*y0)`), as in several pre-FPAN libraries. Fast —
/// one flop fewer — but `mul_nc(x, y) != mul_nc(y, x)` in the last bits.
fn mul_nc(x: [f64; 2], y: [f64; 2]) -> [f64; 2] {
    let (p, e) = two_prod(x[0], y[0]);
    let cross = x[0].mul_add(y[1], x[1] * y[0]); // order-sensitive!
    let (z0, z1) = fast_two_sum(p, e + cross);
    [z0, z1]
}

fn main() {
    let mut rng = SmallRng::seed_from_u64(7);
    let trials = 100_000;

    let mut nc_nonzero = 0u64;
    let mut nc_worst: f64 = 0.0;
    let mut fpan_nonzero = 0u64;

    for _ in 0..trials {
        let a = F64x2::from(rng.gen_range(-10.0..10.0)).add_scalar(rng.gen_range(-1e-18..1e-18));
        let b = F64x2::from(rng.gen_range(-10.0..10.0)).add_scalar(rng.gen_range(-1e-18..1e-18));

        // Im((a+bi)(a-bi)) = b*a - a*b (as computed; zero in exact math).
        // Non-commutative product:
        let ba = mul_nc(b.components(), a.components());
        let ab = mul_nc(a.components(), b.components());
        let im_nc = MultiFloat::<f64, 2>::from_components_renorm(ba)
            .sub(MultiFloat::from_components_renorm(ab));
        if !im_nc.is_zero() {
            nc_nonzero += 1;
            let denom = a.sqr().add(b.sqr()).to_f64().abs().max(1e-300);
            nc_worst = nc_worst.max(im_nc.abs().to_f64() / denom);
        }

        // FPAN (commutative) product via the Complex type:
        let z = C64x2::new(a, b);
        let p = z.conj_product();
        if !p.im.is_zero() {
            fpan_nonzero += 1;
        }
    }

    println!("conjugate products over {trials} random z = a + bi:\n");
    println!(
        "non-commutative multiply: Im(z * conj z) != 0 in {nc_nonzero} cases \
         ({:.1}%), worst |Im|/|z|^2 = {nc_worst:.2e}",
        100.0 * nc_nonzero as f64 / trials as f64
    );
    println!("FPAN (commutative) multiply: Im(z * conj z) != 0 in {fpan_nonzero} cases");
    assert_eq!(fpan_nonzero, 0);
    println!(
        "\nThe FPAN product is bitwise invariant under operand swap (paper \
         §4.2),\nso the imaginary part cancels *exactly* — no eigensolver \
         ever sees a\nspurious imaginary component."
    );
}
