//! E8 — run the paper's §4.1 discovery procedure: simulated-annealing
//! search for a floating-point accumulation network, starting from an
//! empty network.
//!
//! The search evaluates candidates with the empirical verifier at p = 12
//! (cheap, exact integer reference), then the final network is re-verified
//! at f64 against the `mf-mpsoft` oracle — the same two-tier
//! "test-to-propose, verify-to-accept" structure as the paper's
//! search + SMT pipeline.
//!
//! Run with: `cargo run --release --example fpan_search`

use multifloats::fpan::networks;
use multifloats::fpan::search::{search_addition, search_multiplication, SearchConfig};
use multifloats::fpan::verify::{self, Config};

fn main() {
    println!("Searching for a 2-term addition FPAN (paper §4.1)...\n");
    // The paper reruns the annealer repeatedly and reports convergence
    // across runs; a single seed can end in an unverifiable local minimum,
    // so we retry seeds until a candidate survives strict verification.
    let mut net = multifloats::fpan::Fpan::new(4, vec![0, 2]);
    let mut ok = false;
    for seed in [2025u64, 12345, 777, 31337] {
        let cfg = SearchConfig {
            n: 2,
            q: 2 * 12 - 2, // 2p-2 at the search precision p = 12
            iters: 6000,
            trials: 200,
            seed,
        };
        println!("-- annealing run, seed {seed} --");
        // Search progress streams through mf-telemetry (`search.progress`
        // events): build with `--features telemetry` and set
        // MF_TELEMETRY_LOG=1 to watch each new best candidate live.
        let (n2, ok2) = search_addition(cfg);
        net = n2;
        ok = ok2;
        if ok {
            break;
        }
        println!("  (seed {seed}: no candidate survived strict verification; retrying)");
    }

    println!("\nSearch finished: verified = {ok}");
    println!(
        "Discovered network: size {} depth {}",
        net.size(),
        net.depth()
    );
    let (adds, ts, fts) = net.gate_counts();
    println!("Gates: {adds} add, {ts} TwoSum, {fts} FastTwoSum");
    for (i, g) in net.gates.iter().enumerate() {
        println!("  gate {i}: {:?} ({}, {})", g.kind, g.hi, g.lo);
    }

    // Final acceptance: f64 adversarial verification with the oracle.
    println!("\nRe-verifying at f64 with the exact oracle (30k adversarial trials)...");
    let rep = verify::verify_addition_f64(&net, 2, Config::new(30_000, 2 * 53 - 2, 99));
    println!(
        "  pass = {}, worst observed discarded error = 2^{:.1} (bound 2^-104)",
        rep.pass, rep.worst_error_exp
    );

    let shipped = networks::add_2();
    println!(
        "\nReference: the shipped 2-term network has size {} depth {} \
         (the paper's provably optimal Figure 2 network: size 6, depth 4).",
        shipped.size(),
        shipped.depth()
    );
    if net.size() <= shipped.size() {
        println!("The search matched (or beat) the shipped network's size!");
    } else {
        println!(
            "The search found a correct but larger network — rerun with more \
             iterations or another seed to converge further, exactly as the \
             paper describes its repeated annealing runs."
        );
    }

    // Part 2: multiplication search with the imposed commutativity layer
    // (paper §4.2: "we must deliberately impose the presence of the
    // commutativity layer in our search procedure").
    println!("\n== Searching for a 2-term multiplication accumulation network ==");
    let mcfg = SearchConfig {
        n: 2,
        q: 2 * 12 - 3, // paper bound class 2^-(2p-3)
        iters: 4000,
        trials: 200,
        seed: 4242,
    };
    let (mnet, mok) = search_multiplication(mcfg);
    println!(
        "Multiplication search: verified = {mok}, size {} depth {}",
        mnet.size(),
        mnet.depth()
    );
    println!(
        "(The frozen commutativity prefix has {} gate(s); the shipped optimal \
         network — the paper's Figure 5 — has size 3, depth 3.)",
        multifloats::fpan::networks::commutativity_layer(2).len()
    );
}
