//! Long-time integration of the Lorenz attractor — the nonlinear-dynamics
//! motivation from the paper's introduction (Fantuzzi et al.: rigorous
//! computation for chaotic systems needs precision well beyond double).
//!
//! In a chaotic system, rounding error grows like `exp(λ t)` (λ ≈ 0.9 for
//! Lorenz), so a double-precision trajectory loses *all* accuracy by
//! t ≈ 40: 16 digits / (0.9 · log10(e)) ≈ 41. Extended precision buys time
//! linearly in the number of digits: ~80 time units for quad, ~160 for
//! octuple. This example integrates the same initial condition at three
//! precisions with identical RK4 steps and reports when each diverges from
//! the octuple reference.
//!
//! Run with: `cargo run --release --example lorenz`

use multifloats::{FloatBase, MultiFloat};

#[derive(Clone, Copy)]
struct State<T: FloatBase, const N: usize> {
    x: MultiFloat<T, N>,
    y: MultiFloat<T, N>,
    z: MultiFloat<T, N>,
}

fn deriv<T: FloatBase, const N: usize>(s: &State<T, N>) -> State<T, N> {
    // sigma = 10, rho = 28, beta = 8/3
    let sigma = MultiFloat::<T, N>::from(10.0);
    let rho = MultiFloat::<T, N>::from(28.0);
    let beta = MultiFloat::<T, N>::from(8.0).div_scalar(T::from_f64(3.0));
    State {
        x: sigma.mul(s.y.sub(s.x)),
        y: s.x.mul(rho.sub(s.z)).sub(s.y),
        z: s.x.mul(s.y).sub(beta.mul(s.z)),
    }
}

fn rk4_step<T: FloatBase, const N: usize>(s: &State<T, N>, h: f64) -> State<T, N> {
    let hh = T::from_f64(h);
    let half = T::from_f64(h / 2.0);
    let sixth = T::from_f64(h / 6.0);
    let add_scaled = |a: &State<T, N>, k: &State<T, N>, f: T| State {
        x: a.x.add(k.x.mul_scalar(f)),
        y: a.y.add(k.y.mul_scalar(f)),
        z: a.z.add(k.z.mul_scalar(f)),
    };
    let k1 = deriv(s);
    let k2 = deriv(&add_scaled(s, &k1, half));
    let k3 = deriv(&add_scaled(s, &k2, half));
    let k4 = deriv(&add_scaled(s, &k3, hh));
    let _ = hh;
    State {
        x: s.x.add(
            k1.x.add(k2.x.mul_scalar(T::TWO))
                .add(k3.x.mul_scalar(T::TWO))
                .add(k4.x)
                .mul_scalar(sixth),
        ),
        y: s.y.add(
            k1.y.add(k2.y.mul_scalar(T::TWO))
                .add(k3.y.mul_scalar(T::TWO))
                .add(k4.y)
                .mul_scalar(sixth),
        ),
        z: s.z.add(
            k1.z.add(k2.z.mul_scalar(T::TWO))
                .add(k3.z.mul_scalar(T::TWO))
                .add(k4.z)
                .mul_scalar(sixth),
        ),
    }
}

fn run<T: FloatBase, const N: usize>(t_end: f64, h: f64) -> Vec<(f64, f64, f64, f64)> {
    let mut s = State::<T, N> {
        x: MultiFloat::from(1.0),
        y: MultiFloat::from(1.0),
        z: MultiFloat::from(1.0),
    };
    let steps = (t_end / h) as usize;
    let sample_every = (1.0 / h) as usize;
    let mut out = Vec::new();
    for i in 0..=steps {
        if i % sample_every == 0 {
            out.push((i as f64 * h, s.x.to_f64(), s.y.to_f64(), s.z.to_f64()));
        }
        s = rk4_step(&s, h);
    }
    out
}

fn main() {
    let (t_end, h) = (50.0, 0.002);
    println!("Lorenz attractor, RK4, h = {h}, t in [0, {t_end}]");
    println!("(identical steps; only the arithmetic precision differs)\n");

    let traj1 = run::<f64, 1>(t_end, h); // plain f64
    let traj2 = run::<f64, 2>(t_end, h); // quad
    let traj4 = run::<f64, 4>(t_end, h); // octuple (reference)

    println!(
        "{:>5} {:>14} {:>14}   (|x - x_ref|, reference = F64x4)",
        "t", "f64", "F64x2"
    );
    let mut div1: Option<f64> = None;
    let mut div2: Option<f64> = None;
    for ((p1, p2), p4) in traj1.iter().zip(&traj2).zip(&traj4) {
        let d1 = (p1.1 - p4.1).abs();
        let d2 = (p2.1 - p4.1).abs();
        if p1.0 % 5.0 < h {
            println!("{:>5.0} {:>14.3e} {:>14.3e}", p1.0, d1, d2);
        }
        if d1 > 1.0 && div1.is_none() {
            div1 = Some(p1.0);
        }
        if d2 > 1.0 && div2.is_none() {
            div2 = Some(p2.0);
        }
    }
    println!();
    match div1 {
        Some(t) => println!("f64 trajectory diverged (|dx| > 1) at t ≈ {t:.0}"),
        None => println!("f64 trajectory still tracking at t = {t_end}"),
    }
    match div2 {
        Some(t) => println!("F64x2 trajectory diverged at t ≈ {t:.0}"),
        None => println!(
            "F64x2 trajectory still tracking at t = {t_end} \
             (rounding horizon ~2x the f64 one)"
        ),
    }
    println!(
        "\nChaos amplifies rounding error by e^(0.9 t): every extra 16 digits\n\
         of working precision buys ~40 more time units of trustworthy orbit."
    );
}
