//! Quickstart: the `MultiFloat` API in five minutes.
//!
//! Run with: `cargo run --release --example quickstart`

use multifloats::{F64x2, F64x4, MpFloat};

fn main() {
    println!("== multifloats quickstart ==\n");

    // 1. Construction: from machine floats (exact), integers, or decimal
    //    strings (correctly rounded to the full extended precision).
    let a = F64x2::from(2.0);
    let b: F64x2 = "0.1".parse().unwrap();
    println!("a           = {a}");
    println!("b = \"0.1\"   = {b}   (32+ digits — note it is NOT exactly 1/10)");

    // 2. Arithmetic: +, -, *, /, sqrt at ~106-bit precision, branch-free.
    let c = (a + b) / (a - b);
    println!("(a+b)/(a-b) = {c}");
    println!("sqrt(2)     = {}", a.sqrt());

    // 3. Where f64 fails: catastrophic cancellation.
    //    (1 + 1e-16) - 1 in f64 collapses; F64x2 keeps every bit.
    let one_plus = F64x2::from(1.0) + F64x2::from(1e-16);
    let diff = one_plus - F64x2::from(1.0);
    println!("\n(1 + 1e-16) - 1:");
    #[allow(clippy::eq_op)] // the point of the demo: f64 collapses to 1.0 - 1.0
    let f64_diff = (1.0f64 + 1e-16) - 1.0;
    println!("   f64      = {f64_diff:e}");
    println!("   F64x2    = {:e}", diff.to_f64());

    // 4. Octuple precision (~64 digits) with N = 4 components.
    let pi = F64x4::pi();
    let e = F64x4::e();
    println!("\npi  = {pi}");
    println!("e   = {e}");
    println!("pi^e = {}", pi.powf(e));

    // 5. The components ARE the representation: an unevaluated sum of
    //    doubles, most significant first (paper Eq. 6).
    println!("\npi components: {:?}", pi.components());
    println!("nonoverlapping (paper Eq. 8): {}", pi.is_nonoverlapping());

    // 6. Every result can be checked against the exact limb-based oracle.
    let exact_pi = MpFloat::from_decimal_str(
        "3.14159265358979323846264338327950288419716939937510582097494459",
        300,
    )
    .unwrap();
    let err = pi.to_mp(300).rel_error_vs(&exact_pi);
    println!("\n|pi - oracle| / pi = {err:.3e}   (~2^{:.0})", err.log2());

    // 7. Effective precision by width:
    for (label, digits) in [
        ("F64x2", F64x2::decimal_digits()),
        ("F64x4", F64x4::decimal_digits()),
    ] {
        println!("{label}: ~{digits} decimal digits");
    }
}
