//! Error-free transformations and the `FloatBase` abstraction.
//!
//! This crate provides the building blocks of all extended-precision
//! arithmetic in this workspace (paper §2.3):
//!
//! * [`two_sum`] — Algorithm 1 (Knuth/Møller): `(s, e)` with `s = fl(x + y)`
//!   and `e = (x + y) - s` *exactly*, for any inputs.
//! * [`fast_two_sum`] — Algorithm 3 (Dekker): the 3-operation variant, valid
//!   when `|x| >= |y|` (or either is zero).
//! * [`two_prod`] — Algorithm 2 (FMA-based): `(p, e)` with `p = fl(x * y)` and
//!   `e = x * y - p` exactly.
//! * [`two_prod_dekker`] — the classic Veltkamp/Dekker splitting variant for
//!   hardware without FMA, kept for the ablation study (DESIGN.md §3.2).
//!
//! All transformations are generic over [`FloatBase`], which abstracts the
//! underlying machine format exactly like the paper's `MultiFloat<T, N>`
//! template parameter `T`: the same branch-free kernels run on `f64`
//! (quad/sextuple/octuple precision), `f32` (the GPU substitution of
//! DESIGN.md T3), and the bit-exact soft float used by the FPAN verifier.

pub mod base;
pub mod ops;

pub use base::FloatBase;
pub use ops::{
    fast_two_sum, split, three_sum, three_sum2, two_diff, two_prod, two_prod_dekker, two_square,
    two_sum,
};

#[cfg(test)]
mod tests;
