//! Exactness tests for the error-free transformations.
//!
//! "Exact" is checked by lifting doubles into scaled `i128` integers: any
//! finite `f64` is `±m · 2^(e-52)` with `m < 2^53`, so sums and 53×53-bit
//! products of moderate-exponent values fit in `i128` and can be compared
//! without rounding.

use crate::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Decompose a finite nonzero f64 into `(signed mantissa, ulp exponent)` such
/// that `x == m * 2^k` exactly with `|m| < 2^53`.
fn decompose(x: f64) -> (i64, i32) {
    assert!(x.is_finite());
    if x == 0.0 {
        return (0, 0);
    }
    let bits = x.abs().to_bits();
    let raw_exp = (bits >> 52) as i32;
    let (m, k) = if raw_exp == 0 {
        ((bits & ((1 << 52) - 1)) as i64, -1074)
    } else {
        ((bits & ((1 << 52) - 1) | (1 << 52)) as i64, raw_exp - 1075)
    };
    (if x < 0.0 { -m } else { m }, k)
}

/// `x` as an exact `i128` multiple of `2^scale`. Panics if not representable.
fn to_scaled(x: f64, scale: i32) -> i128 {
    let (m, k) = decompose(x);
    if m == 0 {
        return 0;
    }
    let shift = k - scale;
    if shift >= 0 {
        assert!(shift <= 74, "shift {shift} out of range");
        (m as i128) << shift
    } else {
        // Value is still a multiple of 2^scale iff the mantissa has enough
        // trailing zeros (decompose normalizes small values downward).
        let back = (-shift) as u32;
        assert!(
            m.trailing_zeros() >= back,
            "x = {x:e} is not a multiple of 2^{scale}"
        );
        (m >> back) as i128
    }
}

/// Random f64 with a full-width (top-bit-set) 53-bit mantissa and exponent in
/// `exp_range`, so its ulp exponent is exactly `e - 52` and scaled-integer
/// checks can use a fixed scale.
fn rand_f64(rng: &mut SmallRng, exp_range: core::ops::Range<i32>) -> f64 {
    let m: u64 = (rng.gen::<u64>() >> 11) | (1 << 52);
    let e = rng.gen_range(exp_range);
    let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
    sign * (m as f64) * 2.0f64.powi(e - 52)
}

#[test]
fn two_sum_is_exact_random() {
    let mut rng = SmallRng::seed_from_u64(42);
    for _ in 0..200_000 {
        let x = rand_f64(&mut rng, -25..25);
        let y = rand_f64(&mut rng, -25..25);
        let (s, e) = two_sum(x, y);
        let scale = -80;
        assert_eq!(
            to_scaled(s, scale) + to_scaled(e, scale),
            to_scaled(x, scale) + to_scaled(y, scale),
            "x={x:e} y={y:e}"
        );
        assert_eq!(s, x + y, "s must be the rounded sum");
    }
}

#[test]
fn two_diff_is_exact_random() {
    let mut rng = SmallRng::seed_from_u64(43);
    for _ in 0..100_000 {
        let x = rand_f64(&mut rng, -25..25);
        let y = rand_f64(&mut rng, -25..25);
        let (d, e) = two_diff(x, y);
        let scale = -80;
        assert_eq!(
            to_scaled(d, scale) + to_scaled(e, scale),
            to_scaled(x, scale) - to_scaled(y, scale)
        );
        assert_eq!(d, x - y);
    }
}

#[test]
fn fast_two_sum_exact_when_ordered() {
    let mut rng = SmallRng::seed_from_u64(44);
    for _ in 0..100_000 {
        let a = rand_f64(&mut rng, -25..25);
        let b = rand_f64(&mut rng, -25..25);
        // Order by exponent to satisfy the precondition.
        let (x, y) = if FloatBase::exponent(a) >= FloatBase::exponent(b) {
            (a, b)
        } else {
            (b, a)
        };
        let (s, e) = fast_two_sum(x, y);
        let (s2, e2) = two_sum(x, y);
        assert_eq!(s, s2);
        assert_eq!(e, e2, "x={x:e} y={y:e}");
    }
}

#[test]
fn fast_two_sum_zero_cases() {
    assert_eq!(fast_two_sum(0.0f64, 0.0), (0.0, 0.0));
    assert_eq!(fast_two_sum(0.0f64, 3.5), (3.5, 0.0));
    assert_eq!(fast_two_sum(3.5f64, 0.0), (3.5, 0.0));
}

#[test]
fn two_prod_is_exact_random() {
    let mut rng = SmallRng::seed_from_u64(45);
    for _ in 0..200_000 {
        let x = rand_f64(&mut rng, -12..12);
        let y = rand_f64(&mut rng, -12..12);
        let (p, e) = two_prod(x, y);
        let (mx, kx) = decompose(x);
        let (my, ky) = decompose(y);
        let scale = kx + ky;
        let exact = (mx as i128) * (my as i128);
        assert_eq!(
            to_scaled(p, scale) + to_scaled(e, scale),
            exact,
            "x={x:e} y={y:e}"
        );
        assert_eq!(p, x * y);
    }
}

#[test]
fn two_prod_dekker_matches_fma_variant() {
    let mut rng = SmallRng::seed_from_u64(46);
    for _ in 0..200_000 {
        let x = rand_f64(&mut rng, -100..100);
        let y = rand_f64(&mut rng, -100..100);
        let (p1, e1) = two_prod(x, y);
        let (p2, e2) = two_prod_dekker(x, y);
        assert_eq!(p1, p2);
        assert_eq!(e1, e2, "x={x:e} y={y:e}");
    }
}

#[test]
fn two_square_matches_two_prod() {
    let mut rng = SmallRng::seed_from_u64(47);
    for _ in 0..50_000 {
        let x = rand_f64(&mut rng, -50..50);
        assert_eq!(two_square(x), two_prod(x, x));
    }
}

#[test]
fn split_halves_are_narrow_and_exact() {
    let mut rng = SmallRng::seed_from_u64(48);
    for _ in 0..50_000 {
        let x = rand_f64(&mut rng, -50..50);
        let (hi, lo) = split(x);
        assert_eq!(hi + lo, x, "split must be exact");
        // Each half fits in 27 bits of mantissa => hi*hi, hi*lo etc. exact.
        for half in [hi, lo] {
            if half != 0.0 {
                let (m, _) = decompose(half);
                let m = m.unsigned_abs();
                let width = 64 - m.trailing_zeros() - m.leading_zeros();
                assert!(width <= 27, "x={x:e} half={half:e} width={width}");
            }
        }
    }
}

#[test]
fn three_sum_is_exact() {
    let mut rng = SmallRng::seed_from_u64(49);
    for _ in 0..100_000 {
        let x = rand_f64(&mut rng, -20..20);
        let y = rand_f64(&mut rng, -20..20);
        let z = rand_f64(&mut rng, -20..20);
        let (s, e0, e1) = three_sum(x, y, z);
        let scale = -80;
        // three_sum is exact: s + e0 + e1 == x + y + z as reals. The error
        // terms of the two TwoSums are themselves summed with TwoSum, which
        // is exact, so equality holds at any common scale.
        let lhs = to_scaled(s, scale) + to_scaled(e0, scale) + to_scaled(e1, scale);
        let rhs = to_scaled(x, scale) + to_scaled(y, scale) + to_scaled(z, scale);
        assert_eq!(lhs, rhs);
    }
}

#[test]
fn eft_works_for_f32() {
    let mut rng = SmallRng::seed_from_u64(50);
    for _ in 0..100_000 {
        let x = (rng.gen::<f32>() - 0.5) * 1000.0;
        let y = (rng.gen::<f32>() - 0.5) * 1000.0;
        let (s, e) = two_sum(x, y);
        // Check in f64, which represents f32 sums exactly.
        assert_eq!(s as f64 + e as f64, x as f64 + y as f64);
        let (p, ep) = two_prod(x, y);
        assert_eq!(p as f64 + ep as f64, x as f64 * y as f64);
    }
}

#[test]
fn two_sum_huge_cancellation() {
    // Classic catastrophic-cancellation case: naive sum loses y entirely.
    let x = 1.0e16f64;
    let y = 1.0f64;
    let (s, e) = two_sum(x, y);
    assert_eq!(s + e, 1.0e16 + 1.0); // rounded equality
    assert_eq!(s, x + y);
    // The error term recovers exactly what rounding lost.
    assert_eq!(
        to_scaled(s, -60) + to_scaled(e, -60),
        to_scaled(x, -60) + to_scaled(y, -60)
    );
}

#[test]
fn two_sum_commutative() {
    let mut rng = SmallRng::seed_from_u64(51);
    for _ in 0..50_000 {
        let x = rand_f64(&mut rng, -30..30);
        let y = rand_f64(&mut rng, -30..30);
        assert_eq!(two_sum(x, y), two_sum(y, x));
    }
}

proptest! {
    #[test]
    fn prop_two_sum_exact(x in -1.0e12f64..1.0e12, y in -1.0e12f64..1.0e12) {
        let (s, e) = two_sum(x, y);
        prop_assert_eq!(s, x + y);
        let scale = -80;
        prop_assert_eq!(
            to_scaled(s, scale) + to_scaled(e, scale),
            to_scaled(x, scale) + to_scaled(y, scale)
        );
    }

    #[test]
    fn prop_two_prod_error_small(x in -1.0e6f64..1.0e6, y in -1.0e6f64..1.0e6) {
        let (p, e) = two_prod(x, y);
        prop_assert_eq!(p, x * y);
        // |e| <= ulp(p)/2 by correct rounding.
        prop_assert!(e.abs() <= 0.5 * FloatBase::ulp(p));
    }

    #[test]
    fn prop_two_sum_error_small(x in -1.0e12f64..1.0e12, y in -1.0e12f64..1.0e12) {
        let (s, e) = two_sum(x, y);
        prop_assert!(e.abs() <= 0.5 * FloatBase::ulp(s));
    }

    #[test]
    fn prop_split_roundtrip(x in -1.0e100f64..1.0e100) {
        let (hi, lo) = split(x);
        prop_assert_eq!(hi + lo, x);
        prop_assert!(lo.abs() <= hi.abs() || x == 0.0);
    }
}
