//! The error-free transformations (paper §2.3, Algorithms 1–3).
//!
//! Every function here is straight-line code: no branches, no memory
//! traffic, only rounded machine operations. These are the "gates" of a
//! floating-point accumulation network (paper §3).

use crate::base::FloatBase;

/// Algorithm 1 (`TwoSum`, Knuth/Møller): returns `(s, e)` with
/// `s = fl(x + y)` and `e = (x + y) - s` **exactly**, for all finite inputs
/// within overflow range. 6 operations, depth 4 (the two δ computations are
/// independent).
#[inline(always)]
pub fn two_sum<T: FloatBase>(x: T, y: T) -> (T, T) {
    let s = x + y;
    let x_eff = s - y;
    let y_eff = s - x_eff;
    let dx = x - x_eff;
    let dy = y - y_eff;
    let e = dx + dy;
    (s, e)
}

/// `TwoDiff`: error-free subtraction, `(d, e)` with `d = fl(x - y)` and
/// `e = (x - y) - d` exactly. Same structure as [`two_sum`].
#[inline(always)]
pub fn two_diff<T: FloatBase>(x: T, y: T) -> (T, T) {
    let d = x - y;
    let x_eff = d + y;
    let y_eff = x_eff - d;
    let dx = x - x_eff;
    let dy = y_eff - y;
    let e = dx + dy;
    (d, e)
}

/// Algorithm 3 (`FastTwoSum`, Dekker): 3-operation variant of [`two_sum`].
///
/// **Precondition** (paper Algorithm 3): `x == ±0.0`, `y == ±0.0`, or
/// `exponent(x) >= exponent(y)`. In debug builds this is checked; in release
/// builds violating it silently produces an inexact error term, which is
/// precisely the class of bug the FPAN verifier exists to rule out.
#[inline(always)]
pub fn fast_two_sum<T: FloatBase>(x: T, y: T) -> (T, T) {
    debug_assert!(
        x.is_zero() || y.is_zero() || x.exponent() >= y.exponent(),
        "fast_two_sum precondition violated: |x| = {:e} < |y| = {:e}",
        x.abs(),
        y.abs()
    );
    let s = x + y;
    let y_eff = s - x;
    let e = y - y_eff;
    (s, e)
}

/// Algorithm 2 (`TwoProd`, FMA-based): returns `(p, e)` with `p = fl(x * y)`
/// and `e = x * y - p` exactly. 2 operations.
#[inline(always)]
pub fn two_prod<T: FloatBase>(x: T, y: T) -> (T, T) {
    let p = x * y;
    let e = x.mul_add(y, -p);
    (p, e)
}

/// Error-free square: `(p, e)` with `p = fl(x * x)`, `e = x² - p` exactly.
#[inline(always)]
pub fn two_square<T: FloatBase>(x: T) -> (T, T) {
    let p = x * x;
    let e = x.mul_add(x, -p);
    (p, e)
}

/// Veltkamp splitting: `x = hi + lo` where `hi` holds the top
/// `p - floor(p/2)` bits and `lo` the remaining bits, both exactly
/// representable in ≤ `floor(p/2)` bits so that products of halves are exact.
#[inline(always)]
pub fn split<T: FloatBase>(x: T) -> (T, T) {
    // Splitting constant 2^ceil(p/2) + 1 (Veltkamp 1968). For f64: 2^27 + 1.
    let shift = T::PRECISION.div_ceil(2);
    let c = T::exp2i(shift as i32) + T::ONE;
    let t = c * x;
    let hi = t - (t - x);
    let lo = x - hi;
    (hi, lo)
}

/// Dekker's `TwoProd` without FMA (Dekker 1971, Veltkamp 1968/69):
/// 17 operations using [`split`]. Exact under the same conditions as
/// [`two_prod`] provided no intermediate overflow occurs in the splitting.
/// Kept for the FMA-vs-split ablation (DESIGN.md §3.2).
#[inline(always)]
pub fn two_prod_dekker<T: FloatBase>(x: T, y: T) -> (T, T) {
    let p = x * y;
    let (xh, xl) = split(x);
    let (yh, yl) = split(y);
    let e = ((xh * yh - p) + xh * yl + xl * yh) + xl * yl;
    (p, e)
}

/// Three-way error-free-ish sum used inside accumulation kernels:
/// returns `(s, e0, e1)` with `s + e0 + e1 == x + y + z` exactly,
/// `s = fl(fl(x + y) + z)` and `|e0| >= |e1|` up to rounding.
#[inline(always)]
pub fn three_sum<T: FloatBase>(x: T, y: T, z: T) -> (T, T, T) {
    let (t0, t1) = two_sum(x, y);
    let (s, t2) = two_sum(t0, z);
    let (e0, e1) = two_sum(t1, t2);
    (s, e0, e1)
}

/// Three-way sum keeping only one error term: `(s, e)` with
/// `s + e ≈ x + y + z` (the second-order error is discarded, a plain-add
/// gate in FPAN terms).
#[inline(always)]
pub fn three_sum2<T: FloatBase>(x: T, y: T, z: T) -> (T, T) {
    let (t0, t1) = two_sum(x, y);
    let (s, t2) = two_sum(t0, z);
    (s, t1 + t2)
}
