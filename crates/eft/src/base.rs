//! The [`FloatBase`] trait: the machine floating-point format that expansions
//! are built from.
//!
//! Mirrors the paper's `MultiFloat<T, N>` parameter `T` (§5): the arithmetic
//! algorithms never inspect bit patterns, so any type providing correctly
//! rounded (RNE) `+ - * /`, `sqrt`, and a fused multiply-add can serve as the
//! base. The workspace provides three implementations:
//!
//! * `f64` — the configuration used for the paper's CPU tables,
//! * `f32` — the GPU-substitution configuration (paper Figure 11 uses
//!   `T = float` because RDNA3 lacks double-precision units),
//! * `SoftFloat<P>` (in `mf-softfloat`) — a bit-exact software float with a
//!   parameterizable precision, used by the FPAN verifier.

use core::fmt::{Debug, Display, LowerExp};
use core::ops::{Add, Div, Mul, Neg, Sub};

/// A machine floating-point format with correctly rounded (round-to-nearest,
/// ties-to-even) arithmetic and a fused multiply-add.
///
/// # Contract
///
/// Implementations must round every arithmetic result with IEEE 754
/// `roundTiesToEven`; the error-free transformations in [`crate::ops`] are
/// only exact under that rounding rule (paper §2.1). `mul_add` must perform a
/// *fused* multiply-add (a single rounding); an implementation that rounds
/// the product separately breaks [`crate::two_prod`].
pub trait FloatBase:
    Copy
    + Clone
    + PartialEq
    + PartialOrd
    + Debug
    + Display
    + LowerExp
    + Default
    + Send
    + Sync
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + 'static
{
    /// Precision `p` in bits, counting the implicit leading bit
    /// (53 for `f64`, 24 for `f32`).
    const PRECISION: u32;
    /// Minimum normalized base-2 exponent (`value >= 2^MIN_EXP` for
    /// normalized values); matches `f64::MIN_EXP - 1` convention where the
    /// smallest normalized value is `2^MIN_EXP`.
    const MIN_EXP: i32;
    /// Maximum base-2 exponent: the largest finite value is just below
    /// `2^(MAX_EXP + 1)`.
    const MAX_EXP: i32;

    const ZERO: Self;
    const ONE: Self;
    const NEG_ONE: Self;
    const HALF: Self;
    const TWO: Self;
    /// Machine epsilon `2^(1-p)` (distance from 1.0 to the next float up).
    const EPSILON: Self;
    const MAX: Self;
    const MIN_POSITIVE: Self;
    const INFINITY: Self;
    const NEG_INFINITY: Self;
    const NAN: Self;

    /// Fused multiply-add: `self * a + b` with a single rounding.
    fn mul_add(self, a: Self, b: Self) -> Self;
    /// Correctly rounded square root.
    fn sqrt(self) -> Self;
    fn abs(self) -> Self;
    fn recip(self) -> Self;
    fn floor(self) -> Self;
    fn ceil(self) -> Self;
    /// Round half away from zero (like `f64::round`).
    fn round(self) -> Self;
    fn trunc(self) -> Self;

    fn is_nan(self) -> bool;
    fn is_infinite(self) -> bool;
    fn is_finite(self) -> bool;
    fn is_sign_negative(self) -> bool;
    /// True for `+0.0` and `-0.0`.
    fn is_zero(self) -> bool {
        self == Self::ZERO
    }

    /// Unbiased base-2 exponent of a finite nonzero value: the unique `e`
    /// with `2^e <= |self| < 2^(e+1)`. Returns `MIN_EXP - PRECISION as i32`
    /// for zero (below every representable magnitude).
    fn exponent(self) -> i32;
    /// Unit in the last place of `self`: `2^(exponent(self) - p + 1)`.
    fn ulp(self) -> Self {
        if self.is_zero() {
            return Self::MIN_POSITIVE;
        }
        Self::exp2i(self.exponent() - (Self::PRECISION as i32) + 1)
    }
    /// Exact power of two `2^e` (must be within range).
    fn exp2i(e: i32) -> Self;

    fn from_f64(x: f64) -> Self;
    fn to_f64(self) -> f64;
    fn from_i64(x: i64) -> Self {
        Self::from_f64(x as f64)
    }
    fn from_u64(x: u64) -> Self {
        Self::from_f64(x as f64)
    }
    fn from_i32(x: i32) -> Self {
        Self::from_f64(f64::from(x))
    }

    /// `copysign`: magnitude of `self`, sign of `sign`.
    fn copysign(self, sign: Self) -> Self;
    fn min(self, other: Self) -> Self;
    fn max(self, other: Self) -> Self;
}

macro_rules! impl_float_base {
    // $mant_bits: explicit mantissa bits (52 / 23); $bias: exponent bias;
    // $min_sub: exponent of the smallest subnormal (-1074 / -149).
    ($t:ty, $prec:expr, $min_exp:expr, $max_exp:expr, $bits:ty, $mant_bits:expr, $bias:expr, $min_sub:expr) => {
        impl FloatBase for $t {
            const PRECISION: u32 = $prec;
            const MIN_EXP: i32 = $min_exp;
            const MAX_EXP: i32 = $max_exp;

            const ZERO: Self = 0.0;
            const ONE: Self = 1.0;
            const NEG_ONE: Self = -1.0;
            const HALF: Self = 0.5;
            const TWO: Self = 2.0;
            const EPSILON: Self = <$t>::EPSILON;
            const MAX: Self = <$t>::MAX;
            const MIN_POSITIVE: Self = <$t>::MIN_POSITIVE;
            const INFINITY: Self = <$t>::INFINITY;
            const NEG_INFINITY: Self = <$t>::NEG_INFINITY;
            const NAN: Self = <$t>::NAN;

            #[inline(always)]
            fn mul_add(self, a: Self, b: Self) -> Self {
                <$t>::mul_add(self, a, b)
            }
            #[inline(always)]
            fn sqrt(self) -> Self {
                <$t>::sqrt(self)
            }
            #[inline(always)]
            fn abs(self) -> Self {
                <$t>::abs(self)
            }
            #[inline(always)]
            fn recip(self) -> Self {
                <$t>::recip(self)
            }
            #[inline(always)]
            fn floor(self) -> Self {
                <$t>::floor(self)
            }
            #[inline(always)]
            fn ceil(self) -> Self {
                <$t>::ceil(self)
            }
            #[inline(always)]
            fn round(self) -> Self {
                <$t>::round(self)
            }
            #[inline(always)]
            fn trunc(self) -> Self {
                <$t>::trunc(self)
            }
            #[inline(always)]
            fn is_nan(self) -> bool {
                <$t>::is_nan(self)
            }
            #[inline(always)]
            fn is_infinite(self) -> bool {
                <$t>::is_infinite(self)
            }
            #[inline(always)]
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
            #[inline(always)]
            fn is_sign_negative(self) -> bool {
                <$t>::is_sign_negative(self)
            }
            #[inline(always)]
            fn exponent(self) -> i32 {
                if self == 0.0 {
                    return Self::MIN_EXP - Self::PRECISION as i32;
                }
                let bits = self.abs().to_bits();
                let raw = (bits >> $mant_bits) as i32;
                if raw == 0 {
                    // Subnormal: exponent from the position of the top
                    // mantissa bit. bits == 1 corresponds to 2^$min_sub.
                    let top = (<$bits>::BITS - 1 - bits.leading_zeros()) as i32;
                    $min_sub + top
                } else {
                    raw - $bias
                }
            }
            #[inline(always)]
            fn exp2i(e: i32) -> Self {
                debug_assert!(
                    ($min_sub..=$max_exp).contains(&e),
                    "exp2i out of range: {}",
                    e
                );
                if e >= $min_exp {
                    <$t>::from_bits(((e + $bias) as $bits) << $mant_bits)
                } else {
                    <$t>::from_bits((1 as $bits) << (e - $min_sub))
                }
            }
            #[inline(always)]
            fn from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline(always)]
            fn to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn copysign(self, sign: Self) -> Self {
                <$t>::copysign(self, sign)
            }
            #[inline(always)]
            fn min(self, other: Self) -> Self {
                <$t>::min(self, other)
            }
            #[inline(always)]
            fn max(self, other: Self) -> Self {
                <$t>::max(self, other)
            }
        }
    };
}

impl_float_base!(f64, 53, -1022, 1023, u64, 52, 1023, -1074);
impl_float_base!(f32, 24, -126, 127, u32, 23, 127, -149);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_constants() {
        assert_eq!(f64::PRECISION, 53);
        assert_eq!(<f64 as FloatBase>::EPSILON, 2.0f64.powi(-52));
        assert_eq!(<f64 as FloatBase>::MIN_EXP, -1022);
        assert_eq!(<f64 as FloatBase>::MAX_EXP, 1023);
    }

    #[test]
    fn f32_constants() {
        assert_eq!(f32::PRECISION, 24);
        assert_eq!(<f32 as FloatBase>::EPSILON, 2.0f32.powi(-23));
    }

    #[test]
    fn exponent_normal_f64() {
        assert_eq!(FloatBase::exponent(1.0f64), 0);
        assert_eq!(FloatBase::exponent(1.5f64), 0);
        assert_eq!(FloatBase::exponent(2.0f64), 1);
        assert_eq!(FloatBase::exponent(0.75f64), -1);
        assert_eq!(FloatBase::exponent(-8.0f64), 3);
        assert_eq!(FloatBase::exponent(f64::MAX), 1023);
        assert_eq!(FloatBase::exponent(f64::MIN_POSITIVE), -1022);
    }

    #[test]
    fn exponent_subnormal_f64() {
        let sub = f64::from_bits(1); // 2^-1074
        assert_eq!(FloatBase::exponent(sub), -1074);
        let sub2 = f64::from_bits(1 << 51); // 2^-1023
        assert_eq!(FloatBase::exponent(sub2), -1023);
    }

    #[test]
    fn exponent_normal_f32() {
        assert_eq!(FloatBase::exponent(1.0f32), 0);
        assert_eq!(FloatBase::exponent(3.0f32), 1);
        assert_eq!(FloatBase::exponent(f32::MIN_POSITIVE), -126);
        assert_eq!(FloatBase::exponent(f32::from_bits(1)), -149);
    }

    #[test]
    fn exp2i_roundtrip_f64() {
        // powi is inexact deep in the subnormal range, so walk by exact
        // halving instead.
        let mut expect = 1.0f64;
        for e in (-1074..=0).rev() {
            assert_eq!(<f64 as FloatBase>::exp2i(e), expect, "e = {e}");
            assert_eq!(FloatBase::exponent(expect), e, "e = {e}");
            expect *= 0.5;
        }
        let mut expect = 1.0f64;
        for e in 0..=1023 {
            assert_eq!(<f64 as FloatBase>::exp2i(e), expect, "e = {e}");
            assert_eq!(FloatBase::exponent(expect), e, "e = {e}");
            expect *= 2.0;
        }
    }

    #[test]
    fn exp2i_roundtrip_f32() {
        let mut expect = 1.0f32;
        for e in (-149..=0).rev() {
            assert_eq!(<f32 as FloatBase>::exp2i(e), expect, "e = {e}");
            expect *= 0.5;
        }
        let mut expect = 1.0f32;
        for e in 0..=127 {
            assert_eq!(<f32 as FloatBase>::exp2i(e), expect, "e = {e}");
            expect *= 2.0;
        }
    }

    #[test]
    fn ulp_matches_definition_f64() {
        assert_eq!(FloatBase::ulp(1.0f64), f64::EPSILON);
        assert_eq!(FloatBase::ulp(2.0f64), 2.0 * f64::EPSILON);
        assert_eq!(FloatBase::ulp(1.5f64), f64::EPSILON);
        // ulp of zero is the smallest positive normalized value (convention).
        assert_eq!(FloatBase::ulp(0.0f64), f64::MIN_POSITIVE);
    }

    #[test]
    fn exponent_agrees_with_next_power_of_two() {
        let vals = [0.1, 0.5, 1.0, 1.999, 3.0, 1e10, 1e-10, 123456.789];
        for &v in &vals {
            let e = FloatBase::exponent(v);
            assert!(2.0f64.powi(e) <= v && v < 2.0f64.powi(e + 1), "v = {v}");
        }
    }
}
