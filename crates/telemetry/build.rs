use std::process::Command;

fn main() {
    // Record the compiler version in the run manifest. RUSTC points at the
    // compiler cargo is driving; fall back to "rustc" on the PATH.
    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".into());
    let version = Command::new(&rustc)
        .arg("--version")
        .output()
        .ok()
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_default();
    println!("cargo:rustc-env=MF_RUSTC_VERSION={version}");
    println!("cargo:rerun-if-env-changed=RUSTC");
}
