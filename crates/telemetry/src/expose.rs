//! Live metrics exposition: a std-only TCP endpoint serving the registry
//! snapshot in Prometheus text exposition format v0.0.4.
//!
//! Everything the telemetry layer records was previously post-mortem —
//! visible only in the manifest written at process exit. This module makes
//! it scrapeable *while the process runs*: set `MF_METRICS_ADDR` (e.g.
//! `127.0.0.1:9184`, or port `0` for an OS-assigned port) and any HTTP
//! client — `curl`, a Prometheus server, the `mfstat` live viewer in
//! `mf-bench` — can read the current counters, gauges, and latency-sketch
//! quantiles. Each scrape takes a fresh [`crate::snapshot`], so the data is
//! always live; nothing is buffered between scrapes.
//!
//! Design constraints, same as the rest of the crate:
//!
//! * **no new dependencies** — the "HTTP" layer is the minimal subset a
//!   scraper needs: read one request head, answer one `200 OK` with
//!   `Connection: close`, close;
//! * **bounded** — connections are handled serially on one background
//!   thread with read/write timeouts, so a stalled or malicious client can
//!   delay other scrapers but never wedge the process or accumulate
//!   threads; request heads are capped at [`MAX_REQUEST_BYTES`];
//! * **zero-cost when disabled** — with the `telemetry` feature off,
//!   [`serve_from_env`] is an inert `None` and no socket is ever bound.
//!
//! Routes: `/metrics` (any unknown path also answers metrics, so plain
//! `curl host:port` works) and `/profile`, which serves the span-derived
//! folded stacks from [`crate::profile`] (empty until tracing is armed).
//!
//! Metric name mapping (Prometheus names allow `[a-zA-Z0-9_:]` only):
//!
//! * counter `pool.jobs` → `mf_pool_jobs_total`;
//! * gauge `pool.queue_depth` → `mf_pool_queue_depth`;
//! * every [`Section`](crate::Section) → one `summary` family
//!   `mf_section_seconds{section="<name>",quantile="0.5|0.9|0.99"}` plus
//!   `_sum`/`_count` (quantiles are the sketch's factor-of-2 upper bounds);
//! * every [`Histogram`](crate::Histogram) → one `histogram` family
//!   `mf_values_bucket{name="<name>",le="2^k-1"}` with cumulative counts.
//!
//! Label values are escaped per the exposition format (`\\`, `\"`, `\n`).

use crate::{Counter, Snapshot};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::OnceLock;
use std::time::Duration;

/// Cap on the request head read from a client (a scraper's GET line plus
/// headers fits in a fraction of this).
pub const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// Per-connection socket timeout: a client that stalls longer is dropped.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

static SCRAPES: Counter = Counter::new("telemetry.exposition.scrapes");

/// Escape a label value per the text exposition format: backslash, double
/// quote, and line feed.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Map a probe name to a Prometheus metric name: prefix `mf_`, every
/// character outside `[a-zA-Z0-9_]` becomes `_`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 3);
    out.push_str("mf_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Render a value the exposition format accepts (`f64`, with non-finite
/// values spelled Prometheus-style).
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else {
        format!("{v}")
    }
}

/// Render a [`Snapshot`] as Prometheus text exposition format v0.0.4.
pub fn render(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let m = format!("{}_total", sanitize_metric_name(name));
        out.push_str(&format!(
            "# HELP {m} Telemetry counter {}\n# TYPE {m} counter\n{m} {v}\n",
            escape_label_value(name)
        ));
    }
    for (name, v) in &snap.gauges {
        let m = sanitize_metric_name(name);
        out.push_str(&format!(
            "# HELP {m} Telemetry gauge {}\n# TYPE {m} gauge\n{m} {v}\n",
            escape_label_value(name)
        ));
    }
    if !snap.sections.is_empty() {
        out.push_str("# HELP mf_section_seconds Per-call latency by instrumented section (quantiles are log2-sketch upper bounds)\n");
        out.push_str("# TYPE mf_section_seconds summary\n");
        for s in &snap.sections {
            let label = escape_label_value(&s.name);
            if s.sketch.count > 0 {
                for (q, v) in [
                    ("0.5", s.sketch.p50()),
                    ("0.9", s.sketch.p90()),
                    ("0.99", s.sketch.p99()),
                ] {
                    out.push_str(&format!(
                        "mf_section_seconds{{section=\"{label}\",quantile=\"{q}\"}} {}\n",
                        fmt_value(v as f64 / 1e9)
                    ));
                }
            }
            out.push_str(&format!(
                "mf_section_seconds_sum{{section=\"{label}\"}} {}\n",
                fmt_value(s.total_ns as f64 / 1e9)
            ));
            out.push_str(&format!(
                "mf_section_seconds_count{{section=\"{label}\"}} {}\n",
                s.count
            ));
        }
    }
    if !snap.histograms.is_empty() {
        out.push_str("# HELP mf_values Telemetry value histograms (log2 buckets)\n");
        out.push_str("# TYPE mf_values histogram\n");
        for h in &snap.histograms {
            let label = escape_label_value(&h.name);
            let mut cumulative = 0u64;
            for (k, &c) in h.buckets.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                cumulative += c;
                // Bucket 0 holds zeros; bucket k holds [2^(k-1), 2^k), so
                // the inclusive upper bound is 2^k - 1.
                let le = if k == 0 {
                    0.0
                } else {
                    ((1u128 << k) - 1) as f64
                };
                out.push_str(&format!(
                    "mf_values_bucket{{name=\"{label}\",le=\"{}\"}} {cumulative}\n",
                    fmt_value(le)
                ));
            }
            out.push_str(&format!(
                "mf_values_bucket{{name=\"{label}\",le=\"+Inf\"}} {}\n",
                h.count
            ));
            out.push_str(&format!("mf_values_sum{{name=\"{label}\"}} {}\n", h.sum));
            out.push_str(&format!(
                "mf_values_count{{name=\"{label}\"}} {}\n",
                h.count
            ));
        }
    }
    out.push_str(&format!(
        "# HELP mf_telemetry_dropped_events_total Events dropped past the retention cap\n# TYPE mf_telemetry_dropped_events_total counter\nmf_telemetry_dropped_events_total {}\n",
        snap.dropped_events
    ));
    out.push_str(&format!(
        "# HELP mf_trace_dropped_spans_total Spans dropped on full trace ring buffers\n# TYPE mf_trace_dropped_spans_total counter\nmf_trace_dropped_spans_total {}\n",
        crate::trace::dropped_spans()
    ));
    out
}

/// Read the request head (through the blank line) and return the request
/// path, or `None` for anything malformed/oversized.
fn read_request_path(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.len() > MAX_REQUEST_BYTES {
                    return None;
                }
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n")
                {
                    break;
                }
            }
            Err(_) => return None,
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let mut parts = head.lines().next()?.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?;
    if method != "GET" {
        return None;
    }
    Some(path.to_string())
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

fn handle(mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let Some(path) = read_request_path(&mut stream) else {
        respond(
            &mut stream,
            "400 Bad Request",
            "text/plain",
            "bad request\n",
        );
        return;
    };
    SCRAPES.incr();
    match path.split('?').next().unwrap_or("") {
        "/profile" => {
            let body = crate::profile::folded_stacks();
            respond(
                &mut stream,
                "200 OK",
                "text/plain; charset=utf-8",
                if body.is_empty() {
                    "# no closed spans (run with --trace / arm tracing)\n"
                } else {
                    &body
                },
            );
        }
        "/registry" => {
            let body = crate::registry::snapshot_json().render_pretty();
            respond(&mut stream, "200 OK", "application/json", &body);
        }
        // `/metrics` and anything else: the exposition document, so plain
        // `curl host:port` works.
        _ => {
            let body = render(&crate::snapshot());
            respond(
                &mut stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            );
        }
    }
}

/// Bind `addr` and serve scrapes on a background thread for the rest of
/// the process lifetime. Returns the bound address (resolves port `0`).
/// Callable in any build — a disabled-feature build serves an exposition
/// document containing only the meta counters — but production binaries
/// should go through [`serve_from_env`], which never binds when the
/// feature is off.
pub fn serve(addr: &str) -> std::io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    std::thread::Builder::new()
        .name("mf-metrics".into())
        .spawn(move || {
            // Serial accept loop: one connection at a time bounds resource
            // use; the listener backlog absorbs concurrent scrapers.
            for stream in listener.incoming() {
                match stream {
                    Ok(s) => handle(s),
                    Err(_) => continue,
                }
            }
        })?;
    Ok(bound)
}

/// Start the endpoint if `MF_METRICS_ADDR` is set (once per process; later
/// calls return the first bound address). With the `telemetry` feature off
/// this is an inert `None`: no socket, no thread, nothing to observe.
pub fn serve_from_env() -> Option<SocketAddr> {
    if !crate::ENABLED {
        return None;
    }
    static BOUND: OnceLock<Option<SocketAddr>> = OnceLock::new();
    *BOUND.get_or_init(|| {
        let addr = std::env::var("MF_METRICS_ADDR")
            .ok()
            .filter(|a| !a.is_empty())?;
        match serve(&addr) {
            Ok(bound) => {
                // The "serving on" line is the contract the CI smoke script
                // and `mfstat` rely on to discover an OS-assigned port.
                eprintln!("mf-metrics: serving on {bound}");
                Some(bound)
            }
            Err(e) => {
                eprintln!("warning: mf-metrics: cannot bind {addr}: {e}");
                None
            }
        }
    })
}

/// Scrape helper used by tests and `mfstat`: issue one GET and return the
/// response body.
pub fn scrape(addr: &SocketAddr, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect_timeout(addr, IO_TIMEOUT)?;
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    stream.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut text = String::new();
    stream.read_to_string(&mut text)?;
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or(text);
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, HistogramSnapshot, SectionSnapshot, SketchSnapshot};

    fn synthetic_snapshot() -> Snapshot {
        Snapshot {
            counters: vec![("pool.jobs".into(), 42), ("core.guard.checks".into(), 7)],
            gauges: vec![("pool.queue_depth".into(), 3), ("net.level".into(), -2)],
            histograms: vec![HistogramSnapshot {
                name: "core.renorm.cancellation_bits".into(),
                count: 4,
                sum: 19,
                buckets: {
                    let mut b = [0u64; 65];
                    b[0] = 1;
                    b[3] = 2;
                    b[4] = 1;
                    b
                },
            }],
            sections: vec![SectionSnapshot {
                name: "pool.queue_wait".into(),
                total_ns: 5_000,
                count: 3,
                sketch: SketchSnapshot::from_samples([1_000u64, 1_500, 2_500]),
            }],
            events: vec![Event {
                name: "x".into(),
                fields: vec![],
            }],
            dropped_events: 1,
        }
    }

    #[test]
    fn render_produces_wellformed_families() {
        let text = render(&synthetic_snapshot());
        assert!(text.contains("# TYPE mf_pool_jobs_total counter"));
        assert!(text.contains("mf_pool_jobs_total 42"));
        assert!(text.contains("# TYPE mf_pool_queue_depth gauge"));
        assert!(text.contains("mf_pool_queue_depth 3"));
        assert!(text.contains("mf_net_level -2"));
        assert!(text.contains("mf_section_seconds{section=\"pool.queue_wait\",quantile=\"0.5\"}"));
        assert!(text.contains("mf_section_seconds_count{section=\"pool.queue_wait\"} 3"));
        // Histogram: cumulative le buckets ending in +Inf == count.
        assert!(
            text.contains("mf_values_bucket{name=\"core.renorm.cancellation_bits\",le=\"0\"} 1")
        );
        assert!(
            text.contains("mf_values_bucket{name=\"core.renorm.cancellation_bits\",le=\"7\"} 3")
        );
        assert!(
            text.contains("mf_values_bucket{name=\"core.renorm.cancellation_bits\",le=\"+Inf\"} 4")
        );
        assert!(text.contains("mf_telemetry_dropped_events_total 1"));
        // Every non-comment line is `name{labels}? value`.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("line has a value");
            assert!(
                value.parse::<f64>().is_ok() || value == "+Inf" || value == "NaN",
                "unparseable value in line: {line}"
            );
        }
    }

    /// Satellite: exposition-format escaping for label values containing
    /// backslash, double quote, and newline.
    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label_value(r"a\b"), r"a\\b");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
        let snap = Snapshot {
            sections: vec![SectionSnapshot {
                name: "we\\ird\"name\nwith everything".into(),
                total_ns: 10,
                count: 1,
                sketch: SketchSnapshot::from_samples([10u64]),
            }],
            ..Snapshot::default()
        };
        let text = render(&snap);
        assert!(
            text.contains(r#"section="we\\ird\"name\nwith everything""#),
            "escaped label missing in: {text}"
        );
        // The raw (unescaped) newline must not survive inside any line.
        for line in text.lines() {
            assert!(!line.contains("with everything") || line.contains("\\n"));
        }
    }

    #[test]
    fn metric_names_are_sanitized() {
        assert_eq!(sanitize_metric_name("pool.jobs"), "mf_pool_jobs");
        assert_eq!(
            sanitize_metric_name("core.guard.pre-detected!"),
            "mf_core_guard_pre_detected_"
        );
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn endpoint_serves_live_scrapes() {
        static C: crate::Counter = crate::Counter::new("test.expose.live");
        C.add(5);
        let addr = serve("127.0.0.1:0").expect("bind loopback");
        let body = scrape(&addr, "/metrics").expect("scrape");
        assert!(body.contains("mf_test_expose_live_total 5"));
        // Live, not buffered: a second scrape sees the new value.
        C.add(2);
        let body = scrape(&addr, "/metrics").expect("scrape 2");
        assert!(body.contains("mf_test_expose_live_total 7"));
        // The meta counter counts our scrapes.
        assert!(SCRAPES.get() >= 2);
        // /registry serves parseable JSON.
        let reg = scrape(&addr, "/registry").expect("registry");
        let j = crate::json::Json::parse(&reg).expect("json");
        assert!(j.get("counters").is_some());
        // Unknown path falls back to metrics.
        let body = scrape(&addr, "/").expect("root");
        assert!(body.contains("mf_test_expose_live_total"));
    }
}
