//! Span-derived self-profiler: folds the [`crate::trace`] ring buffers into
//! per-span-path aggregate wall time and exports flamegraph-compatible
//! folded stacks.
//!
//! A Chrome trace ([`crate::trace::chrome_trace`]) preserves the *timeline*
//! — every individual span, in order. That is the right view for spotting a
//! stall, but the wrong one for "where does the time go overall": a
//! parallel GEMM records tens of thousands of worker spans that a human
//! cannot eyeball. This module collapses the same records into the familiar
//! profiler aggregate: for every unique span *path* (the `;`-joined chain
//! of open span names, e.g. `bench.pardispatch;blas.gemm.par;blas.gemm.worker`),
//! the call count, total (inclusive) wall time, and **self** time — total
//! minus time spent in child spans.
//!
//! The folded-stack export (`path;to;span <self_ns>` per line) is the
//! interchange format of Brendan Gregg's flamegraph toolchain: feed it to
//! `flamegraph.pl`, `inferno-flamegraph`, or paste into speedscope. Values
//! are nanoseconds of self time.
//!
//! The fold is a per-thread stack walk over the copied records. The trace
//! layer's whole-span drop discipline guarantees balanced begin/end pairs
//! with monotone timestamps per thread, so the walk needs no repair logic;
//! spans still open at snapshot time (their end record not yet written) are
//! simply ignored, which makes live `/profile` scrapes safe while work is
//! in flight. Self time is conserved: the self times of a closed root span
//! and its descendants sum exactly to the root's duration, so the folded
//! output "adds up" the way flamegraph tooling expects.

use crate::trace::{thread_records, Record};
use std::collections::BTreeMap;
use std::path::Path;

/// Aggregate statistics for one unique span path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathStat {
    /// `;`-joined chain of span names from the root, flamegraph-style.
    pub path: String,
    /// Closed spans observed at this path.
    pub count: u64,
    /// Inclusive wall time: sum of span durations at this path. A span's
    /// time is also inside its ancestors' totals (standard profiler
    /// semantics), so totals across different depths overlap.
    pub total_ns: u64,
    /// Exclusive wall time: total minus time inside child spans. Self
    /// times partition wall time — across all paths they sum to the total
    /// duration of closed root spans.
    pub self_ns: u64,
}

/// One in-progress frame of the fold walk.
struct Frame {
    name: &'static str,
    ts_ns: u64,
    child_ns: u64,
}

/// Fold one thread's records (begin/end, per-thread monotone) into `map`.
/// Spans without a closing record by the end of the slice are dropped.
pub(crate) fn fold_records(map: &mut BTreeMap<String, PathStat>, records: &[Record]) {
    let mut stack: Vec<Frame> = Vec::new();
    for r in records {
        if !r.end {
            stack.push(Frame {
                name: r.name,
                ts_ns: r.ts_ns,
                child_ns: 0,
            });
            continue;
        }
        // The trace layer only writes an end for a recorded begin, but be
        // defensive against a torn slice: an unmatched end is skipped.
        let Some(frame) = stack.pop() else { continue };
        let dur = r.ts_ns.saturating_sub(frame.ts_ns);
        let path = stack
            .iter()
            .map(|f| f.name)
            .chain([frame.name])
            .collect::<Vec<_>>()
            .join(";");
        let stat = map.entry(path.clone()).or_insert(PathStat {
            path,
            count: 0,
            total_ns: 0,
            self_ns: 0,
        });
        stat.count += 1;
        stat.total_ns += dur;
        stat.self_ns += dur.saturating_sub(frame.child_ns);
        if let Some(parent) = stack.last_mut() {
            parent.child_ns += dur;
        }
    }
}

/// Fold every thread's collected spans into per-path aggregates, sorted by
/// path. Empty when the feature is off or tracing was never armed.
pub fn aggregate() -> Vec<PathStat> {
    let mut map = BTreeMap::new();
    for (_tid, records) in thread_records() {
        fold_records(&mut map, &records);
    }
    map.into_values().collect()
}

/// Render [`aggregate`] in folded-stack format: one `path;to;span <self_ns>`
/// line per path, self time in nanoseconds. Feed to `flamegraph.pl` /
/// `inferno-flamegraph` / speedscope.
pub fn folded_stacks() -> String {
    let mut out = String::new();
    for s in aggregate() {
        out.push_str(&format!("{} {}\n", s.path, s.self_ns));
    }
    out
}

/// Write [`folded_stacks`] to `path`, creating parent directories. With the
/// feature disabled this writes an empty file.
pub fn export_folded(path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, folded_stacks())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(name: &'static str, ts_ns: u64) -> Record {
        Record {
            name,
            arg: 0,
            ts_ns,
            end: false,
        }
    }

    fn e(name: &'static str, ts_ns: u64) -> Record {
        Record {
            name,
            arg: 0,
            ts_ns,
            end: true,
        }
    }

    /// Satellite: folded-stack output balance against a synthetic trace.
    /// Two roots with nested children; self times must partition the wall
    /// time exactly (sum of self == sum of root durations) and every
    /// inclusive total must equal its children's totals plus its self time.
    #[test]
    fn folded_output_balances_against_synthetic_trace() {
        // Timeline (ns):      0        100            250   300       400
        //  root ──────────────[============================]
        //    inner ─────────────[=========]  [=====]
        //      leaf ──────────────[==]
        //  root2 ────────────────────────────────────────────[========]
        let records = vec![
            b("root", 0),
            b("inner", 10),
            b("leaf", 20),
            e("leaf", 50),
            e("inner", 110),
            b("inner", 150),
            e("inner", 200),
            e("root", 300),
            b("root2", 320),
            e("root2", 400),
        ];
        let mut map = BTreeMap::new();
        fold_records(&mut map, &records);
        let get = |p: &str| map.get(p).unwrap_or_else(|| panic!("missing path {p}"));

        let root = get("root");
        assert_eq!((root.count, root.total_ns), (1, 300));
        let inner = get("root;inner");
        assert_eq!((inner.count, inner.total_ns), (2, 100 + 50));
        let leaf = get("root;inner;leaf");
        assert_eq!((leaf.count, leaf.total_ns, leaf.self_ns), (1, 30, 30));

        // Self = total - children, at every level.
        assert_eq!(inner.self_ns, inner.total_ns - leaf.total_ns);
        assert_eq!(root.self_ns, root.total_ns - inner.total_ns);
        assert_eq!(get("root2").self_ns, 80);

        // Global balance: self times partition the closed-root wall time.
        let self_sum: u64 = map.values().map(|s| s.self_ns).sum();
        assert_eq!(self_sum, 300 + 80, "sum(self) must equal sum(root dur)");

        // The rendered form carries exactly the self values.
        let mut rendered = String::new();
        for s in map.values() {
            rendered.push_str(&format!("{} {}\n", s.path, s.self_ns));
        }
        assert!(rendered.contains("root;inner;leaf 30\n"));
        assert!(rendered.contains(&format!("root {}\n", root.self_ns)));
        // Every line parses as `stack <u64>` — what flamegraph.pl expects.
        for line in rendered.lines() {
            let (stack, value) = line.rsplit_once(' ').expect("stack and value");
            assert!(!stack.is_empty());
            value.parse::<u64>().expect("numeric self time");
        }
    }

    #[test]
    fn open_spans_and_torn_slices_are_ignored() {
        let mut map = BTreeMap::new();
        // An unmatched end (torn slice) followed by a never-closed begin.
        fold_records(&mut map, &[e("stray", 5), b("open", 10), b("child", 20)]);
        assert!(map.is_empty());
        // A closed child inside a still-open parent is attributed at its
        // full path even though the parent never closes.
        fold_records(&mut map, &[b("open", 0), b("child", 10), e("child", 30)]);
        assert_eq!(map.len(), 1);
        assert_eq!(get_stat(&map, "open;child").total_ns, 20);
    }

    fn get_stat<'m>(map: &'m BTreeMap<String, PathStat>, p: &str) -> &'m PathStat {
        map.get(p).unwrap_or_else(|| panic!("missing path {p}"))
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn live_spans_aggregate_end_to_end() {
        crate::trace::arm();
        std::thread::spawn(|| {
            let _outer = crate::trace::span("test.profile.outer", 0);
            for i in 0..4u64 {
                let _inner = crate::trace::span("test.profile.inner", i);
                std::hint::black_box(i);
            }
        })
        .join()
        .unwrap();
        let stats = aggregate();
        let outer = stats
            .iter()
            .find(|s| s.path == "test.profile.outer")
            .expect("outer path");
        let inner = stats
            .iter()
            .find(|s| s.path == "test.profile.outer;test.profile.inner")
            .expect("inner path");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 4);
        assert!(outer.total_ns >= inner.total_ns);
        assert_eq!(outer.self_ns, outer.total_ns - inner.total_ns);
        let folded = folded_stacks();
        assert!(folded.contains("test.profile.outer;test.profile.inner "));
    }

    #[cfg(not(feature = "telemetry"))]
    #[test]
    fn profile_is_inert_when_disabled() {
        crate::trace::arm();
        {
            let _s = crate::trace::span("test.profile.disabled", 1);
        }
        assert!(aggregate().is_empty());
        assert!(folded_stacks().is_empty());
    }
}
