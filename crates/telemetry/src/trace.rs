//! Span tracing: nestable begin/end records in thread-local bounded ring
//! buffers, exported as Chrome `trace_event` JSON (loadable in Perfetto or
//! `chrome://tracing`).
//!
//! [`Section`](crate::Section) answers "how much time, cumulatively"; a
//! trace answers "*where inside the run* did it go" — per-chunk worker
//! imbalance in a parallel dispatch, annealing rounds that stall, guard
//! slow-path excursions. The design constraints are the same as the rest of
//! this crate:
//!
//! * feature **disabled** (default): [`span`] returns an inert guard and
//!   the whole module const-folds away — zero cost on the branch-free hot
//!   paths;
//! * feature **enabled** but not [`arm`]ed: one relaxed atomic load per
//!   [`span`] call (benchmarks that were not asked for a trace pay
//!   essentially nothing);
//! * armed: each span writes two fixed-size records (begin at construction,
//!   end at drop) into a buffer owned by the current thread — no locks, no
//!   allocation, no cross-thread traffic on the record path.
//!
//! # Ring-buffer discipline
//!
//! Each thread owns a fixed array of [`TRACE_CAP`] records and an atomic
//! `written` high-water mark. The owning thread is the only writer: it
//! fills slot `written`, then publishes `written + 1` with `Release`. The
//! exporter (any thread, typically after workers have been joined) loads
//! `written` with `Acquire` and reads only below it, so every record it
//! sees is fully written.
//!
//! A full buffer drops *whole spans*, never half of one: a begin record is
//! only written if a slot can also be **reserved** for its matching end
//! (`written + reserved + 2 <= TRACE_CAP`), so the exported stream always
//! has balanced B/E events with per-thread monotone timestamps — the two
//! invariants the Chrome JSON consumer cares about. Dropped spans are
//! counted ([`dropped_spans`]) and surfaced in the exported JSON.

use crate::json::Json;
use std::cell::{Cell, OnceCell, UnsafeCell};
use std::path::Path;
use std::sync::atomic::Ordering::{Acquire, Relaxed, Release};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Per-thread record capacity. 64Ki records = 32Ki spans per thread; at 40
/// bytes per record the fixed memory cost is 2.5 MiB per traced thread.
pub const TRACE_CAP: usize = 1 << 16;

/// One begin or end record. `name` is the static span name; `arg` is the
/// caller's u64 payload (chunk length, trial count, flag bits, …), carried
/// on the begin record only.
#[derive(Clone, Copy)]
pub(crate) struct Record {
    pub(crate) name: &'static str,
    pub(crate) arg: u64,
    pub(crate) ts_ns: u64,
    pub(crate) end: bool,
}

const EMPTY_RECORD: Record = Record {
    name: "",
    arg: 0,
    ts_ns: 0,
    end: false,
};

/// A thread's span buffer. Slots below `written` are immutable history;
/// the owning thread is the only writer.
struct ThreadBuf {
    tid: u32,
    written: AtomicUsize,
    dropped: AtomicU64,
    slots: Box<[UnsafeCell<Record>]>,
}

// SAFETY: slot `i` is written exactly once, by the owning thread, before
// `written` advances past `i` with Release ordering; readers dereference
// only slots below an Acquire-loaded `written`, so they never race with a
// write to the same slot.
unsafe impl Sync for ThreadBuf {}

fn registry() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
    static BUFS: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
    BUFS.get_or_init(|| Mutex::new(Vec::new()))
}

static NEXT_TID: AtomicU32 = AtomicU32::new(1);
static ARMED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();

struct Local {
    buf: OnceCell<Arc<ThreadBuf>>,
    /// Open spans whose begin record was written; each holds one reserved
    /// slot so its end record can never be dropped.
    reserved: Cell<usize>,
}

thread_local! {
    static LOCAL: Local = const {
        Local {
            buf: OnceCell::new(),
            reserved: Cell::new(0),
        }
    };
}

/// Start collecting spans (idempotent). Until this is called, [`span`]
/// costs one relaxed load. No-op when the `telemetry` feature is off.
pub fn arm() {
    if !crate::ENABLED {
        return;
    }
    EPOCH.get_or_init(Instant::now);
    ARMED.store(true, Release);
}

/// Whether spans are currently being collected.
#[inline(always)]
pub fn armed() -> bool {
    crate::ENABLED && ARMED.load(Relaxed)
}

#[inline]
fn now_ns() -> u64 {
    EPOCH
        .get()
        .map(|e| e.elapsed().as_nanos().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

/// Open a span. The returned guard writes the end record when dropped;
/// nesting guards nests the spans on the timeline. `arg` is a free u64
/// shown in the trace viewer (chunk size, iteration, flag bits, …).
///
/// ```
/// let _t = mf_telemetry::trace::span("blas.gemm.worker", 128);
/// // ... work ...
/// // end record written here
/// ```
#[inline(always)]
pub fn span(name: &'static str, arg: u64) -> SpanHandle {
    if !armed() {
        return SpanHandle {
            name: "",
            recorded: false,
        };
    }
    span_slow(name, arg)
}

#[cold]
fn span_slow(name: &'static str, arg: u64) -> SpanHandle {
    let recorded = LOCAL
        .try_with(|l| {
            let buf = l.buf.get_or_init(|| {
                let b = Arc::new(ThreadBuf {
                    tid: NEXT_TID.fetch_add(1, Relaxed),
                    written: AtomicUsize::new(0),
                    dropped: AtomicU64::new(0),
                    slots: (0..TRACE_CAP)
                        .map(|_| UnsafeCell::new(EMPTY_RECORD))
                        .collect(),
                });
                registry().lock().unwrap().push(Arc::clone(&b));
                b
            });
            let used = buf.written.load(Relaxed);
            // One slot for this begin, one reserved per open span (ours
            // included) so every written begin can write its end.
            if used + l.reserved.get() + 2 <= TRACE_CAP {
                // SAFETY: `used` is below `written + 1`; only this thread
                // writes, and no reader sees the slot until the Release
                // store below.
                unsafe {
                    *buf.slots[used].get() = Record {
                        name,
                        arg,
                        ts_ns: now_ns(),
                        end: false,
                    };
                }
                buf.written.store(used + 1, Release);
                l.reserved.set(l.reserved.get() + 1);
                true
            } else {
                buf.dropped.fetch_add(1, Relaxed);
                false
            }
        })
        .unwrap_or(false);
    SpanHandle { name, recorded }
}

/// RAII guard returned by [`span`]; writes the end record on drop.
#[must_use = "a span guard bound to `_` ends immediately; bind it to `_t` or a named variable"]
pub struct SpanHandle {
    name: &'static str,
    recorded: bool,
}

impl Drop for SpanHandle {
    #[inline]
    fn drop(&mut self) {
        if self.recorded {
            end_slow(self.name);
        }
    }
}

#[cold]
fn end_slow(name: &'static str) {
    // try_with: a guard dropped during thread teardown (after TLS
    // destruction) has nowhere to record; its reserved slot goes unused.
    let _ = LOCAL.try_with(|l| {
        let Some(buf) = l.buf.get() else { return };
        let used = buf.written.load(Relaxed);
        debug_assert!(used < TRACE_CAP, "end record had no reserved slot");
        if used < TRACE_CAP {
            // SAFETY: same single-writer/publish discipline as the begin.
            unsafe {
                *buf.slots[used].get() = Record {
                    name,
                    arg: 0,
                    ts_ns: now_ns(),
                    end: true,
                };
            }
            buf.written.store(used + 1, Release);
            l.reserved.set(l.reserved.get().saturating_sub(1));
        }
    });
}

/// Total spans dropped across all threads because a buffer was full.
pub fn dropped_spans() -> u64 {
    if !crate::ENABLED {
        return 0;
    }
    registry()
        .lock()
        .unwrap()
        .iter()
        .map(|b| b.dropped.load(Relaxed))
        .sum()
}

/// Total records published across all threads (begin + end).
pub fn recorded_events() -> u64 {
    if !crate::ENABLED {
        return 0;
    }
    registry()
        .lock()
        .unwrap()
        .iter()
        .map(|b| b.written.load(Acquire) as u64)
        .sum()
}

/// Copy every thread's published records (slots below an Acquire-loaded
/// `written`), sorted by internal thread id. Shared walk for the Chrome
/// exporter below and the folded-stack profiler ([`crate::profile`]).
pub(crate) fn thread_records() -> Vec<(u32, Vec<Record>)> {
    if !crate::ENABLED {
        return Vec::new();
    }
    let mut bufs: Vec<Arc<ThreadBuf>> = registry().lock().unwrap().clone();
    bufs.sort_by_key(|b| b.tid);
    bufs.iter()
        .map(|buf| {
            let n = buf.written.load(Acquire).min(TRACE_CAP);
            // SAFETY: i < written (Acquire), so the slot write
            // happened-before this read and is never overwritten.
            let records = (0..n).map(|i| unsafe { *buf.slots[i].get() }).collect();
            (buf.tid, records)
        })
        .collect()
}

/// Render every collected span as a Chrome `trace_event` JSON document
/// (the object form: `{"traceEvents": [...], ...}`), suitable for
/// Perfetto / `chrome://tracing`. Timestamps are microseconds with
/// nanosecond fractions, relative to [`arm`] time; `tid` is the internal
/// per-thread buffer id (stable within a process).
pub fn chrome_trace() -> Json {
    let mut events: Vec<Json> = Vec::new();
    for (tid, records) in thread_records() {
        for r in records {
            let mut obj = vec![
                ("name".into(), Json::str(r.name)),
                ("ph".into(), Json::str(if r.end { "E" } else { "B" })),
                ("ts".into(), Json::Num(r.ts_ns as f64 / 1000.0)),
                ("pid".into(), Json::u64(1)),
                ("tid".into(), Json::u64(tid as u64)),
            ];
            if !r.end {
                obj.push((
                    "args".into(),
                    Json::Obj(vec![("arg".into(), Json::u64(r.arg))]),
                ));
            }
            events.push(Json::Obj(obj));
        }
    }
    Json::Obj(vec![
        ("traceEvents".into(), Json::Arr(events)),
        ("displayTimeUnit".into(), Json::str("ms")),
        (
            "otherData".into(),
            Json::Obj(vec![
                ("schema".into(), Json::str("mf-telemetry/trace/v1")),
                ("dropped_spans".into(), Json::u64(dropped_spans())),
            ]),
        ),
    ])
}

/// Write [`chrome_trace`] to `path`, creating parent directories. With the
/// feature disabled this writes a valid, empty trace.
pub fn export_chrome(path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, chrome_trace().render() + "\n")
}

#[cfg(test)]
mod tests {
    #[cfg(feature = "telemetry")]
    mod enabled {
        use super::super::*;

        /// Events for the given tid, in export order.
        fn thread_events(doc: &Json, tid: u64) -> Vec<Json> {
            doc.get("traceEvents")
                .unwrap()
                .as_arr()
                .unwrap()
                .iter()
                .filter(|e| e.get("tid").unwrap().as_u64() == Some(tid))
                .cloned()
                .collect()
        }

        /// The tid that recorded `name` (panics if several did).
        fn tid_of(doc: &Json, name: &str) -> u64 {
            let tids: std::collections::BTreeSet<u64> = doc
                .get("traceEvents")
                .unwrap()
                .as_arr()
                .unwrap()
                .iter()
                .filter(|e| e.get("name").unwrap().as_str() == Some(name))
                .map(|e| e.get("tid").unwrap().as_u64().unwrap())
                .collect();
            assert_eq!(tids.len(), 1, "span {name} recorded on {tids:?}");
            *tids.iter().next().unwrap()
        }

        /// Balanced B/E + per-thread monotone ts — the two invariants the
        /// Chrome trace_event consumer needs.
        fn assert_well_formed(doc: &Json, tid: u64) {
            let evs = thread_events(doc, tid);
            let mut depth: i64 = 0;
            let mut last_ts = f64::NEG_INFINITY;
            for e in &evs {
                let ts = e.get("ts").unwrap().as_f64().unwrap();
                assert!(ts >= last_ts, "ts not monotone on tid {tid}");
                last_ts = ts;
                match e.get("ph").unwrap().as_str().unwrap() {
                    "B" => depth += 1,
                    "E" => {
                        depth -= 1;
                        assert!(depth >= 0, "E without matching B on tid {tid}");
                    }
                    other => panic!("unexpected phase {other}"),
                }
            }
            assert_eq!(depth, 0, "unbalanced B/E on tid {tid}");
        }

        #[test]
        fn nested_spans_export_balanced_and_monotone() {
            arm();
            std::thread::spawn(|| {
                let _outer = span("test.trace.outer", 7);
                for i in 0..3u64 {
                    let _inner = span("test.trace.inner", i);
                    std::hint::black_box(i);
                }
            })
            .join()
            .unwrap();
            let doc = chrome_trace();
            let tid = tid_of(&doc, "test.trace.outer");
            assert_well_formed(&doc, tid);
            let evs = thread_events(&doc, tid);
            assert_eq!(evs.len(), 8, "1 outer + 3 inner spans = 8 records");
            // First record: outer begin, with its arg payload.
            assert_eq!(
                evs[0].get("name").unwrap().as_str(),
                Some("test.trace.outer")
            );
            assert_eq!(evs[0].get("ph").unwrap().as_str(), Some("B"));
            assert_eq!(
                evs[0].get("args").unwrap().get("arg").unwrap().as_u64(),
                Some(7)
            );
            // Last record: outer end (inner spans close before it).
            assert_eq!(
                evs[7].get("name").unwrap().as_str(),
                Some("test.trace.outer")
            );
            assert_eq!(evs[7].get("ph").unwrap().as_str(), Some("E"));
        }

        #[test]
        fn overflow_drops_whole_spans_and_stays_balanced() {
            arm();
            let spans = TRACE_CAP; // 2x the record budget: must overflow
            let dropped = std::thread::spawn(move || {
                {
                    let _outer = span("test.trace.flood_outer", 0);
                    for i in 0..spans as u64 {
                        let _s = span("test.trace.flood", i);
                    }
                }
                LOCAL.with(|l| {
                    assert_eq!(l.reserved.get(), 0, "all reservations released");
                    l.buf.get().unwrap().dropped.load(Relaxed)
                })
            })
            .join()
            .unwrap();
            assert!(dropped > 0, "flood must overflow the buffer");
            let doc = chrome_trace();
            let tid = tid_of(&doc, "test.trace.flood_outer");
            assert_well_formed(&doc, tid);
            // The buffer is full to (at most) capacity, yet still balanced.
            assert!(thread_events(&doc, tid).len() <= TRACE_CAP);
            assert!(dropped_spans() >= dropped);
        }

        #[test]
        fn export_writes_parseable_file() {
            arm();
            {
                let _s = span("test.trace.file", 1);
            }
            let path = std::env::temp_dir().join("mf-trace-test/trace.json");
            export_chrome(&path).unwrap();
            let text = std::fs::read_to_string(&path).unwrap();
            let doc = Json::parse(&text).unwrap();
            assert!(doc.get("traceEvents").unwrap().as_arr().is_some());
            assert_eq!(
                doc.get("otherData")
                    .unwrap()
                    .get("schema")
                    .unwrap()
                    .as_str(),
                Some("mf-telemetry/trace/v1")
            );
            std::fs::remove_file(&path).ok();
        }
    }

    #[cfg(not(feature = "telemetry"))]
    mod disabled {
        use super::super::*;

        #[test]
        fn tracing_is_inert() {
            arm();
            assert!(!armed());
            {
                let _s = span("test.trace.disabled", 9);
            }
            assert_eq!(recorded_events(), 0);
            assert_eq!(dropped_spans(), 0);
            let doc = chrome_trace();
            assert_eq!(doc.get("traceEvents").unwrap().as_arr().unwrap().len(), 0);
        }
    }
}
