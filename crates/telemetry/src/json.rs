//! Dependency-free JSON: a value model, a renderer (compact and pretty),
//! and a recursive-descent parser.
//!
//! The workspace cannot vendor `serde`/`serde_json` (offline container), so
//! run manifests, bench tables, and the `report` merger all go through this
//! module. It covers the JSON this workspace writes: objects preserve
//! insertion order, numbers are `f64` (rendered without a fractional part
//! when they are exact integers), strings escape control characters and
//! `"`/`\\`. Non-finite numbers render as `null` (JSON has no NaN/Inf).

use std::collections::VecDeque;
use std::fmt::Write as _;

/// A JSON value. Object fields keep insertion order (stable manifests
/// diff cleanly across runs).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn num(v: impl Into<f64>) -> Json {
        Json::Num(v.into())
    }

    /// u64 counters: exact below 2^53, saturating into f64 above (telemetry
    /// counters never plausibly reach 9e15 increments in one process).
    pub fn u64(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Compact rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with 2-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (the full input must be one value plus
    /// whitespace).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn write_num(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v.fract() == 0.0 && v.abs() < 9.0e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        let mut pending_surrogate: Option<u16> = None;
        loop {
            let b = self
                .peek()
                .ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => {
                    if pending_surrogate.is_some() {
                        return Err("unpaired surrogate".into());
                    }
                    return Ok(out);
                }
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    let simple = match esc {
                        b'"' => Some('"'),
                        b'\\' => Some('\\'),
                        b'/' => Some('/'),
                        b'b' => Some('\u{8}'),
                        b'f' => Some('\u{c}'),
                        b'n' => Some('\n'),
                        b'r' => Some('\r'),
                        b't' => Some('\t'),
                        b'u' => None,
                        other => {
                            return Err(format!("bad escape '\\{}'", other as char));
                        }
                    };
                    if let Some(c) = simple {
                        if pending_surrogate.is_some() {
                            return Err("unpaired surrogate".into());
                        }
                        out.push(c);
                        continue;
                    }
                    // \uXXXX
                    if self.pos + 4 > self.bytes.len() {
                        return Err("truncated \\u escape".into());
                    }
                    let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                        .map_err(|_| "bad \\u escape".to_string())?;
                    let unit =
                        u16::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".to_string())?;
                    self.pos += 4;
                    match pending_surrogate.take() {
                        Some(hi) => {
                            if (0xDC00..=0xDFFF).contains(&unit) {
                                let c =
                                    0x10000 + ((hi as u32 - 0xD800) << 10) + (unit as u32 - 0xDC00);
                                out.push(
                                    char::from_u32(c)
                                        .ok_or_else(|| "bad surrogate pair".to_string())?,
                                );
                            } else {
                                return Err("unpaired surrogate".into());
                            }
                        }
                        None => {
                            if (0xD800..=0xDBFF).contains(&unit) {
                                pending_surrogate = Some(unit);
                            } else if (0xDC00..=0xDFFF).contains(&unit) {
                                return Err("unpaired surrogate".into());
                            } else {
                                out.push(
                                    char::from_u32(unit as u32)
                                        .ok_or_else(|| "bad \\u escape".to_string())?,
                                );
                            }
                        }
                    }
                }
                _ => {
                    if pending_surrogate.is_some() {
                        return Err("unpaired surrogate".into());
                    }
                    // Re-read the full UTF-8 char from the byte position.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

/// Breadth-first iterator over `(path, value)` pairs — handy for digests.
pub fn walk(root: &Json) -> Vec<(String, &Json)> {
    let mut out = Vec::new();
    let mut queue: VecDeque<(String, &Json)> = VecDeque::new();
    queue.push_back((String::new(), root));
    while let Some((path, v)) = queue.pop_front() {
        match v {
            Json::Obj(fields) => {
                for (k, child) in fields {
                    let p = if path.is_empty() {
                        k.clone()
                    } else {
                        format!("{path}.{k}")
                    };
                    queue.push_back((p, child));
                }
            }
            Json::Arr(items) => {
                for (i, child) in items.iter().enumerate() {
                    queue.push_back((format!("{path}[{i}]"), child));
                }
            }
            _ => out.push((path, v)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = Json::Obj(vec![
            ("name".into(), Json::str("tables")),
            ("count".into(), Json::u64(12345678901234)),
            ("ratio".into(), Json::Num(0.25)),
            ("ok".into(), Json::Bool(true)),
            ("nothing".into(), Json::Null),
            (
                "items".into(),
                Json::Arr(vec![Json::Num(1.0), Json::str("two"), Json::Bool(false)]),
            ),
            ("empty_obj".into(), Json::Obj(vec![])),
            ("empty_arr".into(), Json::Arr(vec![])),
        ]);
        for text in [v.render(), v.render_pretty()] {
            let back = Json::parse(&text).unwrap();
            assert_eq!(back, v, "through {text}");
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "quote \" backslash \\ newline \n tab \t unicode é 鱼 control \u{1}";
        let v = Json::Str(s.into());
        let back = Json::parse(&v.render()).unwrap();
        assert_eq!(back.as_str().unwrap(), s);
    }

    #[test]
    fn parses_foreign_json() {
        let v =
            Json::parse(r#"{ "a": [1, 2.5, -3e-2], "b": {"c": "\u0041\ud83d\ude00"}, "d": null }"#)
                .unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-0.03)
        );
        assert_eq!(
            v.get("b").unwrap().get("c").unwrap().as_str(),
            Some("A\u{1F600}")
        );
        assert_eq!(v.get("d"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["{", "[1,]", "{\"a\" 1}", "12x", "\"\\q\"", "{} {}", ""] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn integers_render_exactly() {
        let v = Json::u64((1u64 << 53) - 1);
        assert_eq!(v.render(), format!("{}", (1u64 << 53) - 1));
        assert_eq!(
            Json::parse(&v.render()).unwrap().as_u64(),
            Some((1 << 53) - 1)
        );
    }

    #[test]
    fn control_chars_and_quotes_escape_losslessly() {
        // Every C0 control character, plus embedded quotes/backslashes in
        // key *and* value position (manifest section names are free-form).
        let mut all_controls = String::new();
        for c in 0u32..0x20 {
            all_controls.push(char::from_u32(c).unwrap());
        }
        let v = Json::Obj(vec![
            (all_controls.clone(), Json::str(&all_controls)),
            (
                "quo\"te\\key".into(),
                Json::str("say \"hi\" \\ bye \u{7f} \u{0} end"),
            ),
        ]);
        for text in [v.render(), v.render_pretty()] {
            let back = Json::parse(&text).unwrap();
            assert_eq!(back, v, "through {text:?}");
        }
        // The rendering itself must never contain a raw control byte.
        assert!(v.render().bytes().all(|b| b >= 0x20));
    }

    #[test]
    fn u_escape_edge_cases() {
        // NUL escape, a BMP escape, a surrogate-pair escape, a literal
        // astral char, and an accented escape all parse to the same code
        // points.
        let v = Json::parse("\"\\u0000\\u0041\\ud83d\\ude00\u{1F600}\\u00e9\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "\u{0}A\u{1F600}\u{1F600}\u{e9}");
        // Lone or inverted surrogates and truncated escapes are malformed.
        for bad in [
            "\"\\ud800\"",
            "\"\\ud800x\"",
            "\"\\ude00\\ud83d\"",
            "\"\\u12",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad}");
        }
    }

    #[test]
    fn non_finite_numbers_render_null() {
        // JSON has no NaN/Inf: the writer must not emit tokens other JSON
        // consumers (Perfetto included) reject.
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let doc = Json::Obj(vec![("x".into(), Json::Num(v))]);
            let text = doc.render();
            assert_eq!(text, r#"{"x":null}"#);
            let back = Json::parse(&text).unwrap();
            assert_eq!(back.get("x"), Some(&Json::Null));
        }
        // An overflowing literal parses to Num(inf) (Rust f64 semantics) —
        // and then re-renders as null, so a render cycle normalizes it.
        let overflow = Json::parse("1e999").unwrap();
        assert_eq!(overflow, Json::Num(f64::INFINITY));
        assert_eq!(overflow.render(), "null");
    }

    #[test]
    fn manifest_parse_serialize_parse_is_fixed_point() {
        // A representative manifest document (foreign-authored: hand-written
        // text, not a render() output) must reach a fixed point after one
        // parse→render cycle: parse(render(parse(text))) == parse(text).
        let text = r#"{
          "schema": "mf-telemetry/manifest/v1",
          "tool": "tables", "config": "wide", "telemetry_enabled": true,
          "platform": {"os": "linux", "arch": "x86_64", "family": "unix",
                       "rustc": "rustc 1.95.0", "label": "ci \"quick\"",
                       "rustflags": "-C target-cpu=native", "available_parallelism": 16},
          "threads": 8, "unix_time": 1770000000, "wall_ms": 1234.5,
          "counters": {"core.renorm.calls": 42},
          "histograms": [], "sections": [{"name": "bench.axpy\n", "total_ns": 5000000, "count": 2}],
          "events": [{"name": "search.progress", "fields": {"iter": 100.0}}],
          "dropped_events": 0
        }"#;
        let first = Json::parse(text).unwrap();
        let second = Json::parse(&first.render()).unwrap();
        assert_eq!(first, second);
        let third = Json::parse(&second.render_pretty()).unwrap();
        assert_eq!(second, third);
    }

    #[test]
    fn walk_produces_paths() {
        let v = Json::parse(r#"{"a": {"b": 1}, "c": [2, 3]}"#).unwrap();
        let flat = walk(&v);
        let paths: Vec<&str> = flat.iter().map(|(p, _)| p.as_str()).collect();
        assert!(paths.contains(&"a.b"));
        assert!(paths.contains(&"c[0]"));
    }
}
