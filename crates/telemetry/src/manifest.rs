//! Structured JSON "run manifest" emitted by every bench binary.
//!
//! A manifest captures everything needed to interpret (and re-run) a
//! measurement: the tool and configuration, the platform and build flags,
//! thread count, wall time, per-section timings, and a full snapshot of
//! every telemetry counter/histogram plus retained events. The `report`
//! binary in `mf-bench` merges the manifests under `results/` into a
//! digest; [`RunManifest::from_json`] is the parser it uses.

use crate::json::Json;
use crate::{Event, HistogramSnapshot, SectionSnapshot, Snapshot};
use std::io::Write;
use std::path::Path;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

/// Build/host description recorded in every manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    pub os: String,
    pub arch: String,
    pub family: String,
    /// `rustc --version` of the compiler that built this crate.
    pub rustc: String,
    /// `MF_PLATFORM_LABEL` if set (the experiment scripts use it to tag
    /// machines), empty otherwise.
    pub label: String,
    /// `RUSTFLAGS` at run time — *not* necessarily the flags the binary was
    /// compiled with, but the experiment scripts always export them for the
    /// whole build+run pipeline.
    pub rustflags: String,
    pub available_parallelism: u64,
}

impl Platform {
    pub fn detect() -> Self {
        Platform {
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            family: std::env::consts::FAMILY.to_string(),
            rustc: env!("MF_RUSTC_VERSION").to_string(),
            label: std::env::var("MF_PLATFORM_LABEL").unwrap_or_default(),
            rustflags: std::env::var("RUSTFLAGS").unwrap_or_default(),
            available_parallelism: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(1),
        }
    }

    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("os".into(), Json::str(&self.os)),
            ("arch".into(), Json::str(&self.arch)),
            ("family".into(), Json::str(&self.family)),
            ("rustc".into(), Json::str(&self.rustc)),
            ("label".into(), Json::str(&self.label)),
            ("rustflags".into(), Json::str(&self.rustflags)),
            (
                "available_parallelism".into(),
                Json::u64(self.available_parallelism),
            ),
        ])
    }

    fn from_json(j: &Json) -> Option<Self> {
        Some(Platform {
            os: j.get("os")?.as_str()?.to_string(),
            arch: j.get("arch")?.as_str()?.to_string(),
            family: j.get("family")?.as_str()?.to_string(),
            rustc: j.get("rustc")?.as_str()?.to_string(),
            label: j.get("label")?.as_str()?.to_string(),
            rustflags: j.get("rustflags")?.as_str()?.to_string(),
            available_parallelism: j.get("available_parallelism")?.as_u64()?,
        })
    }
}

/// A completed run: identification, environment, timing, and the telemetry
/// snapshot taken at the end of the run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Binary that produced the run (`tables`, `gpu_sim`, ...).
    pub tool: String,
    /// Tool-specific configuration string (`wide`, `narrow`, ...).
    pub config: String,
    /// Whether the binary was compiled with the `telemetry` feature.
    pub telemetry_enabled: bool,
    pub platform: Platform,
    /// Worker thread count used by the run (0 = unspecified/serial).
    pub threads: u64,
    /// Seconds since the Unix epoch when the manifest was collected.
    pub unix_time: u64,
    pub wall_ms: f64,
    pub snapshot: Snapshot,
    /// Free-form extra fields (per-tool results, notes).
    pub extra: Vec<(String, Json)>,
}

impl RunManifest {
    /// Collect a manifest for `tool` run with `config`, where `started` was
    /// taken at process start.
    pub fn collect(tool: &str, config: &str, threads: usize, started: Instant) -> Self {
        RunManifest {
            tool: tool.to_string(),
            config: config.to_string(),
            telemetry_enabled: crate::ENABLED,
            platform: Platform::detect(),
            threads: threads as u64,
            unix_time: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
            snapshot: crate::snapshot(),
            extra: Vec::new(),
        }
    }

    /// Attach a tool-specific extra field.
    pub fn with_extra(mut self, key: &str, value: Json) -> Self {
        self.extra.push((key.to_string(), value));
        self
    }

    pub fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.snapshot
                .counters
                .iter()
                .map(|(name, v)| (name.clone(), Json::u64(*v)))
                .collect(),
        );
        let gauges = Json::Obj(
            self.snapshot
                .gauges
                .iter()
                .map(|(name, v)| (name.clone(), Json::Num(*v as f64)))
                .collect(),
        );
        let histograms = Json::Arr(
            self.snapshot
                .histograms
                .iter()
                .map(|h| {
                    Json::Obj(vec![
                        ("name".into(), Json::str(&h.name)),
                        ("count".into(), Json::u64(h.count)),
                        ("sum".into(), Json::u64(h.sum)),
                        (
                            "buckets".into(),
                            Json::Arr(h.buckets.iter().map(|&b| Json::u64(b)).collect()),
                        ),
                    ])
                })
                .collect(),
        );
        let sections = Json::Arr(
            self.snapshot
                .sections
                .iter()
                .map(|s| {
                    let mut obj = vec![
                        ("name".into(), Json::str(&s.name)),
                        ("total_ns".into(), Json::u64(s.total_ns)),
                        ("count".into(), Json::u64(s.count)),
                    ];
                    if s.sketch.count > 0 {
                        // Per-call latency distribution: exact min/max,
                        // derived quantiles (for humans/diffs), and the raw
                        // mergeable log2 buckets.
                        obj.push(("min_ns".into(), Json::u64(s.sketch.min)));
                        obj.push(("max_ns".into(), Json::u64(s.sketch.max)));
                        obj.push(("p50_ns".into(), Json::u64(s.sketch.p50())));
                        obj.push(("p90_ns".into(), Json::u64(s.sketch.p90())));
                        obj.push(("p99_ns".into(), Json::u64(s.sketch.p99())));
                        obj.push((
                            "buckets".into(),
                            Json::Arr(s.sketch.buckets.iter().map(|&b| Json::u64(b)).collect()),
                        ));
                    }
                    Json::Obj(obj)
                })
                .collect(),
        );
        let events = Json::Arr(
            self.snapshot
                .events
                .iter()
                .map(|e| {
                    Json::Obj(vec![
                        ("name".into(), Json::str(&e.name)),
                        (
                            "fields".into(),
                            Json::Obj(
                                e.fields
                                    .iter()
                                    .map(|(k, v)| (k.clone(), Json::Num(*v)))
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        let mut obj = vec![
            ("schema".into(), Json::str("mf-telemetry/manifest/v1")),
            ("tool".into(), Json::str(&self.tool)),
            ("config".into(), Json::str(&self.config)),
            (
                "telemetry_enabled".into(),
                Json::Bool(self.telemetry_enabled),
            ),
            ("platform".into(), self.platform.to_json()),
            ("threads".into(), Json::u64(self.threads)),
            ("unix_time".into(), Json::u64(self.unix_time)),
            ("wall_ms".into(), Json::Num(self.wall_ms)),
            ("counters".into(), counters),
            ("gauges".into(), gauges),
            ("histograms".into(), histograms),
            ("sections".into(), sections),
            ("events".into(), events),
            (
                "dropped_events".into(),
                Json::u64(self.snapshot.dropped_events),
            ),
        ];
        for (k, v) in &self.extra {
            obj.push((k.clone(), v.clone()));
        }
        Json::Obj(obj)
    }

    pub fn from_json(j: &Json) -> Option<Self> {
        let schema = j.get("schema")?.as_str()?;
        if schema != "mf-telemetry/manifest/v1" {
            return None;
        }
        let counters = j
            .get("counters")?
            .as_obj()?
            .iter()
            .filter_map(|(k, v)| Some((k.clone(), v.as_u64()?)))
            .collect();
        // Optional: pre-gauge manifests (schema v1 before the live hub)
        // parse to an empty gauge list.
        let gauges = j
            .get("gauges")
            .and_then(|g| g.as_obj())
            .map(|obj| {
                obj.iter()
                    .filter_map(|(k, v)| Some((k.clone(), v.as_f64()? as i64)))
                    .collect()
            })
            .unwrap_or_default();
        let histograms = j
            .get("histograms")?
            .as_arr()?
            .iter()
            .filter_map(|h| {
                let raw = h.get("buckets")?.as_arr()?;
                let mut buckets = [0u64; 65];
                for (i, b) in raw.iter().take(65).enumerate() {
                    buckets[i] = b.as_u64()?;
                }
                Some(HistogramSnapshot {
                    name: h.get("name")?.as_str()?.to_string(),
                    count: h.get("count")?.as_u64()?,
                    sum: h.get("sum")?.as_u64()?,
                    buckets,
                })
            })
            .collect();
        let sections = j
            .get("sections")?
            .as_arr()?
            .iter()
            .filter_map(|s| {
                let count = s.get("count")?.as_u64()?;
                // Sketch fields are optional: pre-sketch manifests (and
                // zero-count sections) parse to an empty sketch.
                let sketch = (|| {
                    let raw = s.get("buckets")?.as_arr()?;
                    let mut buckets = [0u64; 65];
                    for (i, b) in raw.iter().take(65).enumerate() {
                        buckets[i] = b.as_u64()?;
                    }
                    Some(crate::SketchSnapshot {
                        count,
                        min: s.get("min_ns")?.as_u64()?,
                        max: s.get("max_ns")?.as_u64()?,
                        buckets,
                    })
                })()
                .unwrap_or_default();
                Some(SectionSnapshot {
                    name: s.get("name")?.as_str()?.to_string(),
                    total_ns: s.get("total_ns")?.as_u64()?,
                    count,
                    sketch,
                })
            })
            .collect();
        let events = j
            .get("events")?
            .as_arr()?
            .iter()
            .filter_map(|e| {
                Some(Event {
                    name: e.get("name")?.as_str()?.to_string(),
                    fields: e
                        .get("fields")?
                        .as_obj()?
                        .iter()
                        .filter_map(|(k, v)| Some((k.clone(), v.as_f64()?)))
                        .collect(),
                })
            })
            .collect();
        let known = [
            "schema",
            "tool",
            "config",
            "telemetry_enabled",
            "platform",
            "threads",
            "unix_time",
            "wall_ms",
            "counters",
            "gauges",
            "histograms",
            "sections",
            "events",
            "dropped_events",
        ];
        let extra = j
            .as_obj()?
            .iter()
            .filter(|(k, _)| !known.contains(&k.as_str()))
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        Some(RunManifest {
            tool: j.get("tool")?.as_str()?.to_string(),
            config: j.get("config")?.as_str()?.to_string(),
            telemetry_enabled: j.get("telemetry_enabled")?.as_bool()?,
            platform: Platform::from_json(j.get("platform")?)?,
            threads: j.get("threads")?.as_u64()?,
            unix_time: j.get("unix_time")?.as_u64()?,
            wall_ms: j.get("wall_ms")?.as_f64()?,
            snapshot: Snapshot {
                counters,
                gauges,
                histograms,
                sections,
                events,
                dropped_events: j.get("dropped_events")?.as_u64()?,
            },
            extra,
        })
    }

    /// Write the manifest (pretty-printed) to `path`, creating parent
    /// directories as needed.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().render_pretty().as_bytes())?;
        f.write_all(b"\n")
    }

    /// Read and parse a manifest file.
    pub fn read(path: &Path) -> std::io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        let j = Json::parse(&text).map_err(|e| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{}: {e}", path.display()),
            )
        })?;
        Self::from_json(&j).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!(
                    "{}: not a mf-telemetry/manifest/v1 document",
                    path.display()
                ),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunManifest {
        RunManifest {
            tool: "tables".into(),
            config: "wide".into(),
            telemetry_enabled: true,
            platform: Platform {
                os: "linux".into(),
                arch: "x86_64".into(),
                family: "unix".into(),
                rustc: "rustc 1.95.0".into(),
                label: "m1".into(),
                rustflags: "-Ctarget-cpu=native".into(),
                available_parallelism: 16,
            },
            threads: 8,
            unix_time: 1_770_000_000,
            wall_ms: 1234.5,
            snapshot: Snapshot {
                counters: vec![
                    ("core.renorm.calls".into(), 42),
                    ("fpan.exec.two_sum".into(), 1000),
                ],
                gauges: vec![
                    ("pool.queue_depth".into(), 3),
                    ("pool.workers_busy".into(), -1),
                ],
                histograms: vec![HistogramSnapshot {
                    name: "core.renorm.cancellation_bits".into(),
                    count: 3,
                    sum: 17,
                    buckets: {
                        let mut b = [0u64; 65];
                        b[3] = 2;
                        b[4] = 1;
                        b
                    },
                }],
                sections: vec![SectionSnapshot {
                    name: "bench.axpy".into(),
                    total_ns: 5_000_000,
                    count: 2,
                    sketch: crate::SketchSnapshot::from_samples([2_000_000u64, 3_000_000]),
                }],
                events: vec![Event {
                    name: "search.progress".into(),
                    fields: vec![("iter".into(), 100.0), ("best_size".into(), 6.0)],
                }],
                dropped_events: 0,
            },
            extra: vec![("note".into(), Json::str("hand-built"))],
        }
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let m = sample();
        let text = m.to_json().render_pretty();
        let parsed = RunManifest::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn compact_render_round_trips_too() {
        let m = sample();
        let parsed = RunManifest::from_json(&Json::parse(&m.to_json().render()).unwrap()).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let j = Json::parse(r#"{"schema":"something/else","tool":"x"}"#).unwrap();
        assert!(RunManifest::from_json(&j).is_none());
    }

    #[test]
    fn collect_fills_platform_and_timing() {
        let start = Instant::now();
        let m = RunManifest::collect("unit-test", "default", 4, start);
        assert_eq!(m.tool, "unit-test");
        assert_eq!(m.threads, 4);
        assert_eq!(m.telemetry_enabled, crate::ENABLED);
        assert!(!m.platform.os.is_empty());
        assert!(m.platform.available_parallelism >= 1);
        assert!(m.wall_ms >= 0.0);
    }

    #[test]
    fn write_and_read_file() {
        let dir = std::env::temp_dir().join("mf-telemetry-test");
        let path = dir.join("manifest_test.json");
        let m = sample();
        m.write(&path).unwrap();
        let back = RunManifest::read(&path).unwrap();
        assert_eq!(back, m);
        std::fs::remove_file(&path).ok();
    }
}
