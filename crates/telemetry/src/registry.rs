//! The live metrics registry: the process-wide aggregation point the
//! observability hub ([`crate::expose`], `mfstat`, and run manifests) reads
//! from.
//!
//! The counter/histogram/section probes in [`crate`] already self-register
//! and [`crate::snapshot`] already rolls them up into a point-in-time
//! [`Snapshot`]. This module adds the two pieces a *live* consumer needs:
//!
//! * [`Gauge`] — a lock-free signed level probe (queue depth, busy workers,
//!   in-flight jobs, current annealing round). Counters only ever go up;
//!   gauges track the instantaneous value of something that goes both ways.
//!   Same cost model as [`Counter`](crate::Counter): a relaxed atomic op
//!   when the `telemetry` feature is on, a const-folded no-op otherwise.
//! * **Delta support** — [`Snapshot::delta_since`] subtracts an earlier
//!   snapshot from a later one, yielding the activity *window* between two
//!   scrapes. Because every underlying probe is monotone (counters and
//!   section/histogram buckets only increase), successive snapshots are
//!   monotone too and deltas are always non-negative; concurrent increments
//!   during the snapshot walk can only land in the next window, never
//!   vanish. Gauges are levels, not rates, so a delta carries the *later*
//!   snapshot's gauge values unchanged.
//!
//! [`snapshot_json`] serializes the counter + gauge end-state as a compact
//! JSON object; the `conformance` and `faultsim` bench binaries attach it
//! to their manifests so guard/pool gauge end-state is captured in the
//! artifacts CI already uploads.

use crate::json::Json;
use crate::{Snapshot, ENABLED};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering::Relaxed};

/// A named signed level probe. Declare as `static` next to the code it
/// instruments:
///
/// ```
/// use mf_telemetry::Gauge;
/// static QUEUE_DEPTH: Gauge = Gauge::new("pool.queue_depth");
/// QUEUE_DEPTH.incr();
/// QUEUE_DEPTH.set(3);
/// QUEUE_DEPTH.decr();
/// ```
pub struct Gauge {
    name: &'static str,
    value: AtomicI64,
    registered: AtomicBool,
}

impl Gauge {
    pub const fn new(name: &'static str) -> Self {
        Gauge {
            name,
            value: AtomicI64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Set the level (registers the gauge even when the value is 0, so a
    /// probe that legitimately sits at zero still shows up in scrapes).
    #[inline(always)]
    pub fn set(&'static self, v: i64) {
        if !ENABLED {
            return;
        }
        self.value.store(v, Relaxed);
        if !self.registered.load(Relaxed) {
            self.register_slow();
        }
    }

    #[inline(always)]
    pub fn add(&'static self, n: i64) {
        if !ENABLED {
            return;
        }
        self.value.fetch_add(n, Relaxed);
        if !self.registered.load(Relaxed) {
            self.register_slow();
        }
    }

    #[inline(always)]
    pub fn sub(&'static self, n: i64) {
        self.add(-n);
    }

    #[inline(always)]
    pub fn incr(&'static self) {
        self.add(1);
    }

    #[inline(always)]
    pub fn decr(&'static self) {
        self.add(-1);
    }

    #[cold]
    fn register_slow(&'static self) {
        if self
            .registered
            .compare_exchange(false, true, Relaxed, Relaxed)
            .is_ok()
        {
            crate::registry().gauges.lock().unwrap().push(self);
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    pub fn get(&self) -> i64 {
        self.value.load(Relaxed)
    }
}

impl Snapshot {
    /// The activity window between `base` (earlier) and `self` (later):
    /// counter increments, section/histogram growth, the events retained
    /// since `base`. Monotone probes guarantee non-negative deltas; the
    /// subtraction still saturates defensively so a mismatched pair (e.g.
    /// snapshots from different processes) cannot underflow.
    ///
    /// Window semantics per probe kind:
    ///
    /// * **counters** — increment over the window;
    /// * **gauges** — levels, not rates: the later snapshot's value;
    /// * **sections/histograms** — count/sum/bucket growth over the window.
    ///   `min`/`max` remain *lifetime* extremes (the atomics fold min/max
    ///   over the whole process; a window-local extreme is not recoverable);
    /// * **events** — the suffix retained after `base`'s retained events.
    pub fn delta_since(&self, base: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(name, v)| {
                let b = base
                    .counters
                    .iter()
                    .find(|(bn, _)| bn == name)
                    .map(|(_, bv)| *bv)
                    .unwrap_or(0);
                (name.clone(), v.saturating_sub(b))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|h| {
                let mut h = h.clone();
                if let Some(b) = base.histograms.iter().find(|b| b.name == h.name) {
                    h.count = h.count.saturating_sub(b.count);
                    h.sum = h.sum.saturating_sub(b.sum);
                    for (hb, bb) in h.buckets.iter_mut().zip(&b.buckets) {
                        *hb = hb.saturating_sub(*bb);
                    }
                }
                h
            })
            .collect();
        let sections = self
            .sections
            .iter()
            .map(|s| {
                let mut s = s.clone();
                if let Some(b) = base.sections.iter().find(|b| b.name == s.name) {
                    s.total_ns = s.total_ns.saturating_sub(b.total_ns);
                    s.count = s.count.saturating_sub(b.count);
                    s.sketch.count = s.sketch.count.saturating_sub(b.sketch.count);
                    for (sb, bb) in s.sketch.buckets.iter_mut().zip(&b.sketch.buckets) {
                        *sb = sb.saturating_sub(*bb);
                    }
                }
                s
            })
            .collect();
        Snapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
            sections,
            events: self.events.get(base.events.len()..).unwrap_or(&[]).to_vec(),
            dropped_events: self.dropped_events.saturating_sub(base.dropped_events),
        }
    }
}

/// Compact JSON of the registry's counter + gauge end-state, for embedding
/// in run-manifest `extra` fields:
/// `{"counters": {...}, "gauges": {...}}`.
pub fn snapshot_json() -> Json {
    let snap = crate::snapshot();
    Json::Obj(vec![
        (
            "counters".into(),
            Json::Obj(
                snap.counters
                    .iter()
                    .map(|(n, v)| (n.clone(), Json::u64(*v)))
                    .collect(),
            ),
        ),
        (
            "gauges".into(),
            Json::Obj(
                snap.gauges
                    .iter()
                    .map(|(n, v)| (n.clone(), Json::Num(*v as f64)))
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    #[cfg(feature = "telemetry")]
    mod enabled {
        use crate::*;

        #[test]
        fn gauge_levels_move_both_ways() {
            static G: Gauge = Gauge::new("test.gauge.levels");
            G.set(5);
            G.add(3);
            G.sub(2);
            G.incr();
            G.decr();
            assert_eq!(G.get(), 6);
            let snap = snapshot();
            assert_eq!(
                snap.gauges
                    .iter()
                    .find(|(n, _)| n == "test.gauge.levels")
                    .map(|(_, v)| *v),
                Some(6)
            );
        }

        #[test]
        fn gauge_set_zero_still_registers() {
            static G: Gauge = Gauge::new("test.gauge.zero");
            G.set(0);
            assert!(snapshot()
                .gauges
                .iter()
                .any(|(n, _)| n == "test.gauge.zero"));
        }

        /// Satellite: snapshot/delta monotonicity under concurrent
        /// increments. Snapshots taken while writers hammer the probes must
        /// be monotone (each window non-negative) and the windows must tile:
        /// they sum to exactly last - first.
        #[test]
        fn snapshots_are_monotone_under_concurrent_increments() {
            static C: Counter = Counter::new("test.registry.monotone.counter");
            static S: Section = Section::new("test.registry.monotone.section");
            C.incr(); // ensure registration before the first snapshot
            S.add_ns(1);
            let stop = std::sync::atomic::AtomicBool::new(false);
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    scope.spawn(|| {
                        while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                            C.add(3);
                            S.add_ns(17);
                        }
                    });
                }
                let mut snaps = Vec::new();
                for _ in 0..50 {
                    snaps.push(snapshot());
                }
                stop.store(true, std::sync::atomic::Ordering::Relaxed);

                let value = |s: &Snapshot| {
                    s.counters
                        .iter()
                        .find(|(n, _)| n == "test.registry.monotone.counter")
                        .map(|(_, v)| *v)
                        .unwrap()
                };
                let sketch_count = |s: &Snapshot| {
                    s.sections
                        .iter()
                        .find(|x| x.name == "test.registry.monotone.section")
                        .map(|x| x.sketch.count)
                        .unwrap()
                };
                let mut summed = 0;
                for w in snaps.windows(2) {
                    assert!(value(&w[1]) >= value(&w[0]), "counter not monotone");
                    assert!(
                        sketch_count(&w[1]) >= sketch_count(&w[0]),
                        "sketch not monotone"
                    );
                    let d = w[1].delta_since(&w[0]);
                    summed += value(&d);
                    // Window sketch growth matches the bucket growth.
                    let ds = d
                        .sections
                        .iter()
                        .find(|x| x.name == "test.registry.monotone.section")
                        .unwrap();
                    assert_eq!(
                        ds.sketch.buckets.iter().sum::<u64>(),
                        ds.sketch.count,
                        "delta buckets must tile the delta count"
                    );
                }
                assert_eq!(
                    summed,
                    value(snaps.last().unwrap()) - value(&snaps[0]),
                    "windows must tile exactly"
                );
            });
        }

        #[test]
        fn delta_keeps_gauge_levels_and_event_suffix() {
            static G: Gauge = Gauge::new("test.registry.delta.gauge");
            G.set(7);
            let base = snapshot();
            G.set(3);
            event("test.registry.delta.event", &[("x", 1.0)]);
            let later = snapshot();
            let d = later.delta_since(&base);
            assert_eq!(
                d.gauges
                    .iter()
                    .find(|(n, _)| n == "test.registry.delta.gauge")
                    .map(|(_, v)| *v),
                Some(3),
                "gauges are levels: the later snapshot's value"
            );
            assert!(d
                .events
                .iter()
                .any(|e| e.name == "test.registry.delta.event"));
            assert_eq!(d.events.len(), later.events.len() - base.events.len());
        }

        #[test]
        fn snapshot_json_carries_counters_and_gauges() {
            static C: Counter = Counter::new("test.registry.json.counter");
            static G: Gauge = Gauge::new("test.registry.json.gauge");
            C.add(11);
            G.set(-4);
            let j = registry::snapshot_json();
            assert_eq!(
                j.get("counters")
                    .unwrap()
                    .get("test.registry.json.counter")
                    .unwrap()
                    .as_u64(),
                Some(11)
            );
            assert_eq!(
                j.get("gauges")
                    .unwrap()
                    .get("test.registry.json.gauge")
                    .unwrap()
                    .as_f64(),
                Some(-4.0)
            );
        }
    }

    #[cfg(not(feature = "telemetry"))]
    mod disabled {
        use crate::*;

        #[test]
        fn gauges_are_noops() {
            static G: Gauge = Gauge::new("test.gauge.disabled");
            G.set(5);
            G.add(3);
            G.incr();
            assert_eq!(G.get(), 0);
            assert!(snapshot().gauges.is_empty());
            let j = registry::snapshot_json();
            assert_eq!(j.get("gauges").unwrap().as_obj().unwrap().len(), 0);
        }
    }
}
