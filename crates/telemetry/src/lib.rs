//! `mf-telemetry`: zero-overhead numerical & performance telemetry.
//!
//! The paper's evaluation rests on claims about hot-path behavior — gate
//! counts per FPAN, renormalization work, thread scaling, Gop/s — but the
//! hot paths themselves are branch-free straight-line code that must not be
//! perturbed by observation. This crate resolves that tension with a
//! *compile-time* switch:
//!
//! * with the `telemetry` cargo feature **disabled** (the default),
//!   [`ENABLED`] is `const false` and every probe below compiles to a true
//!   no-op — no atomic, no branch, no registration, nothing for the
//!   optimizer to keep (the ablation bench in `mf-bench` pins the residual
//!   overhead at ≤1–2% on AXPY/DOT, i.e. measurement noise);
//! * with the feature **enabled**, probes are lock-free atomics with
//!   relaxed ordering and lazy self-registration in a process-wide
//!   registry, cheap enough to leave on during full benchmark runs.
//!
//! Building blocks:
//!
//! * [`Counter`] — a named `AtomicU64`, declared `static` at the call site;
//! * [`Gauge`] — a named signed level (`AtomicI64`) for quantities that go
//!   both ways: queue depth, busy workers, in-flight jobs (see [`registry`]);
//! * [`Histogram`] — 65 log2-bucketed counts (`bucket 0` = zero values,
//!   bucket `k` = values in `[2^(k-1), 2^k)`), plus exact count/sum;
//! * [`Section`] — a named accumulating timer; [`Section::start`] returns a
//!   drop guard, [`Section::time`] wraps a closure. Each section also feeds
//!   a fixed-memory [`SketchSnapshot`] quantile sketch (log2 buckets +
//!   min/max), so manifests carry per-call latency *distributions*
//!   (count/min/max/p50/p90/p99), not just cumulative nanoseconds;
//! * [`trace`] — within-run span timelines (thread-local ring buffers,
//!   Chrome `trace_event` export for Perfetto);
//! * [`event`] — a bounded structured event stream (e.g. annealing search
//!   progress), mirrored to stderr when `MF_TELEMETRY_LOG=1`;
//! * [`snapshot`] — a point-in-time copy of every registered probe, with
//!   window deltas via [`Snapshot::delta_since`];
//! * [`expose`] — a std-only TCP endpoint serving the live snapshot in
//!   Prometheus text exposition format (`MF_METRICS_ADDR`);
//! * [`profile`] — a span-derived self-profiler folding the [`trace`] ring
//!   buffers into flamegraph-compatible folded stacks;
//! * [`manifest::RunManifest`] — the JSON "run manifest" every bench binary
//!   emits (platform, build, thread count, wall time, per-section timings,
//!   counter/histogram snapshot, events), with a parser so the `report`
//!   binary can merge manifests from `results/`.
//!
//! The JSON layer ([`json::Json`]) is dependency-free and always available,
//! independent of the feature flag (the bench harness uses it for its table
//! output too).

pub mod expose;
pub mod json;
pub mod manifest;
pub mod profile;
pub mod registry;
pub mod trace;

pub use registry::Gauge;

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering::Relaxed};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Compile-time master switch; `true` iff the `telemetry` feature is on.
pub const ENABLED: bool = cfg!(feature = "telemetry");

/// Runtime-callable form of [`ENABLED`] (still const-folded).
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED
}

/// Maximum retained events; later events are counted but dropped.
pub const MAX_EVENTS: usize = 8192;

pub(crate) struct Registry {
    counters: Mutex<Vec<&'static Counter>>,
    pub(crate) gauges: Mutex<Vec<&'static Gauge>>,
    histograms: Mutex<Vec<&'static Histogram>>,
    sections: Mutex<Vec<&'static Section>>,
    events: Mutex<Vec<Event>>,
    dropped_events: AtomicUsize,
}

pub(crate) fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(Vec::new()),
        gauges: Mutex::new(Vec::new()),
        histograms: Mutex::new(Vec::new()),
        sections: Mutex::new(Vec::new()),
        events: Mutex::new(Vec::new()),
        dropped_events: AtomicUsize::new(0),
    })
}

/// A named monotonically increasing counter.
///
/// Declare as `static` next to the code it instruments:
///
/// ```
/// use mf_telemetry::Counter;
/// static RENORM_SWEEPS: Counter = Counter::new("core.renorm.sweeps");
/// RENORM_SWEEPS.add(4);
/// ```
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    #[inline(always)]
    pub fn add(&'static self, n: u64) {
        if !ENABLED {
            return;
        }
        self.value.fetch_add(n, Relaxed);
        if !self.registered.load(Relaxed) {
            self.register_slow();
        }
    }

    #[inline(always)]
    pub fn incr(&'static self) {
        self.add(1);
    }

    #[cold]
    fn register_slow(&'static self) {
        if self
            .registered
            .compare_exchange(false, true, Relaxed, Relaxed)
            .is_ok()
        {
            registry().counters.lock().unwrap().push(self);
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    pub fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }
}

/// A log2-bucketed histogram of `u64` samples.
///
/// Bucket 0 counts zero samples; bucket `k` (1..=64) counts samples in
/// `[2^(k-1), 2^k)`. Count and sum are tracked exactly, so mean is exact
/// and quantiles are within a factor of 2.
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; 65],
    count: AtomicU64,
    sum: AtomicU64,
    registered: AtomicBool,
}

impl Histogram {
    pub const fn new(name: &'static str) -> Self {
        Histogram {
            name,
            buckets: [const { AtomicU64::new(0) }; 65],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Bucket index of a sample.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    #[inline(always)]
    pub fn record(&'static self, v: u64) {
        if !ENABLED {
            return;
        }
        self.buckets[Self::bucket_of(v)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        if !self.registered.load(Relaxed) {
            self.register_slow();
        }
    }

    /// Clamp a (possibly negative) quantity to `u64` and record it.
    #[inline(always)]
    pub fn record_clamped(&'static self, v: i64) {
        self.record(v.max(0) as u64);
    }

    #[cold]
    fn register_slow(&'static self) {
        if self
            .registered
            .compare_exchange(false, true, Relaxed, Relaxed)
            .is_ok()
        {
            registry().histograms.lock().unwrap().push(self);
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    pub fn snapshot_data(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            name: self.name.to_string(),
            count: self.count.load(Relaxed),
            sum: self.sum.load(Relaxed),
            buckets: core::array::from_fn(|i| self.buckets[i].load(Relaxed)),
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    pub name: String,
    pub count: u64,
    pub sum: u64,
    pub buckets: [u64; 65],
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the approximate `q`-quantile (q in [0, 1]).
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        log2_quantile_upper_bound(self.count, &self.buckets, q)
    }
}

/// Shared quantile walk over a log2 bucket array (bucket 0 = zeros, bucket
/// `k` = `[2^(k-1), 2^k)`): upper bound of the `q`-quantile.
fn log2_quantile_upper_bound(count: u64, buckets: &[u64; 65], q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let target = (q.clamp(0.0, 1.0) * count as f64).ceil().max(1.0) as u64;
    let mut seen = 0;
    for (i, &c) in buckets.iter().enumerate() {
        seen += c;
        if seen >= target {
            return if i == 0 { 0 } else { (1u128 << i) as u64 - 1 };
        }
    }
    u64::MAX
}

/// Point-in-time copy of a fixed-memory quantile sketch: log2-bucketed
/// counts plus exact min/max. Mergeable (buckets add, min/max combine), so
/// per-thread or per-run sketches can be rolled up losslessly; quantile
/// queries are upper bounds within a factor of 2 (the bucket width).
#[derive(Debug, Clone, PartialEq)]
pub struct SketchSnapshot {
    pub count: u64,
    pub min: u64,
    pub max: u64,
    pub buckets: [u64; 65],
}

impl Default for SketchSnapshot {
    fn default() -> Self {
        SketchSnapshot {
            count: 0,
            min: 0,
            max: 0,
            buckets: [0; 65],
        }
    }
}

impl SketchSnapshot {
    /// Build a sketch from raw samples (used by the bench harness to
    /// summarize per-iteration latencies into history records).
    pub fn from_samples(samples: impl IntoIterator<Item = u64>) -> Self {
        let mut s = SketchSnapshot::default();
        for v in samples {
            s.record(v);
        }
        s
    }

    /// Record one sample (snapshot-side; the live atomic form is inside
    /// [`Section`]).
    pub fn record(&mut self, v: u64) {
        self.buckets[Histogram::bucket_of(v)] += 1;
        self.min = if self.count == 0 { v } else { self.min.min(v) };
        self.max = self.max.max(v);
        self.count += 1;
    }

    /// Merge another sketch into this one.
    pub fn merge(&mut self, other: &SketchSnapshot) {
        if other.count == 0 {
            return;
        }
        self.min = if self.count == 0 {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.max = self.max.max(other.max);
        self.count += other.count;
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    /// Upper bound of the `q`-quantile (q in [0, 1]).
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        // The exact extremes tighten the bucket bounds at the edges.
        log2_quantile_upper_bound(self.count, &self.buckets, q)
            .clamp(self.min, self.max.max(self.min))
    }

    pub fn p50(&self) -> u64 {
        self.quantile_upper_bound(0.50)
    }

    pub fn p90(&self) -> u64 {
        self.quantile_upper_bound(0.90)
    }

    pub fn p99(&self) -> u64 {
        self.quantile_upper_bound(0.99)
    }
}

/// A named accumulating wall-clock timer ("span" source) with an attached
/// fixed-memory quantile sketch of per-call durations.
pub struct Section {
    name: &'static str,
    total_ns: AtomicU64,
    count: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
    buckets: [AtomicU64; 65],
    registered: AtomicBool,
}

impl Section {
    pub const fn new(name: &'static str) -> Self {
        Section {
            name,
            total_ns: AtomicU64::new(0),
            count: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; 65],
            registered: AtomicBool::new(false),
        }
    }

    /// Start a span; the elapsed time is accumulated when the guard drops.
    #[inline(always)]
    pub fn start(&'static self) -> SpanGuard {
        SpanGuard {
            inner: if ENABLED {
                Some((self, Instant::now()))
            } else {
                None
            },
        }
    }

    /// Time a closure.
    #[inline(always)]
    pub fn time<R>(&'static self, f: impl FnOnce() -> R) -> R {
        let _guard = self.start();
        f()
    }

    /// Record an externally measured duration (e.g. from `measure_gops`).
    #[inline(always)]
    pub fn add_ns(&'static self, ns: u64) {
        if !ENABLED {
            return;
        }
        self.total_ns.fetch_add(ns, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.min_ns.fetch_min(ns, Relaxed);
        self.max_ns.fetch_max(ns, Relaxed);
        self.buckets[Histogram::bucket_of(ns)].fetch_add(1, Relaxed);
        if !self.registered.load(Relaxed) {
            self.register_slow();
        }
    }

    #[cold]
    fn register_slow(&'static self) {
        if self
            .registered
            .compare_exchange(false, true, Relaxed, Relaxed)
            .is_ok()
        {
            registry().sections.lock().unwrap().push(self);
        }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    pub fn total_ns(&self) -> u64 {
        self.total_ns.load(Relaxed)
    }

    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Point-in-time copy of the per-call duration sketch.
    pub fn sketch(&self) -> SketchSnapshot {
        let count = self.count.load(Relaxed);
        SketchSnapshot {
            count,
            min: if count == 0 {
                0
            } else {
                self.min_ns.load(Relaxed)
            },
            max: self.max_ns.load(Relaxed),
            buckets: core::array::from_fn(|i| self.buckets[i].load(Relaxed)),
        }
    }
}

/// Drop guard returned by [`Section::start`].
pub struct SpanGuard {
    inner: Option<(&'static Section, Instant)>,
}

impl Drop for SpanGuard {
    #[inline]
    fn drop(&mut self) {
        if let Some((section, start)) = self.inner.take() {
            let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            section.add_ns(ns);
        }
    }
}

/// One structured event: a name plus numeric fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    pub name: String,
    pub fields: Vec<(String, f64)>,
}

/// Record a structured event (e.g. annealing search progress). Bounded to
/// [`MAX_EVENTS`] retained events per process; the overflow count appears
/// in the manifest. Set `MF_TELEMETRY_LOG=1` to mirror events to stderr.
#[inline]
pub fn event(name: &str, fields: &[(&str, f64)]) {
    if !ENABLED {
        return;
    }
    event_slow(name, fields);
}

#[cold]
fn event_slow(name: &str, fields: &[(&str, f64)]) {
    static LOG_TO_STDERR: OnceLock<bool> = OnceLock::new();
    let log = *LOG_TO_STDERR.get_or_init(|| {
        std::env::var("MF_TELEMETRY_LOG")
            .map(|v| v == "1")
            .unwrap_or(false)
    });
    if log {
        let mut line = format!("[mf-telemetry] {name}");
        for (k, v) in fields {
            line.push_str(&format!(" {k}={v}"));
        }
        eprintln!("{line}");
    }
    let mut events = registry().events.lock().unwrap();
    if events.len() >= MAX_EVENTS {
        registry().dropped_events.fetch_add(1, Relaxed);
        return;
    }
    events.push(Event {
        name: name.to_string(),
        fields: fields.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
    });
}

/// Point-in-time copy of every registered probe.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    pub counters: Vec<(String, u64)>,
    /// Signed level probes ([`Gauge`]): instantaneous values, not monotone.
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<HistogramSnapshot>,
    pub sections: Vec<SectionSnapshot>,
    pub events: Vec<Event>,
    pub dropped_events: u64,
}

/// Point-in-time copy of a [`Section`], including its latency sketch.
#[derive(Debug, Clone, PartialEq)]
pub struct SectionSnapshot {
    pub name: String,
    pub total_ns: u64,
    pub count: u64,
    pub sketch: SketchSnapshot,
}

/// Snapshot every registered probe. Sorted by name for stable output.
pub fn snapshot() -> Snapshot {
    if !ENABLED {
        return Snapshot::default();
    }
    let reg = registry();
    let mut counters: Vec<(String, u64)> = reg
        .counters
        .lock()
        .unwrap()
        .iter()
        .map(|c| (c.name.to_string(), c.get()))
        .collect();
    counters.sort();
    let mut gauges: Vec<(String, i64)> = reg
        .gauges
        .lock()
        .unwrap()
        .iter()
        .map(|g| (g.name().to_string(), g.get()))
        .collect();
    gauges.sort();
    let mut histograms: Vec<HistogramSnapshot> = reg
        .histograms
        .lock()
        .unwrap()
        .iter()
        .map(|h| h.snapshot_data())
        .collect();
    histograms.sort_by(|a, b| a.name.cmp(&b.name));
    let mut sections: Vec<SectionSnapshot> = reg
        .sections
        .lock()
        .unwrap()
        .iter()
        .map(|s| SectionSnapshot {
            name: s.name.to_string(),
            total_ns: s.total_ns(),
            count: s.count(),
            sketch: s.sketch(),
        })
        .collect();
    sections.sort_by(|a, b| a.name.cmp(&b.name));
    Snapshot {
        counters,
        gauges,
        histograms,
        sections,
        events: reg.events.lock().unwrap().clone(),
        dropped_events: reg.dropped_events.load(Relaxed) as u64,
    }
}

/// Drain retained events (they stay out of later snapshots); counters,
/// histograms, and sections are process-cumulative by design.
pub fn drain_events() -> Vec<Event> {
    if !ENABLED {
        return Vec::new();
    }
    std::mem::take(&mut *registry().events.lock().unwrap())
}

#[cfg(test)]
mod tests {
    // Counters/histograms register globally, so tests share state; each
    // test uses its own probes.

    #[cfg(feature = "telemetry")]
    mod enabled {
        use super::super::*;

        #[test]
        fn counter_concurrent_increments() {
            static C: Counter = Counter::new("test.concurrent.counter");
            std::thread::scope(|s| {
                for _ in 0..8 {
                    s.spawn(|| {
                        for _ in 0..10_000 {
                            C.incr();
                        }
                    });
                }
            });
            assert_eq!(C.get(), 80_000);
            let snap = snapshot();
            assert_eq!(
                snap.counters
                    .iter()
                    .find(|(n, _)| n == "test.concurrent.counter")
                    .map(|(_, v)| *v),
                Some(80_000)
            );
        }

        #[test]
        fn histogram_buckets_and_moments() {
            static H: Histogram = Histogram::new("test.histogram.buckets");
            // 0 -> bucket 0; 1 -> bucket 1; 2,3 -> bucket 2; 1024 -> bucket 11.
            for v in [0u64, 1, 2, 3, 1024] {
                H.record(v);
            }
            let snap = H.snapshot_data();
            assert_eq!(snap.count, 5);
            assert_eq!(snap.sum, 1030);
            assert_eq!(snap.buckets[0], 1);
            assert_eq!(snap.buckets[1], 1);
            assert_eq!(snap.buckets[2], 2);
            assert_eq!(snap.buckets[11], 1);
            assert!((snap.mean() - 206.0).abs() < 1e-9);
            assert_eq!(snap.quantile_upper_bound(0.5), 3);
        }

        #[test]
        fn histogram_concurrent_totals() {
            static H: Histogram = Histogram::new("test.histogram.concurrent");
            std::thread::scope(|s| {
                for t in 0..4 {
                    s.spawn(move || {
                        for i in 0..5_000u64 {
                            H.record(t * 1000 + (i % 7));
                        }
                    });
                }
            });
            assert_eq!(H.snapshot_data().count, 20_000);
        }

        #[test]
        fn sections_accumulate() {
            static S: Section = Section::new("test.section.accumulate");
            for _ in 0..3 {
                let _g = S.start();
                std::hint::black_box(1 + 1);
            }
            S.time(|| std::hint::black_box(2 + 2));
            assert_eq!(S.count(), 4);
            S.add_ns(1_000_000);
            assert!(S.total_ns() >= 1_000_000);
        }

        #[test]
        fn section_sketch_tracks_distribution() {
            static S: Section = Section::new("test.section.sketch");
            for ns in [100u64, 200, 400, 800, 100_000] {
                S.add_ns(ns);
            }
            let sk = S.sketch();
            assert_eq!(sk.count, 5);
            assert_eq!(sk.min, 100);
            assert_eq!(sk.max, 100_000);
            // Third-smallest sample (400) lands in bucket [256, 512).
            assert_eq!(sk.p50(), 511);
            // p99 walks into the top bucket; the exact max tightens it.
            assert_eq!(sk.p99(), 100_000);
        }

        #[test]
        fn sketches_merge_losslessly() {
            let mut a = SketchSnapshot::from_samples([1u64, 2, 3]);
            let b = SketchSnapshot::from_samples([1000u64]);
            a.merge(&b);
            assert_eq!(a.count, 4);
            assert_eq!(a.min, 1);
            assert_eq!(a.max, 1000);
            let direct = SketchSnapshot::from_samples([1u64, 2, 3, 1000]);
            assert_eq!(a, direct);
            // Merging an empty sketch changes nothing.
            a.merge(&SketchSnapshot::default());
            assert_eq!(a, direct);
        }

        #[test]
        fn events_are_bounded_and_snapshotted() {
            event("test.event", &[("iter", 1.0), ("size", 6.0)]);
            let snap = snapshot();
            assert!(snap
                .events
                .iter()
                .any(|e| e.name == "test.event" && e.fields.contains(&("size".into(), 6.0))));
        }

        #[test]
        fn bucket_of_is_log2() {
            assert_eq!(Histogram::bucket_of(0), 0);
            assert_eq!(Histogram::bucket_of(1), 1);
            assert_eq!(Histogram::bucket_of(2), 2);
            assert_eq!(Histogram::bucket_of(255), 8);
            assert_eq!(Histogram::bucket_of(256), 9);
            assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        }
    }

    #[cfg(not(feature = "telemetry"))]
    mod disabled {
        use super::super::*;

        /// With the feature off, probes must have **zero observable side
        /// effects**: no value accumulation, no registration, empty
        /// snapshots. (The compile-time guarantee is `ENABLED == false`,
        /// which const-folds every probe body away.)
        #[test]
        fn probes_are_noops() {
            const { assert!(!ENABLED) };
            assert!(!enabled());
            static C: Counter = Counter::new("test.disabled.counter");
            static H: Histogram = Histogram::new("test.disabled.histogram");
            static S: Section = Section::new("test.disabled.section");
            C.add(41);
            C.incr();
            H.record(99);
            S.time(|| ());
            S.add_ns(123);
            drop(S.start());
            event("test.disabled.event", &[("x", 1.0)]);
            assert_eq!(C.get(), 0);
            assert_eq!(H.snapshot_data().count, 0);
            assert_eq!(S.total_ns(), 0);
            assert_eq!(S.count(), 0);
            assert_eq!(S.sketch().count, 0);
            let snap = snapshot();
            assert!(snap.counters.is_empty());
            assert!(snap.gauges.is_empty());
            assert!(snap.histograms.is_empty());
            assert!(snap.sections.is_empty());
            assert!(snap.events.is_empty());
            assert!(drain_events().is_empty());
        }
    }
}
