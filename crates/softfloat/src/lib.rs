//! `mf-softfloat`: a bit-exact software binary floating-point type with a
//! compile-time precision parameter and round-to-nearest-even arithmetic.
//!
//! [`SoftFloat<P>`] implements [`mf_eft::FloatBase`], so every branch-free
//! kernel in the workspace — the error-free transformations, the FPAN
//! executor, the `MultiFloat` arithmetic — runs unchanged on it. This is the
//! substrate for the FPAN verification procedure (DESIGN.md substitution
//! T1): the paper's Figure 1 illustrates expansions at `p = 6`, and its SMT
//! verifier reasons about floats at arbitrary `p`; we *execute* networks at
//! small `p` (4…11) where structured input spaces can be enumerated densely,
//! and at `p = 24/53` where results are cross-checked against hardware.
//!
//! # Representation
//!
//! A finite nonzero value is `(-1)^neg · mant · 2^(exp - P + 1)` with
//! `2^(P-1) <= mant < 2^P` (normalized, value in `[2^exp, 2^(exp+1))`).
//! The exponent range is ±100 000 — far wider than any network test needs —
//! so overflow and underflow never interfere with rounding-error analysis,
//! matching the paper's assumption that inputs lie within machine
//! thresholds. There are no subnormals (the paper's §2.1 simplification).
//!
//! ```
//! use mf_softfloat::SoftFloat;
//! use mf_eft::two_sum;
//!
//! type F6 = SoftFloat<6>; // the toy precision of the paper's Figure 1
//! let x = F6::from_f64(1.0);
//! let y = F6::from_f64(1.0 / 64.0 + 1.0 / 128.0); // needs > 6 bits vs 1.0
//! let (s, e) = two_sum(x, y);
//! // TwoSum is error-free at ANY precision:
//! assert_eq!(s.to_f64() + e.to_f64(), x.to_f64() + y.to_f64());
//! ```

use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, Div, Mul, Neg, Sub};
use mf_eft::FloatBase;

mod arith;
#[cfg(test)]
mod tests;

/// What a [`SoftFloat`] holds. Finite values keep sign/exp/mant; zero keeps
/// only sign (so `-0.0` exists, as in IEEE 754).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Kind {
    Zero,
    Finite,
    Inf,
    Nan,
}

/// Software binary float with `P` bits of precision (including the implicit
/// leading bit) and RNE rounding. `P` must be in `2..=60`.
#[derive(Debug, Clone, Copy)]
pub struct SoftFloat<const P: u32> {
    pub(crate) kind: Kind,
    pub(crate) neg: bool,
    /// Value in `[2^exp, 2^(exp+1))` when finite.
    pub(crate) exp: i32,
    /// `P` significant bits, top bit set, when finite.
    pub(crate) mant: u64,
}

/// Exponent bound: anything with |exp| beyond this saturates to infinity or
/// flushes to zero. Deliberately enormous (see module docs).
pub const EXP_LIMIT: i32 = 100_000;

impl<const P: u32> SoftFloat<P> {
    const CHECK: () = assert!(P >= 2 && P <= 60, "SoftFloat precision must be in 2..=60");

    pub(crate) const fn raw(kind: Kind, neg: bool, exp: i32, mant: u64) -> Self {
        #[allow(clippy::let_unit_value)]
        let _ = Self::CHECK;
        SoftFloat {
            kind,
            neg,
            exp,
            mant,
        }
    }

    pub const fn zero() -> Self {
        Self::raw(Kind::Zero, false, 0, 0)
    }

    pub const fn neg_zero() -> Self {
        Self::raw(Kind::Zero, true, 0, 0)
    }

    pub const fn infinity() -> Self {
        Self::raw(Kind::Inf, false, 0, 0)
    }

    pub const fn neg_infinity() -> Self {
        Self::raw(Kind::Inf, true, 0, 0)
    }

    pub const fn nan() -> Self {
        Self::raw(Kind::Nan, false, 0, 0)
    }

    pub const fn one() -> Self {
        Self::raw(Kind::Finite, false, 0, 1u64 << (P - 1))
    }

    /// Build and round a value `(-1)^neg · m · 2^k` (with `m` arbitrary, not
    /// normalized) to the nearest representable. `sticky` indicates that
    /// nonzero bits below `2^k` were already discarded; when `sticky` is
    /// set, `m` must carry at least `P + 2` significant bits so the rounding
    /// decision is determined.
    pub(crate) fn round_from_u128(neg: bool, m: u128, k: i32, sticky: bool) -> Self {
        if m == 0 {
            debug_assert!(!sticky, "sticky residue with zero mantissa");
            return Self::raw(Kind::Zero, neg, 0, 0);
        }
        let len = 128 - m.leading_zeros();
        debug_assert!(!sticky || len >= P + 2, "sticky set with only {len} bits");
        let exp = k + len as i32 - 1;
        if len <= P {
            // Exact: shift up into normalized position.
            let mant = (m as u64) << (P - len);
            return Self::finite_checked(neg, exp, mant);
        }
        let drop = len - P;
        let guard = (m >> (drop - 1)) & 1 == 1;
        let below = if drop >= 2 {
            sticky || (m & ((1u128 << (drop - 1)) - 1)) != 0
        } else {
            sticky
        };
        let mut mant = (m >> drop) as u64;
        let round_up = guard && (below || (mant & 1 == 1));
        let mut exp = exp;
        if round_up {
            mant += 1;
            if mant == 1u64 << P {
                mant >>= 1;
                exp += 1;
            }
        }
        Self::finite_checked(neg, exp, mant)
    }

    fn finite_checked(neg: bool, exp: i32, mant: u64) -> Self {
        debug_assert!(mant >= 1 << (P - 1) && mant >> P == 0);
        if exp > EXP_LIMIT {
            return if neg {
                Self::neg_infinity()
            } else {
                Self::infinity()
            };
        }
        if exp < -EXP_LIMIT {
            return Self::raw(Kind::Zero, neg, 0, 0);
        }
        Self::raw(Kind::Finite, neg, exp, mant)
    }

    /// The value as `(mantissa, lsb exponent)` with `value = ±mant · 2^k`.
    /// Finite nonzero values only.
    pub(crate) fn parts(self) -> (u64, i32) {
        debug_assert_eq!(self.kind, Kind::Finite);
        (self.mant, self.exp - P as i32 + 1)
    }

    /// Magnitude comparison (no NaNs).
    pub(crate) fn cmp_abs(self, other: Self) -> Ordering {
        debug_assert!(self.kind != Kind::Nan && other.kind != Kind::Nan);
        match (self.kind, other.kind) {
            (Kind::Zero, Kind::Zero) => Ordering::Equal,
            (Kind::Zero, _) => Ordering::Less,
            (_, Kind::Zero) => Ordering::Greater,
            (Kind::Inf, Kind::Inf) => Ordering::Equal,
            (Kind::Inf, _) => Ordering::Greater,
            (_, Kind::Inf) => Ordering::Less,
            _ => (self.exp, self.mant).cmp(&(other.exp, other.mant)),
        }
    }

    /// Exact conversion to `f64` (exact whenever `P <= 53` and the exponent
    /// is within double range, which covers every use in this workspace).
    pub fn to_f64(self) -> f64 {
        match self.kind {
            Kind::Nan => f64::NAN,
            Kind::Inf => {
                if self.neg {
                    f64::NEG_INFINITY
                } else {
                    f64::INFINITY
                }
            }
            Kind::Zero => {
                if self.neg {
                    -0.0
                } else {
                    0.0
                }
            }
            Kind::Finite => {
                let (m, k) = self.parts();
                // powi is unusable below 2^-1022: LLVM expands x.powi(-n)
                // as 1.0 / x.powi(n), so the intermediate 2^n overflows to
                // inf and the quotient collapses to 0 even though the true
                // value (mant * 2^k) is a representable double. Scale in
                // two exact power-of-two steps instead.
                let mag = if k >= -1021 {
                    (m as f64) * 2.0f64.powi(k)
                } else if k >= -1140 {
                    // m * 2^-1000 is a normal double (m >= 2^(P-1)), and
                    // the second factor is a normal power of two, so the
                    // only rounding is the final (possibly subnormal) one.
                    (m as f64) * 2.0f64.powi(-1000) * 2.0f64.powi(k + 1000)
                } else {
                    // Even a 2^63 mantissa cannot reach 2^-1075 from here.
                    0.0
                };
                if self.neg {
                    -mag
                } else {
                    mag
                }
            }
        }
    }

    /// Conversion from `f64`, rounded (RNE) to `P` bits.
    pub fn from_f64(x: f64) -> Self {
        if x.is_nan() {
            return Self::nan();
        }
        if x.is_infinite() {
            return if x < 0.0 {
                Self::neg_infinity()
            } else {
                Self::infinity()
            };
        }
        if x == 0.0 {
            return Self::raw(Kind::Zero, x.is_sign_negative(), 0, 0);
        }
        let bits = x.abs().to_bits();
        let raw_exp = (bits >> 52) as i32;
        let (m, k) = if raw_exp == 0 {
            (bits & ((1 << 52) - 1), -1074)
        } else {
            (bits & ((1 << 52) - 1) | (1 << 52), raw_exp - 1075)
        };
        Self::round_from_u128(x < 0.0, m as u128, k, false)
    }

    /// Smallest positive value in this toy format (no subnormals exist).
    pub const fn min_positive() -> Self {
        Self::raw(Kind::Finite, false, -EXP_LIMIT, 1u64 << (P - 1))
    }

    /// Largest finite value.
    pub const fn max_value() -> Self {
        Self::raw(Kind::Finite, false, EXP_LIMIT, (1u64 << P) - 1)
    }
}

impl<const P: u32> PartialEq for SoftFloat<P> {
    fn eq(&self, other: &Self) -> bool {
        match (self.kind, other.kind) {
            (Kind::Nan, _) | (_, Kind::Nan) => false,
            (Kind::Zero, Kind::Zero) => true, // -0 == +0
            (Kind::Inf, Kind::Inf) => self.neg == other.neg,
            (Kind::Finite, Kind::Finite) => {
                self.neg == other.neg && self.exp == other.exp && self.mant == other.mant
            }
            _ => false,
        }
    }
}

impl<const P: u32> PartialOrd for SoftFloat<P> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        if self.kind == Kind::Nan || other.kind == Kind::Nan {
            return None;
        }
        if self == other {
            return Some(Ordering::Equal);
        }
        let sn = self.kind != Kind::Zero && self.neg;
        let on = other.kind != Kind::Zero && other.neg;
        Some(match (sn, on) {
            (false, true) => Ordering::Greater,
            (true, false) => Ordering::Less,
            (false, false) => self.cmp_abs(*other),
            (true, true) => other.cmp_abs(*self),
        })
    }
}

impl<const P: u32> Default for SoftFloat<P> {
    fn default() -> Self {
        Self::zero()
    }
}

impl<const P: u32> fmt::Display for SoftFloat<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_f64(), f)
    }
}

impl<const P: u32> fmt::LowerExp for SoftFloat<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerExp::fmt(&self.to_f64(), f)
    }
}

impl<const P: u32> Neg for SoftFloat<P> {
    type Output = Self;
    fn neg(self) -> Self {
        let mut out = self;
        if out.kind != Kind::Nan {
            out.neg = !out.neg;
        }
        out
    }
}

macro_rules! fwd_binop {
    ($trait:ident, $method:ident, $impl_fn:ident) => {
        impl<const P: u32> $trait for SoftFloat<P> {
            type Output = Self;
            fn $method(self, rhs: Self) -> Self {
                arith::$impl_fn(self, rhs)
            }
        }
    };
}

fwd_binop!(Add, add, add);
fwd_binop!(Sub, sub, sub);
fwd_binop!(Mul, mul, mul);
fwd_binop!(Div, div, div);

impl<const P: u32> FloatBase for SoftFloat<P> {
    const PRECISION: u32 = P;
    const MIN_EXP: i32 = -EXP_LIMIT;
    const MAX_EXP: i32 = EXP_LIMIT;

    const ZERO: Self = Self::zero();
    const ONE: Self = Self::one();
    const NEG_ONE: Self = Self::raw(Kind::Finite, true, 0, 1u64 << (P - 1));
    const HALF: Self = Self::raw(Kind::Finite, false, -1, 1u64 << (P - 1));
    const TWO: Self = Self::raw(Kind::Finite, false, 1, 1u64 << (P - 1));
    const EPSILON: Self = Self::raw(Kind::Finite, false, 1 - P as i32, 1u64 << (P - 1));
    const MAX: Self = Self::max_value();
    const MIN_POSITIVE: Self = Self::min_positive();
    const INFINITY: Self = Self::infinity();
    const NEG_INFINITY: Self = Self::neg_infinity();
    const NAN: Self = Self::nan();

    fn mul_add(self, a: Self, b: Self) -> Self {
        arith::fused_mul_add(self, a, b)
    }

    fn sqrt(self) -> Self {
        arith::sqrt(self)
    }

    fn abs(self) -> Self {
        let mut out = self;
        if out.kind != Kind::Nan {
            out.neg = false;
        }
        out
    }

    fn recip(self) -> Self {
        Self::one() / self
    }

    fn floor(self) -> Self {
        arith::floor(self)
    }

    fn ceil(self) -> Self {
        -arith::floor(-self)
    }

    fn round(self) -> Self {
        arith::round_half_away(self)
    }

    fn trunc(self) -> Self {
        if self.neg {
            -arith::floor(-self)
        } else {
            arith::floor(self)
        }
    }

    fn is_nan(self) -> bool {
        self.kind == Kind::Nan
    }

    fn is_infinite(self) -> bool {
        self.kind == Kind::Inf
    }

    fn is_finite(self) -> bool {
        matches!(self.kind, Kind::Zero | Kind::Finite)
    }

    fn is_sign_negative(self) -> bool {
        self.neg
    }

    fn exponent(self) -> i32 {
        match self.kind {
            Kind::Finite => self.exp,
            _ => Self::MIN_EXP - P as i32,
        }
    }

    fn exp2i(e: i32) -> Self {
        debug_assert!(e.abs() <= EXP_LIMIT);
        Self::raw(Kind::Finite, false, e, 1u64 << (P - 1))
    }

    fn from_f64(x: f64) -> Self {
        SoftFloat::from_f64(x)
    }

    fn to_f64(self) -> f64 {
        SoftFloat::to_f64(self)
    }

    fn copysign(self, sign: Self) -> Self {
        let mut out = self;
        if out.kind != Kind::Nan {
            out.neg = sign.neg;
        }
        out
    }

    fn min(self, other: Self) -> Self {
        match self.partial_cmp(&other) {
            Some(Ordering::Greater) => other,
            None => {
                if self.is_nan() {
                    other
                } else {
                    self
                }
            }
            _ => self,
        }
    }

    fn max(self, other: Self) -> Self {
        match self.partial_cmp(&other) {
            Some(Ordering::Less) => other,
            None => {
                if self.is_nan() {
                    other
                } else {
                    self
                }
            }
            _ => self,
        }
    }
}
