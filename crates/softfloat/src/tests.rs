//! Validation of the software float against two independent references:
//!
//! 1. **Hardware**: at `P = 53` / `P = 24`, every operation must agree bit
//!    for bit with native `f64` / `f32` (including fused multiply-add).
//! 2. **MpFloat**: at small precisions (no hardware analogue exists), dense
//!    enumerations of operand pairs must agree with the limb-based
//!    `mf-mpsoft` reference, which is itself differentially tested against
//!    hardware.

use crate::SoftFloat;
use mf_eft::FloatBase;
use mf_mpsoft::MpFloat;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

type F53 = SoftFloat<53>;
type F24 = SoftFloat<24>;

fn rand_f64(rng: &mut SmallRng, exp_range: core::ops::Range<i32>) -> f64 {
    let m: u64 = rng.gen::<u64>() >> 11;
    let e = rng.gen_range(exp_range);
    let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
    sign * (1.0 + (m as f64) * 2.0f64.powi(-53)) * 2.0f64.powi(e)
}

#[test]
fn p53_add_sub_matches_hardware() {
    let mut rng = SmallRng::seed_from_u64(11);
    for i in 0..200_000 {
        let x = rand_f64(&mut rng, -80..80);
        let y = rand_f64(&mut rng, -80..80);
        let (a, b) = (F53::from_f64(x), F53::from_f64(y));
        assert_eq!(
            (a + b).to_f64().to_bits(),
            (x + y).to_bits(),
            "add iter {i}: {x:e} {y:e}"
        );
        assert_eq!(
            (a - b).to_f64().to_bits(),
            (x - y).to_bits(),
            "sub iter {i}: {x:e} {y:e}"
        );
    }
}

#[test]
fn p53_mul_div_matches_hardware() {
    let mut rng = SmallRng::seed_from_u64(12);
    for i in 0..200_000 {
        let x = rand_f64(&mut rng, -60..60);
        let y = rand_f64(&mut rng, -60..60);
        let (a, b) = (F53::from_f64(x), F53::from_f64(y));
        assert_eq!(
            (a * b).to_f64().to_bits(),
            (x * y).to_bits(),
            "mul iter {i}: {x:e} {y:e}"
        );
        assert_eq!(
            (a / b).to_f64().to_bits(),
            (x / y).to_bits(),
            "div iter {i}: {x:e} {y:e}"
        );
    }
}

#[test]
fn p53_fma_matches_hardware() {
    let mut rng = SmallRng::seed_from_u64(13);
    for i in 0..200_000 {
        let x = rand_f64(&mut rng, -40..40);
        let y = rand_f64(&mut rng, -40..40);
        let z = rand_f64(&mut rng, -60..60);
        let got = F53::from_f64(x)
            .mul_add(F53::from_f64(y), F53::from_f64(z))
            .to_f64();
        assert_eq!(
            got.to_bits(),
            x.mul_add(y, z).to_bits(),
            "fma iter {i}: {x:e} {y:e} {z:e}"
        );
    }
}

#[test]
fn p53_fma_cancellation_cases() {
    // The two_prod pattern: fma(x, y, -(x*y)) extracts the exact rounding
    // error of a product — maximal cancellation inside the FMA.
    let mut rng = SmallRng::seed_from_u64(14);
    for _ in 0..100_000 {
        let x = rand_f64(&mut rng, -40..40);
        let y = rand_f64(&mut rng, -40..40);
        let p = x * y;
        let got = F53::from_f64(x)
            .mul_add(F53::from_f64(y), F53::from_f64(-p))
            .to_f64();
        assert_eq!(got.to_bits(), x.mul_add(y, -p).to_bits(), "{x:e} {y:e}");
    }
}

#[test]
fn p53_sqrt_matches_hardware() {
    let mut rng = SmallRng::seed_from_u64(15);
    for _ in 0..100_000 {
        let x = rand_f64(&mut rng, -80..80).abs();
        assert_eq!(
            F53::from_f64(x).sqrt().to_f64().to_bits(),
            x.sqrt().to_bits(),
            "sqrt({x:e})"
        );
    }
}

#[test]
fn p24_ops_match_hardware_f32() {
    let mut rng = SmallRng::seed_from_u64(16);
    for _ in 0..200_000 {
        let x = (rand_f64(&mut rng, -30..30) as f32) + 0.0;
        let y = (rand_f64(&mut rng, -30..30) as f32) + 0.0;
        let (a, b) = (F24::from_f64(x as f64), F24::from_f64(y as f64));
        assert_eq!((a + b).to_f64() as f32, x + y, "{x:e} + {y:e}");
        assert_eq!((a * b).to_f64() as f32, x * y, "{x:e} * {y:e}");
        assert_eq!((a / b).to_f64() as f32, x / y, "{x:e} / {y:e}");
        assert_eq!(
            a.mul_add(b, F24::from_f64(1.5)).to_f64() as f32,
            x.mul_add(y, 1.5),
            "fma {x:e} {y:e}"
        );
    }
}

/// Every finite nonzero SoftFloat<P> with exponent in the given range.
fn enumerate<const P: u32>(exp_range: core::ops::Range<i32>) -> Vec<SoftFloat<P>> {
    let mut out = Vec::new();
    for exp in exp_range {
        for mant in (1u64 << (P - 1))..(1u64 << P) {
            for neg in [false, true] {
                out.push(SoftFloat::raw(crate::Kind::Finite, neg, exp, mant));
            }
        }
    }
    out
}

fn to_mp<const P: u32>(x: SoftFloat<P>) -> MpFloat {
    MpFloat::from_f64(x.to_f64(), P)
}

#[test]
fn p5_exhaustive_add_mul_vs_mpsoft() {
    // 2 signs x 16 mantissas x 5 exponents = 160 values; all 25 600 pairs.
    let vals = enumerate::<5>(-2..3);
    for &a in &vals {
        let ma = to_mp(a);
        for &b in &vals {
            let mb = to_mp(b);
            let s = (a + b).to_f64();
            let expect = ma.add(&mb, 5).to_f64();
            assert_eq!(s, expect, "{:e} + {:e}", a.to_f64(), b.to_f64());
            let p = (a * b).to_f64();
            let expect = ma.mul(&mb, 5).to_f64();
            assert_eq!(p, expect, "{:e} * {:e}", a.to_f64(), b.to_f64());
        }
    }
}

#[test]
fn p5_exhaustive_div_vs_mpsoft() {
    let vals = enumerate::<5>(-2..3);
    for &a in &vals {
        let ma = to_mp(a);
        for &b in &vals {
            let mb = to_mp(b);
            let q = (a / b).to_f64();
            let expect = ma.div(&mb, 5).to_f64();
            assert_eq!(q, expect, "{:e} / {:e}", a.to_f64(), b.to_f64());
        }
    }
}

#[test]
fn p4_exhaustive_sqrt_vs_mpsoft() {
    let vals = enumerate::<4>(-6..7);
    for &a in &vals {
        if a.is_sign_negative() {
            continue;
        }
        let s = a.sqrt().to_f64();
        let expect = to_mp(a).sqrt(4).to_f64();
        assert_eq!(s, expect, "sqrt({:e})", a.to_f64());
    }
}

#[test]
fn p6_fma_dense_vs_mpsoft() {
    // Sampled triples at the paper's illustration precision p = 6.
    let vals = enumerate::<6>(-3..4);
    let mut rng = SmallRng::seed_from_u64(17);
    for _ in 0..60_000 {
        let a = vals[rng.gen_range(0..vals.len())];
        let b = vals[rng.gen_range(0..vals.len())];
        let c = vals[rng.gen_range(0..vals.len())];
        let got = a.mul_add(b, c).to_f64();
        // Reference: exact product at 12 bits, then a single rounding at 6.
        let exact_p = to_mp(a).mul(&to_mp(b), 12);
        let expect = exact_p.add(&to_mp(c), 6).to_f64();
        assert_eq!(
            got,
            expect,
            "fma({:e}, {:e}, {:e})",
            a.to_f64(),
            b.to_f64(),
            c.to_f64()
        );
    }
}

#[test]
fn special_values() {
    let inf = F53::infinity();
    let one = F53::one();
    assert!((inf - inf).is_nan());
    assert!((inf + inf).is_infinite());
    assert!((F53::zero() / F53::zero()).is_nan());
    assert!((one / F53::zero()).is_infinite());
    assert!((F53::from_f64(-1.0)).sqrt().is_nan());
    assert_eq!(
        (F53::zero() + F53::neg_zero()).to_f64().to_bits(),
        0.0f64.to_bits()
    );
    assert!((F53::nan() + one).is_nan());
    assert!(F53::nan().partial_cmp(&one).is_none());
    // -0 == +0 per IEEE.
    assert!(F53::zero() == F53::neg_zero());
}

#[test]
fn rounding_functions_match_hardware() {
    let mut rng = SmallRng::seed_from_u64(18);
    for _ in 0..100_000 {
        let x = rand_f64(&mut rng, -5..60);
        let a = F53::from_f64(x);
        assert_eq!(a.floor().to_f64(), x.floor(), "floor({x:e})");
        assert_eq!(FloatBase::ceil(a).to_f64(), x.ceil(), "ceil({x:e})");
        assert_eq!(FloatBase::round(a).to_f64(), x.round(), "round({x:e})");
        assert_eq!(a.trunc().to_f64(), x.trunc(), "trunc({x:e})");
    }
    // Halfway and small-magnitude cases.
    for x in [0.5f64, -0.5, 1.5, 2.5, -2.5, 0.25, -0.25, 0.75, 3.0, -3.0] {
        let a = F53::from_f64(x);
        assert_eq!(a.floor().to_f64(), x.floor(), "floor({x})");
        assert_eq!(FloatBase::round(a).to_f64(), x.round(), "round({x})");
        assert_eq!(FloatBase::ceil(a).to_f64(), x.ceil(), "ceil({x})");
    }
}

#[test]
fn eft_identities_hold_at_small_precision() {
    // TwoSum and FastTwoSum are error-free at every precision; check at
    // p = 6 against exact f64 arithmetic (6-bit values sum exactly in f64).
    let vals = enumerate::<6>(-3..4);
    let mut rng = SmallRng::seed_from_u64(19);
    for _ in 0..50_000 {
        let a = vals[rng.gen_range(0..vals.len())];
        let b = vals[rng.gen_range(0..vals.len())];
        let (s, e) = mf_eft::two_sum(a, b);
        assert_eq!(
            s.to_f64() + e.to_f64(),
            a.to_f64() + b.to_f64(),
            "two_sum({:e}, {:e})",
            a.to_f64(),
            b.to_f64()
        );
        let (p, ep) = mf_eft::two_prod(a, b);
        assert_eq!(
            p.to_f64() + ep.to_f64(),
            a.to_f64() * b.to_f64(),
            "two_prod({:e}, {:e})",
            a.to_f64(),
            b.to_f64()
        );
    }
}

#[test]
fn floatbase_constants_are_consistent() {
    fn check<const P: u32>() {
        assert_eq!(SoftFloat::<P>::ONE.to_f64(), 1.0);
        assert_eq!(SoftFloat::<P>::TWO.to_f64(), 2.0);
        assert_eq!(SoftFloat::<P>::HALF.to_f64(), 0.5);
        assert_eq!(SoftFloat::<P>::NEG_ONE.to_f64(), -1.0);
        assert_eq!(SoftFloat::<P>::EPSILON.to_f64(), 2.0f64.powi(1 - P as i32));
        assert_eq!(SoftFloat::<P>::PRECISION, P);
        let one = SoftFloat::<P>::ONE;
        assert_eq!(one.ulp().to_f64(), 2.0f64.powi(1 - P as i32));
        assert_eq!(FloatBase::exponent(SoftFloat::<P>::TWO), 1);
        assert_eq!(SoftFloat::<P>::exp2i(-7).to_f64(), 2.0f64.powi(-7));
    }
    check::<4>();
    check::<6>();
    check::<11>();
    check::<24>();
    check::<53>();
}

#[test]
fn to_f64_survives_deep_negative_exponents() {
    // Regression: to_f64 used a single powi(k), which LLVM expands as
    // 1 / 2^|k| — the intermediate overflows for k <= -1023 and the result
    // collapsed to zero for values that are perfectly normal doubles
    // (e.g. 2^-515 * 2^-465 = 2^-980). Found by the conformance harness.
    let a = F53::from_f64(f64::from_bits(0x1fc0000000000000)); // 2^-515
    let b = F53::from_f64(f64::from_bits(0x22e0000000000000)); // 2^-465
    assert_eq!((a * b).to_f64(), f64::from_bits(0x02b0000000000000)); // 2^-980
                                                                      // Across the normal/subnormal boundary, and at the very bottom.
    for e in [-1020, -1022, -1025, -1060, -1074] {
        let x = 2.0f64.powi(-500) * 2.0f64.powi(e + 500);
        assert!(x > 0.0, "probe value 2^{e} must be representable");
        assert_eq!(F53::from_f64(x).to_f64(), x, "2^{e}");
    }
    // Values below f64 range flush to zero instead of garbage.
    let tiny = F53::raw(crate::Kind::Finite, false, -2000, 1u64 << 52);
    assert_eq!(tiny.to_f64(), 0.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3000))]

    #[test]
    fn prop_p53_matches_f64(x in -1e50f64..1e50, y in -1e50f64..1e50) {
        let (a, b) = (F53::from_f64(x), F53::from_f64(y));
        prop_assert_eq!((a + b).to_f64().to_bits(), (x + y).to_bits());
        prop_assert_eq!((a * b).to_f64().to_bits(), (x * y).to_bits());
        prop_assume!(y != 0.0);
        prop_assert_eq!((a / b).to_f64().to_bits(), (x / y).to_bits());
    }

    #[test]
    fn prop_roundtrip(x in -1e100f64..1e100) {
        prop_assert_eq!(F53::from_f64(x).to_f64().to_bits(), x.to_bits());
    }

    #[test]
    fn prop_ordering_matches_f64(x in -1e50f64..1e50, y in -1e50f64..1e50) {
        let (a, b) = (F53::from_f64(x), F53::from_f64(y));
        prop_assert_eq!(a.partial_cmp(&b), x.partial_cmp(&y));
    }
}
