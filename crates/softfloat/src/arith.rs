//! Correctly rounded arithmetic for [`SoftFloat`].
//!
//! All operations compute the exact result in wide integer arithmetic and
//! round once (RNE) through [`SoftFloat::round_from_u128`], with a sticky
//! path for operands too far apart to align exactly.

use crate::{Kind, SoftFloat};

/// Signed add of two aligned magnitudes. Returns `(neg, magnitude)`.
/// Magnitudes must be < 2^127 so the same-sign case cannot overflow.
fn signed_add(neg_a: bool, a: u128, neg_b: bool, b: u128) -> (bool, u128) {
    debug_assert!(a < 1 << 127 && b < 1 << 127);
    if neg_a == neg_b {
        (neg_a, a + b)
    } else if a >= b {
        (neg_a, a - b)
    } else {
        (neg_b, b - a)
    }
}

pub(crate) fn add<const P: u32>(a: SoftFloat<P>, b: SoftFloat<P>) -> SoftFloat<P> {
    match (a.kind, b.kind) {
        (Kind::Nan, _) | (_, Kind::Nan) => SoftFloat::nan(),
        (Kind::Inf, Kind::Inf) => {
            if a.neg == b.neg {
                a
            } else {
                SoftFloat::nan()
            }
        }
        (Kind::Inf, _) => a,
        (_, Kind::Inf) => b,
        (Kind::Zero, Kind::Zero) => {
            // IEEE RNE: (+0) + (-0) = +0; like signs keep the sign.
            if a.neg == b.neg {
                a
            } else {
                SoftFloat::zero()
            }
        }
        (Kind::Zero, _) => b,
        (_, Kind::Zero) => a,
        (Kind::Finite, Kind::Finite) => {
            let (hi, lo) = if a.cmp_abs(b) != core::cmp::Ordering::Less {
                (a, b)
            } else {
                (b, a)
            };
            let gap = hi.exp - lo.exp;
            if gap > P as i32 + 2 {
                // `lo` lies entirely below the guard position: fold it into
                // a sticky bit. Keep three explicit guard bits on `hi` —
                // with only two, `(mh << 2) - 1` loses a bit whenever `mh`
                // is a power of two, leaving P + 1 significant bits where
                // `round_from_u128`'s sticky contract requires P + 2.
                // (`gap > P + 2` bounds `lo` below `2^(kh - 3)`, so the
                // borrow-and-sticky encoding stays exact.)
                let (mh, kh) = hi.parts();
                let m = (mh as u128) << 3;
                let m = if hi.neg == lo.neg { m } else { m - 1 };
                return SoftFloat::round_from_u128(hi.neg, m, kh - 3, true);
            }
            // Exact alignment in 128 bits: shifts are bounded by
            // gap + P <= 2P + 2 <= 122.
            let (mh, kh) = hi.parts();
            let (ml, kl) = lo.parts();
            let k = kh.min(kl);
            let ah = (mh as u128) << (kh - k) as u32;
            let al = (ml as u128) << (kl - k) as u32;
            let (neg, m) = signed_add(hi.neg, ah, lo.neg, al);
            if m == 0 {
                // Exact cancellation: RNE yields +0.
                return SoftFloat::zero();
            }
            SoftFloat::round_from_u128(neg, m, k, false)
        }
    }
}

pub(crate) fn sub<const P: u32>(a: SoftFloat<P>, b: SoftFloat<P>) -> SoftFloat<P> {
    add(a, -b)
}

pub(crate) fn mul<const P: u32>(a: SoftFloat<P>, b: SoftFloat<P>) -> SoftFloat<P> {
    let neg = a.neg != b.neg;
    match (a.kind, b.kind) {
        (Kind::Nan, _) | (_, Kind::Nan) => SoftFloat::nan(),
        (Kind::Inf, Kind::Zero) | (Kind::Zero, Kind::Inf) => SoftFloat::nan(),
        (Kind::Inf, _) | (_, Kind::Inf) => {
            if neg {
                SoftFloat::neg_infinity()
            } else {
                SoftFloat::infinity()
            }
        }
        (Kind::Zero, _) | (_, Kind::Zero) => SoftFloat::raw(Kind::Zero, neg, 0, 0),
        (Kind::Finite, Kind::Finite) => {
            let (ma, ka) = a.parts();
            let (mb, kb) = b.parts();
            SoftFloat::round_from_u128(neg, (ma as u128) * (mb as u128), ka + kb, false)
        }
    }
}

pub(crate) fn div<const P: u32>(a: SoftFloat<P>, b: SoftFloat<P>) -> SoftFloat<P> {
    let neg = a.neg != b.neg;
    match (a.kind, b.kind) {
        (Kind::Nan, _) | (_, Kind::Nan) => SoftFloat::nan(),
        (Kind::Inf, Kind::Inf) | (Kind::Zero, Kind::Zero) => SoftFloat::nan(),
        (Kind::Inf, _) => {
            if neg {
                SoftFloat::neg_infinity()
            } else {
                SoftFloat::infinity()
            }
        }
        (_, Kind::Inf) | (Kind::Zero, _) => SoftFloat::raw(Kind::Zero, neg, 0, 0),
        (_, Kind::Zero) => {
            if neg {
                SoftFloat::neg_infinity()
            } else {
                SoftFloat::infinity()
            }
        }
        (Kind::Finite, Kind::Finite) => {
            let (ma, ka) = a.parts();
            let (mb, kb) = b.parts();
            // Quotient with P + 3 extra bits: q has at least P + 2
            // significant bits, so the sticky flag is decisive.
            let shift = P + 3;
            let num = (ma as u128) << shift;
            let q = num / mb as u128;
            let sticky = !num.is_multiple_of(mb as u128);
            SoftFloat::round_from_u128(neg, q, ka - kb - shift as i32, sticky)
        }
    }
}

/// Fused multiply-add with a single rounding: `a * b + c`.
pub(crate) fn fused_mul_add<const P: u32>(
    a: SoftFloat<P>,
    b: SoftFloat<P>,
    c: SoftFloat<P>,
) -> SoftFloat<P> {
    // Special values: delegate to mul/add semantics.
    if a.kind == Kind::Nan || b.kind == Kind::Nan || c.kind == Kind::Nan {
        return SoftFloat::nan();
    }
    if a.kind == Kind::Inf || b.kind == Kind::Inf || c.kind == Kind::Inf {
        return add(mul(a, b), c);
    }
    if a.kind == Kind::Zero || b.kind == Kind::Zero {
        return add(mul(a, b), c);
    }
    if c.kind == Kind::Zero {
        return mul(a, b);
    }

    // Exact product: up to 2P <= 120 bits.
    let (ma, ka) = a.parts();
    let (mb, kb) = b.parts();
    let mp = (ma as u128) * (mb as u128);
    let kp = ka + kb;
    let neg_p = a.neg != b.neg;
    let lenp = 128 - mp.leading_zeros() as i32;
    let msb_p = kp + lenp - 1;
    let (mc, kc) = c.parts();
    let msb_c = c.exp;

    // Anchor: keep 126 bits below the larger msb; everything under the
    // anchor is folded into sticky. Deep cancellation (msb gap <= 1) always
    // fits exactly, so sticky never participates in a cancelled result
    // (see crate tests `fma_matches_hardware`).
    let anchor = msb_p.max(msb_c) - 125;
    let mut sticky = false;
    let align = |m: u128, k: i32, sticky: &mut bool| -> u128 {
        if k >= anchor {
            m << (k - anchor) as u32
        } else {
            let sh = (anchor - k) as u32;
            if sh >= 128 {
                *sticky |= m != 0;
                0
            } else {
                *sticky |= m & ((1u128 << sh) - 1) != 0;
                m >> sh
            }
        }
    };
    let ap = align(mp, kp, &mut sticky);
    let ac = align(mc as u128, kc, &mut sticky);
    let (neg, m) = signed_add(neg_p, ap, c.neg, ac);
    if m == 0 {
        return if sticky {
            // Result magnitude is entirely sticky residue — cannot happen:
            // sticky is only set when one operand dominates by > 126 bits.
            unreachable!("fma cancellation with sticky residue")
        } else {
            SoftFloat::zero()
        };
    }
    SoftFloat::round_from_u128(neg, m, anchor, sticky)
}

fn isqrt_u128(n: u128) -> u128 {
    if n == 0 {
        return 0;
    }
    let mut x = (n as f64).sqrt() as u128 + 2;
    loop {
        let y = (x + n / x) / 2;
        if y >= x {
            break;
        }
        x = y;
    }
    while x * x > n {
        x -= 1;
    }
    while (x + 1) * (x + 1) <= n {
        x += 1;
    }
    x
}

pub(crate) fn sqrt<const P: u32>(a: SoftFloat<P>) -> SoftFloat<P> {
    match a.kind {
        Kind::Nan => SoftFloat::nan(),
        Kind::Zero => a, // sqrt(±0) = ±0
        Kind::Inf => {
            if a.neg {
                SoftFloat::nan()
            } else {
                a
            }
        }
        Kind::Finite => {
            if a.neg {
                return SoftFloat::nan();
            }
            let (m, k) = a.parts();
            // Radicand m << t with k - t even; t large enough that the root
            // carries >= P + 2 bits.
            let mut t = P as i32 + 6;
            if (k - t) % 2 != 0 {
                t += 1;
            }
            let r = (m as u128) << t as u32;
            let s = isqrt_u128(r);
            let sticky = s * s != r;
            SoftFloat::round_from_u128(false, s, (k - t) / 2, sticky)
        }
    }
}

pub(crate) fn floor<const P: u32>(a: SoftFloat<P>) -> SoftFloat<P> {
    match a.kind {
        Kind::Finite => {
            if a.exp >= P as i32 - 1 {
                return a; // already an integer
            }
            if a.exp < 0 {
                // |a| < 1
                return if a.neg {
                    -SoftFloat::one()
                } else {
                    SoftFloat::zero()
                };
            }
            let frac_bits = (P as i32 - 1 - a.exp) as u32;
            let int_part = a.mant >> frac_bits;
            let has_frac = a.mant & ((1u64 << frac_bits) - 1) != 0;
            let int_part = if a.neg && has_frac {
                int_part + 1
            } else {
                int_part
            };
            SoftFloat::round_from_u128(a.neg, int_part as u128, 0, false)
        }
        _ => a,
    }
}

/// Round half away from zero (`f64::round` semantics).
pub(crate) fn round_half_away<const P: u32>(a: SoftFloat<P>) -> SoftFloat<P> {
    match a.kind {
        Kind::Finite => {
            if a.exp >= P as i32 - 1 {
                return a;
            }
            if a.exp < -1 {
                return SoftFloat::raw(Kind::Zero, a.neg, 0, 0);
            }
            if a.exp == -1 {
                // 0.5 <= |a| < 1 rounds away to ±1.
                return if a.neg {
                    -SoftFloat::one()
                } else {
                    SoftFloat::one()
                };
            }
            let frac_bits = (P as i32 - 1 - a.exp) as u32;
            let int_part = a.mant >> frac_bits;
            let half = 1u64 << (frac_bits - 1);
            let int_part = if a.mant & half != 0 {
                int_part + 1
            } else {
                int_part
            };
            SoftFloat::round_from_u128(a.neg, int_part as u128, 0, false)
        }
        _ => a,
    }
}
