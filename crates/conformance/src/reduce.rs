//! Greedy case shrinking: given a diverging [`Case`], repeatedly apply
//! simplifying transforms and keep each one only if the *same*
//! implementation still diverges. The result is the minimal reproducer
//! that lands in the corpus.

use crate::{check, Case};

/// Does `case` still break `impl_name`?
fn still_fails(case: &Case, impl_name: &str) -> bool {
    check::run_case(case)
        .iter()
        .any(|d| d.impl_name == impl_name)
}

/// Shrink `case` to a (locally) minimal reproducer for `impl_name`.
pub fn reduce(case: &Case, impl_name: &str) -> Case {
    let mut cur = case.clone();
    if !still_fails(&cur, impl_name) {
        return cur; // flaky under re-run (shouldn't happen: checks are deterministic)
    }
    // Fixpoint: each pass tries every transform once; stop when none stick.
    for _ in 0..8 {
        let mut changed = false;
        changed |= shrink_vectors(&mut cur, impl_name);
        changed |= zero_components(&mut cur, impl_name);
        changed |= simplify_components(&mut cur, impl_name);
        if !changed {
            break;
        }
    }
    cur
}

/// Halve BLAS vector lengths (keeping the leading elements) while the
/// divergence persists.
fn shrink_vectors(cur: &mut Case, impl_name: &str) -> bool {
    if !matches!(cur.op.as_str(), "dot" | "axpy") {
        return false;
    }
    let n = cur.n;
    let start = if cur.op == "dot" { 0 } else { 1 };
    let mut changed = false;
    loop {
        let len = cur.operands[start].len() / n;
        if len <= 1 {
            return changed;
        }
        let keep = len.div_ceil(2) * n;
        let mut cand = cur.clone();
        for v in &mut cand.operands[start..] {
            v.truncate(keep);
        }
        if still_fails(&cand, impl_name) {
            *cur = cand;
            changed = true;
        } else {
            return changed;
        }
    }
}

/// Try zeroing each component (whole operands first, then tails).
fn zero_components(cur: &mut Case, impl_name: &str) -> bool {
    let mut changed = false;
    for oi in 0..cur.operands.len() {
        for ci in (0..cur.operands[oi].len()).rev() {
            if cur.operands[oi][ci] == 0.0 {
                continue;
            }
            let mut cand = cur.clone();
            cand.operands[oi][ci] = 0.0;
            if still_fails(&cand, impl_name) {
                *cur = cand;
                changed = true;
            }
        }
    }
    changed
}

/// Replace surviving components with simpler bit patterns: ±1, then the
/// same exponent with a one-bit mantissa, then low mantissa bits cleared.
fn simplify_components(cur: &mut Case, impl_name: &str) -> bool {
    let mut changed = false;
    for oi in 0..cur.operands.len() {
        for ci in 0..cur.operands[oi].len() {
            let v = cur.operands[oi][ci];
            if v == 0.0 || v == 1.0 || v == -1.0 {
                continue;
            }
            for cand_v in candidates(v) {
                if cand_v == v {
                    continue;
                }
                let mut cand = cur.clone();
                cand.operands[oi][ci] = cand_v;
                if still_fails(&cand, impl_name) {
                    *cur = cand;
                    changed = true;
                    break;
                }
            }
        }
    }
    changed
}

fn candidates(v: f64) -> [f64; 4] {
    if !v.is_finite() {
        // Keep the class; there is nothing simpler than inf/NaN itself.
        return [v; 4];
    }
    let sign = if v < 0.0 { -1.0 } else { 1.0 };
    let one_bit = if v == 0.0 {
        0.0
    } else {
        // Same binade, mantissa reduced to the implicit bit.
        f64::from_bits(v.to_bits() & 0xfff0_0000_0000_0000)
    };
    [
        sign, // ±1
        one_bit,
        f64::from_bits(v.to_bits() & 0xffff_ffff_0000_0000), // clear low 32
        f64::from_bits(v.to_bits() & 0xffff_f000_0000_0000), // keep top 8 mantissa bits
    ]
}
