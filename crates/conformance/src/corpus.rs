//! Regression-corpus serialization.
//!
//! Every divergence the harness has ever caught is committed as a JSON
//! entry under `results/conformance/` and replayed by `cargo test`.
//! Components are stored as `"0x%016x"` bit-pattern strings — the JSON
//! number grammar cannot spell NaN/inf (and [`Json`] renders them as
//! `null`), and bit patterns keep the repro exact down to the payload.

use crate::{Case, Divergence};
use mf_telemetry::json::Json;

pub const SCHEMA: &str = "mf-conformance/corpus/v1";

fn f64_to_hex(v: f64) -> Json {
    Json::str(format!("{:#018x}", v.to_bits()))
}

fn f64_from_hex(j: &Json) -> Result<f64, String> {
    let s = j.as_str().ok_or("component is not a string")?;
    let hex = s
        .strip_prefix("0x")
        .ok_or_else(|| format!("component {s:?} lacks 0x prefix"))?;
    let bits = u64::from_str_radix(hex, 16).map_err(|e| format!("bad component {s:?}: {e}"))?;
    Ok(f64::from_bits(bits))
}

/// One corpus entry: the minimized case plus which implementation it broke
/// and the divergence detail observed when it was recorded.
pub fn entry_to_json(d: &Divergence) -> Json {
    let mut obj = vec![
        ("op".to_string(), Json::str(d.case.op.clone())),
        ("n".to_string(), Json::u64(d.case.n as u64)),
        (
            "operands".to_string(),
            Json::Arr(
                d.case
                    .operands
                    .iter()
                    .map(|v| Json::Arr(v.iter().map(|&c| f64_to_hex(c)).collect()))
                    .collect(),
            ),
        ),
        ("impl".to_string(), Json::str(d.impl_name.clone())),
        ("detail".to_string(), Json::str(d.detail.clone())),
    ];
    if let Some(t) = &d.case.text {
        obj.push(("text".to_string(), Json::str(t.clone())));
    }
    Json::Obj(obj)
}

pub fn entry_from_json(j: &Json) -> Result<Divergence, String> {
    let op = j
        .get("op")
        .and_then(|v| v.as_str())
        .ok_or("entry missing op")?
        .to_string();
    let n = j
        .get("n")
        .and_then(|v| v.as_u64())
        .ok_or("entry missing n")? as usize;
    let mut operands = Vec::new();
    if let Some(arr) = j.get("operands").and_then(|v| v.as_arr()) {
        for o in arr {
            let comps = o.as_arr().ok_or("operand is not an array")?;
            operands.push(comps.iter().map(f64_from_hex).collect::<Result<_, _>>()?);
        }
    }
    let text = j.get("text").and_then(|v| v.as_str()).map(str::to_string);
    Ok(Divergence {
        case: Case {
            op,
            n,
            operands,
            text,
        },
        impl_name: j
            .get("impl")
            .and_then(|v| v.as_str())
            .unwrap_or("mf-core")
            .to_string(),
        detail: j
            .get("detail")
            .and_then(|v| v.as_str())
            .unwrap_or_default()
            .to_string(),
    })
}

/// Render a full corpus document.
pub fn render(entries: &[Divergence]) -> String {
    Json::Obj(vec![
        ("schema".to_string(), Json::str(SCHEMA)),
        (
            "entries".to_string(),
            Json::Arr(entries.iter().map(entry_to_json).collect()),
        ),
    ])
    .render_pretty()
}

/// Parse a corpus document.
pub fn parse(text: &str) -> Result<Vec<Divergence>, String> {
    let j = Json::parse(text)?;
    match j.get("schema").and_then(|v| v.as_str()) {
        Some(SCHEMA) => {}
        other => return Err(format!("unknown corpus schema {other:?}")),
    }
    j.get("entries")
        .and_then(|v| v.as_arr())
        .ok_or("corpus missing entries")?
        .iter()
        .map(entry_from_json)
        .collect()
}

/// Replay every corpus entry; return the entries that *still* diverge.
/// A clean run returns an empty vec — all recorded bugs stay fixed.
pub fn replay(entries: &[Divergence]) -> Vec<Divergence> {
    entries
        .iter()
        .filter(|e| {
            crate::check::run_case(&e.case)
                .iter()
                .any(|d| d.impl_name == e.impl_name)
        })
        .cloned()
        .collect()
}
