//! `mf-conformance`: differential fuzzing and conformance checking for the
//! whole workspace.
//!
//! Stochastic accuracy tests admit kernels that are wrong on rare inputs —
//! the failure mode the paper's companion FPAN verifier exists to rule out.
//! This crate is the executable counterpart for the parts a symbolic
//! verifier does not cover: it drives every public operation through four
//! implementations *in lockstep* on the same adversarial inputs and flags
//! any divergence beyond the documented error bounds:
//!
//! * `MultiFloat<f64, N>` for N ∈ {2, 3, 4} (the system under test),
//! * the [`MpFloat`] software oracle (exact, arbitrary precision),
//! * the DD / QD / CAMPARY baselines (checked against their own looser
//!   documented bounds, in the regular regime only),
//! * [`SoftFloat`] at p = 53 (bit-exact vs hardware) and p = 11 (bit-exact
//!   vs the oracle rounded to 11 bits).
//!
//! Input generation (see [`gen`]) deliberately covers the regimes uniform
//! random sampling misses: ±0, ±inf, NaN, subnormal heads and tails,
//! near-overflow magnitudes, massive cancellation, boundary-tie expansions
//! (two spellings of one value), and zero-padded expansions.
//!
//! A divergence is shrunk by [`reduce::reduce`] to a minimal reproducer and
//! can be serialized as a JSON corpus entry ([`corpus`]); the committed
//! corpus under `results/conformance/` is replayed by `cargo test` so every
//! bug this harness has ever caught stays caught.
//!
//! # What counts as a divergence
//!
//! The checks encode the *documented* semantics, not IEEE-754:
//!
//! * Non-finite operands collapse to a non-finite result through the
//!   branch-free kernels (§4.4); a *finite* result from a non-finite input
//!   is a divergence, a NaN is not.
//! * A divisor that is exactly zero yields a non-finite result (NaN, not
//!   ±inf — there is no branch to pick the sign).
//! * Exactly cancelling additions must produce exactly zero (the discarded
//!   FPAN error term is relative to the result).
//! * When the exact result's magnitude is ≥ 2^1020 the implementation may
//!   either stay within its bound or overflow to a non-finite value.
//! * Everything else must land within the per-op relative bounds in
//!   [`check::rel_bound_exp`], with an absolute floor of 2^-1040 for
//!   results deep in the subnormal range (where EFT error terms flush).

pub mod check;
pub mod corpus;
pub mod gen;
pub mod reduce;

pub use mf_mpsoft::MpFloat;
pub use mf_softfloat::SoftFloat;

/// One conformance case: an operation plus bit-exact operands.
///
/// `operands` holds one `Vec<f64>` per logical operand. For expansion ops
/// each operand has exactly `n` components; for BLAS ops the vectors are
/// flattened `len * n` component arrays. Text-based cases (decimal parse)
/// carry the input in `text` instead.
#[derive(Debug, Clone, PartialEq)]
pub struct Case {
    /// Operation name: `add`, `sub`, `mul`, `div`, `sqrt`, `ln`, `cmp`,
    /// `to_f64`, `mp_roundtrip`, `io_roundtrip`, `parse`, `dot`, `axpy`,
    /// `gemv`, `soft_add` … (see [`check::run_case`] for the full set).
    pub op: String,
    /// Expansion length N ∈ {2, 3, 4} (1 for scalar softfloat ops).
    pub n: usize,
    /// Bit-exact operands (empty for text-based cases).
    pub operands: Vec<Vec<f64>>,
    /// Input text for decimal-parse cases.
    pub text: Option<String>,
}

/// A check that failed: the offending case plus which implementation broke
/// which contract.
#[derive(Debug, Clone)]
pub struct Divergence {
    pub case: Case,
    /// `mf-core`, `dd`, `qd`, `campary`, `softfloat-p53`, `softfloat-p11`,
    /// `blas-serial`, `blas-parallel`.
    pub impl_name: String,
    /// Human-readable description: got vs. want, error vs. bound.
    pub detail: String,
}

impl Case {
    pub fn new(op: &str, n: usize, operands: Vec<Vec<f64>>) -> Self {
        Case {
            op: op.to_string(),
            n,
            operands,
            text: None,
        }
    }

    pub fn text(op: &str, n: usize, text: &str) -> Self {
        Case {
            op: op.to_string(),
            n,
            operands: Vec::new(),
            text: Some(text.to_string()),
        }
    }
}

/// The op classes the harness can run (`--ops` on the CLI).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpClass {
    /// add / sub / mul / div / sqrt / ln on expansions.
    Arith,
    /// PartialEq / PartialOrd / min / max.
    Cmp,
    /// to_f64 faithfulness, MpFloat roundtrips.
    Convert,
    /// Decimal print/parse roundtrips.
    Io,
    /// dot / axpy / gemv / gemm, serial and parallel.
    Blas,
    /// SoftFloat vs hardware (p = 53) and vs oracle (p = 11).
    Soft,
}

impl OpClass {
    pub const ALL: [OpClass; 6] = [
        OpClass::Arith,
        OpClass::Cmp,
        OpClass::Convert,
        OpClass::Io,
        OpClass::Blas,
        OpClass::Soft,
    ];

    pub fn name(self) -> &'static str {
        match self {
            OpClass::Arith => "arith",
            OpClass::Cmp => "cmp",
            OpClass::Convert => "convert",
            OpClass::Io => "io",
            OpClass::Blas => "blas",
            OpClass::Soft => "soft",
        }
    }

    pub fn parse(s: &str) -> Option<OpClass> {
        OpClass::ALL.iter().copied().find(|c| c.name() == s)
    }
}

/// Run `cases` generated arithmetic cases through the guarded API under
/// `policy` in lockstep with the oracle (see [`check::run_case_guarded`]).
/// The generator seed is offset from [`run_class`]'s so the guarded sweep
/// explores different draws than the fast-path sweep at the same seed.
pub fn run_guarded(cases: usize, seed: u64, policy: mf_core::GuardPolicy) -> Vec<Divergence> {
    let mut g = gen::CaseGen::new(seed ^ 0x6a72_6465_6427_5eed);
    let mut out = Vec::new();
    for _ in 0..cases {
        let case = g.next_case(OpClass::Arith);
        out.extend(check::run_case_guarded(&case, policy));
        if out.len() >= 32 {
            break; // enough evidence; don't flood the report
        }
    }
    out
}

/// Run `cases` generated arithmetic cases through the [`mf_core::Adaptive`]
/// ladder engine in lockstep with the oracle (see
/// [`check::run_case_adaptive`]): results that stayed on the base rung are
/// held to the base bounds, escalated results to the `N = 2` representation
/// bound — proving escalation lands on the MpFloat oracle. The engine runs
/// in per-op (non-sticky) mode so every case is judged from the base rung
/// and replays deterministically in isolation. Returns the divergences and
/// the engine's escalation tally for the sweep.
pub fn run_adaptive(cases: usize, seed: u64) -> (Vec<Divergence>, mf_core::AdaptiveStats) {
    let policy = mf_core::EscalationPolicy {
        sticky: false,
        ..Default::default()
    };
    let engine = mf_core::Adaptive::<f64>::new(policy);
    let mut g = gen::CaseGen::new(seed ^ 0xada7_d1ff_5eed_0ca1);
    let mut out = Vec::new();
    for _ in 0..cases {
        let case = g.next_case(OpClass::Arith);
        out.extend(check::run_case_adaptive(&case, &engine));
        if out.len() >= 32 {
            break; // enough evidence; don't flood the report
        }
    }
    (out, engine.stats())
}

/// Run `cases` generated cases of one class and return every divergence
/// (already shrunk to minimal reproducers).
pub fn run_class(class: OpClass, cases: usize, seed: u64) -> Vec<Divergence> {
    let mut g = gen::CaseGen::new(seed ^ (class as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut out = Vec::new();
    for _ in 0..cases {
        let case = g.next_case(class);
        for d in check::run_case(&case) {
            let reduced = reduce::reduce(&d.case, &d.impl_name);
            let detail = check::run_case(&reduced)
                .into_iter()
                .find(|r| r.impl_name == d.impl_name)
                .map(|r| r.detail)
                .unwrap_or(d.detail.clone());
            out.push(Divergence {
                case: reduced,
                impl_name: d.impl_name,
                detail,
            });
            if out.len() >= 32 {
                return out; // enough evidence; don't flood the corpus
            }
        }
    }
    out
}
