//! Lockstep checkers: run one [`Case`] through every implementation that
//! claims to handle it and compare against the oracle within documented
//! bounds. See the crate docs for what counts as a divergence.

use crate::gen::{round_to_bits, ulp, valid_expansion};
use crate::{Case, Divergence};
use core::cmp::Ordering;
use mf_baselines::{campary::Expansion, dd::DoubleDouble, qd::QuadDouble};
use mf_blas::soa::SoaMatrix;
use mf_blas::{kernels, parallel, tile, Matrix};
use mf_core::{Adaptive, FloatBase, GuardPolicy, MultiFloat};
use mf_mpsoft::MpFloat;
use mf_softfloat::SoftFloat;

/// Oracle working precision: far beyond any bound under test, so oracle
/// rounding is never the reason a check fails.
const ORACLE_PREC: u32 = 512;

/// Exact-result magnitudes at or above 2^OVERFLOW_EXP may legitimately
/// collapse to a non-finite expansion (no extended exponent range, §4.4).
const OVERFLOW_EXP: i64 = 1020;

/// Absolute error floor: once |got - exact| <= 2^ABS_FLOOR_EXP the result
/// is bit-adjacent in the deep subnormal range, where EFT error terms
/// flush and relative bounds are unachievable.
const ABS_FLOOR_EXP: i64 = -1040;

/// log2 of the documented relative error bound for `MultiFloat<f64, N>`,
/// with a couple of bits of conformance slack. These are the *enforced*
/// contract: a tighter observed error is fine, a looser one is a
/// divergence.
pub fn rel_bound_exp(op: &str, n: usize) -> i32 {
    let i = n - 2; // n in {2, 3, 4}
    match op {
        "add" | "sub" => [-102, -153, -204][i],
        "mul" => [-101, -151, -201][i],
        "div" => [-99, -150, -200][i],
        "sqrt" => [-100, -152, -203][i],
        _ => unreachable!("no bound for {op}"),
    }
}

fn pow2f(e: i32) -> f64 {
    2.0f64.powi(e)
}

/// Exact value of a finite component slice as an MpFloat.
fn slice_to_mp(c: &[f64]) -> MpFloat {
    let mut acc = MpFloat::zero(ORACLE_PREC);
    for &v in c.iter().rev() {
        acc = acc.add(&MpFloat::from_f64(v, 53), ORACLE_PREC);
    }
    acc
}

fn mf<const N: usize>(c: &[f64]) -> MultiFloat<f64, N> {
    let mut a = [0.0; N];
    a.copy_from_slice(&c[..N]);
    MultiFloat::from_components(a)
}

fn diverge(case: &Case, impl_name: &str, detail: String) -> Divergence {
    Divergence {
        case: case.clone(),
        impl_name: impl_name.to_string(),
        detail,
    }
}

/// `|got - exact|` within the relative bound `2^rel_exp`, with the
/// absolute floor. Returns `(ok, observed_rel_err)`.
fn within(got: &MpFloat, exact: &MpFloat, rel_exp: i32) -> (bool, f64) {
    let diff = got.sub(exact, ORACLE_PREC).abs();
    if diff.is_zero() || diff.exp2().unwrap_or(i64::MIN) <= ABS_FLOOR_EXP {
        return (true, 0.0);
    }
    if exact.is_zero() {
        return (false, f64::INFINITY);
    }
    let rel = got.rel_error_vs(exact);
    (rel <= pow2f(rel_exp), rel)
}

/// Entry point: run every applicable check for one case.
pub fn run_case(case: &Case) -> Vec<Divergence> {
    macro_rules! for_n {
        ($f:ident) => {
            match case.n {
                2 => $f::<2>(case),
                3 => $f::<3>(case),
                4 => $f::<4>(case),
                other => vec![diverge(case, "harness", format!("unsupported N={other}"))],
            }
        };
    }
    match case.op.as_str() {
        "add" | "sub" | "mul" | "div" | "sqrt" => for_n!(check_arith),
        "ln" => for_n!(check_ln),
        "cmp" => for_n!(check_cmp),
        "to_f64" => for_n!(check_to_f64),
        "mp_roundtrip" => for_n!(check_mp_roundtrip),
        "io_roundtrip" => for_n!(check_io_roundtrip),
        "parse" => for_n!(check_parse),
        "dot" | "axpy" => for_n!(check_vec_kernel),
        "gemv" | "gemm" => for_n!(check_matrix_kernel),
        op if op.starts_with("soft11_") => check_soft::<11>(case),
        op if op.starts_with("soft_") => check_soft::<53>(case),
        other => vec![diverge(case, "harness", format!("unknown op {other}"))],
    }
}

// ----------------------------------------------------------------------
// Expansion arithmetic
// ----------------------------------------------------------------------

fn check_arith<const N: usize>(case: &Case) -> Vec<Divergence> {
    let op = case.op.as_str();
    let a = &case.operands[0];
    let b = &case.operands[case.operands.len() - 1];
    let unary = op == "sqrt";
    if !valid_expansion(a) || (!unary && !valid_expansion(b)) {
        return Vec::new(); // inadmissible spelling; not an input the API promises anything for
    }
    let xa = mf::<N>(a);
    let xb = mf::<N>(b);
    let result = match op {
        "add" => xa.add(xb),
        "sub" => xa.sub(xb),
        "mul" => xa.mul(xb),
        "div" => xa.div(xb),
        _ => xa.sqrt(),
    };
    let mut out = Vec::new();

    // Non-finite operands collapse to a non-finite result.
    let nonfinite_in =
        !a.iter().all(|v| v.is_finite()) || (!unary && !b.iter().all(|v| v.is_finite()));
    if nonfinite_in {
        if result.is_finite() {
            out.push(diverge(
                case,
                "mf-core",
                format!("non-finite input produced finite {:?}", result.components()),
            ));
        }
        return out;
    }
    // sqrt of a negative value is NaN.
    if unary && xa.is_negative() && !xa.is_zero() {
        if !result.is_nan() {
            out.push(diverge(case, "mf-core", "sqrt(negative) not NaN".into()));
        }
        return out;
    }
    // Division by an exact zero collapses (NaN, not ±inf).
    if op == "div" && xb.is_zero() {
        if result.is_finite() {
            out.push(diverge(
                case,
                "mf-core",
                "x/0 produced a finite value".into(),
            ));
        }
        return out;
    }
    // Division by a divisor below the recip-overflow threshold may collapse
    // even though the exact quotient is representable (1/b overflows
    // before the Newton correction runs). Likewise sqrt of a deep
    // subnormal: the rsqrt iteration squares r ~ 2^512+, overflowing.
    let div_collapse_ok = op == "div" && xb.hi().abs() < pow2f(-1020);
    let sqrt_collapse_ok = unary && xa.hi() < pow2f(-1020);
    // Residual reconstruction overflow: Karp–Markstein div rebuilds
    // divisor * q0 ~ dividend (and sqrt rebuilds y^2 ~ x) for the residual;
    // with the operand's head within an ulp-scale factor of f64::MAX that
    // product can round past MAX and collapse even though the exact result
    // is small. Conservatively excused for heads at or above 2^1023.
    let residual_overflow_ok = (op == "div" || unary) && xa.hi().abs() >= pow2f(1023);

    let a_mp = slice_to_mp(a);
    let b_mp = slice_to_mp(b);
    let exact = match op {
        "add" => a_mp.add(&b_mp, ORACLE_PREC),
        "sub" => a_mp.sub(&b_mp, ORACLE_PREC),
        "mul" => a_mp.mul(&b_mp, ORACLE_PREC),
        "div" => a_mp.div(&b_mp, ORACLE_PREC),
        _ => a_mp.sqrt(ORACLE_PREC),
    };

    // Exact cancellation (and 0/x, sqrt(0)) must produce exactly zero —
    // except 0 / b for b below the recip-overflow threshold, which runs
    // through 0 * inf and collapses like every other tiny-divisor case.
    if exact.is_zero() {
        if div_collapse_ok && !result.is_finite() {
            return out;
        }
        if !result.is_zero() {
            out.push(diverge(
                case,
                "mf-core",
                format!("exact zero result, got {:?}", result.components()),
            ));
        }
        return out;
    }

    let e_exact = exact.exp2().unwrap_or(0);
    let may_overflow =
        e_exact >= OVERFLOW_EXP || div_collapse_ok || sqrt_collapse_ok || residual_overflow_ok;
    let bexp = rel_bound_exp(op, N);
    if !result.is_finite() {
        if !may_overflow {
            out.push(diverge(
                case,
                "mf-core",
                format!(
                    "spurious non-finite result {:?} (exact exp2 {e_exact})",
                    result.components()
                ),
            ));
        }
        return out;
    }
    let got = result.to_mp(ORACLE_PREC);
    let (ok, rel) = within(&got, &exact, bexp);
    if !ok && !may_overflow && !flush_excused(op, &got, &exact, &a_mp, &b_mp) {
        out.push(diverge(
            case,
            "mf-core",
            format!("rel err 2^{:.1} exceeds bound 2^{bexp}", rel.log2()),
        ));
    }

    // Baselines, regular regime only: their documented bounds don't cover
    // the edge regimes, and they are perf baselines, not the contract.
    let regular = (-400..=400).contains(&e_exact)
        && a.iter().chain(b.iter()).all(|&v| {
            v == 0.0 || ((-400..=400).contains(&(v.abs().log2() as i64)) && v.is_finite())
        });
    if !regular {
        return out;
    }
    let mag = a_mp.abs().add(&b_mp.abs(), ORACLE_PREC); // backward-bound scale for add/sub
    check_baselines::<N>(case, op, a, b, &exact, &mag, &mut out);
    out
}

/// Name under which guarded-mode divergences are reported.
pub fn guard_impl_name(policy: GuardPolicy) -> &'static str {
    match policy {
        GuardPolicy::FastOnly => "mf-guard-fastonly",
        GuardPolicy::RescaleRetry => "mf-guard-rescale",
        GuardPolicy::OracleFallback => "mf-guard-oracle",
    }
}

/// Lockstep entry point for the guarded API: like [`run_case`], but the
/// case runs through `checked_*` under `policy` and is held to the
/// documented accuracy bound *without* the fast path's collapse excuses.
/// The tiny-divisor / deep-subnormal / residual-reconstruction regimes are
/// exactly what the recovery paths exist to fix, so a collapse under a
/// recovery policy is a divergence here even though [`run_case`] excuses
/// it. Non-arithmetic ops have no guarded form and return no findings.
pub fn run_case_guarded(case: &Case, policy: GuardPolicy) -> Vec<Divergence> {
    match case.op.as_str() {
        "add" | "sub" | "mul" | "div" | "sqrt" => match case.n {
            2 => check_arith_guarded::<2>(case, policy),
            3 => check_arith_guarded::<3>(case, policy),
            4 => check_arith_guarded::<4>(case, policy),
            other => vec![diverge(case, "harness", format!("unsupported N={other}"))],
        },
        _ => Vec::new(),
    }
}

fn check_arith_guarded<const N: usize>(case: &Case, policy: GuardPolicy) -> Vec<Divergence> {
    let op = case.op.as_str();
    let a = &case.operands[0];
    let b = &case.operands[case.operands.len() - 1];
    let unary = op == "sqrt";
    if !valid_expansion(a) || (!unary && !valid_expansion(b)) {
        return Vec::new();
    }
    let name = guard_impl_name(policy);
    let xa = mf::<N>(a);
    let xb = mf::<N>(b);
    let g = match op {
        "add" => xa.checked_add(xb, policy),
        "sub" => xa.checked_sub(xb, policy),
        "mul" => xa.checked_mul(xb, policy),
        "div" => xa.checked_div(xb, policy),
        _ => xa.checked_sqrt(policy),
    };
    let result = g.value;
    let mut out = Vec::new();

    // Documented special-value semantics pass through the guard unchanged.
    let nonfinite_in =
        !a.iter().all(|v| v.is_finite()) || (!unary && !b.iter().all(|v| v.is_finite()));
    if nonfinite_in {
        if result.is_finite() {
            out.push(diverge(
                case,
                name,
                format!("non-finite input produced finite {:?}", result.components()),
            ));
        }
        return out;
    }
    if unary && xa.is_negative() && !xa.is_zero() {
        if !result.is_nan() {
            out.push(diverge(case, name, "sqrt(negative) not NaN".into()));
        }
        return out;
    }
    if op == "div" && xb.is_zero() {
        if result.is_finite() {
            out.push(diverge(case, name, "x/0 produced a finite value".into()));
        }
        return out;
    }

    let a_mp = slice_to_mp(a);
    let b_mp = slice_to_mp(b);
    let exact = match op {
        "add" => a_mp.add(&b_mp, ORACLE_PREC),
        "sub" => a_mp.sub(&b_mp, ORACLE_PREC),
        "mul" => a_mp.mul(&b_mp, ORACLE_PREC),
        "div" => a_mp.div(&b_mp, ORACLE_PREC),
        _ => a_mp.sqrt(ORACLE_PREC),
    };
    if exact.is_zero() {
        if !result.is_zero() {
            out.push(diverge(
                case,
                name,
                format!(
                    "exact zero result, got {:?} via {:?}",
                    result.components(),
                    g.path
                ),
            ));
        }
        return out;
    }

    // The only excuse left under a recovery policy: the true result itself
    // is outside the representable range (the saturated non-finite answer
    // is then the *correct* report, and stays flagged in `g.flags`).
    let e_exact = exact.exp2().unwrap_or(0);
    let may_overflow = e_exact >= OVERFLOW_EXP;
    let bexp = rel_bound_exp(op, N);
    if !result.is_finite() {
        if !may_overflow {
            out.push(diverge(
                case,
                name,
                format!(
                    "unrecovered collapse: {:?} via {:?} (exact exp2 {e_exact})",
                    result.components(),
                    g.path
                ),
            ));
        }
        return out;
    }
    let got = result.to_mp(ORACLE_PREC);
    let (ok, rel) = within(&got, &exact, bexp);
    if !ok && !may_overflow && !flush_excused(op, &got, &exact, &a_mp, &b_mp) {
        out.push(diverge(
            case,
            name,
            format!(
                "rel err 2^{:.1} exceeds bound 2^{bexp} via {:?}",
                rel.log2(),
                g.path
            ),
        ));
    }
    out
}

/// Accuracy bound for results the `Adaptive` ladder escalated: any rung
/// above the base recomputes wide (error ≤ 2^-150) and narrows back to two
/// components (representation error ~2^-107, plus a tail-fold rounding),
/// and the oracle rung is correctly rounded outright — so escalated
/// results must sit at the N = 2 representation precision with a couple of
/// bits of slack, tighter than any base-rung operation bound.
pub const ADAPTIVE_ESCALATED_BOUND_EXP: i32 = -103;

/// Lockstep entry point for the adaptive engine: the case runs through
/// [`Adaptive`]'s `checked_*` ladder and is held to [`rel_bound_exp`] when
/// it stayed on the base rung and to [`ADAPTIVE_ESCALATED_BOUND_EXP`] when
/// it escalated — proving escalated results match the MpFloat oracle. As
/// with the recovery policies, collapse regimes (tiny divisor, deep
/// subnormal sqrt, residual-reconstruction overflow) are exactly what the
/// ladder exists to fix, so an unrecovered collapse is a divergence unless
/// the exact result itself is unrepresentable. The engine's base format is
/// `F64x2`, so wider cases check the two-component truncation of their
/// operands. Non-arithmetic ops return no findings.
pub fn run_case_adaptive(case: &Case, engine: &Adaptive<f64>) -> Vec<Divergence> {
    match case.op.as_str() {
        "add" | "sub" | "mul" | "div" | "sqrt" => check_arith_adaptive(case, engine),
        _ => Vec::new(),
    }
}

fn check_arith_adaptive(case: &Case, engine: &Adaptive<f64>) -> Vec<Divergence> {
    let op = case.op.as_str();
    let name = "mf-adaptive";
    let af = &case.operands[0];
    let bf = &case.operands[case.operands.len() - 1];
    if af.len() < 2 || bf.len() < 2 {
        return Vec::new();
    }
    let (a, b) = (&af[..2], &bf[..2]);
    let unary = op == "sqrt";
    if !valid_expansion(a) || (!unary && !valid_expansion(b)) {
        return Vec::new();
    }
    let xa = mf::<2>(a);
    let xb = mf::<2>(b);
    let ev = match op {
        "add" => engine.checked_add(xa, xb),
        "sub" => engine.checked_sub(xa, xb),
        "mul" => engine.checked_mul(xa, xb),
        "div" => engine.checked_div(xa, xb),
        _ => engine.checked_sqrt(xa),
    };
    let result = ev.value;
    let mut out = Vec::new();

    // Documented special-value semantics bypass the ladder unchanged.
    let nonfinite_in =
        !a.iter().all(|v| v.is_finite()) || (!unary && !b.iter().all(|v| v.is_finite()));
    if nonfinite_in {
        if result.is_finite() {
            out.push(diverge(
                case,
                name,
                format!("non-finite input produced finite {:?}", result.components()),
            ));
        }
        return out;
    }
    if unary && xa.is_negative() && !xa.is_zero() {
        if !result.is_nan() {
            out.push(diverge(case, name, "sqrt(negative) not NaN".into()));
        }
        return out;
    }
    if op == "div" && xb.is_zero() {
        if result.is_finite() {
            out.push(diverge(case, name, "x/0 produced a finite value".into()));
        }
        return out;
    }

    let a_mp = slice_to_mp(a);
    let b_mp = slice_to_mp(b);
    let exact = match op {
        "add" => a_mp.add(&b_mp, ORACLE_PREC),
        "sub" => a_mp.sub(&b_mp, ORACLE_PREC),
        "mul" => a_mp.mul(&b_mp, ORACLE_PREC),
        "div" => a_mp.div(&b_mp, ORACLE_PREC),
        _ => a_mp.sqrt(ORACLE_PREC),
    };
    if exact.is_zero() {
        if !result.is_zero() {
            out.push(diverge(
                case,
                name,
                format!(
                    "exact zero result, got {:?} at rung {}",
                    result.components(),
                    ev.rung
                ),
            ));
        }
        return out;
    }

    // The ladder tops out at the exact oracle, so the only excuse for a
    // non-finite result is a truly unrepresentable magnitude.
    let e_exact = exact.exp2().unwrap_or(0);
    let may_overflow = e_exact >= OVERFLOW_EXP;
    if !result.is_finite() {
        if !may_overflow {
            out.push(diverge(
                case,
                name,
                format!(
                    "unrecovered collapse: {:?} at rung {} (exact exp2 {e_exact})",
                    result.components(),
                    ev.rung
                ),
            ));
        }
        return out;
    }
    let bexp = if ev.escalated() {
        ADAPTIVE_ESCALATED_BOUND_EXP
    } else {
        rel_bound_exp(op, 2)
    };
    let got = result.to_mp(ORACLE_PREC);
    let (ok, rel) = within(&got, &exact, bexp);
    if !ok && !may_overflow && !flush_excused(op, &got, &exact, &a_mp, &b_mp) {
        out.push(diverge(
            case,
            name,
            format!(
                "rel err 2^{:.1} exceeds bound 2^{bexp} at rung {} ({} climbs)",
                rel.log2(),
                ev.rung,
                ev.escalations
            ),
        ));
    }
    out
}

/// Newton-refined ops lose their correction when the residual flushes:
/// `div` computes `a - b*q` (magnitude ~ |a| * 2^-2p) and `sqrt` computes
/// `x - y*y`; once those land below 2^-1074 the refinement is silently
/// dropped and only the unrefined accuracy remains. The undelivered
/// correction is bounded by (flushed residual)/|b| resp. /(2*sqrt(x)), so
/// excuse the miss when `diff * |b|` (div) or `diff * |result|` (sqrt)
/// sits at the flush scale.
fn flush_excused(op: &str, got: &MpFloat, exact: &MpFloat, a: &MpFloat, b: &MpFloat) -> bool {
    let diff = got.sub(exact, ORACLE_PREC).abs();
    if diff.is_zero() {
        return true;
    }
    let e = |m: &MpFloat| m.exp2().unwrap_or(i64::MIN);
    match op {
        "div" => {
            // Residual flush: undelivered correction <= flush / |b| ...
            e(&diff.mul(&b.abs(), 64)) <= -1055
                // ... or recip-tail flush (|b| ~ 2^1020, so 1/b tails sit
                // below 2^-1074): error <= N * 2^-1074 * |a|.
                || (!a.is_zero() && e(&diff.div(&a.abs(), 64)) <= -1055)
        }
        "sqrt" => {
            // Small x: the residual x - y*y flushes.
            e(&diff.mul(&exact.abs(), 64)) <= -1055
                // Large x: tails of r*r in the rsqrt iteration flush
                // (r^2 ~ 1/x), costing up to |x| * 2^-1074 relative.
                || e(&diff) <= e(&exact.abs()) + e(&a.abs()) - 1050
        }
        _ => false,
    }
}

/// Backward-style check used for baseline additions: error measured
/// against |a| + |b| rather than the (possibly cancelled) result.
fn within_backward(got: &MpFloat, exact: &MpFloat, mag: &MpFloat, rel_exp: i32) -> (bool, f64) {
    let diff = got.sub(exact, ORACLE_PREC).abs();
    if diff.is_zero() || diff.exp2().unwrap_or(i64::MIN) <= ABS_FLOOR_EXP {
        return (true, 0.0);
    }
    let rel = diff.div(&mag.abs(), 64).to_f64();
    (rel <= pow2f(rel_exp), rel)
}

fn check_baselines<const N: usize>(
    case: &Case,
    op: &str,
    a: &[f64],
    b: &[f64],
    exact: &MpFloat,
    mag: &MpFloat,
    out: &mut Vec<Divergence>,
) {
    let backward = matches!(op, "add" | "sub");
    let sqrt_neg = op == "sqrt" && a[0] < 0.0;
    if sqrt_neg {
        return;
    }
    // DD at N = 2: Hida–Li–Bailey double-double bounds.
    if N == 2 {
        let da = DoubleDouble { hi: a[0], lo: a[1] };
        let db = DoubleDouble { hi: b[0], lo: b[1] };
        let r = match op {
            "add" => da.add(db),
            "sub" => da.sub(db),
            "mul" => da.mul(db),
            "div" => da.div(db),
            _ => da.sqrt(),
        };
        let bexp = if backward { -99 } else { -95 };
        push_baseline(case, "dd", &[r.hi, r.lo], exact, mag, backward, bexp, out);
    }
    // QD at N = 4 (accurate addition; the sloppy path carries no bound).
    if N == 4 {
        let qa = QuadDouble([a[0], a[1], a[2], a[3]]);
        let qb = QuadDouble([b[0], b[1], b[2], b[3]]);
        let r = match op {
            "add" => qa.accurate_add(qb),
            "sub" => qa.accurate_add(qb.neg()),
            "mul" => qa.mul(qb),
            "div" => qa.div(qb),
            _ => qa.sqrt(),
        };
        let bexp = if backward { -200 } else { -185 };
        push_baseline(case, "qd", &r.0, exact, mag, backward, bexp, out);
    }
    // CAMPARY certified expansions at every N.
    let mut ca = [0.0; N];
    ca.copy_from_slice(&a[..N]);
    let mut cb = [0.0; N];
    cb.copy_from_slice(&b[..N]);
    let (ea, eb) = (Expansion::<N>(ca), Expansion::<N>(cb));
    let r = match op {
        "add" => ea.add(eb),
        "sub" => ea.sub(eb),
        "mul" => ea.mul(eb),
        "div" => ea.div(eb),
        _ => ea.sqrt(),
    };
    let bexp = if backward {
        -(53 * N as i32 - 10)
    } else {
        -(53 * N as i32 - 18)
    };
    push_baseline(case, "campary", &r.0, exact, mag, backward, bexp, out);
}

#[allow(clippy::too_many_arguments)]
fn push_baseline(
    case: &Case,
    name: &str,
    comps: &[f64],
    exact: &MpFloat,
    mag: &MpFloat,
    backward: bool,
    bexp: i32,
    out: &mut Vec<Divergence>,
) {
    if !comps.iter().all(|v| v.is_finite()) {
        out.push(diverge(
            case,
            name,
            format!("non-finite result {comps:?} in the regular regime"),
        ));
        return;
    }
    let got = slice_to_mp(comps);
    let (ok, rel) = if backward {
        within_backward(&got, exact, mag, bexp)
    } else {
        within(&got, exact, bexp)
    };
    if !ok {
        out.push(diverge(
            case,
            name,
            format!("rel err 2^{:.1} exceeds bound 2^{bexp}", rel.log2()),
        ));
    }
}

// ----------------------------------------------------------------------
// ln (branchy domain checks: IEEE special values apply)
// ----------------------------------------------------------------------

fn check_ln<const N: usize>(case: &Case) -> Vec<Divergence> {
    let a = &case.operands[0];
    if !valid_expansion(a) {
        return Vec::new();
    }
    let xa = mf::<N>(a);
    let r = xa.ln();
    let h = a[0];
    let mut out = Vec::new();
    if h.is_nan() || h < 0.0 {
        if !r.is_nan() {
            out.push(diverge(case, "mf-core", "ln(neg/NaN) not NaN".into()));
        }
    } else if h == 0.0 {
        if r.hi() != f64::NEG_INFINITY {
            out.push(diverge(case, "mf-core", "ln(0) not -inf".into()));
        }
    } else if h == f64::INFINITY {
        if r.hi() != f64::INFINITY {
            out.push(diverge(case, "mf-core", "ln(+inf) not +inf".into()));
        }
    } else if (-500..=500).contains(&(h.abs().log2() as i64)) {
        // No MpFloat ln: check the identity exp(ln x) = x with slack for
        // the two transcendental evaluations compounding.
        if !r.is_finite() {
            out.push(diverge(
                case,
                "mf-core",
                "ln of a normal value not finite".into(),
            ));
            return out;
        }
        let back = r.exp();
        if !back.is_finite() {
            out.push(diverge(case, "mf-core", "exp(ln(x)) not finite".into()));
            return out;
        }
        let exact = slice_to_mp(a);
        let (ok, rel) = within(&back.to_mp(ORACLE_PREC), &exact, -(40 * N as i32));
        if !ok {
            out.push(diverge(
                case,
                "mf-core",
                format!("exp(ln(x)) off by 2^{:.1}", rel.log2()),
            ));
        }
    }
    out
}

// ----------------------------------------------------------------------
// Comparisons
// ----------------------------------------------------------------------

enum Val {
    Nan,
    Inf(bool), // negative?
    Fin(MpFloat),
}

fn classify(c: &[f64]) -> Val {
    if c.iter().any(|v| v.is_nan()) {
        return Val::Nan;
    }
    if !c[0].is_finite() {
        return Val::Inf(c[0] < 0.0);
    }
    Val::Fin(slice_to_mp(c))
}

fn check_cmp<const N: usize>(case: &Case) -> Vec<Divergence> {
    let (a, b) = (&case.operands[0], &case.operands[1]);
    if !valid_expansion(a) || !valid_expansion(b) {
        return Vec::new();
    }
    let xa = mf::<N>(a);
    let xb = mf::<N>(b);
    let expected = match (classify(a), classify(b)) {
        (Val::Nan, _) | (_, Val::Nan) => None,
        (Val::Inf(na), Val::Inf(nb)) => Some(nb.cmp(&na)), // -inf < +inf
        (Val::Inf(neg), Val::Fin(_)) => Some(if neg {
            Ordering::Less
        } else {
            Ordering::Greater
        }),
        (Val::Fin(_), Val::Inf(neg)) => Some(if neg {
            Ordering::Greater
        } else {
            Ordering::Less
        }),
        (Val::Fin(ma), Val::Fin(mb)) => Some(ma.cmp(&mb)),
    };
    let mut out = Vec::new();
    let got = xa.partial_cmp(&xb);
    if got != expected {
        out.push(diverge(
            case,
            "mf-core",
            format!("partial_cmp {got:?}, oracle {expected:?}"),
        ));
        return out;
    }
    if (xa == xb) != (expected == Some(Ordering::Equal)) {
        out.push(diverge(
            case,
            "mf-core",
            "eq disagrees with partial_cmp".into(),
        ));
        return out;
    }
    // min/max select the right operand (NaN loses).
    let (mn, mx) = (xa.min(xb), xa.max(xb));
    let (want_min, want_max) = match expected {
        Some(Ordering::Less) | Some(Ordering::Equal) => (xa.components(), xb.components()),
        Some(Ordering::Greater) => (xb.components(), xa.components()),
        None => {
            if xa.is_nan() && xb.is_nan() {
                if !mn.is_nan() || !mx.is_nan() {
                    out.push(diverge(
                        case,
                        "mf-core",
                        "min/max of two NaNs not NaN".into(),
                    ));
                }
                return out;
            } else if xa.is_nan() {
                (xb.components(), xb.components())
            } else {
                (xa.components(), xa.components())
            }
        }
    };
    // For Equal, min/max may return either operand; both spell the value.
    let eq_ok = expected == Some(Ordering::Equal)
        && mn.components() == xa.components()
        && mx.components() == xa.components();
    if !eq_ok && (mn.components() != want_min || mx.components() != want_max) {
        out.push(diverge(
            case,
            "mf-core",
            format!("min/max picked {:?}/{:?}", mn.components(), mx.components()),
        ));
    }
    out
}

// ----------------------------------------------------------------------
// Conversions
// ----------------------------------------------------------------------

fn check_to_f64<const N: usize>(case: &Case) -> Vec<Divergence> {
    let a = &case.operands[0];
    if !valid_expansion(a) {
        return Vec::new();
    }
    let xa = mf::<N>(a);
    let got = xa.to_f64();
    let mut out = Vec::new();
    if !a[0].is_finite() {
        if got.is_finite() {
            out.push(diverge(
                case,
                "mf-core",
                "non-finite expansion, finite f64".into(),
            ));
        }
        return out;
    }
    let exact = slice_to_mp(a);
    if exact.is_zero() {
        if got != 0.0 {
            out.push(diverge(
                case,
                "mf-core",
                format!("zero expansion -> {got:e}"),
            ));
        }
        return out;
    }
    // to_f64 is documented *faithful* (within 1 ulp), not correctly
    // rounded: a tail below the head's rounding point can miss a tie-break.
    let cr = exact.to_f64(); // correctly rounded (post-fix, incl. subnormals)
    if got == cr {
        return out;
    }
    let diff = exact.sub(&MpFloat::from_f64(got, 53), ORACLE_PREC).abs();
    let tol = MpFloat::from_f64(ulp(cr), 53);
    if diff.cmp(&tol) == Ordering::Greater {
        out.push(diverge(
            case,
            "mf-core",
            format!("to_f64 {got:e} more than 1 ulp from exact (CR {cr:e})"),
        ));
    }
    out
}

fn check_mp_roundtrip<const N: usize>(case: &Case) -> Vec<Divergence> {
    let a = &case.operands[0];
    if !valid_expansion(a) || !a[0].is_finite() {
        return Vec::new();
    }
    let xa = mf::<N>(a);
    let back = MultiFloat::<f64, N>::from_mp(&xa.to_mp(ORACLE_PREC));
    let mut out = Vec::new();
    // The value is exactly representable (it IS an N-term sum), so the
    // correctly rounded conversion back must be exact.
    if !back.is_finite() || !back.sub(xa).is_zero() {
        out.push(diverge(
            case,
            "mf-core",
            format!("to_mp/from_mp changed the value: {:?}", back.components()),
        ));
    }
    out
}

fn check_io_roundtrip<const N: usize>(case: &Case) -> Vec<Divergence> {
    let a = &case.operands[0];
    if !valid_expansion(a) {
        return Vec::new();
    }
    let xa = mf::<N>(a);
    let mut out = Vec::new();
    if !a[0].is_finite() {
        let s = xa.to_decimal_string(20);
        match s.parse::<MultiFloat<f64, N>>() {
            Err(e) => out.push(diverge(
                case,
                "mf-core",
                format!("parse of {s:?} failed: {e}"),
            )),
            Ok(back) => {
                let class_ok = if xa.is_nan() {
                    back.is_nan()
                } else {
                    back.hi() == xa.hi()
                };
                if !class_ok {
                    out.push(diverge(
                        case,
                        "mf-core",
                        format!("{s:?} parsed back differently"),
                    ));
                }
            }
        }
        return out;
    }
    if xa.is_zero() {
        let back = match xa.to_decimal_string(10).parse::<MultiFloat<f64, N>>() {
            Ok(b) => b,
            Err(e) => {
                out.push(diverge(
                    case,
                    "mf-core",
                    format!("zero failed to parse back: {e}"),
                ));
                return out;
            }
        };
        if !back.is_zero() {
            out.push(diverge(
                case,
                "mf-core",
                "printed zero parsed back nonzero".into(),
            ));
        }
        return out;
    }
    // Exact roundtrip needs the printed decimal to be *exact*: the
    // expansion grid is denser than any contiguous format (sparse tails),
    // so "enough digits to identify the value" is not enough — a decimal
    // within half an ulp of x still parses to a *different* expansion.
    // Every binary float has a finite decimal expansion; print all of it
    // when (a) it is not absurdly long and (b) the parse working precision
    // io_prec = 54N + 64 can hold the full component span.
    let nonzero: Vec<f64> = a.iter().copied().filter(|&v| v != 0.0).collect();
    let e_hi = nonzero[0].abs().log2().floor() as i64;
    let lsb = nonzero.iter().map(|&v| lsb_exp(v)).min().unwrap();
    let span = e_hi - lsb + 1;
    let io_prec = 54 * N as i64 + 64;
    // Significant digits of the exact decimal: digits(K * 5^-lsb) for a
    // fractional tail, digits(K * 2^lsb) for a pure integer.
    let exact_digits =
        span * 302 / 1000 + if lsb < 0 { (-lsb) * 699 } else { lsb * 302 } / 1000 + 4;
    if span <= io_prec - 4 && exact_digits <= 900 {
        let s = xa.to_decimal_string(exact_digits as usize);
        match s.parse::<MultiFloat<f64, N>>() {
            Err(e) => out.push(diverge(
                case,
                "mf-core",
                format!("parse of printed value failed: {e}"),
            )),
            Ok(back) => {
                // Compare *values*, not spellings: a boundary-tie input
                // like [m, -ulp/2] legitimately parses back as the
                // canonical [m - ulp, +ulp/2].
                let same = back
                    .to_mp(ORACLE_PREC)
                    .sub(&slice_to_mp(a), ORACLE_PREC)
                    .is_zero();
                if !same {
                    out.push(diverge(
                        case,
                        "mf-core",
                        format!(
                            "exact print ({exact_digits} digits)/parse changed {:?} -> {:?}",
                            xa.components(),
                            back.components()
                        ),
                    ));
                }
            }
        }
        return out;
    }
    // Otherwise only faithfulness at the printed precision is on offer.
    let digits = 40;
    let s = xa.to_decimal_string(digits);
    match s.parse::<MultiFloat<f64, N>>() {
        Err(e) => out.push(diverge(
            case,
            "mf-core",
            format!("parse of printed value failed: {e}"),
        )),
        Ok(back) => {
            let exact = slice_to_mp(a);
            let diff = back.to_mp(ORACLE_PREC).sub(&exact, ORACLE_PREC).abs();
            let ok = diff.is_zero()
                || diff.exp2().unwrap_or(i64::MIN) <= ABS_FLOOR_EXP
                || back.to_mp(ORACLE_PREC).rel_error_vs(&exact) <= 1e-36;
            if !ok {
                out.push(diverge(
                    case,
                    "mf-core",
                    format!("print({digits} digits)/parse strayed beyond 1e-36: {s}"),
                ));
            }
        }
    }
    out
}

/// Exponent of the lowest set bit of a finite nonzero f64.
fn lsb_exp(v: f64) -> i64 {
    let bits = v.to_bits();
    let biased = ((bits >> 52) & 0x7ff) as i64;
    let mant = bits & 0x000f_ffff_ffff_ffff;
    let (m, ulp_exp) = if biased == 0 {
        (mant, -1074)
    } else {
        (mant | (1 << 52), biased - 1075)
    };
    ulp_exp + m.trailing_zeros() as i64
}

fn check_parse<const N: usize>(case: &Case) -> Vec<Divergence> {
    let Some(text) = case.text.as_deref() else {
        return vec![diverge(case, "harness", "parse case without text".into())];
    };
    let mut out = Vec::new();
    let parsed = match text.parse::<MultiFloat<f64, N>>() {
        Ok(x) => x,
        Err(e) => {
            out.push(diverge(
                case,
                "mf-core",
                format!("parse({text:?}) failed: {e}"),
            ));
            return out;
        }
    };
    let t = text.trim();
    let (neg, rest) = match t.as_bytes().first() {
        Some(b'-') => (true, &t[1..]),
        Some(b'+') => (false, &t[1..]),
        _ => (false, t),
    };
    if rest.eq_ignore_ascii_case("inf") || rest.eq_ignore_ascii_case("infinity") {
        let want = if neg {
            f64::NEG_INFINITY
        } else {
            f64::INFINITY
        };
        if parsed.hi() != want {
            out.push(diverge(
                case,
                "mf-core",
                format!("parse({text:?}) -> {:?}", parsed.components()),
            ));
        }
        return out;
    }
    if rest.eq_ignore_ascii_case("nan") {
        if !parsed.is_nan() {
            out.push(diverge(case, "mf-core", format!("parse({text:?}) not NaN")));
        }
        return out;
    }
    let Ok(mp) = MpFloat::from_decimal_str(t, 2400) else {
        out.push(diverge(
            case,
            "mf-core",
            format!("parse accepted {text:?}, oracle rejects"),
        ));
        return out;
    };
    if mp.exp2().unwrap_or(i64::MIN) > 1024 {
        // Out of range: must overflow to the correctly signed infinity,
        // never to a saturated [MAX, MAX, ..] expansion.
        let want = if mp.is_negative() {
            f64::NEG_INFINITY
        } else {
            f64::INFINITY
        };
        if parsed.hi() != want || parsed.components()[1..].iter().any(|&c| c != 0.0) {
            out.push(diverge(
                case,
                "mf-core",
                format!(
                    "overflow parse -> {:?}, want pure {want}",
                    parsed.components()
                ),
            ));
        }
        return out;
    }
    if mp.is_zero() {
        if !parsed.is_zero() {
            out.push(diverge(case, "mf-core", format!("parse({text:?}) nonzero")));
        }
        return out;
    }
    if !parsed.is_finite() {
        out.push(diverge(
            case,
            "mf-core",
            format!("in-range parse -> {:?}", parsed.components()),
        ));
        return out;
    }
    let (ok, rel) = within(&parsed.to_mp(ORACLE_PREC), &mp, -(53 * N as i32 - 2));
    if !ok {
        out.push(diverge(
            case,
            "mf-core",
            format!("parse off by 2^{:.1}", rel.log2()),
        ));
    }
    out
}

// ----------------------------------------------------------------------
// BLAS kernels
// ----------------------------------------------------------------------

fn parse_vec<const N: usize>(flat: &[f64]) -> Option<Vec<MultiFloat<f64, N>>> {
    if flat.is_empty() || !flat.len().is_multiple_of(N) {
        return None;
    }
    let mut out = Vec::with_capacity(flat.len() / N);
    for chunk in flat.chunks(N) {
        if !valid_expansion(chunk) || !chunk[0].is_finite() {
            return None;
        }
        out.push(mf::<N>(chunk));
    }
    Some(out)
}

/// Like [`parse_vec`] but with no validity requirement on the components:
/// used for the `beta == 0` overwrite checks, where the prior contents of
/// `C`/`y` are deliberately NaN-poisoned and must not affect the result.
fn parse_vec_raw<const N: usize>(flat: &[f64]) -> Option<Vec<MultiFloat<f64, N>>> {
    if flat.is_empty() || !flat.len().is_multiple_of(N) {
        return None;
    }
    Some(flat.chunks(N).map(mf::<N>).collect())
}

/// Error scale for a fused multiply-accumulate chain of `terms` products:
/// each partial contributes at most its own rounding on top of the
/// magnitude sum.
fn chain_bound_exp(n: usize, terms: usize) -> i32 {
    rel_bound_exp("mul", n) + (usize::BITS - (terms + 4).leading_zeros()) as i32 + 2
}

fn check_vec_kernel<const N: usize>(case: &Case) -> Vec<Divergence> {
    let mut out = Vec::new();
    match case.op.as_str() {
        "dot" => {
            let (Some(x), Some(y)) = (
                parse_vec::<N>(&case.operands[0]),
                parse_vec::<N>(&case.operands[1]),
            ) else {
                return out;
            };
            if x.len() != y.len() {
                return out;
            }
            let got = kernels::dot(&x, &y);
            let par = parallel::dot(&x, &y, 3);
            let mut exact = MpFloat::zero(ORACLE_PREC);
            let mut mag = MpFloat::zero(ORACLE_PREC);
            for i in 0..x.len() {
                let t = x[i]
                    .to_mp(ORACLE_PREC)
                    .mul(&y[i].to_mp(ORACLE_PREC), ORACLE_PREC);
                mag = mag.add(&t.abs(), ORACLE_PREC);
                exact = exact.add(&t, ORACLE_PREC);
            }
            let bexp = chain_bound_exp(N, x.len());
            for (name, r) in [("blas-serial", got), ("blas-parallel", par)] {
                if exact.is_zero() && mag.is_zero() {
                    if !r.is_zero() {
                        out.push(diverge(case, name, "dot of zeros not zero".into()));
                    }
                    continue;
                }
                if !r.is_finite() {
                    if mag.exp2().unwrap_or(0) < OVERFLOW_EXP {
                        out.push(diverge(case, name, "spurious non-finite dot".into()));
                    }
                    continue;
                }
                let (ok, rel) = within_backward(&r.to_mp(ORACLE_PREC), &exact, &mag, bexp);
                if !ok {
                    out.push(diverge(
                        case,
                        name,
                        format!("dot err 2^{:.1} vs bound 2^{bexp}", rel.log2()),
                    ));
                }
            }
        }
        _ => {
            // axpy
            let alpha_c = &case.operands[0];
            if !valid_expansion(alpha_c) || !alpha_c[0].is_finite() {
                return out;
            }
            let alpha = mf::<N>(alpha_c);
            let (Some(x), Some(y)) = (
                parse_vec::<N>(&case.operands[1]),
                parse_vec::<N>(&case.operands[2]),
            ) else {
                return out;
            };
            if x.len() != y.len() {
                return out;
            }
            let mut got = y.clone();
            kernels::axpy(alpha, &x, &mut got);
            let mut par = y.clone();
            parallel::axpy(alpha, &x, &mut par, 3);
            let al = alpha.to_mp(ORACLE_PREC);
            let bexp = chain_bound_exp(N, 2);
            for i in 0..x.len() {
                let t = al.mul(&x[i].to_mp(ORACLE_PREC), ORACLE_PREC);
                let mag = t.abs().add(&y[i].to_mp(ORACLE_PREC).abs(), ORACLE_PREC);
                let exact = t.add(&y[i].to_mp(ORACLE_PREC), ORACLE_PREC);
                for (name, r) in [("blas-serial", got[i]), ("blas-parallel", par[i])] {
                    if mag.is_zero() {
                        if !r.is_zero() {
                            out.push(diverge(case, name, format!("axpy[{i}] of zeros not zero")));
                        }
                        continue;
                    }
                    if !r.is_finite() {
                        if mag.exp2().unwrap_or(0) < OVERFLOW_EXP {
                            out.push(diverge(
                                case,
                                name,
                                format!("axpy[{i}] spuriously non-finite"),
                            ));
                        }
                        continue;
                    }
                    let (ok, rel) = within_backward(&r.to_mp(ORACLE_PREC), &exact, &mag, bexp);
                    if !ok {
                        out.push(diverge(
                            case,
                            name,
                            format!("axpy[{i}] err 2^{:.1} vs bound 2^{bexp}", rel.log2()),
                        ));
                    }
                }
            }
        }
    }
    out
}

fn check_matrix_kernel<const N: usize>(case: &Case) -> Vec<Divergence> {
    let mut out = Vec::new();
    let dims = &case.operands[0];
    let gemm = case.op == "gemm";
    let (m, k, p) = (
        dims[0] as usize,
        dims[1] as usize,
        if gemm { dims[2] as usize } else { 1 },
    );
    if m == 0 || k == 0 || p == 0 {
        return out;
    }
    let alpha_c = &case.operands[1];
    let beta_c = &case.operands[2];
    if !valid_expansion(alpha_c)
        || !valid_expansion(beta_c)
        || !alpha_c[0].is_finite()
        || !beta_c[0].is_finite()
    {
        return out;
    }
    let alpha = mf::<N>(alpha_c);
    let beta = mf::<N>(beta_c);
    let Some(a) = parse_vec::<N>(&case.operands[3]) else {
        return out;
    };
    let Some(b) = parse_vec::<N>(&case.operands[4]) else {
        return out;
    };
    // `beta == 0` is the overwrite path: C's prior contents must be
    // ignored entirely, so the generator poisons them with NaN and the
    // parse is lenient (any component values accepted).
    let c0 = if beta.is_zero() {
        match parse_vec_raw::<N>(&case.operands[5]) {
            Some(v) => v,
            None => return out,
        }
    } else {
        match parse_vec::<N>(&case.operands[5]) {
            Some(v) => v,
            None => return out,
        }
    };
    if a.len() != m * k {
        return out;
    }
    let al = alpha.to_mp(ORACLE_PREC);
    let be = beta.to_mp(ORACLE_PREC);
    let bexp = chain_bound_exp(N, k + 1);
    if gemm {
        if b.len() != k * p || c0.len() != m * p {
            return out;
        }
        let ma = Matrix {
            rows: m,
            cols: k,
            data: a.clone(),
        };
        let mb = Matrix {
            rows: k,
            cols: p,
            data: b.clone(),
        };
        let mut cs = Matrix {
            rows: m,
            cols: p,
            data: c0.clone(),
        };
        let mut cp = Matrix {
            rows: m,
            cols: p,
            data: c0.clone(),
        };
        kernels::gemm(alpha, &ma, &mb, beta, &mut cs);
        parallel::gemm(alpha, &ma, &mb, beta, &mut cp, 3);
        for i in 0..m * p {
            if cs.data[i].components() != cp.data[i].components() {
                out.push(diverge(
                    case,
                    "blas-parallel",
                    format!("gemm[{i}] differs from serial"),
                ));
                return out;
            }
        }
        // Cache-blocked path: bit-identical to serial at any tiling.
        let sa = SoaMatrix::from_fn(m, k, |i, j| a[i * k + j]);
        let sb = SoaMatrix::from_fn(k, p, |i, j| b[i * p + j]);
        let mut sc = SoaMatrix::from_fn(m, p, |i, j| c0[i * p + j]);
        tile::gemm_tiled(alpha, &sa, &sb, beta, &mut sc, 3);
        for i in 0..m {
            for j in 0..p {
                if sc.get(i, j).components() != cs.data[i * p + j].components() {
                    out.push(diverge(
                        case,
                        "blas-tiled",
                        format!("gemm[{i},{j}] differs from serial"),
                    ));
                    return out;
                }
            }
        }
        for i in 0..m {
            for j in 0..p {
                let mut exact = if beta.is_zero() {
                    // Overwrite semantics: prior C (possibly NaN) ignored.
                    MpFloat::zero(ORACLE_PREC)
                } else {
                    be.mul(&c0[i * p + j].to_mp(ORACLE_PREC), ORACLE_PREC)
                };
                let mut mag = exact.abs();
                for t in 0..k {
                    let term = al
                        .mul(&a[i * k + t].to_mp(ORACLE_PREC), ORACLE_PREC)
                        .mul(&b[t * p + j].to_mp(ORACLE_PREC), ORACLE_PREC);
                    mag = mag.add(&term.abs(), ORACLE_PREC);
                    exact = exact.add(&term, ORACLE_PREC);
                }
                let r = cs.data[i * p + j];
                if let Some(d) =
                    entry_divergence::<N>(case, "blas-serial", r, &exact, &mag, bexp, i * p + j)
                {
                    out.push(d);
                    return out;
                }
            }
        }
    } else {
        let x = match parse_vec::<N>(&case.operands[4]) {
            Some(v) if v.len() == k => v,
            _ => return out,
        };
        // operands[5] was already parsed above (leniently when beta == 0).
        let y0 = c0;
        if y0.len() != m {
            return out;
        }
        let ma = Matrix {
            rows: m,
            cols: k,
            data: a.clone(),
        };
        let mut ys = y0.clone();
        let mut yp = y0.clone();
        kernels::gemv(alpha, &ma, &x, beta, &mut ys);
        parallel::gemv(alpha, &ma, &x, beta, &mut yp, 3);
        for i in 0..m {
            if ys[i].components() != yp[i].components() {
                out.push(diverge(
                    case,
                    "blas-parallel",
                    format!("gemv[{i}] differs from serial"),
                ));
                return out;
            }
            let mut exact = if beta.is_zero() {
                // Overwrite semantics: prior y (possibly NaN) ignored.
                MpFloat::zero(ORACLE_PREC)
            } else {
                be.mul(&y0[i].to_mp(ORACLE_PREC), ORACLE_PREC)
            };
            let mut mag = exact.abs();
            for t in 0..k {
                let term = al
                    .mul(&a[i * k + t].to_mp(ORACLE_PREC), ORACLE_PREC)
                    .mul(&x[t].to_mp(ORACLE_PREC), ORACLE_PREC);
                mag = mag.add(&term.abs(), ORACLE_PREC);
                exact = exact.add(&term, ORACLE_PREC);
            }
            if let Some(d) =
                entry_divergence::<N>(case, "blas-serial", ys[i], &exact, &mag, bexp, i)
            {
                out.push(d);
                return out;
            }
        }
    }
    out
}

fn entry_divergence<const N: usize>(
    case: &Case,
    name: &str,
    r: MultiFloat<f64, N>,
    exact: &MpFloat,
    mag: &MpFloat,
    bexp: i32,
    idx: usize,
) -> Option<Divergence> {
    if mag.is_zero() {
        return (!r.is_zero())
            .then(|| diverge(case, name, format!("entry {idx}: zeros in, nonzero out")));
    }
    if !r.is_finite() {
        return (mag.exp2().unwrap_or(0) < OVERFLOW_EXP)
            .then(|| diverge(case, name, format!("entry {idx}: spuriously non-finite")));
    }
    let (ok, rel) = within_backward(&r.to_mp(ORACLE_PREC), exact, mag, bexp);
    (!ok).then(|| {
        diverge(
            case,
            name,
            format!("entry {idx}: err 2^{:.1} vs bound 2^{bexp}", rel.log2()),
        )
    })
}

// ----------------------------------------------------------------------
// SoftFloat substrate
// ----------------------------------------------------------------------

fn check_soft<const P: u32>(case: &Case) -> Vec<Divergence> {
    let op = case.op.rsplit('_').next().unwrap();
    let a = case.operands[0][0];
    let b = if case.operands.len() > 1 {
        case.operands[1][0]
    } else {
        0.0
    };
    let mut out = Vec::new();
    if !a.is_finite() || !b.is_finite() {
        return out;
    }
    let sa = SoftFloat::<P>::from_f64(a);
    let sb = SoftFloat::<P>::from_f64(b);
    let got = match op {
        "add" => sa + sb,
        "sub" => sa - sb,
        "mul" => sa * sb,
        "div" => sa / sb,
        _ => sa.sqrt(),
    };
    if P == 53 {
        // Same precision as hardware: results must be bit-identical as
        // long as neither operand nor the result leaves the normal range
        // (SoftFloat has no subnormals and a wider exponent range).
        let hw = match op {
            "add" => a + b,
            "sub" => a - b,
            "mul" => a * b,
            "div" => a / b,
            _ => a.sqrt(),
        };
        let subn = |v: f64| v != 0.0 && v.abs() < f64::MIN_POSITIVE;
        if !hw.is_finite() || subn(hw) || subn(a) || subn(b) || (op == "div" && b == 0.0) {
            return out;
        }
        if hw.is_nan() {
            if !got.is_nan() {
                out.push(diverge(
                    case,
                    "softfloat-p53",
                    format!("{op}: want NaN, got {got}"),
                ));
            }
            return out;
        }
        if got.to_f64().to_bits() != hw.to_bits() {
            out.push(diverge(
                case,
                "softfloat-p53",
                format!("{op}({a:e}, {b:e}) = {:e}, hardware {hw:e}", got.to_f64()),
            ));
        }
    } else {
        // p = 11 vs the oracle rounded to 11 bits. Operands are
        // pre-rounded so both sides see identical inputs.
        debug_assert_eq!(a, round_to_bits(a, P));
        if op == "div" && b == 0.0 {
            return out;
        }
        if op == "sqrt" && a < 0.0 {
            if !got.is_nan() {
                out.push(diverge(case, "softfloat-p11", "sqrt(neg) not NaN".into()));
            }
            return out;
        }
        let ma = MpFloat::from_f64(a, P);
        let mb = MpFloat::from_f64(b, P);
        let want = match op {
            "add" => ma.add(&mb, P),
            "sub" => ma.sub(&mb, P),
            "mul" => ma.mul(&mb, P),
            "div" => {
                if mb.is_zero() {
                    return out;
                }
                ma.div(&mb, P)
            }
            _ => ma.sqrt(P),
        };
        if got.to_f64() != want.to_f64() {
            out.push(diverge(
                case,
                "softfloat-p11",
                format!(
                    "{op}({a:e}, {b:e}) = {:e}, oracle {:e}",
                    got.to_f64(),
                    want.to_f64()
                ),
            ));
        }
    }
    out
}
