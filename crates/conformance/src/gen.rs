//! Adversarial input generation.
//!
//! Uniform random mantissas exercise almost none of the interesting paths:
//! renormalization branches fire on cancellation, EFT error terms flush on
//! subnormals, and the special-value collapse only shows up when a ±inf or
//! NaN actually enters a kernel. Each case therefore draws its operands
//! from a rotating set of regimes.

use crate::{Case, OpClass};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Input regimes. The generator cycles through these so every op sees
/// every regime regardless of case count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// Normal-range values, random exponent in ±300.
    Random,
    /// Head drawn from the special-value grid (±0, ±1, ±inf, NaN, ±MAX,
    /// min-normal, min-subnormal, 2^±1000).
    SpecialGrid,
    /// Subnormal heads, or normal heads whose tails flush to subnormals.
    Subnormal,
    /// Head exponent in [1010, 1023]: sums and products overflow.
    NearOverflow,
    /// Second operand is `x · (1 ± k·ulp)`: massive cancellation.
    Cancel,
    /// Head-tail boundary tie: the same value spelled both as
    /// `[m, +ulp(m)/2]` and `[m + ulp(m), -ulp(m)/2]`.
    BoundaryTie,
    /// Trailing components forced to zero (short expansions).
    ShortZero,
    /// The two documented collapse regimes the guard layer recovers from:
    /// heads below the reciprocal-seed threshold `2^-1020` (tiny divisor /
    /// deep-subnormal sqrt operand) and heads at the top binade `2^1023`
    /// (residual-reconstruction overflow). Pairs bias one operand into a
    /// collapse range and leave the other ordinary so the exact result
    /// usually stays representable — the case where recovery must succeed.
    GuardRegime,
}

pub const REGIMES: [Regime; 8] = [
    Regime::Random,
    Regime::SpecialGrid,
    Regime::Subnormal,
    Regime::NearOverflow,
    Regime::Cancel,
    Regime::BoundaryTie,
    Regime::ShortZero,
    Regime::GuardRegime,
];

const SPECIAL_HEADS: [f64; 14] = [
    0.0,
    -0.0,
    1.0,
    -1.0,
    f64::INFINITY,
    f64::NEG_INFINITY,
    f64::NAN,
    f64::MAX,
    -f64::MAX,
    f64::MIN_POSITIVE, // smallest normal
    5e-324,            // smallest subnormal
    -5e-324,
    1e300,
    8.881784197001252e-16, // 2^-50
];

/// Deterministic case generator.
pub struct CaseGen {
    rng: SmallRng,
    counter: u64,
}

impl CaseGen {
    pub fn new(seed: u64) -> Self {
        CaseGen {
            rng: SmallRng::seed_from_u64(seed),
            counter: 0,
        }
    }

    /// A finite nonzero head with exponent uniform in `[lo_exp, hi_exp]`.
    fn head(&mut self, lo_exp: i32, hi_exp: i32) -> f64 {
        let e = self.rng.gen_range(lo_exp..=hi_exp);
        let m = 1.0 + self.rng.gen::<f64>(); // [1, 2)
        let s = if self.rng.gen_bool(0.5) { 1.0 } else { -1.0 };
        s * m * pow2(e)
    }

    /// Extend `head` into a valid nonoverlapping n-term expansion:
    /// each tail is at most half an ulp of its predecessor.
    fn extend(&mut self, head: f64, n: usize, dense: bool) -> Vec<f64> {
        let mut c = vec![0.0; n];
        c[0] = head;
        if !head.is_finite() || head == 0.0 {
            return c;
        }
        for i in 1..n {
            let prev = c[i - 1];
            if prev == 0.0 {
                break;
            }
            let gap = if dense { 0 } else { self.rng.gen_range(0..40) };
            let t = 0.5 * ulp(prev) * pow2(-gap) * (self.rng.gen::<f64>() - 0.5) * 2.0;
            c[i] = t;
            if c[i] == 0.0 {
                break;
            }
        }
        c
    }

    /// One expansion operand in the given regime.
    pub fn expansion(&mut self, n: usize, regime: Regime) -> Vec<f64> {
        match regime {
            Regime::Random => {
                let h = self.head(-300, 300);
                let dense = self.rng.gen_bool(0.5);
                self.extend(h, n, dense)
            }
            Regime::SpecialGrid => {
                let h = SPECIAL_HEADS[self.rng.gen_range(0..SPECIAL_HEADS.len())];
                self.extend(h, n, true)
            }
            Regime::Subnormal => {
                if self.rng.gen_bool(0.5) {
                    // Subnormal head: expansion is a single subnormal.
                    let bits = self.rng.gen_range(1u64..(1u64 << 52));
                    let s = if self.rng.gen_bool(0.5) {
                        0u64
                    } else {
                        1u64 << 63
                    };
                    let mut c = vec![0.0; n];
                    c[0] = f64::from_bits(bits | s);
                    c
                } else {
                    // Normal head whose tails land in the subnormal range.
                    let h = self.head(-1000, -970);
                    self.extend(h, n, true)
                }
            }
            Regime::NearOverflow => {
                let h = self.head(1010, 1023);
                self.extend(h, n, true)
            }
            Regime::Cancel | Regime::BoundaryTie => {
                // Handled at the pair level; fall back to random here.
                let h = self.head(-50, 50);
                self.extend(h, n, true)
            }
            Regime::ShortZero => {
                let h = self.head(-100, 100);
                let mut c = self.extend(h, n, true);
                let keep = self.rng.gen_range(1..=n);
                for slot in c.iter_mut().skip(keep) {
                    *slot = 0.0;
                }
                c
            }
            Regime::GuardRegime => {
                let h = self.guard_head();
                self.extend(h, n, true)
            }
        }
    }

    /// A head in one of the collapse ranges: below the `2^-1020`
    /// reciprocal-seed threshold (spanning normal and subnormal), at the
    /// top binade, or just inside/outside the thresholds to probe the
    /// detector boundaries.
    fn guard_head(&mut self) -> f64 {
        match self.rng.gen_range(0..4) {
            0 => self.head(-1074, -1021), // regime 1, subnormal included
            1 => self.head(1023, 1023),   // regime 2: top binade
            2 => self.head(-1022, -1015), // straddles the tiny threshold
            _ => self.head(1019, 1023),   // approach to the top binade
        }
    }

    /// A pair of operands; some regimes correlate the two.
    pub fn pair(&mut self, n: usize, regime: Regime) -> (Vec<f64>, Vec<f64>) {
        match regime {
            Regime::Cancel => {
                // b = a * (1 ± k·eps): a - b cancels almost completely and
                // a / b is 1 ± k·eps, the worst case for Newton seeding.
                let a = self.expansion(n, Regime::Random);
                let k = self.rng.gen_range(1..100) as f64;
                let scale =
                    1.0 + k * f64::EPSILON * if self.rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                let b: Vec<f64> = a.iter().map(|&c| c * scale).collect();
                (a, b)
            }
            Regime::BoundaryTie => {
                // Two spellings of m + ulp(m)/2; arithmetic and comparisons
                // must treat them identically.
                let m = self.head(-100, 100);
                let half_ulp = 0.5 * ulp(m);
                let mut a = vec![0.0; n];
                let mut b = vec![0.0; n];
                a[0] = m;
                a[1] = half_ulp;
                b[0] = m + ulp(m); // next float up, exact
                b[1] = -half_ulp;
                if self.rng.gen_bool(0.5) {
                    (a, b)
                } else {
                    (b, a)
                }
            }
            Regime::GuardRegime => {
                // Bias one side (or both) into a collapse range; a modest
                // partner keeps the exact result representable for most
                // draws, so recovery has something to recover *to*.
                let biased = self.expansion(n, Regime::GuardRegime);
                let partner = {
                    let h = self.head(-50, 50);
                    self.extend(h, n, true)
                };
                match self.rng.gen_range(0..3) {
                    0 => (partner, biased),
                    1 => (biased, partner),
                    _ => {
                        let second = self.expansion(n, Regime::GuardRegime);
                        (biased, second)
                    }
                }
            }
            _ => (self.expansion(n, regime), self.expansion(n, regime)),
        }
    }

    fn next_regime(&mut self) -> Regime {
        REGIMES[(self.counter as usize) % REGIMES.len()]
    }

    /// Generate the next case of the given class.
    pub fn next_case(&mut self, class: OpClass) -> Case {
        self.counter += 1;
        let regime = self.next_regime();
        let n = 2 + (self.counter as usize / REGIMES.len()) % 3;
        match class {
            OpClass::Arith => {
                const OPS: [&str; 6] = ["add", "sub", "mul", "div", "sqrt", "ln"];
                let op = OPS[self.rng.gen_range(0..OPS.len())];
                match op {
                    "sqrt" | "ln" => {
                        let a = self.expansion(n, regime);
                        Case::new(op, n, vec![a])
                    }
                    _ => {
                        let (a, b) = self.pair(n, regime);
                        Case::new(op, n, vec![a, b])
                    }
                }
            }
            OpClass::Cmp => {
                let (a, b) = self.pair(n, regime);
                Case::new("cmp", n, vec![a, b])
            }
            OpClass::Convert => {
                let op = if self.rng.gen_bool(0.5) {
                    "to_f64"
                } else {
                    "mp_roundtrip"
                };
                let a = self.expansion(n, regime);
                Case::new(op, n, vec![a])
            }
            OpClass::Io => {
                let a = self.expansion(n, regime);
                Case::new("io_roundtrip", n, vec![a])
            }
            OpClass::Blas => {
                let op = match self.counter % 16 {
                    0 => "gemv",
                    8 => "gemm",
                    c if c % 2 == 0 => "dot",
                    _ => "axpy",
                };
                // BLAS checks assume finite data; reuse the finite regimes.
                let r = match regime {
                    Regime::SpecialGrid | Regime::NearOverflow | Regime::GuardRegime => {
                        Regime::Random
                    }
                    other => other,
                };
                // Every third matrix case pins `beta == 0` and poisons the
                // output operand with NaN: the overwrite path must ignore
                // the prior contents entirely (checked against an oracle
                // accumulation that starts from zero).
                let poison = self.counter % 48 < 16;
                match op {
                    "gemv" => {
                        let (m, k) = (self.rng.gen_range(1..=5), self.rng.gen_range(1..=5));
                        let a = self.flat_vec(m * k, n, r);
                        let x = self.flat_vec(k, n, r);
                        let alpha = self.expansion(n, Regime::Random);
                        let (beta, y) = if poison {
                            (vec![0.0; n], nan_poisoned(m, n))
                        } else {
                            (self.expansion(n, Regime::Random), self.flat_vec(m, n, r))
                        };
                        let dims = vec![m as f64, k as f64];
                        Case::new("gemv", n, vec![dims, alpha, beta, a, x, y])
                    }
                    "gemm" => {
                        let (m, k, c) = (
                            self.rng.gen_range(1..=4),
                            self.rng.gen_range(1..=4),
                            self.rng.gen_range(1..=4),
                        );
                        let a = self.flat_vec(m * k, n, r);
                        let b = self.flat_vec(k * c, n, r);
                        let alpha = self.expansion(n, Regime::Random);
                        let (beta, cm) = if poison {
                            (vec![0.0; n], nan_poisoned(m * c, n))
                        } else {
                            (
                                self.expansion(n, Regime::Random),
                                self.flat_vec(m * c, n, r),
                            )
                        };
                        let dims = vec![m as f64, k as f64, c as f64];
                        Case::new("gemm", n, vec![dims, alpha, beta, a, b, cm])
                    }
                    "dot" => {
                        let len = self.rng.gen_range(1..=8);
                        let x = self.flat_vec(len, n, r);
                        let y = self.flat_vec(len, n, r);
                        Case::new("dot", n, vec![x, y])
                    }
                    _ => {
                        let len = self.rng.gen_range(1..=8);
                        let alpha = self.expansion(n, Regime::Random);
                        let x = self.flat_vec(len, n, r);
                        let y = self.flat_vec(len, n, r);
                        Case::new("axpy", n, vec![alpha, x, y])
                    }
                }
            }
            OpClass::Soft => {
                const OPS: [&str; 5] = ["add", "sub", "mul", "div", "sqrt"];
                let op = OPS[self.rng.gen_range(0..OPS.len())];
                let p11 = self.rng.gen_bool(0.33);
                let (name, a, b) = if p11 {
                    // Small-precision leg: operands pre-rounded to 11 bits,
                    // modest exponents so p=11 arithmetic stays in range.
                    let a = round_to_bits(self.head(-30, 30), 11);
                    let b = round_to_bits(self.head(-30, 30), 11);
                    (format!("soft11_{op}"), a, b)
                } else {
                    let a = self.head(-900, 900);
                    let b = self.head(-900, 900);
                    (format!("soft_{op}"), a, b)
                };
                if op == "sqrt" {
                    Case::new(&name, 1, vec![vec![a.abs()]])
                } else {
                    Case::new(&name, 1, vec![vec![a], vec![b]])
                }
            }
        }
    }

    fn flat_vec(&mut self, len: usize, n: usize, regime: Regime) -> Vec<f64> {
        let mut out = Vec::with_capacity(len * n);
        for _ in 0..len {
            out.extend(self.expansion(n, regime));
        }
        out
    }
}

/// A flat `len`-element vector of N-component expansions with every
/// component NaN, for the `beta == 0` overwrite checks.
fn nan_poisoned(len: usize, n: usize) -> Vec<f64> {
    vec![f64::NAN; len * n]
}

/// 2^e as f64 (handles the subnormal range; saturates outside it).
pub fn pow2(e: i32) -> f64 {
    if (-1022..=1023).contains(&e) {
        f64::from_bits(((e + 1023) as u64) << 52)
    } else if e < -1074 {
        0.0
    } else if e < -1022 {
        f64::from_bits(1u64 << (e + 1074))
    } else {
        f64::INFINITY
    }
}

/// Unit in the last place of `x` (via the raw exponent field, so exact
/// powers of two and subnormals are handled correctly).
pub fn ulp(x: f64) -> f64 {
    if !x.is_finite() || x == 0.0 {
        return f64::from_bits(1); // 2^-1074
    }
    let e = ((x.to_bits() >> 52) & 0x7ff) as i32;
    if e == 0 {
        return f64::from_bits(1); // subnormal: ulp is the minimum
    }
    pow2(e - 1023 - 52)
}

/// Round to `bits` bits of precision (round-to-nearest-even via f64 bit
/// truncation — exact because `bits < 53`).
pub fn round_to_bits(x: f64, bits: u32) -> f64 {
    if !x.is_finite() || x == 0.0 {
        return x;
    }
    let drop = 53 - bits;
    let b = x.to_bits();
    let half = 1u64 << (drop - 1);
    let mask = (1u64 << drop) - 1;
    let frac = b & mask;
    let mut t = b & !mask;
    if frac > half || (frac == half && (t >> drop) & 1 == 1) {
        t += 1u64 << drop;
    }
    f64::from_bits(t)
}

/// Validity check for generated/reduced expansions: strictly decreasing by
/// at least a factor 2^-p (half-ulp nonoverlap, ties allowed), zeros only
/// at the end, non-finite heads only with zero tails.
pub fn valid_expansion(c: &[f64]) -> bool {
    if c.is_empty() {
        return false;
    }
    if !c[0].is_finite() {
        return c[1..].iter().all(|&t| t == 0.0);
    }
    for i in 1..c.len() {
        if c[i] == 0.0 {
            return c[i..].iter().all(|&t| t == 0.0);
        }
        if !c[i].is_finite() || c[i].abs() > 0.5 * ulp(c[i - 1]) {
            return false;
        }
    }
    true
}
