//! Replay the committed regression corpus: every entry is a minimized
//! reproducer of a bug the differential harness once caught (or a witness
//! pinning a documented-contract decision). A clean replay means every
//! recorded bug is still fixed.

use mf_conformance::corpus;

#[test]
fn committed_corpus_replays_clean() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/conformance/corpus.json"
    );
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    let entries = corpus::parse(&text).unwrap_or_else(|e| panic!("parse corpus: {e}"));
    assert!(!entries.is_empty(), "corpus is empty");
    let regressed = corpus::replay(&entries);
    assert!(
        regressed.is_empty(),
        "{} corpus entr{} regressed:\n{}",
        regressed.len(),
        if regressed.len() == 1 { "y" } else { "ies" },
        regressed
            .iter()
            .map(|d| format!(
                "  [{}] {} n={} operands={:?} text={:?}\n    originally: {}",
                d.impl_name,
                d.case.op,
                d.case.n,
                d.case
                    .operands
                    .iter()
                    .map(|o| o
                        .iter()
                        .map(|v| format!("{:#018x}", v.to_bits()))
                        .collect::<Vec<_>>())
                    .collect::<Vec<_>>(),
                d.case.text,
                d.detail
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn corpus_serialization_roundtrips() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/conformance/corpus.json"
    );
    let text = std::fs::read_to_string(path).expect("read corpus");
    let entries = corpus::parse(&text).expect("parse corpus");
    let reparsed = corpus::parse(&corpus::render(&entries)).expect("reparse rendered corpus");
    assert_eq!(entries.len(), reparsed.len());
    for (a, b) in entries.iter().zip(&reparsed) {
        assert_eq!(a.case.op, b.case.op);
        assert_eq!(a.case.n, b.case.n);
        assert_eq!(a.case.text, b.case.text);
        assert_eq!(a.impl_name, b.impl_name);
        let bits = |ops: &[Vec<f64>]| {
            ops.iter()
                .map(|o| o.iter().map(|v| v.to_bits()).collect::<Vec<_>>())
                .collect::<Vec<_>>()
        };
        assert_eq!(bits(&a.case.operands), bits(&b.case.operands));
    }
}
