//! Guarded-evaluation lockstep tests: the corpus entries that document the
//! two collapse regimes (and every other arithmetic entry) must produce
//! oracle-grade results when replayed through `checked_*` under a recovery
//! policy. This is the executable form of the guard layer's contract: what
//! the fast path is excused for, the recovery paths must fix.

use mf_conformance::check::{guard_impl_name, run_case_guarded};
use mf_conformance::{corpus, run_guarded, Case};
use mf_core::GuardPolicy;

const ARITH_OPS: [&str; 5] = ["add", "sub", "mul", "div", "sqrt"];
const RECOVERY: [GuardPolicy; 2] = [GuardPolicy::RescaleRetry, GuardPolicy::OracleFallback];

fn load_corpus() -> Vec<mf_conformance::Divergence> {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/conformance/corpus.json"
    );
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    corpus::parse(&text).unwrap_or_else(|e| panic!("parse corpus: {e}"))
}

/// Every arithmetic corpus entry — including the contract witnesses for
/// the reciprocal-seed and residual-reconstruction collapse regimes —
/// replays clean through the guarded API under both recovery policies.
#[test]
fn corpus_arith_entries_recover_under_guarded_policies() {
    let entries = load_corpus();
    let arith: Vec<_> = entries
        .iter()
        .filter(|e| ARITH_OPS.contains(&e.case.op.as_str()))
        .collect();
    assert!(
        arith.iter().any(|e| e.detail.contains("contract witness")),
        "corpus lost its collapse-regime contract witnesses"
    );
    for e in arith {
        for policy in RECOVERY {
            let divs = run_case_guarded(&e.case, policy);
            assert!(
                divs.is_empty(),
                "[{}] corpus entry {} n={} not recovered: {}",
                guard_impl_name(policy),
                e.case.op,
                e.case.n,
                divs[0].detail
            );
        }
    }
}

/// Negative control: the regime-1 witness *does* diverge when the guarded
/// checker runs it with recovery disabled, proving the lockstep mode can
/// see the collapse it certifies the recovery paths against.
#[test]
fn lockstep_checker_sees_the_collapse_under_fast_only() {
    let a = vec![2.0f64.powi(-100), 0.0];
    let b = vec![f64::from_bits(1 << 34), 0.0]; // 2^-1040
    let case = Case::new("div", 2, vec![a, b]);
    let divs = run_case_guarded(&case, GuardPolicy::FastOnly);
    assert_eq!(
        divs.len(),
        1,
        "FastOnly replay of the tiny-divisor witness should collapse"
    );
    assert!(divs[0].detail.contains("unrecovered collapse"), "{divs:?}");
    for policy in RECOVERY {
        assert!(run_case_guarded(&case, policy).is_empty());
    }
}

/// A generated guarded sweep (biased toward the collapse regimes by the
/// `GuardRegime` generator class) stays clean under both recovery
/// policies.
#[test]
fn generated_guard_regime_sweep_is_clean() {
    for policy in RECOVERY {
        let divs = run_guarded(4_000, 0x6a72_64ed, policy);
        assert!(
            divs.is_empty(),
            "[{}] {} divergence(s), first: {}",
            guard_impl_name(policy),
            divs.len(),
            divs[0].detail
        );
    }
}
