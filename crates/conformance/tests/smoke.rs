//! Seeded smoke run: a small, fixed-seed slice of the full harness per op
//! class. CI runs this on every push; the big 10^5-case sweeps run from
//! the `conformance` binary.

use mf_conformance::{run_class, OpClass};

const SMOKE_SEED: u64 = 0xC0FF_EE00_2025_0807;
const SMOKE_CASES: usize = 400;

fn assert_clean(class: OpClass) {
    let divs = run_class(class, SMOKE_CASES, SMOKE_SEED);
    assert!(
        divs.is_empty(),
        "{} divergence(s) in class {:?}; first: impl={} op={} n={} operands={:?} text={:?} — {}",
        divs.len(),
        class,
        divs[0].impl_name,
        divs[0].case.op,
        divs[0].case.n,
        divs[0]
            .case
            .operands
            .iter()
            .map(|o| o
                .iter()
                .map(|v| format!("{:#018x}", v.to_bits()))
                .collect::<Vec<_>>())
            .collect::<Vec<_>>(),
        divs[0].case.text,
        divs[0].detail,
    );
}

#[test]
fn smoke_arith() {
    assert_clean(OpClass::Arith);
}

#[test]
fn smoke_cmp() {
    assert_clean(OpClass::Cmp);
}

#[test]
fn smoke_convert() {
    assert_clean(OpClass::Convert);
}

#[test]
fn smoke_io() {
    assert_clean(OpClass::Io);
}

#[test]
fn smoke_blas() {
    assert_clean(OpClass::Blas);
}

#[test]
fn smoke_soft() {
    assert_clean(OpClass::Soft);
}
