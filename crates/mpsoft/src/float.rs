//! [`MpFloat`]: an MPFR-style arbitrary-precision binary float.
//!
//! A nonzero value is `sign · M · 2^(exp - prec)` where the mantissa big
//! integer `M` has exactly `prec` significant bits (top bit set), i.e. the
//! value lies in `[2^(exp-1), 2^exp)`. Every operation takes the precision of
//! the *result* in bits and rounds once, to nearest with ties to even —
//! exactly the semantics of MPFR's `mpfr_add(rop, a, b, MPFR_RNDN)`.
//!
//! As the paper notes (§2.2), implementing a float on top of big integers
//! requires data-dependent branching for mantissa alignment, normalization,
//! and rounding after each operation; this file is where all of that
//! branching lives, and it is the mechanistic reason this baseline is slow
//! relative to the branch-free expansion arithmetic in `mf-core`.
//!
//! Special values: there is no NaN/Inf representation. Operations whose IEEE
//! result would be NaN or infinite (division by zero, sqrt of a negative)
//! panic. The workspace uses this type as a baseline and as an *exact
//! oracle*, both of which only ever see finite values.

use crate::limb;
use core::cmp::Ordering;
use std::fmt;

/// Sign of an [`MpFloat`]. Zero is represented as `Pos` with an empty
/// mantissa.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sign {
    Neg,
    Pos,
}

impl Sign {
    fn flip(self) -> Sign {
        match self {
            Sign::Neg => Sign::Pos,
            Sign::Pos => Sign::Neg,
        }
    }
    fn to_f64(self) -> f64 {
        match self {
            Sign::Neg => -1.0,
            Sign::Pos => 1.0,
        }
    }
}

/// Arbitrary-precision binary floating-point number. See the module docs for
/// the representation invariant.
#[derive(Debug, Clone)]
pub struct MpFloat {
    sign: Sign,
    /// Value is in `[2^(exp-1), 2^exp)`; meaningless when zero.
    exp: i64,
    /// Little-endian limbs with exactly `prec` significant bits; empty = 0.
    mant: Vec<u64>,
    /// Precision in bits this value carries.
    prec: u32,
}

impl MpFloat {
    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Zero at the given precision.
    pub fn zero(prec: u32) -> Self {
        MpFloat {
            sign: Sign::Pos,
            exp: 0,
            mant: Vec::new(),
            prec,
        }
    }

    /// Build from an integer mantissa scaled by a power of two:
    /// value = `sign · limbs · 2^lsb_exp`, rounded (RNE) to `prec` bits.
    /// `extra_sticky` marks bits already known lost below `limbs`.
    pub fn from_int_scaled(
        sign: Sign,
        mut limbs: Vec<u64>,
        lsb_exp: i64,
        prec: u32,
        extra_sticky: bool,
    ) -> Self {
        assert!(prec >= 2, "precision must be at least 2 bits");
        limb::trim(&mut limbs);
        if limbs.is_empty() {
            // A pure sticky residue rounds to zero at any precision here;
            // RNE of a value strictly inside (0, 2^lsb) rounds toward the
            // nearer representable, which we cannot know — but this path is
            // only reached when the value itself is exactly zero.
            debug_assert!(!extra_sticky, "sticky residue with zero mantissa");
            return MpFloat::zero(prec);
        }
        let bits = limb::bit_len(&limbs);
        let target = prec as usize;
        if bits <= target {
            let shift = target - bits;
            let mant = limb::shl(&limbs, shift);
            return MpFloat {
                sign,
                exp: lsb_exp + bits as i64,
                mant,
                prec,
            };
        }
        // Round: keep the top `prec` bits; guard is the next bit; sticky is
        // anything strictly below the guard, plus `extra_sticky`.
        let drop = bits - target;
        let guard = limb::get_bit(&limbs, drop - 1);
        let sticky_below = extra_sticky || (drop >= 2 && limb::shr_sticky(&limbs, drop - 1).1);
        let (mut kept, _) = limb::shr_sticky(&limbs, drop);
        let lsb = limb::get_bit(&kept, 0);
        let round_up = guard && (sticky_below || lsb);
        let mut exp = lsb_exp + bits as i64;
        if round_up {
            kept = limb::add_small(&kept, 1);
            if limb::bit_len(&kept) > target {
                // Carry rippled all the way: mantissa became 2^prec.
                let (k2, _) = limb::shr_sticky(&kept, 1);
                kept = k2;
                exp += 1;
            }
        }
        MpFloat {
            sign,
            exp,
            mant: kept,
            prec,
        }
    }

    /// Exact conversion from `f64` if `prec >= 53`; correctly rounded
    /// otherwise. Panics on NaN or infinity.
    pub fn from_f64(x: f64, prec: u32) -> Self {
        assert!(x.is_finite(), "MpFloat::from_f64({x})");
        if x == 0.0 {
            return MpFloat::zero(prec);
        }
        let bits = x.abs().to_bits();
        let raw_exp = (bits >> 52) as i64;
        let (m, k) = if raw_exp == 0 {
            (bits & ((1 << 52) - 1), -1074i64)
        } else {
            (bits & ((1 << 52) - 1) | (1 << 52), raw_exp - 1075)
        };
        let sign = if x < 0.0 { Sign::Neg } else { Sign::Pos };
        MpFloat::from_int_scaled(sign, vec![m], k, prec, false)
    }

    /// From a signed integer, rounded to `prec` bits (exact if it fits).
    pub fn from_i64(x: i64, prec: u32) -> Self {
        if x == 0 {
            return MpFloat::zero(prec);
        }
        let sign = if x < 0 { Sign::Neg } else { Sign::Pos };
        MpFloat::from_int_scaled(sign, vec![x.unsigned_abs()], 0, prec, false)
    }

    pub fn from_u64(x: u64, prec: u32) -> Self {
        if x == 0 {
            return MpFloat::zero(prec);
        }
        MpFloat::from_int_scaled(Sign::Pos, vec![x], 0, prec, false)
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    pub fn is_zero(&self) -> bool {
        self.mant.is_empty()
    }

    pub fn is_negative(&self) -> bool {
        !self.is_zero() && self.sign == Sign::Neg
    }

    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// Precision in bits.
    pub fn precision(&self) -> u32 {
        self.prec
    }

    /// Base-2 exponent: value in `[2^(exp-1), 2^exp)`. None for zero.
    pub fn exp2(&self) -> Option<i64> {
        if self.is_zero() {
            None
        } else {
            Some(self.exp)
        }
    }

    /// Exponent of the least significant mantissa bit: the value is an exact
    /// integer multiple of `2^lsb_exp()`.
    fn lsb_exp(&self) -> i64 {
        self.exp - self.prec as i64
    }

    // ------------------------------------------------------------------
    // Sign / magnitude helpers
    // ------------------------------------------------------------------

    pub fn neg(&self) -> Self {
        let mut out = self.clone();
        if !out.is_zero() {
            out.sign = out.sign.flip();
        }
        out
    }

    pub fn abs(&self) -> Self {
        let mut out = self.clone();
        out.sign = Sign::Pos;
        out
    }

    /// Total-order comparison (no NaN exists here).
    pub fn cmp(&self, other: &Self) -> Ordering {
        match (self.is_zero(), other.is_zero()) {
            (true, true) => return Ordering::Equal,
            (true, false) => {
                return if other.sign == Sign::Pos {
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            }
            (false, true) => {
                return if self.sign == Sign::Pos {
                    Ordering::Greater
                } else {
                    Ordering::Less
                }
            }
            _ => {}
        }
        match (self.sign, other.sign) {
            (Sign::Pos, Sign::Neg) => Ordering::Greater,
            (Sign::Neg, Sign::Pos) => Ordering::Less,
            (Sign::Pos, Sign::Pos) => self.cmp_abs(other),
            (Sign::Neg, Sign::Neg) => other.cmp_abs(self),
        }
    }

    /// Compare |self| to |other|.
    pub fn cmp_abs(&self, other: &Self) -> Ordering {
        match (self.is_zero(), other.is_zero()) {
            (true, true) => return Ordering::Equal,
            (true, false) => return Ordering::Less,
            (false, true) => return Ordering::Greater,
            _ => {}
        }
        if self.exp != other.exp {
            return self.exp.cmp(&other.exp);
        }
        // Align mantissas of possibly different precisions to a common lsb.
        let ka = self.lsb_exp();
        let kb = other.lsb_exp();
        if ka == kb {
            limb::cmp(&self.mant, &other.mant)
        } else if ka < kb {
            let b = limb::shl(&other.mant, (kb - ka) as usize);
            limb::cmp(&self.mant, &b)
        } else {
            let a = limb::shl(&self.mant, (ka - kb) as usize);
            limb::cmp(&a, &other.mant)
        }
    }

    // ------------------------------------------------------------------
    // Arithmetic
    // ------------------------------------------------------------------

    /// `self + other`, rounded to `prec` bits.
    pub fn add(&self, other: &Self, prec: u32) -> Self {
        if self.is_zero() {
            return other.round(prec);
        }
        if other.is_zero() {
            return self.round(prec);
        }
        if self.sign == other.sign {
            self.add_abs(other, self.sign, prec)
        } else {
            match self.cmp_abs(other) {
                Ordering::Equal => MpFloat::zero(prec),
                Ordering::Greater => self.sub_abs(other, self.sign, prec),
                Ordering::Less => other.sub_abs(self, other.sign, prec),
            }
        }
    }

    /// `self - other`, rounded to `prec` bits.
    pub fn sub(&self, other: &Self, prec: u32) -> Self {
        self.add(&other.neg(), prec)
    }

    /// Re-round this value to a (usually lower) precision.
    pub fn round(&self, prec: u32) -> Self {
        if self.is_zero() {
            return MpFloat::zero(prec);
        }
        MpFloat::from_int_scaled(self.sign, self.mant.clone(), self.lsb_exp(), prec, false)
    }

    /// Magnitude addition: |self| + |other| with the given result sign.
    fn add_abs(&self, other: &Self, sign: Sign, prec: u32) -> Self {
        let (hi, lo) = if self.exp >= other.exp {
            (self, other)
        } else {
            (other, self)
        };
        // Fast path: `lo` is entirely below both the rounding point of the
        // result *and* the lowest significant bit of `hi` (if `hi` carries
        // more precision than the result, its own low bits reach below the
        // result's guard position, so the threshold must cover them too).
        let gap = hi.exp - lo.exp;
        if gap > (prec.max(hi.prec)) as i64 + 2 {
            // hi + tiny: round hi at prec with a sticky nudge.
            return MpFloat::from_int_scaled(
                sign,
                limb::shl(&hi.mant, 2), // two guard bits
                hi.lsb_exp() - 2,
                prec,
                true,
            );
        }
        let ka = hi.lsb_exp();
        let kb = lo.lsb_exp();
        let k = ka.min(kb);
        let a = limb::shl(&hi.mant, (ka - k) as usize);
        let b = limb::shl(&lo.mant, (kb - k) as usize);
        let sum = limb::add(&a, &b);
        MpFloat::from_int_scaled(sign, sum, k, prec, false)
    }

    /// Magnitude subtraction: |self| - |other| (requires |self| > |other|)
    /// with the given result sign.
    fn sub_abs(&self, other: &Self, sign: Sign, prec: u32) -> Self {
        let gap = self.exp - other.exp;
        if gap > (prec.max(self.prec)) as i64 + 2 {
            // Subtracting a tiny value: nudge down by one ulp-of-guard and
            // mark sticky so RNE resolves correctly. The guard position must
            // sit below the RESULT's rounding point, not just below our own
            // lsb — when `prec` exceeds `self.prec`, a nudge at `lsb - 2`
            // lands above the rounding point and is stored exactly as a
            // (huge) real error instead of a rounding hint.
            let bits = limb::bit_len(&self.mant) as i64;
            let extra = ((prec as i64 + 2) - bits).max(2) as usize;
            let shifted = limb::shl(&self.mant, extra);
            let nudged = limb::sub(&shifted, &[1]);
            return MpFloat::from_int_scaled(
                sign,
                nudged,
                self.lsb_exp() - extra as i64,
                prec,
                true,
            );
        }
        let ka = self.lsb_exp();
        let kb = other.lsb_exp();
        let k = ka.min(kb);
        let a = limb::shl(&self.mant, (ka - k) as usize);
        let b = limb::shl(&other.mant, (kb - k) as usize);
        let diff = limb::sub(&a, &b);
        MpFloat::from_int_scaled(sign, diff, k, prec, false)
    }

    /// `self * other`, rounded to `prec` bits.
    pub fn mul(&self, other: &Self, prec: u32) -> Self {
        if self.is_zero() || other.is_zero() {
            return MpFloat::zero(prec);
        }
        let sign = if self.sign == other.sign {
            Sign::Pos
        } else {
            Sign::Neg
        };
        let prod = limb::mul(&self.mant, &other.mant);
        MpFloat::from_int_scaled(sign, prod, self.lsb_exp() + other.lsb_exp(), prec, false)
    }

    /// `self / other`, rounded to `prec` bits. Panics if `other` is zero.
    pub fn div(&self, other: &Self, prec: u32) -> Self {
        assert!(!other.is_zero(), "MpFloat division by zero");
        if self.is_zero() {
            return MpFloat::zero(prec);
        }
        let sign = if self.sign == other.sign {
            Sign::Pos
        } else {
            Sign::Neg
        };
        let la = limb::bit_len(&self.mant) as i64;
        let lb = limb::bit_len(&other.mant) as i64;
        // Shift the numerator so the quotient has ~prec + 3 bits.
        let s = (prec as i64 + 3 + lb - la).max(0) as usize;
        let num = limb::shl(&self.mant, s);
        let (q, r) = limb::div_rem(&num, &other.mant);
        let sticky = !limb::is_zero(&r);
        let lsb = self.lsb_exp() - other.lsb_exp() - s as i64;
        MpFloat::from_int_scaled(sign, q, lsb, prec, sticky)
    }

    /// `sqrt(self)`, rounded to `prec` bits. Panics on negative input.
    pub fn sqrt(&self, prec: u32) -> Self {
        assert!(!self.is_negative(), "MpFloat sqrt of negative value");
        if self.is_zero() {
            return MpFloat::zero(prec);
        }
        let k = self.lsb_exp();
        // Radicand R = M << t with k - t even and enough bits that
        // isqrt(R) carries > prec + 2 significant bits.
        let lm = limb::bit_len(&self.mant) as i64;
        let mut t = (2 * (prec as i64 + 3) - lm).max(0);
        if (k - t) % 2 != 0 {
            t += 1;
        }
        let r = limb::shl(&self.mant, t as usize);
        let s = limb::isqrt(&r);
        let exact = limb::cmp(&limb::mul(&s, &s), &r) == Ordering::Equal;
        MpFloat::from_int_scaled(Sign::Pos, s, (k - t) / 2, prec, !exact)
    }

    // ------------------------------------------------------------------
    // Conversions out
    // ------------------------------------------------------------------

    /// Round to the nearest `f64` (ties to even). Values beyond the f64
    /// range saturate to ±MAX / ±0 respectively; results that land in the
    /// subnormal range may be double-rounded in the last bit.
    pub fn to_f64(&self) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        if self.exp >= -1021 {
            let r = self.round(53);
            if r.exp > 1024 {
                return self.sign.to_f64() * f64::MAX;
            }
            // r.mant has exactly 53 bits; value = m * 2^(exp - 53).
            let m = r.mant[0];
            let e = (r.exp - 53) as i32;
            let v = if e >= -1021 {
                (m as f64) * 2.0f64.powi(e)
            } else {
                // powi saturates below 2^-1074; scale in two exact steps.
                (m as f64) * 2.0f64.powi(-500) * 2.0f64.powi(e + 500)
            };
            return self.sign.to_f64() * v;
        }
        // Subnormal-range result: fewer than 53 significand bits are
        // available on the 2^-1074 grid, so round ONCE at exactly that
        // precision. Rounding to 53 bits first and letting the scale
        // multiply round again would double-round, and a coarse cutoff
        // would flush representable values near 2^-1074 to zero.
        let bits = self.exp + 1074;
        if bits <= 0 {
            // v in [2^(exp-1), 2^exp) with exp <= -1074. Only exp == -1074
            // can reach the smallest subnormal: v > 2^-1075 rounds up,
            // the exact midpoint 2^-1075 ties to even (zero).
            let up = bits == 0 && !self.is_pow2();
            let mag = if up { f64::from_bits(1) } else { 0.0 };
            return self.sign.to_f64() * mag;
        }
        if bits == 1 {
            // v in [2^-1074, 2^-1073): candidates are those two endpoints,
            // midpoint 1.5 * 2^-1074. `round` needs >= 2 bits, so decide
            // from the second mantissa bit directly (a set bit means
            // v >= midpoint; the exact tie rounds to even, which is up).
            let second = (self.prec as usize) - 2;
            let up = self.mant[second / 64] >> (second % 64) & 1 == 1;
            let mag = f64::from_bits(if up { 2 } else { 1 });
            return self.sign.to_f64() * mag;
        }
        let r = self.round(bits as u32);
        // value = m * 2^(exp - bits); the scale is exact in two steps
        // because the product is representable (a multiple of 2^-1074).
        let m = r.mant[0];
        let e = (r.exp - bits) as i32;
        self.sign.to_f64() * (m as f64) * 2.0f64.powi(-500) * 2.0f64.powi(e + 500)
    }

    /// True when the mantissa is a power of two (only the top bit set),
    /// i.e. the value is exactly `±2^(exp-1)`.
    fn is_pow2(&self) -> bool {
        self.mant.iter().map(|l| l.count_ones()).sum::<u32>() == 1
    }

    // ------------------------------------------------------------------
    // Decimal I/O
    // ------------------------------------------------------------------

    /// Parse a decimal string `[-+]ddd[.ddd][eE[-+]ddd]`, rounded to `prec`
    /// bits.
    pub fn from_decimal_str(s: &str, prec: u32) -> Result<Self, String> {
        let s = s.trim();
        let (sign, rest) = match s.as_bytes().first() {
            Some(b'-') => (Sign::Neg, &s[1..]),
            Some(b'+') => (Sign::Pos, &s[1..]),
            _ => (Sign::Pos, s),
        };
        let (mant_str, exp10) = match rest.find(['e', 'E']) {
            Some(i) => {
                let e: i32 = rest[i + 1..]
                    .parse()
                    .map_err(|_| format!("bad exponent in {s:?}"))?;
                (&rest[..i], e)
            }
            None => (rest, 0),
        };
        let mut digits = Vec::new();
        let mut frac_digits = 0i32;
        let mut seen_dot = false;
        let mut seen_digit = false;
        for c in mant_str.chars() {
            match c {
                '0'..='9' => {
                    digits.push(c as u8 - b'0');
                    seen_digit = true;
                    if seen_dot {
                        frac_digits += 1;
                    }
                }
                '.' if !seen_dot => seen_dot = true,
                '_' => {}
                _ => return Err(format!("bad character {c:?} in {s:?}")),
            }
        }
        if !seen_digit {
            return Err(format!("no digits in {s:?}"));
        }
        // Integer N = digits as big int; value = N * 10^(exp10 - frac_digits)
        let mut n: Vec<u64> = Vec::new();
        for &d in &digits {
            n = limb::mul_small(&n, 10);
            n = limb::add_small(&n, d as u64);
        }
        let e10 = exp10 - frac_digits;
        if limb::is_zero(&n) {
            return Ok(MpFloat::zero(prec));
        }
        if e10 >= 0 {
            let scaled = limb::mul(&n, &limb::pow10(e10 as u32));
            Ok(MpFloat::from_int_scaled(sign, scaled, 0, prec, false))
        } else {
            // value = N / 10^(-e10): shift N up so the quotient keeps
            // prec + 3 bits, then round with sticky.
            let d = limb::pow10((-e10) as u32);
            let shift =
                (prec as i64 + 3 + limb::bit_len(&d) as i64 - limb::bit_len(&n) as i64).max(0);
            let num = limb::shl(&n, shift as usize);
            let (q, r) = limb::div_rem(&num, &d);
            let sticky = !limb::is_zero(&r);
            Ok(MpFloat::from_int_scaled(sign, q, -shift, prec, sticky))
        }
    }

    /// Format as a decimal string in scientific notation with `digits`
    /// significant digits (correctly rounded, round-half-even on the last
    /// digit up to the precision actually carried).
    pub fn to_decimal_string(&self, digits: usize) -> String {
        assert!(digits >= 1);
        if self.is_zero() {
            return "0.0".to_string();
        }
        // value = M * 2^k. Find d10 = floor(log10(|value|)) approximately,
        // then compute the first `digits` decimal digits by scaling.
        let k = self.lsb_exp();
        // log10(|v|) = log10(M) + k*log10(2)
        let approx_log10 =
            (limb::bit_len(&self.mant) as f64 + k as f64) * std::f64::consts::LOG10_2;
        let mut d10 = approx_log10.floor() as i32;
        // We want I = round(|v| * 10^(digits - 1 - d10)) with 10^(digits-1)
        // <= I < 10^digits. The estimate of d10 can be off by one; fix up.
        for _ in 0..3 {
            let scale10 = digits as i32 - 1 - d10;
            let i = self.scaled_decimal_int(scale10);
            let lo = limb::pow10(digits as u32 - 1);
            let hi = limb::pow10(digits as u32);
            if limb::cmp(&i, &lo) == Ordering::Less {
                d10 -= 1;
                continue;
            }
            if limb::cmp(&i, &hi) != Ordering::Less {
                d10 += 1;
                continue;
            }
            // Render digits of I.
            let mut digs = Vec::with_capacity(digits);
            let mut cur = i;
            while !limb::is_zero(&cur) {
                let (q, r) = limb::div_rem_small(&cur, 10);
                digs.push(b'0' + r as u8);
                cur = q;
            }
            while digs.len() < digits {
                digs.push(b'0');
            }
            digs.reverse();
            let mut out = String::new();
            if self.sign == Sign::Neg {
                out.push('-');
            }
            out.push(digs[0] as char);
            out.push('.');
            if digs.len() > 1 {
                out.extend(digs[1..].iter().map(|&b| b as char));
            } else {
                out.push('0');
            }
            if d10 != 0 {
                out.push('e');
                out.push_str(&d10.to_string());
            }
            return out;
        }
        unreachable!("decimal exponent estimate failed to converge");
    }

    /// `round(|self| * 10^scale10)` as a big integer (RNE on the last digit).
    fn scaled_decimal_int(&self, scale10: i32) -> Vec<u64> {
        let k = self.lsb_exp();
        // |v| * 10^scale10 = M * 2^k * 10^scale10
        let (num, den) = if scale10 >= 0 {
            (
                limb::mul(&self.mant, &limb::pow10(scale10 as u32)),
                Vec::new(),
            )
        } else {
            (self.mant.clone(), limb::pow10((-scale10) as u32))
        };
        // Multiply by 2^k (shift) and divide by den, rounding to nearest.
        if k >= 0 {
            let shifted = limb::shl(&num, k as usize);
            if den.is_empty() {
                shifted
            } else {
                div_round_nearest(&shifted, &den)
            }
        } else {
            // Divide by 2^(-k) (and den): combine into one division.
            let mut d = limb::shl(&[1u64], (-k) as usize);
            if !den.is_empty() {
                d = limb::mul(&d, &den);
            }
            div_round_nearest(&num, &d)
        }
    }

    // ------------------------------------------------------------------
    // Oracle conveniences
    // ------------------------------------------------------------------

    /// Exact sum of a slice of doubles (no rounding: the precision is chosen
    /// large enough to hold the exact result).
    pub fn exact_sum(xs: &[f64]) -> Self {
        // Exponent span of f64 is < 2200 bits; add headroom for the count.
        let prec = 2400 + 64;
        let mut acc = MpFloat::zero(prec);
        for &x in xs {
            acc = acc.add(&MpFloat::from_f64(x, 53), prec);
        }
        acc
    }

    /// Exact dot product of two slices of doubles.
    pub fn exact_dot(xs: &[f64], ys: &[f64]) -> Self {
        assert_eq!(xs.len(), ys.len());
        let prec = 4800 + 64;
        let mut acc = MpFloat::zero(prec);
        for (&x, &y) in xs.iter().zip(ys) {
            let p = MpFloat::from_f64(x, 53).mul(&MpFloat::from_f64(y, 53), 110);
            acc = acc.add(&p, prec);
        }
        acc
    }

    /// |self - other| / |other| as f64 (other must be nonzero); a convenient
    /// relative-error measure for tests.
    pub fn rel_error_vs(&self, other: &Self) -> f64 {
        assert!(!other.is_zero());
        let prec = self.prec.max(other.prec) + 64;
        let diff = self.sub(other, prec).abs();
        diff.div(&other.abs(), 64).to_f64()
    }
}

/// `round(a / b)` to nearest integer, ties away from zero (only used for
/// decimal digit extraction where the tie direction is washed out by the
/// guard-digit convention).
fn div_round_nearest(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (q, r) = limb::div_rem(a, b);
    let r2 = limb::shl(&r, 1);
    if limb::cmp(&r2, b) != Ordering::Less {
        limb::add_small(&q, 1)
    } else {
        q
    }
}

impl fmt::Display for MpFloat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let digits = ((self.prec as f64) * std::f64::consts::LOG10_2).ceil() as usize + 1;
        write!(f, "{}", self.to_decimal_string(digits.max(3)))
    }
}

impl PartialEq for MpFloat {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl PartialOrd for MpFloat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
