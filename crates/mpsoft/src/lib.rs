//! `mf-mpsoft`: an arbitrary-precision binary floating-point library built on
//! a limb-based big integer, in the style of GMP/MPFR (paper §2.2, "Software
//! FPU emulation").
//!
//! This crate plays two roles in the workspace:
//!
//! 1. **Baseline.** The paper compares its branch-free FPAN algorithms
//!    against GMP, MPFR, FLINT, and Boost.Multiprecision — all libraries
//!    that represent the mantissa as an array of machine words and therefore
//!    need data-dependent branching for alignment, normalization, and
//!    rounding after every operation. [`MpFloat`] implements exactly that
//!    mechanism (see `DESIGN.md`, substitution T4) with MPFR-style
//!    semantics: a fixed precision in bits chosen per value and correct
//!    round-to-nearest-even on every operation.
//!
//! 2. **Oracle.** Every `f64`/`f32` is a binary rational, so an [`MpFloat`]
//!    with enough precision computes sums and products of machine floats
//!    *exactly*. The whole workspace's accuracy test suites measure errors
//!    against this crate.
//!
//! # Example
//!
//! ```
//! use mf_mpsoft::MpFloat;
//!
//! let a = MpFloat::from_f64(0.1, 212); // exact: 53 bits fit in 212
//! let b = MpFloat::from_f64(0.2, 212);
//! let c = a.add(&b, 212);
//! // 0.1 + 0.2 in 212-bit arithmetic is *not* 0.3 (the f64 constants carry
//! // their own representation error), but it is close:
//! let d = c.sub(&MpFloat::from_decimal_str("0.3", 212).unwrap(), 212);
//! assert!(d.abs().to_f64() < 1e-16);
//! ```

pub mod float;
pub mod functions;
pub mod limb;

pub use float::{MpFloat, Sign};

#[cfg(test)]
mod tests;
