//! Big-integer primitives on little-endian `u64` limb slices.
//!
//! This is the digit layer of the "software FPU emulation" approach (paper
//! §2.2): big integers in base 2^64 with arrays of machine words as digits.
//! All routines are allocation-light and operate on `Vec<u64>` / `&[u64]`.
//! Limb vectors are **little-endian** (limb 0 is least significant) and may
//! carry leading (high-index) zero limbs unless noted; [`trim`] removes them.

use core::cmp::Ordering;

/// Remove high zero limbs in place. An all-zero value becomes the empty vec.
pub fn trim(a: &mut Vec<u64>) {
    while a.last() == Some(&0) {
        a.pop();
    }
}

/// True if the value is zero (all limbs zero or empty).
pub fn is_zero(a: &[u64]) -> bool {
    a.iter().all(|&l| l == 0)
}

/// Number of significant bits (0 for zero).
pub fn bit_len(a: &[u64]) -> usize {
    for (i, &l) in a.iter().enumerate().rev() {
        if l != 0 {
            return 64 * i + (64 - l.leading_zeros() as usize);
        }
    }
    0
}

/// Test bit `i` (false beyond the end).
pub fn get_bit(a: &[u64], i: usize) -> bool {
    let (limb, bit) = (i / 64, i % 64);
    limb < a.len() && (a[limb] >> bit) & 1 == 1
}

/// Compare two limb slices as integers (leading zeros ignored).
pub fn cmp(a: &[u64], b: &[u64]) -> Ordering {
    let la = bit_len(a);
    let lb = bit_len(b);
    if la != lb {
        return la.cmp(&lb);
    }
    let n = la.div_ceil(64);
    for i in (0..n).rev() {
        match a[i].cmp(&b[i]) {
            Ordering::Equal => {}
            other => return other,
        }
    }
    Ordering::Equal
}

/// `a + b`.
pub fn add(a: &[u64], b: &[u64]) -> Vec<u64> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u64;
    for i in 0..long.len() {
        let s = short.get(i).copied().unwrap_or(0);
        let (t, c1) = long[i].overflowing_add(s);
        let (t, c2) = t.overflowing_add(carry);
        carry = (c1 as u64) + (c2 as u64);
        out.push(t);
    }
    if carry != 0 {
        out.push(carry);
    }
    out
}

/// `a - b`; requires `a >= b`.
pub fn sub(a: &[u64], b: &[u64]) -> Vec<u64> {
    debug_assert!(cmp(a, b) != Ordering::Less, "limb::sub underflow");
    let mut out = Vec::with_capacity(a.len());
    let mut borrow = 0u64;
    for i in 0..a.len() {
        let s = b.get(i).copied().unwrap_or(0);
        let (t, b1) = a[i].overflowing_sub(s);
        let (t, b2) = t.overflowing_sub(borrow);
        borrow = (b1 as u64) + (b2 as u64);
        out.push(t);
    }
    debug_assert_eq!(borrow, 0);
    trim(&mut out);
    out
}

/// `a << n` (bits).
pub fn shl(a: &[u64], n: usize) -> Vec<u64> {
    if is_zero(a) {
        return Vec::new();
    }
    let (limbs, bits) = (n / 64, n % 64);
    let mut out = vec![0u64; a.len() + limbs + 1];
    if bits == 0 {
        out[limbs..limbs + a.len()].copy_from_slice(a);
    } else {
        for (i, &l) in a.iter().enumerate() {
            out[limbs + i] |= l << bits;
            out[limbs + i + 1] |= l >> (64 - bits);
        }
    }
    trim(&mut out);
    out
}

/// `a >> n` (bits), returning the shifted value and a *sticky* flag that is
/// true iff any 1-bit was shifted out.
pub fn shr_sticky(a: &[u64], n: usize) -> (Vec<u64>, bool) {
    let len_bits = bit_len(a);
    if n >= len_bits {
        return (Vec::new(), !is_zero(a));
    }
    let (limbs, bits) = (n / 64, n % 64);
    let mut sticky = a[..limbs].iter().any(|&l| l != 0);
    if bits > 0 {
        sticky |= a[limbs] & ((1u64 << bits) - 1) != 0;
    }
    let mut out = Vec::with_capacity(a.len() - limbs);
    if bits == 0 {
        out.extend_from_slice(&a[limbs..]);
    } else {
        for i in limbs..a.len() {
            let lo = a[i] >> bits;
            let hi = if i + 1 < a.len() {
                a[i + 1] << (64 - bits)
            } else {
                0
            };
            out.push(lo | hi);
        }
    }
    trim(&mut out);
    (out, sticky)
}

/// Schoolbook `a * b`. Quadratic, which is fine: the workspace uses
/// precisions of a few hundred bits (≤ a dozen limbs).
pub fn mul(a: &[u64], b: &[u64]) -> Vec<u64> {
    if is_zero(a) || is_zero(b) {
        return Vec::new();
    }
    let mut out = vec![0u64; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u128;
        for (j, &bj) in b.iter().enumerate() {
            let t = (ai as u128) * (bj as u128) + (out[i + j] as u128) + carry;
            out[i + j] = t as u64;
            carry = t >> 64;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let t = (out[k] as u128) + carry;
            out[k] = t as u64;
            carry = t >> 64;
            k += 1;
        }
    }
    trim(&mut out);
    out
}

/// `a * m` for a single limb `m`.
pub fn mul_small(a: &[u64], m: u64) -> Vec<u64> {
    if m == 0 || is_zero(a) {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(a.len() + 1);
    let mut carry = 0u128;
    for &l in a {
        let t = (l as u128) * (m as u128) + carry;
        out.push(t as u64);
        carry = t >> 64;
    }
    if carry != 0 {
        out.push(carry as u64);
    }
    out
}

/// `a + m` for a single limb `m`.
pub fn add_small(a: &[u64], m: u64) -> Vec<u64> {
    add(a, &[m])
}

/// `(a / m, a % m)` for a single nonzero limb `m`.
pub fn div_rem_small(a: &[u64], m: u64) -> (Vec<u64>, u64) {
    assert_ne!(m, 0);
    let mut out = vec![0u64; a.len()];
    let mut rem = 0u128;
    for i in (0..a.len()).rev() {
        let cur = (rem << 64) | a[i] as u128;
        out[i] = (cur / m as u128) as u64;
        rem = cur % m as u128;
    }
    trim(&mut out);
    (out, rem as u64)
}

/// Knuth Algorithm D: `(a / b, a % b)` for arbitrary nonzero `b`.
pub fn div_rem(a: &[u64], b: &[u64]) -> (Vec<u64>, Vec<u64>) {
    assert!(!is_zero(b), "division by zero");
    let mut b = b.to_vec();
    trim(&mut b);
    if b.len() == 1 {
        let (q, r) = div_rem_small(a, b[0]);
        return (q, if r == 0 { Vec::new() } else { vec![r] });
    }
    if cmp(a, &b) == Ordering::Less {
        let mut r = a.to_vec();
        trim(&mut r);
        return (Vec::new(), r);
    }

    // D1: normalize so the divisor's top limb has its high bit set.
    let shift = b.last().unwrap().leading_zeros() as usize;
    let bn = shl(&b, shift);
    let mut an = shl(a, shift);
    let n = bn.len();
    let m = an.len().max(n) - n;
    an.resize(n + m + 1, 0); // extra high limb for the algorithm
    let mut q = vec![0u64; m + 1];
    let b_top = bn[n - 1];
    let b_second = bn[n - 2];

    for j in (0..=m).rev() {
        // D3: estimate q̂ from the top two limbs of the current remainder.
        let num = ((an[j + n] as u128) << 64) | an[j + n - 1] as u128;
        let mut qhat = num / b_top as u128;
        let mut rhat = num % b_top as u128;
        while qhat >= 1u128 << 64
            || qhat * b_second as u128 > ((rhat << 64) | an[j + n - 2] as u128)
        {
            qhat -= 1;
            rhat += b_top as u128;
            if rhat >= 1u128 << 64 {
                break;
            }
        }
        // D4: multiply-and-subtract q̂ * b from the remainder window.
        let mut borrow = 0i128;
        let mut carry = 0u128;
        for i in 0..n {
            let p = qhat * bn[i] as u128 + carry;
            carry = p >> 64;
            let t = an[j + i] as i128 - (p as u64) as i128 + borrow;
            an[j + i] = t as u64;
            borrow = t >> 64; // arithmetic shift: 0 or -1
        }
        let t = an[j + n] as i128 - carry as i128 + borrow;
        an[j + n] = t as u64;
        borrow = t >> 64;
        // D5/D6: if we overshot (rare), add back one divisor.
        if borrow != 0 {
            qhat -= 1;
            let mut c = 0u128;
            for i in 0..n {
                let t = an[j + i] as u128 + bn[i] as u128 + c;
                an[j + i] = t as u64;
                c = t >> 64;
            }
            an[j + n] = an[j + n].wrapping_add(c as u64);
        }
        q[j] = qhat as u64;
    }

    trim(&mut q);
    // D8: denormalize the remainder.
    an.truncate(n);
    let (mut r, _) = shr_sticky(&an, shift);
    trim(&mut r);
    (q, r)
}

/// Integer square root: largest `s` with `s*s <= a`, by Newton's method.
pub fn isqrt(a: &[u64]) -> Vec<u64> {
    if is_zero(a) {
        return Vec::new();
    }
    let bits = bit_len(a);
    // Initial guess: 2^ceil(bits/2) >= sqrt(a).
    let mut x = shl(&[1u64], bits.div_ceil(2));
    loop {
        // x' = (x + a/x) / 2
        let (d, _) = div_rem(a, &x);
        let s = add(&x, &d);
        let (mut next, _) = shr_sticky(&s, 1);
        trim(&mut next);
        if cmp(&next, &x) != Ordering::Less {
            break;
        }
        x = next;
    }
    // x is now the floor sqrt (Newton for isqrt converges from above and the
    // first non-decreasing step lands on it).
    debug_assert!(cmp(&mul(&x, &x), a) != Ordering::Greater);
    x
}

/// `10^n` as a limb vector.
pub fn pow10(n: u32) -> Vec<u64> {
    let mut out = vec![1u64];
    let mut rem = n;
    while rem >= 19 {
        out = mul_small(&out, 10u64.pow(19));
        rem -= 19;
    }
    if rem > 0 {
        out = mul_small(&out, 10u64.pow(rem));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_u128(x: u128) -> Vec<u64> {
        let mut v = vec![x as u64, (x >> 64) as u64];
        trim(&mut v);
        v
    }

    fn to_u128(a: &[u64]) -> u128 {
        assert!(a.len() <= 2);
        a.first().copied().unwrap_or(0) as u128 | (a.get(1).copied().unwrap_or(0) as u128) << 64
    }

    #[test]
    fn add_sub_roundtrip_u128() {
        let cases = [
            (0u128, 0u128),
            (1, 1),
            (u64::MAX as u128, 1),
            (u128::MAX / 2, u128::MAX / 3),
            (0xdeadbeef_cafebabe_12345678_9abcdef0, 0xffff_ffff_ffff_ffff),
        ];
        for &(x, y) in &cases {
            assert_eq!(to_u128(&add(&from_u128(x), &from_u128(y))), x + y);
            let (hi, lo) = if x >= y { (x, y) } else { (y, x) };
            assert_eq!(to_u128(&sub(&from_u128(hi), &from_u128(lo))), hi - lo);
        }
    }

    #[test]
    fn mul_matches_u128() {
        let cases = [
            (0u128, 5u128),
            (3, 7),
            (u64::MAX as u128, u64::MAX as u128),
            (1 << 63, 1 << 63),
        ];
        for &(x, y) in &cases {
            assert_eq!(to_u128(&mul(&from_u128(x), &from_u128(y))), x * y);
        }
    }

    #[test]
    fn div_rem_matches_u128() {
        let cases: [(u128, u128); 6] = [
            (100, 7),
            (u128::MAX, 3),
            (u128::MAX, u64::MAX as u128),
            (u128::MAX, (u64::MAX as u128) + 1),
            (0xdead_beef_cafe_babe_1234_5678_9abc_def0, 0x1_0000_0001),
            (12345, 123456789),
        ];
        for &(x, y) in &cases {
            let (q, r) = div_rem(&from_u128(x), &from_u128(y));
            assert_eq!(to_u128(&q), x / y, "q for {x}/{y}");
            assert_eq!(to_u128(&r), x % y, "r for {x}/{y}");
        }
    }

    #[test]
    fn div_rem_multi_limb_identity() {
        // Reconstruct a = q*b + r for pseudo-random multi-limb values.
        let mut state = 0x12345678_9abcdef0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for nb in 2..5usize {
            for na in nb..8usize {
                let a: Vec<u64> = (0..na).map(|_| next()).collect();
                let b: Vec<u64> = (0..nb).map(|_| next() | 1).collect();
                let (q, r) = div_rem(&a, &b);
                assert_eq!(cmp(&r, &b), Ordering::Less, "remainder must be < divisor");
                let recon = add(&mul(&q, &b), &r);
                let mut a_t = a.clone();
                trim(&mut a_t);
                assert_eq!(recon, a_t, "a = q*b + r failed (na={na} nb={nb})");
            }
        }
    }

    #[test]
    fn shifts_roundtrip() {
        let a = vec![0xdead_beefu64, 0xcafe_babe, 0x1234];
        for n in [0usize, 1, 17, 64, 65, 128, 130] {
            let s = shl(&a, n);
            let (back, sticky) = shr_sticky(&s, n);
            let mut a_t = a.clone();
            trim(&mut a_t);
            assert_eq!(back, a_t);
            assert!(!sticky, "no bits should be lost");
        }
    }

    #[test]
    fn shr_sticky_detects_lost_bits() {
        let (v, sticky) = shr_sticky(&[0b101u64], 1);
        assert_eq!(v, vec![0b10u64]);
        assert!(sticky);
        let (v, sticky) = shr_sticky(&[0b100u64], 2);
        assert_eq!(v, vec![1u64]);
        assert!(!sticky);
        let (v, sticky) = shr_sticky(&[5u64], 64);
        assert!(v.is_empty());
        assert!(sticky);
    }

    #[test]
    fn bit_len_cases() {
        assert_eq!(bit_len(&[]), 0);
        assert_eq!(bit_len(&[0]), 0);
        assert_eq!(bit_len(&[1]), 1);
        assert_eq!(bit_len(&[u64::MAX]), 64);
        assert_eq!(bit_len(&[0, 1]), 65);
        assert_eq!(bit_len(&[7, 0]), 3);
    }

    #[test]
    fn isqrt_small_values() {
        for n in 0u64..2000 {
            let s = isqrt(&[n]);
            let sv = s.first().copied().unwrap_or(0);
            assert!(sv * sv <= n, "n={n}");
            assert!((sv + 1) * (sv + 1) > n, "n={n}");
        }
    }

    #[test]
    fn isqrt_large_perfect_square() {
        let x = vec![0xdead_beef_cafe_babeu64, 0x1234_5678];
        let sq = mul(&x, &x);
        assert_eq!(isqrt(&sq), x);
        // One less than a perfect square roots to x - 1.
        let sq_m1 = sub(&sq, &[1]);
        assert_eq!(isqrt(&sq_m1), sub(&x, &[1]));
    }

    #[test]
    fn pow10_values() {
        assert_eq!(pow10(0), vec![1]);
        assert_eq!(pow10(1), vec![10]);
        assert_eq!(pow10(19), vec![10u64.pow(19)]);
        assert_eq!(to_u128(&pow10(20)), 10u128.pow(20));
        assert_eq!(to_u128(&pow10(38)), 10u128.pow(38));
        // 10^25 spans two limbs.
        assert_eq!(to_u128(&pow10(25)), 10u128.pow(25));
    }

    #[test]
    fn mul_small_and_div_rem_small_roundtrip() {
        let a = vec![0x1111_2222_3333_4444u64, 0x5555_6666];
        let m = 0xfedc_ba98u64;
        let p = mul_small(&a, m);
        let (q, r) = div_rem_small(&p, m);
        let mut a_t = a.clone();
        trim(&mut a_t);
        assert_eq!(q, a_t);
        assert_eq!(r, 0);
    }

    #[test]
    fn cmp_ignores_leading_zeros() {
        assert_eq!(cmp(&[1, 0, 0], &[1]), Ordering::Equal);
        assert_eq!(cmp(&[2, 0], &[1]), Ordering::Greater);
        assert_eq!(cmp(&[0, 1], &[u64::MAX]), Ordering::Greater);
    }
}
