//! Differential tests: `MpFloat` at 53-bit precision must agree **bit for
//! bit** with hardware IEEE double arithmetic (both are round-to-nearest,
//! ties-to-even). This exercises every alignment/normalization/rounding
//! branch against a known-correct reference on hundreds of thousands of
//! cases.

use crate::{limb, MpFloat};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn rand_f64(rng: &mut SmallRng, exp_range: core::ops::Range<i32>) -> f64 {
    let m: u64 = rng.gen::<u64>() >> 11;
    let e = rng.gen_range(exp_range);
    let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
    sign * (1.0 + (m as f64) * 2.0f64.powi(-53)) * 2.0f64.powi(e)
}

fn check_bits(expect: f64, got: &MpFloat, ctx: &str) {
    let g = got.to_f64();
    assert!(
        expect.to_bits() == g.to_bits(),
        "{ctx}: expected {expect:e} ({:#x}), got {g:e} ({:#x})",
        expect.to_bits(),
        g.to_bits()
    );
}

#[test]
fn add_matches_hardware_double() {
    let mut rng = SmallRng::seed_from_u64(1);
    for i in 0..100_000 {
        let x = rand_f64(&mut rng, -60..60);
        let y = rand_f64(&mut rng, -60..60);
        let a = MpFloat::from_f64(x, 53);
        let b = MpFloat::from_f64(y, 53);
        check_bits(x + y, &a.add(&b, 53), &format!("iter {i}: {x:e} + {y:e}"));
        check_bits(x - y, &a.sub(&b, 53), &format!("iter {i}: {x:e} - {y:e}"));
    }
}

#[test]
fn add_matches_hardware_close_magnitudes() {
    // Heavy cancellation: same exponent, opposite signs.
    let mut rng = SmallRng::seed_from_u64(2);
    for i in 0..100_000 {
        let x = rand_f64(&mut rng, 0..1);
        let y = -rand_f64(&mut rng, 0..1);
        let a = MpFloat::from_f64(x, 53);
        let b = MpFloat::from_f64(y, 53);
        check_bits(x + y, &a.add(&b, 53), &format!("iter {i}: {x:e} + {y:e}"));
    }
}

#[test]
fn add_matches_hardware_far_magnitudes() {
    // Exercises the sticky fast path (gap > prec + 2).
    let mut rng = SmallRng::seed_from_u64(3);
    for i in 0..50_000 {
        let x = rand_f64(&mut rng, 100..120);
        let y = rand_f64(&mut rng, -120..-100);
        let a = MpFloat::from_f64(x, 53);
        let b = MpFloat::from_f64(y, 53);
        check_bits(x + y, &a.add(&b, 53), &format!("iter {i}: {x:e} + {y:e}"));
        check_bits(x - y, &a.sub(&b, 53), &format!("iter {i}: {x:e} - {y:e}"));
    }
}

#[test]
fn add_rounding_boundary_cases() {
    // Hand-picked halfway and near-halfway cases around the 53-bit boundary.
    let cases: &[(f64, f64)] = &[
        (1.0, f64::EPSILON / 2.0),                      // exact tie -> even (1.0)
        (1.0, f64::EPSILON / 2.0 + f64::EPSILON / 4.0), // above tie -> up
        (1.0 + f64::EPSILON, f64::EPSILON / 2.0),       // tie with odd lsb -> up
        (1.0, -f64::EPSILON / 4.0),
        (1.0, -f64::EPSILON / 2.0),
        (2.0f64.powi(52), 0.5),
        (2.0f64.powi(52), 0.5 + 2.0f64.powi(-60)),
        (2.0f64.powi(53) - 1.0, 0.5), // tie at odd mantissa
        (2.0f64.powi(53) - 1.0, 0.5 - 2.0f64.powi(-55)),
        (1.5, 1.5),
        (0.1, 0.2),
        (1e308, 1e308 * 0.5),
        (3.0, -3.0),
    ];
    for &(x, y) in cases {
        let a = MpFloat::from_f64(x, 53);
        let b = MpFloat::from_f64(y, 53);
        check_bits(x + y, &a.add(&b, 53), &format!("{x:e} + {y:e}"));
    }
}

#[test]
fn mul_matches_hardware_double() {
    let mut rng = SmallRng::seed_from_u64(4);
    for i in 0..100_000 {
        let x = rand_f64(&mut rng, -40..40);
        let y = rand_f64(&mut rng, -40..40);
        let a = MpFloat::from_f64(x, 53);
        let b = MpFloat::from_f64(y, 53);
        check_bits(x * y, &a.mul(&b, 53), &format!("iter {i}: {x:e} * {y:e}"));
    }
}

#[test]
fn div_matches_hardware_double() {
    let mut rng = SmallRng::seed_from_u64(5);
    for i in 0..100_000 {
        let x = rand_f64(&mut rng, -40..40);
        let y = rand_f64(&mut rng, -40..40);
        let a = MpFloat::from_f64(x, 53);
        let b = MpFloat::from_f64(y, 53);
        check_bits(x / y, &a.div(&b, 53), &format!("iter {i}: {x:e} / {y:e}"));
    }
}

#[test]
fn sqrt_matches_hardware_double() {
    let mut rng = SmallRng::seed_from_u64(6);
    for i in 0..50_000 {
        let x = rand_f64(&mut rng, -60..60).abs();
        let a = MpFloat::from_f64(x, 53);
        check_bits(x.sqrt(), &a.sqrt(53), &format!("iter {i}: sqrt({x:e})"));
    }
    check_bits(
        2.0f64.sqrt(),
        &MpFloat::from_f64(2.0, 53).sqrt(53),
        "sqrt(2)",
    );
    check_bits(0.0, &MpFloat::zero(53).sqrt(53), "sqrt(0)");
    // Perfect squares are exact.
    for n in 1u32..100 {
        let x = (n * n) as f64;
        check_bits(
            n as f64,
            &MpFloat::from_f64(x, 53).sqrt(53),
            "perfect square",
        );
    }
}

#[test]
fn f32_rounding_matches_hardware() {
    // Round f64 values to 24 bits and compare with `as f32`.
    let mut rng = SmallRng::seed_from_u64(7);
    for _ in 0..100_000 {
        let x = rand_f64(&mut rng, -30..30);
        let r = MpFloat::from_f64(x, 24).to_f64();
        assert_eq!(r as f32, x as f32, "x = {x:e}");
        assert_eq!(r, (x as f32) as f64, "x = {x:e}");
    }
}

#[test]
fn high_precision_add_is_exact_for_doubles() {
    // At >= 2200 bits, sums of doubles are exact; verify associativity holds
    // exactly (it fails in f64).
    let xs = [1e300, 1.0, -1e300, 1e-300, 3.5, -1e-300];
    let s1 = MpFloat::exact_sum(&xs);
    let mut rev = xs;
    rev.reverse();
    let s2 = MpFloat::exact_sum(&rev);
    assert_eq!(s1, s2);
    assert_eq!(s1.to_f64(), 4.5);
    // f64 gets this wrong in at least one order:
    let naive: f64 = xs.iter().sum();
    let naive_rev: f64 = rev.iter().sum();
    assert!(
        naive != naive_rev || naive != 4.5,
        "expected f64 to struggle"
    );
}

#[test]
fn exact_dot_simple() {
    let xs = [0.1, 0.2, 0.3];
    let ys = [3.0, 2.0, 1.0];
    let d = MpFloat::exact_dot(&xs, &ys);
    // Exact value of fl(0.1)*3 + fl(0.2)*2 + fl(0.3)*1 is close to 1.0.
    assert!((d.to_f64() - 1.0).abs() < 1e-15);
    // Compare against two-pass evaluation at high precision.
    let mut acc = MpFloat::zero(5000);
    for (&x, &y) in xs.iter().zip(&ys) {
        let p = MpFloat::from_f64(x, 53).mul(&MpFloat::from_f64(y, 53), 106);
        acc = acc.add(&p, 5000);
    }
    assert_eq!(d, acc);
}

#[test]
fn decimal_roundtrip() {
    let cases = [
        "1",
        "-1",
        "0.5",
        "3.14159",
        "1e10",
        "-2.5e-10",
        "123456789.123456789",
    ];
    for &s in cases.iter() {
        let v = MpFloat::from_decimal_str(s, 200).unwrap();
        let back = MpFloat::from_decimal_str(&v.to_decimal_string(40), 200).unwrap();
        assert!(
            v.rel_error_vs(&back) < 1e-35 || (v.is_zero() && back.is_zero()),
            "roundtrip {s}"
        );
    }
    assert!(MpFloat::from_decimal_str("0", 53).unwrap().is_zero());
    assert!(MpFloat::from_decimal_str("0.000e5", 53).unwrap().is_zero());
    assert!(MpFloat::from_decimal_str("abc", 53).is_err());
    assert!(MpFloat::from_decimal_str("", 53).is_err());
    assert!(MpFloat::from_decimal_str("1e", 53).is_err());
}

#[test]
fn decimal_parse_matches_f64_literals() {
    // Parsing at 53 bits must agree with Rust's own correctly rounded f64
    // literal parser.
    let cases = [
        "0.1",
        "0.2",
        "0.3",
        "3.141592653589793",
        "2.718281828459045",
        "1e-300",
        "9.999999999999999e200",
        "-123.456e-7",
        "0.000001",
    ];
    for &s in cases.iter() {
        let v = MpFloat::from_decimal_str(s, 53).unwrap().to_f64();
        let expect: f64 = s.parse().unwrap();
        assert_eq!(v.to_bits(), expect.to_bits(), "parse {s}");
    }
}

#[test]
fn display_pi() {
    let pi = MpFloat::from_decimal_str(
        "3.14159265358979323846264338327950288419716939937510582097494459",
        212,
    )
    .unwrap();
    let s = pi.to_decimal_string(50);
    assert!(s.starts_with("3.1415926535897932384626433832795028841971693993751"));
}

#[test]
fn comparisons() {
    let a = MpFloat::from_f64(1.5, 100);
    let b = MpFloat::from_f64(2.5, 60);
    let z = MpFloat::zero(10);
    assert!(a < b);
    assert!(b > a);
    assert!(a.neg() < z);
    assert!(z < a);
    assert!(a == a.clone());
    assert!(a.neg() >= b.neg());
    assert!(b.neg() < a.neg());
    // Equal values at different precisions compare equal.
    let x1 = MpFloat::from_f64(0.1, 53);
    let x2 = MpFloat::from_f64(0.1, 500);
    assert!(x1 == x2);
}

#[test]
fn precision_actually_limits() {
    // (1 + 2^-100) at 200 bits keeps the tail; at 53 bits it is 1.
    let one = MpFloat::from_f64(1.0, 200);
    let tiny = MpFloat::from_f64(2.0f64.powi(-100), 200);
    let hi = one.add(&tiny, 200);
    let lo = one.add(&tiny, 53);
    assert!(hi > one);
    assert!(lo == one);
    // Round-trip rounding drops the tail again.
    assert!(hi.round(53) == one);
}

#[test]
fn mul_high_precision_exactness() {
    // Product of two 53-bit values is exact at 106 bits.
    let mut rng = SmallRng::seed_from_u64(8);
    for _ in 0..20_000 {
        let x = rand_f64(&mut rng, -20..20);
        let y = rand_f64(&mut rng, -20..20);
        let p = MpFloat::from_f64(x, 53).mul(&MpFloat::from_f64(y, 53), 106);
        // fl(x*y) + err == exact product; check fl via rounding.
        assert_eq!(p.round(53).to_f64(), x * y);
        // And the exact product minus fl(x*y) equals the FMA residual.
        let fl = MpFloat::from_f64(x * y, 53);
        let resid = p.sub(&fl, 106).to_f64();
        assert_eq!(resid, x.mul_add(y, -(x * y)));
    }
}

#[test]
fn sqrt_respects_rne_at_odd_precisions() {
    // Compare sqrt at several precisions against a much higher precision
    // computation rounded down.
    for prec in [24u32, 53, 103, 156, 208] {
        for v in [2.0f64, 3.0, 5.0, 7.5, 1234.5678] {
            let x = MpFloat::from_f64(v, prec);
            let lo = x.sqrt(prec);
            let hi = x.sqrt(prec + 200).round(prec);
            assert!(lo == hi, "sqrt({v}) at prec {prec}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2000))]

    #[test]
    fn prop_add_matches_f64(x in -1e100f64..1e100, y in -1e100f64..1e100) {
        let a = MpFloat::from_f64(x, 53);
        let b = MpFloat::from_f64(y, 53);
        prop_assert_eq!(a.add(&b, 53).to_f64().to_bits(), (x + y).to_bits());
    }

    #[test]
    fn prop_mul_matches_f64(x in -1e100f64..1e100, y in -1e100f64..1e100) {
        let a = MpFloat::from_f64(x, 53);
        let b = MpFloat::from_f64(y, 53);
        prop_assert_eq!(a.mul(&b, 53).to_f64().to_bits(), (x * y).to_bits());
    }

    #[test]
    fn prop_div_matches_f64(x in -1e100f64..1e100, y in -1e100f64..1e100) {
        prop_assume!(y != 0.0);
        let a = MpFloat::from_f64(x, 53);
        let b = MpFloat::from_f64(y, 53);
        prop_assert_eq!(a.div(&b, 53).to_f64().to_bits(), (x / y).to_bits());
    }

    #[test]
    fn prop_roundtrip_f64(x in -1e300f64..1e300) {
        prop_assert_eq!(MpFloat::from_f64(x, 53).to_f64().to_bits(), x.to_bits());
        prop_assert_eq!(MpFloat::from_f64(x, 300).to_f64().to_bits(), x.to_bits());
    }

    #[test]
    fn prop_mul_commutes(x in -1e50f64..1e50, y in -1e50f64..1e50) {
        let a = MpFloat::from_f64(x, 120);
        let b = MpFloat::from_f64(y, 120);
        prop_assert!(a.mul(&b, 120) == b.mul(&a, 120));
    }

    #[test]
    fn prop_sqrt_squares_back(x in 1e-100f64..1e100) {
        let a = MpFloat::from_f64(x, 200);
        let s = a.sqrt(200);
        let back = s.mul(&s, 200);
        prop_assert!(back.rel_error_vs(&a) < 1e-58);
    }
}

#[test]
fn limb_pow10_consistency_with_float_parse() {
    // "1e30" parsed must equal 10^30 built from limbs.
    let parsed = MpFloat::from_decimal_str("1e30", 150).unwrap();
    let built = MpFloat::from_int_scaled(crate::Sign::Pos, limb::pow10(30), 0, 150, false);
    assert!(parsed == built);
}

#[test]
fn to_f64_subnormal_range_correctly_rounded() {
    // Round-trip of every kind of subnormal, including the deep end the old
    // cutoff flushed to zero.
    for x in [
        5e-324, // smallest subnormal
        -5e-324,
        1.5e-323, // 3 * 2^-1074
        2.0f64.powi(-1070),
        1.23e-310,
        f64::MIN_POSITIVE,       // smallest normal
        f64::MIN_POSITIVE / 2.0, // largest power-of-two subnormal
    ] {
        assert_eq!(
            MpFloat::from_f64(x, 53).to_f64().to_bits(),
            x.to_bits(),
            "roundtrip {x:e}"
        );
    }
    // Values between representables must round to nearest, ties to even:
    // 0.4 * 2^-1074 -> 0, exactly 2^-1075 -> 0 (tie, even), 0.6 * 2^-1074
    // and anything above the midpoint -> 2^-1074.
    let min_sub = MpFloat::from_f64(5e-324, 160);
    let frac = |s: &str| MpFloat::from_decimal_str(s, 160).unwrap();
    assert_eq!(min_sub.mul(&frac("0.4"), 160).to_f64(), 0.0);
    assert_eq!(min_sub.mul(&frac("0.5"), 160).to_f64(), 0.0);
    assert_eq!(min_sub.mul(&frac("0.5000001"), 160).to_f64(), 5e-324);
    assert_eq!(min_sub.mul(&frac("0.6"), 160).to_f64(), 5e-324);
    // Double-rounding trap: 53-bit rounding first would round
    // (2^53 + 1) * 2^-1126 (49 dropped bits ending 1000...0 sticky-less at
    // 53 bits) differently from direct rounding at the 5 available bits.
    let v = MpFloat::from_u64((1u64 << 53) + 1, 160).mul(&frac("1"), 160);
    let scaled = v.mul(&MpFloat::from_f64(2.0f64.powi(-1070), 160), 160); // exp ~ -1016... keep normal
    assert_eq!(
        scaled.to_f64(),
        ((1u64 << 53) + 1) as f64 * 2.0f64.powi(-1070)
    );
}

#[test]
fn wide_gap_subtraction_at_higher_result_precision() {
    // Subtracting a tiny value from a low-precision operand while asking for
    // a HIGHER result precision: the fast path's sticky nudge must land
    // below the result's rounding point, not below the operand's own lsb.
    // 2^996 (53-bit) minus 1 at 512 bits is correctly rounded to 2^996; the
    // old nudge placement returned 2^996 - 2^942.
    let big = MpFloat::from_f64(2.0f64.powi(996), 53);
    let one = MpFloat::from_f64(1.0, 53);
    let d = big.sub(&one, 512);
    assert!(
        d == big.round(512),
        "2^996 - 1 at 512 bits must round to 2^996"
    );
    // Both argument orders of the commutative add.
    let d2 = MpFloat::from_f64(-1.0, 53).add(&big, 512);
    assert!(d2 == big.round(512));
    // A tiny subtrahend still rounds to the operand at LOWER precision too
    // (the 1 is far below the half-ulp at 40 bits).
    let d3 = big.sub(&one, 40);
    assert!(d3 == big.round(40));
    // Adding tiny at higher precision still rounds back to the operand.
    let s = big.add(&one, 512);
    assert!(s == big.round(512));
}
