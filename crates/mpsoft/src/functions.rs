//! Transcendental functions on [`MpFloat`], implemented independently of
//! `mf-core` (plain Taylor series in limb arithmetic, no argument-halving
//! tricks, no shared constants). Their purpose is to act as an oracle for
//! the extension functions in `mf-core::math` / `mf-core::trig`: two
//! implementations that agree to 200+ bits are unlikely to share a bug.
//!
//! These are *not* performance-oriented (hundreds of limb multiplications
//! per call) and carry a few guard bits beyond the requested precision
//! rather than a rigorous ulp guarantee — ample for differential testing
//! against formats of at most 215 bits.

use crate::float::{MpFloat, Sign};

/// Working guard bits added to every internal computation.
const GUARD: u32 = 64;

/// `ln 2` via `2 * atanh(1/3)`: `atanh(z) = z + z^3/3 + z^5/5 + …`.
pub fn ln2(prec: u32) -> MpFloat {
    let wp = prec + GUARD;
    let third = MpFloat::from_u64(1, wp).div(&MpFloat::from_u64(3, wp), wp);
    let nine_inv = third.mul(&third, wp);
    let mut term = third.clone(); // z^(2k+1)
    let mut sum = term.clone();
    let mut k = 1u64;
    loop {
        term = term.mul(&nine_inv, wp);
        let add = term.div(&MpFloat::from_u64(2 * k + 1, wp), wp);
        sum = sum.add(&add, wp);
        if add.exp2().map(|e| e < -(wp as i64)).unwrap_or(true) {
            break;
        }
        k += 1;
    }
    sum.add(&sum, wp).round(prec)
}

/// π via Machin's formula `16 atan(1/5) − 4 atan(1/239)`.
pub fn pi(prec: u32) -> MpFloat {
    let wp = prec + GUARD;
    let a5 = atan_inv_u64(5, wp);
    let a239 = atan_inv_u64(239, wp);
    a5.mul(&MpFloat::from_u64(16, wp), wp)
        .sub(&a239.mul(&MpFloat::from_u64(4, wp), wp), wp)
        .round(prec)
}

/// `atan(1/q)` by the alternating Taylor series (for Machin-type formulas).
fn atan_inv_u64(q: u64, wp: u32) -> MpFloat {
    let qq = MpFloat::from_u64(q * q, wp);
    let mut term = MpFloat::from_u64(1, wp).div(&MpFloat::from_u64(q, wp), wp);
    let mut sum = term.clone();
    let mut k = 1u64;
    loop {
        term = term.div(&qq, wp);
        let add = term.div(&MpFloat::from_u64(2 * k + 1, wp), wp);
        sum = if k % 2 == 1 {
            sum.sub(&add, wp)
        } else {
            sum.add(&add, wp)
        };
        if add.exp2().map(|e| e < -(wp as i64)).unwrap_or(true) {
            break;
        }
        k += 1;
    }
    sum
}

/// `e^x`: reduce by `x = k ln2 + r` (`|r| <= ln2/2`), then plain Taylor.
pub fn exp(x: &MpFloat, prec: u32) -> MpFloat {
    let wp = prec + GUARD;
    if x.is_zero() {
        return MpFloat::from_u64(1, prec);
    }
    let l2 = ln2(wp);
    // k = round(x / ln2) as i64 (magnitudes beyond i64 would overflow the
    // result's exponent anyway).
    let k = (x.to_f64() / core::f64::consts::LN_2).round() as i64;
    let r = x.sub(&l2.mul(&MpFloat::from_i64(k, wp), wp), wp);
    // Taylor sum of e^r.
    let mut term = MpFloat::from_u64(1, wp);
    let mut sum = MpFloat::from_u64(1, wp);
    let mut n = 1u64;
    loop {
        term = term.mul(&r, wp).div(&MpFloat::from_u64(n, wp), wp);
        sum = sum.add(&term, wp);
        let done = term
            .exp2()
            .map(|e| e < sum.exp2().unwrap_or(0) - wp as i64 - 4)
            .unwrap_or(true);
        if done {
            break;
        }
        n += 1;
    }
    // Scale by 2^k exactly: multiply the exponent in.
    let two_k = pow2_mp(k, wp);
    sum.mul(&two_k, wp).round(prec)
}

/// Exact `2^k` as an MpFloat.
fn pow2_mp(k: i64, prec: u32) -> MpFloat {
    let one = MpFloat::from_u64(1, prec);
    // Construct via from_int_scaled to avoid looping.
    MpFloat::from_int_scaled(Sign::Pos, vec![1u64], k, prec, false).add(&one.sub(&one, prec), prec)
}

/// Natural logarithm: reduce `x = m · 2^e` with `m ∈ [1, 2)`, then
/// `ln m = 2 atanh((m-1)/(m+1))`.
pub fn ln(x: &MpFloat, prec: u32) -> MpFloat {
    assert!(!x.is_zero() && !x.is_negative(), "ln domain");
    let wp = prec + GUARD;
    let e = x.exp2().unwrap() - 1; // x in [2^(e), 2^(e+1))
    let m = x.mul(&pow2_mp(-e, wp), wp); // m in [1, 2)
    let num = m.sub(&MpFloat::from_u64(1, wp), wp);
    let den = m.add(&MpFloat::from_u64(1, wp), wp);
    let z = num.div(&den, wp);
    let zz = z.mul(&z, wp);
    let mut term = z.clone();
    let mut sum = z.clone();
    let mut k = 1u64;
    loop {
        term = term.mul(&zz, wp);
        let add = term.div(&MpFloat::from_u64(2 * k + 1, wp), wp);
        sum = sum.add(&add, wp);
        let done = add
            .exp2()
            .map(|ae| {
                sum.exp2()
                    .map(|se| ae < se - wp as i64 - 4)
                    .unwrap_or(false)
            })
            .unwrap_or(true);
        if done {
            break;
        }
        k += 1;
    }
    let ln_m = sum.add(&sum, wp);
    ln_m.add(&ln2(wp).mul(&MpFloat::from_i64(e, wp), wp), wp)
        .round(prec)
}

/// Sine and cosine: reduce modulo `π/2`, then two Taylor series.
pub fn sin_cos(x: &MpFloat, prec: u32) -> (MpFloat, MpFloat) {
    let wp = prec + GUARD;
    let half_pi = pi(wp + 64).div(&MpFloat::from_u64(2, wp + 64), wp + 64);
    let kf = (x.to_f64() / (core::f64::consts::PI / 2.0)).round() as i64;
    let r = x.sub(&half_pi.mul(&MpFloat::from_i64(kf, wp + 64), wp + 64), wp);
    let rr = r.mul(&r, wp);
    // sin series on the residual.
    let mut term = r.clone();
    let mut s = r.clone();
    let mut n = 1u64;
    loop {
        term = term
            .mul(&rr, wp)
            .div(&MpFloat::from_u64((2 * n) * (2 * n + 1), wp), wp)
            .neg();
        s = s.add(&term, wp);
        if term.exp2().map(|e| e < -(wp as i64)).unwrap_or(true) {
            break;
        }
        n += 1;
    }
    // cos series.
    let mut term = MpFloat::from_u64(1, wp);
    let mut c = MpFloat::from_u64(1, wp);
    let mut n = 1u64;
    loop {
        term = term
            .mul(&rr, wp)
            .div(&MpFloat::from_u64((2 * n - 1) * (2 * n), wp), wp)
            .neg();
        c = c.add(&term, wp);
        if term.exp2().map(|e| e < -(wp as i64)).unwrap_or(true) {
            break;
        }
        n += 1;
    }
    // Quadrant fixup.
    let (s, c) = match kf.rem_euclid(4) {
        0 => (s, c),
        1 => (c, s.neg()),
        2 => (s.neg(), c.neg()),
        _ => (c.neg(), s),
    };
    (s.round(prec), c.round(prec))
}

/// Arctangent via the quadratically convergent Newton iteration against
/// [`sin_cos`] (`y <- y + cos y (x cos y - sin y)`), seeded from f64.
pub fn atan(x: &MpFloat, prec: u32) -> MpFloat {
    let wp = prec + GUARD;
    let mut y = MpFloat::from_f64(x.to_f64().atan(), wp);
    // 53 bits seed, doubling per iteration: ceil(log2(wp/53)) + 1 rounds.
    let iters = ((wp as f64 / 53.0).log2().ceil() as usize).max(1) + 1;
    for _ in 0..iters {
        let (s, c) = sin_cos(&y, wp);
        let corr = c.mul(&x.mul(&c, wp).sub(&s, wp), wp);
        y = y.add(&corr, wp);
    }
    y.round(prec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln2_digits() {
        let l = ln2(300);
        let known = MpFloat::from_decimal_str(
            "0.693147180559945309417232121458176568075500134360255254120680",
            300,
        )
        .unwrap();
        assert!(l.rel_error_vs(&known) < 2.0f64.powi(-195));
    }

    #[test]
    fn pi_digits() {
        let p = pi(300);
        let known = MpFloat::from_decimal_str(
            "3.14159265358979323846264338327950288419716939937510582097494459",
            300,
        )
        .unwrap();
        assert!(p.rel_error_vs(&known) < 2.0f64.powi(-195));
    }

    #[test]
    fn exp_and_ln_invert() {
        for v in [0.5f64, 1.0, -2.25, 3.75, 10.0, -20.0] {
            let x = MpFloat::from_f64(v, 300);
            let e = exp(&x, 300);
            let back = ln(&e, 300);
            assert!(back.rel_error_vs(&x) < 2.0f64.powi(-240), "v = {v}");
        }
    }

    #[test]
    fn exp_one_is_e() {
        let e = exp(&MpFloat::from_f64(1.0, 300), 300);
        // 63 significant digits pin the reference to ~2^-207; assert to the
        // literal's own resolution.
        let known = MpFloat::from_decimal_str(
            "2.71828182845904523536028747135266249775724709369995957496696763",
            300,
        )
        .unwrap();
        assert!(e.rel_error_vs(&known) < 2.0f64.powi(-200));
    }

    #[test]
    fn sin_cos_pythagoras_and_known_points() {
        let (s, c) = sin_cos(&MpFloat::from_f64(1.0, 300), 300);
        let one = s.mul(&s, 300).add(&c.mul(&c, 300), 300);
        assert!(one.rel_error_vs(&MpFloat::from_u64(1, 64)) < 2.0f64.powi(-240));
        // sin(pi/6) = 1/2 exactly.
        let sixth = pi(360).div(&MpFloat::from_u64(6, 360), 360);
        let (s, _) = sin_cos(&sixth, 300);
        assert!(s.rel_error_vs(&MpFloat::from_f64(0.5, 64)) < 2.0f64.powi(-240));
    }

    #[test]
    fn atan_one_is_quarter_pi() {
        let a = atan(&MpFloat::from_u64(1, 300), 300);
        let q = pi(360).div(&MpFloat::from_u64(4, 360), 360);
        assert!(a.rel_error_vs(&q) < 2.0f64.powi(-240));
    }
}
