//! `mf-solve`: dense direct solvers with mixed-precision iterative
//! refinement — the paper's §1 motivating scenario as a tested library
//! API (promoted from `examples/iterative_refinement.rs`).
//!
//! Condition numbers of 10^10–10^20 make a plain double-precision solution
//! meaningless, yet factorizing in extended precision throws away the
//! hardware's fast path. The classic mixed-precision pattern (Higham &
//! Mary 2022, cited throughout the paper's introduction) keeps the O(n³)
//! factorization in `f64` and spends extended precision only on the O(n²)
//! residual `r = b − A·x`; each refinement step then recovers roughly
//! `−log₂(cond(A)·ε)` bits until the extended residual's own precision
//! floors out. The residual is computed with the branch-free
//! `MultiFloat<f64, N>` arithmetic through [`mf_blas::kernels::dot`], so
//! the whole refinement loop stays SIMD-friendly.
//!
//! Contents:
//!
//! * [`lu`] — `f64` LU with partial pivoting ([`lu::LuFactors`]), forward/
//!   back substitution, and the triangular solves they build on;
//! * [`qr`] — Householder QR ([`qr::QrFactors`]) for square and
//!   least-squares systems;
//! * [`refine`] — mixed-precision iterative refinement
//!   ([`refine::refine_lu`]) returning per-iteration residual norms, and
//!   its adaptive form ([`refine::refine_adaptive`]) whose residual
//!   precision climbs a ladder (`f64 → F64x2 → F64x3 → F64x4 → exact`)
//!   only when the correction norm stalls.
//!
//! Telemetry (feature-gated no-ops otherwise): the
//! `solve.refine.iterations` gauge holds the iteration count of the most
//! recent refinement, and each refinement pass runs under a
//! `solve.refine.step` span.

pub mod lu;
pub mod qr;
pub mod refine;

pub use lu::{lu_factor, LuFactors};
pub use qr::{qr_factor, QrFactors};
pub use refine::{
    refine_adaptive, refine_adaptive_with_factors, refine_lu, refine_with_factors,
    AdaptiveRefinement, RefineOptions, Refinement, ResidualRung,
};

/// Re-exported matrix type shared with the BLAS layer (`f64` instantiation
/// of the generic dense row-major matrix).
pub type MatrixF64 = mf_blas::Matrix<f64>;

/// Errors from the direct solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// A zero (or non-finite) pivot: the matrix is singular to working
    /// precision at the reported elimination step.
    SingularPivot { step: usize, pivot: f64 },
    /// Shape mismatch between the operands.
    Shape(String),
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::SingularPivot { step, pivot } => {
                write!(f, "singular pivot {pivot:e} at elimination step {step}")
            }
            SolveError::Shape(msg) => write!(f, "shape mismatch: {msg}"),
        }
    }
}

impl std::error::Error for SolveError {}

/// The `n x n` Hilbert matrix `H[i][j] = 1 / (i + j + 1)` — the standard
/// ill-conditioned test problem (condition number grows like `e^{3.5 n}`;
/// ~1e16 at n = 12).
pub fn hilbert(n: usize) -> MatrixF64 {
    MatrixF64::from_fn(n, n, |i, j| 1.0 / ((i + j + 1) as f64))
}

/// Infinity norm of a vector.
pub fn norm_inf(v: &[f64]) -> f64 {
    v.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
}

/// Infinity norm of a matrix (max absolute row sum).
pub fn matrix_norm_inf(a: &MatrixF64) -> f64 {
    (0..a.rows)
        .map(|i| a.row(i).iter().map(|v| v.abs()).sum::<f64>())
        .fold(0.0f64, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hilbert_shape_and_entries() {
        let h = hilbert(4);
        assert_eq!((h.rows, h.cols), (4, 4));
        assert_eq!(h.at(0, 0), 1.0);
        assert_eq!(h.at(1, 2), 0.25);
        assert_eq!(h.at(3, 3), 1.0 / 7.0);
    }

    #[test]
    fn norms() {
        assert_eq!(norm_inf(&[1.0, -3.5, 2.0]), 3.5);
        assert_eq!(norm_inf(&[]), 0.0);
        let a = MatrixF64::from_fn(2, 2, |i, j| if i == 0 { 1.0 } else { -(j as f64) - 1.0 });
        assert_eq!(matrix_norm_inf(&a), 3.0);
    }
}
