//! Householder QR factorization (`f64`), for square solves and
//! least-squares problems (`m >= n`).
//!
//! Standard compact storage: `R` on and above the diagonal of the packed
//! matrix, the essential parts of the Householder vectors below it, with
//! the `v[k] = 1` head implied and the scalar `tau[k] = 2 / (vᵀv)` kept
//! alongside. Applying `Qᵀ` to a right-hand side replays the reflections
//! in order, so `Q` is never formed.

use crate::lu::back_substitute;
use crate::{MatrixF64, SolveError};

/// Packed Householder QR factors.
#[derive(Debug, Clone)]
pub struct QrFactors {
    /// Packed `R` (upper triangle) and Householder vectors (below the
    /// diagonal, unit head implied), `m x n`.
    pub qr: MatrixF64,
    /// Reflection scalars `tau[k]`; `tau[k] == 0` marks a skipped (already
    /// zero) column.
    pub tau: Vec<f64>,
}

/// Factor an `m x n` matrix with `m >= n`. Returns
/// [`SolveError::SingularPivot`] when some column is exactly zero below
/// the eliminated part *and* has a zero diagonal (rank-deficient to
/// working precision).
pub fn qr_factor(a: &MatrixF64) -> Result<QrFactors, SolveError> {
    let (m, n) = (a.rows, a.cols);
    if m < n {
        return Err(SolveError::Shape(format!(
            "qr_factor needs rows >= cols, got {m}x{n}"
        )));
    }
    let mut qr = a.clone();
    let mut tau = vec![0.0f64; n];
    for k in 0..n {
        // Column norm of the trailing part.
        let mut norm2 = 0.0;
        for i in k..m {
            norm2 += qr.at(i, k) * qr.at(i, k);
        }
        let norm = norm2.sqrt();
        if norm == 0.0 || !norm.is_finite() {
            return Err(SolveError::SingularPivot {
                step: k,
                pivot: qr.at(k, k),
            });
        }
        // v = x + sign(x0)*||x||*e1, normalized so v[0] = 1.
        let akk = qr.at(k, k);
        let alpha = if akk >= 0.0 { -norm } else { norm };
        let v0 = akk - alpha;
        // ||v||² with v0 head: tau = 2/(vᵀv) after the v0 normalization
        // simplifies to v0 / alpha * ... — keep the direct form instead.
        let mut vtv = v0 * v0;
        for i in k + 1..m {
            vtv += qr.at(i, k) * qr.at(i, k);
        }
        // Store the normalized tail (v / v0) and tau for the normalized
        // vector: Householder H = I - tau * v vᵀ with v[k] = 1.
        let t = 2.0 * v0 * v0 / vtv;
        for i in k + 1..m {
            let v = qr.at(i, k) / v0;
            qr.set(i, k, v);
        }
        qr.set(k, k, alpha);
        tau[k] = t;
        // Apply H to the trailing columns.
        for j in k + 1..n {
            // w = vᵀ * col_j (v[k] = 1).
            let mut w = qr.at(k, j);
            for i in k + 1..m {
                w += qr.at(i, k) * qr.at(i, j);
            }
            w *= t;
            let v = qr.at(k, j) - w;
            qr.set(k, j, v);
            for i in k + 1..m {
                let v = qr.at(i, j) - w * qr.at(i, k);
                qr.set(i, j, v);
            }
        }
    }
    Ok(QrFactors { qr, tau })
}

impl QrFactors {
    /// Apply `Qᵀ` to a length-`m` vector in place.
    pub fn apply_qt(&self, b: &mut [f64]) {
        let (m, n) = (self.qr.rows, self.qr.cols);
        assert_eq!(b.len(), m, "apply_qt: b has {} elements, need {m}", b.len());
        for k in 0..n {
            let t = self.tau[k];
            if t == 0.0 {
                continue;
            }
            let mut w = b[k];
            for i in k + 1..m {
                w += self.qr.at(i, k) * b[i];
            }
            w *= t;
            b[k] -= w;
            for i in k + 1..m {
                b[i] -= w * self.qr.at(i, k);
            }
        }
    }

    /// Solve `A x = b` (square) or the least-squares problem
    /// `min ||A x - b||₂` (`m > n`): `x = R⁻¹ (Qᵀ b)[..n]`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.qr.cols;
        let mut y = b.to_vec();
        self.apply_qt(&mut y);
        // Back-substitute on the n x n upper triangle.
        let r = MatrixF64::from_fn(n, n, |i, j| if j >= i { self.qr.at(i, j) } else { 0.0 });
        let mut x = y[..n].to_vec();
        back_substitute(&r, &mut x);
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::lu_factor;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn mat_vec(a: &MatrixF64, x: &[f64]) -> Vec<f64> {
        (0..a.rows)
            .map(|i| a.row(i).iter().zip(x).map(|(&aij, &xj)| aij * xj).sum())
            .collect()
    }

    #[test]
    fn qr_square_matches_lu() {
        let mut rng = SmallRng::seed_from_u64(7200);
        for n in [1usize, 3, 10, 32] {
            let a = MatrixF64::from_fn(n, n, |i, j| {
                if i == j {
                    n as f64 + 1.0
                } else {
                    rng.gen_range(-1.0..1.0)
                }
            });
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let x_qr = qr_factor(&a).unwrap().solve(&b);
            let x_lu = lu_factor(&a).unwrap().solve(&b);
            for i in 0..n {
                assert!(
                    (x_qr[i] - x_lu[i]).abs() <= 1e-10 * x_lu[i].abs().max(1.0),
                    "n={n} i={i}: {} vs {}",
                    x_qr[i],
                    x_lu[i]
                );
            }
        }
    }

    #[test]
    fn qr_least_squares_residual_orthogonal() {
        // Overdetermined: the LS residual must be orthogonal to the
        // column space (normal equations Aᵀ(Ax − b) = 0).
        let mut rng = SmallRng::seed_from_u64(7201);
        let (m, n) = (20, 6);
        let a = MatrixF64::from_fn(m, n, |_, _| rng.gen_range(-1.0..1.0));
        let b: Vec<f64> = (0..m).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let x = qr_factor(&a).unwrap().solve(&b);
        let ax = mat_vec(&a, &x);
        let r: Vec<f64> = ax.iter().zip(&b).map(|(axi, bi)| axi - bi).collect();
        for j in 0..n {
            let dot: f64 = (0..m).map(|i| a.at(i, j) * r[i]).sum();
            assert!(dot.abs() <= 1e-10, "column {j}: Aᵀr = {dot:e}");
        }
    }

    #[test]
    fn qr_exact_on_orthogonal_columns() {
        // A = scaled identity stacked over zeros: trivially consistent.
        let (m, n) = (5, 3);
        let a = MatrixF64::from_fn(m, n, |i, j| if i == j { 2.0 } else { 0.0 });
        let b = vec![2.0, 4.0, 6.0, 0.0, 0.0];
        let x = qr_factor(&a).unwrap().solve(&b);
        for (i, want) in [1.0, 2.0, 3.0].iter().enumerate() {
            assert!((x[i] - want).abs() <= 1e-14, "i={i}");
        }
    }

    #[test]
    fn qr_rejects_underdetermined_and_rank_deficient() {
        assert!(matches!(
            qr_factor(&MatrixF64::zeros(2, 3)),
            Err(SolveError::Shape(_))
        ));
        // Zero column => singular at step 1.
        let a = MatrixF64 {
            rows: 3,
            cols: 2,
            data: vec![1.0, 0.0, 2.0, 0.0, 3.0, 0.0],
        };
        match qr_factor(&a) {
            Err(SolveError::SingularPivot { step, .. }) => assert_eq!(step, 1),
            other => panic!("expected SingularPivot, got {other:?}"),
        }
    }
}
