//! `f64` LU factorization with partial pivoting and triangular solves.
//!
//! The factorization is the textbook right-looking elimination with row
//! pivoting, stored packed (`L` strictly below the diagonal with unit
//! diagonal implied, `U` on and above). Pivoting *is* data-dependent
//! branching — that is fine here: the paper's branch-free discipline
//! applies to the extended-precision arithmetic kernels, and this solver
//! deliberately keeps the O(n³) factorization in plain hardware `f64`
//! (the mixed-precision pattern; see [`crate::refine`]).

use crate::{MatrixF64, SolveError};

/// Packed LU factors with the pivoting permutation.
#[derive(Debug, Clone)]
pub struct LuFactors {
    /// Packed `L\U` (row-major, `n x n`).
    pub lu: MatrixF64,
    /// Row permutation: elimination step `k` swapped rows `k` and
    /// `perm[k]` of the working matrix (LAPACK `ipiv` convention applied
    /// eagerly — `perm` maps output rows to original rows).
    pub perm: Vec<usize>,
}

/// Factor a square matrix. Returns [`SolveError::SingularPivot`] when the
/// best available pivot at some step is zero or non-finite (singular to
/// working precision).
pub fn lu_factor(a: &MatrixF64) -> Result<LuFactors, SolveError> {
    if a.rows != a.cols {
        return Err(SolveError::Shape(format!(
            "lu_factor needs a square matrix, got {}x{}",
            a.rows, a.cols
        )));
    }
    let n = a.rows;
    let mut lu = a.clone();
    let mut perm: Vec<usize> = (0..n).collect();
    for k in 0..n {
        // Partial pivot: largest |entry| in column k at or below the
        // diagonal.
        let (mut pi, mut pv) = (k, lu.at(k, k).abs());
        for i in k + 1..n {
            let v = lu.at(i, k).abs();
            if v > pv {
                pi = i;
                pv = v;
            }
        }
        if pv == 0.0 || !pv.is_finite() {
            return Err(SolveError::SingularPivot {
                step: k,
                pivot: lu.at(pi, k),
            });
        }
        if pi != k {
            for j in 0..n {
                let t = lu.at(k, j);
                lu.set(k, j, lu.at(pi, j));
                lu.set(pi, j, t);
            }
            perm.swap(k, pi);
        }
        // Eliminate below the pivot.
        let pivot = lu.at(k, k);
        for i in k + 1..n {
            let f = lu.at(i, k) / pivot;
            lu.set(i, k, f);
            for j in k + 1..n {
                let v = lu.at(i, j) - f * lu.at(k, j);
                lu.set(i, j, v);
            }
        }
    }
    Ok(LuFactors { lu, perm })
}

impl LuFactors {
    /// Solve `A x = b` from the packed factors (permute, forward-, then
    /// back-substitute).
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.lu.rows;
        assert_eq!(b.len(), n, "lu solve: b has {} elements, need {n}", b.len());
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        forward_substitute_unit(&self.lu, &mut x);
        back_substitute(&self.lu, &mut x);
        x
    }
}

/// In-place `L y = b` with the unit-diagonal `L` packed strictly below the
/// diagonal of `m`.
pub fn forward_substitute_unit(m: &MatrixF64, x: &mut [f64]) {
    let n = m.rows;
    for i in 1..n {
        let mut acc = x[i];
        for j in 0..i {
            acc -= m.at(i, j) * x[j];
        }
        x[i] = acc;
    }
}

/// In-place `U x = y` with `U` packed on and above the diagonal of `m`.
pub fn back_substitute(m: &MatrixF64, x: &mut [f64]) {
    let n = m.rows;
    for i in (0..n).rev() {
        let mut acc = x[i];
        for j in i + 1..n {
            acc -= m.at(i, j) * x[j];
        }
        x[i] = acc / m.at(i, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn mat_vec(a: &MatrixF64, x: &[f64]) -> Vec<f64> {
        (0..a.rows)
            .map(|i| a.row(i).iter().zip(x).map(|(&aij, &xj)| aij * xj).sum())
            .collect()
    }

    #[test]
    fn lu_recovers_random_solution() {
        let mut rng = SmallRng::seed_from_u64(7100);
        for n in [1usize, 2, 5, 20, 64] {
            // Diagonally dominant => well-conditioned and non-singular.
            let a = MatrixF64::from_fn(n, n, |i, j| {
                if i == j {
                    n as f64 + 1.0
                } else {
                    rng.gen_range(-1.0..1.0)
                }
            });
            let x_true: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let b = mat_vec(&a, &x_true);
            let f = lu_factor(&a).expect("non-singular");
            let x = f.solve(&b);
            for i in 0..n {
                assert!(
                    (x[i] - x_true[i]).abs() <= 1e-10 * x_true[i].abs().max(1.0),
                    "n={n} i={i}: {} vs {}",
                    x[i],
                    x_true[i]
                );
            }
        }
    }

    #[test]
    fn lu_pivots_past_zero_leading_entry() {
        // a[0][0] = 0 forces a pivot swap immediately.
        let a = MatrixF64 {
            rows: 2,
            cols: 2,
            data: vec![0.0, 1.0, 1.0, 0.0],
        };
        let f = lu_factor(&a).expect("permutation matrix is non-singular");
        let x = f.solve(&[3.0, 4.0]);
        assert_eq!(x, vec![4.0, 3.0]);
    }

    #[test]
    fn lu_detects_singularity() {
        let a = MatrixF64 {
            rows: 2,
            cols: 2,
            data: vec![1.0, 2.0, 2.0, 4.0],
        };
        match lu_factor(&a) {
            Err(SolveError::SingularPivot { step, .. }) => assert_eq!(step, 1),
            other => panic!("expected SingularPivot, got {other:?}"),
        }
    }

    #[test]
    fn lu_rejects_non_square() {
        let a = MatrixF64::zeros(2, 3);
        assert!(matches!(lu_factor(&a), Err(SolveError::Shape(_))));
    }

    #[test]
    fn triangular_solves_roundtrip() {
        let mut rng = SmallRng::seed_from_u64(7101);
        let n = 9;
        // A packed L\U with a safely bounded-away diagonal.
        let m = MatrixF64::from_fn(n, n, |i, j| {
            if i == j {
                rng.gen_range(1.0..2.0)
            } else {
                rng.gen_range(-0.5..0.5)
            }
        });
        let y: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        // Forward: compute b = L y, then solve back to y.
        let mut b = y.clone();
        for i in (0..n).rev() {
            for j in 0..i {
                b[i] += m.at(i, j) * b[j]; // b = L y computed in place
            }
        }
        let mut x = b;
        forward_substitute_unit(&m, &mut x);
        for i in 0..n {
            assert!((x[i] - y[i]).abs() <= 1e-12, "forward i={i}");
        }
        // Back: b = U y, solve back.
        let mut b: Vec<f64> = (0..n)
            .map(|i| (i..n).map(|j| m.at(i, j) * y[j]).sum())
            .collect();
        back_substitute(&m, &mut b);
        for i in 0..n {
            assert!((b[i] - y[i]).abs() <= 1e-12, "back i={i}");
        }
    }
}
