//! Mixed-precision iterative refinement (Higham & Mary 2022; the paper's
//! §1 motivating scenario).
//!
//! The O(n³) factorization stays in hardware `f64`; only the O(n²)
//! residual `r = b − A·x` is computed in `MultiFloat<f64, N>` (one
//! branch-free extended-precision DOT per row, via
//! [`mf_blas::kernels::dot`]). Each step solves `A d = r` from the cached
//! factors and updates `x += d`; with an extended-precision residual the
//! iteration converges to a forward error near working precision whenever
//! `cond(A) · ε_f64` is comfortably below 1, instead of stalling at the
//! condition-number floor the way an `f64` residual does.

use crate::lu::{lu_factor, LuFactors};
use crate::{norm_inf, MatrixF64, SolveError};
use mf_blas::kernels;
use mf_core::adaptive::EscalationPolicy;
use mf_core::{MultiFloat, Rung};
use mf_mpsoft::MpFloat;
use mf_telemetry::{trace, Counter, Gauge};

/// Iteration count of the most recent refinement (live-view gauge).
static REFINE_ITERS: Gauge = Gauge::new("solve.refine.iterations");

/// Residual-precision climbs performed by adaptive refinement.
static ADAPT_ESCALATIONS: Counter = Counter::new("solve.refine.adaptive.escalations");

/// Knobs for [`refine_lu`].
#[derive(Debug, Clone, Copy)]
pub struct RefineOptions {
    /// Hard cap on refinement steps.
    pub max_iters: usize,
    /// Convergence: stop once the correction is negligible,
    /// `||d||_inf <= tol_factor * eps * ||x||_inf`. A residual-based test
    /// would be useless here — LU with partial pivoting is already
    /// normwise backward stable, so the *residual* of the unrefined
    /// solution sits at the `n·eps` level even when its *forward* error is
    /// `cond(A)·eps`; it is the correction norm that tracks the remaining
    /// forward error (Higham & Mary 2022; same criterion as LAPACK's
    /// `dsgesv`).
    pub tol_factor: f64,
}

impl Default for RefineOptions {
    fn default() -> Self {
        RefineOptions {
            max_iters: 40,
            tol_factor: 4.0,
        }
    }
}

/// Refinement outcome. `residual_norms[k]` is `||b − A·x_k||_inf`
/// (extended-precision residual, rounded to `f64`) *before* correction
/// step `k`; the final entry is the converged/last residual, so the vector
/// has `iterations + 1` entries.
#[derive(Debug, Clone)]
pub struct Refinement {
    pub x: Vec<f64>,
    pub residual_norms: Vec<f64>,
    pub iterations: usize,
    pub converged: bool,
}

/// Residual `r = b − A·x` with every row dot product accumulated in
/// `MultiFloat<f64, N>`, rounded to `f64` on return.
pub fn residual_extended<const N: usize>(a: &MatrixF64, b: &[f64], x: &[f64]) -> Vec<f64>
where
    MultiFloat<f64, N>: mf_blas::Scalar,
{
    let n = b.len();
    let xe: Vec<MultiFloat<f64, N>> = x.iter().map(|&v| MultiFloat::from(v)).collect();
    let mut row = vec![MultiFloat::<f64, N>::ZERO; a.cols];
    let mut r = Vec::with_capacity(n);
    for i in 0..n {
        for (dst, &src) in row.iter_mut().zip(a.row(i)) {
            *dst = MultiFloat::from(src);
        }
        let ax = kernels::dot(&row, &xe);
        r.push(MultiFloat::<f64, N>::from(b[i]).sub(ax).to_f64());
    }
    r
}

/// Solve `A x = b` by `f64` LU + mixed-precision iterative refinement with
/// `MultiFloat<f64, N>` residuals. `N = 1` degrades to plain `f64`
/// refinement (useful as the ablation baseline); `N = 2` (quad) already
/// recovers working-precision solutions at condition numbers ~1e12–1e14,
/// `N = 4` (octuple) at ~1e16.
pub fn refine_lu<const N: usize>(
    a: &MatrixF64,
    b: &[f64],
    opts: RefineOptions,
) -> Result<Refinement, SolveError>
where
    MultiFloat<f64, N>: mf_blas::Scalar,
{
    let factors = lu_factor(a)?;
    refine_with_factors::<N>(a, &factors, b, opts)
}

/// Refinement against pre-computed factors (reuse one factorization across
/// many right-hand sides).
pub fn refine_with_factors<const N: usize>(
    a: &MatrixF64,
    factors: &LuFactors,
    b: &[f64],
    opts: RefineOptions,
) -> Result<Refinement, SolveError>
where
    MultiFloat<f64, N>: mf_blas::Scalar,
{
    if a.rows != b.len() {
        return Err(SolveError::Shape(format!(
            "refine: A is {}x{} but b has {} elements",
            a.rows,
            a.cols,
            b.len()
        )));
    }
    let n = a.rows;
    let mut x = factors.solve(b);
    let mut residual_norms = Vec::new();
    let mut converged = false;
    let mut iterations = 0;
    for _ in 0..opts.max_iters {
        let _sp = trace::span("solve.refine.step", n as u64);
        let r = residual_extended::<N>(a, b, &x);
        residual_norms.push(norm_inf(&r));
        let d = factors.solve(&r);
        for (xi, di) in x.iter_mut().zip(&d) {
            *xi += di;
        }
        iterations += 1;
        if norm_inf(&d) <= opts.tol_factor * f64::EPSILON * norm_inf(&x) {
            converged = true;
            break;
        }
    }
    // One final residual so the caller always sees iterations + 1 norms,
    // the last reflecting the returned x.
    let r = residual_extended::<N>(a, b, &x);
    residual_norms.push(norm_inf(&r));
    REFINE_ITERS.set(iterations as i64);
    Ok(Refinement {
        x,
        residual_norms,
        iterations,
        converged,
    })
}

// ---------------------------------------------------------------------------
// Adaptive refinement: ladder-driven residual precision
// ---------------------------------------------------------------------------

/// Residual-precision rungs for [`refine_adaptive`]. The refinement ladder
/// has one rung below the scalar engine's (`f64` — the classical
/// fixed-precision residual) and tops out at the exact `MpFloat` residual
/// instead of a rounded oracle evaluation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ResidualRung {
    /// Plain `f64` residual (no extended precision).
    #[default]
    F64,
    /// `MultiFloat<f64, 2>` residual (~107-bit).
    X2,
    /// `MultiFloat<f64, 3>` residual (~161-bit).
    X3,
    /// `MultiFloat<f64, 4>` residual (~215-bit).
    X4,
    /// Exact residual through [`MpFloat::exact_dot`] (one rounding to
    /// `f64` per entry).
    Exact,
}

impl ResidualRung {
    fn next(self) -> Self {
        match self {
            ResidualRung::F64 => ResidualRung::X2,
            ResidualRung::X2 => ResidualRung::X3,
            ResidualRung::X3 => ResidualRung::X4,
            _ => ResidualRung::Exact,
        }
    }

    /// Map the scalar engine's ladder cap onto residual rungs
    /// (`N2 → X2`, …, `Oracle → Exact`).
    pub fn from_cap(r: Rung) -> Self {
        match r {
            Rung::N2 => ResidualRung::X2,
            Rung::N3 => ResidualRung::X3,
            Rung::N4 => ResidualRung::X4,
            Rung::Oracle => ResidualRung::Exact,
        }
    }
}

impl std::fmt::Display for ResidualRung {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ResidualRung::F64 => "f64",
            ResidualRung::X2 => "F64x2",
            ResidualRung::X3 => "F64x3",
            ResidualRung::X4 => "F64x4",
            ResidualRung::Exact => "exact",
        })
    }
}

/// Outcome of [`refine_adaptive`]: a [`Refinement`] plus the escalation
/// trace.
#[derive(Debug, Clone)]
pub struct AdaptiveRefinement {
    pub x: Vec<f64>,
    /// `||b − A·x_k||_inf` before step `k` (at that step's rung), plus one
    /// final entry for the returned `x`.
    pub residual_norms: Vec<f64>,
    pub iterations: usize,
    pub converged: bool,
    /// Residual rung used by each step, in order (`rung_history[k]`
    /// produced `residual_norms[k]`).
    pub rung_history: Vec<ResidualRung>,
    /// Ladder climbs performed.
    pub escalations: u32,
}

impl AdaptiveRefinement {
    /// The rung the refinement settled on.
    pub fn final_rung(&self) -> ResidualRung {
        self.rung_history.last().copied().unwrap_or_default()
    }
}

/// Exact residual `r = b − A·x`, each entry one `MpFloat::exact_dot` with a
/// single rounding to `f64`.
fn residual_exact(a: &MatrixF64, b: &[f64], x: &[f64]) -> Vec<f64> {
    let mut ys: Vec<f64> = x.iter().map(|&v| -v).collect();
    ys.push(1.0);
    (0..b.len())
        .map(|i| {
            let mut xs = a.row(i).to_vec();
            xs.push(b[i]);
            MpFloat::exact_dot(&xs, &ys).to_f64()
        })
        .collect()
}

fn residual_at(a: &MatrixF64, b: &[f64], x: &[f64], rung: ResidualRung) -> Vec<f64> {
    match rung {
        ResidualRung::F64 => residual_extended::<1>(a, b, x),
        ResidualRung::X2 => residual_extended::<2>(a, b, x),
        ResidualRung::X3 => residual_extended::<3>(a, b, x),
        ResidualRung::X4 => residual_extended::<4>(a, b, x),
        ResidualRung::Exact => residual_exact(a, b, x),
    }
}

/// A correction shrinking by less than this factor per step means the
/// iteration is floored on residual precision, not still converging: with
/// an adequate residual the contraction ratio is `~cond(A)·ε` per step,
/// while at the precision floor consecutive corrections have the same
/// magnitude (random rounding noise).
const STALL_RATIO: f64 = 0.5;

/// Solve `A x = b` by `f64` LU + iterative refinement whose residual
/// precision climbs a ladder (`f64 → F64x2 → F64x3 → F64x4 → exact`)
/// instead of being fixed up front. Each step starts at the resident rung;
/// when the correction norm stalls ([`STALL_RATIO`]) before the
/// convergence test passes, the residual precision escalates one rung —
/// so well-conditioned systems never pay for extended precision, and
/// ill-conditioned ones climb exactly as high as their condition number
/// demands.
///
/// Only the `max_rung` knob of [`EscalationPolicy`] applies here (mapped
/// through [`ResidualRung::from_cap`]); the per-value residency and budget
/// knobs belong to the scalar engine.
pub fn refine_adaptive(
    a: &MatrixF64,
    b: &[f64],
    opts: RefineOptions,
    policy: &EscalationPolicy,
) -> Result<AdaptiveRefinement, SolveError> {
    let factors = lu_factor(a)?;
    refine_adaptive_with_factors(a, &factors, b, opts, policy)
}

/// [`refine_adaptive`] against pre-computed factors.
pub fn refine_adaptive_with_factors(
    a: &MatrixF64,
    factors: &LuFactors,
    b: &[f64],
    opts: RefineOptions,
    policy: &EscalationPolicy,
) -> Result<AdaptiveRefinement, SolveError> {
    if a.rows != b.len() {
        return Err(SolveError::Shape(format!(
            "refine_adaptive: A is {}x{} but b has {} elements",
            a.rows,
            a.cols,
            b.len()
        )));
    }
    let n = a.rows;
    let max_rung = ResidualRung::from_cap(policy.max_rung);
    let mut rung = ResidualRung::F64;
    let mut x = factors.solve(b);
    let mut residual_norms = Vec::new();
    let mut rung_history = Vec::new();
    let mut escalations = 0u32;
    let mut converged = false;
    let mut iterations = 0;
    // Correction norm of the previous step *at the current rung*; reset on
    // escalation so every rung gets one ungated step before being judged.
    let mut prev_d: Option<f64> = None;
    for _ in 0..opts.max_iters {
        let _sp = trace::span("solve.refine.adaptive.step", n as u64);
        let r = residual_at(a, b, &x, rung);
        residual_norms.push(norm_inf(&r));
        rung_history.push(rung);
        let d = factors.solve(&r);
        for (xi, di) in x.iter_mut().zip(&d) {
            *xi += di;
        }
        iterations += 1;
        let dnorm = norm_inf(&d);
        if dnorm <= opts.tol_factor * f64::EPSILON * norm_inf(&x) {
            converged = true;
            break;
        }
        if let Some(p) = prev_d {
            if dnorm > STALL_RATIO * p && rung < max_rung {
                rung = rung.next();
                escalations += 1;
                prev_d = None;
                continue;
            }
        }
        prev_d = Some(dnorm);
    }
    let r = residual_at(a, b, &x, rung);
    residual_norms.push(norm_inf(&r));
    REFINE_ITERS.set(iterations as i64);
    ADAPT_ESCALATIONS.add(u64::from(escalations));
    Ok(AdaptiveRefinement {
        x,
        residual_norms,
        iterations,
        converged,
        rung_history,
        escalations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{hilbert, matrix_norm_inf};
    use mf_mpsoft::MpFloat;

    /// Right-hand side `b = H * ones` with every entry computed through
    /// the exact MpFloat dot oracle, rounded once to `f64` — the ground
    /// truth is solid even where the matrix is nearly singular.
    fn hilbert_rhs_ones(h: &MatrixF64) -> Vec<f64> {
        let ones = vec![1.0f64; h.cols];
        (0..h.rows)
            .map(|i| MpFloat::exact_dot(h.row(i), &ones).to_f64())
            .collect()
    }

    const ORACLE_PREC: u32 = 512;

    /// Oracle solve of the *stored* `f64` system at 512-bit precision.
    /// This is the right reference: rounding `b = H·ones` to `f64` already
    /// perturbs the true solution of the stored system away from `ones` by
    /// ~`cond(H)·eps` (O(1) at n = 12!), so refinement must be judged
    /// against the exact solution of what it was actually given, not
    /// against `ones`. Hilbert matrices are SPD, so elimination without
    /// pivoting is fine at this precision.
    fn oracle_solve(h: &MatrixF64, b: &[f64]) -> Vec<f64> {
        let (n, p) = (h.rows, ORACLE_PREC);
        let mut m: Vec<Vec<MpFloat>> = (0..n)
            .map(|i| {
                h.row(i)
                    .iter()
                    .chain(std::iter::once(&b[i]))
                    .map(|&v| MpFloat::from_f64(v, p))
                    .collect()
            })
            .collect();
        for k in 0..n {
            let pivot_row = m[k].clone();
            for row in m.iter_mut().skip(k + 1) {
                let f = row[k].div(&pivot_row[k], p);
                for (dst, src) in row.iter_mut().zip(&pivot_row).skip(k) {
                    *dst = dst.sub(&f.mul(src, p), p);
                }
            }
        }
        let mut xs: Vec<MpFloat> = vec![MpFloat::zero(p); n];
        for i in (0..n).rev() {
            let mut acc = m[i][n].clone();
            for j in i + 1..n {
                acc = acc.sub(&m[i][j].mul(&xs[j], p), p);
            }
            xs[i] = acc.div(&m[i][i], p);
        }
        xs.iter().map(|v| v.to_f64()).collect()
    }

    fn ferr_vs(x: &[f64], x_ref: &[f64]) -> f64 {
        x.iter()
            .zip(x_ref)
            .fold(0.0f64, |m, (&xi, &ri)| m.max((xi - ri).abs()))
    }

    /// Exact residual norm via MpFloat: `||b − H·x||_inf` with the dot
    /// products computed exactly (r_i = exact_dot([row, b_i], [-x, 1])).
    fn exact_residual_norm(h: &MatrixF64, b: &[f64], x: &[f64]) -> f64 {
        let mut worst = 0.0f64;
        for i in 0..h.rows {
            let mut xs = h.row(i).to_vec();
            xs.push(b[i]);
            let mut ys: Vec<f64> = x.iter().map(|&v| -v).collect();
            ys.push(1.0);
            worst = worst.max(MpFloat::exact_dot(&xs, &ys).to_f64().abs());
        }
        worst
    }

    /// The headline claim (paper §1, Higham & Mary 2022): on Hilbert
    /// systems with condition numbers up to ~1e16, F64x4-residual
    /// refinement converges to the residual bound — verified against the
    /// exact MpFloat oracle, not against the refinement's own arithmetic —
    /// and recovers the solution to near machine accuracy, while the
    /// factorization alone is orders of magnitude off.
    #[test]
    fn refine_converges_to_f64x4_residual_bound_on_hilbert_vs_oracle() {
        for n in [8usize, 10, 12] {
            let h = hilbert(n);
            let b = hilbert_rhs_ones(&h);
            let out = refine_lu::<4>(&h, &b, RefineOptions::default()).unwrap();
            assert!(
                out.converged,
                "n={n}: did not converge: {:?}",
                out.residual_norms
            );

            // Forward error vs the 512-bit oracle solution of the stored
            // system: refinement reaches near machine accuracy where the
            // plain LU solve is off by ~cond(H)*eps (≈1e-6 at n=8, O(1) at
            // n=12).
            let x_ref = oracle_solve(&h, &b);
            let ferr = ferr_vs(&out.x, &x_ref);
            let xnorm = norm_inf(&x_ref);
            assert!(
                ferr <= 1e-12 * xnorm,
                "n={n}: forward error {ferr:e} (||x|| = {xnorm:e})"
            );
            let plain = lu_factor(&h).unwrap().solve(&b);
            let plain_err = ferr_vs(&plain, &x_ref);
            assert!(
                plain_err > 100.0 * ferr.max(1e-15),
                "n={n}: refinement should beat plain LU ({plain_err:e} vs {ferr:e})"
            );

            // Residual bound, judged by the *oracle*: the true residual of
            // the refined x sits at the scaled backward-error level the
            // F64x4 residual reported, not above it.
            let r_exact = exact_residual_norm(&h, &b, &out.x);
            let scale = matrix_norm_inf(&h) * norm_inf(&out.x) + norm_inf(&b);
            let bound = RefineOptions::default().tol_factor * n as f64 * f64::EPSILON * scale;
            assert!(
                r_exact <= bound,
                "n={n}: exact residual {r_exact:e} above bound {bound:e}"
            );
            // And the F64x4 residual agreed with the oracle when it
            // declared convergence (same bound, so they can differ by at
            // most rounding in the extended dot).
            let reported = *out.residual_norms.last().unwrap();
            assert!(
                (reported - r_exact).abs() <= 1e-3 * r_exact.max(f64::EPSILON * scale),
                "n={n}: reported {reported:e} vs exact {r_exact:e}"
            );

            // Residual norms decrease until convergence.
            for w in out.residual_norms.windows(2) {
                assert!(
                    w[1] <= w[0] * 0.9 || w[1] <= bound,
                    "n={n}: non-decreasing residuals {:?}",
                    out.residual_norms
                );
            }
        }
    }

    /// F64x2 residuals suffice at moderate conditioning, and the f64
    /// (`N = 1`) baseline stalls at the condition-number floor where the
    /// extended residual does not — the mixed-precision ablation.
    #[test]
    fn residual_precision_ablation() {
        let n = 10;
        let h = hilbert(n);
        let b = hilbert_rhs_ones(&h);
        let x_ref = oracle_solve(&h, &b);
        let x2 = refine_lu::<2>(&h, &b, RefineOptions::default()).unwrap();
        assert!(x2.converged, "F64x2 at cond ~1e13 must converge");
        let ferr2 = ferr_vs(&x2.x, &x_ref);
        assert!(ferr2 <= 1e-12, "F64x2 forward error {ferr2:e}");

        let x1 = refine_lu::<1>(
            &h,
            &b,
            RefineOptions {
                max_iters: 10,
                ..Default::default()
            },
        )
        .unwrap();
        let ferr1 = ferr_vs(&x1.x, &x_ref);
        assert!(
            ferr1 > 100.0 * ferr2.max(1e-15),
            "f64 residual should stall ({ferr1:e}) vs F64x2 ({ferr2:e})"
        );
    }

    #[test]
    fn residual_extended_matches_oracle_rounding() {
        let n = 9;
        let h = hilbert(n);
        let b = hilbert_rhs_ones(&h);
        let x: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64) * 1e-9).collect();
        let r4 = residual_extended::<4>(&h, &b, &x);
        for i in 0..n {
            let mut xs = h.row(i).to_vec();
            xs.push(b[i]);
            let mut ys: Vec<f64> = x.iter().map(|&v| -v).collect();
            ys.push(1.0);
            let exact = MpFloat::exact_dot(&xs, &ys).to_f64();
            let tol = 1e-3 * exact.abs().max(1e-300);
            assert!(
                (r4[i] - exact).abs() <= tol,
                "row {i}: {:-e} vs {exact:e}",
                r4[i]
            );
        }
    }

    #[test]
    fn refine_reuses_factors_across_rhs() {
        let n = 8;
        let h = hilbert(n);
        let f = lu_factor(&h).unwrap();
        let b1 = hilbert_rhs_ones(&h);
        let x_ref = oracle_solve(&h, &b1);
        // Power-of-two scalings of b are exact in f64, so the stored
        // system's solution scales exactly too.
        for scale in [1.0f64, -2.0, 0.5] {
            let b: Vec<f64> = b1.iter().map(|v| v * scale).collect();
            let out = refine_with_factors::<4>(&h, &f, &b, RefineOptions::default()).unwrap();
            assert!(out.converged);
            for (xi, ri) in out.x.iter().zip(&x_ref) {
                assert!((xi - scale * ri).abs() <= 1e-12, "{xi} vs {}", scale * ri);
            }
        }
    }

    #[test]
    fn refine_shape_mismatch() {
        let h = hilbert(4);
        let b = vec![1.0; 5];
        assert!(matches!(
            refine_lu::<2>(&h, &b, RefineOptions::default()),
            Err(SolveError::Shape(_))
        ));
    }

    #[test]
    fn refine_singular_matrix_reports() {
        let a = MatrixF64::zeros(3, 3);
        assert!(matches!(
            refine_lu::<2>(&a, &[1.0, 2.0, 3.0], RefineOptions::default()),
            Err(SolveError::SingularPivot { .. })
        ));
    }

    /// The ladder's reason to exist: on an ill-conditioned system the
    /// `f64`-residual base rung stalls at the condition-number floor (the
    /// `residual_precision_ablation` fact), the stall detector climbs, and
    /// the final solution matches the exact oracle to near machine
    /// accuracy — same quality the fixed `N = 4` refinement reaches.
    #[test]
    fn adaptive_escalates_past_f64_stall_and_converges() {
        let n = 10;
        let h = hilbert(n);
        let b = hilbert_rhs_ones(&h);
        let out = refine_adaptive(
            &h,
            &b,
            RefineOptions::default(),
            &EscalationPolicy::default(),
        )
        .unwrap();
        assert!(out.converged, "norms: {:?}", out.residual_norms);
        assert_eq!(
            out.rung_history[0],
            ResidualRung::F64,
            "starts at base rung"
        );
        assert!(
            out.escalations >= 1,
            "cond ~1e13 must defeat the f64 residual (history: {:?})",
            out.rung_history
        );
        assert!(out.final_rung() >= ResidualRung::X2);
        let x_ref = oracle_solve(&h, &b);
        let ferr = ferr_vs(&out.x, &x_ref);
        assert!(ferr <= 1e-12 * norm_inf(&x_ref), "forward error {ferr:e}");
    }

    /// Well-conditioned systems converge on the free `f64` rung — zero
    /// escalations, zero extended-precision work.
    #[test]
    fn adaptive_stays_on_f64_for_well_conditioned_systems() {
        let n = 8;
        let a = MatrixF64::from_fn(n, n, |i, j| {
            if i == j {
                4.0
            } else {
                1.0 / ((i + j + 1) as f64)
            }
        });
        let b: Vec<f64> = (0..n).map(|i| 1.0 + 0.25 * i as f64).collect();
        let out = refine_adaptive(
            &a,
            &b,
            RefineOptions::default(),
            &EscalationPolicy::default(),
        )
        .unwrap();
        assert!(out.converged);
        assert_eq!(out.escalations, 0, "history: {:?}", out.rung_history);
        assert!(out.rung_history.iter().all(|&r| r == ResidualRung::F64));
    }

    /// `max_rung` caps the climb exactly as in the scalar engine.
    #[test]
    fn adaptive_respects_max_rung_cap() {
        let n = 10;
        let h = hilbert(n);
        let b = hilbert_rhs_ones(&h);
        let capped = EscalationPolicy {
            max_rung: mf_core::Rung::N2,
            ..EscalationPolicy::default()
        };
        let out = refine_adaptive(&h, &b, RefineOptions::default(), &capped).unwrap();
        assert!(
            out.rung_history.iter().all(|&r| r <= ResidualRung::X2),
            "history: {:?}",
            out.rung_history
        );
        // F64x2 suffices at cond ~1e13 (the ablation fact), so the capped
        // ladder still converges.
        assert!(out.converged);
        let x_ref = oracle_solve(&h, &b);
        assert!(ferr_vs(&out.x, &x_ref) <= 1e-12);
    }

    /// On the hardest tier-1 problem (n = 12, cond ~1e16) the adaptive
    /// ladder reaches the same quality as the fixed F64x4 refinement.
    #[test]
    fn adaptive_matches_fixed_n4_quality_on_hard_hilbert() {
        let n = 12;
        let h = hilbert(n);
        let b = hilbert_rhs_ones(&h);
        let adaptive = refine_adaptive(
            &h,
            &b,
            RefineOptions::default(),
            &EscalationPolicy::default(),
        )
        .unwrap();
        assert!(adaptive.converged, "norms: {:?}", adaptive.residual_norms);
        let fixed = refine_lu::<4>(&h, &b, RefineOptions::default()).unwrap();
        let x_ref = oracle_solve(&h, &b);
        let ferr_a = ferr_vs(&adaptive.x, &x_ref);
        let ferr_f = ferr_vs(&fixed.x, &x_ref);
        let xnorm = norm_inf(&x_ref);
        assert!(ferr_a <= 1e-12 * xnorm, "adaptive {ferr_a:e}");
        assert!(
            ferr_a <= 10.0 * ferr_f.max(1e-15 * xnorm),
            "adaptive {ferr_a:e} vs fixed {ferr_f:e}"
        );
    }

    #[test]
    fn adaptive_shape_mismatch() {
        let h = hilbert(4);
        assert!(matches!(
            refine_adaptive(
                &h,
                &[1.0; 5],
                RefineOptions::default(),
                &EscalationPolicy::default()
            ),
            Err(SolveError::Shape(_))
        ));
    }

    #[test]
    fn residual_rung_display_and_cap_mapping() {
        assert_eq!(ResidualRung::F64.to_string(), "f64");
        assert_eq!(ResidualRung::Exact.to_string(), "exact");
        assert_eq!(ResidualRung::from_cap(mf_core::Rung::N3), ResidualRung::X3);
        assert_eq!(
            ResidualRung::from_cap(mf_core::Rung::Oracle),
            ResidualRung::Exact
        );
        assert!(ResidualRung::F64 < ResidualRung::X2);
        assert_eq!(ResidualRung::Exact.next(), ResidualRung::Exact);
    }
}
