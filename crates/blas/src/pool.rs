//! Persistent worker pool for the parallel BLAS dispatch.
//!
//! The scoped-spawn dispatch in [`crate::parallel`] creates fresh OS
//! threads on **every** kernel call; at small and mid vector lengths that
//! per-dispatch thread creation dominates the kernel itself (tens of
//! microseconds against a sub-microsecond AXPY). This module amortizes the
//! scheduling cost across calls with a lazily-initialized, process-wide
//! pool of workers that park between dispatches:
//!
//! * **Sizing** — `MF_BLAS_THREADS` workers (via
//!   [`crate::parallel::default_threads`]), re-checked on every dispatch:
//!   raising the value spawns workers, lowering it retires the excess the
//!   next time they wake (see [`reconfigure`]). Tests that flip the
//!   variable get a pool that follows it.
//! * **Queue protocol** — a mutex-guarded `VecDeque` of jobs plus one
//!   condvar. A job stays at the front of the queue while it still has
//!   chunks to hand out; workers (and the dispatching caller) claim chunk
//!   *indices* from the job's shared atomic cursor rather than owning a
//!   fixed range, so a straggling worker costs at most one chunk of
//!   imbalance and fast workers rebalance the rest.
//! * **Caller helps** — the dispatching thread executes chunks alongside
//!   the workers and only then blocks on the job's completion condvar.
//!   This is the no-deadlock guarantee: a dispatch completes even with
//!   zero free workers, so *nested* parallel calls (a kernel dispatched
//!   from inside another kernel's chunk) oversubscribe gracefully instead
//!   of deadlocking.
//! * **Panic containment** — chunk closures from `parallel.rs` catch their
//!   own panics (that layer's degrade-to-serial semantics); the pool
//!   additionally wraps every chunk in a defensive `catch_unwind` so a
//!   contract violation can never take a worker down or wedge a job.
//! * **Shutdown ordering** — [`shutdown`] marks the pool, wakes every
//!   worker, and blocks until each has decremented the live-worker count
//!   and exited. Workers exit at their next scheduling point (in-flight
//!   chunks complete; unclaimed chunks of queued jobs are drained by
//!   their dispatchers, which always help). The next dispatch lazily
//!   restarts the pool.
//!
//! The scoped-spawn path remains selectable with `MF_BLAS_POOL=off` for
//! A/B measurement (see the `pardispatch` bench binary and the
//! `pool_dispatch` criterion ablation).
//!
//! Telemetry (feature-gated, no-ops otherwise): `pool.jobs` counts
//! dispatches through the pool, `pool.park`/`pool.unpark` count worker
//! sleep/wake transitions, and the `pool.queue_wait` section sketches the
//! latency from job publication to its first claimed chunk. Live gauges for
//! the observability hub: `pool.queue_depth` (jobs with unclaimed chunks),
//! `pool.workers_live` (spawned and not retired), `pool.workers_busy`
//! (currently executing chunks), `pool.jobs_inflight` (dispatches between
//! publication and completion, nested dispatches included).

use mf_telemetry::{Counter, Gauge, Section};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

static POOL_JOBS: Counter = Counter::new("pool.jobs");
static POOL_PARK: Counter = Counter::new("pool.park");
static POOL_UNPARK: Counter = Counter::new("pool.unpark");
static POOL_TASK_PANICS: Counter = Counter::new("pool.task_panics");
static POOL_QUEUE_WAIT: Section = Section::new("pool.queue_wait");
static POOL_QUEUE_DEPTH: Gauge = Gauge::new("pool.queue_depth");
static POOL_WORKERS_LIVE: Gauge = Gauge::new("pool.workers_live");
static POOL_WORKERS_BUSY: Gauge = Gauge::new("pool.workers_busy");
static POOL_JOBS_INFLIGHT: Gauge = Gauge::new("pool.jobs_inflight");

/// Whether the pool path is selected: `MF_BLAS_POOL` unset or anything
/// but `off`/`0` uses the pool; `off` (or `0`) restores the scoped-spawn
/// dispatch for A/B measurement.
pub fn enabled() -> bool {
    match std::env::var("MF_BLAS_POOL") {
        Ok(v) => {
            let v = v.trim();
            v != "off" && v != "0"
        }
        Err(_) => true,
    }
}

/// One dispatched job: a type-erased chunk runner plus the shared cursor
/// workers claim chunk indices from.
struct Job {
    /// The chunk runner. Lifetime-erased: the dispatcher blocks in
    /// [`run`] until `remaining` reaches zero, so the borrow it erased
    /// outlives every use (workers never touch `task` after completing
    /// their last claimed chunk).
    task: &'static (dyn Fn(usize) + Sync),
    nchunks: usize,
    /// Next chunk index to claim; values >= `nchunks` mean "exhausted".
    cursor: AtomicUsize,
    /// Chunks not yet finished; guarded so `done` waits can't miss the
    /// final decrement.
    remaining: Mutex<usize>,
    done: Condvar,
    /// First-claim latch for the `pool.queue_wait` sketch.
    claimed: AtomicBool,
    enqueued: Instant,
}

impl Job {
    /// Claim and execute chunks until the cursor is exhausted.
    fn execute(&self) {
        loop {
            let i = self.cursor.fetch_add(1, Relaxed);
            if i >= self.nchunks {
                return;
            }
            if mf_telemetry::ENABLED && !self.claimed.swap(true, Relaxed) {
                let ns = self.enqueued.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                POOL_QUEUE_WAIT.add_ns(ns);
            }
            // Defensive: parallel.rs chunk closures catch their own panics
            // (degrade-to-serial); a violation of that contract must not
            // kill a pool worker or leave `remaining` stuck above zero.
            if catch_unwind(AssertUnwindSafe(|| (self.task)(i))).is_err() {
                POOL_TASK_PANICS.incr();
            }
            let mut rem = self.remaining.lock().unwrap_or_else(|e| e.into_inner());
            *rem -= 1;
            if *rem == 0 {
                self.done.notify_all();
            }
        }
    }

    /// Block until every chunk has finished (the caller has already helped
    /// drain the cursor).
    fn wait(&self) {
        let mut rem = self.remaining.lock().unwrap_or_else(|e| e.into_inner());
        while *rem > 0 {
            rem = self.done.wait(rem).unwrap_or_else(|e| e.into_inner());
        }
    }
}

// SAFETY: `task` is only dereferenced between a successful cursor claim
// and the matching `remaining` decrement; the dispatcher keeps the
// underlying closure alive until `remaining == 0` (observed under the
// job mutex in `wait`), and the closure itself is `Sync`.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

struct State {
    queue: VecDeque<Arc<Job>>,
    /// Live worker threads.
    workers: usize,
    /// Desired worker threads (last `default_threads()` seen).
    target: usize,
    shutdown: bool,
}

struct Pool {
    state: Mutex<State>,
    /// Workers park here waiting for jobs (or shutdown/retire signals).
    work: Condvar,
    /// `shutdown` waits here for the live-worker count to reach zero.
    exited: Condvar,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            workers: 0,
            target: 0,
            shutdown: false,
        }),
        work: Condvar::new(),
        exited: Condvar::new(),
    })
}

fn lock_state() -> MutexGuard<'static, State> {
    pool().state.lock().unwrap_or_else(|e| e.into_inner())
}

/// Bring the live worker count toward `default_threads()`: spawn the
/// deficit now, signal any excess to retire on its next wake. Called under
/// the state lock on every dispatch, so a changed `MF_BLAS_THREADS` takes
/// effect on the next kernel call.
fn reconfigure(st: &mut MutexGuard<'_, State>) {
    if st.shutdown {
        // A dispatch racing a shutdown runs on the caller alone; the pool
        // restarts on the first dispatch after shutdown() returns.
        return;
    }
    let want = crate::parallel::default_threads();
    st.target = want;
    while st.workers < want {
        st.workers += 1;
        let spawned = std::thread::Builder::new()
            .name("mf-blas-pool".into())
            .spawn(worker_loop);
        if spawned.is_err() {
            // Could not create the thread; the caller still drains the
            // cursor itself, so the dispatch completes regardless.
            st.workers -= 1;
            break;
        }
    }
    // Shrinking: workers observe `workers > target` when they next hold
    // the lock and retire themselves (see worker_loop).
    POOL_WORKERS_LIVE.set(st.workers as i64);
}

fn worker_loop() {
    loop {
        let job = {
            let mut st = lock_state();
            loop {
                if st.shutdown || st.workers > st.target {
                    st.workers -= 1;
                    POOL_WORKERS_LIVE.set(st.workers as i64);
                    pool().exited.notify_all();
                    return;
                }
                // Drop jobs whose cursor is exhausted — their chunks are
                // all claimed (possibly still running; completion is the
                // dispatcher's business via Job::wait).
                while let Some(j) = st.queue.front() {
                    if j.cursor.load(Relaxed) >= j.nchunks {
                        st.queue.pop_front();
                    } else {
                        break;
                    }
                }
                POOL_QUEUE_DEPTH.set(st.queue.len() as i64);
                if let Some(j) = st.queue.front() {
                    break Arc::clone(j);
                }
                POOL_PARK.incr();
                st = pool().work.wait(st).unwrap_or_else(|e| e.into_inner());
                POOL_UNPARK.incr();
            }
        };
        POOL_WORKERS_BUSY.incr();
        job.execute();
        POOL_WORKERS_BUSY.decr();
    }
}

/// Execute `task(i)` for every chunk index `i in 0..nchunks` on the pool,
/// blocking until all chunks have finished. The calling thread claims
/// chunks alongside the workers, so the call completes (and nested calls
/// cannot deadlock) even when every worker is busy or the pool is sized
/// to zero. `task` must not unwind — chunk-level panic handling belongs
/// to the caller (see `parallel.rs`); a panic that leaks through is
/// swallowed defensively and counted in `pool.task_panics`.
pub(crate) fn run(nchunks: usize, task: &(dyn Fn(usize) + Sync)) {
    assert!(nchunks > 0, "pool::run needs at least one chunk");
    POOL_JOBS.incr();
    // SAFETY: see `Job::task` — the borrow is only erased to 'static
    // because this function does not return until every chunk completed.
    let task: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(task) };
    let job = Arc::new(Job {
        task,
        nchunks,
        cursor: AtomicUsize::new(0),
        remaining: Mutex::new(nchunks),
        done: Condvar::new(),
        claimed: AtomicBool::new(false),
        enqueued: Instant::now(),
    });
    POOL_JOBS_INFLIGHT.incr();
    {
        let mut st = lock_state();
        reconfigure(&mut st);
        st.queue.push_back(Arc::clone(&job));
        POOL_QUEUE_DEPTH.set(st.queue.len() as i64);
    }
    pool().work.notify_all();
    job.execute();
    job.wait();
    POOL_JOBS_INFLIGHT.decr();
}

/// Live pool workers (0 before the first dispatch or after [`shutdown`]).
pub fn worker_count() -> usize {
    lock_state().workers
}

/// Retire every worker and block until they have exited. Workers leave at
/// their next scheduling point — in-flight chunks complete, and unclaimed
/// chunks of still-queued jobs are drained by their dispatchers (which
/// always help). The pool restarts lazily on the next dispatch; calling
/// this with no live workers is a no-op.
pub fn shutdown() {
    let mut st = lock_state();
    st.shutdown = true;
    pool().work.notify_all();
    while st.workers > 0 {
        st = pool().exited.wait(st).unwrap_or_else(|e| e.into_inner());
    }
    st.shutdown = false;
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Pool tests reconfigure via MF_BLAS_THREADS and assert worker
    /// counts; serialize them against each other and against
    /// `parallel::tests::default_threads_env_override`.
    pub(crate) fn env_lock() -> MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn set_threads(n: usize) {
        std::env::set_var("MF_BLAS_THREADS", n.to_string());
    }

    #[test]
    fn all_chunks_run_exactly_once() {
        let _env = env_lock();
        set_threads(3);
        let hits: Vec<AtomicUsize> = (0..17).map(|_| AtomicUsize::new(0)).collect();
        run(hits.len(), &|i| {
            hits[i].fetch_add(1, Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Relaxed), 1, "chunk {i}");
        }
        std::env::remove_var("MF_BLAS_THREADS");
        shutdown();
    }

    #[test]
    fn single_chunk_and_zero_worker_pool_complete() {
        let _env = env_lock();
        // A pool sized below the chunk count (even 1 worker for 8 chunks)
        // completes because the caller drains the cursor itself.
        set_threads(1);
        let sum = AtomicU64::new(0);
        run(8, &|i| {
            sum.fetch_add(i as u64 + 1, Relaxed);
        });
        assert_eq!(sum.load(Relaxed), 36);
        // Degenerate single-chunk job (the zero-length kernel shape).
        let ran = AtomicUsize::new(0);
        run(1, &|_| {
            ran.fetch_add(1, Relaxed);
        });
        assert_eq!(ran.load(Relaxed), 1);
        std::env::remove_var("MF_BLAS_THREADS");
        shutdown();
    }

    #[test]
    fn nested_dispatch_does_not_deadlock() {
        let _env = env_lock();
        // 2 workers, 4 outer chunks each dispatching 4 inner chunks:
        // heavily oversubscribed. Caller-helps means every level drains.
        set_threads(2);
        let inner_hits = AtomicU64::new(0);
        run(4, &|_| {
            run(4, &|j| {
                inner_hits.fetch_add(1 + j as u64, Relaxed);
            });
        });
        assert_eq!(inner_hits.load(Relaxed), 4 * (1 + 2 + 3 + 4));
        std::env::remove_var("MF_BLAS_THREADS");
        shutdown();
    }

    #[test]
    fn reconfigures_when_thread_env_changes() {
        let _env = env_lock();
        set_threads(2);
        run(2, &|_| {});
        assert_eq!(worker_count(), 2);
        set_threads(4);
        run(2, &|_| {});
        assert_eq!(worker_count(), 4);
        // Shrink: excess workers retire on their next wake. The dispatch
        // sets the new target and notifies; poll for the count to settle.
        set_threads(1);
        run(2, &|_| {});
        for _ in 0..200 {
            if worker_count() <= 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert_eq!(worker_count(), 1, "excess workers must retire");
        std::env::remove_var("MF_BLAS_THREADS");
        shutdown();
    }

    #[test]
    fn panicking_task_then_shutdown_then_restart() {
        let _env = env_lock();
        set_threads(2);
        // A task that violates the no-unwind contract: the pool swallows
        // the panic (counted) and every chunk still completes.
        let survived = AtomicUsize::new(0);
        run(4, &|i| {
            survived.fetch_add(1, Relaxed);
            if i == 1 {
                panic!("pool contract violation (injected)");
            }
        });
        assert_eq!(survived.load(Relaxed), 4);

        // Shutdown blocks until the workers (one of which just caught a
        // panic) have all exited; nothing is wedged.
        shutdown();
        assert_eq!(worker_count(), 0);
        // Idempotent on an empty pool.
        shutdown();

        // The next dispatch restarts the pool lazily and still computes.
        let after = AtomicUsize::new(0);
        run(3, &|_| {
            after.fetch_add(1, Relaxed);
        });
        assert_eq!(after.load(Relaxed), 3);
        assert_eq!(worker_count(), 2);
        std::env::remove_var("MF_BLAS_THREADS");
        shutdown();
    }

    #[test]
    fn enabled_follows_env() {
        let _env = env_lock();
        std::env::remove_var("MF_BLAS_POOL");
        assert!(enabled(), "pool is the default dispatch mode");
        std::env::set_var("MF_BLAS_POOL", "off");
        assert!(!enabled());
        std::env::set_var("MF_BLAS_POOL", "0");
        assert!(!enabled());
        std::env::set_var("MF_BLAS_POOL", "on");
        assert!(enabled());
        std::env::remove_var("MF_BLAS_POOL");
    }

    /// Straggler rebalancing: with chunk-granular claiming, one slow chunk
    /// cannot serialize the rest — the other worker(s) and the caller
    /// drain every remaining chunk while it runs.
    #[test]
    fn slow_chunk_does_not_block_the_rest() {
        let _env = env_lock();
        set_threads(2);
        let done_before_slow = AtomicUsize::new(0);
        let slow_finished = AtomicBool::new(false);
        run(8, &|i| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(50));
                slow_finished.store(true, Relaxed);
            } else {
                if !slow_finished.load(Relaxed) {
                    done_before_slow.fetch_add(1, Relaxed);
                }
            }
        });
        // All 7 fast chunks normally finish during the slow one's sleep;
        // require at least one to keep the test robust on a loaded box.
        assert!(
            done_before_slow.load(Relaxed) >= 1,
            "fast chunks must proceed while a straggler runs"
        );
        std::env::remove_var("MF_BLAS_THREADS");
        shutdown();
    }
}
