//! Structure-of-arrays kernels for `MultiFloat` — the vectorization layout.
//!
//! An array of `MultiFloat<f64, N>` stores each element's `N` components
//! contiguously (AoS), so the machine loads of "component 0 of elements
//! i..i+8" are strided and the compiler often gives up on vectorizing the
//! FPAN arithmetic across elements. Storing each *component* in its own
//! array (SoA) makes every load unit-stride, and the branch-free FPAN
//! kernels then run 8 elements in lock-step — one AVX-512 register per
//! network wire. This is the paper's central performance mechanism (§1,
//! §5), and it is *only* available to branch-free algorithms: QD's and
//! CAMPARY's zero-tests and magnitude merges create lane-divergent control
//! flow, which is why their 3/4-term columns collapse in Figure 9.
//!
//! Each entry point dispatches between two realizations (measured in the
//! ablation benches): explicit lock-step execution via
//! [`crate::lanes::Lanes`] (always best for reductions; best for streaming
//! kernels at N <= 2) and an autovectorized scalar loop (best for
//! streaming kernels at N >= 3, where the lock-step live state spills the
//! register file).

use mf_core::{addition, multiplication, FloatBase, MultiFloat};

/// Accumulator lanes for reductions at expansion width `N`. More lanes
/// break the add-chain dependency further, but each lane keeps `N` partial
/// sums live; past ~16 live doubles the register file spills and the win
/// inverts (measured on AVX-512: N=2 wants 8 lanes, N=4 wants 4).
pub const fn lanes_for(n: usize) -> usize {
    match n {
        1 | 2 => 8,
        3 => 4,
        _ => 4,
    }
}

/// A vector of `MultiFloat<T, N>` in structure-of-arrays layout.
#[derive(Debug, Clone)]
pub struct SoaVec<T: FloatBase, const N: usize> {
    /// `comps[k][i]` is component `k` of element `i`.
    pub comps: Vec<Vec<T>>,
    len: usize,
}

impl<T: FloatBase, const N: usize> SoaVec<T, N> {
    pub fn zeros(len: usize) -> Self {
        SoaVec {
            comps: (0..N).map(|_| vec![T::ZERO; len]).collect(),
            len,
        }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn from_slice(xs: &[MultiFloat<T, N>]) -> Self {
        let mut out = Self::zeros(xs.len());
        for (i, x) in xs.iter().enumerate() {
            let c = x.components();
            for k in 0..N {
                out.comps[k][i] = c[k];
            }
        }
        out
    }

    pub fn get(&self, i: usize) -> MultiFloat<T, N> {
        let mut c = [T::ZERO; N];
        for k in 0..N {
            c[k] = self.comps[k][i];
        }
        MultiFloat::from_components(c)
    }

    pub fn set(&mut self, i: usize, v: MultiFloat<T, N>) {
        let c = v.components();
        for k in 0..N {
            self.comps[k][i] = c[k];
        }
    }

    pub fn to_vec(&self) -> Vec<MultiFloat<T, N>> {
        (0..self.len).map(|i| self.get(i)).collect()
    }
}

/// A row-major matrix of `MultiFloat<T, N>` in SoA layout.
#[derive(Debug, Clone)]
pub struct SoaMatrix<T: FloatBase, const N: usize> {
    pub comps: Vec<Vec<T>>,
    pub rows: usize,
    pub cols: usize,
}

impl<T: FloatBase, const N: usize> SoaMatrix<T, N> {
    pub fn zeros(rows: usize, cols: usize) -> Self {
        SoaMatrix {
            comps: (0..N).map(|_| vec![T::ZERO; rows * cols]).collect(),
            rows,
            cols,
        }
    }

    pub fn from_fn(
        rows: usize,
        cols: usize,
        mut f: impl FnMut(usize, usize) -> MultiFloat<T, N>,
    ) -> Self {
        let mut m = Self::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    pub fn get(&self, i: usize, j: usize) -> MultiFloat<T, N> {
        let mut c = [T::ZERO; N];
        for k in 0..N {
            c[k] = self.comps[k][i * self.cols + j];
        }
        MultiFloat::from_components(c)
    }

    pub fn set(&mut self, i: usize, j: usize, v: MultiFloat<T, N>) {
        let c = v.components();
        for k in 0..N {
            self.comps[k][i * self.cols + j] = c[k];
        }
    }
}

/// Borrow the component vectors as an array of equal-length slices
/// (hoists the `Vec` indirection and lets the optimizer elide per-element
/// bounds checks).
#[inline(always)]
fn slices<T: FloatBase, const N: usize>(comps: &[Vec<T>], lo: usize, hi: usize) -> [&[T]; N] {
    core::array::from_fn(|k| &comps[k][lo..hi])
}

#[inline(always)]
fn slices_mut<T: FloatBase, const N: usize>(
    comps: &mut [Vec<T>],
    lo: usize,
    hi: usize,
) -> [&mut [T]; N] {
    let mut it = comps.iter_mut();
    core::array::from_fn(|_| &mut it.next().unwrap()[lo..hi])
}

/// Expand one SoA entry point into the portable `*_body`, the AVX2+FMA
/// `#[target_feature]` instantiation, and the dispatching public wrapper —
/// the same pattern as the tiled GEMM path and the flat AoS kernels (see
/// `kernels::fma_dispatched`). The lock-step lane primitives and `dot_raw`
/// are all `#[inline(always)]`, so the whole hot loop lands inside the
/// feature-enabled frame and the EFT `mul_add`s lower to `vfmadd`; both
/// lowerings are correctly rounded, so results stay bit-identical.
macro_rules! fma_dispatched_soa {
    ($(#[$doc:meta])* pub fn $name:ident / $body:ident / $fma:ident
     ($($arg:ident: $ty:ty),* $(,)?) $(-> $ret:ty)? $code:block) => {
        #[inline(always)]
        fn $body<T: FloatBase, const N: usize>($($arg: $ty),*) $(-> $ret)? $code

        /// AVX2+FMA instantiation of the kernel body.
        ///
        /// # Safety
        ///
        /// Caller must ensure the `avx2` and `fma` CPU features are present.
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2,fma")]
        unsafe fn $fma<T: FloatBase, const N: usize>($($arg: $ty),*) $(-> $ret)? {
            $body::<T, N>($($arg),*)
        }

        $(#[$doc])*
        pub fn $name<T: FloatBase, const N: usize>($($arg: $ty),*) $(-> $ret)? {
            #[cfg(target_arch = "x86_64")]
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                // SAFETY: the required CPU features were just detected.
                return unsafe { $fma::<T, N>($($arg),*) };
            }
            $body::<T, N>($($arg),*)
        }
    };
}

fma_dispatched_soa! {
    /// `y <- alpha*x + y` over SoA vectors. The loop body is branch-free
    /// straight-line FPAN code; with unit-stride loads LLVM vectorizes it
    /// across `i`.
    pub fn axpy / axpy_body / axpy_fma(
        alpha: MultiFloat<T, N>,
        x: &SoaVec<T, N>,
        y: &mut SoaVec<T, N>,
    ) {
        assert_eq!(x.len(), y.len());
        let n = x.len();
        // Streaming kernels: lock-step wins at N <= 2; at N >= 3 the lane
        // state spills registers and the autovectorized form is faster
        // (measured; see EXPERIMENTS.md ablations).
        if N <= 2 {
            crate::lanes::axpy_lockstep::<T, N>(alpha, &x.comps, &mut y.comps, n);
        } else {
            axpy_autovec_body(alpha, x, y);
        }
    }
}

fma_dispatched_soa! {
    /// Autovectorized AXPY variant, kept for the ablation benchmark.
    pub fn axpy_autovec / axpy_autovec_body / axpy_autovec_fma(
        alpha: MultiFloat<T, N>,
        x: &SoaVec<T, N>,
        y: &mut SoaVec<T, N>,
    ) {
        assert_eq!(x.len(), y.len());
        let a = alpha.components();
        let n = x.len();
        let xs: [&[T]; N] = slices(&x.comps, 0, n);
        let ys: [&mut [T]; N] = slices_mut(&mut y.comps, 0, n);
        for i in 0..n {
            let xi: [T; N] = core::array::from_fn(|k| xs[k][i]);
            let yi: [T; N] = core::array::from_fn(|k| ys[k][i]);
            let p = multiplication::mul(&a, &xi);
            let s = addition::add(&p, &yi);
            for k in 0..N {
                ys[k][i] = s[k];
            }
        }
    }
}

fma_dispatched_soa! {
    /// Dot product with [`lanes_for`]`(N)` independent accumulators (SIMD reduction).
    pub fn dot / dot_body / dot_fma(
        x: &SoaVec<T, N>,
        y: &SoaVec<T, N>,
    ) -> MultiFloat<T, N> {
        assert_eq!(x.len(), y.len());
        dot_raw::<T, N>(&x.comps, 0, &y.comps, 0, x.len())
    }
}

/// Reduction core shared by `dot` and `gemv`, operating on component
/// slices beginning at the given offsets.
#[inline(always)]
fn dot_raw<T: FloatBase, const N: usize>(
    xc: &[Vec<T>],
    xoff: usize,
    yc: &[Vec<T>],
    yoff: usize,
    n: usize,
) -> MultiFloat<T, N> {
    // Lock-step lane execution beats the autovectorized form at every
    // width on AVX-512 (see EXPERIMENTS.md ablations).
    crate::lanes::dot_lockstep::<T, N>(xc, xoff, yc, yoff, n)
}

fma_dispatched_soa! {
    /// Autovectorized reduction variant, kept for the SoA-vs-lockstep ablation
    /// benchmark.
    pub fn dot_autovec / dot_autovec_body / dot_autovec_fma(
        x: &SoaVec<T, N>,
        y: &SoaVec<T, N>,
    ) -> MultiFloat<T, N> {
        assert_eq!(x.len(), y.len());
        let n = x.len();
        match lanes_for(N) {
            8 => dot_lanes::<T, N, 8>(&x.comps, 0, &y.comps, 0, n),
            4 => dot_lanes::<T, N, 4>(&x.comps, 0, &y.comps, 0, n),
            _ => dot_lanes::<T, N, 2>(&x.comps, 0, &y.comps, 0, n),
        }
    }
}

#[inline(always)]
fn dot_lanes<T: FloatBase, const N: usize, const L: usize>(
    xc: &[Vec<T>],
    xoff: usize,
    yc: &[Vec<T>],
    yoff: usize,
    n: usize,
) -> MultiFloat<T, N> {
    let xs: [&[T]; N] = slices(xc, xoff, xoff + n);
    let ys: [&[T]; N] = slices(yc, yoff, yoff + n);
    let mut acc = [[T::ZERO; N]; L];
    let chunks = n / L;
    for c in 0..chunks {
        let base = c * L;
        for l in 0..L {
            let xi: [T; N] = core::array::from_fn(|k| xs[k][base + l]);
            let yi: [T; N] = core::array::from_fn(|k| ys[k][base + l]);
            let p = multiplication::mul(&xi, &yi);
            acc[l] = addition::add(&acc[l], &p);
        }
    }
    for i in chunks * L..n {
        let xi: [T; N] = core::array::from_fn(|k| xs[k][i]);
        let yi: [T; N] = core::array::from_fn(|k| ys[k][i]);
        let p = multiplication::mul(&xi, &yi);
        acc[0] = addition::add(&acc[0], &p);
    }
    // Tree-reduce the lanes (ceil-half pairing so non-power-of-two L
    // would be covered too — see the same fix in `lanes::dot_lockstep_l`).
    let mut width = L;
    while width > 1 {
        let half = width.div_ceil(2);
        for l in 0..width / 2 {
            acc[l] = addition::add(&acc[l], &acc[l + half]);
        }
        width = half;
    }
    MultiFloat::from_components(acc[0])
}

fma_dispatched_soa! {
    /// `y <- alpha*A*x + beta*y`, `ij` order, SoA layout.
    pub fn gemv / gemv_body / gemv_fma(
        alpha: MultiFloat<T, N>,
        a: &SoaMatrix<T, N>,
        x: &SoaVec<T, N>,
        beta: MultiFloat<T, N>,
        y: &mut SoaVec<T, N>,
    ) {
        assert_eq!(a.cols, x.len());
        assert_eq!(a.rows, y.len());
        // beta == 0 overwrites y without reading it (standard BLAS semantics;
        // matches the AoS kernels' fix — no NaN propagation from garbage y).
        if beta.is_zero() {
            for i in 0..a.rows {
                let row = dot_raw::<T, N>(&a.comps, i * a.cols, &x.comps, 0, a.cols);
                y.set(i, alpha.mul(row));
            }
        } else {
            for i in 0..a.rows {
                let row = dot_raw::<T, N>(&a.comps, i * a.cols, &x.comps, 0, a.cols);
                let yi = y.get(i);
                y.set(i, beta.mul(yi).add(alpha.mul(row)));
            }
        }
    }
}

fma_dispatched_soa! {
    /// `C <- alpha*A*B + beta*C`, `ikj` order, SoA layout (the inner `j` loop
    /// is the vectorized one).
    pub fn gemm / gemm_body / gemm_fma(
        alpha: MultiFloat<T, N>,
        a: &SoaMatrix<T, N>,
        b: &SoaMatrix<T, N>,
        beta: MultiFloat<T, N>,
        c: &mut SoaMatrix<T, N>,
    ) {
        assert_eq!(a.cols, b.rows);
        assert_eq!(c.rows, a.rows);
        assert_eq!(c.cols, b.cols);
        let n = b.cols;
        // Scale C by beta; beta == 0 overwrites (no read of possibly-garbage C).
        if beta.is_zero() {
            for comp in c.comps.iter_mut() {
                for v in comp.iter_mut() {
                    *v = T::ZERO;
                }
            }
        } else {
            for i in 0..c.rows {
                for j in 0..n {
                    let v = c.get(i, j);
                    c.set(i, j, beta.mul(v));
                }
            }
        }
        for i in 0..a.rows {
            let cbase = i * n;
            for k in 0..a.cols {
                let aik = alpha.mul(a.get(i, k));
                if N <= 2 {
                    crate::lanes::axpy_lockstep_at::<T, N>(
                        aik,
                        &b.comps,
                        k * n,
                        &mut c.comps,
                        cbase,
                        n,
                    );
                } else {
                    let aikc = aik.components();
                    let bs: [&[T]; N] = slices(&b.comps, k * n, k * n + n);
                    let cs: [&mut [T]; N] = slices_mut(&mut c.comps, cbase, cbase + n);
                    for j in 0..n {
                        let bkj: [T; N] = core::array::from_fn(|q| bs[q][j]);
                        let cij: [T; N] = core::array::from_fn(|q| cs[q][j]);
                        let p = multiplication::mul(&aikc, &bkj);
                        let s = addition::add(&p, &cij);
                        for q in 0..N {
                            cs[q][j] = s[q];
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;
    use crate::Matrix;
    use mf_core::{F64x2, F64x4};
    use mf_mpsoft::MpFloat;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn rand_mf(rng: &mut SmallRng) -> F64x4 {
        F64x4::from(rng.gen_range(-1.0..1.0f64))
    }

    #[test]
    fn soa_roundtrip() {
        let mut rng = SmallRng::seed_from_u64(910);
        let xs: Vec<F64x4> = (0..37).map(|_| rand_mf(&mut rng)).collect();
        let soa = SoaVec::from_slice(&xs);
        let back = soa.to_vec();
        for (a, b) in xs.iter().zip(&back) {
            assert_eq!(a.components(), b.components());
        }
    }

    #[test]
    fn axpy_soa_matches_aos_bitwise() {
        let mut rng = SmallRng::seed_from_u64(911);
        let n = 103;
        let xs: Vec<F64x4> = (0..n).map(|_| rand_mf(&mut rng)).collect();
        let ys: Vec<F64x4> = (0..n).map(|_| rand_mf(&mut rng)).collect();
        let alpha = rand_mf(&mut rng);
        // AoS
        let mut y_aos = ys.clone();
        kernels::axpy(alpha, &xs, &mut y_aos);
        // SoA
        let x_soa = SoaVec::from_slice(&xs);
        let mut y_soa = SoaVec::from_slice(&ys);
        axpy(alpha, &x_soa, &mut y_soa);
        let y_back = y_soa.to_vec();
        for i in 0..n {
            assert_eq!(
                y_aos[i].components(),
                y_back[i].components(),
                "axpy must be element-wise identical (same op sequence)"
            );
        }
    }

    #[test]
    fn dot_soa_matches_oracle() {
        let mut rng = SmallRng::seed_from_u64(912);
        let n = 1000;
        let x64: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let y64: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let xs: Vec<F64x4> = x64.iter().map(|&v| F64x4::from(v)).collect();
        let ys: Vec<F64x4> = y64.iter().map(|&v| F64x4::from(v)).collect();
        let exact = MpFloat::exact_dot(&x64, &y64);
        let soa = dot(&SoaVec::from_slice(&xs), &SoaVec::from_slice(&ys));
        let err = soa.to_mp(400).rel_error_vs(&exact);
        assert!(err <= 2.0f64.powi(-190), "err 2^{:.1}", err.log2());
        // And agrees with the AoS kernel to the format's precision
        // (different association order, same accuracy class).
        let aos = kernels::dot(&xs, &ys);
        let d = soa.sub(aos).abs().to_f64();
        assert!(d <= 2.0f64.powi(-190) * exact.abs().to_f64().max(1e-300));
    }

    #[test]
    fn gemv_and_gemm_match_aos() {
        let mut rng = SmallRng::seed_from_u64(913);
        let (m, k, n) = (17, 13, 19);
        let a_el: Vec<Vec<F64x2>> = (0..m)
            .map(|_| {
                (0..k)
                    .map(|_| F64x2::from(rng.gen_range(-1.0..1.0f64)))
                    .collect()
            })
            .collect();
        let b_el: Vec<Vec<F64x2>> = (0..k)
            .map(|_| {
                (0..n)
                    .map(|_| F64x2::from(rng.gen_range(-1.0..1.0f64)))
                    .collect()
            })
            .collect();
        let alpha = F64x2::from(1.25);
        let beta = F64x2::from(0.5);

        // GEMM: AoS reference.
        let a_aos = Matrix::from_fn(m, k, |i, j| a_el[i][j]);
        let b_aos = Matrix::from_fn(k, n, |i, j| b_el[i][j]);
        let mut c_aos = Matrix::from_fn(m, n, |_, _| F64x2::from(0.125));
        kernels::gemm(alpha, &a_aos, &b_aos, beta, &mut c_aos);

        let a_soa = SoaMatrix::from_fn(m, k, |i, j| a_el[i][j]);
        let b_soa = SoaMatrix::from_fn(k, n, |i, j| b_el[i][j]);
        let mut c_soa = SoaMatrix::from_fn(m, n, |_, _| F64x2::from(0.125));
        gemm(alpha, &a_soa, &b_soa, beta, &mut c_soa);

        for i in 0..m {
            for j in 0..n {
                assert_eq!(
                    c_aos.at(i, j).components(),
                    c_soa.get(i, j).components(),
                    "gemm mismatch at ({i},{j})"
                );
            }
        }

        // GEMV: accuracy-level agreement (SoA uses the laned reduction).
        let x: Vec<F64x2> = (0..k)
            .map(|_| F64x2::from(rng.gen_range(-1.0..1.0)))
            .collect();
        let mut y_aos: Vec<F64x2> = (0..m).map(|_| F64x2::from(0.5)).collect();
        kernels::gemv(alpha, &a_aos, &x, beta, &mut y_aos);
        let x_soa = SoaVec::from_slice(&x);
        let mut y_soa = SoaVec::from_slice(&vec![F64x2::from(0.5); m]);
        gemv(alpha, &a_soa, &x_soa, beta, &mut y_soa);
        for i in 0..m {
            let d = y_aos[i].sub(y_soa.get(i)).abs().to_f64();
            assert!(d <= 1e-28, "gemv row {i}: d={d:e}");
        }
    }

    /// Same contract as the AoS kernels' dispatch test: the AVX2+FMA
    /// instantiation may not change a single bit vs the portable body.
    #[test]
    fn fma_dispatch_is_bit_identical_to_portable_body() {
        let mut rng = SmallRng::seed_from_u64(915);
        let n = 203;
        let xs: Vec<F64x4> = (0..n).map(|_| rand_mf(&mut rng)).collect();
        let ys: Vec<F64x4> = (0..n).map(|_| rand_mf(&mut rng)).collect();
        let x_soa = SoaVec::from_slice(&xs);
        let y_soa = SoaVec::from_slice(&ys);
        assert_eq!(
            dot(&x_soa, &y_soa).components(),
            dot_body(&x_soa, &y_soa).components()
        );
        assert_eq!(
            dot_autovec(&x_soa, &y_soa).components(),
            dot_autovec_body(&x_soa, &y_soa).components()
        );

        let alpha = rand_mf(&mut rng);
        let mut y_disp = SoaVec::from_slice(&ys);
        axpy(alpha, &x_soa, &mut y_disp);
        let mut y_body = SoaVec::from_slice(&ys);
        axpy_body(alpha, &x_soa, &mut y_body);
        for k in 0..4 {
            assert_eq!(y_disp.comps[k], y_body.comps[k], "axpy comp {k}");
        }

        let (m, kk, nn) = (9, 11, 7);
        let a = SoaMatrix::<f64, 2>::from_fn(m, kk, |i, j| {
            F64x2::from((i * kk + j) as f64 * 0.013 - 0.7)
        });
        let b = SoaMatrix::<f64, 2>::from_fn(kk, nn, |i, j| {
            F64x2::from((i * nn + j) as f64 * 0.017 - 0.6)
        });
        let al = F64x2::from(1.5);
        let be = F64x2::from(-0.25);
        let c0 = SoaMatrix::<f64, 2>::from_fn(m, nn, |i, j| F64x2::from((i + j) as f64 * 0.1));
        let mut c_disp = c0.clone();
        gemm(al, &a, &b, be, &mut c_disp);
        let mut c_body = c0.clone();
        gemm_body(al, &a, &b, be, &mut c_body);
        for k in 0..2 {
            assert_eq!(c_disp.comps[k], c_body.comps[k], "gemm comp {k}");
        }

        let xv = SoaVec::<f64, 2>::from_slice(
            &(0..kk)
                .map(|j| F64x2::from(j as f64 * 0.05 - 0.2))
                .collect::<Vec<_>>(),
        );
        let y0 = SoaVec::<f64, 2>::from_slice(&vec![F64x2::from(0.5); m]);
        let mut yv_disp = y0.clone();
        gemv(al, &a, &xv, be, &mut yv_disp);
        let mut yv_body = y0.clone();
        gemv_body(al, &a, &xv, be, &mut yv_body);
        for k in 0..2 {
            assert_eq!(yv_disp.comps[k], yv_body.comps[k], "gemv comp {k}");
        }
    }

    #[test]
    fn dot_handles_non_multiple_of_lanes() {
        let mut rng = SmallRng::seed_from_u64(914);
        for n in [0usize, 1, 7, 8, 9, 15, 16, 17, 63] {
            let x64: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let y64: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let xs: Vec<F64x2> = x64.iter().map(|&v| F64x2::from(v)).collect();
            let ys: Vec<F64x2> = y64.iter().map(|&v| F64x2::from(v)).collect();
            let got = dot(&SoaVec::from_slice(&xs), &SoaVec::from_slice(&ys)).to_f64();
            let exact = MpFloat::exact_dot(&x64, &y64).to_f64();
            assert!((got - exact).abs() <= 1e-13 * exact.abs().max(1.0), "n={n}");
        }
    }
}
