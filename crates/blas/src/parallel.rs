//! Thread-parallel kernel wrappers (`std::thread::scope`, chunked rows).
//!
//! The paper runs every kernel in thread-per-physical-core and
//! thread-per-logical-core configurations and reports the max. These
//! wrappers provide the same knob; on this reproduction's single-core
//! container they mostly measure overhead (recorded as such in
//! EXPERIMENTS.md, substitution T7), but the implementations are real and
//! scale on multi-core hosts.

use crate::{kernels, Matrix, Scalar};
use mf_telemetry::{Counter, Histogram};

static PAR_DISPATCHES: Counter = Counter::new("blas.parallel.dispatches");
static PAR_TASKS: Counter = Counter::new("blas.parallel.tasks");
static PAR_ROWS: Counter = Counter::new("blas.parallel.rows");
/// Per-dispatch work imbalance: largest minus smallest chunk (rows for
/// GEMV/GEMM, elements for AXPY/DOT). Nonzero buckets mean some threads
/// idle while others finish their remainder rows.
static PAR_CHUNK_IMBALANCE: Histogram = Histogram::new("blas.parallel.chunk_imbalance");

/// Record one parallel dispatch over `ranges` (one task per chunk).
#[inline]
fn record_dispatch(ranges: &[(usize, usize)]) {
    if !mf_telemetry::ENABLED {
        return;
    }
    PAR_DISPATCHES.incr();
    PAR_TASKS.add(ranges.len() as u64);
    let sizes = ranges.iter().map(|&(lo, hi)| hi - lo);
    PAR_ROWS.add(sizes.clone().sum::<usize>() as u64);
    let max = sizes.clone().max().unwrap_or(0);
    let min = sizes.min().unwrap_or(0);
    PAR_CHUNK_IMBALANCE.record((max - min) as u64);
}

/// Available worker count (1 on this container).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

fn chunk_ranges(len: usize, parts: usize) -> Vec<(usize, usize)> {
    let parts = parts.max(1).min(len.max(1));
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let sz = base + usize::from(p < extra);
        out.push((start, start + sz));
        start += sz;
    }
    out
}

/// Parallel `y <- alpha*x + y`.
pub fn axpy<S: Scalar>(alpha: S, x: &[S], y: &mut [S], threads: usize) {
    assert_eq!(x.len(), y.len());
    if threads <= 1 {
        return kernels::axpy(alpha, x, y);
    }
    let ranges = chunk_ranges(y.len(), threads);
    record_dispatch(&ranges);
    std::thread::scope(|s| {
        let mut rest = &mut y[..];
        let mut offset = 0;
        for &(lo, hi) in &ranges {
            let (head, tail) = rest.split_at_mut(hi - offset);
            rest = tail;
            let xs = &x[lo..hi];
            s.spawn(move || kernels::axpy(alpha, xs, head));
            offset = hi;
        }
    });
}

/// Parallel dot product (per-thread partials, then a serial reduce).
pub fn dot<S: Scalar>(x: &[S], y: &[S], threads: usize) -> S {
    assert_eq!(x.len(), y.len());
    if threads <= 1 {
        return kernels::dot(x, y);
    }
    let ranges = chunk_ranges(x.len(), threads);
    record_dispatch(&ranges);
    let partials: Vec<S> = std::thread::scope(|s| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(lo, hi)| s.spawn(move || kernels::dot(&x[lo..hi], &y[lo..hi])))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut acc = S::s_zero();
    for p in partials {
        acc = acc.s_add(p);
    }
    acc
}

/// Parallel GEMV: rows are divided among threads.
pub fn gemv<S: Scalar>(alpha: S, a: &Matrix<S>, x: &[S], beta: S, y: &mut [S], threads: usize) {
    assert_eq!(
        a.cols,
        x.len(),
        "gemv: A is {}x{} but x has {} elements",
        a.rows,
        a.cols,
        x.len()
    );
    assert_eq!(
        a.rows,
        y.len(),
        "gemv: A is {}x{} but y has {} elements",
        a.rows,
        a.cols,
        y.len()
    );
    if threads <= 1 {
        return kernels::gemv(alpha, a, x, beta, y);
    }
    let ranges = chunk_ranges(a.rows, threads);
    record_dispatch(&ranges);
    std::thread::scope(|s| {
        let mut rest = &mut y[..];
        let mut offset = 0;
        for &(lo, hi) in &ranges {
            let (head, tail) = rest.split_at_mut(hi - offset);
            rest = tail;
            s.spawn(move || {
                for (r, yi) in (lo..hi).zip(head.iter_mut()) {
                    let acc = kernels::dot(a.row(r), x);
                    *yi = beta.s_mul(*yi).s_add(alpha.s_mul(acc));
                }
            });
            offset = hi;
        }
    });
}

/// Parallel GEMM: output row blocks are divided among threads.
pub fn gemm<S: Scalar>(
    alpha: S,
    a: &Matrix<S>,
    b: &Matrix<S>,
    beta: S,
    c: &mut Matrix<S>,
    threads: usize,
) {
    // Validate shapes before any chunking: a mismatched `b.rows` would read
    // wrong strides, and a short `c.data` would panic mid-`split_at_mut`
    // with slices already handed to spawned threads.
    assert_eq!(
        a.cols, b.rows,
        "gemm: A is {}x{} but B is {}x{}",
        a.rows, a.cols, b.rows, b.cols
    );
    assert_eq!(
        c.rows, a.rows,
        "gemm: C is {}x{} but A*B is {}x{}",
        c.rows, c.cols, a.rows, b.cols
    );
    assert_eq!(
        c.cols, b.cols,
        "gemm: C is {}x{} but A*B is {}x{}",
        c.rows, c.cols, a.rows, b.cols
    );
    if threads <= 1 {
        return kernels::gemm(alpha, a, b, beta, c);
    }
    let n = b.cols;
    let kdim = a.cols;
    let ranges = chunk_ranges(a.rows, threads);
    record_dispatch(&ranges);
    std::thread::scope(|s| {
        let mut rest = &mut c.data[..];
        let mut offset = 0;
        for &(lo, hi) in &ranges {
            let (head, tail) = rest.split_at_mut((hi - lo) * n);
            rest = tail;
            s.spawn(move || {
                for v in head.iter_mut() {
                    *v = beta.s_mul(*v);
                }
                for (bi, i) in (lo..hi).enumerate() {
                    for k in 0..kdim {
                        let aik = alpha.s_mul(a.at(i, k));
                        let brow = &b.data[k * n..(k + 1) * n];
                        let crow = &mut head[bi * n..(bi + 1) * n];
                        for j in 0..n {
                            crow[j] = crow[j].s_mul_acc(aik, brow[j]);
                        }
                    }
                }
            });
            offset = hi;
        }
        let _ = offset;
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_core::F64x2;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn parallel_matches_serial() {
        let mut rng = SmallRng::seed_from_u64(930);
        let n = 127;
        let alpha = F64x2::from(1.5);
        let x: Vec<F64x2> = (0..n)
            .map(|_| F64x2::from(rng.gen_range(-1.0..1.0)))
            .collect();
        let y0: Vec<F64x2> = (0..n)
            .map(|_| F64x2::from(rng.gen_range(-1.0..1.0)))
            .collect();

        for threads in [1usize, 2, 3, 8] {
            let mut y_par = y0.clone();
            axpy(alpha, &x, &mut y_par, threads);
            let mut y_ser = y0.clone();
            kernels::axpy(alpha, &x, &mut y_ser);
            for i in 0..n {
                assert_eq!(
                    y_par[i].components(),
                    y_ser[i].components(),
                    "t={threads} i={i}"
                );
            }

            // dot: partial sums reorder the reduction; compare numerically.
            let d_par = dot(&x, &y0, threads).to_f64();
            let d_ser = kernels::dot(&x, &y0).to_f64();
            assert!((d_par - d_ser).abs() <= 1e-25, "t={threads}");
        }
    }

    #[test]
    fn parallel_gemm_matches_serial() {
        let mut rng = SmallRng::seed_from_u64(931);
        let (m, k, n) = (13, 9, 11);
        let a = Matrix::from_fn(m, k, |_, _| F64x2::from(rng.gen_range(-1.0..1.0f64)));
        let b = Matrix::from_fn(k, n, |_, _| F64x2::from(rng.gen_range(-1.0..1.0f64)));
        let c0 = Matrix::from_fn(m, n, |_, _| F64x2::from(rng.gen_range(-1.0..1.0f64)));
        let alpha = F64x2::from(0.75);
        let beta = F64x2::from(-1.25);
        let mut c_ser = c0.clone();
        kernels::gemm(alpha, &a, &b, beta, &mut c_ser);
        for threads in [2usize, 4, 7] {
            let mut c_par = c0.clone();
            gemm(alpha, &a, &b, beta, &mut c_par, threads);
            for i in 0..m * n {
                assert_eq!(c_par.data[i].components(), c_ser.data[i].components());
            }
        }
        // gemv
        let x: Vec<F64x2> = (0..k)
            .map(|_| F64x2::from(rng.gen_range(-1.0..1.0)))
            .collect();
        let y0: Vec<F64x2> = (0..m)
            .map(|_| F64x2::from(rng.gen_range(-1.0..1.0)))
            .collect();
        let mut y_ser = y0.clone();
        kernels::gemv(alpha, &a, &x, beta, &mut y_ser);
        let mut y_par = y0.clone();
        gemv(alpha, &a, &x, beta, &mut y_par, 3);
        for i in 0..m {
            assert_eq!(y_par[i].components(), y_ser[i].components());
        }
    }

    #[test]
    #[should_panic(expected = "gemm: A is")]
    fn gemm_rejects_inner_dim_mismatch() {
        let a = Matrix::from_fn(3, 4, |_, _| F64x2::from(1.0));
        let b = Matrix::from_fn(5, 2, |_, _| F64x2::from(1.0));
        let mut c = Matrix::from_fn(3, 2, |_, _| F64x2::from(0.0));
        gemm(F64x2::from(1.0), &a, &b, F64x2::from(0.0), &mut c, 2);
    }

    #[test]
    #[should_panic(expected = "gemm: C is")]
    fn gemm_rejects_output_shape_mismatch() {
        let a = Matrix::from_fn(3, 4, |_, _| F64x2::from(1.0));
        let b = Matrix::from_fn(4, 2, |_, _| F64x2::from(1.0));
        let mut c = Matrix::from_fn(2, 2, |_, _| F64x2::from(0.0));
        gemm(F64x2::from(1.0), &a, &b, F64x2::from(0.0), &mut c, 2);
    }

    #[test]
    #[should_panic(expected = "gemv: A is")]
    fn gemv_rejects_x_length_mismatch() {
        let a = Matrix::from_fn(3, 4, |_, _| F64x2::from(1.0));
        let x = vec![F64x2::from(1.0); 3]; // needs 4
        let mut y = vec![F64x2::from(0.0); 3];
        gemv(F64x2::from(1.0), &a, &x, F64x2::from(0.0), &mut y, 2);
    }

    #[test]
    fn chunking_covers_everything() {
        for len in [0usize, 1, 5, 16, 17] {
            for parts in [1usize, 2, 3, 8, 20] {
                let r = chunk_ranges(len, parts);
                let total: usize = r.iter().map(|(a, b)| b - a).sum();
                assert_eq!(total, len, "len={len} parts={parts}");
                for w in r.windows(2) {
                    assert_eq!(w[0].1, w[1].0);
                }
            }
        }
    }
}
