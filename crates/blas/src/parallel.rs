//! Thread-parallel kernel wrappers (chunked rows, pluggable executor).
//!
//! The paper runs every kernel in thread-per-physical-core and
//! thread-per-logical-core configurations and reports the max. These
//! wrappers provide the same knob; on this reproduction's single-core
//! container they mostly measure overhead (recorded as such in
//! EXPERIMENTS.md, substitution T7), but the implementations are real and
//! scale on multi-core hosts.
//!
//! # Executors
//!
//! Chunks run on one of two executors, selected per dispatch (see
//! [`dispatch_chunks`]):
//!
//! * the **persistent worker pool** ([`crate::pool`], the default) —
//!   workers claim chunk indices from a shared atomic cursor, amortizing
//!   thread creation across calls and rebalancing stragglers;
//! * **scoped spawn** (`MF_BLAS_POOL=off`) — one fresh OS thread per
//!   chunk via `std::thread::scope`, the original dispatch, kept
//!   selectable for A/B ablations (`pardispatch` bin, `pool_dispatch`
//!   criterion group).
//!
//! # Panic isolation
//!
//! Every chunk runs its kernel under [`std::panic::catch_unwind`]. A
//! panicking chunk no longer poisons the whole call: mutating kernels
//! snapshot their output chunk first and restore it on panic, and the
//! dispatcher then *degrades* the failed chunks to the serial kernel on the
//! calling thread (counted in `blas.parallel.degraded_*` telemetry). Only
//! if the serial retry panics too does the panic propagate — and then with
//! the kernel name and chunk range in the message instead of an opaque
//! `join().unwrap()`. These semantics are identical on both executors:
//! the chunk closure catches its own panics, so the pool never sees one.

use crate::{kernels, Matrix, Scalar};
use mf_telemetry::{trace, Counter, Histogram};
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

static PAR_DISPATCHES: Counter = Counter::new("blas.parallel.dispatches");
static PAR_TASKS: Counter = Counter::new("blas.parallel.tasks");
static PAR_ROWS: Counter = Counter::new("blas.parallel.rows");
/// Per-dispatch work imbalance: largest minus smallest chunk (rows for
/// GEMV/GEMM, elements for AXPY/DOT). Nonzero buckets mean some threads
/// idle while others finish their remainder rows.
static PAR_CHUNK_IMBALANCE: Histogram = Histogram::new("blas.parallel.chunk_imbalance");
/// Dispatches in which at least one worker panicked and its chunks were
/// degraded to the serial kernel.
static PAR_DEGRADED_DISPATCHES: Counter = Counter::new("blas.parallel.degraded_dispatches");
/// Individual chunks rerun serially after a worker panic.
static PAR_DEGRADED_CHUNKS: Counter = Counter::new("blas.parallel.degraded_chunks");

/// Record one parallel dispatch over `ranges` (one task per chunk).
#[inline]
fn record_dispatch(ranges: &[(usize, usize)]) {
    if !mf_telemetry::ENABLED {
        return;
    }
    PAR_DISPATCHES.incr();
    PAR_TASKS.add(ranges.len() as u64);
    let sizes = ranges.iter().map(|&(lo, hi)| hi - lo);
    PAR_ROWS.add(sizes.clone().sum::<usize>() as u64);
    let max = sizes.clone().max().unwrap_or(0);
    let min = sizes.min().unwrap_or(0);
    PAR_CHUNK_IMBALANCE.record((max - min) as u64);
}

#[inline]
pub(crate) fn record_degraded(chunks: usize) {
    if !mf_telemetry::ENABLED || chunks == 0 {
        return;
    }
    PAR_DEGRADED_DISPATCHES.incr();
    PAR_DEGRADED_CHUNKS.add(chunks as u64);
}

/// Worker count: the `MF_BLAS_THREADS` environment variable when set to a
/// positive integer (reproducible benchmarking), otherwise the machine's
/// available parallelism (1 on this container).
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("MF_BLAS_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

pub(crate) fn chunk_ranges(len: usize, parts: usize) -> Vec<(usize, usize)> {
    let parts = parts.max(1).min(len.max(1));
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let sz = base + usize::from(p < extra);
        out.push((start, start + sz));
        start += sz;
    }
    out
}

/// Best-effort description of a panic payload (the `&str`/`String` cases
/// `panic!` produces).
fn describe_panic(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Disjoint mutable chunk access for a shared chunk closure. The executors
/// hand out chunk *indices* (the pool's cursor decides at runtime which
/// thread runs which chunk), so the output slice can't be pre-split with
/// `split_at_mut` the way the scoped dispatch originally did. This wrapper
/// shares the raw base pointer instead; every chunk index maps to an
/// element range from [`chunk_ranges`], and those ranges never overlap, so
/// no two concurrently live `slice` views alias.
pub(crate) struct ChunkedMut<'a, S> {
    ptr: *mut S,
    len: usize,
    _life: PhantomData<&'a mut [S]>,
}

// SAFETY: distinct chunk indices address disjoint element ranges (the only
// way `slice` is used), so concurrent access from executor threads is
// data-race-free for any `Send` scalar.
unsafe impl<S: Send> Sync for ChunkedMut<'_, S> {}

impl<'a, S> ChunkedMut<'a, S> {
    pub(crate) fn new(data: &'a mut [S]) -> Self {
        ChunkedMut {
            ptr: data.as_mut_ptr(),
            len: data.len(),
            _life: PhantomData,
        }
    }

    /// # Safety
    ///
    /// `lo..hi` must be in bounds and disjoint from every other range with
    /// a live view; each chunk index must be executed at most once per
    /// dispatch (both executors guarantee this).
    #[allow(clippy::mut_from_ref)]
    pub(crate) unsafe fn slice(&self, lo: usize, hi: usize) -> &'a mut [S] {
        debug_assert!(lo <= hi && hi <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(lo), hi - lo)
    }
}

/// Execute `task(ci)` for every chunk index in `0..nchunks` and return the
/// sorted indices whose task reported failure. `task` must catch its own
/// kernel panics and report them through the return value — both executors
/// treat an unwinding task as a contract violation (the pool swallows it
/// defensively; see `pool.task_panics`).
pub(crate) fn dispatch_chunks(nchunks: usize, task: &(dyn Fn(usize) -> bool + Sync)) -> Vec<usize> {
    let failed = Mutex::new(Vec::new());
    let run = |ci: usize| {
        if !task(ci) {
            failed.lock().unwrap_or_else(|e| e.into_inner()).push(ci);
        }
    };
    if crate::pool::enabled() {
        crate::pool::run(nchunks, &run);
    } else {
        std::thread::scope(|s| {
            for ci in 0..nchunks {
                let run = &run;
                s.spawn(move || run(ci));
            }
        });
    }
    let mut failed = failed.into_inner().unwrap_or_else(|e| e.into_inner());
    // The pool's cursor hands chunks out in arbitrary thread order; sort
    // so the degrade path reruns (and reduces) in deterministic chunk
    // order on both executors.
    failed.sort_unstable();
    failed
}

/// Run a mutating kernel over `out` under panic isolation: on panic the
/// chunk is restored from a pre-kernel snapshot (a panicking kernel may
/// have partially written it) so the dispatcher can deterministically rerun
/// the serial kernel over the same data. Returns `true` on success.
fn isolated<S: Scalar>(out: &mut [S], f: impl FnOnce(&mut [S])) -> bool {
    let snapshot = out.to_vec();
    match catch_unwind(AssertUnwindSafe(|| f(out))) {
        Ok(()) => true,
        Err(_) => {
            out.copy_from_slice(&snapshot);
            false
        }
    }
}

/// Serial retry of a degraded chunk. A second (deterministic) panic
/// propagates with the kernel name and chunk range attached.
pub(crate) fn degraded_rerun(kernel: &str, lo: usize, hi: usize, f: impl FnOnce()) {
    // On the timeline a degrade shows as a serial span on the dispatching
    // thread *after* the worker spans — the visual signature of a panic
    // falling back to the serial kernel.
    let _sp = trace::span("par.degraded.rerun", (hi - lo) as u64);
    if let Err(p) = catch_unwind(AssertUnwindSafe(f)) {
        panic!(
            "mf-blas {kernel}: worker and serial retry both panicked on chunk {lo}..{hi}: {}",
            describe_panic(p.as_ref())
        );
    }
}

/// Parallel `y <- alpha*x + y`.
pub fn axpy<S: Scalar>(alpha: S, x: &[S], y: &mut [S], threads: usize) {
    assert_eq!(x.len(), y.len());
    if threads <= 1 {
        return kernels::axpy(alpha, x, y);
    }
    let ranges = chunk_ranges(y.len(), threads);
    record_dispatch(&ranges);
    let _sp = trace::span("par.axpy", y.len() as u64);
    let failed = {
        let out = ChunkedMut::new(y);
        dispatch_chunks(ranges.len(), &|ci| {
            let (lo, hi) = ranges[ci];
            let _t = trace::span("par.axpy.chunk", (hi - lo) as u64);
            // SAFETY: chunk ranges are disjoint and each index runs once.
            let head = unsafe { out.slice(lo, hi) };
            isolated(head, |out| kernels::axpy(alpha, &x[lo..hi], out))
        })
    };
    record_degraded(failed.len());
    for ci in failed {
        let (lo, hi) = ranges[ci];
        degraded_rerun("axpy", lo, hi, || {
            kernels::axpy(alpha, &x[lo..hi], &mut y[lo..hi])
        });
    }
}

/// Parallel dot product (per-chunk partials, then a serial reduce in chunk
/// order).
pub fn dot<S: Scalar>(x: &[S], y: &[S], threads: usize) -> S {
    assert_eq!(x.len(), y.len());
    if threads <= 1 {
        return kernels::dot(x, y);
    }
    let ranges = chunk_ranges(x.len(), threads);
    record_dispatch(&ranges);
    let _sp = trace::span("par.dot", x.len() as u64);
    let mut partials = vec![S::s_zero(); ranges.len()];
    let failed = {
        let slots = ChunkedMut::new(&mut partials);
        dispatch_chunks(ranges.len(), &|ci| {
            let (lo, hi) = ranges[ci];
            let _t = trace::span("par.dot.chunk", (hi - lo) as u64);
            match catch_unwind(AssertUnwindSafe(|| kernels::dot(&x[lo..hi], &y[lo..hi]))) {
                Ok(v) => {
                    // SAFETY: slot ci is written only by the single
                    // executor of chunk ci.
                    let slot = unsafe { slots.slice(ci, ci + 1) };
                    slot[0] = v;
                    true
                }
                Err(_) => false,
            }
        })
    };
    record_degraded(failed.len());
    let mut acc = S::s_zero();
    for (ci, &(lo, hi)) in ranges.iter().enumerate() {
        let term = if failed.binary_search(&ci).is_ok() {
            let mut out = S::s_zero();
            degraded_rerun("dot", lo, hi, || out = kernels::dot(&x[lo..hi], &y[lo..hi]));
            out
        } else {
            partials[ci]
        };
        acc = acc.s_add(term);
    }
    acc
}

/// GEMV row block `lo..hi` into `head` (shared by workers and the serial
/// degrade path). `beta == 0` overwrites without reading `head`, exactly
/// like the serial kernel, so the parallel path stays bitwise identical.
fn gemv_rows<S: Scalar>(alpha: S, a: &Matrix<S>, x: &[S], beta: S, head: &mut [S], lo: usize) {
    if beta.s_is_zero() {
        for (r, yi) in (lo..).zip(head.iter_mut()) {
            *yi = alpha.s_mul(kernels::dot(a.row(r), x));
        }
    } else {
        for (r, yi) in (lo..).zip(head.iter_mut()) {
            let acc = kernels::dot(a.row(r), x);
            *yi = beta.s_mul(*yi).s_add(alpha.s_mul(acc));
        }
    }
}

/// Parallel GEMV: rows are divided among threads.
pub fn gemv<S: Scalar>(alpha: S, a: &Matrix<S>, x: &[S], beta: S, y: &mut [S], threads: usize) {
    assert_eq!(
        a.cols,
        x.len(),
        "gemv: A is {}x{} but x has {} elements",
        a.rows,
        a.cols,
        x.len()
    );
    assert_eq!(
        a.rows,
        y.len(),
        "gemv: A is {}x{} but y has {} elements",
        a.rows,
        a.cols,
        y.len()
    );
    if threads <= 1 {
        return kernels::gemv(alpha, a, x, beta, y);
    }
    let ranges = chunk_ranges(a.rows, threads);
    record_dispatch(&ranges);
    let _sp = trace::span("par.gemv", a.rows as u64);
    let failed = {
        let out = ChunkedMut::new(y);
        dispatch_chunks(ranges.len(), &|ci| {
            let (lo, hi) = ranges[ci];
            let _t = trace::span("par.gemv.chunk", (hi - lo) as u64);
            // SAFETY: chunk ranges are disjoint and each index runs once.
            let head = unsafe { out.slice(lo, hi) };
            isolated(head, |out| gemv_rows(alpha, a, x, beta, out, lo))
        })
    };
    record_degraded(failed.len());
    for ci in failed {
        let (lo, hi) = ranges[ci];
        degraded_rerun("gemv", lo, hi, || {
            gemv_rows(alpha, a, x, beta, &mut y[lo..hi], lo)
        });
    }
}

/// GEMM output row block `lo..hi` into `head` (shared by workers and the
/// serial degrade path).
fn gemm_rows<S: Scalar>(
    alpha: S,
    a: &Matrix<S>,
    b: &Matrix<S>,
    beta: S,
    head: &mut [S],
    lo: usize,
    hi: usize,
) {
    let n = b.cols;
    let kdim = a.cols;
    // Same per-call beta == 0 overwrite as the serial kernel (bitwise
    // identical parallel path, no NaN propagation from garbage C).
    if beta.s_is_zero() {
        for v in head.iter_mut() {
            *v = S::s_zero();
        }
    } else {
        for v in head.iter_mut() {
            *v = beta.s_mul(*v);
        }
    }
    for (bi, i) in (lo..hi).enumerate() {
        for k in 0..kdim {
            let aik = alpha.s_mul(a.at(i, k));
            let brow = &b.data[k * n..(k + 1) * n];
            let crow = &mut head[bi * n..(bi + 1) * n];
            for j in 0..n {
                crow[j] = crow[j].s_mul_acc(aik, brow[j]);
            }
        }
    }
}

/// Parallel GEMM: output row blocks are divided among threads.
pub fn gemm<S: Scalar>(
    alpha: S,
    a: &Matrix<S>,
    b: &Matrix<S>,
    beta: S,
    c: &mut Matrix<S>,
    threads: usize,
) {
    // Validate shapes before any chunking: a mismatched `b.rows` would read
    // wrong strides, and a short `c.data` would hand out-of-bounds chunk
    // ranges to the executor.
    assert_eq!(
        a.cols, b.rows,
        "gemm: A is {}x{} but B is {}x{}",
        a.rows, a.cols, b.rows, b.cols
    );
    assert_eq!(
        c.rows, a.rows,
        "gemm: C is {}x{} but A*B is {}x{}",
        c.rows, c.cols, a.rows, b.cols
    );
    assert_eq!(
        c.cols, b.cols,
        "gemm: C is {}x{} but A*B is {}x{}",
        c.rows, c.cols, a.rows, b.cols
    );
    if threads <= 1 {
        return kernels::gemm(alpha, a, b, beta, c);
    }
    let n = b.cols;
    let ranges = chunk_ranges(a.rows, threads);
    record_dispatch(&ranges);
    let _sp = trace::span("par.gemm", a.rows as u64);
    let failed = {
        let out = ChunkedMut::new(&mut c.data);
        dispatch_chunks(ranges.len(), &|ci| {
            let (lo, hi) = ranges[ci];
            let _t = trace::span("par.gemm.chunk", (hi - lo) as u64);
            // SAFETY: row ranges are disjoint, so the element ranges
            // lo*n..hi*n are too; each index runs once.
            let head = unsafe { out.slice(lo * n, hi * n) };
            isolated(head, |out| gemm_rows(alpha, a, b, beta, out, lo, hi))
        })
    };
    record_degraded(failed.len());
    for ci in failed {
        let (lo, hi) = ranges[ci];
        degraded_rerun("gemm", lo, hi, || {
            gemm_rows(alpha, a, b, beta, &mut c.data[lo * n..hi * n], lo, hi)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_core::F64x2;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::sync::atomic::{AtomicI64, Ordering};

    #[test]
    fn parallel_matches_serial() {
        let mut rng = SmallRng::seed_from_u64(930);
        let n = 127;
        let alpha = F64x2::from(1.5);
        let x: Vec<F64x2> = (0..n)
            .map(|_| F64x2::from(rng.gen_range(-1.0..1.0)))
            .collect();
        let y0: Vec<F64x2> = (0..n)
            .map(|_| F64x2::from(rng.gen_range(-1.0..1.0)))
            .collect();

        for threads in [1usize, 2, 3, 8] {
            let mut y_par = y0.clone();
            axpy(alpha, &x, &mut y_par, threads);
            let mut y_ser = y0.clone();
            kernels::axpy(alpha, &x, &mut y_ser);
            for i in 0..n {
                assert_eq!(
                    y_par[i].components(),
                    y_ser[i].components(),
                    "t={threads} i={i}"
                );
            }

            // dot: partial sums reorder the reduction; compare numerically.
            let d_par = dot(&x, &y0, threads).to_f64();
            let d_ser = kernels::dot(&x, &y0).to_f64();
            assert!((d_par - d_ser).abs() <= 1e-25, "t={threads}");
        }
    }

    /// The scoped-spawn executor stays selectable (`MF_BLAS_POOL=off`) and
    /// bit-identical to the pool path.
    #[test]
    fn scoped_mode_matches_serial() {
        let _env = crate::pool::tests::env_lock();
        std::env::set_var("MF_BLAS_POOL", "off");
        let mut rng = SmallRng::seed_from_u64(932);
        let n = 101;
        let alpha = F64x2::from(-0.5);
        let x: Vec<F64x2> = (0..n)
            .map(|_| F64x2::from(rng.gen_range(-1.0..1.0)))
            .collect();
        let y0: Vec<F64x2> = (0..n)
            .map(|_| F64x2::from(rng.gen_range(-1.0..1.0)))
            .collect();
        let mut y_par = y0.clone();
        axpy(alpha, &x, &mut y_par, 4);
        let mut y_ser = y0.clone();
        kernels::axpy(alpha, &x, &mut y_ser);
        for i in 0..n {
            assert_eq!(y_par[i].components(), y_ser[i].components(), "i={i}");
        }
        let d_par = dot(&x, &y0, 4).to_f64();
        let d_ser = kernels::dot(&x, &y0).to_f64();
        assert!((d_par - d_ser).abs() <= 1e-25);
        std::env::remove_var("MF_BLAS_POOL");
    }

    /// Zero-length inputs dispatch a single empty chunk through both
    /// executors without touching memory or hanging.
    #[test]
    fn zero_length_inputs() {
        let _env = crate::pool::tests::env_lock();
        for mode in ["on", "off"] {
            std::env::set_var("MF_BLAS_POOL", mode);
            let alpha = F64x2::from(2.0);
            let x: Vec<F64x2> = Vec::new();
            let mut y: Vec<F64x2> = Vec::new();
            axpy(alpha, &x, &mut y, 4);
            assert!(y.is_empty());
            assert_eq!(dot(&x, &y, 4).to_f64(), 0.0);

            // 0-row matrix: gemv/gemm over no rows.
            let a = Matrix::from_fn(0, 3, |_, _| F64x2::from(1.0));
            let xv = vec![F64x2::from(1.0); 3];
            let mut yv: Vec<F64x2> = Vec::new();
            gemv(alpha, &a, &xv, F64x2::from(0.0), &mut yv, 4);
            let b = Matrix::from_fn(3, 2, |_, _| F64x2::from(1.0));
            let mut c = Matrix::from_fn(0, 2, |_, _| F64x2::from(0.0));
            gemm(alpha, &a, &b, F64x2::from(0.0), &mut c, 4);
            assert!(c.data.is_empty());
        }
        std::env::remove_var("MF_BLAS_POOL");
    }

    #[test]
    fn parallel_gemm_matches_serial() {
        let mut rng = SmallRng::seed_from_u64(931);
        let (m, k, n) = (13, 9, 11);
        let a = Matrix::from_fn(m, k, |_, _| F64x2::from(rng.gen_range(-1.0..1.0f64)));
        let b = Matrix::from_fn(k, n, |_, _| F64x2::from(rng.gen_range(-1.0..1.0f64)));
        let c0 = Matrix::from_fn(m, n, |_, _| F64x2::from(rng.gen_range(-1.0..1.0f64)));
        let alpha = F64x2::from(0.75);
        let beta = F64x2::from(-1.25);
        let mut c_ser = c0.clone();
        kernels::gemm(alpha, &a, &b, beta, &mut c_ser);
        for threads in [2usize, 4, 7] {
            let mut c_par = c0.clone();
            gemm(alpha, &a, &b, beta, &mut c_par, threads);
            for i in 0..m * n {
                assert_eq!(c_par.data[i].components(), c_ser.data[i].components());
            }
        }
        // gemv
        let x: Vec<F64x2> = (0..k)
            .map(|_| F64x2::from(rng.gen_range(-1.0..1.0)))
            .collect();
        let y0: Vec<F64x2> = (0..m)
            .map(|_| F64x2::from(rng.gen_range(-1.0..1.0)))
            .collect();
        let mut y_ser = y0.clone();
        kernels::gemv(alpha, &a, &x, beta, &mut y_ser);
        let mut y_par = y0.clone();
        gemv(alpha, &a, &x, beta, &mut y_par, 3);
        for i in 0..m {
            assert_eq!(y_par[i].components(), y_ser[i].components());
        }
    }

    #[test]
    #[should_panic(expected = "gemm: A is")]
    fn gemm_rejects_inner_dim_mismatch() {
        let a = Matrix::from_fn(3, 4, |_, _| F64x2::from(1.0));
        let b = Matrix::from_fn(5, 2, |_, _| F64x2::from(1.0));
        let mut c = Matrix::from_fn(3, 2, |_, _| F64x2::from(0.0));
        gemm(F64x2::from(1.0), &a, &b, F64x2::from(0.0), &mut c, 2);
    }

    #[test]
    #[should_panic(expected = "gemm: C is")]
    fn gemm_rejects_output_shape_mismatch() {
        let a = Matrix::from_fn(3, 4, |_, _| F64x2::from(1.0));
        let b = Matrix::from_fn(4, 2, |_, _| F64x2::from(1.0));
        let mut c = Matrix::from_fn(2, 2, |_, _| F64x2::from(0.0));
        gemm(F64x2::from(1.0), &a, &b, F64x2::from(0.0), &mut c, 2);
    }

    #[test]
    #[should_panic(expected = "gemv: A is")]
    fn gemv_rejects_x_length_mismatch() {
        let a = Matrix::from_fn(3, 4, |_, _| F64x2::from(1.0));
        let x = vec![F64x2::from(1.0); 3]; // needs 4
        let mut y = vec![F64x2::from(0.0); 3];
        gemv(F64x2::from(1.0), &a, &x, F64x2::from(0.0), &mut y, 2);
    }

    #[test]
    fn chunking_covers_everything() {
        for len in [0usize, 1, 5, 16, 17] {
            for parts in [1usize, 2, 3, 8, 20] {
                let r = chunk_ranges(len, parts);
                let total: usize = r.iter().map(|(a, b)| b - a).sum();
                assert_eq!(total, len, "len={len} parts={parts}");
                for w in r.windows(2) {
                    assert_eq!(w[0].1, w[1].0);
                }
            }
        }
    }

    #[test]
    fn chunking_edge_cases() {
        // len=0: a single empty range, never an empty vec (workers iterate it).
        assert_eq!(chunk_ranges(0, 4), vec![(0, 0)]);
        assert_eq!(chunk_ranges(0, 0), vec![(0, 0)]);
        // threads=0 degrades to one chunk.
        assert_eq!(chunk_ranges(5, 0), vec![(0, 5)]);
        // threads > len: one chunk per element, no empty chunks.
        let r = chunk_ranges(3, 8);
        assert_eq!(r, vec![(0, 1), (1, 2), (2, 3)]);
        assert!(r.iter().all(|&(lo, hi)| hi > lo));
    }

    #[test]
    fn default_threads_env_override() {
        // The pool reads this variable on every dispatch; serialize with
        // the pool tests that assert exact worker counts.
        let _env = crate::pool::tests::env_lock();
        std::env::set_var("MF_BLAS_THREADS", "3");
        assert_eq!(default_threads(), 3);
        std::env::set_var("MF_BLAS_THREADS", " 12 ");
        assert_eq!(default_threads(), 12);
        // Invalid or non-positive values fall back to the machine default.
        std::env::set_var("MF_BLAS_THREADS", "0");
        assert!(default_threads() >= 1);
        std::env::set_var("MF_BLAS_THREADS", "lots");
        assert!(default_threads() >= 1);
        std::env::remove_var("MF_BLAS_THREADS");
        assert!(default_threads() >= 1);
    }

    /// A scalar whose multiply panics while the global fuse is lit: lets the
    /// tests inject exactly one worker panic, which must degrade that chunk
    /// to the serial kernel instead of poisoning the dispatch.
    #[derive(Clone, Copy, Debug, Default, PartialEq)]
    struct Flaky(f64);

    /// Positive: number of multiplies until a single panic fires (the
    /// counter then disarms by running past zero). At or below PERSISTENT:
    /// every multiply panics (a deterministic fault that survives the
    /// retry).
    static FUSE: AtomicI64 = AtomicI64::new(0);
    const PERSISTENT: i64 = i64::MIN / 2;
    /// Serializes the tests that arm the shared fuse.
    static FLAKY_LOCK: Mutex<()> = Mutex::new(());

    impl Scalar for Flaky {
        fn s_zero() -> Self {
            Flaky(0.0)
        }
        fn s_add(self, o: Self) -> Self {
            Flaky(self.0 + o.0)
        }
        fn s_mul(self, o: Self) -> Self {
            let v = FUSE.fetch_sub(1, Ordering::SeqCst);
            if v == 1 || v <= PERSISTENT {
                panic!("flaky scalar blew its fuse");
            }
            Flaky(self.0 * o.0)
        }
        fn s_from_f64(x: f64) -> Self {
            Flaky(x)
        }
        fn s_to_f64(self) -> f64 {
            self.0
        }
        fn s_is_zero(self) -> bool {
            self.0 == 0.0
        }
    }

    #[test]
    fn worker_panic_degrades_to_serial() {
        let _fuse = FLAKY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let n = 64;
        let x: Vec<Flaky> = (0..n).map(|i| Flaky(i as f64 * 0.25)).collect();
        let y0: Vec<Flaky> = (0..n).map(|i| Flaky(1.0 - i as f64 * 0.5)).collect();
        let alpha = Flaky(1.5);

        // Serial reference with the fuse disarmed.
        FUSE.store(0, Ordering::SeqCst);
        let mut y_ref = y0.clone();
        kernels::axpy(alpha, &x, &mut y_ref);
        let d_ref = kernels::dot(&x, &y0);

        // axpy: one worker panics mid-chunk; the result must still match.
        FUSE.store(10, Ordering::SeqCst);
        let mut y_par = y0.clone();
        axpy(alpha, &x, &mut y_par, 4);
        FUSE.store(0, Ordering::SeqCst);
        assert_eq!(y_par, y_ref, "degraded axpy dispatch diverged");

        // dot: a panicking partial is recomputed serially.
        FUSE.store(10, Ordering::SeqCst);
        let d_par = dot(&x, &y0, 4);
        FUSE.store(0, Ordering::SeqCst);
        assert_eq!(d_par, d_ref, "degraded dot dispatch diverged");
    }

    #[test]
    fn worker_panic_degrades_gemv_gemm() {
        let _fuse = FLAKY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let (m, k, n) = (12, 7, 9);
        let a = Matrix::from_fn(m, k, |i, j| Flaky((i * k + j) as f64 * 0.125 - 2.0));
        let b = Matrix::from_fn(k, n, |i, j| Flaky((i * n + j) as f64 * 0.0625 - 1.0));
        let c0 = Matrix::from_fn(m, n, |i, j| Flaky((i + j) as f64 * 0.5));
        let x: Vec<Flaky> = (0..k).map(|i| Flaky(i as f64 - 3.0)).collect();
        let y0: Vec<Flaky> = (0..m).map(|i| Flaky(i as f64 * 0.75)).collect();
        let (alpha, beta) = (Flaky(0.75), Flaky(-1.25));

        FUSE.store(0, Ordering::SeqCst);
        let mut c_ref = c0.clone();
        kernels::gemm(alpha, &a, &b, beta, &mut c_ref);
        let mut y_ref = y0.clone();
        kernels::gemv(alpha, &a, &x, beta, &mut y_ref);

        FUSE.store(25, Ordering::SeqCst);
        let mut c_par = c0.clone();
        gemm(alpha, &a, &b, beta, &mut c_par, 4);
        FUSE.store(0, Ordering::SeqCst);
        assert_eq!(c_par.data, c_ref.data, "degraded gemm dispatch diverged");

        FUSE.store(20, Ordering::SeqCst);
        let mut y_par = y0.clone();
        gemv(alpha, &a, &x, beta, &mut y_par, 4);
        FUSE.store(0, Ordering::SeqCst);
        assert_eq!(y_par, y_ref, "degraded gemv dispatch diverged");
    }

    #[test]
    fn persistent_panic_propagates_with_context() {
        let _fuse = FLAKY_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // A deterministic panic (fuse lit for far more multiplies than the
        // call makes) fails the serial retry too; the propagated message
        // must carry the kernel name and chunk range.
        let x: Vec<Flaky> = (0..16).map(|i| Flaky(i as f64)).collect();
        let y: Vec<Flaky> = (0..16).map(|i| Flaky(i as f64)).collect();
        FUSE.store(PERSISTENT, Ordering::SeqCst);
        let err = catch_unwind(AssertUnwindSafe(|| dot(&x, &y, 2))).unwrap_err();
        FUSE.store(0, Ordering::SeqCst);
        let msg = describe_panic(err.as_ref());
        assert!(msg.contains("mf-blas dot"), "got: {msg}");
        assert!(msg.contains("chunk 0..8"), "got: {msg}");
        assert!(msg.contains("flaky scalar blew its fuse"), "got: {msg}");
    }

    /// Acceptance: a parallel GEMM dispatch shows one worker span per chunk
    /// in the exported Chrome trace, each on its own thread, wrapped by the
    /// dispatch span on the calling thread. Pinned to the scoped executor —
    /// its thread-per-chunk shape is what "one chunk, one thread" asserts;
    /// the pool's cursor legitimately lets one worker run several chunks
    /// (see `pool_dispatch_traces_one_span_per_chunk` for that mode).
    #[cfg(feature = "telemetry")]
    #[test]
    fn parallel_gemm_traces_one_span_per_chunk() {
        use mf_telemetry::trace;
        let _env = crate::pool::tests::env_lock();
        std::env::set_var("MF_BLAS_POOL", "off");
        trace::arm();
        // 40 rows over 5 threads -> five chunks of exactly 8 rows; no other
        // test in this binary dispatches gemm with that chunk size, so the
        // arg value keys this test's events even with tracing armed
        // process-wide.
        let (m, k, n) = (40, 6, 5);
        let a = Matrix::from_fn(m, k, |i, j| F64x2::from((i + j) as f64 * 0.5));
        let b = Matrix::from_fn(k, n, |i, j| F64x2::from((i * n + j) as f64 * 0.25));
        let mut c = Matrix::from_fn(m, n, |_, _| F64x2::from(0.0));
        gemm(F64x2::from(1.0), &a, &b, F64x2::from(0.0), &mut c, 5);
        std::env::remove_var("MF_BLAS_POOL");

        let doc = trace::chrome_trace();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let arg_of = |e: &mf_telemetry::json::Json| {
            e.get("args")
                .and_then(|a| a.get("arg"))
                .and_then(|v| v.as_u64())
        };
        let chunk_begins: Vec<_> = events
            .iter()
            .filter(|e| {
                e.get("name").and_then(|v| v.as_str()) == Some("par.gemm.chunk")
                    && e.get("ph").and_then(|v| v.as_str()) == Some("B")
                    && arg_of(e) == Some(8)
            })
            .collect();
        assert_eq!(chunk_begins.len(), 5, "expected one worker span per chunk");
        let tids: std::collections::HashSet<u64> = chunk_begins
            .iter()
            .map(|e| e.get("tid").unwrap().as_u64().unwrap())
            .collect();
        assert_eq!(tids.len(), 5, "each chunk must run on its own thread");
        assert!(
            events.iter().any(|e| {
                e.get("name").and_then(|v| v.as_str()) == Some("par.gemm") && arg_of(e) == Some(40)
            }),
            "dispatch span missing"
        );
    }

    /// Pool-mode sibling of the trace acceptance test: the pool preserves
    /// one `par.*.chunk` span per chunk (whichever thread — worker or
    /// helping caller — claims it emits the span).
    #[cfg(feature = "telemetry")]
    #[test]
    fn pool_dispatch_traces_one_span_per_chunk() {
        use mf_telemetry::trace;
        let _env = crate::pool::tests::env_lock();
        std::env::remove_var("MF_BLAS_POOL");
        trace::arm();
        // 36 rows over 4 threads -> four chunks of exactly 9 rows; no other
        // test in this binary dispatches gemv with that chunk size.
        let (m, k) = (36, 6);
        let a = Matrix::from_fn(m, k, |i, j| F64x2::from((i + 2 * j) as f64 * 0.25));
        let x: Vec<F64x2> = (0..k).map(|j| F64x2::from(j as f64 - 2.0)).collect();
        let mut y = vec![F64x2::from(0.0); m];
        gemv(F64x2::from(1.0), &a, &x, F64x2::from(0.0), &mut y, 4);

        let doc = trace::chrome_trace();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let chunk_begins = events
            .iter()
            .filter(|e| {
                e.get("name").and_then(|v| v.as_str()) == Some("par.gemv.chunk")
                    && e.get("ph").and_then(|v| v.as_str()) == Some("B")
                    && e.get("args")
                        .and_then(|a| a.get("arg"))
                        .and_then(|v| v.as_u64())
                        == Some(9)
            })
            .count();
        assert_eq!(chunk_begins, 4, "expected one chunk span per chunk");
    }

    #[test]
    fn isolated_restores_partial_writes() {
        let mut out = [1.0f64, 2.0, 3.0];
        let ok = isolated(&mut out, |o| {
            o[0] = 99.0;
            panic!("boom");
        });
        assert!(!ok);
        assert_eq!(out, [1.0, 2.0, 3.0], "partial write must be rolled back");
        let ok = isolated(&mut out, |o| o[1] = 42.0);
        assert!(ok);
        assert_eq!(out, [1.0, 42.0, 3.0]);
    }
}
