//! Array-of-structs BLAS kernels, generic over [`Scalar`].
//!
//! These are the straightforward formulations every library is benchmarked
//! with (the paper compiles each library's kernels "with identical
//! parallelization strategies, using ij loop ordering for GEMV and ikj
//! loop ordering for GEMM").
//!
//! Every public kernel is runtime-dispatched the same way as the tiled
//! GEMM path ([`crate::tile`]): on x86-64 with AVX2+FMA detected the loop
//! body is compiled with those features enabled, so the EFT `mul_add`s
//! lower to `vfmadd` instructions instead of soft-float libm calls. Both
//! lowerings are correctly rounded, so the dispatched and portable builds
//! produce bit-identical results; the check itself is one cached atomic
//! load per kernel call.

use crate::{Matrix, Scalar};

/// Expand one kernel into the portable `*_body`, the AVX2+FMA
/// `#[target_feature]` instantiation of that body, and the dispatching
/// public wrapper (the tile.rs pattern, applied to the flat kernels).
/// The `#[inline(always)]` body plus `#[inline]` EFT primitives guarantee
/// the whole hot loop lands inside the feature-enabled frame.
macro_rules! fma_dispatched {
    ($(#[$doc:meta])* pub fn $name:ident / $body:ident / $fma:ident
     <S: Scalar>($($arg:ident: $ty:ty),* $(,)?) $(-> $ret:ty)? $code:block) => {
        #[inline(always)]
        fn $body<S: Scalar>($($arg: $ty),*) $(-> $ret)? $code

        /// AVX2+FMA instantiation of the kernel body.
        ///
        /// # Safety
        ///
        /// Caller must ensure the `avx2` and `fma` CPU features are present.
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2,fma")]
        unsafe fn $fma<S: Scalar>($($arg: $ty),*) $(-> $ret)? {
            $body($($arg),*)
        }

        $(#[$doc])*
        pub fn $name<S: Scalar>($($arg: $ty),*) $(-> $ret)? {
            #[cfg(target_arch = "x86_64")]
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                // SAFETY: the required CPU features were just detected.
                return unsafe { $fma($($arg),*) };
            }
            $body($($arg),*)
        }
    };
}

fma_dispatched! {
    /// `y <- alpha * x + y`.
    pub fn axpy / axpy_body / axpy_fma<S: Scalar>(alpha: S, x: &[S], y: &mut [S]) {
        assert_eq!(x.len(), y.len());
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi = yi.s_mul_acc(alpha, xi);
        }
    }
}

fma_dispatched! {
    /// Dot product `x · y`.
    pub fn dot / dot_body / dot_fma<S: Scalar>(x: &[S], y: &[S]) -> S {
        assert_eq!(x.len(), y.len());
        let mut acc = S::s_zero();
        for (&xi, &yi) in x.iter().zip(y) {
            acc = acc.s_mul_acc(xi, yi);
        }
        acc
    }
}

fma_dispatched! {
    /// `y <- alpha * A * x + beta * y`, `ij` loop order (row-major `A`).
    ///
    /// Standard BLAS semantics: `beta == 0` *overwrites* `y` without reading
    /// it, so NaN/Inf in an uninitialized output buffer never propagates. The
    /// branch is hoisted out of the row loop; the loop bodies stay branch-free.
    pub fn gemv / gemv_body / gemv_fma<S: Scalar>(
        alpha: S,
        a: &Matrix<S>,
        x: &[S],
        beta: S,
        y: &mut [S],
    ) {
        assert_eq!(a.cols, x.len());
        assert_eq!(a.rows, y.len());
        if beta.s_is_zero() {
            for i in 0..a.rows {
                y[i] = alpha.s_mul(dot_body(a.row(i), x));
            }
        } else {
            for i in 0..a.rows {
                let acc = dot_body(a.row(i), x);
                y[i] = beta.s_mul(y[i]).s_add(alpha.s_mul(acc));
            }
        }
    }
}

fma_dispatched! {
    /// `C <- alpha * A * B + beta * C`, `ikj` loop order.
    pub fn gemm / gemm_body / gemm_fma<S: Scalar>(
        alpha: S,
        a: &Matrix<S>,
        b: &Matrix<S>,
        beta: S,
        c: &mut Matrix<S>,
    ) {
        assert_eq!(a.cols, b.rows);
        assert_eq!(c.rows, a.rows);
        assert_eq!(c.cols, b.cols);
        // Scale C by beta first (ikj accumulates into C). beta == 0 overwrites
        // instead of scaling (standard BLAS semantics: garbage/NaN in C must
        // not propagate); the branch is per-call, the loops stay branch-free.
        if beta.s_is_zero() {
            for v in &mut c.data {
                *v = S::s_zero();
            }
        } else {
            for v in &mut c.data {
                *v = beta.s_mul(*v);
            }
        }
        let n = b.cols;
        for i in 0..a.rows {
            for k in 0..a.cols {
                let aik = alpha.s_mul(a.at(i, k));
                let brow = &b.data[k * n..(k + 1) * n];
                let crow = &mut c.data[i * n..(i + 1) * n];
                for j in 0..n {
                    crow[j] = crow[j].s_mul_acc(aik, brow[j]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_baselines::dd::DoubleDouble;
    use mf_baselines::qd::QuadDouble;
    use mf_core::{F64x2, F64x3, F64x4};
    use mf_mpsoft::MpFloat;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn rand_vec(rng: &mut SmallRng, n: usize) -> Vec<f64> {
        (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn dot_matches_exact_oracle_where_f64_fails() {
        // Ill-conditioned dot product: huge cancellation.
        let mut rng = SmallRng::seed_from_u64(900);
        for _ in 0..50 {
            let n = 200;
            let mut x = rand_vec(&mut rng, n);
            let mut y = rand_vec(&mut rng, n);
            // Plant cancelling pairs scaled by 1e15.
            for k in 0..n / 4 {
                let big = rng.gen_range(0.5..1.0) * 1e15;
                x[4 * k] = big;
                y[4 * k] = 1.0;
                x[4 * k + 1] = -big;
                y[4 * k + 1] = 1.0;
            }
            let exact = MpFloat::exact_dot(&x, &y).to_f64();

            let xs: Vec<F64x2> = x.iter().map(|&v| F64x2::from(v)).collect();
            let ys: Vec<F64x2> = y.iter().map(|&v| F64x2::from(v)).collect();
            let d2 = dot(&xs, &ys).to_f64();
            assert!(
                (d2 - exact).abs() <= 1e-12 * exact.abs().max(1.0),
                "F64x2 dot off: {d2:e} vs {exact:e}"
            );

            let xs: Vec<F64x4> = x.iter().map(|&v| F64x4::from(v)).collect();
            let ys: Vec<F64x4> = y.iter().map(|&v| F64x4::from(v)).collect();
            let d4 = dot(&xs, &ys).to_f64();
            assert!(
                (d4 - exact).abs() <= 1e-12 * exact.abs().max(1.0),
                "F64x4 dot off: {d4:e} vs {exact:e}"
            );
        }
    }

    #[test]
    fn axpy_linear_in_alpha() {
        let mut rng = SmallRng::seed_from_u64(901);
        let n = 257;
        let x: Vec<F64x3> = (0..n)
            .map(|_| F64x3::from(rng.gen_range(-1.0..1.0)))
            .collect();
        let y0: Vec<F64x3> = (0..n)
            .map(|_| F64x3::from(rng.gen_range(-1.0..1.0)))
            .collect();
        // axpy(a, x, axpy(b, x, y)) == axpy(a+b, x, y) to working precision.
        let (a, b) = (F64x3::from(0.3), F64x3::from(0.7));
        let mut y1 = y0.clone();
        axpy(b, &x, &mut y1);
        axpy(a, &x, &mut y1);
        let mut y2 = y0.clone();
        axpy(a.add(b), &x, &mut y2);
        for i in 0..n {
            let d = y1[i].sub(y2[i]).abs().to_f64();
            assert!(d <= 1e-45 * y2[i].abs().to_f64().max(1e-30), "i={i}");
        }
    }

    #[test]
    fn gemv_matches_reference() {
        let mut rng = SmallRng::seed_from_u64(902);
        let (m, n) = (23, 31);
        let a = Matrix::from_fn(m, n, |_, _| F64x2::from(rng.gen_range(-1.0..1.0f64)));
        let x: Vec<F64x2> = (0..n)
            .map(|_| F64x2::from(rng.gen_range(-1.0..1.0)))
            .collect();
        let mut y: Vec<F64x2> = (0..m)
            .map(|_| F64x2::from(rng.gen_range(-1.0..1.0)))
            .collect();
        let y0 = y.clone();
        let alpha = F64x2::from(1.5);
        let beta = F64x2::from(-0.5);
        gemv(alpha, &a, &x, beta, &mut y);
        // Reference in exact arithmetic.
        for i in 0..m {
            let mut row64 = Vec::new();
            let mut x64 = Vec::new();
            for j in 0..n {
                row64.push(a.at(i, j).to_f64());
                x64.push(x[j].to_f64());
            }
            let exact = 1.5 * MpFloat::exact_dot(&row64, &x64).to_f64() - 0.5 * y0[i].to_f64();
            assert!(
                (y[i].to_f64() - exact).abs() <= 1e-10 * exact.abs().max(1.0),
                "row {i}"
            );
        }
    }

    #[test]
    fn gemm_matches_gemv_columnwise() {
        let mut rng = SmallRng::seed_from_u64(903);
        let (m, k, n) = (9, 11, 7);
        let a = Matrix::from_fn(m, k, |_, _| F64x2::from(rng.gen_range(-1.0..1.0f64)));
        let b = Matrix::from_fn(k, n, |_, _| F64x2::from(rng.gen_range(-1.0..1.0f64)));
        let mut c = Matrix::from_fn(m, n, |_, _| F64x2::from(rng.gen_range(-1.0..1.0f64)));
        let c0 = c.clone();
        let alpha = F64x2::from(2.0);
        let beta = F64x2::from(0.25);
        gemm(alpha, &a, &b, beta, &mut c);
        // Column j of C equals gemv(alpha, A, B[:,j], beta, C0[:,j]).
        for j in 0..n {
            let bj: Vec<F64x2> = (0..k).map(|r| b.at(r, j)).collect();
            let mut yj: Vec<F64x2> = (0..m).map(|i| c0.at(i, j)).collect();
            gemv(alpha, &a, &bj, beta, &mut yj);
            for i in 0..m {
                let d = c.at(i, j).sub(yj[i]).abs().to_f64();
                assert!(d <= 1e-26, "c[{i}][{j}] d={d:e}");
            }
        }
    }

    /// Regression: `beta == 0` must overwrite the output, never read it.
    /// The old kernels computed `beta * y[i]` / `beta * C` unconditionally,
    /// so a NaN-poisoned (uninitialized/garbage) output buffer produced
    /// `0 * NaN = NaN` and the result was destroyed.
    #[test]
    fn beta_zero_overwrites_poisoned_output() {
        let mut rng = SmallRng::seed_from_u64(905);
        let (m, k, n) = (7, 9, 5);
        let a = Matrix::from_fn(m, k, |_, _| F64x2::from(rng.gen_range(-1.0..1.0f64)));
        let b = Matrix::from_fn(k, n, |_, _| F64x2::from(rng.gen_range(-1.0..1.0f64)));
        let x: Vec<F64x2> = (0..k)
            .map(|_| F64x2::from(rng.gen_range(-1.0..1.0)))
            .collect();
        let alpha = F64x2::from(1.5);
        let beta = F64x2::from(0.0);

        // gemv: y poisoned with NaN and Inf.
        let mut y = vec![F64x2::from(f64::NAN); m];
        y[1] = F64x2::from(f64::INFINITY);
        gemv(alpha, &a, &x, beta, &mut y);
        let mut y_clean = vec![F64x2::ZERO; m];
        gemv(alpha, &a, &x, beta, &mut y_clean);
        for i in 0..m {
            assert!(y[i].to_f64().is_finite(), "gemv row {i} kept the poison");
            assert_eq!(y[i].components(), y_clean[i].components(), "row {i}");
        }

        // gemm: C poisoned with NaN.
        let mut c = Matrix::from_fn(m, n, |_, _| F64x2::from(f64::NAN));
        gemm(alpha, &a, &b, beta, &mut c);
        let mut c_clean = Matrix::from_fn(m, n, |_, _| F64x2::ZERO);
        gemm(alpha, &a, &b, beta, &mut c_clean);
        for i in 0..m * n {
            assert!(c.data[i].to_f64().is_finite(), "gemm elem {i} kept NaN");
            assert_eq!(c.data[i].components(), c_clean.data[i].components());
        }
    }

    #[test]
    fn all_scalar_types_agree_on_small_problem() {
        let mut rng = SmallRng::seed_from_u64(904);
        let n = 64;
        let x64 = rand_vec(&mut rng, n);
        let y64 = rand_vec(&mut rng, n);
        let exact = MpFloat::exact_dot(&x64, &y64).to_f64();

        macro_rules! check {
            ($t:ty, $tol:expr) => {{
                let xs: Vec<$t> = x64.iter().map(|&v| <$t as Scalar>::s_from_f64(v)).collect();
                let ys: Vec<$t> = y64.iter().map(|&v| <$t as Scalar>::s_from_f64(v)).collect();
                let d = dot(&xs, &ys).s_to_f64();
                assert!(
                    (d - exact).abs() <= $tol * exact.abs().max(1.0),
                    concat!(stringify!($t), " dot off: {:e} vs {:e}"),
                    d,
                    exact
                );
            }};
        }
        check!(f64, 1e-13);
        check!(F64x2, 1e-15);
        check!(F64x3, 1e-15);
        check!(F64x4, 1e-15);
        check!(DoubleDouble, 1e-15);
        check!(QuadDouble, 1e-15);
        check!(mf_baselines::campary::Expansion<2>, 1e-15);
        check!(mf_baselines::campary::Expansion<4>, 1e-15);
    }

    /// The dispatched entry points must be bit-identical to the portable
    /// bodies — both `mul_add` lowerings (vfmadd vs soft-float) are
    /// correctly rounded, so the AVX2+FMA path may not change a single
    /// bit. On non-AVX2 hosts this degenerates to body-vs-body (trivially
    /// true); on AVX2 hosts it exercises the real claim.
    #[test]
    fn fma_dispatch_is_bit_identical_to_portable_body() {
        let mut rng = SmallRng::seed_from_u64(905);
        let (m, k, n) = (13, 17, 11);
        let xs: Vec<F64x4> = rand_vec(&mut rng, 257)
            .iter()
            .map(|&v| F64x4::from(v))
            .collect();
        let ys: Vec<F64x4> = rand_vec(&mut rng, 257)
            .iter()
            .map(|&v| F64x4::from(v))
            .collect();
        assert_eq!(dot(&xs, &ys).components(), dot_body(&xs, &ys).components());

        let alpha = F64x4::from(1.25);
        let mut y_disp = ys.clone();
        axpy(alpha, &xs, &mut y_disp);
        let mut y_body = ys.clone();
        axpy_body(alpha, &xs, &mut y_body);
        for i in 0..xs.len() {
            assert_eq!(y_disp[i].components(), y_body[i].components(), "i={i}");
        }

        let a = Matrix::from_fn(m, k, |_, _| F64x2::from(rng.gen_range(-1.0..1.0f64)));
        let b = Matrix::from_fn(k, n, |_, _| F64x2::from(rng.gen_range(-1.0..1.0f64)));
        let al = F64x2::from(-0.5);
        let be = F64x2::from(0.25);
        let c0 = Matrix::from_fn(m, n, |_, _| F64x2::from(rng.gen_range(-1.0..1.0f64)));
        let mut c_disp = c0.clone();
        gemm(al, &a, &b, be, &mut c_disp);
        let mut c_body = c0.clone();
        gemm_body(al, &a, &b, be, &mut c_body);
        for i in 0..m * n {
            assert_eq!(c_disp.data[i].components(), c_body.data[i].components());
        }

        let x: Vec<F64x2> = rand_vec(&mut rng, k)
            .iter()
            .map(|&v| F64x2::from(v))
            .collect();
        let mut yv_disp = vec![F64x2::from(0.5); m];
        gemv(al, &a, &x, be, &mut yv_disp);
        let mut yv_body = vec![F64x2::from(0.5); m];
        gemv_body(al, &a, &x, be, &mut yv_body);
        for i in 0..m {
            assert_eq!(yv_disp[i].components(), yv_body[i].components(), "row {i}");
        }
    }
}
