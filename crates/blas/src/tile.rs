//! Cache-blocked (tiled) GEMM over SoA matrices.
//!
//! The flat kernels ([`crate::kernels::gemm`], [`crate::parallel::gemm`])
//! stream every row of `B` through the cache once per row of `A`: at
//! production sizes (n >= 256, 16-64 bytes per extended-precision element)
//! the working set of one `ikj` pass is the whole of `B`, so the inner
//! AXPY runs at memory speed instead of lane-kernel speed. This module
//! implements the standard remedy (BLIS-style cache blocking): `C` is cut
//! into `MC x NC` tiles, each tile's update is computed through `KC`-deep
//! panels of `A` and `B` that are **packed** into contiguous AoS scratch
//! buffers sized for cache residency (`alpha*A` row-major, `B` block-major
//! per `JB`-column block), and the micro-kernel accumulates `JB` columns
//! of one C row in registers across the whole k-panel. On x86-64 the tile
//! body is additionally compiled with AVX2+FMA enabled behind a runtime
//! feature check, turning `two_prod`'s `mul_add` into a single `vfmadd`
//! (bit-identical — both are correctly rounded).
//!
//! **Bitwise contract:** per element, the tiled kernel performs exactly
//! the serial kernels' operation sequence — `beta*c_ij` (or the `beta == 0`
//! overwrite) first, then `c_ij += (alpha*a_ik)*b_kj` in ascending `k`
//! order (k-panels iterate in order, packing folds `alpha` in without
//! changing the product). The result is therefore bit-identical to
//! [`crate::soa::gemm`] and [`crate::kernels::gemm`], which the
//! conformance harness asserts.
//!
//! **Parallelism & degrade:** one pool job per C-tile via
//! [`crate::parallel::dispatch_chunks`] (pool or scoped executor, like
//! every other dispatch). Each tile task computes into a thread-local
//! packed C buffer — the shared matrix is only touched in the final
//! write-back — and runs under `catch_unwind` with a pre-task snapshot of
//! its tile region, so a panicking scalar degrades that tile to a serial
//! rerun on the calling thread (`blas.parallel.degraded_*` telemetry, same
//! contract as `parallel.rs`; a second panic propagates with the kernel
//! name and tile range). Telemetry: `blas.tile.dispatches`/`blas.tile.tiles`
//! counters, one `par.gemm.tile` span per tile (arg = tile element count)
//! under a `par.gemm.tiled` dispatch span, and the `blas.tile.queue_wait`
//! section sketching dispatch-to-tile-start latency.

use crate::parallel::{self, dispatch_chunks};
use crate::soa::SoaMatrix;
use crate::Scalar;
use mf_core::{FloatBase, MultiFloat};
use mf_telemetry::{trace, Counter, Section};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

static TILE_DISPATCHES: Counter = Counter::new("blas.tile.dispatches");
static TILE_TILES: Counter = Counter::new("blas.tile.tiles");
/// Latency from dispatch to each tile task starting (queue wait under the
/// pool; spawn latency under the scoped executor).
static TILE_QUEUE_WAIT: Section = Section::new("blas.tile.queue_wait");

/// Tile heights/widths (rows/cols of C per tile) and k-panel depth.
/// Sized so one packed B panel (`KC x NC x N` doubles) plus one packed C
/// tile stays L2-resident at every supported width N, while NC keeps the
/// micro-kernel in full `JB`-wide register blocks.
pub const MC: usize = 32;
pub const NC: usize = 128;
pub const KC: usize = 128;
/// Register-block width: columns of one C row accumulated on the stack
/// across a whole k-panel (JB independent accumulation chains per sweep).
const JB: usize = 8;

/// Per-component raw view of a SoA matrix's storage, allowing concurrent
/// disjoint-tile mutation from executor threads. The executors hand out
/// tile *indices*; distinct tile indices map to disjoint row/col rectangles
/// of `C`, so no two concurrently live accesses alias (same argument as
/// `parallel::ChunkedMut`, lifted to N component arrays).
struct SoaTiles<'a, T> {
    comps: Vec<*mut T>,
    cols: usize,
    len: usize,
    _life: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: distinct tile indices address disjoint element rectangles (the
// only way the pointers are used), so concurrent access from executor
// threads is data-race-free for any `Send` component type.
unsafe impl<T: Send> Sync for SoaTiles<'_, T> {}

impl<'a, T: FloatBase> SoaTiles<'a, T> {
    fn new<const N: usize>(c: &'a mut SoaMatrix<T, N>) -> Self {
        let cols = c.cols;
        let len = c.rows * c.cols;
        SoaTiles {
            comps: c.comps.iter_mut().map(|v| v.as_mut_ptr()).collect(),
            cols,
            len,
            _life: std::marker::PhantomData,
        }
    }

    /// Mutable view of component `q` of row `i`, columns `j0..j1`.
    ///
    /// # Safety
    ///
    /// The (row, column-range) rectangle must be in bounds and disjoint
    /// from every other live view; each tile index runs at most once per
    /// dispatch (both executors guarantee this).
    #[allow(clippy::mut_from_ref)]
    unsafe fn row_mut(&self, q: usize, i: usize, j0: usize, j1: usize) -> &'a mut [T] {
        debug_assert!(j0 <= j1 && i * self.cols + j1 <= self.len);
        std::slice::from_raw_parts_mut(self.comps[q].add(i * self.cols + j0), j1 - j0)
    }
}

/// One C-tile: half-open row and column ranges.
#[derive(Clone, Copy, Debug)]
struct Tile {
    i0: usize,
    i1: usize,
    j0: usize,
    j1: usize,
}

fn tiles_of(rows: usize, cols: usize) -> Vec<Tile> {
    let mut out = Vec::new();
    let mut i0 = 0;
    while i0 < rows {
        let i1 = (i0 + MC).min(rows);
        let mut j0 = 0;
        while j0 < cols {
            let j1 = (j0 + NC).min(cols);
            out.push(Tile { i0, i1, j0, j1 });
            j0 = j1;
        }
        i0 = i1;
    }
    out
}

/// Compute one C-tile: runtime-dispatched entry point. On x86-64 with
/// AVX2+FMA available the tile body is compiled with those features
/// enabled — `two_prod`'s `mul_add` becomes one `vfmadd` instruction
/// instead of a soft-float libm call (both are correctly rounded, so the
/// result is bit-identical), which is worth several× on the fused
/// extended-precision kernels. Everything else falls back to the portable
/// build of the same body.
fn compute_tile<T: FloatBase, const N: usize>(
    alpha: MultiFloat<T, N>,
    a: &SoaMatrix<T, N>,
    b: &SoaMatrix<T, N>,
    beta: MultiFloat<T, N>,
    c: &SoaTiles<'_, T>,
    t: Tile,
) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma") {
        // SAFETY: the required CPU features were just detected.
        return unsafe { compute_tile_fma(alpha, a, b, beta, c, t) };
    }
    compute_tile_body(alpha, a, b, beta, c, t)
}

/// AVX2+FMA instantiation of the tile body (the `#[target_feature]`
/// attribute applies to everything inlined into this frame, which the
/// `#[inline(always)]` on the body and the `#[inline]` EFT primitives
/// guarantee for the hot path).
///
/// # Safety
///
/// Caller must ensure the `avx2` and `fma` CPU features are present.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn compute_tile_fma<T: FloatBase, const N: usize>(
    alpha: MultiFloat<T, N>,
    a: &SoaMatrix<T, N>,
    b: &SoaMatrix<T, N>,
    beta: MultiFloat<T, N>,
    c: &SoaTiles<'_, T>,
    t: Tile,
) {
    compute_tile_body(alpha, a, b, beta, c, t)
}

/// Compute one C-tile through packed panels. The tile of `C` and the
/// `alpha*A` / `B` panels are repacked from SoA into AoS scratch buffers
/// (`B` block-major: each `JB`-column block stores its `kh` rows
/// contiguously, so the micro-kernel streams it with `chunks_exact` —
/// no index arithmetic, no bounds checks in the hot loop).
///
/// Per element this performs the flat kernels' exact op sequence —
/// `beta*c_ij` (or the `beta == 0` overwrite) first, then
/// `c_ij.s_mul_acc(alpha*a_ik, b_kj)` in ascending `k` — so the result is
/// bit-identical to `soa::gemm` / `kernels::gemm`.
#[inline(always)]
fn compute_tile_body<T: FloatBase, const N: usize>(
    alpha: MultiFloat<T, N>,
    a: &SoaMatrix<T, N>,
    b: &SoaMatrix<T, N>,
    beta: MultiFloat<T, N>,
    c: &SoaTiles<'_, T>,
    t: Tile,
) {
    let (ih, jw) = (t.i1 - t.i0, t.j1 - t.j0);
    let kdim = a.cols;
    let full = jw / JB; // full JB-wide column blocks; then a `tail`-wide one
    let tail = jw - full * JB;

    // Packed C tile (AoS, row-major ih x jw). Load + beta-scale up front
    // (beta == 0 overwrites: ct already zero).
    let mut ct: Vec<MultiFloat<T, N>> = vec![MultiFloat::ZERO; ih * jw];
    if !beta.is_zero() {
        for r in 0..ih {
            // SAFETY: this tile's rectangle; disjoint from other tiles.
            let rows: [&[T]; N] =
                core::array::from_fn(|q| &*unsafe { c.row_mut(q, t.i0 + r, t.j0, t.j1) });
            for (x, cij) in ct[r * jw..(r + 1) * jw].iter_mut().enumerate() {
                let v: [T; N] = core::array::from_fn(|q| rows[q][x]);
                *cij = beta.s_mul(MultiFloat::from_components(v));
            }
        }
    }

    // Panel scratch, reused across k-blocks: alpha*A (row-major, KC
    // stride; alpha folded in at pack time — the identical product the
    // flat kernels compute per (i, k), just computed once) and block-major
    // B (block `blk` holds rows k0..k1 of columns blk*JB.. at width w,
    // rows contiguous).
    let mut ap: Vec<MultiFloat<T, N>> = vec![MultiFloat::ZERO; ih * KC];
    let mut bp: Vec<MultiFloat<T, N>> = vec![MultiFloat::ZERO; KC * jw];

    let mut k0 = 0;
    while k0 < kdim {
        let k1 = (k0 + KC).min(kdim);
        let kh = k1 - k0;
        for r in 0..ih {
            for k in 0..kh {
                ap[r * KC + k] = alpha.s_mul(a.get(t.i0 + r, k0 + k));
            }
        }
        let mut blk = 0;
        let mut boff = 0;
        while blk * JB < jw {
            let w = JB.min(jw - blk * JB);
            for k in 0..kh {
                for x in 0..w {
                    let j = t.j0 + blk * JB + x;
                    let v: [T; N] = core::array::from_fn(|q| b.comps[q][(k0 + k) * b.cols + j]);
                    bp[boff + k * w + x] = MultiFloat::from_components(v);
                }
            }
            blk += 1;
            boff += kh * w;
        }

        // Register-blocked micro-kernel: each JB-column block of a C tile
        // row accumulates on the stack across the *entire* k-panel — the
        // flat kernels reload and restore every c_ij once per k; with the
        // k loop innermost that round trip disappears, and the JB
        // independent accumulation chains feed the out-of-order core ILP
        // that one element's serial `add(mul)` dependency chain cannot.
        for r in 0..ih {
            let arow = &ap[r * KC..r * KC + kh];
            for blk in 0..full {
                let bblk = &bp[blk * JB * kh..(blk + 1) * JB * kh];
                let cbase = r * jw + blk * JB;
                let mut acc: [MultiFloat<T, N>; JB] = core::array::from_fn(|x| ct[cbase + x]);
                for (aik, bk) in arow.iter().zip(bblk.chunks_exact(JB)) {
                    for x in 0..JB {
                        acc[x] = acc[x].s_mul_acc(*aik, bk[x]);
                    }
                }
                ct[cbase..cbase + JB].copy_from_slice(&acc);
            }
            if tail > 0 {
                let boff = full * JB * kh;
                let bblk = &bp[boff..boff + tail * kh];
                let cbase = r * jw + full * JB;
                let mut acc: [MultiFloat<T, N>; JB] =
                    core::array::from_fn(|x| ct[cbase + x.min(tail - 1)]);
                for (aik, bk) in arow.iter().zip(bblk.chunks_exact(tail)) {
                    for (x, bkj) in bk.iter().enumerate() {
                        acc[x] = acc[x].s_mul_acc(*aik, *bkj);
                    }
                }
                ct[cbase..cbase + tail].copy_from_slice(&acc[..tail]);
            }
        }
        k0 = k1;
    }

    // Write the finished tile back (the only shared-matrix mutation).
    for r in 0..ih {
        // SAFETY: this tile's rectangle; disjoint from other tiles.
        let rows: [&mut [T]; N] =
            core::array::from_fn(|q| unsafe { c.row_mut(q, t.i0 + r, t.j0, t.j1) });
        for (x, cij) in ct[r * jw..(r + 1) * jw].iter().enumerate() {
            let comps = cij.components();
            for q in 0..N {
                rows[q][x] = comps[q];
            }
        }
    }
}

/// `C <- alpha*A*B + beta*C`, cache-blocked, one pool job per C-tile.
/// Bit-identical to [`crate::soa::gemm`] / [`crate::kernels::gemm`]
/// (asserted by the conformance harness) at any thread count.
pub fn gemm_tiled<T: FloatBase, const N: usize>(
    alpha: MultiFloat<T, N>,
    a: &SoaMatrix<T, N>,
    b: &SoaMatrix<T, N>,
    beta: MultiFloat<T, N>,
    c: &mut SoaMatrix<T, N>,
    threads: usize,
) {
    assert_eq!(
        a.cols, b.rows,
        "gemm_tiled: A is {}x{} but B is {}x{}",
        a.rows, a.cols, b.rows, b.cols
    );
    assert_eq!(
        c.rows, a.rows,
        "gemm_tiled: C is {}x{} but A*B is {}x{}",
        c.rows, c.cols, a.rows, b.cols
    );
    assert_eq!(
        c.cols, b.cols,
        "gemm_tiled: C is {}x{} but A*B is {}x{}",
        c.rows, c.cols, a.rows, b.cols
    );
    if c.rows == 0 || c.cols == 0 {
        return;
    }
    let tiles = tiles_of(c.rows, c.cols);
    if mf_telemetry::ENABLED {
        TILE_DISPATCHES.incr();
        TILE_TILES.add(tiles.len() as u64);
    }
    let _sp = trace::span("par.gemm.tiled", (c.rows * c.cols) as u64);
    let shared = SoaTiles::new(c);

    if threads <= 1 || tiles.len() == 1 {
        // Serial tiled path: same per-tile computation, no dispatch.
        for &t in &tiles {
            let _tsp = trace::span("par.gemm.tile", ((t.i1 - t.i0) * (t.j1 - t.j0)) as u64);
            compute_tile(alpha, a, b, beta, &shared, t);
        }
        return;
    }

    let dispatched = Instant::now();
    let failed = dispatch_chunks(tiles.len(), &|ti| {
        let t = tiles[ti];
        TILE_QUEUE_WAIT.add_ns(dispatched.elapsed().as_nanos() as u64);
        let _tsp = trace::span("par.gemm.tile", ((t.i1 - t.i0) * (t.j1 - t.j0)) as u64);
        // Snapshot the tile rectangle so a panicking scalar can't leave a
        // torn write-back; compute itself only touches thread-local
        // buffers.
        let snapshot: Vec<Vec<T>> = (0..N)
            .map(|q| {
                let mut s = Vec::with_capacity((t.i1 - t.i0) * (t.j1 - t.j0));
                for r in t.i0..t.i1 {
                    // SAFETY: this tile's rectangle; disjoint from others.
                    s.extend_from_slice(unsafe { shared.row_mut(q, r, t.j0, t.j1) });
                }
                s
            })
            .collect();
        match catch_unwind(AssertUnwindSafe(|| {
            compute_tile(alpha, a, b, beta, &shared, t)
        })) {
            Ok(()) => true,
            Err(_) => {
                let jw = t.j1 - t.j0;
                for (q, snap) in snapshot.iter().enumerate() {
                    for (ri, r) in (t.i0..t.i1).enumerate() {
                        // SAFETY: this tile's rectangle; disjoint from others.
                        let dst = unsafe { shared.row_mut(q, r, t.j0, t.j1) };
                        dst.copy_from_slice(&snap[ri * jw..(ri + 1) * jw]);
                    }
                }
                false
            }
        }
    });
    parallel::record_degraded(failed.len());
    for ti in failed {
        let t = tiles[ti];
        parallel::degraded_rerun("gemm_tiled", t.i0, t.i1, || {
            compute_tile(alpha, a, b, beta, &shared, t)
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::soa::{self, SoaMatrix};
    use mf_core::F64x2;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn rand_soa<const N: usize>(rng: &mut SmallRng, rows: usize, cols: usize) -> SoaMatrix<f64, N> {
        SoaMatrix::from_fn(rows, cols, |_, _| {
            MultiFloat::from(rng.gen_range(-1.0..1.0f64))
        })
    }

    fn assert_tiled_matches_flat<const N: usize>(
        m: usize,
        k: usize,
        n: usize,
        threads: usize,
        seed: u64,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let a = rand_soa::<N>(&mut rng, m, k);
        let b = rand_soa::<N>(&mut rng, k, n);
        let c0 = rand_soa::<N>(&mut rng, m, n);
        let alpha = MultiFloat::<f64, N>::from(1.25);
        let beta = MultiFloat::<f64, N>::from(-0.5);

        let mut c_flat = c0.clone();
        soa::gemm(alpha, &a, &b, beta, &mut c_flat);
        let mut c_tile = c0.clone();
        gemm_tiled(alpha, &a, &b, beta, &mut c_tile, threads);
        for q in 0..N {
            assert_eq!(
                c_flat.comps[q], c_tile.comps[q],
                "N={N} {m}x{k}x{n} t={threads} comp {q}: tiled != flat"
            );
        }
    }

    /// Property: at non-multiple-of-tile shapes (1x1, primes, single rows,
    /// rows < threads, exact tile multiples, and > 1 tile in each
    /// dimension) the tiled kernel is bit-identical to the flat SoA kernel.
    #[test]
    fn tiled_matches_flat_at_awkward_shapes() {
        let shapes: [(usize, usize, usize); 8] = [
            (1, 1, 1),
            (3, 1, 2),
            (7, 13, 11),
            (31, 37, 29),
            (MC, KC, NC),
            (MC + 1, KC + 3, NC + 5),
            (2 * MC + 7, 17, 2 * NC + 1),
            (5, 300, 9), // k spans > 2 k-panels
        ];
        for (idx, &(m, k, n)) in shapes.iter().enumerate() {
            for threads in [1usize, 2, 5] {
                assert_tiled_matches_flat::<2>(m, k, n, threads, 2000 + idx as u64);
            }
        }
        // N = 3 exercises the generic-width micro-kernel instantiation.
        assert_tiled_matches_flat::<3>(19, 23, 17, 3, 2100);
        assert_tiled_matches_flat::<3>(MC + 2, 5, NC + 2, 2, 2101);
    }

    #[test]
    fn tiled_beta_zero_overwrites_poisoned_c() {
        let mut rng = SmallRng::seed_from_u64(2200);
        let (m, k, n) = (13, 9, 21);
        let a = rand_soa::<2>(&mut rng, m, k);
        let b = rand_soa::<2>(&mut rng, k, n);
        let alpha = F64x2::from(2.0);
        let beta = F64x2::from(0.0);
        let mut c = SoaMatrix::from_fn(m, n, |_, _| F64x2::from(f64::NAN));
        gemm_tiled(alpha, &a, &b, beta, &mut c, 3);
        let mut c_ref = SoaMatrix::from_fn(m, n, |_, _| F64x2::from(0.0));
        soa::gemm(alpha, &a, &b, beta, &mut c_ref);
        for q in 0..2 {
            assert_eq!(c.comps[q], c_ref.comps[q], "comp {q}");
        }
        for i in 0..m {
            for j in 0..n {
                assert!(c.get(i, j).to_f64().is_finite(), "({i},{j}) kept NaN");
            }
        }
    }

    #[test]
    fn tiles_cover_exactly() {
        for (rows, cols) in [(1, 1), (MC, NC), (MC + 1, NC - 1), (100, 300), (3, 500)] {
            let ts = tiles_of(rows, cols);
            let mut covered = vec![false; rows * cols];
            for t in &ts {
                for i in t.i0..t.i1 {
                    for j in t.j0..t.j1 {
                        assert!(!covered[i * cols + j], "tile overlap at ({i},{j})");
                        covered[i * cols + j] = true;
                    }
                }
            }
            assert!(covered.iter().all(|&v| v), "{rows}x{cols} not covered");
        }
    }

    #[test]
    #[should_panic(expected = "gemm_tiled: A is")]
    fn tiled_rejects_inner_dim_mismatch() {
        let a = SoaMatrix::<f64, 2>::zeros(3, 4);
        let b = SoaMatrix::<f64, 2>::zeros(5, 2);
        let mut c = SoaMatrix::<f64, 2>::zeros(3, 2);
        gemm_tiled(F64x2::from(1.0), &a, &b, F64x2::from(0.0), &mut c, 2);
    }

    /// N = 3 at a shape whose tiles exercise both row and column
    /// remainders under a thread count above the tile count.
    #[test]
    fn tiled_more_threads_than_tiles() {
        assert_tiled_matches_flat::<3>(2, 3, 2, 16, 2300);
    }
}
