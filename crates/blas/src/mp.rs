//! BLAS kernels over the limb-based [`MpFloat`] — the GMP/MPFR-class
//! baseline (DESIGN.md substitution T4).
//!
//! Like the C libraries it stands in for, `MpFloat` heap-allocates its
//! mantissa and branches through alignment/normalization/rounding on every
//! operation; the kernels below inherit those costs, which is the point of
//! the comparison. The `prec` argument plays the role of
//! `mpfr_set_default_prec`: 53 / 103 / 156 / 208 bits match the paper's
//! columns.

use mf_mpsoft::MpFloat;

/// `y <- alpha*x + y` at `prec` bits.
pub fn axpy(alpha: &MpFloat, x: &[MpFloat], y: &mut [MpFloat], prec: u32) {
    assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = yi.add(&alpha.mul(xi, prec), prec);
    }
}

/// Dot product at `prec` bits.
pub fn dot(x: &[MpFloat], y: &[MpFloat], prec: u32) -> MpFloat {
    assert_eq!(x.len(), y.len());
    let mut acc = MpFloat::zero(prec);
    for (xi, yi) in x.iter().zip(y) {
        acc = acc.add(&xi.mul(yi, prec), prec);
    }
    acc
}

/// `y <- alpha*A*x + beta*y`, `ij` order; `a` is row-major `rows x cols`.
/// (BLAS-shaped signature: the argument list mirrors the `dgemv` interface.)
#[allow(clippy::too_many_arguments)]
pub fn gemv(
    alpha: &MpFloat,
    a: &[MpFloat],
    rows: usize,
    cols: usize,
    x: &[MpFloat],
    beta: &MpFloat,
    y: &mut [MpFloat],
    prec: u32,
) {
    assert_eq!(a.len(), rows * cols);
    assert_eq!(x.len(), cols);
    assert_eq!(y.len(), rows);
    for i in 0..rows {
        let acc = dot(&a[i * cols..(i + 1) * cols], x, prec);
        y[i] = beta.mul(&y[i], prec).add(&alpha.mul(&acc, prec), prec);
    }
}

/// `C <- alpha*A*B + beta*C`, `ikj` order.
#[allow(clippy::too_many_arguments)]
pub fn gemm(
    alpha: &MpFloat,
    a: &[MpFloat],
    b: &[MpFloat],
    c: &mut [MpFloat],
    m: usize,
    k: usize,
    n: usize,
    beta: &MpFloat,
    prec: u32,
) {
    assert_eq!(a.len(), m * k);
    assert_eq!(b.len(), k * n);
    assert_eq!(c.len(), m * n);
    for v in c.iter_mut() {
        *v = beta.mul(v, prec);
    }
    for i in 0..m {
        for kk in 0..k {
            let aik = alpha.mul(&a[i * k + kk], prec);
            for j in 0..n {
                let p = aik.mul(&b[kk * n + j], prec);
                c[i * n + j] = c[i * n + j].add(&p, prec);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn rand_mp(rng: &mut SmallRng, prec: u32) -> MpFloat {
        MpFloat::from_f64(rng.gen_range(-1.0..1.0), prec)
    }

    #[test]
    fn dot_matches_exact_for_doubles() {
        let mut rng = SmallRng::seed_from_u64(920);
        let n = 100;
        let x64: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let y64: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let x: Vec<MpFloat> = x64.iter().map(|&v| MpFloat::from_f64(v, 208)).collect();
        let y: Vec<MpFloat> = y64.iter().map(|&v| MpFloat::from_f64(v, 208)).collect();
        let got = dot(&x, &y, 208);
        let exact = MpFloat::exact_dot(&x64, &y64);
        assert!(got.rel_error_vs(&exact) <= 2.0f64.powi(-200));
    }

    #[test]
    fn gemv_gemm_consistency() {
        let mut rng = SmallRng::seed_from_u64(921);
        let prec = 103;
        let (m, k, n) = (6, 5, 4);
        let a: Vec<MpFloat> = (0..m * k).map(|_| rand_mp(&mut rng, prec)).collect();
        let b: Vec<MpFloat> = (0..k * n).map(|_| rand_mp(&mut rng, prec)).collect();
        let mut c: Vec<MpFloat> = (0..m * n).map(|_| MpFloat::zero(prec)).collect();
        let one = MpFloat::from_f64(1.0, prec);
        let zero = MpFloat::zero(prec);
        gemm(&one, &a, &b, &mut c, m, k, n, &zero, prec);
        // Column 0 of C vs gemv against column 0 of B.
        let b0: Vec<MpFloat> = (0..k).map(|r| b[r * n].clone()).collect();
        let mut y: Vec<MpFloat> = (0..m).map(|_| MpFloat::zero(prec)).collect();
        gemv(&one, &a, m, k, &b0, &zero, &mut y, prec);
        for i in 0..m {
            let d = c[i * n].sub(&y[i], prec).abs().to_f64();
            assert!(d <= 1e-28, "row {i}: d={d:e}");
        }
    }

    #[test]
    fn axpy_basic() {
        let prec = 156;
        let alpha = MpFloat::from_f64(2.0, prec);
        let x = vec![MpFloat::from_f64(1.5, prec), MpFloat::from_f64(-0.5, prec)];
        let mut y = vec![MpFloat::from_f64(1.0, prec), MpFloat::from_f64(1.0, prec)];
        axpy(&alpha, &x, &mut y, prec);
        assert_eq!(y[0].to_f64(), 4.0);
        assert_eq!(y[1].to_f64(), 0.0);
    }
}
