//! Adaptive BLAS entry points: per-chunk precision escalation.
//!
//! The scalar engine (`mf_core::adaptive`) escalates one operation at a
//! time; at BLAS granularity that would put a ladder decision on every
//! element. These entry points instead treat a **fixed-size chunk**
//! ([`ADAPTIVE_CHUNK`] elements, or one matrix row for GEMV) as the
//! escalation unit: each chunk runs the plain branch-free `N=2` kernel
//! first, is judged by the guard layer's slice detectors
//! ([`mf_core::guard::escalated_nonfinite`] / `noncanonical` plus a chunk
//! head-consistency bound), and is recomputed at `N=3 → N=4 → MpFloat
//! exact` only when the judgment fails. Clean workloads therefore run at
//! full kernel speed with one naive `f64` pass of overhead per chunk, and
//! a single hostile chunk pays for precision without slowing its
//! neighbours.
//!
//! Chunk boundaries are fixed by element index — **not** by thread count —
//! so results are bitwise identical across `threads` settings; the
//! parallel path reuses [`crate::parallel`]'s executor dispatch and its
//! panic degrade-to-serial contract (a panicking worker chunk is restored
//! from its snapshot and rerun, adaptively, on the calling thread).
//!
//! Only the `max_rung` and `tol_bits` knobs of
//! [`EscalationPolicy`] apply here: residency (`sticky`/`decay`) and the
//! escalation budget are properties of the scalar engine's per-value
//! ladder, while a chunk's rung is decided fresh on every call.

use std::panic::{catch_unwind, AssertUnwindSafe};

use mf_core::adaptive::{EscalationPolicy, Rung};
use mf_core::guard::{escalated_nonfinite, noncanonical};
use mf_core::{F64x2, MultiFloat};
use mf_mpsoft::MpFloat;
use mf_telemetry::{trace, Counter};

use crate::parallel::{degraded_rerun, dispatch_chunks, record_degraded, ChunkedMut};
use crate::{kernels, Matrix, Scalar};

static ADAPT_CHUNKS: Counter = Counter::new("blas.adaptive.chunks");
static ADAPT_ESCALATIONS: Counter = Counter::new("blas.adaptive.escalations");
static ADAPT_ORACLE_FALLS: Counter = Counter::new("blas.adaptive.oracle_falls");

/// Elements per escalation unit. Fixed (never derived from the thread
/// count) so chunk boundaries — and therefore results — are reproducible.
/// Small enough that one hostile element escalates at most 128 elements of
/// work; large enough that the naive `f64` judgment pass stays a few
/// percent of the `N=2` kernel. The chunk head-consistency bound tolerates
/// `len · 2^-P` of naive-summation noise, so 128 keeps ~2^-46 of slack
/// under the default `tol_bits = 40`.
pub const ADAPTIVE_CHUNK: usize = 128;

/// Per-call escalation tally, merged across chunks in chunk order.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdaptiveReport {
    /// Escalation units examined (element chunks; rows count their own
    /// element chunks for GEMV).
    pub chunks: u64,
    /// Units that left the base rung.
    pub escalated: u64,
    /// Units settled at `N=3`.
    pub n3: u64,
    /// Units settled at `N=4`.
    pub n4: u64,
    /// Units that fell through to the `MpFloat` exact evaluation.
    pub oracle: u64,
    /// Units rerun serially after a worker panic (the parallel degrade
    /// contract; the rerun is still adaptive, so results are unchanged).
    pub degraded: u64,
}

impl AdaptiveReport {
    /// Escalated units per unit — the per-workload headline rate.
    pub fn escalation_rate(&self) -> f64 {
        if self.chunks == 0 {
            0.0
        } else {
            self.escalated as f64 / self.chunks as f64
        }
    }

    fn tally(&mut self, rung: Rung) {
        self.chunks += 1;
        match rung {
            Rung::N2 => {}
            Rung::N3 => {
                self.escalated += 1;
                self.n3 += 1;
            }
            Rung::N4 => {
                self.escalated += 1;
                self.n4 += 1;
            }
            Rung::Oracle => {
                self.escalated += 1;
                self.oracle += 1;
            }
        }
    }

    fn merge(&mut self, other: &AdaptiveReport) {
        self.chunks += other.chunks;
        self.escalated += other.escalated;
        self.n3 += other.n3;
        self.n4 += other.n4;
        self.oracle += other.oracle;
        self.degraded += other.degraded;
    }

    fn flush_telemetry(&self) {
        if !mf_telemetry::ENABLED {
            return;
        }
        ADAPT_CHUNKS.add(self.chunks);
        ADAPT_ESCALATIONS.add(self.escalated);
        ADAPT_ORACLE_FALLS.add(self.oracle);
    }
}

/// Fixed-size chunk ranges over `0..len` (one empty range for `len == 0`,
/// mirroring `chunk_ranges`' workers-iterate-it contract).
fn fixed_chunks(len: usize) -> Vec<(usize, usize)> {
    if len == 0 {
        return vec![(0, 0)];
    }
    (0..len)
        .step_by(ADAPTIVE_CHUNK)
        .map(|lo| (lo, (lo + ADAPTIVE_CHUNK).min(len)))
        .collect()
}

fn widen<const N: usize>(v: F64x2) -> MultiFloat<f64, N> {
    let c2 = v.components();
    let mut c = [0.0f64; N];
    c[0] = c2[0];
    c[1] = c2[1];
    // Renormalize defensively: fault-corrupted inputs may be noncanonical.
    MultiFloat::from_components_renorm(c)
}

fn narrow<const N: usize>(v: MultiFloat<f64, N>) -> F64x2 {
    let c = v.components();
    let mut tail = 0.0f64;
    for i in (1..N).rev() {
        tail += c[i];
    }
    F64x2::from_components_renorm([c[0], tail])
}

/// Post-condition judgment shared by every unit: escalate when a finite
/// input chunk produced a non-finite or noncanonical value, or when the
/// accumulated heads drifted from the naive `f64` evaluation by more than
/// `mag · 2^-tol_bits`. Mirrors the guard layer's `post_flags` +
/// `head_inconsistent` semantics on aggregates; non-finite inputs pass
/// through untouched (§4.4 propagation is not a collapse).
fn aggregate_trip(
    inputs_finite: bool,
    out_bad: bool,
    naive: f64,
    mag: f64,
    head_sum: f64,
    tol_bits: u32,
) -> bool {
    if out_bad {
        return true;
    }
    if !inputs_finite {
        return false;
    }
    if !naive.is_finite() || !mag.is_finite() || !head_sum.is_finite() {
        return false;
    }
    (naive - head_sum).abs() > mag * 2.0f64.powi(-(tol_bits as i32))
}

/// Per-value post flags: non-finite escalation or canonical-form violation.
fn value_bad(inputs_finite: bool, v: &F64x2) -> bool {
    let c = v.components();
    let finite = v.is_finite();
    escalated_nonfinite(inputs_finite, &c) | (noncanonical(&c) & finite)
}

// ---------------------------------------------------------------------------
// DOT
// ---------------------------------------------------------------------------

/// One dot chunk at one rung; `None` selects the MpFloat exact evaluation.
fn dot_at(x: &[F64x2], y: &[F64x2], rung: Rung) -> F64x2 {
    match rung.terms() {
        Some(2) => kernels::dot(x, y),
        Some(3) => {
            let wx: Vec<_> = x.iter().map(|&v| widen::<3>(v)).collect();
            let wy: Vec<_> = y.iter().map(|&v| widen::<3>(v)).collect();
            narrow(kernels::dot(&wx, &wy))
        }
        Some(4) => {
            let wx: Vec<_> = x.iter().map(|&v| widen::<4>(v)).collect();
            let wy: Vec<_> = y.iter().map(|&v| widen::<4>(v)).collect();
            narrow(kernels::dot(&wx, &wy))
        }
        _ => {
            // Exact: expand every F64x2·F64x2 product into its four f64
            // cross products and sum them all without rounding.
            let mut xs = Vec::with_capacity(4 * x.len());
            let mut ys = Vec::with_capacity(4 * x.len());
            for (xi, yi) in x.iter().zip(y) {
                let [x0, x1] = xi.components();
                let [y0, y1] = yi.components();
                xs.extend_from_slice(&[x0, x0, x1, x1]);
                ys.extend_from_slice(&[y0, y1, y0, y1]);
            }
            F64x2::from_mp(&MpFloat::exact_dot(&xs, &ys))
        }
    }
}

/// The fused base-rung pass: the same `s_mul_acc` accumulation as
/// [`kernels::dot`] (bitwise identical partial) with the detector inputs —
/// operand finiteness, naive `f64` head sum, magnitude — gathered in the
/// same traversal. The independent `f64` chains ride in the execution
/// slots the serial `F64x2` accumulation leaves idle, so the clean-input
/// detector cost is close to free.
fn dot_chunk_base(x: &[F64x2], y: &[F64x2]) -> (F64x2, bool, f64, f64) {
    // Same AVX2+FMA runtime dispatch as the plain kernels (`kernels.rs`,
    // `soa.rs`, `tile.rs`): the raw path the overhead gate compares
    // against gets `vfmadd` lowering, so the base pass must too.
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma") {
        // SAFETY: the required CPU features were just detected.
        return unsafe { dot_chunk_base_fma(x, y) };
    }
    dot_chunk_base_body(x, y)
}

/// AVX2+FMA instantiation of [`dot_chunk_base_body`].
///
/// # Safety
///
/// Caller must ensure the `avx2` and `fma` CPU features are present.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn dot_chunk_base_fma(x: &[F64x2], y: &[F64x2]) -> (F64x2, bool, f64, f64) {
    dot_chunk_base_body(x, y)
}

#[inline(always)]
fn dot_chunk_base_body(x: &[F64x2], y: &[F64x2]) -> (F64x2, bool, f64, f64) {
    let mut acc = F64x2::ZERO;
    let mut finite = true;
    let mut naive = 0.0f64;
    let mut mag = 0.0f64;
    for (xi, yi) in x.iter().zip(y) {
        finite &= xi.is_finite() & yi.is_finite();
        let p = xi.hi() * yi.hi();
        naive += p;
        mag += p.abs();
        acc = acc.s_mul_acc(*xi, *yi);
    }
    (acc, finite, naive, mag)
}

/// Evaluate one dot chunk up the ladder. Returns the accepted partial and
/// its rung.
fn dot_chunk(x: &[F64x2], y: &[F64x2], policy: &EscalationPolicy) -> (F64x2, Rung) {
    let (v, finite, naive, mag) = dot_chunk_base(x, y);
    let trip = aggregate_trip(
        finite,
        value_bad(finite, &v),
        naive,
        mag,
        v.hi(),
        policy.tol_bits,
    );
    if !trip || Rung::N2 >= policy.max_rung {
        return (v, Rung::N2);
    }
    let mut rung = Rung::N3;
    loop {
        let v = dot_at(x, y, rung);
        let trip = aggregate_trip(
            finite,
            value_bad(finite, &v),
            naive,
            mag,
            v.hi(),
            policy.tol_bits,
        );
        if !trip || rung >= policy.max_rung {
            return (v, rung);
        }
        rung = rung.next();
    }
}

/// Serial adaptive dot over fixed chunks, tallying into `report`.
fn dot_serial(
    x: &[F64x2],
    y: &[F64x2],
    policy: &EscalationPolicy,
    report: &mut AdaptiveReport,
) -> F64x2 {
    let mut acc = F64x2::ZERO;
    for (lo, hi) in fixed_chunks(x.len()) {
        let (v, rung) = dot_chunk(&x[lo..hi], &y[lo..hi], policy);
        report.tally(rung);
        acc += v;
    }
    acc
}

/// Adaptive dot product: per-chunk escalation, chunk-ordered reduce.
/// Results are bitwise identical for every `threads` value.
pub fn dot_adaptive(
    x: &[F64x2],
    y: &[F64x2],
    policy: &EscalationPolicy,
    threads: usize,
) -> (F64x2, AdaptiveReport) {
    assert_eq!(x.len(), y.len());
    let _sp = trace::span("blas.adaptive.dot", x.len() as u64);
    let ranges = fixed_chunks(x.len());
    let mut report = AdaptiveReport::default();
    if threads <= 1 || ranges.len() == 1 {
        let v = dot_serial(x, y, policy, &mut report);
        report.flush_telemetry();
        return (v, report);
    }

    let mut partials = vec![(F64x2::ZERO, Rung::N2); ranges.len()];
    let failed = {
        let slots = ChunkedMut::new(&mut partials);
        dispatch_chunks(ranges.len(), &|ci| {
            let (lo, hi) = ranges[ci];
            let _t = trace::span("blas.adaptive.dot.chunk", (hi - lo) as u64);
            match catch_unwind(AssertUnwindSafe(|| {
                dot_chunk(&x[lo..hi], &y[lo..hi], policy)
            })) {
                Ok(v) => {
                    // SAFETY: slot ci is written only by the single
                    // executor of chunk ci.
                    let slot = unsafe { slots.slice(ci, ci + 1) };
                    slot[0] = v;
                    true
                }
                Err(_) => false,
            }
        })
    };
    record_degraded(failed.len());
    report.degraded = failed.len() as u64;
    let mut acc = F64x2::ZERO;
    for (ci, &(lo, hi)) in ranges.iter().enumerate() {
        let (v, rung) = if failed.binary_search(&ci).is_ok() {
            let mut out = (F64x2::ZERO, Rung::N2);
            degraded_rerun("adaptive_dot", lo, hi, || {
                out = dot_chunk(&x[lo..hi], &y[lo..hi], policy)
            });
            out
        } else {
            partials[ci]
        };
        report.tally(rung);
        acc += v;
    }
    report.flush_telemetry();
    (acc, report)
}

// ---------------------------------------------------------------------------
// AXPY
// ---------------------------------------------------------------------------

/// One axpy chunk at one wide rung, recomputed from the pre-kernel
/// snapshot of `y`.
fn axpy_wide<const N: usize>(alpha: F64x2, x: &[F64x2], snap: &[F64x2], y: &mut [F64x2]) {
    let wa = widen::<N>(alpha);
    let wx: Vec<_> = x.iter().map(|&v| widen::<N>(v)).collect();
    let mut wy: Vec<_> = snap.iter().map(|&v| widen::<N>(v)).collect();
    kernels::axpy(wa, &wx, &mut wy);
    for (out, w) in y.iter_mut().zip(wy) {
        *out = narrow(w);
    }
}

/// Exact per-element `alpha·x + y` through `MpFloat`.
fn axpy_exact(alpha: F64x2, x: &[F64x2], snap: &[F64x2], y: &mut [F64x2]) {
    let [a0, a1] = alpha.components();
    for ((out, xi), yi) in y.iter_mut().zip(x).zip(snap) {
        let [x0, x1] = xi.components();
        let [y0, y1] = yi.components();
        let xs = [a0, a0, a1, a1, y0, y1];
        let ys = [x0, x1, x0, x1, 1.0, 1.0];
        *out = F64x2::from_mp(&MpFloat::exact_dot(&xs, &ys));
    }
}

/// The fused base-rung axpy pass (FMA-dispatched like [`dot_chunk_base`]):
/// updates `y` in place and returns the detector inputs.
fn axpy_chunk_base(alpha: F64x2, x: &[F64x2], y: &mut [F64x2]) -> (bool, f64, f64) {
    #[cfg(target_arch = "x86_64")]
    if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma") {
        // SAFETY: the required CPU features were just detected.
        return unsafe { axpy_chunk_base_fma(alpha, x, y) };
    }
    axpy_chunk_base_body(alpha, x, y)
}

/// AVX2+FMA instantiation of [`axpy_chunk_base_body`].
///
/// # Safety
///
/// Caller must ensure the `avx2` and `fma` CPU features are present.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn axpy_chunk_base_fma(alpha: F64x2, x: &[F64x2], y: &mut [F64x2]) -> (bool, f64, f64) {
    axpy_chunk_base_body(alpha, x, y)
}

#[inline(always)]
fn axpy_chunk_base_body(alpha: F64x2, x: &[F64x2], y: &mut [F64x2]) -> (bool, f64, f64) {
    let mut finite = alpha.is_finite();
    let mut naive = 0.0f64;
    let mut mag = 0.0f64;
    let a_hi = alpha.hi();
    for (yi, xi) in y.iter_mut().zip(x) {
        finite &= xi.is_finite() & yi.is_finite();
        let p = a_hi * xi.hi();
        naive += p + yi.hi();
        mag += p.abs() + yi.hi().abs();
        *yi = yi.s_mul_acc(alpha, *xi);
    }
    (finite, naive, mag)
}

/// Evaluate one axpy chunk up the ladder, in place. Returns the rung.
///
/// The base rung is fused: the update is the same `s_mul_acc` as
/// [`kernels::axpy`] (bitwise identical), with the detector inputs gathered
/// in the same traversal before each element is overwritten.
fn axpy_chunk(alpha: F64x2, x: &[F64x2], y: &mut [F64x2], policy: &EscalationPolicy) -> Rung {
    let snap = y.to_vec();
    let (finite, naive, mag) = axpy_chunk_base(alpha, x, y);
    let mut rung = Rung::N2;
    loop {
        let mut bad = false;
        let mut head_sum = 0.0f64;
        for v in y.iter() {
            bad |= value_bad(finite, v);
            head_sum += v.hi();
        }
        let trip = aggregate_trip(finite, bad, naive, mag, head_sum, policy.tol_bits);
        if !trip || rung >= policy.max_rung {
            return rung;
        }
        y.copy_from_slice(&snap);
        rung = rung.next();
        match rung.terms() {
            Some(3) => axpy_wide::<3>(alpha, x, &snap, y),
            Some(4) => axpy_wide::<4>(alpha, x, &snap, y),
            _ => axpy_exact(alpha, x, &snap, y),
        }
    }
}

/// Adaptive `y <- alpha*x + y`: per-chunk escalation. Results are bitwise
/// identical for every `threads` value.
pub fn axpy_adaptive(
    alpha: F64x2,
    x: &[F64x2],
    y: &mut [F64x2],
    policy: &EscalationPolicy,
    threads: usize,
) -> AdaptiveReport {
    assert_eq!(x.len(), y.len());
    let _sp = trace::span("blas.adaptive.axpy", y.len() as u64);
    let ranges = fixed_chunks(y.len());
    let mut report = AdaptiveReport::default();
    if threads <= 1 || ranges.len() == 1 {
        for &(lo, hi) in &ranges {
            let rung = axpy_chunk(alpha, &x[lo..hi], &mut y[lo..hi], policy);
            report.tally(rung);
        }
        report.flush_telemetry();
        return report;
    }

    let mut rungs = vec![Rung::N2; ranges.len()];
    let failed = {
        let out = ChunkedMut::new(y);
        let slots = ChunkedMut::new(&mut rungs);
        dispatch_chunks(ranges.len(), &|ci| {
            let (lo, hi) = ranges[ci];
            let _t = trace::span("blas.adaptive.axpy.chunk", (hi - lo) as u64);
            // SAFETY: chunk ranges are disjoint and each index runs once.
            let snap = unsafe { out.slice(lo, hi) }.to_vec();
            let res = catch_unwind(AssertUnwindSafe(|| {
                // SAFETY: as above; this view lives only inside the closure.
                let head = unsafe { out.slice(lo, hi) };
                axpy_chunk(alpha, &x[lo..hi], head, policy)
            }));
            match res {
                Ok(rung) => {
                    // SAFETY: slot ci is written only by chunk ci's executor.
                    let slot = unsafe { slots.slice(ci, ci + 1) };
                    slot[0] = rung;
                    true
                }
                Err(_) => {
                    // SAFETY: the panicked closure's view is dead; restore
                    // the snapshot for the deterministic serial rerun.
                    unsafe { out.slice(lo, hi) }.copy_from_slice(&snap);
                    false
                }
            }
        })
    };
    record_degraded(failed.len());
    report.degraded = failed.len() as u64;
    for ci in &failed {
        let (lo, hi) = ranges[*ci];
        degraded_rerun("adaptive_axpy", lo, hi, || {
            rungs[*ci] = axpy_chunk(alpha, &x[lo..hi], &mut y[lo..hi], policy)
        });
    }
    for rung in rungs {
        report.tally(rung);
    }
    report.flush_telemetry();
    report
}

// ---------------------------------------------------------------------------
// GEMV
// ---------------------------------------------------------------------------

/// Adaptive `y = A·x`: every row is an adaptive dot over fixed element
/// chunks; rows are divided among threads. Results are bitwise identical
/// for every `threads` value.
pub fn gemv_adaptive(
    a: &Matrix<F64x2>,
    x: &[F64x2],
    policy: &EscalationPolicy,
    threads: usize,
) -> (Vec<F64x2>, AdaptiveReport) {
    assert_eq!(
        a.cols,
        x.len(),
        "gemv_adaptive: A is {}x{} but x has {} elements",
        a.rows,
        a.cols,
        x.len()
    );
    let _sp = trace::span("blas.adaptive.gemv", a.rows as u64);
    let mut y = vec![F64x2::ZERO; a.rows];
    let mut report = AdaptiveReport::default();
    if threads <= 1 || a.rows <= 1 {
        for (r, out) in y.iter_mut().enumerate() {
            *out = dot_serial(a.row(r), x, policy, &mut report);
        }
        report.flush_telemetry();
        return (y, report);
    }

    let ranges = crate::parallel::chunk_ranges(a.rows, threads);
    let mut reports = vec![AdaptiveReport::default(); ranges.len()];
    let failed = {
        let out = ChunkedMut::new(&mut y);
        let slots = ChunkedMut::new(&mut reports);
        dispatch_chunks(ranges.len(), &|ci| {
            let (lo, hi) = ranges[ci];
            let _t = trace::span("blas.adaptive.gemv.chunk", (hi - lo) as u64);
            let res = catch_unwind(AssertUnwindSafe(|| {
                let mut local = AdaptiveReport::default();
                // SAFETY: row ranges are disjoint and each index runs once.
                let head = unsafe { out.slice(lo, hi) };
                for (r, out_y) in (lo..hi).zip(head.iter_mut()) {
                    *out_y = dot_serial(a.row(r), x, policy, &mut local);
                }
                local
            }));
            match res {
                Ok(local) => {
                    // SAFETY: slot ci is written only by chunk ci's executor.
                    let slot = unsafe { slots.slice(ci, ci + 1) };
                    slot[0] = local;
                    true
                }
                Err(_) => false,
            }
        })
    };
    record_degraded(failed.len());
    for ci in &failed {
        let (lo, hi) = ranges[*ci];
        let mut local = AdaptiveReport::default();
        degraded_rerun("adaptive_gemv", lo, hi, || {
            for r in lo..hi {
                y[r] = dot_serial(a.row(r), x, policy, &mut local);
            }
        });
        local.degraded = 1;
        reports[*ci] = local;
    }
    for local in &reports {
        report.merge(local);
    }
    report.flush_telemetry();
    (y, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn rand_vec(rng: &mut SmallRng, n: usize) -> Vec<F64x2> {
        (0..n)
            .map(|_| F64x2::from(rng.gen_range(-1.0..1.0)) * F64x2::from(rng.gen_range(-1.0..1.0)))
            .collect()
    }

    fn policy() -> EscalationPolicy {
        EscalationPolicy::default()
    }

    #[test]
    fn clean_inputs_stay_on_base_rung_and_match_kernels() {
        let mut rng = SmallRng::seed_from_u64(0xADA1);
        let n = 300; // three chunks
        let x = rand_vec(&mut rng, n);
        let y = rand_vec(&mut rng, n);

        let (d, rep) = dot_adaptive(&x, &y, &policy(), 1);
        assert_eq!(rep.chunks, 3);
        assert_eq!(rep.escalated, 0);
        let d_ser = kernels::dot(&x, &y);
        assert!((d.to_f64() - d_ser.to_f64()).abs() <= 1e-25);

        let alpha = F64x2::from(1.5);
        let mut y_ad = y.clone();
        let rep = axpy_adaptive(alpha, &x, &mut y_ad, &policy(), 1);
        assert_eq!(rep.escalated, 0);
        let mut y_ser = y.clone();
        kernels::axpy(alpha, &x, &mut y_ser);
        for i in 0..n {
            assert_eq!(y_ad[i].components(), y_ser[i].components(), "i={i}");
        }
    }

    #[test]
    fn results_are_bitwise_identical_across_thread_counts() {
        let mut rng = SmallRng::seed_from_u64(0xADA2);
        let n = 450;
        let x = rand_vec(&mut rng, n);
        let y = rand_vec(&mut rng, n);
        let (d1, r1) = dot_adaptive(&x, &y, &policy(), 1);
        for threads in [2usize, 4, 7] {
            let (dt, rt) = dot_adaptive(&x, &y, &policy(), threads);
            assert_eq!(dt.components(), d1.components(), "t={threads}");
            assert_eq!(rt.chunks, r1.chunks);
        }

        let alpha = F64x2::from(-0.75);
        let mut y1 = y.clone();
        axpy_adaptive(alpha, &x, &mut y1, &policy(), 1);
        for threads in [2usize, 4] {
            let mut yt = y.clone();
            axpy_adaptive(alpha, &x, &mut yt, &policy(), threads);
            for i in 0..n {
                assert_eq!(yt[i].components(), y1[i].components(), "t={threads} i={i}");
            }
        }

        let a = Matrix::from_fn(19, 23, |i, j| F64x2::from((i * 23 + j) as f64 * 0.01 - 2.0));
        let xv = rand_vec(&mut rng, 23);
        let (g1, _) = gemv_adaptive(&a, &xv, &policy(), 1);
        for threads in [2usize, 5] {
            let (gt, _) = gemv_adaptive(&a, &xv, &policy(), threads);
            for i in 0..19 {
                assert_eq!(gt[i].components(), g1[i].components(), "t={threads} i={i}");
            }
        }
    }

    /// Transient overflow inside one chunk's accumulation: the plain kernel
    /// returns inf, the adaptive path escalates that chunk to the exact
    /// evaluation and recovers the representable true value.
    #[test]
    fn dot_recovers_transient_overflow_via_oracle() {
        let mut rng = SmallRng::seed_from_u64(0xADA3);
        let n = 300;
        let mut x = rand_vec(&mut rng, n);
        let mut y = rand_vec(&mut rng, n);
        // Chunk 1 accumulates 2^1023 + 2^1023 (inf) before the -1.5·2^1023
        // term could have brought it back in range: exact sum is 2^1022.
        let big = 2.0f64.powi(512);
        x[150] = F64x2::from_scalar(big);
        y[150] = F64x2::from_scalar(big / 2.0);
        x[151] = F64x2::from_scalar(big);
        y[151] = F64x2::from_scalar(big / 2.0);
        x[152] = F64x2::from_scalar(-1.5 * big);
        y[152] = F64x2::from_scalar(big / 2.0);

        assert!(
            !kernels::dot(&x, &y).is_finite(),
            "plain kernel must collapse for this test to be meaningful"
        );
        for threads in [1usize, 3] {
            let (d, rep) = dot_adaptive(&x, &y, &policy(), threads);
            assert!(d.is_finite(), "t={threads}");
            // 2^1022 dominates the clean elements entirely.
            assert_eq!(d.hi(), 2.0f64.powi(1022), "t={threads}");
            assert_eq!(rep.chunks, 3);
            assert_eq!(rep.escalated, 1, "only the hostile chunk escalates");
            assert_eq!(rep.oracle, 1, "overflow regimes climb to the top");
        }
    }

    #[test]
    fn axpy_recovers_transient_overflow_via_oracle() {
        let n = 200;
        let alpha = F64x2::from_scalar(2.0f64.powi(512));
        let x: Vec<F64x2> = (0..n).map(|i| F64x2::from(i as f64 * 1e-3)).collect();
        let mut y: Vec<F64x2> = (0..n).map(|i| F64x2::from(1.0 - i as f64 * 1e-3)).collect();
        // alpha·x[7] = 2^1024 (inf at N=2); y[7] pulls the exact value back
        // to 2^1023, which is representable.
        let mut x = x;
        x[7] = F64x2::from_scalar(2.0f64.powi(512));
        y[7] = F64x2::from_scalar(-(2.0f64.powi(1023)));

        let mut y_plain = y.clone();
        kernels::axpy(alpha, &x, &mut y_plain);
        assert!(!y_plain[7].is_finite(), "plain kernel must collapse");

        let mut y_ad = y.clone();
        let rep = axpy_adaptive(alpha, &x, &mut y_ad, &policy(), 1);
        assert_eq!(y_ad[7].to_f64(), 2.0f64.powi(1023));
        assert_eq!(rep.chunks, 2);
        assert_eq!(rep.escalated, 1);
        assert_eq!(rep.oracle, 1);
        // The clean chunk is untouched relative to the plain kernel.
        for i in 128..n {
            assert_eq!(y_ad[i].components(), y_plain[i].components(), "i={i}");
        }
    }

    #[test]
    fn gemv_escalates_only_the_hostile_row() {
        let rows = 8;
        let cols = 40;
        let big = 2.0f64.powi(512);
        let a = Matrix::from_fn(rows, cols, |i, j| {
            if i == 3 && j < 3 {
                // Same transient-overflow pattern as the dot test.
                F64x2::from_scalar([big, big, -1.5 * big][j])
            } else {
                F64x2::from((i + j) as f64 * 0.01 + 0.1)
            }
        });
        let x: Vec<F64x2> = (0..cols)
            .map(|j| {
                if j < 3 {
                    F64x2::from_scalar(big / 2.0)
                } else {
                    F64x2::from(0.5)
                }
            })
            .collect();

        for threads in [1usize, 4] {
            let (yv, rep) = gemv_adaptive(&a, &x, &policy(), threads);
            assert!(yv.iter().all(|v| v.is_finite()), "t={threads}");
            assert_eq!(yv[3].hi(), 2.0f64.powi(1022), "t={threads}");
            assert_eq!(rep.chunks, rows as u64, "one chunk per 40-element row");
            assert_eq!(rep.escalated, 1);
            assert_eq!(rep.oracle, 1);
        }
    }

    #[test]
    fn max_rung_caps_chunk_escalation() {
        let capped = EscalationPolicy {
            max_rung: Rung::N3,
            ..EscalationPolicy::default()
        };
        let big = 2.0f64.powi(512);
        let x = vec![
            F64x2::from_scalar(big),
            F64x2::from_scalar(big),
            F64x2::from_scalar(-1.5 * big),
        ];
        let y = vec![F64x2::from_scalar(big / 2.0); 3];
        let (d, rep) = dot_adaptive(&x, &y, &capped, 1);
        // N=3 still overflows transiently; the cap accepts the collapsed
        // result and reports where it settled.
        assert!(!d.is_finite());
        assert_eq!(rep.n3, 1);
        assert_eq!(rep.oracle, 0);
    }

    #[test]
    fn nonfinite_inputs_pass_through_without_escalation() {
        let x = vec![F64x2::from_scalar(f64::NAN), F64x2::from(1.0)];
        let y = vec![F64x2::from(2.0), F64x2::from(3.0)];
        let (d, rep) = dot_adaptive(&x, &y, &policy(), 1);
        assert!(d.is_nan());
        assert_eq!(rep.escalated, 0, "§4.4 propagation is not a collapse");
    }

    #[test]
    fn empty_inputs() {
        let (d, rep) = dot_adaptive(&[], &[], &policy(), 4);
        assert_eq!(d.to_f64(), 0.0);
        assert_eq!(rep.chunks, 1);
        assert_eq!(rep.escalated, 0);
        let mut y: Vec<F64x2> = Vec::new();
        let rep = axpy_adaptive(F64x2::ONE, &[], &mut y, &policy(), 4);
        assert_eq!(rep.escalated, 0);
    }

    #[test]
    fn widen_narrow_roundtrip() {
        let v = F64x2::from(1.0) / F64x2::from(3.0);
        assert_eq!(narrow(widen::<3>(v)).components(), v.components());
        assert_eq!(narrow(widen::<4>(v)).components(), v.components());
    }
}
