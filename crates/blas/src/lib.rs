//! `mf-blas`: extended-precision BLAS kernels (paper §5).
//!
//! The paper evaluates its algorithms through four kernels that cover the
//! standard computational intensities:
//!
//! * **AXPY** — `y <- α·x + y` (vector-vector, streaming)
//! * **DOT** — `x · y` (vector-vector reduction)
//! * **GEMV** — `y <- α·A·x + β·y` (matrix-vector), `ij` loop order
//! * **GEMM** — `C <- α·A·B + β·C` (matrix-matrix), `ikj` loop order
//!
//! Both loop orders match the paper's setup. Kernels come in three forms:
//!
//! * [`kernels`] — scalar array-of-structs kernels, generic over [`Scalar`]
//!   (every arithmetic type in the workspace: `f64`/`f32`, `MultiFloat`,
//!   QD, CAMPARY), used for all baselines;
//! * [`soa`] — structure-of-arrays kernels for `MultiFloat`, the layout
//!   that lets LLVM autovectorize the branch-free FPAN arithmetic across
//!   elements (the paper's SIMD mechanism; branchy baselines *cannot* be
//!   written this way, which is the source of the order-of-magnitude gap);
//! * [`lanes`] — explicit lock-step SIMD execution: the same kernels
//!   instantiated at `T = Lanes<8>` (one AVX-512 register per FPAN wire),
//!   removing the dependence on autovectorization;
//! * [`mp`] — kernels over the limb-based `MpFloat` (the GMP/MPFR-class
//!   baseline, with its allocation and branching costs included, as in the
//!   real libraries);
//! * [`parallel`] — chunked thread-parallel wrappers running on the
//!   persistent worker [`pool`] (or per-dispatch `std::thread::scope`
//!   when `MF_BLAS_POOL=off`; the paper runs thread-per-core; this
//!   container has one core, so the harness reports the max over
//!   serial/parallel — see DESIGN.md T7).

pub mod adaptive;
pub mod kernels;
pub mod lanes;
pub mod mp;
pub mod parallel;
pub mod pool;
pub mod soa;
pub mod tile;

use mf_baselines::campary::Expansion;
use mf_baselines::dd::DoubleDouble;
use mf_baselines::qd::QuadDouble;
use mf_core::{FloatBase, MultiFloat};

/// The arithmetic interface the generic kernels need. One op is one
/// multiplication plus one addition (the paper's counting convention).
pub trait Scalar: Copy + Send + Sync + Default + 'static {
    fn s_zero() -> Self;
    fn s_add(self, o: Self) -> Self;
    fn s_mul(self, o: Self) -> Self;
    fn s_from_f64(x: f64) -> Self;
    fn s_to_f64(self) -> f64;
    /// Exact zero test, used by the kernels to select the BLAS
    /// `beta == 0` overwrite path (outputs are *written*, never read, so
    /// NaN/Inf in an uninitialized buffer cannot propagate). Must be an
    /// exact representation test — never a lossy round-trip through `f64`.
    fn s_is_zero(self) -> bool;
    /// `acc + a*b`; types with cheaper fused paths may override.
    #[inline(always)]
    fn s_mul_acc(self, a: Self, b: Self) -> Self {
        self.s_add(a.s_mul(b))
    }
}

macro_rules! scalar_native {
    ($t:ty) => {
        impl Scalar for $t {
            #[inline(always)]
            fn s_zero() -> Self {
                0.0
            }
            #[inline(always)]
            fn s_add(self, o: Self) -> Self {
                self + o
            }
            #[inline(always)]
            fn s_mul(self, o: Self) -> Self {
                self * o
            }
            #[inline(always)]
            fn s_from_f64(x: f64) -> Self {
                x as $t
            }
            #[inline(always)]
            fn s_to_f64(self) -> f64 {
                self as f64
            }
            #[inline(always)]
            fn s_is_zero(self) -> bool {
                self == 0.0
            }
        }
    };
}
scalar_native!(f64);
scalar_native!(f32);

impl<T: FloatBase, const N: usize> Scalar for MultiFloat<T, N> {
    #[inline(always)]
    fn s_zero() -> Self {
        Self::ZERO
    }
    #[inline(always)]
    fn s_add(self, o: Self) -> Self {
        self.add(o)
    }
    #[inline(always)]
    fn s_mul(self, o: Self) -> Self {
        self.mul(o)
    }
    #[inline(always)]
    fn s_from_f64(x: f64) -> Self {
        Self::from(x)
    }
    #[inline(always)]
    fn s_to_f64(self) -> f64 {
        self.to_f64()
    }
    #[inline(always)]
    fn s_is_zero(self) -> bool {
        self.is_zero()
    }
}

impl Scalar for DoubleDouble {
    #[inline(always)]
    fn s_zero() -> Self {
        Self::ZERO
    }
    #[inline(always)]
    fn s_add(self, o: Self) -> Self {
        self.add(o)
    }
    #[inline(always)]
    fn s_mul(self, o: Self) -> Self {
        self.mul(o)
    }
    #[inline(always)]
    fn s_from_f64(x: f64) -> Self {
        Self::from_f64(x)
    }
    #[inline(always)]
    fn s_to_f64(self) -> f64 {
        self.to_f64()
    }
    #[inline(always)]
    fn s_is_zero(self) -> bool {
        self.hi == 0.0 && self.lo == 0.0
    }
}

impl Scalar for QuadDouble {
    #[inline(always)]
    fn s_zero() -> Self {
        Self::ZERO
    }
    #[inline(always)]
    fn s_add(self, o: Self) -> Self {
        self.add(o)
    }
    #[inline(always)]
    fn s_mul(self, o: Self) -> Self {
        self.mul(o)
    }
    #[inline(always)]
    fn s_from_f64(x: f64) -> Self {
        Self::from_f64(x)
    }
    #[inline(always)]
    fn s_to_f64(self) -> f64 {
        self.to_f64()
    }
    #[inline(always)]
    fn s_is_zero(self) -> bool {
        self.0.iter().all(|&c| c == 0.0)
    }
}

impl<const N: usize> Scalar for Expansion<N> {
    #[inline(always)]
    fn s_zero() -> Self {
        Self::ZERO
    }
    #[inline(always)]
    fn s_add(self, o: Self) -> Self {
        self.add(o)
    }
    #[inline(always)]
    fn s_mul(self, o: Self) -> Self {
        self.mul(o)
    }
    #[inline(always)]
    fn s_from_f64(x: f64) -> Self {
        Self::from_f64(x)
    }
    #[inline(always)]
    fn s_to_f64(self) -> f64 {
        self.to_f64()
    }
    #[inline(always)]
    fn s_is_zero(self) -> bool {
        self.0.iter().all(|&c| c == 0.0)
    }
}

/// Dense row-major matrix over any [`Scalar`].
#[derive(Debug, Clone)]
pub struct Matrix<S> {
    pub rows: usize,
    pub cols: usize,
    pub data: Vec<S>,
}

impl<S: Scalar> Matrix<S> {
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![S::s_zero(); rows * cols],
        }
    }

    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> S) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    #[inline(always)]
    pub fn row(&self, i: usize) -> &[S] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    #[inline(always)]
    pub fn at(&self, i: usize, j: usize) -> S {
        self.data[i * self.cols + j]
    }

    #[inline(always)]
    pub fn set(&mut self, i: usize, j: usize, v: S) {
        self.data[i * self.cols + j] = v;
    }
}
