//! Explicit SIMD-lane execution of the FPAN kernels.
//!
//! [`Lanes<L>`] is an `[f64; L]` behaving as a single [`FloatBase`] value
//! with **element-wise** arithmetic. Because the extended-precision kernels
//! in `mf-core` are branch-free straight-line code over any `FloatBase`,
//! instantiating them at `T = Lanes<8>` executes 8 *independent*
//! extended-precision operations in lock-step — one AVX-512 register per
//! wire. This is the paper's GPU/SIMT execution model verbatim (§5: each
//! GPU lane runs the same FPAN on its own data), and it removes the need
//! for the autovectorizer to discover the parallelism on its own.
//!
//! Semantics notes:
//!
//! * Arithmetic, `mul_add`, `sqrt`, `abs`, `min`/`max` are lane-wise and
//!   exactly as accurate as scalar `f64` — the kernels compute the same
//!   bits per lane as they would scalar.
//! * Comparisons and predicates (`PartialOrd`, `is_nan`, `exponent`, …)
//!   cannot be lane-wise and still satisfy the trait; they reduce over
//!   lanes conservatively (documented per method). The arithmetic kernels
//!   never branch on them — that is the entire point of branch-free
//!   algorithms — so reductions only affect debug assertions.

use core::fmt;
use core::ops::{Add, Div, Mul, Neg, Sub};
use mf_core::{addition, multiplication, FloatBase, MultiFloat};

/// `L` independent lanes of base type `T` executing in lock-step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Lanes<T: FloatBase, const L: usize>(pub [T; L]);

impl<T: FloatBase, const L: usize> Lanes<T, L> {
    #[inline(always)]
    pub fn splat(v: T) -> Self {
        Lanes([v; L])
    }

    #[inline(always)]
    pub fn from_slice(s: &[T]) -> Self {
        let mut out = [T::ZERO; L];
        out.copy_from_slice(&s[..L]);
        Lanes(out)
    }

    #[inline(always)]
    fn map(self, f: impl Fn(T) -> T) -> Self {
        let mut out = self.0;
        for v in &mut out {
            *v = f(*v);
        }
        Lanes(out)
    }

    #[inline(always)]
    fn zip(self, o: Self, f: impl Fn(T, T) -> T) -> Self {
        let mut out = self.0;
        for (v, w) in out.iter_mut().zip(&o.0) {
            *v = f(*v, *w);
        }
        Lanes(out)
    }
}

impl<T: FloatBase, const L: usize> Default for Lanes<T, L> {
    fn default() -> Self {
        Lanes([T::ZERO; L])
    }
}

impl<T: FloatBase, const L: usize> fmt::Display for Lanes<T, L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0[0])
    }
}

impl<T: FloatBase, const L: usize> fmt::LowerExp for Lanes<T, L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:e}", self.0[0])
    }
}

impl<T: FloatBase, const L: usize> PartialOrd for Lanes<T, L> {
    /// A *partial* order consistent with the derived `PartialEq`
    /// (all-lanes equality): `Some(Equal)` iff every lane compares equal,
    /// `Less`/`Greater` by lane-0 when lane 0 strictly orders, and `None`
    /// when lane 0 ties but some other lane differs (no single ordering is
    /// meaningful lane-wise; the arithmetic kernels never branch on
    /// comparisons — that is the entire point of branch-free algorithms —
    /// so this only affects debug assertions and generic callers).
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        match self.0[0].partial_cmp(&other.0[0]) {
            Some(core::cmp::Ordering::Equal) => {
                if self == other {
                    Some(core::cmp::Ordering::Equal)
                } else {
                    None
                }
            }
            ord => ord,
        }
    }
}

impl<T: FloatBase, const L: usize> Add for Lanes<T, L> {
    type Output = Self;
    #[inline(always)]
    fn add(self, o: Self) -> Self {
        self.zip(o, |a, b| a + b)
    }
}

impl<T: FloatBase, const L: usize> Sub for Lanes<T, L> {
    type Output = Self;
    #[inline(always)]
    fn sub(self, o: Self) -> Self {
        self.zip(o, |a, b| a - b)
    }
}

impl<T: FloatBase, const L: usize> Mul for Lanes<T, L> {
    type Output = Self;
    #[inline(always)]
    fn mul(self, o: Self) -> Self {
        self.zip(o, |a, b| a * b)
    }
}

impl<T: FloatBase, const L: usize> Div for Lanes<T, L> {
    type Output = Self;
    #[inline(always)]
    fn div(self, o: Self) -> Self {
        self.zip(o, |a, b| a / b)
    }
}

impl<T: FloatBase, const L: usize> Neg for Lanes<T, L> {
    type Output = Self;
    #[inline(always)]
    fn neg(self) -> Self {
        self.map(|a| -a)
    }
}

impl<T: FloatBase, const L: usize> FloatBase for Lanes<T, L> {
    const PRECISION: u32 = T::PRECISION;
    const MIN_EXP: i32 = T::MIN_EXP;
    const MAX_EXP: i32 = T::MAX_EXP;
    const ZERO: Self = Lanes([T::ZERO; L]);
    const ONE: Self = Lanes([T::ONE; L]);
    const NEG_ONE: Self = Lanes([T::NEG_ONE; L]);
    const HALF: Self = Lanes([T::HALF; L]);
    const TWO: Self = Lanes([T::TWO; L]);
    const EPSILON: Self = Lanes([T::EPSILON; L]);
    const MAX: Self = Lanes([T::MAX; L]);
    const MIN_POSITIVE: Self = Lanes([T::MIN_POSITIVE; L]);
    const INFINITY: Self = Lanes([T::INFINITY; L]);
    const NEG_INFINITY: Self = Lanes([T::NEG_INFINITY; L]);
    const NAN: Self = Lanes([T::NAN; L]);

    #[inline(always)]
    fn mul_add(self, a: Self, b: Self) -> Self {
        let mut out = self.0;
        for i in 0..L {
            out[i] = out[i].mul_add(a.0[i], b.0[i]);
        }
        Lanes(out)
    }

    #[inline(always)]
    fn sqrt(self) -> Self {
        self.map(T::sqrt)
    }

    #[inline(always)]
    fn abs(self) -> Self {
        self.map(T::abs)
    }

    #[inline(always)]
    fn recip(self) -> Self {
        self.map(T::recip)
    }

    fn floor(self) -> Self {
        self.map(T::floor)
    }

    fn ceil(self) -> Self {
        self.map(T::ceil)
    }

    fn round(self) -> Self {
        self.map(T::round)
    }

    fn trunc(self) -> Self {
        self.map(T::trunc)
    }

    /// Any-lane reduction (conservative for NaN poisoning checks).
    fn is_nan(self) -> bool {
        self.0.iter().any(|v| v.is_nan())
    }

    fn is_infinite(self) -> bool {
        self.0.iter().any(|v| v.is_infinite())
    }

    fn is_finite(self) -> bool {
        self.0.iter().all(|v| v.is_finite())
    }

    fn is_sign_negative(self) -> bool {
        self.0[0].is_sign_negative()
    }

    /// All-lanes-zero (so `FastTwoSum`'s debug precondition stays sound:
    /// a zero operand means zero in every lane).
    fn is_zero(self) -> bool {
        self.0.iter().all(|&v| v.is_zero())
    }

    /// Max over lanes (conservative for the `FastTwoSum` debug assert on
    /// the *first* operand; checks on the second use the caller's own
    /// lane-0 semantics — lane kernels are validated against scalar runs
    /// in release mode, where the asserts compile out).
    fn exponent(self) -> i32 {
        self.0.iter().map(|&v| v.exponent()).max().unwrap_or(0)
    }

    fn exp2i(e: i32) -> Self {
        Lanes([T::exp2i(e); L])
    }

    fn from_f64(x: f64) -> Self {
        Lanes([T::from_f64(x); L])
    }

    fn to_f64(self) -> f64 {
        self.0[0].to_f64()
    }

    fn copysign(self, sign: Self) -> Self {
        self.zip(sign, T::copysign)
    }

    fn min(self, other: Self) -> Self {
        self.zip(other, T::min)
    }

    fn max(self, other: Self) -> Self {
        self.zip(other, T::max)
    }
}

/// Lane width used by the lock-step kernels (one AVX-512 register of
/// f64). Measured on this container: 8 lanes beat 4 at every expansion
/// width for reductions, despite the register spills at N >= 3 — the
/// spill cost is smaller than the dependency-chain stalls it buys off.
pub const SIMD_LANES: usize = 8;

/// Lock-step DOT over component slices: processes `SIMD_LANES` elements per
/// step with `T = Lanes<8>`, giving each FPAN wire a full vector register.
pub fn dot_lockstep<T: FloatBase, const N: usize>(
    xc: &[Vec<T>],
    xoff: usize,
    yc: &[Vec<T>],
    yoff: usize,
    n: usize,
) -> MultiFloat<T, N> {
    dot_lockstep_l::<T, N, SIMD_LANES>(xc, xoff, yc, yoff, n)
}

/// Lock-step DOT at an explicit lane count.
pub fn dot_lockstep_l<T: FloatBase, const N: usize, const L: usize>(
    xc: &[Vec<T>],
    xoff: usize,
    yc: &[Vec<T>],
    yoff: usize,
    n: usize,
) -> MultiFloat<T, N> {
    let xs: [&[T]; N] = core::array::from_fn(|k| &xc[k][xoff..xoff + n]);
    let ys: [&[T]; N] = core::array::from_fn(|k| &yc[k][yoff..yoff + n]);
    let mut acc: [Lanes<T, L>; N] = [Lanes([T::ZERO; L]); N];
    let chunks = n / L;
    for c in 0..chunks {
        let base = c * L;
        let xi: [Lanes<T, L>; N] = core::array::from_fn(|k| Lanes::from_slice(&xs[k][base..]));
        let yi: [Lanes<T, L>; N] = core::array::from_fn(|k| Lanes::from_slice(&ys[k][base..]));
        let p = multiplication::mul(&xi, &yi);
        acc = addition::add(&acc, &p);
    }
    // Reduce the lanes: extract L scalar expansions and sum them.
    let mut lanes_out: [[T; N]; L] = [[T::ZERO; N]; L];
    for l in 0..L {
        for k in 0..N {
            lanes_out[l][k] = acc[k].0[l];
        }
    }
    // Ceil-half tree reduction: lane l pairs with lane l + ceil(width/2),
    // and an odd top lane rides down to the next round unpaired. The
    // previous floor-half version (`width /= 2` then add `l + width`)
    // silently dropped the top lane(s) whenever `L` was not a power of
    // two — e.g. at L=3, lanes_out[2] was never added.
    let mut width = L;
    while width > 1 {
        let half = width.div_ceil(2);
        for l in 0..width / 2 {
            lanes_out[l] = addition::add(&lanes_out[l], &lanes_out[l + half]);
        }
        width = half;
    }
    // Tail elements (scalar).
    let mut total = lanes_out[0];
    for i in chunks * L..n {
        let xi: [T; N] = core::array::from_fn(|k| xs[k][i]);
        let yi: [T; N] = core::array::from_fn(|k| ys[k][i]);
        let p = multiplication::mul(&xi, &yi);
        total = addition::add(&total, &p);
    }
    MultiFloat::from_components(total)
}

/// Lock-step AXPY over component slices.
pub fn axpy_lockstep<T: FloatBase, const N: usize>(
    alpha: MultiFloat<T, N>,
    xc: &[Vec<T>],
    yc: &mut [Vec<T>],
    n: usize,
) {
    axpy_lockstep_at(alpha, xc, 0, yc, 0, n)
}

/// Lock-step AXPY over component slices starting at the given offsets
/// (used by the SoA GEMM inner loop, where x/y are matrix rows).
pub fn axpy_lockstep_at<T: FloatBase, const N: usize>(
    alpha: MultiFloat<T, N>,
    xc: &[Vec<T>],
    xoff: usize,
    yc: &mut [Vec<T>],
    yoff: usize,
    n: usize,
) {
    const L: usize = SIMD_LANES;
    let a = alpha.components();
    let av: [Lanes<T, L>; N] = core::array::from_fn(|k| Lanes::splat(a[k]));
    let chunks = n / L;
    for c in 0..chunks {
        let base = c * L;
        let xi: [Lanes<T, L>; N] =
            core::array::from_fn(|k| Lanes::from_slice(&xc[k][xoff + base..]));
        let yi: [Lanes<T, L>; N] =
            core::array::from_fn(|k| Lanes::from_slice(&yc[k][yoff + base..]));
        let p = multiplication::mul(&av, &xi);
        let s = addition::add(&p, &yi);
        for k in 0..N {
            yc[k][yoff + base..yoff + base + L].copy_from_slice(&s[k].0);
        }
    }
    for i in chunks * L..n {
        let xi: [T; N] = core::array::from_fn(|k| xc[k][xoff + i]);
        let yi: [T; N] = core::array::from_fn(|k| yc[k][yoff + i]);
        let p = multiplication::mul(&a, &xi);
        let s = addition::add(&p, &yi);
        for k in 0..N {
            yc[k][yoff + i] = s[k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::soa::SoaVec;
    use mf_core::F64x4;
    use mf_mpsoft::MpFloat;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn lanes_arithmetic_matches_scalar_bitwise() {
        let mut rng = SmallRng::seed_from_u64(1700);
        for _ in 0..2_000 {
            let a: [f64; 4] = core::array::from_fn(|_| rng.gen_range(-1.0e10..1.0e10));
            let b: [f64; 4] = core::array::from_fn(|_| rng.gen_range(-1.0e10..1.0e10));
            let la = Lanes::<f64, 4>(a);
            let lb = Lanes::<f64, 4>(b);
            let (s, e) = mf_eft::two_sum(la, lb);
            for l in 0..4 {
                let (ss, es) = mf_eft::two_sum(a[l], b[l]);
                assert_eq!(s.0[l], ss);
                assert_eq!(e.0[l], es);
            }
            let (p, pe) = mf_eft::two_prod(la, lb);
            for l in 0..4 {
                let (ps, pes) = mf_eft::two_prod(a[l], b[l]);
                assert_eq!(p.0[l], ps);
                assert_eq!(pe.0[l], pes);
            }
        }
    }

    #[test]
    fn lockstep_kernel_matches_scalar_kernel_bitwise() {
        // The FPAN kernels at T = Lanes<4> must produce, lane by lane,
        // exactly the scalar kernels' bits.
        let mut rng = SmallRng::seed_from_u64(1701);
        for _ in 0..2_000 {
            let mk = |rng: &mut SmallRng| -> [[f64; 3]; 4] {
                core::array::from_fn(|_| {
                    mf_core::renorm::renorm([
                        rng.gen_range(-1.0..1.0),
                        rng.gen_range(-1e-18..1e-18),
                        rng.gen_range(-1e-36..1e-36),
                    ])
                })
            };
            let xs = mk(&mut rng);
            let ys = mk(&mut rng);
            // Pack into lanes.
            let lx: [Lanes<f64, 4>; 3] =
                core::array::from_fn(|k| Lanes(core::array::from_fn(|l| xs[l][k])));
            let ly: [Lanes<f64, 4>; 3] =
                core::array::from_fn(|k| Lanes(core::array::from_fn(|l| ys[l][k])));
            let lsum = mf_core::addition::add(&lx, &ly);
            let lprod = mf_core::multiplication::mul(&lx, &ly);
            for l in 0..4 {
                let ssum = mf_core::addition::add(&xs[l], &ys[l]);
                let sprod = mf_core::multiplication::mul(&xs[l], &ys[l]);
                for k in 0..3 {
                    assert_eq!(lsum[k].0[l], ssum[k], "add lane {l} comp {k}");
                    assert_eq!(lprod[k].0[l], sprod[k], "mul lane {l} comp {k}");
                }
            }
        }
    }

    #[test]
    fn dot_lockstep_matches_oracle() {
        let mut rng = SmallRng::seed_from_u64(1702);
        for n in [0usize, 5, 8, 64, 1000, 1003] {
            let x64: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let y64: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let xs: Vec<F64x4> = x64.iter().map(|&v| F64x4::from(v)).collect();
            let ys: Vec<F64x4> = y64.iter().map(|&v| F64x4::from(v)).collect();
            let sx = SoaVec::from_slice(&xs);
            let sy = SoaVec::from_slice(&ys);
            let got = dot_lockstep::<f64, 4>(&sx.comps, 0, &sy.comps, 0, n);
            let exact = MpFloat::exact_dot(&x64, &y64);
            if exact.is_zero() {
                assert!(got.is_zero());
                continue;
            }
            let err = got.to_mp(400).rel_error_vs(&exact);
            assert!(err <= 2.0f64.powi(-190), "n={n} err 2^{:.1}", err.log2());
        }
    }

    /// Regression for the non-power-of-two lane reduction: the old
    /// floor-half tree (`width /= 2; add l + width`) never added the top
    /// lane(s) for L ∈ {3, 5, 6}, so with small-integer inputs (where every
    /// summation order is exact and any dropped term shifts the result by
    /// a whole integer) the dot product came out wrong bitwise. Each L is
    /// checked against the scalar AoS kernel.
    #[test]
    fn dot_lockstep_covers_all_lanes_at_odd_l() {
        fn check<const L: usize>() {
            let mut rng = SmallRng::seed_from_u64(1704 + L as u64);
            // n spans several full lane blocks plus a scalar tail.
            for n in [L, 2 * L, 5 * L + L - 1, 64] {
                let x64: Vec<f64> = (0..n).map(|_| rng.gen_range(-64..64i32) as f64).collect();
                let y64: Vec<f64> = (0..n).map(|_| rng.gen_range(-64..64i32) as f64).collect();
                let xs: Vec<F64x4> = x64.iter().map(|&v| F64x4::from(v)).collect();
                let ys: Vec<F64x4> = y64.iter().map(|&v| F64x4::from(v)).collect();
                let sx = SoaVec::from_slice(&xs);
                let sy = SoaVec::from_slice(&ys);
                let got = dot_lockstep_l::<f64, 4, L>(&sx.comps, 0, &sy.comps, 0, n);
                let want = crate::kernels::dot(&xs, &ys);
                assert_eq!(
                    got.components(),
                    want.components(),
                    "L={L} n={n}: lane reduction dropped a lane"
                );
            }
        }
        check::<3>();
        check::<5>();
        check::<6>();
        // Power-of-two widths keep their old (already correct) behaviour.
        check::<4>();
        check::<8>();
    }

    /// `PartialOrd` must agree with the derived all-lanes `PartialEq`:
    /// `partial_cmp == Some(Equal)` exactly when `==` holds. Lane-0 ties
    /// with differing tail lanes are unordered, never falsely `Equal`.
    #[test]
    fn partial_ord_consistent_with_partial_eq() {
        let a = Lanes::<f64, 3>([1.0, 2.0, 3.0]);
        let b = Lanes::<f64, 3>([1.0, 2.0, 3.0]);
        assert_eq!(a, b);
        assert_eq!(a.partial_cmp(&b), Some(core::cmp::Ordering::Equal));

        // Lane 0 equal, lane 2 differs: the old lane-0-only ordering
        // returned Some(Equal) here while `==` was false.
        let c = Lanes::<f64, 3>([1.0, 2.0, 99.0]);
        assert_ne!(a, c);
        assert_eq!(a.partial_cmp(&c), None);

        // Lane-0 strict ordering is preserved.
        let d = Lanes::<f64, 3>([0.5, 9.0, 9.0]);
        assert_eq!(d.partial_cmp(&a), Some(core::cmp::Ordering::Less));
        assert_eq!(a.partial_cmp(&d), Some(core::cmp::Ordering::Greater));

        // NaN lanes stay unordered.
        let n = Lanes::<f64, 3>([f64::NAN, 2.0, 3.0]);
        assert_eq!(n.partial_cmp(&a), None);
    }

    #[test]
    fn axpy_lockstep_matches_scalar_axpy_bitwise() {
        let mut rng = SmallRng::seed_from_u64(1703);
        let n = 203;
        let xs: Vec<F64x4> = (0..n)
            .map(|_| F64x4::from(rng.gen_range(-1.0..1.0)))
            .collect();
        let ys: Vec<F64x4> = (0..n)
            .map(|_| F64x4::from(rng.gen_range(-1.0..1.0)))
            .collect();
        let alpha = F64x4::from(1.000001);
        let sx = SoaVec::from_slice(&xs);
        let mut sy = SoaVec::from_slice(&ys);
        axpy_lockstep::<f64, 4>(alpha, &sx.comps, &mut sy.comps, n);
        let mut y_ref = ys.clone();
        crate::kernels::axpy(alpha, &xs, &mut y_ref);
        for i in 0..n {
            assert_eq!(sy.get(i).components(), y_ref[i].components(), "i={i}");
        }
    }
}
