//! E9 — per-operation latency/throughput benchmarks: one extended-precision
//! add / mul / div / sqrt for every library and precision level.
//!
//! The paper's §5 notes each extended op costs "several dozen to several
//! hundred native machine FLOPs"; this bench pins those costs per type.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mf_baselines::campary::Expansion;
use mf_baselines::dd::DoubleDouble;
use mf_baselines::qd::QuadDouble;
use mf_core::{F64x2, F64x3, F64x4};
use mf_mpsoft::MpFloat;
use std::hint::black_box;

fn ops_multifloat(c: &mut Criterion) {
    let mut g = c.benchmark_group("multifloat_ops");
    macro_rules! bench_n {
        ($t:ty, $label:expr) => {{
            let a = <$t>::from(1.2345678901234567) / <$t>::from(1.1111111);
            let b = <$t>::from(0.9876543210987654) / <$t>::from(1.3333333);
            g.bench_function(BenchmarkId::new("add", $label), |bch| {
                bch.iter(|| black_box(black_box(a) + black_box(b)))
            });
            g.bench_function(BenchmarkId::new("mul", $label), |bch| {
                bch.iter(|| black_box(black_box(a) * black_box(b)))
            });
            g.bench_function(BenchmarkId::new("div", $label), |bch| {
                bch.iter(|| black_box(black_box(a) / black_box(b)))
            });
            g.bench_function(BenchmarkId::new("sqrt", $label), |bch| {
                bch.iter(|| black_box(black_box(a).abs().sqrt()))
            });
        }};
    }
    bench_n!(F64x2, "N=2");
    bench_n!(F64x3, "N=3");
    bench_n!(F64x4, "N=4");
    g.finish();
}

fn ops_baselines(c: &mut Criterion) {
    let mut g = c.benchmark_group("baseline_ops");

    let a = DoubleDouble::from_f64(1.2345678901234567);
    let b = DoubleDouble::from_f64(0.9876543210987654);
    g.bench_function("dd/add", |bch| {
        bch.iter(|| black_box(black_box(a).add(black_box(b))))
    });
    g.bench_function("dd/mul", |bch| {
        bch.iter(|| black_box(black_box(a).mul(black_box(b))))
    });
    g.bench_function("dd/div", |bch| {
        bch.iter(|| black_box(black_box(a).div(black_box(b))))
    });

    let a = QuadDouble::from_f64(1.2345678901234567);
    let b = QuadDouble::from_f64(0.9876543210987654);
    g.bench_function("qd/add", |bch| {
        bch.iter(|| black_box(black_box(a).add(black_box(b))))
    });
    g.bench_function("qd/accurate_add", |bch| {
        bch.iter(|| black_box(black_box(a).accurate_add(black_box(b))))
    });
    g.bench_function("qd/mul", |bch| {
        bch.iter(|| black_box(black_box(a).mul(black_box(b))))
    });
    g.bench_function("qd/div", |bch| {
        bch.iter(|| black_box(black_box(a).div(black_box(b))))
    });

    macro_rules! campary_n {
        ($n:expr, $label:expr) => {{
            let a = Expansion::<$n>::from_f64(1.2345678901234567)
                .div(Expansion::<$n>::from_f64(1.1111111));
            let b = Expansion::<$n>::from_f64(0.9876543210987654)
                .div(Expansion::<$n>::from_f64(1.3333333));
            g.bench_function(concat!("campary/add_", $label), |bch| {
                bch.iter(|| black_box(black_box(a).add(black_box(b))))
            });
            g.bench_function(concat!("campary/mul_", $label), |bch| {
                bch.iter(|| black_box(black_box(a).mul(black_box(b))))
            });
        }};
    }
    campary_n!(2, "N=2");
    campary_n!(3, "N=3");
    campary_n!(4, "N=4");
    g.finish();
}

fn ops_mpsoft(c: &mut Criterion) {
    let mut g = c.benchmark_group("mpsoft_ops");
    for prec in [53u32, 103, 156, 208] {
        let a = MpFloat::from_f64(1.2345678901234567, prec)
            .div(&MpFloat::from_f64(1.1111111, prec), prec);
        let b = MpFloat::from_f64(0.9876543210987654, prec)
            .div(&MpFloat::from_f64(1.3333333, prec), prec);
        g.bench_function(BenchmarkId::new("add", prec), |bch| {
            bch.iter(|| black_box(black_box(&a).add(black_box(&b), prec)))
        });
        g.bench_function(BenchmarkId::new("mul", prec), |bch| {
            bch.iter(|| black_box(black_box(&a).mul(black_box(&b), prec)))
        });
        g.bench_function(BenchmarkId::new("div", prec), |bch| {
            bch.iter(|| black_box(black_box(&a).div(black_box(&b), prec)))
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(30)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(500));
    targets = ops_multifloat, ops_baselines, ops_mpsoft
);
criterion_main!(benches);
