//! Criterion companions to the `tables` binary (E1): statistically robust
//! throughput measurements of each BLAS kernel at each precision for the
//! headline comparison (MultiFloats SoA vs QD vs CAMPARY vs MpFloat).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mf_baselines::campary::Expansion;
use mf_baselines::qd::QuadDouble;
use mf_bench::workloads::rand_f64s;
use mf_blas::soa::{self, SoaVec};
use mf_blas::{kernels, mp, Scalar};
use mf_core::{F64x2, F64x4, MultiFloat};
use mf_mpsoft::MpFloat;
use std::hint::black_box;

const N_ELEMS: usize = 2048;

fn axpy_group(c: &mut Criterion) {
    let mut g = c.benchmark_group("axpy");
    g.throughput(Throughput::Elements(N_ELEMS as u64));

    macro_rules! aos {
        ($t:ty, $label:expr) => {{
            let xs: Vec<$t> = rand_f64s(1, N_ELEMS)
                .into_iter()
                .map(<$t as Scalar>::s_from_f64)
                .collect();
            let mut ys: Vec<$t> = rand_f64s(2, N_ELEMS)
                .into_iter()
                .map(<$t as Scalar>::s_from_f64)
                .collect();
            let alpha = <$t as Scalar>::s_from_f64(1.0000001);
            g.bench_function(BenchmarkId::new("aos", $label), |b| {
                b.iter(|| {
                    kernels::axpy(alpha, &xs, &mut ys);
                    black_box(&ys[0]);
                })
            });
        }};
    }
    aos!(F64x2, "multifloat2");
    aos!(F64x4, "multifloat4");
    aos!(QuadDouble, "qd4");
    aos!(Expansion<4>, "campary4");

    // SoA (vectorized) variants.
    macro_rules! soa_n {
        ($n:expr, $label:expr) => {{
            let xs = SoaVec::from_slice(
                &rand_f64s(1, N_ELEMS)
                    .into_iter()
                    .map(MultiFloat::<f64, $n>::from)
                    .collect::<Vec<_>>(),
            );
            let mut ys = SoaVec::from_slice(
                &rand_f64s(2, N_ELEMS)
                    .into_iter()
                    .map(MultiFloat::<f64, $n>::from)
                    .collect::<Vec<_>>(),
            );
            let alpha = MultiFloat::<f64, $n>::from(1.0000001);
            g.bench_function(BenchmarkId::new("soa", $label), |b| {
                b.iter(|| {
                    soa::axpy(alpha, &xs, &mut ys);
                    black_box(ys.comps[0][0]);
                })
            });
        }};
    }
    soa_n!(2, "multifloat2");
    soa_n!(4, "multifloat4");

    // MpFloat at 208 bits (GMP/MPFR class), smaller size to keep runtime sane.
    let n = 256;
    let xs: Vec<MpFloat> = rand_f64s(1, n)
        .iter()
        .map(|&v| MpFloat::from_f64(v, 208))
        .collect();
    let mut ys: Vec<MpFloat> = rand_f64s(2, n)
        .iter()
        .map(|&v| MpFloat::from_f64(v, 208))
        .collect();
    let alpha = MpFloat::from_f64(1.0000001, 208);
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function(BenchmarkId::new("aos", "mpsoft208"), |b| {
        b.iter(|| {
            mp::axpy(&alpha, &xs, &mut ys, 208);
            black_box(ys[0].to_f64());
        })
    });
    g.finish();
}

fn dot_group(c: &mut Criterion) {
    let mut g = c.benchmark_group("dot");
    g.throughput(Throughput::Elements(N_ELEMS as u64));

    let x2: Vec<F64x2> = rand_f64s(1, N_ELEMS).into_iter().map(F64x2::from).collect();
    let y2: Vec<F64x2> = rand_f64s(2, N_ELEMS).into_iter().map(F64x2::from).collect();
    g.bench_function(BenchmarkId::new("aos", "multifloat2"), |b| {
        b.iter(|| black_box(kernels::dot(&x2, &y2)))
    });
    let sx = SoaVec::from_slice(&x2);
    let sy = SoaVec::from_slice(&y2);
    g.bench_function(BenchmarkId::new("soa", "multifloat2"), |b| {
        b.iter(|| black_box(soa::dot(&sx, &sy)))
    });

    let xq: Vec<QuadDouble> = rand_f64s(1, N_ELEMS)
        .into_iter()
        .map(QuadDouble::from_f64)
        .collect();
    let yq: Vec<QuadDouble> = rand_f64s(2, N_ELEMS)
        .into_iter()
        .map(QuadDouble::from_f64)
        .collect();
    g.bench_function(BenchmarkId::new("aos", "qd4"), |b| {
        b.iter(|| black_box(kernels::dot(&xq, &yq)))
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1));
    targets = axpy_group, dot_group
);
criterion_main!(benches);
