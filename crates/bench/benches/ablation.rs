//! Ablation benchmarks for the design choices called out in DESIGN.md §3:
//!
//! 1. FMA-based `TwoProd` vs Dekker/Veltkamp splitting (17 ops);
//! 2. Karp–Markstein-fused division vs full-precision-reciprocal division;
//! 3. QD sloppy vs accurate (merge-based) addition — the branchy cost;
//! 4. `two_sum` vs `fast_two_sum` gate cost (the FPAN specialization
//!    opportunity);
//! 5. unrolled fixed-sequence kernels vs the rolled generic-N construction
//!    (`addition::add_generic`);
//! 6. autovectorized SoA kernels vs explicit lock-step `Lanes<8>` execution;
//! 7. telemetry probe overhead with the feature *disabled* — run once with
//!    the default build and once with `--features telemetry` and diff the
//!    `telemetry_overhead/*` numbers; the disabled build must be within
//!    1–2% of a build where the probes were never written (the probes
//!    const-fold to nothing, see `mf_telemetry::ENABLED`);
//! 8. persistent worker pool vs per-dispatch scoped spawn for the parallel
//!    BLAS wrappers (`pool_dispatch`) — small-n dispatch latency is the
//!    pool's whole reason to exist, large-n must not regress.

use criterion::{criterion_group, criterion_main, Criterion};
use mf_baselines::qd::QuadDouble;
use mf_core::{addition, division};
use mf_core::{F64x3, F64x4};
use mf_eft::{fast_two_sum, two_prod, two_prod_dekker, two_sum};
use std::hint::black_box;

fn eft_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("eft");
    let (x, y) = (1.234567890123_f64, 0.987654321098_f64);
    g.bench_function("two_prod_fma", |b| {
        b.iter(|| black_box(two_prod(black_box(x), black_box(y))))
    });
    g.bench_function("two_prod_dekker", |b| {
        b.iter(|| black_box(two_prod_dekker(black_box(x), black_box(y))))
    });
    g.bench_function("two_sum", |b| {
        b.iter(|| black_box(two_sum(black_box(x), black_box(y))))
    });
    g.bench_function("fast_two_sum", |b| {
        b.iter(|| black_box(fast_two_sum(black_box(x), black_box(y))))
    });
    g.finish();
}

fn division_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("division");
    let b3 = F64x3::from(3.0f64.sqrt()).components();
    let a3 = F64x3::from(std::f64::consts::SQRT_2).components();
    g.bench_function("karp_markstein_N3", |b| {
        b.iter(|| black_box(division::div_karp_markstein(black_box(&b3), black_box(&a3))))
    });
    g.bench_function("via_recip_N3", |b| {
        b.iter(|| black_box(division::div_via_recip(black_box(&b3), black_box(&a3))))
    });
    g.finish();
}

fn kernel_form_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("addition_form");
    let a = F64x4::from(1.2345678901234567).components();
    let b = F64x4::from(0.9876543210987654).components();
    g.bench_function("fixed_unrolled_N4", |bch| {
        bch.iter(|| black_box(addition::add(black_box(&a), black_box(&b))))
    });
    g.bench_function("generic_rolled_N4", |bch| {
        bch.iter(|| black_box(addition::add_generic(black_box(&a), black_box(&b))))
    });
    g.finish();
}

fn simd_form_ablation(c: &mut Criterion) {
    use mf_bench::workloads::rand_f64s;
    use mf_blas::soa::{self, SoaVec};
    use mf_core::MultiFloat;
    let mut g = c.benchmark_group("simd_form");
    macro_rules! widths {
        ($n:expr, $label:expr) => {{
            let n = 4096;
            let xs = SoaVec::from_slice(
                &rand_f64s(1, n)
                    .into_iter()
                    .map(MultiFloat::<f64, $n>::from)
                    .collect::<Vec<_>>(),
            );
            let ys = xs.clone();
            g.bench_function(concat!("dot_lockstep_", $label), |bch| {
                bch.iter(|| black_box(soa::dot(black_box(&xs), black_box(&ys))))
            });
            g.bench_function(concat!("dot_autovec_", $label), |bch| {
                bch.iter(|| black_box(soa::dot_autovec(black_box(&xs), black_box(&ys))))
            });
        }};
    }
    widths!(2, "N2");
    widths!(4, "N4");
    g.finish();
}

fn qd_add_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("qd_add");
    let a = QuadDouble::from_f64(1.2345678901234567);
    let b2 = QuadDouble::from_f64(-1.2345678901234);
    g.bench_function("sloppy(branchy renorm)", |bch| {
        bch.iter(|| black_box(black_box(a).add(black_box(b2))))
    });
    g.bench_function("accurate(merge+compress)", |bch| {
        bch.iter(|| black_box(black_box(a).accurate_add(black_box(b2))))
    });
    g.finish();
}

fn pool_dispatch_ablation(c: &mut Criterion) {
    use mf_bench::workloads::rand_f64s;
    use mf_blas::parallel;
    use mf_core::MultiFloat;
    let mut g = c.benchmark_group("pool_dispatch");
    let threads = 4;
    // Size the pool like the dispatch unless the caller pinned it.
    if std::env::var("MF_BLAS_THREADS").is_err() {
        std::env::set_var("MF_BLAS_THREADS", threads.to_string());
    }
    // n=128: dispatch latency dominates (what the persistent pool
    // amortizes). n=16384: kernel work dominates (the shared-cursor
    // protocol must cost nothing). The `pardispatch` bin measures the same
    // contrast through the history/trend pipeline.
    for n in [128usize, 16384] {
        let to_mf = MultiFloat::<f64, 2>::from;
        let xs: Vec<_> = rand_f64s(1, n).into_iter().map(to_mf).collect();
        let mut ys: Vec<_> = rand_f64s(2, n).into_iter().map(to_mf).collect();
        let alpha = to_mf(1.000000321);
        for mode in ["pool", "scoped"] {
            std::env::set_var("MF_BLAS_POOL", if mode == "pool" { "on" } else { "off" });
            g.bench_function(format!("axpy_N2_n{n}_{mode}"), |bch| {
                bch.iter(|| {
                    parallel::axpy(
                        black_box(alpha),
                        black_box(&xs),
                        black_box(&mut ys),
                        threads,
                    );
                    black_box(ys[0]);
                })
            });
            g.bench_function(format!("dot_N2_n{n}_{mode}"), |bch| {
                bch.iter(|| black_box(parallel::dot(black_box(&xs), black_box(&ys), threads)))
            });
        }
    }
    std::env::remove_var("MF_BLAS_POOL");
    g.finish();
}

fn telemetry_overhead_ablation(c: &mut Criterion) {
    use mf_bench::workloads::rand_f64s;
    use mf_blas::kernels;
    use mf_core::MultiFloat;
    let mut g = c.benchmark_group("telemetry_overhead");
    let n = 4096;
    let to_mf = MultiFloat::<f64, 2>::from;
    let xs: Vec<_> = rand_f64s(1, n).into_iter().map(to_mf).collect();
    let mut ys: Vec<_> = rand_f64s(2, n).into_iter().map(to_mf).collect();
    let alpha = to_mf(1.000000321);
    // These kernels cross every instrumented layer (renorm probes in
    // mf-core, dispatch probes in mf-blas); with the `telemetry` feature
    // off, both must match an uninstrumented build to within noise.
    g.bench_function(
        if mf_telemetry::ENABLED {
            "axpy_N2_telemetry_on"
        } else {
            "axpy_N2_telemetry_off"
        },
        |bch| {
            bch.iter(|| {
                kernels::axpy(black_box(alpha), black_box(&xs), black_box(&mut ys));
                black_box(ys[0]);
            })
        },
    );
    g.bench_function(
        if mf_telemetry::ENABLED {
            "dot_N2_telemetry_on"
        } else {
            "dot_N2_telemetry_off"
        },
        |bch| bch.iter(|| black_box(kernels::dot(black_box(&xs), black_box(&ys)))),
    );
    // Span-tracing cost on the same workload, telemetry builds only.
    // Unarmed = enabled build without `--trace`: each span is one relaxed
    // atomic load. Armed: the full record cost (clock read + two ring-slot
    // writes) until the per-thread ring fills (32Ki spans), after which
    // overflow spans take the cheaper drop path — so the armed number is a
    // steady-state figure, not a first-span figure. Spans in the shipped
    // probes wrap whole chunks/rounds, so per-span cost amortizes over
    // O(n) flops; EXPERIMENTS.md ablation 7 budgets the end-to-end
    // overhead at <= 5%.
    #[cfg(feature = "telemetry")]
    {
        use mf_telemetry::trace;
        g.bench_function("axpy_N2_span_unarmed", |bch| {
            bch.iter(|| {
                let _s = trace::span("ablation.axpy", n as u64);
                kernels::axpy(black_box(alpha), black_box(&xs), black_box(&mut ys));
                black_box(ys[0]);
            })
        });
        trace::arm();
        g.bench_function("axpy_N2_span_armed", |bch| {
            bch.iter(|| {
                let _s = trace::span("ablation.axpy", n as u64);
                kernels::axpy(black_box(alpha), black_box(&xs), black_box(&mut ys));
                black_box(ys[0]);
            })
        });
        // Exposition-endpoint cost on the same workload. Armed = the TCP
        // endpoint is bound but idle: the kernel path is untouched (probes
        // already run; the endpoint only reads on scrape), so this must
        // match the span-armed number. Scraped = a background client
        // hammering /metrics as fast as it can while the kernel runs — the
        // worst case for snapshot-lock contention on the probe registry.
        let exporter = mf_telemetry::expose::serve("127.0.0.1:0").ok();
        if let Some(addr) = exporter {
            g.bench_function("axpy_N2_exporter_armed", |bch| {
                bch.iter(|| {
                    let _s = trace::span("ablation.axpy", n as u64);
                    kernels::axpy(black_box(alpha), black_box(&xs), black_box(&mut ys));
                    black_box(ys[0]);
                })
            });
            let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
            let scraper = {
                let stop = std::sync::Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let _ = mf_telemetry::expose::scrape(&addr, "/metrics");
                    }
                })
            };
            g.bench_function("axpy_N2_exporter_scraped", |bch| {
                bch.iter(|| {
                    let _s = trace::span("ablation.axpy", n as u64);
                    kernels::axpy(black_box(alpha), black_box(&xs), black_box(&mut ys));
                    black_box(ys[0]);
                })
            });
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            let _ = scraper.join();
        }
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(30)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_millis(500));
    targets = eft_ablation, division_ablation, qd_add_ablation, kernel_form_ablation, simd_form_ablation, pool_dispatch_ablation, telemetry_overhead_ablation
);
criterion_main!(benches);
