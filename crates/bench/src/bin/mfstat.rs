//! `mfstat` — a `top`-style live view of a running mf process.
//!
//! Polls the Prometheus exposition endpoint a bench (or future `mf-serve`)
//! process opened via `MF_METRICS_ADDR` (see `mf_telemetry::expose`) and
//! renders counters with per-interval rates, pool utilization gauges, and
//! per-section latency quantiles, refreshing in place.
//!
//! Usage:
//!   mfstat <host:port> [--period <secs>] [--once] [--raw]
//!
//! `--period` defaults to the `MF_METRICS_PERIOD` environment variable,
//! then to 2 seconds. `--once` prints a single snapshot and exits (useful
//! in scripts and CI smoke tests); `--raw` dumps the exposition text
//! verbatim instead of the rendered view.
//!
//! Example:
//!   MF_METRICS_ADDR=127.0.0.1:9184 tables --quick &
//!   mfstat 127.0.0.1:9184
//!
//! The view needs nothing but the text format, so it also works against
//! any other Prometheus-compatible exporter.

use mf_bench::{cli, promtext};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

const USAGE: &str = "<host:port> [--period <secs>] [--once] [--raw]";

fn scrape(addr: &str) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream.set_read_timeout(Some(Duration::from_secs(2))).ok();
    stream.set_write_timeout(Some(Duration::from_secs(2))).ok();
    stream
        .write_all(
            format!("GET /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")
                .as_bytes(),
        )
        .map_err(|e| format!("send {addr}: {e}"))?;
    let mut text = String::new();
    stream
        .read_to_string(&mut text)
        .map_err(|e| format!("read {addr}: {e}"))?;
    Ok(text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or(text))
}

/// Render one refresh of the live view. `prev` holds the previous scrape's
/// counter values for the per-interval rate column.
fn render(
    doc: &promtext::Exposition,
    prev: &BTreeMap<String, f64>,
    period: f64,
) -> (String, BTreeMap<String, f64>) {
    let mut out = String::new();
    let mut counters = BTreeMap::new();

    // Gauges first: the "what is happening right now" block.
    let gauges: Vec<_> = doc
        .samples
        .iter()
        .filter(|s| doc.types.get(&s.name).map(String::as_str) == Some("gauge"))
        .collect();
    if !gauges.is_empty() {
        out.push_str("gauges\n");
        for g in &gauges {
            out.push_str(&format!("  {:<40} {:>14}\n", g.name, g.value));
        }
    }

    let counter_samples: Vec<_> = doc
        .samples
        .iter()
        .filter(|s| doc.types.get(&s.name).map(String::as_str) == Some("counter"))
        .collect();
    if !counter_samples.is_empty() {
        out.push_str("counters                                            total        per-sec\n");
        for c in &counter_samples {
            counters.insert(c.name.clone(), c.value);
            let rate = prev
                .get(&c.name)
                .map(|p| (c.value - p).max(0.0) / period.max(1e-9));
            match rate {
                Some(r) => out.push_str(&format!("  {:<40} {:>14} {:>14.1}\n", c.name, c.value, r)),
                None => out.push_str(&format!("  {:<40} {:>14} {:>14}\n", c.name, c.value, "-")),
            }
        }
    }

    // Adaptive ladder: escalation rates derived from the engine counters
    // (cumulative, plus the per-interval rate over escalation deltas).
    let val = |name: &str| counters.get(name).copied();
    let mut adaptive = String::new();
    for (layer, ops_key, esc_key, oracle_key) in [
        (
            "core",
            "mf_core_adaptive_ops_total",
            "mf_core_adaptive_escalations_total",
            "mf_core_adaptive_oracle_falls_total",
        ),
        (
            "blas",
            "mf_blas_adaptive_chunks_total",
            "mf_blas_adaptive_escalations_total",
            "mf_blas_adaptive_oracle_falls_total",
        ),
    ] {
        if let (Some(ops), Some(esc)) = (val(ops_key), val(esc_key)) {
            if ops > 0.0 {
                let d_ops = prev.get(ops_key).map(|p| (ops - p).max(0.0));
                let d_esc = prev.get(esc_key).map(|p| (esc - p).max(0.0));
                let interval = match (d_ops, d_esc) {
                    (Some(o), Some(e)) if o > 0.0 => format!("{:.4}", e / o),
                    _ => "-".into(),
                };
                adaptive.push_str(&format!(
                    "  {:<14} {:>14} {:>14} {:>10} {:>10.4} {:>10}\n",
                    layer,
                    ops,
                    esc,
                    val(oracle_key).unwrap_or(0.0),
                    esc / ops,
                    interval,
                ));
            }
        }
    }
    if !adaptive.is_empty() {
        out.push_str(
            "adaptive                  ops/chunks    escalations     oracle       rate   interval\n",
        );
        out.push_str(&adaptive);
    }

    // Sections: group the summary quantile samples by section label.
    let mut sections: BTreeMap<String, BTreeMap<String, f64>> = BTreeMap::new();
    for s in doc.family("mf_section_seconds") {
        if let (Some(section), Some(q)) = (s.label("section"), s.label("quantile")) {
            sections
                .entry(section.to_string())
                .or_default()
                .insert(q.to_string(), s.value);
        }
    }
    let counts: BTreeMap<&str, f64> = doc
        .family("mf_section_seconds_count")
        .iter()
        .filter_map(|s| Some((s.label("section")?, s.value)))
        .collect();
    if !sections.is_empty() {
        out.push_str(
            "sections                                           calls     p50_ms     p90_ms     p99_ms\n",
        );
        for (name, qs) in &sections {
            let ms = |q: &str| {
                qs.get(q)
                    .map(|v| format!("{:.4}", v * 1e3))
                    .unwrap_or_else(|| "-".into())
            };
            out.push_str(&format!(
                "  {:<46} {:>8} {:>10} {:>10} {:>10}\n",
                name,
                counts.get(name.as_str()).copied().unwrap_or(0.0),
                ms("0.5"),
                ms("0.9"),
                ms("0.99"),
            ));
        }
    }
    (out, counters)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut addr: Option<String> = None;
    let mut period: Option<f64> = None;
    let mut once = false;
    let mut raw = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--period" => {
                let v = cli::flag_value(&args, i, "mfstat", USAGE);
                period = match v.parse::<f64>() {
                    Ok(p) if p > 0.0 => Some(p),
                    _ => cli::usage_error("mfstat", USAGE, &format!("bad --period '{v}'")),
                };
                i += 2;
            }
            "--once" => {
                once = true;
                i += 1;
            }
            "--raw" => {
                raw = true;
                i += 1;
            }
            other if addr.is_none() && !other.starts_with('-') => {
                addr = Some(other.to_string());
                i += 1;
            }
            other => cli::usage_error("mfstat", USAGE, &format!("unknown argument '{other}'")),
        }
    }
    let Some(addr) = addr else {
        cli::usage_error("mfstat", USAGE, "missing <host:port>");
    };
    let period = period
        .or_else(|| {
            std::env::var("MF_METRICS_PERIOD")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|p: &f64| *p > 0.0)
        })
        .unwrap_or(2.0);

    let mut prev: BTreeMap<String, f64> = BTreeMap::new();
    let mut failures = 0u32;
    loop {
        match scrape(&addr) {
            Ok(text) => {
                failures = 0;
                if raw {
                    print!("{text}");
                } else {
                    let doc = promtext::parse(&text);
                    let (view, counters) = render(&doc, &prev, period);
                    if !once {
                        // ANSI clear + home: refresh in place, top-style.
                        print!("\x1b[2J\x1b[H");
                    }
                    println!("mfstat {addr}  (refresh {period}s, Ctrl-C to quit)\n");
                    print!("{view}");
                    prev = counters;
                }
                let _ = std::io::stdout().flush();
            }
            Err(e) => {
                failures += 1;
                eprintln!("mfstat: {e}");
                // In watch mode the target may simply have exited; give up
                // after a few consecutive failures rather than spinning.
                if once || failures >= 3 {
                    std::process::exit(1);
                }
            }
        }
        if once {
            return;
        }
        std::thread::sleep(Duration::from_secs_f64(period));
    }
}
