//! Tiled-vs-flat GEMM ablation and mixed-precision iterative-refinement
//! benchmarks (DESIGN.md §10).
//!
//! Two workloads:
//!
//! 1. `MultiFloat<f64, 2>` GEMM at n ∈ {64, 256}: the flat row-parallel
//!    AoS path (`parallel::gemm`) against the cache-blocked SoA path
//!    (`tile::gemm_tiled`). History kernels `GEMM/<n>/mf/flat` and
//!    `GEMM/<n>/mf/tile` feed the trend gate; the two variants are also
//!    compared *in-process* with the bootstrap machinery (flat as
//!    baseline, tile as current — an `improvement` verdict means tiling is
//!    confidently faster at that size).
//! 2. Mixed-precision iterative refinement on the n = 64 Hilbert system:
//!    fixed-step `mf_solve::refine_with_factors` with `F64x2` and `F64x4`
//!    residuals (`IR/hilbert64/x2`, `IR/hilbert64/x4`) — the O(n²)
//!    extended-precision residual sweep is the part the paper's kernels
//!    accelerate, so its cost per step is what the history tracks.
//!
//! Usage:
//!   cargo run --release -p mf-bench --bin solve -- \
//!       [--threads <n>] [--manifest <json>] [--trace <json>]

use mf_bench::history::{self, HistoryRecord, KernelEntry};
use mf_bench::workloads::rand_f64s;
use mf_bench::{cli, measure_gops_detailed, sink, trend, GopsMeasurement, RunManifest};
use mf_blas::soa::SoaMatrix;
use mf_blas::{parallel, tile, Matrix};
use mf_core::F64x2;
use mf_solve::{hilbert, lu_factor, refine::refine_with_factors, RefineOptions};
use std::time::Instant;

const USAGE: &str = "[--threads <n>] [--manifest <json>] [--trace <json>] [--profile <folded>]";
const GEMM_SIZES: [usize; 2] = [64, 256];
const IR_N: usize = 64;
/// Fixed refinement steps per timed call (tol 0 disables the convergence
/// early-out so every iteration does identical work).
const IR_STEPS: usize = 2;

/// Gop/s samples (ops per ns), the same conversion
/// `history::record_measurement` applies.
fn gops_samples(m: &GopsMeasurement) -> Vec<f64> {
    m.iter_ns
        .iter()
        .filter(|&&ns| ns > 0.0)
        .map(|&ns| m.ops_per_iter / ns)
        .collect()
}

/// A comparison-side kernel entry (no sketch quantiles — only the sample
/// pool feeds the bootstrap).
fn entry(name: &str, samples: Vec<f64>, repeats: u64) -> KernelEntry {
    KernelEntry {
        name: name.into(),
        unit: "gops".into(),
        median: history::median(&samples),
        p50_ns: 0,
        p90_ns: 0,
        p99_ns: 0,
        repeats,
        samples,
    }
}

/// Wrap per-variant entries in a synthetic single-record history so
/// [`trend::analyze`] can bootstrap CIs on the tile/flat delta.
fn wrap(rev: &str, kernels: Vec<KernelEntry>) -> Vec<HistoryRecord> {
    vec![HistoryRecord {
        tool: "solve".into(),
        git_rev: rev.into(),
        platform: "in-process".into(),
        features: history::active_features(),
        quick: mf_bench::quick_mode(),
        unix_secs: 0,
        kernels,
    }]
}

fn main() {
    let started = Instant::now();
    let args: Vec<String> = std::env::args().collect();
    let mut threads = parallel::default_threads().max(2);
    let mut manifest_path = String::from("results/manifest_solve.json");
    let mut trace_flag: Option<String> = None;
    let mut profile_flag: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                let v = cli::flag_value(&args, i, "solve", USAGE);
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => threads = n,
                    _ => cli::usage_error(
                        "solve",
                        USAGE,
                        &format!("--threads must be a positive integer, got '{v}'"),
                    ),
                }
                i += 2;
            }
            "--manifest" => {
                manifest_path = cli::flag_value(&args, i, "solve", USAGE).to_string();
                i += 2;
            }
            "--trace" => {
                trace_flag = Some(cli::flag_value(&args, i, "solve", USAGE).to_string());
                i += 2;
            }
            "--profile" => {
                profile_flag = Some(cli::flag_value(&args, i, "solve", USAGE).to_string());
                i += 2;
            }
            other => cli::usage_error("solve", USAGE, &format!("unknown argument '{other}'")),
        }
    }
    let trace = cli::trace_path(trace_flag);
    cli::trace_arm(&trace);
    let profile = cli::profile_path(profile_flag);
    cli::profile_arm(&profile);
    cli::metrics_init();

    if std::env::var("MF_BLAS_THREADS").is_err() {
        std::env::set_var("MF_BLAS_THREADS", threads.to_string());
    }
    let min_secs = if mf_bench::quick_mode() { 0.02 } else { 0.2 };

    let mut flat_entries: Vec<KernelEntry> = Vec::new();
    let mut tile_entries: Vec<KernelEntry> = Vec::new();

    for &n in &GEMM_SIZES {
        let ops = (n * n * n) as f64; // paper convention: one mf-op per MAC
        let alpha = F64x2::from(1.000000321);
        let beta = F64x2::from(0.999999712);
        let va = rand_f64s(11, n * n);
        let vb = rand_f64s(12, n * n);

        // Flat: row-parallel AoS GEMM (the pre-tiling path).
        let a = Matrix {
            rows: n,
            cols: n,
            data: va.iter().map(|&v| F64x2::from(v)).collect(),
        };
        let b = Matrix {
            rows: n,
            cols: n,
            data: vb.iter().map(|&v| F64x2::from(v)).collect(),
        };
        let mut c = Matrix {
            rows: n,
            cols: n,
            data: vec![F64x2::ZERO; n * n],
        };
        let m = measure_gops_detailed(ops, min_secs, || {
            parallel::gemm(alpha, &a, &b, beta, &mut c, threads);
            sink(c.data[0]);
        });
        history::record_measurement(&format!("GEMM/{n}/mf/flat"), &m);
        eprintln!("GEMM n={n:>4} flat {:>9.4} Gop/s", m.gops);
        flat_entries.push(entry(&format!("GEMM/{n}"), gops_samples(&m), m.iters));

        // Tiled: cache-blocked SoA GEMM.
        let sa = SoaMatrix::<f64, 2>::from_fn(n, n, |i, j| F64x2::from(va[i * n + j]));
        let sb = SoaMatrix::<f64, 2>::from_fn(n, n, |i, j| F64x2::from(vb[i * n + j]));
        let mut sc = SoaMatrix::<f64, 2>::zeros(n, n);
        let m = measure_gops_detailed(ops, min_secs, || {
            tile::gemm_tiled(alpha, &sa, &sb, beta, &mut sc, threads);
            sink(sc.comps[0][0]);
        });
        history::record_measurement(&format!("GEMM/{n}/mf/tile"), &m);
        eprintln!("GEMM n={n:>4} tile {:>9.4} Gop/s", m.gops);
        tile_entries.push(entry(&format!("GEMM/{n}"), gops_samples(&m), m.iters));
    }

    // Mixed-precision refinement: factor once, time the fixed-step
    // refinement loop (IR_STEPS corrections + the final residual, each an
    // O(n²) extended-precision sweep).
    let h = hilbert(IR_N);
    let factors = lu_factor(&h).expect("Hilbert matrix is nonsingular in f64");
    let bvec = rand_f64s(13, IR_N);
    let opts = RefineOptions {
        max_iters: IR_STEPS,
        tol_factor: 0.0,
    };
    let ir_ops = ((IR_STEPS + 1) * IR_N * IR_N) as f64;
    for (label, nn) in [("x2", 2usize), ("x4", 4)] {
        let m = measure_gops_detailed(ir_ops, min_secs, || {
            let x0 = match nn {
                2 => {
                    refine_with_factors::<2>(&h, &factors, &bvec, opts)
                        .unwrap()
                        .x[0]
                }
                _ => {
                    refine_with_factors::<4>(&h, &factors, &bvec, opts)
                        .unwrap()
                        .x[0]
                }
            };
            sink(x0);
        });
        history::record_measurement(&format!("IR/hilbert{IR_N}/{label}"), &m);
        eprintln!("IR   n={IR_N:>4} {label:<4} {:>9.4} Gop/s", m.gops);
    }

    // In-process ablation verdicts: flat is the baseline, tile the current
    // side, so `improvement` == tiling confidently faster.
    let cfg = trend::TrendConfig::default();
    let trends = trend::analyze(
        &wrap("flat", flat_entries),
        &wrap("tile", tile_entries),
        &cfg,
    );
    println!("\nTiled vs flat GEMM ({threads} threads; positive change = tiled faster)");
    print!("{}", trend::render_table(&trends));

    let platform = {
        let label = history::platform_label();
        if label.is_empty() {
            format!("solve ({threads} threads)")
        } else {
            format!("{label} ({threads} threads)")
        }
    };
    let manifest = RunManifest::collect("solve", "default", threads, started);
    cli::write_manifest(&manifest, &manifest_path);
    history::append_run("solve", &platform);
    cli::trace_finish(&trace);
    cli::profile_finish(&profile);
}
