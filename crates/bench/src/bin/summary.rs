//! E3 — regenerate the paper's Figure 8: the ratio of MultiFloats' peak
//! performance to the next-best multiprecision library, per platform,
//! kernel, and precision.
//!
//! Usage:
//!   cargo run --release -p mf-bench --bin summary -- results_wide.json [results_narrow.json ...]
//!
//! Each input is a JSON file produced by the `tables` binary. The paper's
//! claim is that every ratio exceeds 1 (MultiFloats is always fastest).

use mf_bench::{cli, history, TableRun};
use mf_telemetry::json::Json;

const KERNELS: [&str; 4] = ["AXPY", "DOT", "GEMV", "GEMM"];
const BITS: [u32; 4] = [53, 103, 156, 208];
const OURS: &str = "MultiFloats (ours)";
const USAGE: &str = "<tables.json> [...] [--trace <json>]";

fn main() {
    let started = std::time::Instant::now();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<String> = Vec::new();
    let mut trace_flag: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--trace" {
            trace_flag = Some(cli::flag_value(&args, i, "summary", USAGE).to_string());
            i += 2;
        } else {
            paths.push(args[i].clone());
            i += 1;
        }
    }
    if paths.is_empty() {
        cli::usage_error("summary", USAGE, "expected at least one tables.json path");
    }
    let trace = cli::trace_path(trace_flag);
    cli::trace_arm(&trace);
    for path in paths {
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            cli::usage_error("summary", USAGE, &format!("cannot read {path}: {e}"))
        });
        let json = Json::parse(&text).unwrap_or_else(|e| {
            cli::usage_error("summary", USAGE, &format!("{path} is not valid JSON: {e}"))
        });
        let run = TableRun::from_json(&json).unwrap_or_else(|| {
            cli::usage_error(
                "summary",
                USAGE,
                &format!("{path} is not a tables.json produced by the tables binary"),
            )
        });
        println!("\nPlatform: {} ({path})", run.platform);
        println!("Ratio of MultiFloats peak over next-best library (paper Figure 8):");
        print!("{:<8}", "Kernel");
        for &b in &BITS {
            print!("{:>10}", format!("{b}-bit"));
        }
        println!();
        println!("{}", "-".repeat(8 + 10 * BITS.len()));
        let mut all_above_one = true;
        for k in KERNELS {
            print!("{k:<8}");
            for &b in &BITS {
                let ours = run.lookup(k, b, OURS);
                let best_other = run
                    .libraries()
                    .iter()
                    .filter(|l| l.as_str() != OURS)
                    .filter_map(|l| run.lookup(k, b, l))
                    .fold(f64::NAN, f64::max);
                match (ours, best_other.is_nan()) {
                    (Some(o), false) => {
                        let r = o / best_other;
                        if r <= 1.0 {
                            all_above_one = false;
                        }
                        print!("{r:>9.2}x");
                    }
                    _ => print!("{:>10}", "N/A"),
                }
            }
            println!();
        }
        println!(
            "\n=> {}",
            if all_above_one {
                "All ratios exceed 1: MultiFloats is the fastest library in every cell (matches the paper's Figure 8 claim)."
            } else {
                "WARNING: some ratio <= 1 — MultiFloats is not fastest everywhere on this platform/run."
            }
        );
    }

    history::record_wall_ms("summary", started.elapsed().as_secs_f64() * 1e3);
    history::append_run("summary", &history::platform_label());
    cli::trace_finish(&trace);
}
