//! Adaptive escalation ladder benchmark (DESIGN.md §11).
//!
//! Measures the two costs that decide whether closing the guard loop is
//! affordable:
//!
//! * **Clean-input overhead** — the `Adaptive` engine's `checked_*` ops and
//!   the per-chunk adaptive BLAS (`dot_adaptive`) vs their raw counterparts
//!   on well-scaled inputs that never trip a detector. The ladder's promise
//!   is that this is just the detector cost (target: within 5%).
//! * **Escalation cost** — the same kernels on hostile inputs (transient
//!   overflow seeded into one chunk) where the ladder must climb to the
//!   oracle, with the observed per-run escalation rate.
//!
//! Gop/s series are recorded into the bench history as `ADAPT/*` kernels so
//! the `trend` gate tracks regressions; escalation rates land in the run
//! manifest under `escalation`.
//!
//! Usage:
//!   cargo run --release -p mf-bench --bin adaptive -- \
//!       [--manifest <json>] [--trace <json>]

use mf_bench::workloads::rand_f64s;
use mf_bench::{cli, history, measure_gops_detailed, sink, RunManifest};
use mf_blas::adaptive::dot_adaptive;
use mf_blas::kernels;
use mf_core::{Adaptive, EscalationPolicy, F64x2, GuardPolicy};
use mf_telemetry::json::Json;
use std::time::Instant;

const USAGE: &str = "[--manifest <json>] [--trace <json>]";
const SIZES: [usize; 2] = [1024, 16384];

fn mf_vec(seed: u64, n: usize) -> Vec<F64x2> {
    rand_f64s(seed, n).into_iter().map(F64x2::from).collect()
}

fn main() {
    let started = Instant::now();
    let args: Vec<String> = std::env::args().collect();
    let mut manifest_path = String::from("results/manifest_adaptive.json");
    let mut trace_flag: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--manifest" => {
                manifest_path = cli::flag_value(&args, i, "adaptive", USAGE).to_string();
                i += 2;
            }
            "--trace" => {
                trace_flag = Some(cli::flag_value(&args, i, "adaptive", USAGE).to_string());
                i += 2;
            }
            other => cli::usage_error("adaptive", USAGE, &format!("unknown argument '{other}'")),
        }
    }
    let trace = cli::trace_path(trace_flag);
    cli::trace_arm(&trace);
    cli::metrics_init();

    let min_secs = if mf_bench::quick_mode() { 0.02 } else { 0.2 };
    let policy = EscalationPolicy::default();
    let mut escalation: Vec<(String, Json)> = Vec::new();

    // ---- Scalar engine: raw checked_mul vs Adaptive::checked_mul --------
    let n = 4096usize;
    let a: Vec<F64x2> = mf_vec(11, n);
    let b: Vec<F64x2> = mf_vec(12, n);

    // Accumulate every result head so no iteration is dead code the
    // optimizer can drop from either loop.
    let raw = measure_gops_detailed(n as f64, min_secs, || {
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += a[k].checked_mul(b[k], GuardPolicy::FastOnly).value.hi();
        }
        sink(acc);
    });
    history::record_measurement("ADAPT/MUL/raw", &raw);
    eprintln!("MUL  n={n:>5} raw      {:>9.4} Gop/s", raw.gops);

    let engine = Adaptive::<f64>::new(policy);
    let adp = measure_gops_detailed(n as f64, min_secs, || {
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += engine.checked_mul(a[k], b[k]).value.hi();
        }
        sink(acc);
    });
    history::record_measurement("ADAPT/MUL/ladder", &adp);
    let overhead = raw.gops / adp.gops - 1.0;
    eprintln!(
        "MUL  n={n:>5} ladder   {:>9.4} Gop/s  (overhead {:+.2}%)",
        adp.gops,
        overhead * 100.0
    );
    let stats = engine.stats();
    escalation.push((
        "scalar_mul".to_string(),
        Json::Obj(vec![
            ("ops".to_string(), Json::u64(stats.ops)),
            ("escalations".to_string(), Json::u64(stats.escalations)),
            ("rate".to_string(), Json::Num(stats.escalation_rate())),
            ("clean_overhead".to_string(), Json::Num(overhead)),
        ]),
    ));

    // ---- BLAS dot: raw kernel vs adaptive ladder, clean inputs ----------
    for &n in &SIZES {
        let x = mf_vec(1, n);
        let y = mf_vec(2, n);

        let raw = measure_gops_detailed(n as f64, min_secs, || {
            sink(kernels::dot(&x, &y));
        });
        history::record_measurement(&format!("ADAPT/DOT/{n}/raw"), &raw);
        eprintln!("DOT  n={n:>5} raw      {:>9.4} Gop/s", raw.gops);

        let mut last_rate = 0.0;
        let adp = measure_gops_detailed(n as f64, min_secs, || {
            let (v, rep) = dot_adaptive(&x, &y, &policy, 1);
            last_rate = rep.escalation_rate();
            sink(v);
        });
        history::record_measurement(&format!("ADAPT/DOT/{n}/ladder"), &adp);
        let overhead = raw.gops / adp.gops - 1.0;
        eprintln!(
            "DOT  n={n:>5} ladder   {:>9.4} Gop/s  (overhead {:+.2}%, escalation rate {:.4})",
            adp.gops,
            overhead * 100.0,
            last_rate
        );
        escalation.push((
            format!("dot_clean_{n}"),
            Json::Obj(vec![
                ("rate".to_string(), Json::Num(last_rate)),
                ("clean_overhead".to_string(), Json::Num(overhead)),
            ]),
        ));
    }

    // ---- BLAS dot: hostile inputs (one chunk of transient overflow) -----
    for &n in &SIZES {
        let mut x = mf_vec(3, n);
        let mut y = mf_vec(4, n);
        // Seed a transient overflow into one chunk: partial products
        // [2^1023, 2^1023, -1.5·2^1023] push the running sum to +inf before
        // it cancels back to 2^1022, so the chunk must climb to the oracle
        // to recover the finite value.
        let big = f64::powi(2.0, 511);
        let huge = f64::powi(2.0, 512);
        x[5] = F64x2::from(big);
        y[5] = F64x2::from(huge);
        x[6] = F64x2::from(big);
        y[6] = F64x2::from(huge);
        x[7] = F64x2::from(huge);
        y[7] = F64x2::from(-1.5 * big);
        let mut last_rate = 0.0;
        let adp = measure_gops_detailed(n as f64, min_secs, || {
            let (v, rep) = dot_adaptive(&x, &y, &policy, 1);
            last_rate = rep.escalation_rate();
            sink(v);
        });
        history::record_measurement(&format!("ADAPT/DOT/{n}/hostile"), &adp);
        eprintln!(
            "DOT  n={n:>5} hostile  {:>9.4} Gop/s  (escalation rate {:.4})",
            adp.gops, last_rate
        );
        escalation.push((
            format!("dot_hostile_{n}"),
            Json::Obj(vec![("rate".to_string(), Json::Num(last_rate))]),
        ));
    }

    let manifest = RunManifest::collect("adaptive", "default", 0, started)
        .with_extra("escalation", Json::Obj(escalation))
        .with_extra("registry", mf_telemetry::registry::snapshot_json());
    cli::write_manifest(&manifest, &manifest_path);
    history::record_wall_ms("adaptive", started.elapsed().as_secs_f64() * 1e3);
    history::append_run("adaptive", &history::platform_label());
    cli::trace_finish(&trace);
}
