//! Pool-vs-scoped parallel dispatch ablation (DESIGN.md §9).
//!
//! Measures parallel AXPY and DOT over `MultiFloat<f64, 2>` at
//! n ∈ {128, 1024, 16384} under both dispatch executors — the persistent
//! worker pool (`MF_BLAS_POOL=on`, the default runtime) and per-dispatch
//! scoped spawn (`MF_BLAS_POOL=off`, PR 3's original path) — and records
//! per-variant history kernels (`AXPY/128/mf/pool`, `AXPY/128/mf/scoped`,
//! ...) for the trend pipeline. Small-n rows are dominated by dispatch
//! latency, which is exactly what the pool amortizes; large-n rows check
//! that the shared-cursor protocol costs nothing when the kernel dominates.
//!
//! After measuring, the two variants are compared *in-process* with the
//! same bootstrap machinery the `trend` gate uses (scoped as baseline,
//! pool as current): an `improvement` verdict means the pool is confidently
//! faster at that size.
//!
//! Usage:
//!   cargo run --release -p mf-bench --bin pardispatch -- \
//!       [--threads <n>] [--manifest <json>] [--trace <json>]

use mf_bench::history::{self, HistoryRecord, KernelEntry};
use mf_bench::workloads::rand_f64s;
use mf_bench::{cli, measure_gops_detailed, sink, trend, GopsMeasurement, RunManifest};
use mf_blas::parallel;
use mf_core::F64x2;
use std::time::Instant;

const USAGE: &str = "[--threads <n>] [--manifest <json>] [--trace <json>] [--profile <folded>]";
const SIZES: [usize; 3] = [128, 1024, 16384];
const MODES: [&str; 2] = ["scoped", "pool"];

/// Gop/s samples (ops per ns) from a measurement, the same conversion
/// `history::record_measurement` applies.
fn gops_samples(m: &GopsMeasurement) -> Vec<f64> {
    m.iter_ns
        .iter()
        .filter(|&&ns| ns > 0.0)
        .map(|&ns| m.ops_per_iter / ns)
        .collect()
}

/// A comparison-side kernel entry (no sketch quantiles — only the sample
/// pool feeds the bootstrap).
fn entry(name: &str, samples: Vec<f64>, repeats: u64) -> KernelEntry {
    KernelEntry {
        name: name.into(),
        unit: "gops".into(),
        median: history::median(&samples),
        p50_ns: 0,
        p90_ns: 0,
        p99_ns: 0,
        repeats,
        samples,
    }
}

/// Wrap per-mode entries in a synthetic single-record history so
/// [`trend::analyze`] can bootstrap CIs on the pool/scoped delta.
fn wrap(rev: &str, kernels: Vec<KernelEntry>) -> Vec<HistoryRecord> {
    vec![HistoryRecord {
        tool: "pardispatch".into(),
        git_rev: rev.into(),
        platform: "in-process".into(),
        features: history::active_features(),
        quick: mf_bench::quick_mode(),
        unix_secs: 0,
        kernels,
    }]
}

fn main() {
    let started = Instant::now();
    let args: Vec<String> = std::env::args().collect();
    let mut threads = parallel::default_threads().max(2);
    let mut manifest_path = String::from("results/manifest_pardispatch.json");
    let mut trace_flag: Option<String> = None;
    let mut profile_flag: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                let v = cli::flag_value(&args, i, "pardispatch", USAGE);
                match v.parse::<usize>() {
                    Ok(n) if n >= 2 => threads = n,
                    _ => cli::usage_error(
                        "pardispatch",
                        USAGE,
                        &format!("--threads must be an integer >= 2, got '{v}'"),
                    ),
                }
                i += 2;
            }
            "--manifest" => {
                manifest_path = cli::flag_value(&args, i, "pardispatch", USAGE).to_string();
                i += 2;
            }
            "--trace" => {
                trace_flag = Some(cli::flag_value(&args, i, "pardispatch", USAGE).to_string());
                i += 2;
            }
            "--profile" => {
                profile_flag = Some(cli::flag_value(&args, i, "pardispatch", USAGE).to_string());
                i += 2;
            }
            other => cli::usage_error("pardispatch", USAGE, &format!("unknown argument '{other}'")),
        }
    }
    let trace = cli::trace_path(trace_flag);
    cli::trace_arm(&trace);
    let profile = cli::profile_path(profile_flag);
    cli::profile_arm(&profile);
    cli::metrics_init();

    // Size the pool like the dispatch: MF_BLAS_THREADS wins if the caller
    // set it, otherwise match --threads so both executors use the same
    // worker count.
    if std::env::var("MF_BLAS_THREADS").is_err() {
        std::env::set_var("MF_BLAS_THREADS", threads.to_string());
    }
    let min_secs = if mf_bench::quick_mode() { 0.02 } else { 0.2 };

    let mut scoped_entries: Vec<KernelEntry> = Vec::new();
    let mut pool_entries: Vec<KernelEntry> = Vec::new();

    for &n in &SIZES {
        let alpha = F64x2::from(1.000000321);
        let x: Vec<F64x2> = rand_f64s(1, n).into_iter().map(F64x2::from).collect();
        let mut y: Vec<F64x2> = rand_f64s(2, n).into_iter().map(F64x2::from).collect();

        for mode in MODES {
            std::env::set_var("MF_BLAS_POOL", if mode == "pool" { "on" } else { "off" });

            let m = measure_gops_detailed(n as f64, min_secs, || {
                parallel::axpy(alpha, &x, &mut y, threads);
                sink(y[0]);
            });
            history::record_measurement(&format!("AXPY/{n}/mf/{mode}"), &m);
            eprintln!("AXPY n={n:>5} {mode:<6} {:>9.4} Gop/s", m.gops);
            let e = entry(&format!("AXPY/{n}"), gops_samples(&m), m.iters);
            if mode == "pool" {
                pool_entries.push(e);
            } else {
                scoped_entries.push(e);
            }

            let m = measure_gops_detailed(n as f64, min_secs, || {
                sink(parallel::dot(&x, &y, threads));
            });
            history::record_measurement(&format!("DOT/{n}/mf/{mode}"), &m);
            eprintln!("DOT  n={n:>5} {mode:<6} {:>9.4} Gop/s", m.gops);
            let e = entry(&format!("DOT/{n}"), gops_samples(&m), m.iters);
            if mode == "pool" {
                pool_entries.push(e);
            } else {
                scoped_entries.push(e);
            }
        }
    }
    std::env::remove_var("MF_BLAS_POOL");

    // In-process ablation verdicts: scoped is the baseline, pool the
    // current side, so `improvement` == pool confidently faster.
    let cfg = trend::TrendConfig::default();
    let trends = trend::analyze(
        &wrap("scoped", scoped_entries),
        &wrap("pool", pool_entries),
        &cfg,
    );
    println!("\nPool vs scoped dispatch ({threads} threads; positive change = pool faster)");
    print!("{}", trend::render_table(&trends));

    let platform = {
        let label = history::platform_label();
        if label.is_empty() {
            format!("pardispatch ({threads} threads)")
        } else {
            format!("{label} ({threads} threads)")
        }
    };
    let manifest = RunManifest::collect("pardispatch", "default", threads, started);
    cli::write_manifest(&manifest, &manifest_path);
    history::append_run("pardispatch", &platform);
    cli::trace_finish(&trace);
    cli::profile_finish(&profile);
}
