//! E1/E2 — regenerate the paper's Figure 9 (and, under a narrow-SIMD
//! build, Figure 10): CPU performance tables in Gop/s for AXPY, DOT, GEMV,
//! GEMM at 53/103/156/208-bit precision across libraries.
//!
//! Usage:
//!   cargo run --release -p mf-bench --bin tables -- \
//!       [--config wide|narrow] [--label <text>] [--out <json>] [--manifest <json>]
//!
//! `--config` names the experiment configuration in the run manifest and
//! the default platform label: `wide` (E1, native SIMD — the default) or
//! `narrow` (E2, run under the narrowed-RUSTFLAGS build). It does not
//! change codegen by itself — the SIMD width is fixed at compile time by
//! RUSTFLAGS (see `scripts/run_experiments.sh`).
//!
//! Libraries reported (see DESIGN.md substitutions):
//!   MultiFloats      — this work (max over AoS / SoA / threaded variants)
//!   GMP/MPFR-class   — `mf-mpsoft` limb-based soft float (stands in for
//!                      GMP, MPFR, FLINT, Boost.Multiprecision)
//!   QD               — double-double / quad-double port (103/208-bit only)
//!   CAMPARY          — certified expansion port
//!   libquadmath      — not reproducible in stable Rust (T6): all N/A

use mf_baselines::campary::Expansion;
use mf_baselines::dd::DoubleDouble;
use mf_baselines::qd::QuadDouble;
use mf_bench::workloads::{rand_f64s, Sizes};
use mf_bench::{cli, history, measure_kernel, render_table, sink, Cell, RunManifest, TableRun};
use mf_blas::soa::{self, SoaMatrix, SoaVec};
use mf_blas::{kernels, mp, parallel, Matrix, Scalar};
use mf_core::MultiFloat;
use mf_mpsoft::MpFloat;
use mf_telemetry::Section;
use std::time::Instant;

const KERNELS: [&str; 4] = ["AXPY", "DOT", "GEMV", "GEMM"];
const BITS: [u32; 4] = [53, 103, 156, 208];

const USAGE: &str =
    "[--config wide|narrow] [--label <text>] [--out <json>] [--manifest <json>] [--trace <json>] [--profile <folded>]";

static SEC_MULTIFLOATS: Section = Section::new("tables.multifloats");
static SEC_MPSOFT: Section = Section::new("tables.mpsoft");
static SEC_QD: Section = Section::new("tables.qd");
static SEC_CAMPARY: Section = Section::new("tables.campary");

/// Measure all four kernels for one `Scalar` type (AoS layout).
/// `tag` keys the history entries (e.g. `103/mf/aos`).
fn bench_aos<S: Scalar>(sizes: &Sizes, threads: usize, tag: &str) -> [f64; 4] {
    let n = sizes.vec_len;
    let xs: Vec<S> = rand_f64s(1, n).into_iter().map(S::s_from_f64).collect();
    let mut ys: Vec<S> = rand_f64s(2, n).into_iter().map(S::s_from_f64).collect();
    let alpha = S::s_from_f64(1.000000321);

    let axpy = measure_kernel(
        &format!("AXPY/{tag}"),
        sizes.ops("AXPY"),
        sizes.min_secs,
        || {
            if threads > 1 {
                parallel::axpy(alpha, &xs, &mut ys, threads);
            } else {
                kernels::axpy(alpha, &xs, &mut ys);
            }
            sink(ys[0]);
        },
    );

    let dot = measure_kernel(
        &format!("DOT/{tag}"),
        sizes.ops("DOT"),
        sizes.min_secs,
        || {
            let d = if threads > 1 {
                parallel::dot(&xs, &ys, threads)
            } else {
                kernels::dot(&xs, &ys)
            };
            sink(d);
        },
    );

    let gn = sizes.gemv_n;
    let a = {
        let vals = rand_f64s(3, gn * gn);
        Matrix {
            rows: gn,
            cols: gn,
            data: vals.into_iter().map(S::s_from_f64).collect(),
        }
    };
    let xv: Vec<S> = rand_f64s(4, gn).into_iter().map(S::s_from_f64).collect();
    let mut yv: Vec<S> = rand_f64s(5, gn).into_iter().map(S::s_from_f64).collect();
    let beta = S::s_from_f64(0.999999712);
    let gemv = measure_kernel(
        &format!("GEMV/{tag}"),
        sizes.ops("GEMV"),
        sizes.min_secs,
        || {
            if threads > 1 {
                parallel::gemv(alpha, &a, &xv, beta, &mut yv, threads);
            } else {
                kernels::gemv(alpha, &a, &xv, beta, &mut yv);
            }
            sink(yv[0]);
        },
    );

    let mn = sizes.gemm_n;
    let am = {
        let vals = rand_f64s(6, mn * mn);
        Matrix {
            rows: mn,
            cols: mn,
            data: vals.into_iter().map(S::s_from_f64).collect(),
        }
    };
    let bm = {
        let vals = rand_f64s(7, mn * mn);
        Matrix {
            rows: mn,
            cols: mn,
            data: vals.into_iter().map(S::s_from_f64).collect(),
        }
    };
    let mut cm = Matrix::<S>::zeros(mn, mn);
    let gemm = measure_kernel(
        &format!("GEMM/{tag}"),
        sizes.ops("GEMM"),
        sizes.min_secs,
        || {
            if threads > 1 {
                parallel::gemm(alpha, &am, &bm, beta, &mut cm, threads);
            } else {
                kernels::gemm(alpha, &am, &bm, beta, &mut cm);
            }
            sink(cm.at(0, 0));
        },
    );

    [axpy, dot, gemv, gemm]
}

/// Measure all four kernels for MultiFloat in SoA layout.
fn bench_soa<const N: usize>(sizes: &Sizes, tag: &str) -> [f64; 4] {
    type T = f64;
    let n = sizes.vec_len;
    let to_mf = |v: f64| MultiFloat::<T, N>::from(v);
    let xs = SoaVec::from_slice(&rand_f64s(1, n).into_iter().map(to_mf).collect::<Vec<_>>());
    let mut ys = SoaVec::from_slice(&rand_f64s(2, n).into_iter().map(to_mf).collect::<Vec<_>>());
    let alpha = to_mf(1.000000321);
    let beta = to_mf(0.999999712);

    let axpy = measure_kernel(
        &format!("AXPY/{tag}"),
        sizes.ops("AXPY"),
        sizes.min_secs,
        || {
            soa::axpy(alpha, &xs, &mut ys);
            sink(ys.comps[0][0]);
        },
    );

    let dot = measure_kernel(
        &format!("DOT/{tag}"),
        sizes.ops("DOT"),
        sizes.min_secs,
        || {
            sink(soa::dot(&xs, &ys));
        },
    );

    let gn = sizes.gemv_n;
    let vals = rand_f64s(3, gn * gn);
    let a = SoaMatrix::from_fn(gn, gn, |i, j| to_mf(vals[i * gn + j]));
    let xv = SoaVec::from_slice(&rand_f64s(4, gn).into_iter().map(to_mf).collect::<Vec<_>>());
    let mut yv = SoaVec::from_slice(&rand_f64s(5, gn).into_iter().map(to_mf).collect::<Vec<_>>());
    let gemv = measure_kernel(
        &format!("GEMV/{tag}"),
        sizes.ops("GEMV"),
        sizes.min_secs,
        || {
            soa::gemv(alpha, &a, &xv, beta, &mut yv);
            sink(yv.comps[0][0]);
        },
    );

    let mn = sizes.gemm_n;
    let va = rand_f64s(6, mn * mn);
    let vb = rand_f64s(7, mn * mn);
    let am = SoaMatrix::from_fn(mn, mn, |i, j| to_mf(va[i * mn + j]));
    let bm = SoaMatrix::from_fn(mn, mn, |i, j| to_mf(vb[i * mn + j]));
    let mut cm = SoaMatrix::<T, N>::zeros(mn, mn);
    let gemm = measure_kernel(
        &format!("GEMM/{tag}"),
        sizes.ops("GEMM"),
        sizes.min_secs,
        || {
            soa::gemm(alpha, &am, &bm, beta, &mut cm);
            sink(cm.comps[0][0]);
        },
    );

    [axpy, dot, gemv, gemm]
}

/// Measure the limb-based MpFloat kernels at `prec` bits.
fn bench_mp(sizes: &Sizes, prec: u32, tag: &str) -> [f64; 4] {
    let n = sizes.vec_len.min(2048); // MpFloat is slow; cap sizes
    let x: Vec<MpFloat> = rand_f64s(1, n)
        .iter()
        .map(|&v| MpFloat::from_f64(v, prec))
        .collect();
    let mut y: Vec<MpFloat> = rand_f64s(2, n)
        .iter()
        .map(|&v| MpFloat::from_f64(v, prec))
        .collect();
    let alpha = MpFloat::from_f64(1.000000321, prec);
    let beta = MpFloat::from_f64(0.999999712, prec);

    let axpy = measure_kernel(&format!("AXPY/{tag}"), n as f64, sizes.min_secs, || {
        mp::axpy(&alpha, &x, &mut y, prec);
        sink(y[0].to_f64());
    });
    let dot = measure_kernel(&format!("DOT/{tag}"), n as f64, sizes.min_secs, || {
        sink(mp::dot(&x, &y, prec).to_f64());
    });

    let gn = sizes.gemv_n.min(96);
    let a: Vec<MpFloat> = rand_f64s(3, gn * gn)
        .iter()
        .map(|&v| MpFloat::from_f64(v, prec))
        .collect();
    let xv: Vec<MpFloat> = rand_f64s(4, gn)
        .iter()
        .map(|&v| MpFloat::from_f64(v, prec))
        .collect();
    let mut yv: Vec<MpFloat> = rand_f64s(5, gn)
        .iter()
        .map(|&v| MpFloat::from_f64(v, prec))
        .collect();
    let gemv = measure_kernel(
        &format!("GEMV/{tag}"),
        (gn * gn) as f64,
        sizes.min_secs,
        || {
            mp::gemv(&alpha, &a, gn, gn, &xv, &beta, &mut yv, prec);
            sink(yv[0].to_f64());
        },
    );

    let mn = sizes.gemm_n.min(32);
    let am: Vec<MpFloat> = rand_f64s(6, mn * mn)
        .iter()
        .map(|&v| MpFloat::from_f64(v, prec))
        .collect();
    let bm: Vec<MpFloat> = rand_f64s(7, mn * mn)
        .iter()
        .map(|&v| MpFloat::from_f64(v, prec))
        .collect();
    let mut cmv: Vec<MpFloat> = (0..mn * mn).map(|_| MpFloat::zero(prec)).collect();
    let gemm = measure_kernel(
        &format!("GEMM/{tag}"),
        (mn * mn * mn) as f64,
        sizes.min_secs,
        || {
            mp::gemm(&alpha, &am, &bm, &mut cmv, mn, mn, mn, &beta, prec);
            sink(cmv[0].to_f64());
        },
    );

    [axpy, dot, gemv, gemm]
}

fn push(cells: &mut Vec<Cell>, lib: &str, bits: u32, vals: [f64; 4]) {
    for (k, &g) in KERNELS.iter().zip(&vals) {
        cells.push(Cell {
            kernel: (*k).into(),
            bits,
            library: lib.into(),
            gops: g,
        });
    }
}

fn max4(a: [f64; 4], b: [f64; 4]) -> [f64; 4] {
    core::array::from_fn(|i| a[i].max(b[i]))
}

fn main() {
    let started = Instant::now();
    let args: Vec<String> = std::env::args().collect();
    let mut config = String::from("wide");
    let mut label: Option<String> = None;
    let mut out_path: Option<String> = None;
    let mut manifest_path = String::from("results/manifest_tables.json");
    let mut trace_flag: Option<String> = None;
    let mut profile_flag: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--config" => {
                config = cli::flag_value(&args, i, "tables", USAGE).to_string();
                if config != "wide" && config != "narrow" {
                    cli::usage_error(
                        "tables",
                        USAGE,
                        &format!("--config must be 'wide' or 'narrow', got '{config}'"),
                    );
                }
                i += 2;
            }
            "--label" => {
                label = Some(cli::flag_value(&args, i, "tables", USAGE).to_string());
                i += 2;
            }
            "--out" => {
                out_path = Some(cli::flag_value(&args, i, "tables", USAGE).to_string());
                i += 2;
            }
            "--manifest" => {
                manifest_path = cli::flag_value(&args, i, "tables", USAGE).to_string();
                i += 2;
            }
            "--trace" => {
                trace_flag = Some(cli::flag_value(&args, i, "tables", USAGE).to_string());
                i += 2;
            }
            "--profile" => {
                profile_flag = Some(cli::flag_value(&args, i, "tables", USAGE).to_string());
                i += 2;
            }
            other => cli::usage_error("tables", USAGE, &format!("unknown argument '{other}'")),
        }
    }
    let trace = cli::trace_path(trace_flag);
    cli::trace_arm(&trace);
    let profile = cli::profile_path(profile_flag);
    cli::profile_arm(&profile);
    cli::metrics_init();
    let label = label.unwrap_or_else(|| {
        format!(
            "{} ({}, {} threads)",
            std::env::var("MF_PLATFORM_LABEL").unwrap_or_else(|_| "x86-64 native".into()),
            config,
            parallel::default_threads()
        )
    });

    let sizes = Sizes::from_env();
    let threads = parallel::default_threads();
    let mut cells = Vec::new();

    eprintln!(
        "== MultiFloats (ours): max over AoS / SoA{} ==",
        if threads > 1 { " / threaded" } else { "" }
    );
    {
        let _g = SEC_MULTIFLOATS.start();
        // 53-bit: N = 1 (plain base type through the same kernels).
        let mf1 = max4(
            bench_aos::<MultiFloat<f64, 1>>(&sizes, 1, "53/mf/aos"),
            bench_soa::<1>(&sizes, "53/mf/soa"),
        );
        let mf1 = if threads > 1 {
            max4(
                mf1,
                bench_aos::<MultiFloat<f64, 1>>(&sizes, threads, "53/mf/aos-mt"),
            )
        } else {
            mf1
        };
        push(&mut cells, "MultiFloats (ours)", 53, mf1);
        eprintln!("  53-bit: {mf1:.3?}");

        let mf2 = max4(
            bench_aos::<MultiFloat<f64, 2>>(&sizes, 1, "103/mf/aos"),
            bench_soa::<2>(&sizes, "103/mf/soa"),
        );
        push(&mut cells, "MultiFloats (ours)", 103, mf2);
        eprintln!("  103-bit: {mf2:.3?}");
        let mf3 = max4(
            bench_aos::<MultiFloat<f64, 3>>(&sizes, 1, "156/mf/aos"),
            bench_soa::<3>(&sizes, "156/mf/soa"),
        );
        push(&mut cells, "MultiFloats (ours)", 156, mf3);
        eprintln!("  156-bit: {mf3:.3?}");
        let mf4 = max4(
            bench_aos::<MultiFloat<f64, 4>>(&sizes, 1, "208/mf/aos"),
            bench_soa::<4>(&sizes, "208/mf/soa"),
        );
        push(&mut cells, "MultiFloats (ours)", 208, mf4);
        eprintln!("  208-bit: {mf4:.3?}");
    }

    eprintln!("== GMP/MPFR-class (mf-mpsoft) ==");
    {
        let _g = SEC_MPSOFT.start();
        for &bits in &BITS {
            let v = bench_mp(&sizes, bits, &format!("{bits}/mpsoft"));
            push(&mut cells, "GMP/MPFR-class", bits, v);
            eprintln!("  {bits}-bit: {v:.3?}");
        }
    }

    eprintln!("== QD ==");
    {
        let _g = SEC_QD.start();
        let qd2 = bench_aos::<DoubleDouble>(&sizes, 1, "103/qd");
        push(&mut cells, "QD", 103, qd2);
        eprintln!("  103-bit (dd): {qd2:.3?}");
        let qd4 = bench_aos::<QuadDouble>(&sizes, 1, "208/qd");
        push(&mut cells, "QD", 208, qd4);
        eprintln!("  208-bit (qd): {qd4:.3?}");
    }

    eprintln!("== CAMPARY (certified) ==");
    {
        let _g = SEC_CAMPARY.start();
        let c1 = bench_aos::<Expansion<1>>(&sizes, 1, "53/campary");
        push(&mut cells, "CAMPARY", 53, c1);
        eprintln!("  53-bit: {c1:.3?}");
        let c2 = bench_aos::<Expansion<2>>(&sizes, 1, "103/campary");
        push(&mut cells, "CAMPARY", 103, c2);
        eprintln!("  103-bit: {c2:.3?}");
        let c3 = bench_aos::<Expansion<3>>(&sizes, 1, "156/campary");
        push(&mut cells, "CAMPARY", 156, c3);
        eprintln!("  156-bit: {c3:.3?}");
        let c4 = bench_aos::<Expansion<4>>(&sizes, 1, "208/campary");
        push(&mut cells, "CAMPARY", 208, c4);
        eprintln!("  208-bit: {c4:.3?}");
    }

    let run = TableRun {
        platform: label,
        cells,
    };

    println!("\nPlatform: {}", run.platform);
    for k in KERNELS {
        println!("\n{k} Performance (Gop/s)");
        print!("{}", render_table(&run, k, &BITS));
    }
    println!("\n(libquadmath: N/A — no __float128 in stable Rust; see DESIGN.md T6)");

    if let Some(p) = out_path {
        std::fs::write(&p, run.to_json().render_pretty())
            .unwrap_or_else(|e| panic!("cannot write {p}: {e}"));
        eprintln!("wrote {p}");
    }

    let manifest = RunManifest::collect("tables", &config, threads, started)
        .with_extra("table", run.to_json());
    cli::write_manifest(&manifest, &manifest_path);
    history::append_run("tables", &run.platform);
    cli::trace_finish(&trace);
    cli::profile_finish(&profile);
}
