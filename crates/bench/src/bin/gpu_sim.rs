//! E4 — regenerate the paper's Figure 11: extended-precision kernels with
//! `T = float` (the RDNA3 GPU configuration; that architecture has no
//! double-precision units, so the paper runs `MultiFloat<float, N>`).
//!
//! Substitution (DESIGN.md T3): no GPU is available here, so the same
//! branch-free data-parallel code path is exercised as f32 SIMD lanes on
//! the CPU — the algorithm and datatype are identical to the paper's GPU
//! kernels; one AVX-512 register holds 16 f32 lanes executing in lock-step
//! like a wavefront slice. Absolute Gop/s differ from an RX 7900 XTX by
//! orders of magnitude; the reproduced *shape* is the 1→4-term scaling of
//! each kernel.
//!
//! Usage:
//!   cargo run --release -p mf-bench --bin gpu_sim -- [--out <json>] [--manifest <json>]

use mf_bench::workloads::{rand_f64s, Sizes};
use mf_bench::{cli, history, measure_kernel, sink, Cell, RunManifest, TableRun};
use mf_blas::kernels;
use mf_blas::soa::{self, SoaMatrix, SoaVec};
use mf_blas::Matrix;
use mf_core::MultiFloat;
use mf_telemetry::Section;
use std::time::Instant;

const KERNELS: [&str; 4] = ["AXPY", "DOT", "GEMV", "GEMM"];

const USAGE: &str = "[--out <json>] [--manifest <json>] [--trace <json>]";

static SEC_TERMS: [Section; 4] = [
    Section::new("gpu_sim.terms_1"),
    Section::new("gpu_sim.terms_2"),
    Section::new("gpu_sim.terms_3"),
    Section::new("gpu_sim.terms_4"),
];

fn bench_f32<const N: usize>(sizes: &Sizes, tag: &str) -> [f64; 4] {
    let to_mf = |v: f64| MultiFloat::<f32, N>::from(v);
    let n = sizes.vec_len;
    // SoA (lane-parallel, the GPU-like layout).
    let xs = SoaVec::from_slice(&rand_f64s(1, n).into_iter().map(to_mf).collect::<Vec<_>>());
    let mut ys = SoaVec::from_slice(&rand_f64s(2, n).into_iter().map(to_mf).collect::<Vec<_>>());
    let alpha = to_mf(1.000000321);
    let beta = to_mf(0.999999712);

    let axpy = measure_kernel(
        &format!("AXPY/{tag}/soa"),
        sizes.ops("AXPY"),
        sizes.min_secs,
        || {
            soa::axpy(alpha, &xs, &mut ys);
            sink(ys.comps[0][0]);
        },
    );
    let dot = measure_kernel(
        &format!("DOT/{tag}/soa"),
        sizes.ops("DOT"),
        sizes.min_secs,
        || {
            sink(soa::dot(&xs, &ys));
        },
    );

    let gn = sizes.gemv_n;
    let vals = rand_f64s(3, gn * gn);
    let a = SoaMatrix::from_fn(gn, gn, |i, j| to_mf(vals[i * gn + j]));
    let xv = SoaVec::from_slice(&rand_f64s(4, gn).into_iter().map(to_mf).collect::<Vec<_>>());
    let mut yv = SoaVec::from_slice(&rand_f64s(5, gn).into_iter().map(to_mf).collect::<Vec<_>>());
    let gemv = measure_kernel(
        &format!("GEMV/{tag}/soa"),
        sizes.ops("GEMV"),
        sizes.min_secs,
        || {
            soa::gemv(alpha, &a, &xv, beta, &mut yv);
            sink(yv.comps[0][0]);
        },
    );

    let mn = sizes.gemm_n;
    let va = rand_f64s(6, mn * mn);
    let vb = rand_f64s(7, mn * mn);
    let am = SoaMatrix::from_fn(mn, mn, |i, j| to_mf(va[i * mn + j]));
    let bm = SoaMatrix::from_fn(mn, mn, |i, j| to_mf(vb[i * mn + j]));
    let mut cm = SoaMatrix::<f32, N>::zeros(mn, mn);
    let gemm = measure_kernel(
        &format!("GEMM/{tag}/soa"),
        sizes.ops("GEMM"),
        sizes.min_secs,
        || {
            soa::gemm(alpha, &am, &bm, beta, &mut cm);
            sink(cm.comps[0][0]);
        },
    );

    // AoS fallback can occasionally win on tiny sizes; report the max like
    // the CPU tables do.
    let aos = bench_f32_aos::<N>(sizes, tag);
    [
        axpy.max(aos[0]),
        dot.max(aos[1]),
        gemv.max(aos[2]),
        gemm.max(aos[3]),
    ]
}

fn bench_f32_aos<const N: usize>(sizes: &Sizes, tag: &str) -> [f64; 4] {
    let to_mf = |v: f64| MultiFloat::<f32, N>::from(v);
    let n = sizes.vec_len;
    let xs: Vec<_> = rand_f64s(1, n).into_iter().map(to_mf).collect();
    let mut ys: Vec<_> = rand_f64s(2, n).into_iter().map(to_mf).collect();
    let alpha = to_mf(1.000000321);
    let beta = to_mf(0.999999712);
    let axpy = measure_kernel(
        &format!("AXPY/{tag}/aos"),
        sizes.ops("AXPY"),
        sizes.min_secs,
        || {
            kernels::axpy(alpha, &xs, &mut ys);
            sink(ys[0]);
        },
    );
    let dot = measure_kernel(
        &format!("DOT/{tag}/aos"),
        sizes.ops("DOT"),
        sizes.min_secs,
        || {
            sink(kernels::dot(&xs, &ys));
        },
    );
    let gn = sizes.gemv_n;
    let a = {
        let vals = rand_f64s(3, gn * gn);
        Matrix {
            rows: gn,
            cols: gn,
            data: vals.into_iter().map(to_mf).collect(),
        }
    };
    let xv: Vec<_> = rand_f64s(4, gn).into_iter().map(to_mf).collect();
    let mut yv: Vec<_> = rand_f64s(5, gn).into_iter().map(to_mf).collect();
    let gemv = measure_kernel(
        &format!("GEMV/{tag}/aos"),
        sizes.ops("GEMV"),
        sizes.min_secs,
        || {
            kernels::gemv(alpha, &a, &xv, beta, &mut yv);
            sink(yv[0]);
        },
    );
    let mn = sizes.gemm_n;
    let am = {
        let vals = rand_f64s(6, mn * mn);
        Matrix {
            rows: mn,
            cols: mn,
            data: vals.into_iter().map(to_mf).collect(),
        }
    };
    let bm = {
        let vals = rand_f64s(7, mn * mn);
        Matrix {
            rows: mn,
            cols: mn,
            data: vals.into_iter().map(to_mf).collect(),
        }
    };
    let mut cm = Matrix::zeros(mn, mn);
    let gemm = measure_kernel(
        &format!("GEMM/{tag}/aos"),
        sizes.ops("GEMM"),
        sizes.min_secs,
        || {
            kernels::gemm(alpha, &am, &bm, beta, &mut cm);
            sink(cm.at(0, 0));
        },
    );
    [axpy, dot, gemv, gemm]
}

fn main() {
    let started = Instant::now();
    let args: Vec<String> = std::env::args().collect();
    let mut out_path: Option<String> = None;
    let mut manifest_path = String::from("results/manifest_gpu_sim.json");
    let mut trace_flag: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                out_path = Some(cli::flag_value(&args, i, "gpu_sim", USAGE).to_string());
                i += 2;
            }
            "--manifest" => {
                manifest_path = cli::flag_value(&args, i, "gpu_sim", USAGE).to_string();
                i += 2;
            }
            "--trace" => {
                trace_flag = Some(cli::flag_value(&args, i, "gpu_sim", USAGE).to_string());
                i += 2;
            }
            other => cli::usage_error("gpu_sim", USAGE, &format!("unknown argument '{other}'")),
        }
    }

    let trace = cli::trace_path(trace_flag);
    cli::trace_arm(&trace);
    cli::metrics_init();

    let sizes = Sizes::from_env();
    let mut cells = Vec::new();
    let results = [
        SEC_TERMS[0].time(|| bench_f32::<1>(&sizes, "24/f32x1")),
        SEC_TERMS[1].time(|| bench_f32::<2>(&sizes, "48/f32x2")),
        SEC_TERMS[2].time(|| bench_f32::<3>(&sizes, "72/f32x3")),
        SEC_TERMS[3].time(|| bench_f32::<4>(&sizes, "96/f32x4")),
    ];
    for (t, vals) in results.iter().enumerate() {
        for (k, &g) in KERNELS.iter().zip(vals) {
            cells.push(Cell {
                kernel: (*k).into(),
                bits: ((t + 1) * 24) as u32,
                library: format!("{}-term", t + 1),
                gops: g,
            });
        }
    }

    println!("T = f32 data-parallel performance (GPU substitution, paper Figure 11)");
    println!("(Gop/s; columns are expansion lengths over the f32 base type)\n");
    print!("{:<8}", "Kernel");
    for t in 1..=4 {
        print!("{:>10}", format!("{t}-Term"));
    }
    println!();
    println!("{}", "-".repeat(8 + 40));
    for (ki, k) in KERNELS.iter().enumerate() {
        print!("{k:<8}");
        for r in &results {
            print!("{:>10.3}", r[ki]);
        }
        println!();
    }

    let run = TableRun {
        platform: "f32 SIMD lanes (GPU substitution)".into(),
        cells,
    };
    if let Some(p) = out_path {
        std::fs::write(&p, run.to_json().render_pretty())
            .unwrap_or_else(|e| panic!("cannot write {p}: {e}"));
        eprintln!("wrote {p}");
    }

    let manifest =
        RunManifest::collect("gpu_sim", "f32-soa", 1, started).with_extra("table", run.to_json());
    cli::write_manifest(&manifest, &manifest_path);
    history::append_run("gpu_sim", &run.platform);
    cli::trace_finish(&trace);
}
