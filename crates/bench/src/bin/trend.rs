//! Benchmark regression gate: compares fresh history records against a
//! committed baseline and exits nonzero on a confident regression.
//!
//! Usage:
//!   cargo run --release -p mf-bench --bin trend -- \
//!       [--history <jsonl>] [--baseline <jsonl>] [--threshold <frac>] \
//!       [--min-samples <n>]
//!
//! Exit codes: 0 = no regression, 1 = regression beyond threshold,
//! 2 = usage or data error (missing/empty history or baseline).
//!
//! The whole behavior lives in `mf_bench::trend::run` so the exit-code
//! contract is covered by unit tests.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(mf_bench::trend::run(&args));
}
