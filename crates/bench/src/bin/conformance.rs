//! Differential conformance sweep: drive every public op class through
//! `MultiFloat`, the `MpFloat` oracle, the DD/QD/CAMPARY baselines, and
//! `SoftFloat` in lockstep on adversarial inputs (see `mf-conformance`).
//!
//! Any divergence is shrunk to a minimal reproducer and appended to the
//! JSON corpus under `--corpus`; the committed corpus is replayed by
//! `cargo test -p mf-conformance`. Exit status 1 means divergences were
//! found, 0 means the sweep was clean.
//!
//! `--guarded` adds a lockstep sweep of the `checked_*` API under each
//! recovery policy; `--adaptive` adds a lockstep sweep of the `Adaptive`
//! ladder engine, whose escalated results must match the MpFloat oracle.
//!
//! Usage:
//!   cargo run --release -p mf-bench --bin conformance -- \
//!       [--ops arith,cmp,convert,io,blas,soft] [--cases N] [--seed S] \
//!       [--guarded] [--adaptive] [--corpus <dir>] [--manifest <json>]

use mf_bench::{cli, history, RunManifest};
use mf_conformance::{corpus, run_adaptive, run_class, run_guarded, OpClass};
use mf_core::GuardPolicy;
use mf_telemetry::json::Json;
use std::time::Instant;

const USAGE: &str = "[--ops <class,..>] [--cases N] [--seed S] [--guarded] [--adaptive] \
                     [--corpus <dir>] [--manifest <json>] [--trace <json>]";

fn main() {
    let started = Instant::now();
    let args: Vec<String> = std::env::args().collect();
    let mut classes: Vec<OpClass> = OpClass::ALL.to_vec();
    let mut cases: usize = if mf_bench::quick_mode() {
        2_000
    } else {
        100_000
    };
    let mut seed: u64 = 0x5EED_CAFE;
    let mut guarded = false;
    let mut adaptive = false;
    let mut corpus_dir = String::from("results/conformance");
    let mut manifest_path = String::from("results/manifest_conformance.json");
    let mut trace_flag: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--ops" => {
                let v = cli::flag_value(&args, i, "conformance", USAGE);
                classes = v
                    .split(',')
                    .map(|s| {
                        OpClass::parse(s.trim()).unwrap_or_else(|| {
                            cli::usage_error(
                                "conformance",
                                USAGE,
                                &format!("unknown op class '{s}' (expected one of arith, cmp, convert, io, blas, soft)"),
                            )
                        })
                    })
                    .collect();
                i += 2;
            }
            "--cases" => {
                let v = cli::flag_value(&args, i, "conformance", USAGE);
                cases = v.parse().unwrap_or_else(|_| {
                    cli::usage_error(
                        "conformance",
                        USAGE,
                        &format!("--cases expects a positive integer, got '{v}'"),
                    )
                });
                i += 2;
            }
            "--seed" => {
                let v = cli::flag_value(&args, i, "conformance", USAGE);
                // Accept both decimal and the 0x-prefixed hex form the
                // sweep itself prints, so seeds can be pasted back in.
                let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                    Some(hex) => u64::from_str_radix(&hex.replace('_', ""), 16).ok(),
                    None => v.parse().ok(),
                };
                seed = parsed.unwrap_or_else(|| {
                    cli::usage_error(
                        "conformance",
                        USAGE,
                        &format!("--seed expects an integer (decimal or 0x hex), got '{v}'"),
                    )
                });
                i += 2;
            }
            "--guarded" => {
                guarded = true;
                i += 1;
            }
            "--adaptive" => {
                adaptive = true;
                i += 1;
            }
            "--corpus" => {
                corpus_dir = cli::flag_value(&args, i, "conformance", USAGE).to_string();
                i += 2;
            }
            "--manifest" => {
                manifest_path = cli::flag_value(&args, i, "conformance", USAGE).to_string();
                i += 2;
            }
            "--trace" => {
                trace_flag = Some(cli::flag_value(&args, i, "conformance", USAGE).to_string());
                i += 2;
            }
            other => cli::usage_error("conformance", USAGE, &format!("unknown argument '{other}'")),
        }
    }
    let trace = cli::trace_path(trace_flag);
    cli::trace_arm(&trace);
    cli::metrics_init();

    println!("Differential conformance sweep: {cases} cases/class, seed {seed:#x}");
    println!(
        "{:<10} {:>10} {:>12} {:>10}",
        "class", "cases", "divergences", "secs"
    );
    println!("{}", "-".repeat(46));

    let mut all = Vec::new();
    let mut counts = Vec::new();
    for &class in &classes {
        let t = Instant::now();
        let divs = run_class(class, cases, seed);
        println!(
            "{:<10} {:>10} {:>12} {:>10.1}",
            class.name(),
            cases,
            divs.len(),
            t.elapsed().as_secs_f64()
        );
        counts.push((class.name().to_string(), Json::u64(divs.len() as u64)));
        all.extend(divs);
    }

    // Guarded lockstep: the same adversarial generator, but every arith
    // case runs through `checked_*` under each recovery policy and must
    // match the oracle with no collapse excuses.
    if guarded {
        for policy in [GuardPolicy::RescaleRetry, GuardPolicy::OracleFallback] {
            let t = Instant::now();
            let divs = run_guarded(cases, seed, policy);
            let label = match policy {
                GuardPolicy::RescaleRetry => "g-rescale",
                _ => "g-oracle",
            };
            println!(
                "{:<10} {:>10} {:>12} {:>10.1}",
                label,
                cases,
                divs.len(),
                t.elapsed().as_secs_f64()
            );
            counts.push((label.to_string(), Json::u64(divs.len() as u64)));
            all.extend(divs);
        }
    }

    // Adaptive lockstep: the same adversarial generator drives the
    // `Adaptive` ladder engine; escalated results must land on the MpFloat
    // oracle at the F64x2 representation bound, with no collapse excuses
    // short of genuine overflow.
    let mut adaptive_extra: Option<Json> = None;
    if adaptive {
        let t = Instant::now();
        let (divs, stats) = run_adaptive(cases, seed);
        println!(
            "{:<10} {:>10} {:>12} {:>10.1}   ({} escalations, {} oracle, rate {:.4})",
            "adaptive",
            cases,
            divs.len(),
            t.elapsed().as_secs_f64(),
            stats.escalations,
            stats.oracle_falls,
            stats.escalation_rate(),
        );
        counts.push(("adaptive".to_string(), Json::u64(divs.len() as u64)));
        adaptive_extra = Some(Json::Obj(vec![
            ("ops".to_string(), Json::u64(stats.ops)),
            ("escalations".to_string(), Json::u64(stats.escalations)),
            ("oracle_falls".to_string(), Json::u64(stats.oracle_falls)),
            ("degraded_ops".to_string(), Json::u64(stats.degraded_ops)),
            (
                "escalation_rate".to_string(),
                Json::Num(stats.escalation_rate()),
            ),
        ]));
        all.extend(divs);
    }

    if !all.is_empty() {
        println!("\n{} divergence(s); minimal reproducers:", all.len());
        for d in &all {
            println!(
                "  [{}] {} n={} operands={:?} text={:?} — {}",
                d.impl_name,
                d.case.op,
                d.case.n,
                d.case
                    .operands
                    .iter()
                    .map(|o| o
                        .iter()
                        .map(|v| format!("{:#018x}", v.to_bits()))
                        .collect::<Vec<_>>())
                    .collect::<Vec<_>>(),
                d.case.text,
                d.detail
            );
        }
        let path = format!("{corpus_dir}/divergences-{seed:016x}.json");
        if let Err(e) = std::fs::create_dir_all(&corpus_dir)
            .and_then(|()| std::fs::write(&path, corpus::render(&all)))
        {
            eprintln!("warning: could not write {path}: {e}");
        } else {
            println!("wrote {path} — triage, fix, then move entries into the committed corpus");
        }
    }

    let config = match (guarded, adaptive) {
        (true, true) => "sweep+guarded+adaptive",
        (true, false) => "sweep+guarded",
        (false, true) => "sweep+adaptive",
        (false, false) => "sweep",
    };
    let mut manifest = RunManifest::collect("conformance", config, 0, started)
        .with_extra("cases_per_class", Json::u64(cases as u64))
        .with_extra("seed", Json::u64(seed))
        .with_extra("divergences", Json::Obj(counts))
        .with_extra("registry", mf_telemetry::registry::snapshot_json());
    if let Some(extra) = adaptive_extra {
        manifest = manifest.with_extra("adaptive", extra);
    }
    cli::write_manifest(&manifest, &manifest_path);
    history::record_wall_ms("conformance", started.elapsed().as_secs_f64() * 1e3);
    history::append_run("conformance", &history::platform_label());
    cli::trace_finish(&trace);

    if !all.is_empty() {
        std::process::exit(1);
    }
    println!("\nclean: no divergences beyond the documented contract");
}
