//! Merge the telemetry run manifests under `results/` into a single
//! human-readable digest (and optionally a merged JSON document).
//!
//! Every bench binary (`tables`, `gpu_sim`, `verify_networks`) drops a
//! `results/manifest_<tool>.json` on exit; after an experiment sweep this
//! tool answers "what ran, where, how long, and what did the probes see"
//! in one place.
//!
//! Usage:
//!   cargo run --release -p mf-bench --bin report -- [--dir <results>] [--out <json>]

use mf_bench::{cli, RunManifest};
use mf_telemetry::json::Json;
use std::path::PathBuf;

const USAGE: &str = "[--dir <results>] [--out <json>] [--trace <json>]";

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut dir = String::from("results");
    let mut out_path: Option<String> = None;
    let mut trace_flag: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--dir" => {
                dir = cli::flag_value(&args, i, "report", USAGE).to_string();
                i += 2;
            }
            "--out" => {
                out_path = Some(cli::flag_value(&args, i, "report", USAGE).to_string());
                i += 2;
            }
            "--trace" => {
                trace_flag = Some(cli::flag_value(&args, i, "report", USAGE).to_string());
                i += 2;
            }
            other => cli::usage_error("report", USAGE, &format!("unknown argument '{other}'")),
        }
    }
    let trace = cli::trace_path(trace_flag);
    cli::trace_arm(&trace);

    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(e) => cli::usage_error(
            "report",
            USAGE,
            &format!("cannot read directory {dir}: {e}"),
        ),
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.extension().map(|x| x == "json").unwrap_or(false)
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .map(|n| n.starts_with("manifest_"))
                    .unwrap_or(false)
        })
        .collect();
    paths.sort();

    let mut manifests: Vec<(PathBuf, RunManifest)> = Vec::new();
    for p in paths {
        match RunManifest::read(&p) {
            Ok(m) => manifests.push((p, m)),
            Err(e) => eprintln!("report: skipping {}: {e}", p.display()),
        }
    }
    if manifests.is_empty() {
        cli::usage_error(
            "report",
            USAGE,
            &format!("no manifest_*.json files found under {dir}/ — run a bench binary first"),
        );
    }

    println!("Run digest: {} manifest(s) under {dir}/", manifests.len());
    for (path, m) in &manifests {
        println!("\n=== {} ({})", m.tool, path.display());
        println!(
            "  config={} threads={} wall={:.1}ms telemetry={}",
            m.config,
            m.threads,
            m.wall_ms,
            if m.telemetry_enabled { "on" } else { "off" }
        );
        println!(
            "  platform: {} {} ({}){}",
            m.platform.os,
            m.platform.arch,
            m.platform.rustc,
            if m.platform.label.is_empty() {
                String::new()
            } else {
                format!(" label={}", m.platform.label)
            }
        );
        if !m.platform.rustflags.is_empty() {
            println!("  rustflags: {}", m.platform.rustflags);
        }
        if !m.snapshot.sections.is_empty() {
            println!("  sections:");
            for s in &m.snapshot.sections {
                let quantiles = if s.sketch.count > 0 {
                    format!(
                        "  p50<={:.1}ms p90<={:.1}ms p99<={:.1}ms",
                        s.sketch.p50() as f64 / 1e6,
                        s.sketch.p90() as f64 / 1e6,
                        s.sketch.p99() as f64 / 1e6
                    )
                } else {
                    String::new()
                };
                println!(
                    "    {:<32} {:>10.1} ms ({} span{}){quantiles}",
                    s.name,
                    s.total_ns as f64 / 1e6,
                    s.count,
                    if s.count == 1 { "" } else { "s" }
                );
            }
        }
        if !m.snapshot.counters.is_empty() {
            println!("  counters:");
            for (name, v) in &m.snapshot.counters {
                println!("    {name:<32} {v:>12}");
            }
        }
        if !m.snapshot.gauges.is_empty() {
            println!("  gauges (levels at manifest time):");
            for (name, v) in &m.snapshot.gauges {
                println!("    {name:<32} {v:>12}");
            }
        }
        for h in &m.snapshot.histograms {
            if h.count == 0 {
                continue;
            }
            println!(
                "  histogram {:<24} n={} mean={:.2} p50<=2^{} p99<=2^{}",
                h.name,
                h.count,
                h.mean(),
                h.quantile_upper_bound(0.50),
                h.quantile_upper_bound(0.99),
            );
        }
        if !m.snapshot.events.is_empty() || m.snapshot.dropped_events > 0 {
            println!(
                "  events: {} retained ({} dropped)",
                m.snapshot.events.len(),
                m.snapshot.dropped_events
            );
        }
    }

    // Fleet view: merge every manifest's per-section latency sketches into
    // one distribution per section (sketches merge losslessly — see
    // mf_bench::digest), so cross-run p50/p90/p99 needs no eyeballing.
    let merged_sections = mf_bench::digest::merge_sections(
        &manifests.iter().map(|(_, m)| m.clone()).collect::<Vec<_>>(),
    );
    if !merged_sections.is_empty() {
        println!(
            "\nMerged section latency across {} manifest(s):",
            manifests.len()
        );
        print!("{}", mf_bench::digest::render(&merged_sections));
    }

    // Escalation view: any manifest whose counters carry the adaptive
    // engines' tallies gets a rate row (ladder climbs per op / per chunk).
    let mut adaptive_rows: Vec<(String, &str, u64, u64, u64)> = Vec::new();
    for (_, m) in &manifests {
        let get = |name: &str| {
            m.snapshot
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
        };
        for (layer, ops_key, esc_key, oracle_key) in [
            (
                "core",
                "core.adaptive.ops",
                "core.adaptive.escalations",
                "core.adaptive.oracle_falls",
            ),
            (
                "blas",
                "blas.adaptive.chunks",
                "blas.adaptive.escalations",
                "blas.adaptive.oracle_falls",
            ),
        ] {
            if let (Some(ops), Some(esc)) = (get(ops_key), get(esc_key)) {
                if ops > 0 {
                    adaptive_rows.push((
                        m.tool.clone(),
                        layer,
                        ops,
                        esc,
                        get(oracle_key).unwrap_or(0),
                    ));
                }
            }
        }
    }
    if !adaptive_rows.is_empty() {
        println!("\nAdaptive escalation rates:");
        println!(
            "  {:<16} {:<6} {:>12} {:>12} {:>10} {:>8}",
            "tool", "layer", "ops", "escalations", "oracle", "rate"
        );
        for (tool, layer, ops, esc, oracle) in adaptive_rows {
            println!(
                "  {tool:<16} {layer:<6} {ops:>12} {esc:>12} {oracle:>10} {:>8.4}",
                esc as f64 / ops as f64
            );
        }
    }

    // Dropped events mean the digest above is *incomplete*: the buffer
    // overflowed and later events were discarded. Make that loud.
    let total_dropped: u64 = manifests
        .iter()
        .map(|(_, m)| m.snapshot.dropped_events)
        .sum();
    if total_dropped > 0 {
        println!(
            "\nwarning: {total_dropped} event(s) dropped across {} manifest(s) — \
             event lists above are incomplete (MAX_EVENTS overflow)",
            manifests
                .iter()
                .filter(|(_, m)| m.snapshot.dropped_events > 0)
                .count()
        );
    }

    if let Some(p) = out_path {
        let merged = Json::Obj(vec![
            ("schema".into(), Json::str("mf-telemetry/report/v1")),
            (
                "manifests".into(),
                Json::Arr(manifests.iter().map(|(_, m)| m.to_json()).collect()),
            ),
        ]);
        match std::fs::write(&p, merged.render_pretty() + "\n") {
            Ok(()) => eprintln!("wrote {p}"),
            Err(e) => eprintln!("warning: could not write {p}: {e}"),
        }
    }

    cli::trace_finish(&trace);
}
