//! E5/E6 — verify the shipped FPANs against the paper's captioned error
//! bounds (Figures 2–7) and report the worst observed discarded error.
//!
//! This is the reproduction's stand-in for re-running the paper's SMT
//! proofs (DESIGN.md T1): large adversarial stochastic suites at f64 with
//! the exact `mf-mpsoft` oracle, plus dense small-precision sweeps at
//! p = 12 with an exact integer reference.
//!
//! Usage:
//!   cargo run --release -p mf-bench --bin verify_networks -- \
//!       [--trials N] [--manifest <json>]

use mf_bench::{cli, history, RunManifest};
use mf_fpan::networks;
use mf_fpan::verify::{self, Config};
use mf_telemetry::Section;
use std::time::Instant;

const USAGE: &str = "[--trials N] [--manifest <json>] [--trace <json>]";

static SEC_F64: Section = Section::new("verify_networks.f64_suites");
static SEC_SOFT: Section = Section::new("verify_networks.soft_sweep");
static SEC_EXHAUSTIVE: Section = Section::new("verify_networks.exhaustive");

fn main() {
    let started = Instant::now();
    let args: Vec<String> = std::env::args().collect();
    let mut trials = if mf_bench::quick_mode() {
        2_000
    } else {
        50_000
    };
    let mut manifest_path = String::from("results/manifest_verify_networks.json");
    let mut trace_flag: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--trials" => {
                let v = cli::flag_value(&args, i, "verify_networks", USAGE);
                trials = v.parse().unwrap_or_else(|_| {
                    cli::usage_error(
                        "verify_networks",
                        USAGE,
                        &format!("--trials expects a positive integer, got '{v}'"),
                    )
                });
                i += 2;
            }
            "--manifest" => {
                manifest_path = cli::flag_value(&args, i, "verify_networks", USAGE).to_string();
                i += 2;
            }
            "--trace" => {
                trace_flag = Some(cli::flag_value(&args, i, "verify_networks", USAGE).to_string());
                i += 2;
            }
            other => cli::usage_error(
                "verify_networks",
                USAGE,
                &format!("unknown argument '{other}'"),
            ),
        }
    }

    let trace = cli::trace_path(trace_flag);
    cli::trace_arm(&trace);
    cli::metrics_init();

    println!("Empirical FPAN verification ({trials} adversarial trials per network)");
    println!(
        "{:<10} {:>6} {:>6} {:>12} {:>14} {:>10}",
        "network", "size", "depth", "paper bound", "worst observed", "verdict"
    );
    println!("{}", "-".repeat(64));

    let mut failures = 0u64;

    let p = 53i32;
    let _g = SEC_F64.start();
    // (label, network, n, paper bound exponent, bound we assert)
    let add_cases = [
        ("add_2", networks::add_2(), 2usize, 2 * p - 1, 2 * p - 2),
        ("add_3", networks::add_3(), 3, 3 * p - 3, 3 * p - 3),
        ("add_4", networks::add_4(), 4, 4 * p - 4, 4 * p - 4),
    ];
    for (name, net, n, paper_q, assert_q) in add_cases {
        let rep = verify::verify_addition_f64(&net, n, Config::new(trials, assert_q, 0xA11CE));
        println!(
            "{:<10} {:>6} {:>6} {:>12} {:>14} {:>10}",
            name,
            net.size(),
            net.depth(),
            format!("2^-{paper_q}"),
            format!("2^{:.1}", rep.worst_error_exp),
            if rep.pass { "PASS" } else { "FAIL" }
        );
        if !rep.pass {
            failures += 1;
            println!("   first violation: {:?}", rep.first_violation);
        }
    }

    let mul_cases = [
        ("mul_2", networks::mul_2(), 2usize, 2 * p - 3, 2 * p - 3),
        ("mul_3", networks::mul_3(), 3, 3 * p - 3, 3 * p - 3),
        ("mul_4", networks::mul_4(), 4, 4 * p - 4, 4 * p - 4),
    ];
    for (name, net, n, paper_q, assert_q) in mul_cases {
        let rep = verify::verify_multiplication_f64(&net, n, Config::new(trials, assert_q, 0xB0B));
        println!(
            "{:<10} {:>6} {:>6} {:>12} {:>14} {:>10}",
            name,
            net.size(),
            net.depth(),
            format!("2^-{paper_q}"),
            format!("2^{:.1}", rep.worst_error_exp),
            if rep.pass { "PASS" } else { "FAIL" }
        );
        if !rep.pass {
            failures += 1;
            println!("   first violation: {:?}", rep.first_violation);
        }
    }
    drop(_g);

    // Small-precision sweep: the same network objects at p = 12.
    println!("\nSmall-precision sweep (p = 12, exact integer reference):");
    let p = 12i32;
    let soft_cases = [
        ("add_2", networks::add_2(), 2usize, 2 * p - 2),
        ("add_3", networks::add_3(), 3, 3 * p - 3),
        ("add_4", networks::add_4(), 4, 4 * p - 4),
    ];
    let _g = SEC_SOFT.start();
    for (name, net, n, q) in soft_cases {
        let rep = verify::verify_addition_soft::<12>(&net, n, Config::new(trials * 2, q, 0xC0DE));
        println!(
            "  {:<8} q=2^-{:<4} worst 2^{:>7.1}  {}",
            name,
            q,
            rep.worst_error_exp,
            if rep.pass { "PASS" } else { "FAIL" }
        );
        if !rep.pass {
            failures += 1;
        }
    }
    drop(_g);

    // Exhaustive small-space verification (complete enumeration, no
    // sampling): the strongest offline statement for E5.
    println!("\nExhaustive 2-term addition sweep at p = 4 (every input pair,");
    println!("head exponents in [-2, 2], tails to 2 binades below the boundary):");
    let rep = SEC_EXHAUSTIVE
        .time(|| verify::verify_addition_exhaustive::<4>(&networks::add_2(), 2 * 4 - 2, 2, 2));
    println!(
        "  {} input pairs, worst 2^{:.1}, {}",
        rep.trials,
        rep.worst_error_exp,
        if rep.pass {
            "PASS (exhaustive)"
        } else {
            "FAIL"
        }
    );
    if !rep.pass {
        failures += 1;
    }

    println!("\nGate-count comparison (paper's reported optima vs this reproduction):");
    println!("  paper: add (6,4) (14,8) (26,11); mul (3,3) (12,7) (27,10)");
    println!(
        "  ours : add ({},{}) ({},{}) ({},{}); mul ({},{}) ({},{}) ({},{})",
        networks::add_2().size(),
        networks::add_2().depth(),
        networks::add_3().size(),
        networks::add_3().depth(),
        networks::add_4().size(),
        networks::add_4().depth(),
        networks::mul_2().size(),
        networks::mul_2().depth(),
        networks::mul_3().size(),
        networks::mul_3().depth(),
        networks::mul_4().size(),
        networks::mul_4().depth(),
    );

    let manifest = RunManifest::collect("verify_networks", &format!("trials={trials}"), 1, started)
        .with_extra("failures", mf_telemetry::json::Json::u64(failures));
    cli::write_manifest(&manifest, &manifest_path);
    history::record_wall_ms("verify_networks", started.elapsed().as_secs_f64() * 1e3);
    history::append_run("verify_networks", &history::platform_label());
    cli::trace_finish(&trace);
    if failures > 0 {
        std::process::exit(1);
    }
}
