//! Fault-injection campaign: prove the guard detectors catch injected
//! corruption in the FPAN executors, and measure what the guards cost on
//! clean inputs.
//!
//! For every shipped network (add_2/3/4, mul_2/3/4) the tool injects
//! seeded single-bit flips on gate output wires plus exhaustive
//! gate-dropout, classifies each injection as masked (still within the
//! network's verified `2^-q` bound — benign by contract) or effective, and
//! reports tier-1 (guard invariant) and combined (tier 1 + re-execution)
//! detection rates over the effective ones. The run fails (exit 1) if the
//! combined rate drops below 99% or a tier-1 detector fires on a clean run.
//!
//! The tool also times `checked_mul`/`checked_div`/`checked_sqrt` under
//! `GuardPolicy::FastOnly` against the raw operators on clean inputs: the
//! guard-overhead ablation recorded in EXPERIMENTS.md (target ≤5%).
//!
//! With `--adaptive` the tool runs the closed-loop campaign instead:
//! every effective fault must trip a detector (tier 1 or the re-execution
//! cross-check), enter the recovery ladder (re-run, then exact-oracle
//! reconstruction), and end within the network's verified bound. Reported
//! per network as masked / missed / escalated / recovered / unrecovered;
//! the run fails below a 99% detect-and-recover rate or on any escalation
//! from a clean input.
//!
//! Usage:
//!   cargo run --release -p mf-bench --bin faultsim -- \
//!       [--adaptive] [--nets add2,add3,add4,mul2,mul3,mul4] [--cases N] \
//!       [--flips N] [--seed S] [--tol BITS] [--manifest <json>]

use mf_bench::{cli, history, sink, RunManifest};
use mf_core::{GuardPolicy, MultiFloat};
use mf_fpan::fault::{self, AdaptiveFaultStats, FaultStats};
use mf_fpan::verify::random_expansion;
use mf_fpan::{networks, Fpan};
use mf_telemetry::json::Json;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const USAGE: &str =
    "[--adaptive] [--nets <net,..>] [--cases N] [--flips N] [--seed S] [--tol BITS] [--manifest <json>] [--trace <json>]";

/// One campaign target: a network plus its verified error bound and a
/// case generator producing valid (in-contract) input vectors.
struct Target {
    name: &'static str,
    net: Fpan,
    q: i32,
}

fn target(name: &str) -> Option<Target> {
    let (net, q) = match name {
        "add2" => (networks::add_n(2), 104),
        "add3" => (networks::add_n(3), 156),
        "add4" => (networks::add_n(4), 208),
        "mul2" => (networks::mul_n(2), 103),
        "mul3" => (networks::mul_n(3), 156),
        "mul4" => (networks::mul_n(4), 208),
        _ => return None,
    };
    Some(Target {
        name: match name {
            "add2" => "add2",
            "add3" => "add3",
            "add4" => "add4",
            "mul2" => "mul2",
            "mul3" => "mul3",
            "mul4" => "mul4",
            _ => unreachable!(),
        },
        net,
        q,
    })
}

/// Valid input vector for a target: interleaved expansion pairs for the
/// addition networks, the pruned `TwoProd` expansion step for the
/// multiplication networks (mirrors the verifier's generators).
fn gen_case(name: &str, rng: &mut SmallRng) -> Vec<f64> {
    let n = name[3..].parse::<usize>().expect("net name ends in n");
    let ex = rng.gen_range(-40..40);
    let x = random_expansion::<f64>(rng, n, ex);
    let ey = rng.gen_range(-40..40);
    let y = random_expansion::<f64>(rng, n, ey);
    if name.starts_with("add") {
        let mut inputs = Vec::with_capacity(2 * n);
        for i in 0..n {
            inputs.push(x[i]);
            inputs.push(y[i]);
        }
        inputs
    } else {
        networks::mul_expansion_step(&x, &y)
    }
}

fn adaptive_stats_json(st: &AdaptiveFaultStats) -> Json {
    Json::Obj(vec![
        ("cases".into(), Json::u64(st.cases)),
        ("clean_escalations".into(), Json::u64(st.clean_escalations)),
        ("injected".into(), Json::u64(st.injected)),
        ("masked".into(), Json::u64(st.masked)),
        ("missed".into(), Json::u64(st.missed)),
        ("escalated".into(), Json::u64(st.escalated)),
        ("rerun_recovered".into(), Json::u64(st.rerun_recovered)),
        ("oracle_recovered".into(), Json::u64(st.oracle_recovered)),
        ("recovered".into(), Json::u64(st.recovered)),
        ("unrecovered".into(), Json::u64(st.unrecovered)),
        ("escalation_rate".into(), Json::Num(st.escalation_rate())),
        ("recovery_rate".into(), Json::Num(st.recovery_rate())),
    ])
}

/// The closed-loop campaign: detect → escalate → recover → verify, per
/// network; fails the run if the combined detect-and-recover rate over
/// effective faults drops below 99% or anything escalates on a clean run.
#[allow(clippy::too_many_arguments)]
fn run_adaptive(
    nets: &[String],
    cases: usize,
    flips: usize,
    seed: u64,
    tol_bits: u32,
    manifest_path: &str,
    quick: bool,
    started: Instant,
) {
    println!(
        "Adaptive fault campaign (detect-escalate-recover): {cases} cases/net, {flips} bit \
         flips + exhaustive dropout, seed {seed:#x}, tol 2^-{tol_bits}"
    );
    println!(
        "{:<6} {:>9} {:>8} {:>7} {:>10} {:>10} {:>12} {:>9}",
        "net", "injected", "masked", "missed", "escalated", "recovered", "unrecovered", "recovery"
    );
    println!("{}", "-".repeat(78));
    let mut per_net = Vec::new();
    let mut parts = Vec::new();
    for (ni, name) in nets.iter().enumerate() {
        let t = target(name).expect("validated above");
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(ni as u64));
        let inputs: Vec<Vec<f64>> = (0..cases).map(|_| gen_case(name, &mut rng)).collect();
        let mut faults = fault::sample_bit_flips(&t.net, flips, seed ^ (ni as u64) << 8);
        faults.extend(fault::all_dropouts(&t.net));
        let st = fault::adaptive_campaign(&t.net, &inputs, &faults, t.q, tol_bits);
        println!(
            "{:<6} {:>9} {:>8} {:>7} {:>10} {:>10} {:>12} {:>8.2}%",
            t.name,
            st.injected,
            st.masked,
            st.missed,
            st.escalated,
            st.recovered,
            st.unrecovered,
            100.0 * st.recovery_rate(),
        );
        per_net.push((t.name.to_string(), adaptive_stats_json(&st)));
        parts.push(st);
    }
    let total = fault::merge_adaptive_stats(&parts);
    println!("{}", "-".repeat(78));
    println!(
        "{:<6} {:>9} {:>8} {:>7} {:>10} {:>10} {:>12} {:>8.2}%",
        "total",
        total.injected,
        total.masked,
        total.missed,
        total.escalated,
        total.recovered,
        total.unrecovered,
        100.0 * total.recovery_rate(),
    );

    let manifest = RunManifest::collect(
        "faultsim-adaptive",
        if quick { "quick" } else { "full" },
        0,
        started,
    )
    .with_extra("cases_per_net", Json::u64(cases as u64))
    .with_extra("bit_flips_per_net", Json::u64(flips as u64))
    .with_extra("seed", Json::u64(seed))
    .with_extra("tol_bits", Json::u64(tol_bits as u64))
    .with_extra("per_net", Json::Obj(per_net))
    .with_extra("total", adaptive_stats_json(&total))
    .with_extra("registry", mf_telemetry::registry::snapshot_json());
    cli::write_manifest(&manifest, manifest_path);
    history::record_wall_ms("faultsim-adaptive", started.elapsed().as_secs_f64() * 1e3);
    history::append_run("faultsim-adaptive", &history::platform_label());

    let mut failed = false;
    if total.recovery_rate() < 0.99 {
        eprintln!(
            "FAIL: combined detect-and-recover rate {:.4} below the 0.99 floor",
            total.recovery_rate()
        );
        failed = true;
    }
    if total.clean_escalations > 0 {
        eprintln!(
            "FAIL: {} false escalation(s) on clean runs",
            total.clean_escalations
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "\nok: {:.2}% of effective faults detected and recovered \
         ({} via re-run, {} via exact oracle), no false escalations",
        100.0 * total.recovery_rate(),
        total.rerun_recovered,
        total.oracle_recovered,
    );
}

fn stats_json(st: &FaultStats) -> Json {
    Json::Obj(vec![
        ("cases".into(), Json::u64(st.cases)),
        ("clean_alarms".into(), Json::u64(st.clean_alarms)),
        ("injected".into(), Json::u64(st.injected)),
        ("masked".into(), Json::u64(st.masked)),
        ("effective".into(), Json::u64(st.effective)),
        ("tier1_detected".into(), Json::u64(st.t1_detected)),
        ("dmr_detected".into(), Json::u64(st.dmr_detected)),
        ("detected".into(), Json::u64(st.detected)),
        ("tier1_rate".into(), Json::Num(st.t1_rate())),
        ("detection_rate".into(), Json::Num(st.detection_rate())),
    ])
}

/// Throughput-style timing: sweep the operand array `sweeps` times,
/// folding every result head — and the guard alarm bit, so the detector
/// computation is live and can't be dead-code-eliminated — into
/// accumulators (one `sink` per sweep keeps the optimizer honest without
/// serializing individual ops). Returns ns/op. Throughput is the
/// representative regime — these kernels are branch-free precisely so they
/// pipeline across array elements — and it is where detector ALU work
/// overlaps the FP latency it guards.
fn sweep_ns_per_op<const N: usize, F: Fn(MultiFloat<f64, N>, MultiFloat<f64, N>) -> (f64, bool)>(
    pairs: &[(MultiFloat<f64, N>, MultiFloat<f64, N>)],
    sweeps: usize,
    f: F,
) -> f64 {
    let t = Instant::now();
    for _ in 0..sweeps {
        let mut acc = 0.0;
        let mut alarm = false;
        for &(a, b) in pairs {
            let (v, flag) = f(a, b);
            acc += v;
            alarm |= flag;
        }
        sink(acc + (alarm as u64) as f64);
    }
    t.elapsed().as_nanos() as f64 / (sweeps * pairs.len()) as f64
}

/// Guard overhead on clean inputs: raw op vs `checked_*` under FastOnly
/// (detectors run, recovery never taken). Each configuration is measured
/// `reps` times interleaved and the minimum kept — the run-to-run noise on
/// these short sweeps (±5%) is all upward, so min-of-reps is the standard
/// estimator for the true cost. Returns (raw_ns, checked_ns).
fn overhead<const N: usize>(
    op: &str,
    pairs: &[(MultiFloat<f64, N>, MultiFloat<f64, N>)],
    sweeps: usize,
    reps: usize,
) -> (f64, f64) {
    let (mut raw, mut checked) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let r = match op {
            "mul" => sweep_ns_per_op(pairs, sweeps, |a, b| (a.mul(b).hi(), false)),
            "div" => sweep_ns_per_op(pairs, sweeps, |a, b| (a.div(b).hi(), false)),
            "sqrt" => sweep_ns_per_op(pairs, sweeps, |a, _| (a.abs().sqrt().hi(), false)),
            _ => unreachable!(),
        };
        let c = match op {
            "mul" => sweep_ns_per_op(pairs, sweeps, |a, b| {
                let g = a.checked_mul(b, GuardPolicy::FastOnly);
                (g.value.hi(), g.flags.any())
            }),
            "div" => sweep_ns_per_op(pairs, sweeps, |a, b| {
                let g = a.checked_div(b, GuardPolicy::FastOnly);
                (g.value.hi(), g.flags.any())
            }),
            "sqrt" => sweep_ns_per_op(pairs, sweeps, |a, _| {
                let g = a.abs().checked_sqrt(GuardPolicy::FastOnly);
                (g.value.hi(), g.flags.any())
            }),
            _ => unreachable!(),
        };
        raw = raw.min(r);
        checked = checked.min(c);
    }
    (raw, checked)
}

/// Run the overhead ablation for one format, printing a table row per op
/// and returning manifest entries.
fn overhead_for_format<const N: usize>(seed: u64, sweeps: usize) -> Vec<(String, Json)> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x0ead ^ N as u64);
    let pairs: Vec<(MultiFloat<f64, N>, MultiFloat<f64, N>)> = (0..256)
        .map(|_| {
            let ea = rng.gen_range(-40..40);
            let x = random_expansion::<f64>(&mut rng, N, ea);
            let eb = rng.gen_range(-40..40);
            let y = random_expansion::<f64>(&mut rng, N, eb);
            let mut cx = [0.0; N];
            cx.copy_from_slice(&x);
            let mut cy = [0.0; N];
            cy.copy_from_slice(&y);
            (
                MultiFloat::<f64, N>::from_components_renorm(cx),
                MultiFloat::<f64, N>::from_components_renorm(cy),
            )
        })
        .collect();
    let mut entries = Vec::new();
    for op in ["mul", "div", "sqrt"] {
        // Warm up once so the first measured op doesn't pay page faults.
        let (_, _) = overhead(op, &pairs, sweeps / 10, 1);
        let (raw, checked) = overhead(op, &pairs, sweeps, 5);
        let pct = 100.0 * (checked - raw) / raw;
        println!("f64x{N} {op:<5} {raw:>10.2} {checked:>12.2} {pct:>9.2}%");
        entries.push((
            format!("f64x{N}_{op}"),
            Json::Obj(vec![
                ("raw_ns".into(), Json::Num(raw)),
                ("checked_ns".into(), Json::Num(checked)),
                ("overhead_pct".into(), Json::Num(pct)),
            ]),
        ));
    }
    entries
}

fn main() {
    let started = Instant::now();
    let args: Vec<String> = std::env::args().collect();
    let quick = mf_bench::quick_mode();
    let all_nets = ["add2", "add3", "add4", "mul2", "mul3", "mul4"];
    let mut nets: Vec<String> = all_nets.iter().map(|s| s.to_string()).collect();
    let mut cases: usize = if quick { 8 } else { 50 };
    let mut flips: usize = if quick { 128 } else { 1_500 };
    let mut seed: u64 = 0xFA07_5EED;
    let mut tol_bits: u32 = 40;
    let mut manifest_path = String::from("results/manifest_faultsim.json");
    let mut trace_flag: Option<String> = None;
    let mut adaptive = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--adaptive" => {
                adaptive = true;
                i += 1;
            }
            "--nets" => {
                let v = cli::flag_value(&args, i, "faultsim", USAGE);
                nets = v
                    .split(',')
                    .map(|s| {
                        let s = s.trim();
                        if !all_nets.contains(&s) {
                            cli::usage_error(
                                "faultsim",
                                USAGE,
                                &format!(
                                    "unknown network '{s}' (expected one of {})",
                                    all_nets.join(", ")
                                ),
                            )
                        }
                        s.to_string()
                    })
                    .collect();
                i += 2;
            }
            "--cases" => {
                let v = cli::flag_value(&args, i, "faultsim", USAGE);
                cases = v.parse().unwrap_or_else(|_| {
                    cli::usage_error(
                        "faultsim",
                        USAGE,
                        &format!("--cases expects a positive integer, got '{v}'"),
                    )
                });
                i += 2;
            }
            "--flips" => {
                let v = cli::flag_value(&args, i, "faultsim", USAGE);
                flips = v.parse().unwrap_or_else(|_| {
                    cli::usage_error(
                        "faultsim",
                        USAGE,
                        &format!("--flips expects a non-negative integer, got '{v}'"),
                    )
                });
                i += 2;
            }
            "--seed" => {
                let v = cli::flag_value(&args, i, "faultsim", USAGE);
                let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                    Some(hex) => u64::from_str_radix(&hex.replace('_', ""), 16).ok(),
                    None => v.parse().ok(),
                };
                seed = parsed.unwrap_or_else(|| {
                    cli::usage_error(
                        "faultsim",
                        USAGE,
                        &format!("--seed expects an integer (decimal or 0x hex), got '{v}'"),
                    )
                });
                i += 2;
            }
            "--tol" => {
                let v = cli::flag_value(&args, i, "faultsim", USAGE);
                tol_bits = v.parse().unwrap_or_else(|_| {
                    cli::usage_error(
                        "faultsim",
                        USAGE,
                        &format!("--tol expects a bit count, got '{v}'"),
                    )
                });
                i += 2;
            }
            "--manifest" => {
                manifest_path = cli::flag_value(&args, i, "faultsim", USAGE).to_string();
                i += 2;
            }
            "--trace" => {
                trace_flag = Some(cli::flag_value(&args, i, "faultsim", USAGE).to_string());
                i += 2;
            }
            other => cli::usage_error("faultsim", USAGE, &format!("unknown argument '{other}'")),
        }
    }
    let trace = cli::trace_path(trace_flag);
    cli::trace_arm(&trace);
    cli::metrics_init();

    if adaptive {
        if manifest_path == "results/manifest_faultsim.json" {
            manifest_path = String::from("results/manifest_faultsim_adaptive.json");
        }
        run_adaptive(
            &nets,
            cases,
            flips,
            seed,
            tol_bits,
            &manifest_path,
            quick,
            started,
        );
        cli::trace_finish(&trace);
        return;
    }

    println!(
        "Fault-injection campaign: {cases} cases/net, {flips} bit flips + exhaustive dropout, \
         seed {seed:#x}, tol 2^-{tol_bits}"
    );
    println!(
        "{:<6} {:>9} {:>8} {:>10} {:>9} {:>9} {:>7}",
        "net", "injected", "masked", "effective", "tier1", "combined", "alarms"
    );
    println!("{}", "-".repeat(64));

    let mut per_net = Vec::new();
    let mut parts = Vec::new();
    for (ni, name) in nets.iter().enumerate() {
        let t = target(name).expect("validated above");
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(ni as u64));
        let inputs: Vec<Vec<f64>> = (0..cases).map(|_| gen_case(name, &mut rng)).collect();
        let mut faults = fault::sample_bit_flips(&t.net, flips, seed ^ (ni as u64) << 8);
        faults.extend(fault::all_dropouts(&t.net));
        let st = fault::campaign(&t.net, &inputs, &faults, t.q, tol_bits);
        println!(
            "{:<6} {:>9} {:>8} {:>10} {:>8.2}% {:>8.2}% {:>7}",
            t.name,
            st.injected,
            st.masked,
            st.effective,
            100.0 * st.t1_rate(),
            100.0 * st.detection_rate(),
            st.clean_alarms
        );
        per_net.push((t.name.to_string(), stats_json(&st)));
        parts.push(st);
    }
    let total = fault::merge_stats(&parts);
    println!("{}", "-".repeat(64));
    println!(
        "{:<6} {:>9} {:>8} {:>10} {:>8.2}% {:>8.2}% {:>7}",
        "total",
        total.injected,
        total.masked,
        total.effective,
        100.0 * total.t1_rate(),
        100.0 * total.detection_rate(),
        total.clean_alarms
    );

    // Guard overhead on clean inputs: checked_* (FastOnly) vs raw ops,
    // across the three f64 formats. The fixed per-call detector cost
    // (a few ns of integer compares) amortizes against the kernel cost,
    // so the wide formats — where collapse recovery matters most — carry
    // the smallest relative overhead.
    let sweeps = if quick { 2_000 } else { 20_000 };
    let total_ops = sweeps * 256;
    println!("\nGuard overhead on clean inputs (FastOnly, {total_ops} ops/config):");
    println!(
        "{:<11} {:>10} {:>12} {:>10}",
        "format/op", "raw ns", "checked ns", "overhead"
    );
    let mut overheads = Vec::new();
    overheads.extend(overhead_for_format::<2>(seed, sweeps));
    overheads.extend(overhead_for_format::<3>(seed, sweeps));
    overheads.extend(overhead_for_format::<4>(seed, sweeps));

    let manifest =
        RunManifest::collect("faultsim", if quick { "quick" } else { "full" }, 0, started)
            .with_extra("cases_per_net", Json::u64(cases as u64))
            .with_extra("bit_flips_per_net", Json::u64(flips as u64))
            .with_extra("seed", Json::u64(seed))
            .with_extra("tol_bits", Json::u64(tol_bits as u64))
            .with_extra("per_net", Json::Obj(per_net))
            .with_extra("total", stats_json(&total))
            .with_extra("guard_overhead", Json::Obj(overheads))
            .with_extra("registry", mf_telemetry::registry::snapshot_json());
    cli::write_manifest(&manifest, &manifest_path);
    history::record_wall_ms("faultsim", started.elapsed().as_secs_f64() * 1e3);
    history::append_run("faultsim", &history::platform_label());
    cli::trace_finish(&trace);

    let mut failed = false;
    if total.detection_rate() < 0.99 {
        eprintln!(
            "FAIL: combined detection rate {:.4} below the 0.99 floor",
            total.detection_rate()
        );
        failed = true;
    }
    if total.clean_alarms > 0 {
        eprintln!(
            "FAIL: tier-1 detectors raised {} false alarm(s) on clean runs",
            total.clean_alarms
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!(
        "\nok: {:.2}% of effective faults detected (tier 1 alone: {:.2}%), no false alarms",
        100.0 * total.detection_rate(),
        100.0 * total.t1_rate()
    );
}
