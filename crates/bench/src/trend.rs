//! Benchmark trend analysis: robust change detection between a committed
//! baseline and fresh history records (tentpole b; the `trend` binary is a
//! thin wrapper over [`run`]).
//!
//! For every kernel the *current* records measured, the analyzer
//!
//! 1. pools the per-repeat samples from baseline and current records,
//! 2. bootstraps a confidence interval on the relative median change
//!    (resampling both pools, [`TrendConfig::boot_iters`] times),
//! 3. estimates a noise floor from repeated same-revision records (two
//!    runs of the same commit should agree; their spread is measurement
//!    noise, not signal), and
//! 4. flags a regression only when the whole confidence interval sits
//!    beyond `max(threshold, noise_mult * noise)` on the bad side.
//!
//! Change signs are normalized so **negative is always worse**: for
//! `gops` entries a drop in throughput, for `ms` entries a rise in wall
//! time.

use crate::history::{self, HistoryRecord};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::path::Path;

/// Analysis knobs.
#[derive(Debug, Clone, Copy)]
pub struct TrendConfig {
    /// Minimum relative change considered meaningful (default 5%).
    pub threshold: f64,
    /// Noise-floor multiplier: effective threshold is
    /// `max(threshold, noise_mult * noise)`.
    pub noise_mult: f64,
    /// Bootstrap resamples per kernel.
    pub boot_iters: usize,
    /// Bootstrap RNG seed (fixed: the gate must be reproducible).
    pub seed: u64,
    /// Minimum pooled samples per side for a verdict.
    pub min_samples: usize,
}

impl Default for TrendConfig {
    fn default() -> Self {
        TrendConfig {
            threshold: 0.05,
            noise_mult: 2.0,
            boot_iters: 300,
            seed: 0x7e4d_11e5,
            min_samples: 3,
        }
    }
}

/// Per-kernel verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Confidently worse than baseline beyond the effective threshold.
    Regression,
    /// Confidently better than baseline beyond the effective threshold.
    Improvement,
    /// Within noise / threshold.
    NoChange,
    /// Too few samples (or no baseline) to judge.
    Insufficient,
}

impl Verdict {
    fn label(self) -> &'static str {
        match self {
            Verdict::Regression => "REGRESSION",
            Verdict::Improvement => "improvement",
            Verdict::NoChange => "no change",
            Verdict::Insufficient => "insufficient",
        }
    }
}

/// One row of the trend table.
#[derive(Debug, Clone)]
pub struct KernelTrend {
    pub name: String,
    pub unit: String,
    pub baseline_median: f64,
    pub current_median: f64,
    /// Relative median change, sign-normalized so negative is worse.
    pub change: f64,
    /// 95% bootstrap confidence interval on `change`.
    pub ci_lo: f64,
    pub ci_hi: f64,
    /// Same-revision relative noise estimate.
    pub noise: f64,
    /// `max(threshold, noise_mult * noise)`.
    pub effective_threshold: f64,
    /// Pooled baseline samples for this kernel (0 = the baseline has never
    /// measured it — e.g. a newly added per-variant kernel name — which the
    /// gate reports as a data error with a refresh hint, not silence).
    pub baseline_samples: usize,
    pub verdict: Verdict,
}

/// All samples for `name` pooled across `records`, plus the unit.
fn pooled(records: &[HistoryRecord], name: &str) -> (Vec<f64>, Option<String>) {
    let mut samples = Vec::new();
    let mut unit = None;
    for r in records {
        for k in r.kernels.iter().filter(|k| k.name == name) {
            samples.extend(k.samples.iter().copied().filter(|s| s.is_finite()));
            unit.get_or_insert_with(|| k.unit.clone());
        }
    }
    (samples, unit)
}

/// Relative spread of same-revision medians: for every revision with two
/// or more records of `name`, `(max - min) / midpoint` of the per-record
/// medians; the noise estimate is the largest such spread, halved (the
/// +/- excursion around the midpoint).
fn noise_floor(records: &[HistoryRecord], name: &str) -> f64 {
    let mut by_rev: Vec<(&str, Vec<f64>)> = Vec::new();
    for r in records {
        for k in r.kernels.iter().filter(|k| k.name == name) {
            if !k.median.is_finite() || k.median == 0.0 {
                continue;
            }
            match by_rev.iter_mut().find(|(rev, _)| *rev == r.git_rev) {
                Some((_, v)) => v.push(k.median),
                None => by_rev.push((&r.git_rev, vec![k.median])),
            }
        }
    }
    let mut worst: f64 = 0.0;
    for (_, meds) in by_rev.iter().filter(|(_, m)| m.len() >= 2) {
        let max = meds.iter().cloned().fold(f64::MIN, f64::max);
        let min = meds.iter().cloned().fold(f64::MAX, f64::min);
        let mid = 0.5 * (max + min);
        if mid > 0.0 {
            worst = worst.max(0.5 * (max - min) / mid);
        }
    }
    worst
}

/// Bootstrap a 95% CI on the relative median change between two pools.
fn bootstrap_ci(base: &[f64], cur: &[f64], iters: usize, seed: u64) -> (f64, f64) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut deltas = Vec::with_capacity(iters);
    let mut rb = vec![0.0; base.len()];
    let mut rc = vec![0.0; cur.len()];
    for _ in 0..iters {
        for s in rb.iter_mut() {
            *s = base[rng.gen_range(0..base.len())];
        }
        for s in rc.iter_mut() {
            *s = cur[rng.gen_range(0..cur.len())];
        }
        let mb = history::median(&rb);
        if mb != 0.0 {
            deltas.push((history::median(&rc) - mb) / mb);
        }
    }
    if deltas.is_empty() {
        return (0.0, 0.0);
    }
    deltas.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pick = |q: f64| deltas[((deltas.len() - 1) as f64 * q).round() as usize];
    (pick(0.025), pick(0.975))
}

/// Analyze every kernel the current records measured against the baseline.
pub fn analyze(
    baseline: &[HistoryRecord],
    current: &[HistoryRecord],
    cfg: &TrendConfig,
) -> Vec<KernelTrend> {
    // Kernel names in first-seen order from the current run.
    let mut names: Vec<String> = Vec::new();
    for r in current {
        for k in &r.kernels {
            if !names.contains(&k.name) {
                names.push(k.name.clone());
            }
        }
    }

    let mut out = Vec::with_capacity(names.len());
    for name in names {
        let (cur, unit) = pooled(current, &name);
        let (base, _) = pooled(baseline, &name);
        let unit = unit.unwrap_or_else(|| "gops".into());
        let cur_med = history::median(&cur);
        let base_med = history::median(&base);

        // Noise pools same-rev repeats from both files: two clean runs of
        // this commit appended to fresh history raise the floor exactly
        // when they disagree.
        let mut all: Vec<HistoryRecord> = baseline.to_vec();
        all.extend(current.iter().cloned());
        let noise = noise_floor(&all, &name);
        let eff = cfg.threshold.max(cfg.noise_mult * noise);

        if base.len() < cfg.min_samples || cur.len() < cfg.min_samples || base_med == 0.0 {
            out.push(KernelTrend {
                name,
                unit,
                baseline_median: base_med,
                current_median: cur_med,
                change: 0.0,
                ci_lo: 0.0,
                ci_hi: 0.0,
                noise,
                effective_threshold: eff,
                baseline_samples: base.len(),
                verdict: Verdict::Insufficient,
            });
            continue;
        }

        // Sign normalization: for ms entries lower is better, so flip.
        let sign = if unit == "ms" { -1.0 } else { 1.0 };
        let change = sign * (cur_med - base_med) / base_med;
        let (lo_raw, hi_raw) = bootstrap_ci(&base, &cur, cfg.boot_iters, cfg.seed);
        let (ci_lo, ci_hi) = if sign < 0.0 {
            (-hi_raw, -lo_raw)
        } else {
            (lo_raw, hi_raw)
        };

        let verdict = if ci_hi < -eff {
            Verdict::Regression
        } else if ci_lo > eff {
            Verdict::Improvement
        } else {
            Verdict::NoChange
        };
        out.push(KernelTrend {
            name,
            unit,
            baseline_median: base_med,
            current_median: cur_med,
            change,
            ci_lo,
            ci_hi,
            noise,
            effective_threshold: eff,
            baseline_samples: base.len(),
            verdict,
        });
    }
    out
}

/// Render the per-kernel regression/improvement table.
pub fn render_table(trends: &[KernelTrend]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<34} {:>10} {:>10} {:>8} {:>17} {:>7}  {}\n",
        "Kernel", "baseline", "current", "change", "95% CI", "floor", "verdict"
    ));
    out.push_str(&"-".repeat(100));
    out.push('\n');
    for t in trends {
        out.push_str(&format!(
            "{:<34} {:>10.4} {:>10.4} {:>7.1}% [{:>6.1}%,{:>6.1}%] {:>6.1}%  {}\n",
            t.name,
            t.baseline_median,
            t.current_median,
            t.change * 100.0,
            t.ci_lo * 100.0,
            t.ci_hi * 100.0,
            t.effective_threshold * 100.0,
            t.verdict.label()
        ));
    }
    out
}

const USAGE: &str =
    "[--history <jsonl>] [--baseline <jsonl>] [--threshold <frac>] [--min-samples <n>]";

/// The `trend` binary's whole behavior, unit-testable: parse flags, load
/// the baseline and the fresh history, print the table, and return the
/// exit code (0 quiet, 1 regression, 2 usage/data error — including
/// current kernels the baseline has never measured, reported with the
/// `scripts/refresh_baseline.sh` command that fixes it).
pub fn run(args: &[String]) -> i32 {
    let mut cfg = TrendConfig::default();
    let mut history_path =
        history::default_path().unwrap_or_else(|| "results/history/bench_history.jsonl".into());
    let mut baseline_path = std::path::PathBuf::from("results/history/baseline.jsonl");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--history" => {
                history_path = crate::cli::flag_value(args, i, "trend", USAGE).into();
                i += 2;
            }
            "--baseline" => {
                baseline_path = crate::cli::flag_value(args, i, "trend", USAGE).into();
                i += 2;
            }
            "--threshold" => {
                let v = crate::cli::flag_value(args, i, "trend", USAGE);
                match v.parse::<f64>() {
                    Ok(t) if t > 0.0 && t.is_finite() => cfg.threshold = t,
                    _ => crate::cli::usage_error(
                        "trend",
                        USAGE,
                        &format!("--threshold must be a positive fraction, got '{v}'"),
                    ),
                }
                i += 2;
            }
            "--min-samples" => {
                let v = crate::cli::flag_value(args, i, "trend", USAGE);
                match v.parse::<usize>() {
                    Ok(n) if n >= 1 => cfg.min_samples = n,
                    _ => crate::cli::usage_error(
                        "trend",
                        USAGE,
                        &format!("--min-samples must be a positive integer, got '{v}'"),
                    ),
                }
                i += 2;
            }
            other => {
                crate::cli::usage_error("trend", USAGE, &format!("unknown argument '{other}'"))
            }
        }
    }
    run_on_files(&baseline_path, &history_path, &cfg)
}

/// [`run`] after flag parsing (the testable core).
pub fn run_on_files(baseline_path: &Path, history_path: &Path, cfg: &TrendConfig) -> i32 {
    let baseline = history::load(baseline_path);
    let current = history::load(history_path);
    if baseline.is_empty() {
        eprintln!(
            "trend: error: no baseline records in {} (commit one with a quick bench run)",
            baseline_path.display()
        );
        return 2;
    }
    if current.is_empty() {
        eprintln!(
            "trend: error: no fresh history records in {} (run a bench binary first)",
            history_path.display()
        );
        return 2;
    }
    let trends = analyze(&baseline, &current, cfg);
    println!(
        "Benchmark trend: {} fresh record(s) vs {} baseline record(s)",
        current.len(),
        baseline.len()
    );
    print!("{}", render_table(&trends));
    let regressions: Vec<&KernelTrend> = trends
        .iter()
        .filter(|t| t.verdict == Verdict::Regression)
        .collect();
    let improved = trends
        .iter()
        .filter(|t| t.verdict == Verdict::Improvement)
        .count();
    // Kernels the baseline has never measured (e.g. freshly added
    // per-variant names like AXPY/128/mf/pool) make the gate blind to
    // them; that is a data error (exit 2), not a quiet pass — but a
    // confident regression elsewhere still takes precedence below.
    let unbaselined: Vec<&KernelTrend> = trends
        .iter()
        .filter(|t| t.verdict == Verdict::Insufficient && t.baseline_samples == 0)
        .collect();
    if regressions.is_empty() {
        if !unbaselined.is_empty() {
            println!(
                "\n{} kernel(s) missing from the baseline:",
                unbaselined.len()
            );
            for t in &unbaselined {
                println!("  {}", t.name);
            }
            println!(
                "refresh it with:\n  scripts/refresh_baseline.sh {}",
                baseline_path.display()
            );
            return 2;
        }
        println!(
            "\nno regressions ({} kernels, {} improved)",
            trends.len(),
            improved
        );
        0
    } else {
        println!("\n{} kernel(s) REGRESSED:", regressions.len());
        for t in &regressions {
            println!(
                "  {}: {:+.1}% (CI [{:+.1}%, {:+.1}%], floor {:.1}%)",
                t.name,
                t.change * 100.0,
                t.ci_lo * 100.0,
                t.ci_hi * 100.0,
                t.effective_threshold * 100.0
            );
        }
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::KernelEntry;

    /// A record with one `gops` kernel whose samples cluster tightly
    /// around `med` (relative jitter ~0.5%).
    fn rec(rev: &str, name: &str, med: f64) -> HistoryRecord {
        let samples: Vec<f64> = (0..24)
            .map(|i| med * (1.0 + 0.005 * ((i % 5) as f64 - 2.0) / 2.0))
            .collect();
        HistoryRecord {
            tool: "tables".into(),
            git_rev: rev.into(),
            platform: "test".into(),
            features: vec![],
            quick: true,
            unix_secs: 1_700_000_000,
            kernels: vec![KernelEntry {
                name: name.into(),
                unit: "gops".into(),
                median: crate::history::median(&samples),
                p50_ns: 100,
                p90_ns: 120,
                p99_ns: 150,
                repeats: samples.len() as u64,
                samples,
            }],
        }
    }

    #[test]
    fn ten_percent_regression_is_flagged() {
        let baseline = vec![rec("aaaa", "AXPY/103", 2.0), rec("aaaa", "AXPY/103", 2.0)];
        let current = vec![rec("bbbb", "AXPY/103", 1.8)];
        let trends = analyze(&baseline, &current, &TrendConfig::default());
        assert_eq!(trends.len(), 1);
        assert_eq!(trends[0].verdict, Verdict::Regression, "{:?}", trends[0]);
        assert!(trends[0].change < -0.08 && trends[0].change > -0.12);
        assert!(trends[0].ci_hi < -0.05, "CI must clear the threshold");
    }

    #[test]
    fn clean_same_rev_runs_stay_quiet() {
        let baseline = vec![rec("aaaa", "DOT/208", 1.5)];
        // Two fresh runs of the same revision, unchanged performance.
        let current = vec![rec("aaaa", "DOT/208", 1.5), rec("aaaa", "DOT/208", 1.503)];
        let trends = analyze(&baseline, &current, &TrendConfig::default());
        assert_eq!(trends[0].verdict, Verdict::NoChange, "{:?}", trends[0]);
    }

    #[test]
    fn improvement_is_reported_not_fatal() {
        let baseline = vec![rec("aaaa", "GEMM/103", 1.0)];
        let current = vec![rec("cccc", "GEMM/103", 1.25)];
        let trends = analyze(&baseline, &current, &TrendConfig::default());
        assert_eq!(trends[0].verdict, Verdict::Improvement);
        assert!(trends[0].change > 0.2);
    }

    #[test]
    fn noise_floor_suppresses_marginal_regression() {
        // Same-rev baseline repeats disagree by ~16% -> the floor rises to
        // ~16% and a 6% drop must not gate.
        let baseline = vec![rec("aaaa", "GEMV/156", 2.0), rec("aaaa", "GEMV/156", 1.7)];
        let current = vec![rec("dddd", "GEMV/156", 1.74)];
        let cfg = TrendConfig::default();
        let trends = analyze(&baseline, &current, &cfg);
        assert!(trends[0].noise > 0.05, "noise {:?}", trends[0].noise);
        assert!(trends[0].effective_threshold > cfg.threshold);
        assert_ne!(trends[0].verdict, Verdict::Regression, "{:?}", trends[0]);
    }

    #[test]
    fn ms_entries_regress_on_increase() {
        let mk = |rev: &str, ms: f64| {
            let mut r = rec(rev, "faultsim/wall_ms", ms);
            r.kernels[0].unit = "ms".into();
            r
        };
        let baseline = vec![mk("aaaa", 100.0)];
        let slower = vec![mk("bbbb", 130.0)];
        let faster = vec![mk("bbbb", 80.0)];
        let cfg = TrendConfig::default();
        assert_eq!(
            analyze(&baseline, &slower, &cfg)[0].verdict,
            Verdict::Regression
        );
        assert_eq!(
            analyze(&baseline, &faster, &cfg)[0].verdict,
            Verdict::Improvement
        );
    }

    #[test]
    fn missing_baseline_kernel_is_insufficient() {
        let baseline = vec![rec("aaaa", "AXPY/103", 2.0)];
        let current = vec![rec("bbbb", "NEW/kernel", 1.0)];
        let trends = analyze(&baseline, &current, &TrendConfig::default());
        assert_eq!(trends[0].verdict, Verdict::Insufficient);
        // Distinguishable from "measured but too few samples": the gate
        // turns this into exit 2 with a refresh hint.
        assert_eq!(trends[0].baseline_samples, 0);
    }

    #[test]
    fn run_on_files_exit_codes() {
        let dir = std::env::temp_dir().join("mf_trend_test");
        std::fs::create_dir_all(&dir).unwrap();
        let base_p = dir.join("baseline.jsonl");
        let hist_p = dir.join("history.jsonl");
        let cfg = TrendConfig::default();

        let write = |p: &std::path::Path, recs: &[HistoryRecord]| {
            let mut text = String::new();
            for r in recs {
                text.push_str(&r.to_json().render());
                text.push('\n');
            }
            std::fs::write(p, text).unwrap();
        };

        // Synthetic 10% regression in the fresh history -> exit 1.
        write(&base_p, &[rec("aaaa", "AXPY/103", 2.0)]);
        write(&hist_p, &[rec("bbbb", "AXPY/103", 1.8)]);
        assert_eq!(run_on_files(&base_p, &hist_p, &cfg), 1);

        // Two clean same-rev runs -> exit 0.
        write(
            &hist_p,
            &[rec("aaaa", "AXPY/103", 2.0), rec("aaaa", "AXPY/103", 2.002)],
        );
        assert_eq!(run_on_files(&base_p, &hist_p, &cfg), 0);

        // A fresh kernel the baseline never measured -> exit 2 (stale
        // baseline is a data error, fixed by refreshing it).
        write(
            &hist_p,
            &[
                rec("aaaa", "AXPY/103", 2.0),
                rec("aaaa", "AXPY/128/mf/pool", 3.0),
            ],
        );
        assert_eq!(run_on_files(&base_p, &hist_p, &cfg), 2);

        // ...but a confident regression still wins over the stale entry.
        write(
            &hist_p,
            &[
                rec("bbbb", "AXPY/103", 1.8),
                rec("bbbb", "AXPY/128/mf/pool", 3.0),
            ],
        );
        assert_eq!(run_on_files(&base_p, &hist_p, &cfg), 1);

        // Missing files -> exit 2.
        assert_eq!(run_on_files(&dir.join("nope.jsonl"), &hist_p, &cfg), 2);
        assert_eq!(run_on_files(&base_p, &dir.join("nope.jsonl"), &cfg), 2);

        let _ = std::fs::remove_dir_all(&dir);
    }
}
