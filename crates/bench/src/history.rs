//! Append-only benchmark history (`results/history/bench_history.jsonl`).
//!
//! Every bench binary appends one JSONL record per run (schema
//! [`SCHEMA`]): git revision, platform label, feature flags, and a
//! per-kernel block with the median Gop/s, latency-sketch quantiles,
//! repeat count, and a downsampled per-repeat sample vector. The `trend`
//! binary reads these records — a committed baseline plus fresh appends —
//! and does robust change detection on the medians (see [`crate::trend`]).
//!
//! Knobs:
//!
//! * `MF_HISTORY` — history file path override; `off` disables appends.
//! * `MF_GIT_REV` — revision label override (CI detached heads, tests);
//!   otherwise `git rev-parse --short=12 HEAD`, falling back to `unknown`.
//! * `MF_PLATFORM_LABEL` — platform label recorded with each run.

use crate::GopsMeasurement;
use mf_telemetry::json::Json;
use mf_telemetry::SketchSnapshot;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Schema tag written into every record.
pub const SCHEMA: &str = "mf-bench/history/v1";

/// Samples retained per kernel entry in the history file.
pub const MAX_HISTORY_SAMPLES: usize = 256;

/// One kernel's measurements within a run.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelEntry {
    /// Stable kernel key, e.g. `AXPY/103/mf/soa` or `faultsim/wall_ms`.
    pub name: String,
    /// `gops` (higher is better) or `ms` (lower is better).
    pub unit: String,
    /// Median of `samples`.
    pub median: f64,
    /// Per-iteration latency-sketch quantiles (ns); zero for wall-clock
    /// entries, which have no per-iteration distribution.
    pub p50_ns: u64,
    pub p90_ns: u64,
    pub p99_ns: u64,
    /// Timed repeats behind this entry.
    pub repeats: u64,
    /// Per-repeat values in `unit`, downsampled to
    /// [`MAX_HISTORY_SAMPLES`]. The trend pipeline bootstraps on these.
    pub samples: Vec<f64>,
}

/// One appended run.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryRecord {
    pub tool: String,
    pub git_rev: String,
    pub platform: String,
    pub features: Vec<String>,
    pub quick: bool,
    pub unix_secs: u64,
    pub kernels: Vec<KernelEntry>,
}

/// Median of an unsorted sample set (0.0 when empty).
pub fn median(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut v = samples.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

static COLLECTOR: Mutex<Vec<KernelEntry>> = Mutex::new(Vec::new());

/// Append a kernel entry to the in-process collector.
pub fn record(entry: KernelEntry) {
    COLLECTOR
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(entry);
}

/// Record a throughput measurement under `name` (called by
/// [`crate::measure_kernel`]).
pub fn record_measurement(name: &str, m: &GopsMeasurement) {
    let samples: Vec<f64> = m
        .iter_ns
        .iter()
        .filter(|&&ns| ns > 0.0)
        .map(|&ns| m.ops_per_iter / ns) // ops per ns == Gop/s
        .collect();
    let sketch = SketchSnapshot::from_samples(m.iter_ns.iter().map(|&ns| ns as u64));
    record(KernelEntry {
        name: name.to_string(),
        unit: "gops".into(),
        median: median(&samples),
        p50_ns: sketch.p50(),
        p90_ns: sketch.p90(),
        p99_ns: sketch.p99(),
        repeats: m.iters,
        samples: if samples.len() > MAX_HISTORY_SAMPLES {
            let stride = samples.len().div_ceil(MAX_HISTORY_SAMPLES);
            samples.into_iter().step_by(stride).collect()
        } else {
            samples
        },
    });
}

/// Record a wall-clock entry (`<tool>/wall_ms`) for binaries that do not
/// measure kernel throughput — their runtime still trends.
pub fn record_wall_ms(tool: &str, ms: f64) {
    record(KernelEntry {
        name: format!("{tool}/wall_ms"),
        unit: "ms".into(),
        median: ms,
        p50_ns: 0,
        p90_ns: 0,
        p99_ns: 0,
        repeats: 1,
        samples: vec![ms],
    });
}

/// Snapshot (and clear) the collector — used by [`append_run`] and tests.
pub fn drain() -> Vec<KernelEntry> {
    std::mem::take(&mut *COLLECTOR.lock().unwrap_or_else(|e| e.into_inner()))
}

/// The current git revision label: `MF_GIT_REV` override, then
/// `git rev-parse --short=12 HEAD`, then `unknown`.
pub fn git_rev() -> String {
    if let Ok(v) = std::env::var("MF_GIT_REV") {
        let v = v.trim().to_string();
        if !v.is_empty() {
            return v;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// The history file path: `MF_HISTORY` override (`off` disables), default
/// `results/history/bench_history.jsonl`.
pub fn default_path() -> Option<PathBuf> {
    match std::env::var("MF_HISTORY") {
        Ok(v) if v.trim() == "off" => None,
        Ok(v) if !v.trim().is_empty() => Some(PathBuf::from(v.trim())),
        _ => Some(PathBuf::from("results/history/bench_history.jsonl")),
    }
}

/// The `MF_PLATFORM_LABEL` label (empty when unset) — the default
/// platform string for binaries without a richer label of their own.
pub fn platform_label() -> String {
    std::env::var("MF_PLATFORM_LABEL").unwrap_or_default()
}

/// Compiled feature flags relevant to performance comparisons.
pub fn active_features() -> Vec<String> {
    let mut f = Vec::new();
    if mf_telemetry::ENABLED {
        f.push("telemetry".to_string());
    }
    f
}

/// Build a record from the drained collector and append it to the history
/// file. I/O problems warn, never fail — history is advisory for the run
/// that produced it. Returns the record for callers that also want it in
/// a manifest (None when nothing was collected or appends are disabled).
pub fn append_run(tool: &str, platform: &str) -> Option<HistoryRecord> {
    let kernels = drain();
    if kernels.is_empty() {
        return None;
    }
    let rec = HistoryRecord {
        tool: tool.to_string(),
        git_rev: git_rev(),
        platform: platform.to_string(),
        features: active_features(),
        quick: crate::quick_mode(),
        unix_secs: std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        kernels,
    };
    if let Some(path) = default_path() {
        match append_record(&rec, &path) {
            Ok(()) => eprintln!("appended history record to {}", path.display()),
            Err(e) => eprintln!(
                "warning: could not append history record to {}: {e}",
                path.display()
            ),
        }
    }
    Some(rec)
}

/// Append one record as a JSONL line, creating parent directories.
pub fn append_record(rec: &HistoryRecord, path: &Path) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(f, "{}", rec.to_json().render())
}

/// Parse a JSONL history file; malformed or foreign-schema lines are
/// skipped (old records must never brick the trend gate).
pub fn parse_jsonl(text: &str) -> Vec<HistoryRecord> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(|l| Json::parse(l).ok())
        .filter_map(|j| HistoryRecord::from_json(&j))
        .collect()
}

/// Read and parse a history file (empty when missing/unreadable).
pub fn load(path: &Path) -> Vec<HistoryRecord> {
    std::fs::read_to_string(path)
        .map(|t| parse_jsonl(&t))
        .unwrap_or_default()
}

impl KernelEntry {
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::str(&self.name)),
            ("unit".into(), Json::str(&self.unit)),
            ("median".into(), Json::Num(self.median)),
            ("p50_ns".into(), Json::u64(self.p50_ns)),
            ("p90_ns".into(), Json::u64(self.p90_ns)),
            ("p99_ns".into(), Json::u64(self.p99_ns)),
            ("repeats".into(), Json::u64(self.repeats)),
            (
                "samples".into(),
                Json::Arr(self.samples.iter().map(|&s| Json::Num(s)).collect()),
            ),
        ])
    }

    pub fn from_json(j: &Json) -> Option<Self> {
        Some(KernelEntry {
            name: j.get("name")?.as_str()?.to_string(),
            unit: j.get("unit")?.as_str()?.to_string(),
            median: j.get("median")?.as_f64()?,
            p50_ns: j.get("p50_ns")?.as_u64()?,
            p90_ns: j.get("p90_ns")?.as_u64()?,
            p99_ns: j.get("p99_ns")?.as_u64()?,
            repeats: j.get("repeats")?.as_u64()?,
            samples: j
                .get("samples")?
                .as_arr()?
                .iter()
                .filter_map(|s| s.as_f64())
                .collect(),
        })
    }
}

impl HistoryRecord {
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::str(SCHEMA)),
            ("tool".into(), Json::str(&self.tool)),
            ("git_rev".into(), Json::str(&self.git_rev)),
            ("platform".into(), Json::str(&self.platform)),
            (
                "features".into(),
                Json::Arr(self.features.iter().map(Json::str).collect()),
            ),
            ("quick".into(), Json::Bool(self.quick)),
            ("unix_secs".into(), Json::u64(self.unix_secs)),
            (
                "kernels".into(),
                Json::Arr(self.kernels.iter().map(KernelEntry::to_json).collect()),
            ),
        ])
    }

    pub fn from_json(j: &Json) -> Option<Self> {
        if j.get("schema")?.as_str()? != SCHEMA {
            return None;
        }
        Some(HistoryRecord {
            tool: j.get("tool")?.as_str()?.to_string(),
            git_rev: j.get("git_rev")?.as_str()?.to_string(),
            platform: j.get("platform")?.as_str()?.to_string(),
            features: j
                .get("features")?
                .as_arr()?
                .iter()
                .filter_map(|f| f.as_str().map(str::to_string))
                .collect(),
            quick: j.get("quick")?.as_bool()?,
            unix_secs: j.get("unix_secs")?.as_u64()?,
            kernels: j
                .get("kernels")?
                .as_arr()?
                .iter()
                .filter_map(KernelEntry::from_json)
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record(rev: &str, med: f64) -> HistoryRecord {
        HistoryRecord {
            tool: "tables".into(),
            git_rev: rev.into(),
            platform: "test".into(),
            features: vec!["telemetry".into()],
            quick: true,
            unix_secs: 1_700_000_000,
            kernels: vec![KernelEntry {
                name: "AXPY/103/mf/aos".into(),
                unit: "gops".into(),
                median: med,
                p50_ns: 100,
                p90_ns: 200,
                p99_ns: 400,
                repeats: 64,
                samples: vec![med * 0.98, med, med * 1.02],
            }],
        }
    }

    #[test]
    fn record_round_trips_through_jsonl() {
        let a = sample_record("aaaa", 1.5);
        let b = sample_record("bbbb", 1.6);
        let text = format!("{}\n{}\n", a.to_json().render(), b.to_json().render());
        let back = parse_jsonl(&text);
        assert_eq!(back, vec![a, b]);
    }

    #[test]
    fn foreign_and_malformed_lines_are_skipped() {
        let good = sample_record("cccc", 2.0);
        let text = format!(
            "not json at all\n{{\"schema\":\"other/v9\"}}\n\n{}\n",
            good.to_json().render()
        );
        assert_eq!(parse_jsonl(&text), vec![good]);
    }

    #[test]
    fn median_handles_even_odd_empty() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[4.0, 1.0, 3.0]), 3.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
    }

    #[test]
    fn measurement_recording_produces_gops_samples() {
        let m = crate::GopsMeasurement {
            gops: 2.0,
            iters: 4,
            secs: 0.1,
            mean_iter_ns: 500.0,
            stddev_iter_ns: 10.0,
            rel_stddev: 0.02,
            ops_per_iter: 1000.0,
            iter_ns: vec![500.0, 490.0, 510.0, 500.0],
        };
        // Collector is shared process state: drain around the assertion.
        drain();
        record_measurement("TEST/kernel", &m);
        let got = drain();
        assert_eq!(got.len(), 1);
        let e = &got[0];
        assert_eq!(e.name, "TEST/kernel");
        assert_eq!(e.unit, "gops");
        assert_eq!(e.samples.len(), 4);
        // 1000 ops in 500 ns == 2 Gop/s.
        assert!((e.median - 2.0).abs() < 0.1, "median {}", e.median);
        assert!(e.p50_ns >= 256 && e.p50_ns <= 512, "p50 {}", e.p50_ns);
    }

    #[test]
    fn append_and_load_round_trip() {
        let dir = std::env::temp_dir().join("mf_history_test");
        let path = dir.join("h.jsonl");
        let _ = std::fs::remove_file(&path);
        let rec = sample_record("dddd", 1.0);
        append_record(&rec, &path).unwrap();
        append_record(&rec, &path).unwrap();
        assert_eq!(load(&path), vec![rec.clone(), rec]);
        let _ = std::fs::remove_file(&path);
    }
}
