//! `mf-bench`: the harness that regenerates every table and figure in the
//! paper's evaluation (DESIGN.md §2, experiments E1–E10).
//!
//! Binaries:
//!
//! * `tables` — Figures 9/10: the CPU performance tables (Gop/s per
//!   kernel × precision × library). Run with `--config wide` (native SIMD,
//!   E1) or under a narrowed `RUSTFLAGS` build for the M3 substitution
//!   (E2, see `scripts/run_experiments.sh`). Emits both human-readable
//!   tables and JSON for the `summary` binary.
//! * `summary` — Figure 8: ratio of MultiFloats' peak over the next-best
//!   library, computed from `tables` JSON output.
//! * `gpu_sim` — Figure 11: the `T = float` configuration (f32-base
//!   expansions, SoA lanes) standing in for the RDNA3 GPU (T3).
//! * `verify_networks` — Figures 2–7 captions: empirical error bounds and
//!   nonoverlap verification for the shipped networks (E5/E6).
//!
//! Criterion benches (`cargo bench -p mf-bench`): per-operation latency
//! (`ops`), kernel throughput (`blas`), and the design-choice ablations
//! (`ablation`).

use serde::{Deserialize, Serialize};
use std::hint::black_box;
use std::time::Instant;

pub mod workloads;

/// One measured cell of a performance table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cell {
    pub kernel: String,
    pub bits: u32,
    pub library: String,
    /// Billions of extended-precision operations per second
    /// (1 op = 1 mul + 1 add, the paper's convention).
    pub gops: f64,
}

/// A full run of the `tables` binary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TableRun {
    /// Free-form platform label (e.g. "x86-64 native SIMD (Zen5 substitute)").
    pub platform: String,
    pub cells: Vec<Cell>,
}

impl TableRun {
    pub fn lookup(&self, kernel: &str, bits: u32, library: &str) -> Option<f64> {
        self.cells
            .iter()
            .find(|c| c.kernel == kernel && c.bits == bits && c.library == library)
            .map(|c| c.gops)
    }

    pub fn libraries(&self) -> Vec<String> {
        let mut libs: Vec<String> = Vec::new();
        for c in &self.cells {
            if !libs.contains(&c.library) {
                libs.push(c.library.clone());
            }
        }
        libs
    }
}

/// Measure the throughput of `f`, which performs `ops_per_iter` extended
/// operations per call: returns Gop/s. Runs at least `min_secs` and at
/// least 3 iterations after one warmup call.
pub fn measure_gops<F: FnMut()>(ops_per_iter: f64, min_secs: f64, mut f: F) -> f64 {
    f(); // warmup
    let mut iters = 0u64;
    let start = Instant::now();
    loop {
        f();
        iters += 1;
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= min_secs && iters >= 3 {
            return ops_per_iter * iters as f64 / elapsed / 1e9;
        }
    }
}

/// Prevent the optimizer from discarding a computed value.
#[inline(always)]
pub fn sink<T>(v: T) -> T {
    black_box(v)
}

/// Render a paper-style table: rows = libraries, columns = precisions.
pub fn render_table(run: &TableRun, kernel: &str, bits: &[u32]) -> String {
    let mut out = String::new();
    let libs = run.libraries();
    out.push_str(&format!("{:<24}", "Library"));
    for &b in bits {
        out.push_str(&format!("{:>10}", format!("{b}-bit")));
    }
    out.push('\n');
    out.push_str(&"-".repeat(24 + 10 * bits.len()));
    out.push('\n');
    for lib in &libs {
        out.push_str(&format!("{lib:<24}"));
        for &b in bits {
            match run.lookup(kernel, b, lib) {
                Some(g) => out.push_str(&format!("{g:>10.3}")),
                None => out.push_str(&format!("{:>10}", "N/A")),
            }
        }
        out.push('\n');
    }
    out
}

/// Quick-mode scaling for CI/tests: shrink sizes and times via
/// `MF_BENCH_QUICK=1`.
pub fn quick_mode() -> bool {
    std::env::var("MF_BENCH_QUICK").map(|v| v == "1").unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_sane_rates() {
        // A no-op closure claiming 1000 ops per call: the rate must be
        // positive and finite.
        let mut x = 0u64;
        let g = measure_gops(1000.0, 0.01, || {
            x = sink(x.wrapping_add(1));
        });
        assert!(g.is_finite() && g > 0.0);
    }

    #[test]
    fn table_lookup_and_render() {
        let run = TableRun {
            platform: "test".into(),
            cells: vec![
                Cell { kernel: "AXPY".into(), bits: 103, library: "MultiFloats".into(), gops: 1.5 },
                Cell { kernel: "AXPY".into(), bits: 208, library: "MultiFloats".into(), gops: 0.5 },
                Cell { kernel: "AXPY".into(), bits: 103, library: "QD".into(), gops: 1.0 },
            ],
        };
        assert_eq!(run.lookup("AXPY", 103, "QD"), Some(1.0));
        assert_eq!(run.lookup("AXPY", 208, "QD"), None);
        let s = render_table(&run, "AXPY", &[103, 208]);
        assert!(s.contains("MultiFloats"));
        assert!(s.contains("N/A"));
        // Round-trips through JSON.
        let j = serde_json::to_string(&run).unwrap();
        let back: TableRun = serde_json::from_str(&j).unwrap();
        assert_eq!(back.cells.len(), 3);
    }
}
