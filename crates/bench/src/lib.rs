//! `mf-bench`: the harness that regenerates every table and figure in the
//! paper's evaluation (DESIGN.md §2, experiments E1–E10).
//!
//! Binaries:
//!
//! * `tables` — Figures 9/10: the CPU performance tables (Gop/s per
//!   kernel × precision × library). Run with `--config wide` (native SIMD,
//!   E1) or `--config narrow` under a narrowed `RUSTFLAGS` build for the M3
//!   substitution (E2, see `scripts/run_experiments.sh`). Emits both
//!   human-readable tables and JSON for the `summary` binary.
//! * `summary` — Figure 8: ratio of MultiFloats' peak over the next-best
//!   library, computed from `tables` JSON output.
//! * `gpu_sim` — Figure 11: the `T = float` configuration (f32-base
//!   expansions, SoA lanes) standing in for the RDNA3 GPU (T3).
//! * `verify_networks` — Figures 2–7 captions: empirical error bounds and
//!   nonoverlap verification for the shipped networks (E5/E6).
//! * `report` — merge the telemetry run manifests under `results/` into a
//!   single digest (see `mf_telemetry::manifest`).
//!
//! Every binary writes a `mf-telemetry` run manifest
//! (`results/manifest_<tool>.json` by default, `--manifest <path>` to
//! override): platform and RUSTFLAGS, wall time, per-section timings, and —
//! when built with `--features telemetry` — the full counter/histogram
//! snapshot from the instrumented crates.
//!
//! Criterion benches (`cargo bench -p mf-bench`): per-operation latency
//! (`ops`), kernel throughput (`blas`), the design-choice ablations and the
//! telemetry-overhead ablation (`ablation`).

use mf_telemetry::json::Json;
use std::hint::black_box;
use std::time::Instant;

pub mod digest;
pub mod history;
pub mod promtext;
pub mod trend;
pub mod workloads;

pub use mf_telemetry::manifest::RunManifest;

/// One measured cell of a performance table.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    pub kernel: String,
    pub bits: u32,
    pub library: String,
    /// Billions of extended-precision operations per second
    /// (1 op = 1 mul + 1 add, the paper's convention).
    pub gops: f64,
}

/// A full run of the `tables` binary.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRun {
    /// Free-form platform label (e.g. "x86-64 native SIMD (Zen5 substitute)").
    pub platform: String,
    pub cells: Vec<Cell>,
}

impl TableRun {
    pub fn lookup(&self, kernel: &str, bits: u32, library: &str) -> Option<f64> {
        self.cells
            .iter()
            .find(|c| c.kernel == kernel && c.bits == bits && c.library == library)
            .map(|c| c.gops)
    }

    pub fn libraries(&self) -> Vec<String> {
        let mut libs: Vec<String> = Vec::new();
        for c in &self.cells {
            if !libs.contains(&c.library) {
                libs.push(c.library.clone());
            }
        }
        libs
    }

    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("platform".into(), Json::str(&self.platform)),
            (
                "cells".into(),
                Json::Arr(
                    self.cells
                        .iter()
                        .map(|c| {
                            Json::Obj(vec![
                                ("kernel".into(), Json::str(&c.kernel)),
                                ("bits".into(), Json::u64(c.bits as u64)),
                                ("library".into(), Json::str(&c.library)),
                                ("gops".into(), Json::Num(c.gops)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    pub fn from_json(j: &Json) -> Option<Self> {
        Some(TableRun {
            platform: j.get("platform")?.as_str()?.to_string(),
            cells: j
                .get("cells")?
                .as_arr()?
                .iter()
                .filter_map(|c| {
                    Some(Cell {
                        kernel: c.get("kernel")?.as_str()?.to_string(),
                        bits: c.get("bits")?.as_u64()? as u32,
                        library: c.get("library")?.as_str()?.to_string(),
                        gops: c.get("gops")?.as_f64()?,
                    })
                })
                .collect(),
        })
    }
}

/// Full statistics from one throughput measurement (see
/// [`measure_gops_detailed`]).
#[derive(Debug, Clone, PartialEq)]
pub struct GopsMeasurement {
    /// Billions of extended operations per second.
    pub gops: f64,
    /// Timed iterations (after the warmup call).
    pub iters: u64,
    /// Total measured wall time in seconds.
    pub secs: f64,
    /// Mean per-iteration time in nanoseconds.
    pub mean_iter_ns: f64,
    /// Per-iteration standard deviation in nanoseconds.
    pub stddev_iter_ns: f64,
    /// `stddev / mean` — the run-to-run noise figure the manifest records.
    pub rel_stddev: f64,
    /// Extended operations per call of the measured closure.
    pub ops_per_iter: f64,
    /// Per-iteration wall times in ns, downsampled to at most
    /// [`MAX_ITER_SAMPLES`] evenly strided samples. The trend pipeline
    /// bootstraps confidence intervals from these (one Gop/s sample per
    /// iteration is `ops_per_iter / iter_ns`).
    pub iter_ns: Vec<f64>,
}

/// Cap on per-iteration samples retained in a [`GopsMeasurement`] (a
/// nanosecond-scale closure measured for 0.2 s would otherwise retain
/// millions).
pub const MAX_ITER_SAMPLES: usize = 512;

/// Evenly strided downsample to at most `cap` entries.
fn downsample(samples: &[f64], cap: usize) -> Vec<f64> {
    if samples.len() <= cap {
        return samples.to_vec();
    }
    let stride = samples.len().div_ceil(cap);
    samples.iter().step_by(stride).copied().collect()
}

/// Measure the throughput of `f`, which performs `ops_per_iter` extended
/// operations per call, capturing per-iteration variance. Runs at least
/// `min_secs` and at least 3 iterations after one warmup call. Emits a
/// `bench.measure` telemetry event with the iteration count and noise
/// figure (no-op unless the `telemetry` feature is on).
pub fn measure_gops_detailed<F: FnMut()>(
    ops_per_iter: f64,
    min_secs: f64,
    mut f: F,
) -> GopsMeasurement {
    // One span per measurement loop: on the trace timeline the benchmark
    // shows as back-to-back `bench.measure` blocks with the instrumented
    // kernels' spans nested inside.
    let _sp = mf_telemetry::trace::span("bench.measure", ops_per_iter as u64);
    f(); // warmup
    let mut iter_ns: Vec<f64> = Vec::with_capacity(64);
    let start = Instant::now();
    loop {
        let t0 = Instant::now();
        f();
        iter_ns.push(t0.elapsed().as_nanos() as f64);
        let elapsed = start.elapsed().as_secs_f64();
        if elapsed >= min_secs && iter_ns.len() >= 3 {
            let iters = iter_ns.len() as u64;
            let mean = iter_ns.iter().sum::<f64>() / iters as f64;
            let var = iter_ns
                .iter()
                .map(|&t| (t - mean) * (t - mean))
                .sum::<f64>()
                / iters as f64;
            let stddev = var.sqrt();
            let m = GopsMeasurement {
                gops: ops_per_iter * iters as f64 / elapsed / 1e9,
                iters,
                secs: elapsed,
                mean_iter_ns: mean,
                stddev_iter_ns: stddev,
                rel_stddev: if mean > 0.0 { stddev / mean } else { 0.0 },
                ops_per_iter,
                iter_ns: downsample(&iter_ns, MAX_ITER_SAMPLES),
            };
            mf_telemetry::event(
                "bench.measure",
                &[
                    ("gops", m.gops),
                    ("iters", m.iters as f64),
                    ("rel_stddev", m.rel_stddev),
                ],
            );
            return m;
        }
    }
}

/// Measure *and record*: like [`measure_gops`], but also appends a
/// per-kernel entry named `name` to the in-process history collector that
/// [`history::append_run`] flushes to `results/history/bench_history.jsonl`
/// at the end of the run.
pub fn measure_kernel<F: FnMut()>(name: &str, ops_per_iter: f64, min_secs: f64, f: F) -> f64 {
    let m = measure_gops_detailed(ops_per_iter, min_secs, f);
    history::record_measurement(name, &m);
    m.gops
}

/// Throughput-only form of [`measure_gops_detailed`].
pub fn measure_gops<F: FnMut()>(ops_per_iter: f64, min_secs: f64, f: F) -> f64 {
    measure_gops_detailed(ops_per_iter, min_secs, f).gops
}

/// Prevent the optimizer from discarding a computed value.
#[inline(always)]
pub fn sink<T>(v: T) -> T {
    black_box(v)
}

/// Render a paper-style table: rows = libraries, columns = precisions.
pub fn render_table(run: &TableRun, kernel: &str, bits: &[u32]) -> String {
    let mut out = String::new();
    let libs = run.libraries();
    out.push_str(&format!("{:<24}", "Library"));
    for &b in bits {
        out.push_str(&format!("{:>10}", format!("{b}-bit")));
    }
    out.push('\n');
    out.push_str(&"-".repeat(24 + 10 * bits.len()));
    out.push('\n');
    for lib in &libs {
        out.push_str(&format!("{lib:<24}"));
        for &b in bits {
            match run.lookup(kernel, b, lib) {
                Some(g) => out.push_str(&format!("{g:>10.3}")),
                None => out.push_str(&format!("{:>10}", "N/A")),
            }
        }
        out.push('\n');
    }
    out
}

/// Quick-mode scaling for CI/tests: shrink sizes and times via
/// `MF_BENCH_QUICK=1`.
pub fn quick_mode() -> bool {
    std::env::var("MF_BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Shared command-line plumbing for the bench binaries: flag typos and
/// missing values are *user errors* and exit with a usage message and
/// status 2 — never a panic/backtrace.
pub mod cli {
    /// Print `msg` plus the usage line to stderr and exit with status 2.
    pub fn usage_error(tool: &str, usage: &str, msg: &str) -> ! {
        eprintln!("{tool}: error: {msg}");
        eprintln!("usage: {tool} {usage}");
        std::process::exit(2);
    }

    /// The value following `args[i]` (a `--flag`), or a usage error if the
    /// flag is the last argument.
    pub fn flag_value<'a>(args: &'a [String], i: usize, tool: &str, usage: &str) -> &'a str {
        match args.get(i + 1) {
            Some(v) => v,
            None => usage_error(tool, usage, &format!("{} requires a value", args[i])),
        }
    }

    /// Write `manifest` to `path`, warning (not failing) on I/O errors —
    /// a read-only results directory must not kill a finished benchmark.
    pub fn write_manifest(manifest: &crate::RunManifest, path: &str) {
        match manifest.write(std::path::Path::new(path)) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("warning: could not write manifest {path}: {e}"),
        }
    }

    /// Resolve the trace output path: an explicit `--trace` value wins,
    /// otherwise the `MF_TRACE` environment variable (empty = unset).
    pub fn trace_path(flag: Option<String>) -> Option<String> {
        flag.or_else(|| std::env::var("MF_TRACE").ok().filter(|s| !s.is_empty()))
    }

    /// Arm span collection when tracing was requested. Warns (once, up
    /// front) when the binary was built without the `telemetry` feature —
    /// the run still completes, it just cannot produce a trace.
    pub fn trace_arm(path: &Option<String>) {
        if path.is_none() {
            return;
        }
        if !mf_telemetry::ENABLED {
            eprintln!("warning: tracing requested but this binary was built without --features telemetry; no trace will be written");
            return;
        }
        mf_telemetry::trace::arm();
    }

    /// Start the live metrics endpoint when `MF_METRICS_ADDR` is set (see
    /// `mf_telemetry::expose`). Call once, early, from every bench binary:
    /// a no-op without the env var or without the `telemetry` feature
    /// (with a one-line warning for the latter so a silent scrape failure
    /// is explainable).
    pub fn metrics_init() {
        let requested = std::env::var("MF_METRICS_ADDR")
            .map(|v| !v.is_empty())
            .unwrap_or(false);
        if requested && !mf_telemetry::ENABLED {
            eprintln!("warning: MF_METRICS_ADDR set but this binary was built without --features telemetry; no metrics endpoint will be served");
            return;
        }
        mf_telemetry::expose::serve_from_env();
    }

    /// Resolve the self-profile output path: an explicit `--profile` value
    /// wins, otherwise the `MF_PROFILE` environment variable.
    pub fn profile_path(flag: Option<String>) -> Option<String> {
        flag.or_else(|| std::env::var("MF_PROFILE").ok().filter(|s| !s.is_empty()))
    }

    /// Arm span collection when a self-profile was requested (the profiler
    /// folds the same ring buffers tracing fills).
    pub fn profile_arm(path: &Option<String>) {
        if path.is_none() {
            return;
        }
        if !mf_telemetry::ENABLED {
            eprintln!("warning: profiling requested but this binary was built without --features telemetry; no profile will be written");
            return;
        }
        mf_telemetry::trace::arm();
    }

    /// Export the span-derived self-profile as flamegraph folded stacks
    /// (`path;to;span <self_ns>` per line — feed to flamegraph.pl /
    /// inferno-flamegraph / speedscope).
    pub fn profile_finish(path: &Option<String>) {
        let Some(p) = path else { return };
        if !mf_telemetry::ENABLED {
            return; // profile_arm already warned
        }
        match mf_telemetry::profile::export_folded(std::path::Path::new(p)) {
            Ok(()) => eprintln!(
                "wrote {p} ({} span paths)",
                mf_telemetry::profile::aggregate().len()
            ),
            Err(e) => eprintln!("warning: could not write profile {p}: {e}"),
        }
    }

    /// Export the collected spans as Chrome `trace_event` JSON (load in
    /// Perfetto / `chrome://tracing`), reporting buffer overflow drops.
    pub fn trace_finish(path: &Option<String>) {
        let Some(p) = path else { return };
        if !mf_telemetry::ENABLED {
            return; // trace_arm already warned
        }
        match mf_telemetry::trace::export_chrome(std::path::Path::new(p)) {
            Ok(()) => {
                let dropped = mf_telemetry::trace::dropped_spans();
                if dropped > 0 {
                    eprintln!(
                        "wrote {p} ({} events, {dropped} spans dropped on full buffers)",
                        mf_telemetry::trace::recorded_events()
                    );
                } else {
                    eprintln!(
                        "wrote {p} ({} events)",
                        mf_telemetry::trace::recorded_events()
                    );
                }
            }
            Err(e) => eprintln!("warning: could not write trace {p}: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_sane_rates() {
        // A no-op closure claiming 1000 ops per call: the rate must be
        // positive and finite, and the statistics self-consistent.
        let mut x = 0u64;
        let m = measure_gops_detailed(1000.0, 0.01, || {
            x = sink(x.wrapping_add(1));
        });
        assert!(m.gops.is_finite() && m.gops > 0.0);
        assert!(m.iters >= 3);
        assert!(m.secs >= 0.01);
        assert!(m.mean_iter_ns >= 0.0 && m.stddev_iter_ns >= 0.0);
        assert!(m.rel_stddev >= 0.0);
    }

    #[test]
    fn table_lookup_and_render() {
        let run = TableRun {
            platform: "test".into(),
            cells: vec![
                Cell {
                    kernel: "AXPY".into(),
                    bits: 103,
                    library: "MultiFloats".into(),
                    gops: 1.5,
                },
                Cell {
                    kernel: "AXPY".into(),
                    bits: 208,
                    library: "MultiFloats".into(),
                    gops: 0.5,
                },
                Cell {
                    kernel: "AXPY".into(),
                    bits: 103,
                    library: "QD".into(),
                    gops: 1.0,
                },
            ],
        };
        assert_eq!(run.lookup("AXPY", 103, "QD"), Some(1.0));
        assert_eq!(run.lookup("AXPY", 208, "QD"), None);
        let s = render_table(&run, "AXPY", &[103, 208]);
        assert!(s.contains("MultiFloats"));
        assert!(s.contains("N/A"));
        // Round-trips through JSON (both renderings).
        for text in [run.to_json().render(), run.to_json().render_pretty()] {
            let back = TableRun::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, run);
        }
    }
}
