//! Cross-manifest section digest: merge the per-section latency sketches of
//! many run manifests into one distribution per section name.
//!
//! Each manifest already carries per-call latency sketches (count/min/max +
//! log2 buckets) per instrumented section; the sketches are mergeable by
//! construction (buckets add, min/max combine — see
//! `mf_telemetry::SketchSnapshot::merge`), so the `report` binary can show
//! fleet-wide p50/p90/p99 per section across everything under `results/`
//! instead of making the reader eyeball one manifest at a time.

use mf_telemetry::manifest::RunManifest;
use mf_telemetry::SketchSnapshot;

/// One section's merged statistics across a set of manifests.
#[derive(Debug, Clone, PartialEq)]
pub struct SectionDigest {
    pub name: String,
    /// Manifests that contained this section.
    pub runs: usize,
    /// Summed cumulative wall time across runs.
    pub total_ns: u64,
    /// Merged per-call latency sketch (empty if no run carried sketch data,
    /// e.g. pre-sketch manifests).
    pub sketch: SketchSnapshot,
}

/// Merge every section across `manifests`, sorted by name.
pub fn merge_sections(manifests: &[RunManifest]) -> Vec<SectionDigest> {
    let mut merged: Vec<SectionDigest> = Vec::new();
    for m in manifests {
        for s in &m.snapshot.sections {
            let entry = match merged.iter_mut().find(|d| d.name == s.name) {
                Some(d) => d,
                None => {
                    merged.push(SectionDigest {
                        name: s.name.clone(),
                        runs: 0,
                        total_ns: 0,
                        sketch: SketchSnapshot::default(),
                    });
                    merged.last_mut().unwrap()
                }
            };
            entry.runs += 1;
            entry.total_ns = entry.total_ns.saturating_add(s.total_ns);
            entry.sketch.merge(&s.sketch);
        }
    }
    merged.sort_by(|a, b| a.name.cmp(&b.name));
    merged
}

/// Render the merged digest as an aligned table (ms-scale quantiles).
pub fn render(digests: &[SectionDigest]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<34} {:>5} {:>10} {:>12} {:>10} {:>10} {:>10}\n",
        "section", "runs", "calls", "total_ms", "p50_ms", "p90_ms", "p99_ms"
    ));
    for d in digests {
        let ms = |ns: u64| ns as f64 / 1e6;
        if d.sketch.count == 0 {
            out.push_str(&format!(
                "{:<34} {:>5} {:>10} {:>12.3} {:>10} {:>10} {:>10}\n",
                d.name,
                d.runs,
                "-",
                ms(d.total_ns),
                "-",
                "-",
                "-"
            ));
        } else {
            out.push_str(&format!(
                "{:<34} {:>5} {:>10} {:>12.3} {:>10.4} {:>10.4} {:>10.4}\n",
                d.name,
                d.runs,
                d.sketch.count,
                ms(d.total_ns),
                ms(d.sketch.p50()),
                ms(d.sketch.p90()),
                ms(d.sketch.p99()),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_telemetry::json::Json;
    use mf_telemetry::manifest::Platform;
    use mf_telemetry::{SectionSnapshot, Snapshot};

    /// A fixture manifest with the given per-section samples, exercised
    /// through the real JSON round trip so the test covers what `report`
    /// actually reads off disk.
    fn fixture(sections: &[(&str, &[u64])]) -> RunManifest {
        let m = RunManifest {
            tool: "fixture".into(),
            config: "default".into(),
            telemetry_enabled: true,
            platform: Platform::detect(),
            threads: 1,
            unix_time: 0,
            wall_ms: 1.0,
            snapshot: Snapshot {
                sections: sections
                    .iter()
                    .map(|(name, samples)| SectionSnapshot {
                        name: (*name).into(),
                        total_ns: samples.iter().sum(),
                        count: samples.len() as u64,
                        sketch: SketchSnapshot::from_samples(samples.iter().copied()),
                    })
                    .collect(),
                ..Snapshot::default()
            },
            extra: Vec::new(),
        };
        let text = m.to_json().render_pretty();
        RunManifest::from_json(&Json::parse(&text).unwrap()).unwrap()
    }

    /// Satellite: merged per-section p50/p90/p99 across fixture manifests.
    #[test]
    fn merges_sections_across_manifests() {
        let a = fixture(&[
            ("bench.axpy", &[1_000, 2_000, 4_000]),
            ("pool.queue_wait", &[100]),
        ]);
        let b = fixture(&[("bench.axpy", &[1_000_000])]);
        let merged = merge_sections(&[a, b]);
        assert_eq!(merged.len(), 2);

        let axpy = &merged[0];
        assert_eq!(axpy.name, "bench.axpy");
        assert_eq!(axpy.runs, 2);
        assert_eq!(axpy.sketch.count, 4);
        assert_eq!(axpy.total_ns, 7_000 + 1_000_000);
        // Identical to sketching the union of samples directly.
        let direct = SketchSnapshot::from_samples([1_000u64, 2_000, 4_000, 1_000_000]);
        assert_eq!(axpy.sketch, direct);
        assert_eq!(axpy.sketch.p50(), direct.p50());
        assert_eq!(axpy.sketch.p99(), direct.p99());
        // p99 walks into the top sample's bucket, tightened by exact max.
        assert_eq!(axpy.sketch.p99(), 1_000_000);

        let qw = &merged[1];
        assert_eq!((qw.runs, qw.sketch.count), (1, 1));

        let table = render(&merged);
        assert!(table.contains("bench.axpy"));
        assert!(table.contains("p99_ms"));
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 3, "header + one row per section");
    }

    #[test]
    fn sections_without_sketches_render_dashes() {
        let mut m = fixture(&[("old.section", &[5_000])]);
        // Simulate a pre-sketch manifest: count present, sketch empty.
        m.snapshot.sections[0].sketch = SketchSnapshot::default();
        let merged = merge_sections(&[m]);
        assert_eq!(merged[0].sketch.count, 0);
        let table = render(&merged);
        assert!(table.contains("old.section"));
        assert!(table.lines().nth(1).unwrap().contains('-'));
    }
}
