//! Minimal parser for the Prometheus text exposition format v0.0.4 — the
//! consumer half of `mf_telemetry::expose`, used by the `mfstat` live view.
//!
//! Scope: exactly what our own exporter emits (and what real exporters
//! commonly produce) — `# TYPE` comments, samples of the form
//! `name{label="value",...} value`, label values with `\\`, `\"`, and `\n`
//! escapes. Unparseable lines are skipped, not fatal: a live view must
//! survive a half-written scrape.

use std::collections::BTreeMap;

/// One sample line: metric name, labels, value.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    pub name: String,
    pub labels: Vec<(String, String)>,
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A parsed exposition document: samples in input order plus the declared
/// `# TYPE` of each metric family.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Exposition {
    pub samples: Vec<Sample>,
    pub types: BTreeMap<String, String>,
}

impl Exposition {
    /// First sample with this exact metric name (ignoring labels).
    pub fn get(&self, name: &str) -> Option<&Sample> {
        self.samples.iter().find(|s| s.name == name)
    }

    /// Value of the first sample with this exact metric name.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.get(name).map(|s| s.value)
    }

    /// All samples of one metric family (exact name match).
    pub fn family(&self, name: &str) -> Vec<&Sample> {
        self.samples.iter().filter(|s| s.name == name).collect()
    }
}

/// Unescape a label value: `\\` → `\`, `\"` → `"`, `\n` → newline.
fn unescape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('"') => out.push('"'),
            Some('n') => out.push('\n'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

/// Parse the `{label="value",...}` block starting after `{`. Returns the
/// labels and the byte offset one past the closing `}`, or `None` on a
/// malformed block.
fn parse_labels(s: &str) -> Option<(Vec<(String, String)>, usize)> {
    let bytes = s.as_bytes();
    let mut labels = Vec::new();
    let mut i = 0;
    loop {
        while i < bytes.len() && (bytes[i] == b',' || bytes[i] == b' ') {
            i += 1;
        }
        if i < bytes.len() && bytes[i] == b'}' {
            return Some((labels, i + 1));
        }
        let eq = s[i..].find('=')? + i;
        let key = s[i..eq].trim().to_string();
        if bytes.get(eq + 1) != Some(&b'"') {
            return None;
        }
        // Scan the quoted value, honoring backslash escapes.
        let mut j = eq + 2;
        let mut raw = String::new();
        loop {
            let c = *bytes.get(j)?;
            if c == b'\\' {
                raw.push('\\');
                raw.push(*bytes.get(j + 1)? as char);
                j += 2;
            } else if c == b'"' {
                j += 1;
                break;
            } else {
                // The exposition format never puts raw multi-byte UTF-8 in
                // an escape position, so byte-wise scanning is safe; slice
                // the original str to keep non-ASCII values intact.
                let start = j;
                while j < bytes.len() && bytes[j] != b'"' && bytes[j] != b'\\' {
                    j += 1;
                }
                raw.push_str(&s[start..j]);
                continue;
            }
        }
        labels.push((key, unescape(&raw)));
        i = j;
    }
}

/// Parse a full exposition document. Malformed lines are skipped.
pub fn parse(text: &str) -> Exposition {
    let mut doc = Exposition::default();
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            if let (Some(name), Some(ty)) = (parts.next(), parts.next()) {
                doc.types.insert(name.to_string(), ty.to_string());
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let Some(sample) = parse_sample(line) else {
            continue;
        };
        doc.samples.push(sample);
    }
    doc
}

fn parse_sample(line: &str) -> Option<Sample> {
    let (name, labels, rest) = match line.find('{') {
        Some(brace) => {
            let (labels, used) = parse_labels(&line[brace + 1..])?;
            (line[..brace].to_string(), labels, &line[brace + 1 + used..])
        }
        None => {
            let sp = line.find(' ')?;
            (line[..sp].to_string(), Vec::new(), &line[sp..])
        }
    };
    if name.is_empty() {
        return None;
    }
    // `rest` is ` value [timestamp]`; we take the first token as the value.
    let mut parts = rest.split_whitespace();
    let value = match parts.next()? {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v.parse().ok()?,
    };
    Some(Sample {
        name,
        labels,
        value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_and_labeled_samples() {
        let doc = parse(
            "# HELP mf_pool_jobs_total Telemetry counter pool.jobs\n\
             # TYPE mf_pool_jobs_total counter\n\
             mf_pool_jobs_total 42\n\
             # TYPE mf_section_seconds summary\n\
             mf_section_seconds{section=\"pool.queue_wait\",quantile=\"0.5\"} 1.5e-06\n\
             mf_section_seconds_count{section=\"pool.queue_wait\"} 3\n\
             mf_values_bucket{name=\"h\",le=\"+Inf\"} 7\n",
        );
        assert_eq!(doc.value("mf_pool_jobs_total"), Some(42.0));
        assert_eq!(doc.types.get("mf_pool_jobs_total").unwrap(), "counter");
        let q = doc.get("mf_section_seconds").unwrap();
        assert_eq!(q.label("section"), Some("pool.queue_wait"));
        assert_eq!(q.label("quantile"), Some("0.5"));
        assert!((q.value - 1.5e-6).abs() < 1e-15);
        let inf = doc.get("mf_values_bucket").unwrap();
        assert_eq!(inf.label("le"), Some("+Inf"));
        assert_eq!(inf.value, 7.0);
    }

    #[test]
    fn unescapes_label_values() {
        let doc = parse(r#"m{v="a\\b\"c\nd"} 1"#);
        assert_eq!(doc.get("m").unwrap().label("v"), Some("a\\b\"c\nd"));
    }

    #[test]
    fn round_trips_exporter_output() {
        use mf_telemetry::{SectionSnapshot, SketchSnapshot, Snapshot};
        let snap = Snapshot {
            counters: vec![("pool.jobs".into(), 9)],
            gauges: vec![("pool.queue_depth".into(), -1)],
            sections: vec![SectionSnapshot {
                name: "we\\ird\"name\nx".into(),
                total_ns: 100,
                count: 1,
                sketch: SketchSnapshot::from_samples([100u64]),
            }],
            ..Snapshot::default()
        };
        let doc = parse(&mf_telemetry::expose::render(&snap));
        assert_eq!(doc.value("mf_pool_jobs_total"), Some(9.0));
        assert_eq!(doc.value("mf_pool_queue_depth"), Some(-1.0));
        // The escaped label value parses back to the original name.
        let s = doc.get("mf_section_seconds_count").unwrap();
        assert_eq!(s.label("section"), Some("we\\ird\"name\nx"));
        assert_eq!(s.value, 1.0);
    }

    #[test]
    fn malformed_lines_are_skipped() {
        let doc = parse("nonsense\nm 1\nbroken{x=\"unterminated 2\nm2{} 3\n");
        assert_eq!(doc.value("m"), Some(1.0));
        assert_eq!(doc.value("m2"), Some(3.0));
        assert!(doc.get("broken").is_none());
        assert_eq!(doc.samples.len(), 2);
    }
}
