//! Workload generators for the benchmark harness.
//!
//! Sizes follow the paper's methodology: "the largest matrix and vector
//! sizes that each library can fit into L3 cache", eliminating memory
//! bandwidth as a variable. On this container (Xeon, single core) the
//! defaults keep every operand set under ~2 MB.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Problem sizes for one configuration.
#[derive(Debug, Clone, Copy)]
pub struct Sizes {
    /// Vector length for AXPY / DOT.
    pub vec_len: usize,
    /// Square dimension for GEMV.
    pub gemv_n: usize,
    /// Square dimension for GEMM.
    pub gemm_n: usize,
    /// Minimum seconds per measurement.
    pub min_secs: f64,
}

impl Sizes {
    pub fn default_sizes() -> Self {
        Sizes {
            vec_len: 8192,
            gemv_n: 256,
            gemm_n: 96,
            min_secs: 0.25,
        }
    }

    /// Reduced sizes for smoke tests (`MF_BENCH_QUICK=1`).
    pub fn quick() -> Self {
        Sizes {
            vec_len: 512,
            gemv_n: 48,
            gemm_n: 24,
            min_secs: 0.02,
        }
    }

    pub fn from_env() -> Self {
        if crate::quick_mode() {
            Self::quick()
        } else {
            Self::default_sizes()
        }
    }

    /// Extended operations per kernel invocation (paper convention:
    /// AXPY/DOT = n, GEMV = n², GEMM = n³).
    pub fn ops(&self, kernel: &str) -> f64 {
        match kernel {
            "AXPY" | "DOT" => self.vec_len as f64,
            "GEMV" => (self.gemv_n * self.gemv_n) as f64,
            "GEMM" => (self.gemm_n * self.gemm_n * self.gemm_n) as f64,
            _ => panic!("unknown kernel {kernel}"),
        }
    }
}

/// Deterministic f64 values in (-1, 1), the element distribution used for
/// all kernels (well-conditioned: performance tables should not be polluted
/// by denormal or overflow handling).
pub fn rand_f64s(seed: u64, n: usize) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ops_counts_follow_paper_convention() {
        let s = Sizes {
            vec_len: 100,
            gemv_n: 10,
            gemm_n: 5,
            min_secs: 0.1,
        };
        assert_eq!(s.ops("AXPY"), 100.0);
        assert_eq!(s.ops("DOT"), 100.0);
        assert_eq!(s.ops("GEMV"), 100.0);
        assert_eq!(s.ops("GEMM"), 125.0);
    }

    #[test]
    fn rand_is_deterministic() {
        assert_eq!(rand_f64s(7, 16), rand_f64s(7, 16));
        assert_ne!(rand_f64s(7, 16), rand_f64s(8, 16));
    }
}
