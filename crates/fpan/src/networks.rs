//! The shipped accumulation networks, as data.
//!
//! Each builder mirrors — gate for gate — the hand-unrolled kernel in
//! `mf-core`, and the test suite checks bitwise agreement between
//! interpreting the network and running the kernel. This gives the
//! verification machinery (and the annealing search) a ground-truth object
//! to manipulate, and documents the kernels in the paper's own formalism.
//!
//! Input conventions:
//!
//! * **Addition networks** (`add_n(n)`): inputs are interleaved
//!   `[x0, y0, x1, y1, …]` — the initial layer of `TwoSum` gates pairs
//!   `(x_i, y_i)` exactly as the paper's Figures 2–4.
//! * **Multiplication networks** (`mul_n(n)`): inputs are the `n²` values
//!   produced by the pruned expansion step (paper §4.2): exact products
//!   `p_ij` and their `TwoProd` errors `e_ij` for `i+j <= n-2`, and plain
//!   products `r_ij` for `i+j = n-1`, in the order documented on each
//!   builder.

use crate::{Builder, Fpan};

/// The 2-term addition network (size 6): `AccurateDWPlusDW`.
/// Inputs `[x0, y0, x1, y1]`, outputs 2.
pub fn add_2() -> Fpan {
    let mut b = Builder::new(4);
    b.two_sum(0, 1) // (s, e)
        .two_sum(2, 3) // (t, f)
        .add(1, 2) // e += t
        .fast_two_sum(0, 1)
        .add(1, 3) // e += f
        .fast_two_sum(0, 1);
    b.finish(vec![0, 1])
}

/// The 3-term addition network (size 17). Inputs `[x0, y0, …, x2, y2]`.
pub fn add_3() -> Fpan {
    let mut b = Builder::new(6);
    // Pairing layer.
    b.two_sum(0, 1).two_sum(2, 3).two_sum(4, 5);
    // Absorption.
    b.two_sum(2, 1).two_sum(4, 3).two_sum(4, 1);
    // Tail accumulation.
    b.add(5, 3).add(5, 1);
    // renorm_weak over [0, 2, 4, 5]: up, up, down, down.
    b.two_sum(4, 5).two_sum(2, 4).two_sum(0, 2);
    b.two_sum(4, 5).two_sum(2, 4).two_sum(0, 2);
    b.two_sum(0, 2).two_sum(2, 4).two_sum(4, 5);
    b.two_sum(0, 2).two_sum(2, 4).two_sum(4, 5);
    b.finish(vec![0, 2, 4])
}

/// The 4-term addition network (size 25). Inputs `[x0, y0, …, x3, y3]`.
pub fn add_4() -> Fpan {
    let mut b = Builder::new(8);
    // Pairing layer.
    b.two_sum(0, 1).two_sum(2, 3).two_sum(4, 5).two_sum(6, 7);
    // Triangular absorption.
    b.two_sum(2, 1).two_sum(4, 3).two_sum(6, 5);
    b.two_sum(4, 1).two_sum(6, 3);
    b.two_sum(6, 1);
    // Tail accumulation: ((e3 + t2) + u1) + v0.
    b.add(7, 5).add(7, 3).add(7, 1);
    // renorm_weak over [0, 2, 4, 6, 7]: up, up, down, down, down
    // (5-wide renormalization needs the third down sweep; see
    // mf-core::renorm and EXPERIMENTS.md E5).
    b.two_sum(6, 7).two_sum(4, 6).two_sum(2, 4).two_sum(0, 2);
    b.two_sum(6, 7).two_sum(4, 6).two_sum(2, 4).two_sum(0, 2);
    b.two_sum(0, 2).two_sum(2, 4).two_sum(4, 6).two_sum(6, 7);
    b.two_sum(0, 2).two_sum(2, 4).two_sum(4, 6).two_sum(6, 7);
    b.two_sum(0, 2).two_sum(2, 4).two_sum(4, 6).two_sum(6, 7);
    b.finish(vec![0, 2, 4, 6])
}

/// The 2-term multiplication accumulation network (size 3, depth 3 —
/// matching the paper's provably optimal Figure 5).
/// Inputs `[p00, e00, p01, p10]`.
pub fn mul_2() -> Fpan {
    let mut b = Builder::new(4);
    b.add(2, 3) // cross = p01 + p10
        .add(1, 2) // lo = e00 + cross
        .fast_two_sum(0, 1);
    b.finish(vec![0, 1])
}

/// The 3-term multiplication accumulation network (size 14).
/// Inputs `[p00, q00, p01, q01, p10, q10, r02, r20, r11]`.
pub fn mul_3() -> Fpan {
    let mut b = Builder::new(9);
    b.two_sum(2, 4) // (a1, b2) = TwoSum(p01, p10)
        .two_sum(2, 1) // (s1, c2) = TwoSum(a1, q00)
        .add(3, 5) // q01 + q10
        .add(6, 7) // r02 + r20
        .add(3, 6)
        .add(3, 8) // + r11
        .add(4, 1) // b2 + c2
        .add(3, 4); // t2
                    // renorm_weak over [0, 2, 3]: up, up, down, down.
    b.two_sum(2, 3).two_sum(0, 2);
    b.two_sum(2, 3).two_sum(0, 2);
    b.two_sum(0, 2).two_sum(2, 3);
    b.two_sum(0, 2).two_sum(2, 3);
    b.finish(vec![0, 2, 3])
}

/// The 4-term multiplication accumulation network (size 29).
/// Inputs `[p00, q00, p01, q01, p10, q10, p02, q02, p20, q20, p11, q11,
/// r03, r30, r12, r21]`.
pub fn mul_4() -> Fpan {
    let mut b = Builder::new(16);
    b.add(12, 13) // r3a = r03 + r30
        .add(14, 15) // r3b = r12 + r21
        .two_sum(2, 4) // (a1, b2) = TwoSum(p01, p10)
        .two_sum(6, 8) // (a2, b3) = TwoSum(p02, p20)
        .two_sum(3, 5) // (cq1, cq1e) = TwoSum(q01, q10)
        .add(7, 9) // cq2 = q02 + q20
        .two_sum(2, 1) // (s1, c2) = TwoSum(a1, q00)
        .two_sum(6, 10) // (t2, d3a) = TwoSum(a2, p11)
        .two_sum(6, 3) // (t2, d3b) = TwoSum(t2, cq1)
        .two_sum(6, 4) // (t2, d3c) = TwoSum(t2, b2)
        .two_sum(6, 1); // (t2, d3d) = TwoSum(t2, c2)
                        // t3 = ((q11 + cq2) + (r3a + r3b)) + (((b3 + cq1e) + (d3a + d3b)) + (d3c + d3d))
    b.add(11, 7) // q11 + cq2
        .add(12, 14) // r3a + r3b
        .add(11, 12)
        .add(8, 5) // b3 + cq1e
        .add(10, 3) // d3a + d3b
        .add(8, 10)
        .add(4, 1) // d3c + d3d
        .add(8, 4)
        .add(11, 8); // t3
                     // renorm_weak over [0, 2, 6, 11]: up, up, down, down.
    b.two_sum(6, 11).two_sum(2, 6).two_sum(0, 2);
    b.two_sum(6, 11).two_sum(2, 6).two_sum(0, 2);
    b.two_sum(0, 2).two_sum(2, 6).two_sum(6, 11);
    b.two_sum(0, 2).two_sum(2, 6).two_sum(6, 11);
    b.finish(vec![0, 2, 6, 11])
}

/// Addition network for `n`-term expansions (n in 2..=4).
pub fn add_n(n: usize) -> Fpan {
    match n {
        2 => add_2(),
        3 => add_3(),
        4 => add_4(),
        _ => panic!("no addition network for n = {n}"),
    }
}

/// Multiplication accumulation network for `n`-term expansions (n in 2..=4).
pub fn mul_n(n: usize) -> Fpan {
    match n {
        2 => mul_2(),
        3 => mul_3(),
        4 => mul_4(),
        _ => panic!("no multiplication network for n = {n}"),
    }
}

/// Compute the pruned expansion step for `n`-term multiplication (paper
/// §4.2) for any base type, producing the input vector for [`mul_n`] in
/// its documented order. Exposed for the verifier and the search.
pub fn mul_expansion_step_generic<T: mf_eft::FloatBase>(x: &[T], y: &[T]) -> Vec<T> {
    use mf_eft::two_prod;
    let n = x.len();
    assert_eq!(n, y.len());
    match n {
        2 => {
            let (p00, e00) = two_prod(x[0], y[0]);
            vec![p00, e00, x[0] * y[1], x[1] * y[0]]
        }
        3 => {
            let (p00, q00) = two_prod(x[0], y[0]);
            let (p01, q01) = two_prod(x[0], y[1]);
            let (p10, q10) = two_prod(x[1], y[0]);
            vec![
                p00,
                q00,
                p01,
                q01,
                p10,
                q10,
                x[0] * y[2],
                x[2] * y[0],
                x[1] * y[1],
            ]
        }
        4 => {
            let (p00, q00) = two_prod(x[0], y[0]);
            let (p01, q01) = two_prod(x[0], y[1]);
            let (p10, q10) = two_prod(x[1], y[0]);
            let (p02, q02) = two_prod(x[0], y[2]);
            let (p20, q20) = two_prod(x[2], y[0]);
            let (p11, q11) = two_prod(x[1], y[1]);
            vec![
                p00,
                q00,
                p01,
                q01,
                p10,
                q10,
                p02,
                q02,
                p20,
                q20,
                p11,
                q11,
                x[0] * y[3],
                x[3] * y[0],
                x[1] * y[2],
                x[2] * y[1],
            ]
        }
        _ => panic!("no expansion step for n = {n}"),
    }
}

/// The §4.2 commutativity layer for an `n`-term multiplication
/// accumulation network: the fixed prefix of gates that pair symmetric
/// terms `(p_ij, p_ji)` / `(e_ij, e_ji)` so the product is invariant under
/// operand swap. The paper notes this layer does **not** emerge from
/// search on its own and must be imposed; [`crate::search`] freezes it.
pub fn commutativity_layer(n: usize) -> Vec<crate::Gate> {
    use crate::{Gate, GateKind};
    match n {
        2 => vec![Gate {
            kind: GateKind::Add,
            hi: 2,
            lo: 3,
        }], // p01 + p10
        3 => vec![
            Gate {
                kind: GateKind::TwoSum,
                hi: 2,
                lo: 4,
            }, // (p01, p10)
            Gate {
                kind: GateKind::Add,
                hi: 3,
                lo: 5,
            }, // q01 + q10
            Gate {
                kind: GateKind::Add,
                hi: 6,
                lo: 7,
            }, // r02 + r20
        ],
        4 => vec![
            Gate {
                kind: GateKind::TwoSum,
                hi: 2,
                lo: 4,
            }, // (p01, p10)
            Gate {
                kind: GateKind::TwoSum,
                hi: 6,
                lo: 8,
            }, // (p02, p20)
            Gate {
                kind: GateKind::TwoSum,
                hi: 3,
                lo: 5,
            }, // (q01, q10)
            Gate {
                kind: GateKind::Add,
                hi: 7,
                lo: 9,
            }, // q02 + q20
            Gate {
                kind: GateKind::Add,
                hi: 12,
                lo: 13,
            }, // r03 + r30
            Gate {
                kind: GateKind::Add,
                hi: 14,
                lo: 15,
            }, // r12 + r21
        ],
        _ => panic!("no commutativity layer for n = {n}"),
    }
}

/// `f64` specialization of [`mul_expansion_step_generic`] (kept for
/// existing callers).
pub fn mul_expansion_step(x: &[f64], y: &[f64]) -> Vec<f64> {
    mul_expansion_step_generic(x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mf_core::{addition, multiplication, renorm};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn rand_expansion<const N: usize>(rng: &mut SmallRng) -> [f64; N] {
        let mut c = [0.0f64; N];
        let mut e = rng.gen_range(-30..30);
        for slot in c.iter_mut() {
            let m: f64 = rng.gen_range(-1.0f64..1.0);
            *slot = m * 2.0f64.powi(e);
            e -= 53 + rng.gen_range(0..4);
        }
        renorm::renorm(c)
    }

    #[test]
    fn shipped_sizes_and_depths() {
        // E7: our networks' measured size/depth, beside the paper's
        // ((6,4),(14,8),(26,11) add; (3,3),(12,7),(27,10) mul).
        assert_eq!((add_2().size(), add_2().depth()), (6, 5));
        assert_eq!(add_3().size(), 20);
        assert_eq!(add_4().size(), 33);
        assert_eq!((mul_2().size(), mul_2().depth()), (3, 3));
        assert_eq!(mul_3().size(), 16);
        assert_eq!(mul_4().size(), 32);
        // Depths are data, not targets; pin them to catch regressions.
        eprintln!(
            "measured (size, depth): add3={:?} add4={:?} mul3={:?} mul4={:?}",
            (add_3().size(), add_3().depth()),
            (add_4().size(), add_4().depth()),
            (mul_3().size(), mul_3().depth()),
            (mul_4().size(), mul_4().depth()),
        );
    }

    #[test]
    fn add_networks_match_kernels_bitwise() {
        let mut rng = SmallRng::seed_from_u64(700);
        let nets = [add_2(), add_3(), add_4()];
        for _ in 0..20_000 {
            // n = 2
            let x = rand_expansion::<2>(&mut rng);
            let y = rand_expansion::<2>(&mut rng);
            let inputs = [x[0], y[0], x[1], y[1]];
            let out = nets[0].run(&inputs);
            let kernel = addition::add(&x, &y);
            assert_eq!(out.as_slice(), kernel.as_slice(), "n=2 x={x:?} y={y:?}");
            // n = 3
            let x = rand_expansion::<3>(&mut rng);
            let y = rand_expansion::<3>(&mut rng);
            let inputs = [x[0], y[0], x[1], y[1], x[2], y[2]];
            let out = nets[1].run(&inputs);
            let kernel = addition::add(&x, &y);
            assert_eq!(out.as_slice(), kernel.as_slice(), "n=3 x={x:?} y={y:?}");
            // n = 4
            let x = rand_expansion::<4>(&mut rng);
            let y = rand_expansion::<4>(&mut rng);
            let inputs = [x[0], y[0], x[1], y[1], x[2], y[2], x[3], y[3]];
            let out = nets[2].run(&inputs);
            let kernel = addition::add(&x, &y);
            assert_eq!(out.as_slice(), kernel.as_slice(), "n=4 x={x:?} y={y:?}");
        }
    }

    #[test]
    fn mul_networks_match_kernels_bitwise() {
        let mut rng = SmallRng::seed_from_u64(701);
        let nets = [mul_2(), mul_3(), mul_4()];
        for _ in 0..20_000 {
            let x = rand_expansion::<2>(&mut rng);
            let y = rand_expansion::<2>(&mut rng);
            let out = nets[0].run(&mul_expansion_step(&x, &y));
            let kernel = multiplication::mul(&x, &y);
            assert_eq!(out.as_slice(), kernel.as_slice(), "n=2 x={x:?} y={y:?}");

            let x = rand_expansion::<3>(&mut rng);
            let y = rand_expansion::<3>(&mut rng);
            let out = nets[1].run(&mul_expansion_step(&x, &y));
            let kernel = multiplication::mul(&x, &y);
            assert_eq!(out.as_slice(), kernel.as_slice(), "n=3 x={x:?} y={y:?}");

            let x = rand_expansion::<4>(&mut rng);
            let y = rand_expansion::<4>(&mut rng);
            let out = nets[2].run(&mul_expansion_step(&x, &y));
            let kernel = multiplication::mul(&x, &y);
            assert_eq!(out.as_slice(), kernel.as_slice(), "n=4 x={x:?} y={y:?}");
        }
    }

    #[test]
    fn commutativity_via_input_swap() {
        // Swapping the operands permutes the network inputs; outputs must
        // be bitwise identical (the paper's §4.2 property, network-level).
        let mut rng = SmallRng::seed_from_u64(702);
        let net = add_3();
        for _ in 0..5_000 {
            let x = rand_expansion::<3>(&mut rng);
            let y = rand_expansion::<3>(&mut rng);
            let a = net.run(&[x[0], y[0], x[1], y[1], x[2], y[2]]);
            let b = net.run(&[y[0], x[0], y[1], x[1], y[2], x[2]]);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn flop_counts() {
        // Total FLOPs per extended-precision operation — the paper's "each
        // extended-precision operation consists of several dozen machine
        // FLOPs" (§5).
        assert_eq!(add_2().flops(), 2 * 6 + 2 * 3 + 2);
        assert!(add_4().flops() < 200);
        assert_eq!(mul_2().flops(), 2 + 3);
    }
}
