//! Deterministic fault injection for FPAN executors.
//!
//! The guard subsystem (`mf_core::guard`) claims its detectors catch kernel
//! collapse cheaply. This module provides the apparatus to *prove* that
//! against a transient-fault model: seeded single-bit flips applied to gate
//! output wires, and gate dropout (a gate's update is skipped entirely, as
//! if the instruction never retired). The `faultsim` binary in `mf-bench`
//! drives campaigns over the shipped networks and reports detection rates.
//!
//! # Methodology
//!
//! A fault is **masked** when the corrupted output still sums to the exact
//! network result within the network's verified error bound `2^-q`
//! (measured against `Σ |inputs|`, binade-granular) — by the verification
//! contract such a result is indistinguishable from a correct one, so it is
//! excluded from the detection denominator. Every other fault is
//! **effective** and must be caught. Two detector tiers are measured:
//!
//! * **Tier 1 (invariants)** — the branch-free-friendly guard detectors:
//!   non-finite escalation, non-canonical output, and head-vs-naive-sum
//!   consistency. Nearly free, but blind to corruption that stays below the
//!   consistency tolerance.
//! * **Re-execution (DMR)** — run the network twice and compare bitwise.
//!   Catches every effective *transient* fault by construction (the retry
//!   is clean), at 2x cost.
//!
//! Both rates are reported; the combined stack is what the ≥99% detection
//! target in EXPERIMENTS.md refers to. Tier-1-only coverage is honestly
//! lower and recorded as such.

use crate::Fpan;
use mf_core::guard;
use mf_eft::FloatBase;
use mf_mpsoft::MpFloat;
use mf_telemetry::Counter;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

static FAULT_INJECTED: Counter = Counter::new("fpan.fault.injected");
static FAULT_MASKED: Counter = Counter::new("fpan.fault.masked");
static FAULT_EFFECTIVE: Counter = Counter::new("fpan.fault.effective");
static FAULT_DETECTED_T1: Counter = Counter::new("fpan.fault.detected_tier1");
static FAULT_DETECTED: Counter = Counter::new("fpan.fault.detected");
static FAULT_ESCALATED: Counter = Counter::new("fpan.fault.adaptive.escalated");
static FAULT_RECOVERED: Counter = Counter::new("fpan.fault.adaptive.recovered");

/// Which output wire of the faulted gate is corrupted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// The gate's `hi` wire (sum).
    Hi,
    /// The gate's `lo` wire (error term; dead-zeroed for `Add` gates).
    Lo,
}

/// The fault model applied at the chosen gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// XOR bit `b` (0 = lsb of the mantissa, 63 = sign for f64) into the
    /// gate's output wire after the gate executes.
    BitFlip(u32),
    /// Skip the gate entirely (its wires keep their prior values). The
    /// site is ignored.
    Dropout,
}

/// One injected fault: which gate, which output wire, what corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    pub gate: usize,
    pub site: FaultSite,
    pub kind: FaultKind,
}

/// Execute `net` on `inputs` with `fault` applied. Deterministic: the same
/// fault on the same inputs always yields the same output.
pub fn run_faulted(net: &Fpan, inputs: &[f64], fault: Fault) -> Vec<f64> {
    assert_eq!(inputs.len(), net.n_inputs, "wrong input count");
    assert!(fault.gate < net.gates.len(), "fault site out of range");
    let mut w = vec![0.0f64; net.n_wires];
    w[..inputs.len()].copy_from_slice(inputs);
    for (gi, g) in net.gates.iter().enumerate() {
        if gi == fault.gate && fault.kind == FaultKind::Dropout {
            continue;
        }
        let (a, b) = (w[g.hi], w[g.lo]);
        match g.kind {
            crate::GateKind::Add => {
                w[g.hi] = a + b;
                w[g.lo] = 0.0;
            }
            crate::GateKind::TwoSum => {
                let (s, e) = mf_eft::two_sum(a, b);
                w[g.hi] = s;
                w[g.lo] = e;
            }
            crate::GateKind::FastTwoSum => {
                // Inline 3-op sequence rather than mf_eft::fast_two_sum:
                // upstream faults legitimately violate the precondition its
                // debug_assert checks, and the fault model wants the
                // release-mode silent-inexact semantics.
                let s = a + b;
                let e = b - (s - a);
                w[g.hi] = s;
                w[g.lo] = e;
            }
        }
        if gi == fault.gate {
            if let FaultKind::BitFlip(bit) = fault.kind {
                let wi = match fault.site {
                    FaultSite::Hi => g.hi,
                    FaultSite::Lo => g.lo,
                };
                w[wi] = f64::from_bits(w[wi].to_bits() ^ (1u64 << (bit % 64)));
            }
        }
    }
    net.outputs.iter().map(|&i| w[i]).collect()
}

/// Sample `n` uniform single-bit-flip faults over the network's gates,
/// sites, and all 64 bit positions. Seeded and reproducible.
pub fn sample_bit_flips(net: &Fpan, n: usize, seed: u64) -> Vec<Fault> {
    assert!(!net.gates.is_empty(), "network has no gates to fault");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xFA01_7B17);
    (0..n)
        .map(|_| Fault {
            gate: rng.gen_range(0..net.gates.len()),
            site: if rng.gen() {
                FaultSite::Hi
            } else {
                FaultSite::Lo
            },
            kind: FaultKind::BitFlip(rng.gen_range(0..64)),
        })
        .collect()
}

/// One dropout fault per gate (exhaustive over the network).
pub fn all_dropouts(net: &Fpan) -> Vec<Fault> {
    (0..net.gates.len())
        .map(|gate| Fault {
            gate,
            site: FaultSite::Hi,
            kind: FaultKind::Dropout,
        })
        .collect()
}

/// Tier-1 (invariant) detectors over a network output: the guard
/// subsystem's branch-free-friendly checks.
pub fn tier1_detects(inputs: &[f64], out: &[f64], tol_bits: u32) -> bool {
    let finite_in = inputs.iter().all(|v| v.is_finite());
    guard::escalated_nonfinite(finite_in, out)
        || guard::noncanonical(out)
        || guard::head_inconsistent(inputs, out, tol_bits)
}

/// Tally of one fault-injection campaign.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultStats {
    /// Input vectors exercised.
    pub cases: u64,
    /// Clean (un-faulted) runs on which a tier-1 detector fired — false
    /// positives.
    pub clean_alarms: u64,
    /// Faults injected (cases x faults).
    pub injected: u64,
    /// Output stayed within the network's error bound: benign by the
    /// verification contract, excluded from the detection denominator.
    pub masked: u64,
    /// Output deviated beyond the bound (= injected - masked).
    pub effective: u64,
    /// Effective faults flagged by tier-1 invariants alone.
    pub t1_detected: u64,
    /// Effective faults caught by re-execution compare (DMR).
    pub dmr_detected: u64,
    /// Effective faults caught by the combined stack (tier 1 or DMR).
    pub detected: u64,
}

impl FaultStats {
    /// Combined-stack detection rate over effective faults (1.0 when no
    /// fault was effective).
    pub fn detection_rate(&self) -> f64 {
        if self.effective == 0 {
            1.0
        } else {
            self.detected as f64 / self.effective as f64
        }
    }

    /// Tier-1-only detection rate over effective faults.
    pub fn t1_rate(&self) -> f64 {
        if self.effective == 0 {
            1.0
        } else {
            self.t1_detected as f64 / self.effective as f64
        }
    }

    /// Tier-1 false-positive rate over clean runs.
    pub fn false_positive_rate(&self) -> f64 {
        if self.cases == 0 {
            0.0
        } else {
            self.clean_alarms as f64 / self.cases as f64
        }
    }

    fn merge(&mut self, o: FaultStats) {
        self.cases += o.cases;
        self.clean_alarms += o.clean_alarms;
        self.injected += o.injected;
        self.masked += o.masked;
        self.effective += o.effective;
        self.t1_detected += o.t1_detected;
        self.dmr_detected += o.dmr_detected;
        self.detected += o.detected;
    }
}

/// Binade-granular deviation test: does `sum_f` differ from `exact` by
/// more than `2^-q * mag`? (`mag` = exact `Σ |inputs|`.)
fn deviates(sum_f: &MpFloat, exact: &MpFloat, mag: &MpFloat, q: i32) -> bool {
    let err = sum_f.sub(exact, 600);
    if err.is_zero() {
        return false;
    }
    match (err.exp2(), mag.exp2()) {
        (Some(ee), Some(me)) => ee > me - q as i64,
        // All-zero inputs but a nonzero corrupted output.
        (Some(_), None) => true,
        _ => false,
    }
}

/// Run every fault in `faults` against every input vector in `cases`,
/// classifying each injection as masked or effective (against the
/// network's verified bound `2^-q`) and testing both detector tiers on the
/// effective ones. `tol_bits` is the tier-1 head-consistency tolerance.
pub fn campaign(
    net: &Fpan,
    cases: &[Vec<f64>],
    faults: &[Fault],
    q: i32,
    tol_bits: u32,
) -> FaultStats {
    let mut st = FaultStats::default();
    for inputs in cases {
        st.cases += 1;
        let clean = net.run(inputs);
        if tier1_detects(inputs, &clean, tol_bits) {
            st.clean_alarms += 1;
        }
        let exact = MpFloat::exact_sum(inputs);
        let abs_in: Vec<f64> = inputs.iter().map(|v| v.abs()).collect();
        let mag = MpFloat::exact_sum(&abs_in);
        for &f in faults {
            st.injected += 1;
            let faulted = run_faulted(net, inputs, f);
            let finite = faulted.iter().all(|v| FloatBase::is_finite(*v));
            let effective = if finite {
                deviates(&MpFloat::exact_sum(&faulted), &exact, &mag, q)
            } else {
                // Non-finite output from finite inputs is a collapse by
                // definition (exact_sum cannot even represent it).
                true
            };
            if !effective {
                st.masked += 1;
                continue;
            }
            st.effective += 1;
            let t1 = tier1_detects(inputs, &faulted, tol_bits);
            // Transient-fault model: a re-execution is clean, so DMR
            // detection is a bitwise output compare against the clean run.
            let dmr = faulted != clean;
            if t1 {
                st.t1_detected += 1;
            }
            if dmr {
                st.dmr_detected += 1;
            }
            if t1 || dmr {
                st.detected += 1;
            }
        }
    }
    if mf_telemetry::ENABLED {
        FAULT_INJECTED.add(st.injected);
        FAULT_MASKED.add(st.masked);
        FAULT_EFFECTIVE.add(st.effective);
        FAULT_DETECTED_T1.add(st.t1_detected);
        FAULT_DETECTED.add(st.detected);
    }
    st
}

/// Merge per-network stats into a campaign total.
pub fn merge_stats(parts: &[FaultStats]) -> FaultStats {
    let mut total = FaultStats::default();
    for &p in parts {
        total.merge(p);
    }
    total
}

// ---------------------------------------------------------------------------
// Adaptive campaign: detect-escalate-recover
// ---------------------------------------------------------------------------

/// Tally of one closed-loop (detect → escalate → recover) campaign. The
/// classification per injection is exclusive:
/// `injected = masked + missed + escalated`, and
/// `escalated = recovered + unrecovered`.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdaptiveFaultStats {
    /// Input vectors exercised.
    pub cases: u64,
    /// Clean runs on which a detector fired — **false escalations**; the
    /// acceptance bar is zero.
    pub clean_escalations: u64,
    /// Faults injected (cases × faults).
    pub injected: u64,
    /// Output stayed within the bound: benign, no escalation owed.
    pub masked: u64,
    /// Effective faults that slipped both detector tiers — never escalated,
    /// silently wrong. The ≥99% target counts these as failures.
    pub missed: u64,
    /// Effective faults that tripped a detector and entered the recovery
    /// ladder.
    pub escalated: u64,
    /// Escalated faults whose re-execution (transient gone) already met the
    /// bound.
    pub rerun_recovered: u64,
    /// Escalated faults that needed the exact-oracle reconstruction rung.
    pub oracle_recovered: u64,
    /// Escalated faults recovered (rerun or oracle) to within the bound.
    pub recovered: u64,
    /// Escalated but the full ladder still failed the bound.
    pub unrecovered: u64,
}

impl AdaptiveFaultStats {
    /// Combined detect-and-recover rate over effective faults: the share
    /// that ended within the verified bound after the closed loop. This is
    /// the campaign's headline number (target ≥ 0.99).
    pub fn recovery_rate(&self) -> f64 {
        let effective = self.missed + self.escalated;
        if effective == 0 {
            1.0
        } else {
            self.recovered as f64 / effective as f64
        }
    }

    /// Share of effective faults that escalated at all (the detection
    /// half of the loop).
    pub fn escalation_rate(&self) -> f64 {
        let effective = self.missed + self.escalated;
        if effective == 0 {
            1.0
        } else {
            self.escalated as f64 / effective as f64
        }
    }

    fn merge(&mut self, o: AdaptiveFaultStats) {
        self.cases += o.cases;
        self.clean_escalations += o.clean_escalations;
        self.injected += o.injected;
        self.masked += o.masked;
        self.missed += o.missed;
        self.escalated += o.escalated;
        self.rerun_recovered += o.rerun_recovered;
        self.oracle_recovered += o.oracle_recovered;
        self.recovered += o.recovered;
        self.unrecovered += o.unrecovered;
    }
}

/// Merge per-network adaptive stats into a campaign total.
pub fn merge_adaptive_stats(parts: &[AdaptiveFaultStats]) -> AdaptiveFaultStats {
    let mut total = AdaptiveFaultStats::default();
    for &p in parts {
        total.merge(p);
    }
    total
}

/// Round the exact sum into an `n_terms` nonoverlapping expansion — the
/// oracle rung of the recovery ladder (what `Adaptive`'s `Rung::Oracle`
/// does for scalar ops, applied to a network output).
fn oracle_reconstruct(exact: &MpFloat, n_terms: usize) -> Vec<f64> {
    const P: u32 = 600;
    let mut out = Vec::with_capacity(n_terms);
    let mut rem = exact.clone();
    for _ in 0..n_terms {
        let h = rem.to_f64();
        out.push(h);
        if h == 0.0 || !h.is_finite() {
            // Remaining mass is below f64 range (or saturated): the
            // expansion is as good as representable.
            break;
        }
        rem = rem.sub(&MpFloat::from_f64(h, P), P);
    }
    while out.len() < n_terms {
        out.push(0.0);
    }
    out
}

/// Closed-loop fault campaign: inject → detect (tier 1 ∨ re-execution
/// cross-check) → escalate → recover (re-run, then exact-oracle
/// reconstruction) → verify the recovered output against the network's
/// bound. This is the fault-model mirror of the `Adaptive` scalar engine:
/// the detectors that gate its ladder are the same ones that trigger
/// escalation here, and the top rung is the same exact evaluation.
pub fn adaptive_campaign(
    net: &Fpan,
    cases: &[Vec<f64>],
    faults: &[Fault],
    q: i32,
    tol_bits: u32,
) -> AdaptiveFaultStats {
    let mut st = AdaptiveFaultStats::default();
    for inputs in cases {
        st.cases += 1;
        let clean = net.run(inputs);
        if tier1_detects(inputs, &clean, tol_bits) {
            st.clean_escalations += 1;
        }
        let exact = MpFloat::exact_sum(inputs);
        let abs_in: Vec<f64> = inputs.iter().map(|v| v.abs()).collect();
        let mag = MpFloat::exact_sum(&abs_in);
        let out_ok = |out: &[f64]| -> bool {
            out.iter().all(|v| FloatBase::is_finite(*v))
                && !deviates(&MpFloat::exact_sum(out), &exact, &mag, q)
        };
        for &f in faults {
            st.injected += 1;
            let faulted = run_faulted(net, inputs, f);
            if out_ok(&faulted) {
                st.masked += 1;
                continue;
            }
            let t1 = tier1_detects(inputs, &faulted, tol_bits);
            let dmr = faulted != clean;
            if !(t1 || dmr) {
                st.missed += 1;
                continue;
            }
            st.escalated += 1;
            // Recovery rung 1: re-execute (the transient is gone).
            if out_ok(&clean) {
                st.rerun_recovered += 1;
                st.recovered += 1;
                continue;
            }
            // Recovery rung 2: exact-oracle reconstruction of the output
            // expansion (reached only if the *network itself* violates its
            // bound on these inputs — cannot fail the verification).
            let oracle = oracle_reconstruct(&exact, net.outputs.len());
            if out_ok(&oracle) {
                st.oracle_recovered += 1;
                st.recovered += 1;
            } else {
                st.unrecovered += 1;
            }
        }
    }
    if mf_telemetry::ENABLED {
        FAULT_INJECTED.add(st.injected);
        FAULT_MASKED.add(st.masked);
        FAULT_ESCALATED.add(st.escalated);
        FAULT_RECOVERED.add(st.recovered);
    }
    st
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::networks;
    use crate::verify::random_expansion;

    /// Interleaved valid expansion pair for an n-term addition network
    /// (no forced cancellation — fault classification wants a stable
    /// magnitude scale).
    fn add_case(rng: &mut SmallRng, n: usize) -> Vec<f64> {
        let ex = rng.gen_range(-30..30);
        let x = random_expansion::<f64>(rng, n, ex);
        let ey = rng.gen_range(-30..30);
        let y = random_expansion::<f64>(rng, n, ey);
        let mut inputs = Vec::with_capacity(2 * n);
        for i in 0..n {
            inputs.push(x[i]);
            inputs.push(y[i]);
        }
        inputs
    }

    #[test]
    fn bit_flip_is_deterministic_and_visible() {
        let net = networks::add_2();
        let inputs = [1.0, 0.5, 2.0f64.powi(-60), 2.0f64.powi(-70)];
        let clean = net.run(&inputs);
        let f = Fault {
            gate: net.gates.len() - 1,
            site: FaultSite::Hi,
            kind: FaultKind::BitFlip(62),
        };
        let a = run_faulted(&net, &inputs, f);
        let b = run_faulted(&net, &inputs, f);
        // Bitwise compare: the flip may manufacture a NaN, for which
        // PartialEq is useless.
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a), bits(&b), "same fault, same inputs, same output");
        assert_ne!(a, clean, "an exponent-bit flip must change the output");
        assert!(
            tier1_detects(&inputs, &a, 40),
            "huge head deviation must trip tier 1"
        );
    }

    #[test]
    fn low_bit_flip_on_error_wire_is_masked() {
        let net = networks::add_2();
        let inputs = [1.0, 0.5, 2.0f64.powi(-55), 2.0f64.powi(-56)];
        // Flip the lsb of the *last* gate's lo wire: that wire carries an
        // error term ~2^-108 relative to the head, so the deviation is far
        // below add_2's q=104 bound only if the flipped bit is low enough.
        let f = Fault {
            gate: net.gates.len() - 1,
            site: FaultSite::Lo,
            kind: FaultKind::BitFlip(0),
        };
        let faulted = run_faulted(&net, &inputs, f);
        let exact = MpFloat::exact_sum(&inputs);
        let abs_in: Vec<f64> = inputs.iter().map(|v| v.abs()).collect();
        let mag = MpFloat::exact_sum(&abs_in);
        assert!(
            !deviates(&MpFloat::exact_sum(&faulted), &exact, &mag, 104),
            "lsb flip of a deep error term must be masked"
        );
    }

    #[test]
    fn dropout_is_effective_and_detected() {
        let net = networks::add_2();
        let mut rng = SmallRng::seed_from_u64(7);
        let cases: Vec<Vec<f64>> = (0..10).map(|_| add_case(&mut rng, 2)).collect();
        let st = campaign(&net, &cases, &all_dropouts(&net), 104, 40);
        assert_eq!(st.injected, 10 * net.gates.len() as u64);
        // Some dropouts (e.g. of a gate whose wires are both tiny) may be
        // masked, but every effective one must be caught by the stack.
        assert_eq!(
            st.detected, st.effective,
            "combined stack must catch all dropouts"
        );
        assert!(st.effective > 0, "dropping gates must usually matter");
    }

    #[test]
    fn campaign_combined_stack_catches_everything() {
        let mut rng = SmallRng::seed_from_u64(11);
        for (n, q) in [(2usize, 104i32), (3, 156)] {
            let net = networks::add_n(n);
            let cases: Vec<Vec<f64>> = (0..8).map(|_| add_case(&mut rng, n)).collect();
            let faults = sample_bit_flips(&net, 64, 99);
            let st = campaign(&net, &cases, &faults, q, 40);
            assert_eq!(st.injected, 8 * 64);
            assert_eq!(st.masked + st.effective, st.injected);
            assert_eq!(
                st.detected, st.effective,
                "add_{n}: combined stack missed effective faults"
            );
            assert!(st.t1_detected <= st.effective);
            assert_eq!(st.clean_alarms, 0, "add_{n}: tier 1 fired on clean runs");
            assert!(st.detection_rate() >= 0.99);
        }
    }

    #[test]
    fn adaptive_campaign_recovers_all_effective_faults() {
        let mut rng = SmallRng::seed_from_u64(23);
        for (n, q) in [(2usize, 104i32), (3, 156)] {
            let net = networks::add_n(n);
            let cases: Vec<Vec<f64>> = (0..8).map(|_| add_case(&mut rng, n)).collect();
            let mut faults = sample_bit_flips(&net, 48, 77);
            faults.extend(all_dropouts(&net));
            let st = adaptive_campaign(&net, &cases, &faults, q, 40);
            assert_eq!(st.injected, 8 * faults.len() as u64);
            assert_eq!(
                st.masked + st.missed + st.escalated,
                st.injected,
                "add_{n}: classification must be exclusive and exhaustive"
            );
            assert_eq!(st.escalated, st.recovered + st.unrecovered);
            assert_eq!(st.clean_escalations, 0, "add_{n}: false escalations");
            assert_eq!(st.missed, 0, "add_{n}: faults slipped both tiers");
            assert_eq!(st.unrecovered, 0, "add_{n}: recovery ladder failed");
            // Transient model: the re-run rung recovers everything; the
            // oracle rung is a backstop.
            assert_eq!(st.rerun_recovered, st.recovered);
            assert!(st.recovery_rate() >= 0.99);
            assert!(st.escalated > 0, "add_{n}: campaign exercised nothing");
        }
    }

    #[test]
    fn adaptive_stats_merge_and_rates() {
        let a = AdaptiveFaultStats {
            cases: 4,
            clean_escalations: 0,
            injected: 20,
            masked: 8,
            missed: 1,
            escalated: 11,
            rerun_recovered: 10,
            oracle_recovered: 1,
            recovered: 11,
            unrecovered: 0,
        };
        let total = merge_adaptive_stats(&[a, a]);
        assert_eq!(total.injected, 40);
        assert_eq!(total.escalated, 22);
        assert!((total.recovery_rate() - 22.0 / 24.0).abs() < 1e-12);
        assert!((total.escalation_rate() - 22.0 / 24.0).abs() < 1e-12);
        assert_eq!(AdaptiveFaultStats::default().recovery_rate(), 1.0);
    }

    #[test]
    fn oracle_reconstruct_rounds_to_valid_expansion() {
        let inputs = [1.0, 2.0f64.powi(-53), 2.0f64.powi(-108), 2.0f64.powi(-160)];
        let exact = MpFloat::exact_sum(&inputs);
        let out = oracle_reconstruct(&exact, 2);
        assert_eq!(out.len(), 2);
        // 1 + 2^-53 alone would tie-to-even back to 1.0; the 2^-108 term
        // breaks the tie upward, so the correctly rounded head is the next
        // float up.
        assert_eq!(out[0], f64::from_bits(1.0f64.to_bits() + 1));
        // Residual after two correctly rounded terms sits below the
        // two-term representation precision (~2^-107 here), inside the
        // add_2 bound of 2^-104.
        let back = MpFloat::exact_sum(&out);
        let err = back.sub(&exact, 600);
        assert!(err.exp2().unwrap() <= -107);
    }

    #[test]
    fn stats_merge_and_rates() {
        let a = FaultStats {
            cases: 2,
            clean_alarms: 0,
            injected: 10,
            masked: 4,
            effective: 6,
            t1_detected: 3,
            dmr_detected: 6,
            detected: 6,
        };
        let total = merge_stats(&[a, a]);
        assert_eq!(total.injected, 20);
        assert_eq!(total.effective, 12);
        assert!((total.detection_rate() - 1.0).abs() < 1e-12);
        assert!((total.t1_rate() - 0.5).abs() < 1e-12);
        assert_eq!(FaultStats::default().detection_rate(), 1.0);
    }
}
