//! Simulated-annealing search for FPANs (paper §4.1).
//!
//! The paper's networks "were produced by a heuristic search procedure,
//! based on simulated annealing, in which random TwoSum gates were added to
//! an empty FPAN until it passed the automatic verification procedure.
//! Then, random gates were added and removed, with the probability of
//! removal gradually adjusted upwards over time, subject to the constraint
//! that the resulting FPAN still pass verification."
//!
//! This module implements that procedure against the empirical verifier.
//! To keep evaluation cheap enough for thousands of candidate networks, the
//! inner loop verifies at a small soft-float precision (`p = 12`) with the
//! exact integer reference; accepted final candidates should then be
//! re-verified at `f64` with the oracle (see `examples/fpan_search.rs`).

use crate::verify::{self, Config as VerifyConfig};
use crate::{Fpan, Gate, GateKind};
use mf_telemetry::{Counter, Gauge};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

static SEARCH_ITERS: Counter = Counter::new("fpan.search.iters");
static SEARCH_ACCEPTED: Counter = Counter::new("fpan.search.accepted");
static SEARCH_IMPROVEMENTS: Counter = Counter::new("fpan.search.improvements");
// Live levels for the observability hub: the current round and the best
// candidate's cost (size + depth/4, scaled by 100 to keep it integral) let
// a scraper watch a long anneal converge without waiting for the manifest.
static SEARCH_ROUND: Gauge = Gauge::new("fpan.search.round");
static SEARCH_BEST_SIZE: Gauge = Gauge::new("fpan.search.best_size");
static SEARCH_BEST_COST: Gauge = Gauge::new("fpan.search.best_cost_x100");

/// Emit a `search.progress` telemetry event for a new best candidate.
/// (Run with `MF_TELEMETRY_LOG=1` to stream these to stderr live; they
/// also land in the run manifest's event list.)
fn report_progress(phase: &str, iter: usize, best: &Fpan, temperature: f64) {
    SEARCH_IMPROVEMENTS.incr();
    SEARCH_BEST_SIZE.set(best.size() as i64);
    // cost = size + depth/4, so cost*100 = 100*size + 25*depth exactly.
    SEARCH_BEST_COST.set(100 * best.size() as i64 + 25 * best.depth() as i64);
    mf_telemetry::event(
        "search.progress",
        &[
            ("phase", if phase == "grow" { 0.0 } else { 1.0 }),
            ("iter", iter as f64),
            ("best_size", best.size() as f64),
            ("best_depth", best.depth() as f64),
            ("temperature", temperature),
        ],
    );
}

/// Search configuration.
#[derive(Debug, Clone, Copy)]
pub struct SearchConfig {
    /// Expansion width `n` (the network adds two `n`-term expansions).
    pub n: usize,
    /// Required error bound exponent `q` at the search precision
    /// (e.g. `2p - 1` for 2-term addition).
    pub q: i32,
    /// Annealing iterations.
    pub iters: usize,
    /// Verification trials per candidate (the paper's "testing to identify
    /// plausible candidates"; final acceptance re-verifies at 25x this).
    pub trials: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Energy of a candidate: correct networks are scored by cost; incorrect
/// ones by how badly they fail (so the search can hill-climb toward
/// correctness).
fn energy(net: &Fpan, n: usize, q: i32, trials: usize, seed: u64) -> f64 {
    // Verifier passes dominate search wall time; spans make the
    // per-candidate cost visible on the timeline (arg = candidate size).
    let _sp = mf_telemetry::trace::span("fpan.verify.pass", net.size() as u64);
    let rep = verify::verify_addition_soft::<12>(net, n, VerifyConfig::new(trials, q, seed));
    if rep.pass {
        net.size() as f64 + 0.25 * net.depth() as f64
    } else {
        // Penalty: base offset + violation rate + error overshoot.
        let rate = rep.violations as f64 / rep.trials as f64;
        let overshoot = if rep.worst_error_exp.is_finite() {
            (rep.worst_error_exp + q as f64).max(0.0)
        } else {
            0.0
        };
        1000.0 + 200.0 * rate + overshoot
    }
}

/// Random mutation: insert, remove, or rewire a `TwoSum` gate (the paper's
/// search moves; `FastTwoSum`/`Add` specializations are a post-processing
/// concern).
fn mutate(net: &Fpan, rng: &mut SmallRng) -> Fpan {
    let mut out = net.clone();
    let n_wires = out.n_wires;
    // Removal probability ramps with network size, mirroring the paper's
    // "probability of removal gradually adjusted upwards".
    let remove_weight = (out.gates.len() as f64 / 12.0).min(0.45);
    let r: f64 = rng.gen();
    if r < remove_weight && !out.gates.is_empty() {
        let i = rng.gen_range(0..out.gates.len());
        out.gates.remove(i);
    } else if r < remove_weight + 0.15 && !out.gates.is_empty() {
        // Rewire an existing gate.
        let i = rng.gen_range(0..out.gates.len());
        let hi = rng.gen_range(0..n_wires);
        let mut lo = rng.gen_range(0..n_wires);
        if lo == hi {
            lo = (lo + 1) % n_wires;
        }
        out.gates[i] = Gate {
            kind: GateKind::TwoSum,
            hi,
            lo,
        };
    } else {
        // Insert a new TwoSum at a random position.
        let hi = rng.gen_range(0..n_wires);
        let mut lo = rng.gen_range(0..n_wires);
        if lo == hi {
            lo = (lo + 1) % n_wires;
        }
        let pos = rng.gen_range(0..=out.gates.len());
        out.gates.insert(
            pos,
            Gate {
                kind: GateKind::TwoSum,
                hi,
                lo,
            },
        );
    }
    out
}

/// Search for an `n`-term addition network. Inputs are interleaved
/// `[x0, y0, …]`; outputs are fixed to wires `[0, 2, …, 2(n-1)]`. Returns
/// the smallest discovered network that survives the strict (25x trials)
/// final verification, and whether any candidate did.
///
/// Progress is observable through `mf-telemetry`: each new best candidate
/// emits a `search.progress` event and bumps the `fpan.search.*` counters.
pub fn search_addition(cfg: SearchConfig) -> (Fpan, bool) {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let outputs: Vec<usize> = (0..cfg.n).map(|i| 2 * i).collect();
    let mut current = Fpan::new(2 * cfg.n, outputs);
    current.n_wires = 2 * cfg.n;

    // Phase 1 (the paper's "random TwoSum gates were added to an empty FPAN
    // until it passed"): greedy growth — keep an insertion iff it does not
    // increase the energy (violation pressure), restart the insertion draw
    // otherwise.
    let mut cur_energy = energy(&current, cfg.n, cfg.q, cfg.trials, cfg.seed ^ 1);
    let grow_iters = cfg.iters / 2;
    for iter in 0..grow_iters {
        if cur_energy < 900.0 {
            break; // passes verification
        }
        let _round = mf_telemetry::trace::span("fpan.grow.round", iter as u64);
        SEARCH_ITERS.incr();
        SEARCH_ROUND.set(iter as i64);
        let mut cand = current.clone();
        let hi = rng.gen_range(0..cand.n_wires);
        let mut lo = rng.gen_range(0..cand.n_wires);
        if lo == hi {
            lo = (lo + 1) % cand.n_wires;
        }
        let pos = rng.gen_range(0..=cand.gates.len());
        cand.gates.insert(
            pos,
            Gate {
                kind: GateKind::TwoSum,
                hi,
                lo,
            },
        );
        if cand.gates.len() > 40 {
            // Too big: drop a random gate instead.
            cand = current.clone();
            if !cand.gates.is_empty() {
                let i = rng.gen_range(0..cand.gates.len());
                cand.gates.remove(i);
            }
        }
        let e = energy(&cand, cfg.n, cfg.q, cfg.trials, rng.gen());
        if e <= cur_energy + 1e-9 {
            current = cand;
            cur_energy = e;
            SEARCH_ACCEPTED.incr();
            report_progress("grow", iter, &current, f64::INFINITY);
        }
    }

    let mut best = current.clone();
    let mut best_energy = cur_energy;
    // Every improving candidate, for the strict final pass (stochastic
    // testing can accept a "plausible but wrong" smaller network — the
    // paper's §1 motivation — so the final answer is the *smallest
    // candidate that survives heavy re-verification*, not the raw best).
    let mut history: Vec<Fpan> = vec![best.clone()];

    // Phase 2: anneal — random add/remove/rewire with the removal pressure
    // of `mutate`, accepting uphill moves by temperature.
    for iter in 0..cfg.iters {
        let _round = mf_telemetry::trace::span("fpan.anneal.round", iter as u64);
        SEARCH_ITERS.incr();
        SEARCH_ROUND.set(iter as i64);
        // Exponential cooling from 4.0 down to 0.05.
        let t = 4.0 * (0.05f64 / 4.0).powf(iter as f64 / cfg.iters.max(1) as f64);
        let cand = mutate(&current, &mut rng);
        if cand.gates.len() > 40 {
            continue; // keep the space bounded
        }
        // Fresh verification seed each iteration: candidates must keep
        // passing under new inputs to survive (guards against overfitting
        // to one trial batch).
        let e = energy(&cand, cfg.n, cfg.q, cfg.trials, rng.gen());
        let accept = e <= cur_energy || rng.gen::<f64>() < ((cur_energy - e) / t).exp();
        if accept {
            current = cand;
            cur_energy = e;
            SEARCH_ACCEPTED.incr();
            if e < best_energy {
                best = current.clone();
                best_energy = e;
                history.push(best.clone());
                report_progress("anneal", iter, &best, t);
            }
        }
    }

    // Final acceptance: re-verify candidates from smallest upward with a
    // 25x trial budget and a fresh seed; return the smallest survivor.
    history.sort_by_key(|n| (n.size(), n.depth()));
    for cand in &history {
        let _sp = mf_telemetry::trace::span("fpan.final.verify", cand.size() as u64);
        let rep = verify::verify_addition_soft::<12>(
            cand,
            cfg.n,
            VerifyConfig::new(cfg.trials * 25, cfg.q, cfg.seed ^ 0xdead),
        );
        if rep.pass {
            return (cand.clone(), true);
        }
    }
    (best, false)
}

/// Energy for a multiplication accumulation candidate (frozen prefix not
/// counted differently; the verifier covers the whole network).
fn mul_energy(net: &Fpan, n: usize, q: i32, trials: usize, seed: u64) -> f64 {
    let _sp = mf_telemetry::trace::span("fpan.verify.pass", net.size() as u64);
    let rep =
        verify::verify_mul_accumulation_soft::<12>(net, n, VerifyConfig::new(trials, q, seed));
    if rep.pass {
        net.size() as f64 + 0.25 * net.depth() as f64
    } else {
        let rate = rep.violations as f64 / rep.trials as f64;
        let overshoot = if rep.worst_error_exp.is_finite() {
            (rep.worst_error_exp + q as f64).max(0.0)
        } else {
            0.0
        };
        1000.0 + 200.0 * rate + overshoot
    }
}

/// Search for an `n`-term multiplication accumulation network with the
/// paper's §4.2 constraint: the commutativity layer
/// ([`crate::networks::commutativity_layer`]) is a **frozen prefix** that
/// mutations never touch — the paper notes this layer "does not naturally
/// occur in multiplication FPANs, and we must deliberately impose" it.
/// Outputs are wires `[0, 2, 6, 11][..n]` for n = 4 and `[0, 2, 3][..n]`
/// for n = 3 (the head-product wires).
///
/// Progress is observable through `mf-telemetry`, exactly as in
/// [`search_addition`].
pub fn search_multiplication(cfg: SearchConfig) -> (Fpan, bool) {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let n = cfg.n;
    let prefix = crate::networks::commutativity_layer(n);
    let frozen = prefix.len();
    let outputs: Vec<usize> = match n {
        2 => vec![0, 1],
        3 => vec![0, 2, 3],
        _ => vec![0, 2, 6, 11],
    };
    let mut current = Fpan::new(n * n, outputs);
    current.gates = prefix;
    let mut cur_energy = mul_energy(&current, n, cfg.q, cfg.trials, cfg.seed ^ 1);
    let mut best = current.clone();
    let mut best_energy = cur_energy;
    let mut history: Vec<Fpan> = vec![best.clone()];

    let max_gates = frozen + 40;
    for iter in 0..cfg.iters {
        let _round = mf_telemetry::trace::span("fpan.anneal.round", iter as u64);
        SEARCH_ITERS.incr();
        SEARCH_ROUND.set(iter as i64);
        let t = 4.0 * (0.05f64 / 4.0).powf(iter as f64 / cfg.iters.max(1) as f64);
        // Mutate only beyond the frozen prefix.
        let mut cand = current.clone();
        let n_wires = cand.n_wires;
        let r: f64 = rng.gen();
        let movable = cand.gates.len() - frozen;
        let remove_weight = (movable as f64 / 14.0).min(0.45);
        if r < remove_weight && movable > 0 {
            let i = frozen + rng.gen_range(0..movable);
            cand.gates.remove(i);
        } else if cand.gates.len() < max_gates {
            let hi = rng.gen_range(0..n_wires);
            let mut lo = rng.gen_range(0..n_wires);
            if lo == hi {
                lo = (lo + 1) % n_wires;
            }
            let pos = frozen + rng.gen_range(0..=movable);
            cand.gates.insert(
                pos,
                Gate {
                    kind: GateKind::TwoSum,
                    hi,
                    lo,
                },
            );
        } else {
            continue;
        }
        let e = mul_energy(&cand, n, cfg.q, cfg.trials, rng.gen());
        let accept = e <= cur_energy || rng.gen::<f64>() < ((cur_energy - e) / t).exp();
        if accept {
            current = cand;
            cur_energy = e;
            SEARCH_ACCEPTED.incr();
            if e < best_energy {
                best = current.clone();
                best_energy = e;
                history.push(best.clone());
                report_progress("anneal", iter, &best, t);
            }
        }
    }

    history.sort_by_key(|c| (c.size(), c.depth()));
    for cand in &history {
        let _sp = mf_telemetry::trace::span("fpan.final.verify", cand.size() as u64);
        let rep = verify::verify_mul_accumulation_soft::<12>(
            cand,
            n,
            VerifyConfig::new(cfg.trials * 25, cfg.q, cfg.seed ^ 0xdead),
        );
        if rep.pass {
            return (cand.clone(), true);
        }
    }
    (best, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::networks;

    #[test]
    fn energy_prefers_correct_and_small() {
        // q = 2p-2: the bound this repo asserts for the shipped add_2
        // (see the `verify_networks` binary) — its conservative sweeps
        // are not the paper's Figure-2 optimum, so 2p-1 can be exceeded
        // on ~2.25u^2 worst-case inputs if the sampler finds one.
        let good = networks::add_2();
        let e_good = energy(&good, 2, 22, 400, 7);
        assert!(e_good < 100.0, "shipped network must score as correct");
        // Empty network: outputs are just x0, x1 — wrong.
        let empty = Fpan::new(4, vec![0, 2]);
        let e_empty = energy(&empty, 2, 22, 400, 7);
        assert!(e_empty > 900.0, "empty network must score as incorrect");
        assert!(e_good < e_empty);
    }

    #[test]
    fn search_finds_a_correct_two_term_adder() {
        // The E8 experiment at test scale: from an empty network, the
        // annealer must discover a verified 2-term addition FPAN at p=12
        // with the paper's 2p-1 bound.
        // q = 2p-2: the AccurateDWPlusDW family's tight worst case is
        // ~2.25u^2 (Muller & Rideau 2022), i.e. just above 2^-(2p-1), so
        // 2p-1 is only reachable by the paper's own Figure-2 network.
        let cfg = SearchConfig {
            n: 2,
            q: 2 * 12 - 2,
            iters: 3000,
            trials: 160,
            seed: 12345,
        };
        let (net, ok) = search_addition(cfg);
        assert!(ok, "search failed to find a correct network");
        // It must also hold up at f64 against the oracle with the scaled
        // bound (2p-1 at p=53), at least at a modest trial count.
        let rep = verify::verify_addition_f64(&net, 2, VerifyConfig::new(800, 2 * 53 - 2, 999));
        assert!(
            rep.pass,
            "discovered network fails at f64: {:?} worst 2^{:.1}",
            rep.first_violation, rep.worst_error_exp
        );
        // And it should not be wildly larger than the known optimum (6).
        assert!(
            net.size() <= 20,
            "network unexpectedly large: {}",
            net.size()
        );
    }

    #[test]
    fn search_finds_a_correct_two_term_multiplier() {
        // E8 for multiplication: the commutativity layer is imposed; the
        // annealer must discover a verified 2-term accumulation network.
        let cfg = SearchConfig {
            n: 2,
            q: 2 * 12 - 3, // paper: 2^-(2p-3) for 2-term multiplication
            iters: 2500,
            trials: 160,
            seed: 777,
        };
        let (net, ok) = search_multiplication(cfg);
        assert!(ok, "multiplication search failed");
        // The frozen commutativity prefix must still be there.
        let prefix = crate::networks::commutativity_layer(2);
        assert_eq!(&net.gates[..prefix.len()], prefix.as_slice());
        // Shipped optimum is size 3; allow some slack.
        assert!(
            net.size() <= 15,
            "network unexpectedly large: {}",
            net.size()
        );
    }

    #[test]
    fn mutate_preserves_interface() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut net = networks::add_2();
        for _ in 0..200 {
            net = mutate(&net, &mut rng);
            assert_eq!(net.n_inputs, 4);
            assert_eq!(net.outputs, vec![0, 1]);
        }
    }
}
