//! Empirical FPAN verification (DESIGN.md substitution T1).
//!
//! The paper proves FPAN correctness with SMT solvers over symbolic
//! floating-point domains (Ref. [53]); reproducing those proofs requires
//! the released FPANVerifier and an SMT solver, neither available offline.
//! This module verifies the same two correctness conditions *empirically*
//! (paper §3):
//!
//! 1. **Nonoverlap**: output terms satisfy `|z_i| <= ulp(z_{i-1}) / 2` for
//!    all generated inputs;
//! 2. **Error bound**: the discarded rounding error
//!    `|Σ inputs - Σ outputs| <= 2^-q · |Σ inputs|`.
//!
//! Two execution substrates are used:
//!
//! * `f64` with the exact `mf-mpsoft` oracle — adversarial stochastic
//!   suites at the production precision;
//! * [`SoftFloat<P>`] with an exact `i128` scaled-integer reference —
//!   cheap enough for the dense sweeps and for the inner loop of the
//!   simulated-annealing search (the paper's Figure 1 uses p = 6 for
//!   exactly this kind of small-precision reasoning).
//!
//! Additionally, every `FastTwoSum` gate's magnitude precondition is
//! monitored; a violation fails verification even if the numerical result
//! happens to be correct on that input (paper §3's second condition is
//! about *all* inputs, and a violated precondition is a latent bug).

use crate::Fpan;
use mf_eft::FloatBase;
use mf_mpsoft::MpFloat;
use mf_softfloat::SoftFloat;
use mf_telemetry::Counter;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

static VERIFY_TRIALS: Counter = Counter::new("fpan.verify.trials");
static VERIFY_VIOLATIONS: Counter = Counter::new("fpan.verify.violations");

/// What went wrong on a particular input vector.
#[derive(Debug, Clone, PartialEq)]
pub enum ViolationKind {
    /// Output terms overlap.
    Overlap,
    /// Discarded error exceeded the claimed bound; the payload is the
    /// observed log2 relative error.
    ErrorBound(f64),
    /// A `FastTwoSum` gate saw `|hi| < |lo|` with both nonzero.
    Precondition,
}

/// A failed trial: the input vector (as f64 values) and the failure kind.
#[derive(Debug, Clone)]
pub struct Violation {
    pub inputs: Vec<f64>,
    pub kind: ViolationKind,
}

/// Verification outcome over a batch of trials.
#[derive(Debug, Clone)]
pub struct Report {
    /// True iff no violations were observed.
    pub pass: bool,
    /// Worst observed log2 relative discarded error (`-inf` if every trial
    /// was exact).
    pub worst_error_exp: f64,
    /// Number of violating trials.
    pub violations: usize,
    /// First violation, for debugging.
    pub first_violation: Option<Violation>,
    /// Trials run.
    pub trials: usize,
}

impl Report {
    fn new() -> Self {
        Report {
            pass: true,
            worst_error_exp: f64::NEG_INFINITY,
            violations: 0,
            first_violation: None,
            trials: 0,
        }
    }

    /// Count one trial (process-wide telemetry included).
    fn trial(&mut self) {
        self.trials += 1;
        VERIFY_TRIALS.incr();
    }

    fn record(&mut self, inputs: &[f64], kind: ViolationKind) {
        self.pass = false;
        self.violations += 1;
        VERIFY_VIOLATIONS.incr();
        if self.first_violation.is_none() {
            self.first_violation = Some(Violation {
                inputs: inputs.to_vec(),
                kind,
            });
        }
    }
}

/// Configuration for a verification run.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of random trials.
    pub trials: usize,
    /// Claimed bound: discarded error must be `<= 2^-q |Σ inputs|`.
    pub q: i32,
    /// RNG seed (runs are reproducible).
    pub seed: u64,
}

impl Config {
    pub fn new(trials: usize, q: i32, seed: u64) -> Self {
        Config { trials, q, seed }
    }
}

fn is_nonoverlapping<T: FloatBase>(v: &[T]) -> bool {
    for i in 1..v.len() {
        if v[i].is_zero() {
            continue;
        }
        if v[i - 1].is_zero() {
            return false;
        }
        if v[i].abs() > v[i - 1].ulp() * T::HALF {
            return false;
        }
    }
    true
}

/// Random nonoverlapping expansion of `n` terms of base type `T`, with
/// adversarial features: boundary-tight gaps, wide gaps, early truncation,
/// and sign mixtures.
pub fn random_expansion<T: FloatBase>(rng: &mut SmallRng, n: usize, head_exp: i32) -> Vec<T> {
    let p = T::PRECISION as i32;
    let mut out = vec![T::ZERO; n];
    let mut e = head_exp;
    for slot in out.iter_mut() {
        if rng.gen_ratio(1, 12) {
            break; // early truncation: trailing zeros
        }
        // Random mantissa in [2^(p-1), 2^p); occasionally all-ones or a
        // power of two (rounding boundary shapes).
        let mant: u64 = match rng.gen_range(0..8) {
            0 => 1u64 << (p - 1),
            1 => (1u64 << p) - 1,
            _ => rng.gen_range(1u64 << (p - 1)..1u64 << p),
        };
        let sign = if rng.gen() { T::ONE } else { T::NEG_ONE };
        let mag = T::from_u64(mant) * T::exp2i(e - p + 1);
        *slot = sign * mag;
        let gap = if rng.gen_ratio(1, 4) {
            0
        } else {
            rng.gen_range(0..6)
        };
        e = e - p - 1 - gap;
    }
    out
}

/// Exact sum of values whose ulp exponents span < 96 bits, as a scaled
/// `i128` (used as the fast reference for small-precision soft floats).
fn exact_sum_i128(values: &[f64]) -> (i128, i32) {
    let mut min_k = i32::MAX;
    for &v in values {
        if v == 0.0 {
            continue;
        }
        let bits = v.abs().to_bits();
        let raw = (bits >> 52) as i32;
        assert!(raw != 0, "subnormal in exact_sum_i128");
        let tz = (bits & ((1 << 52) - 1) | (1 << 52)).trailing_zeros() as i32;
        min_k = min_k.min(raw - 1075 + tz);
    }
    if min_k == i32::MAX {
        return (0, 0);
    }
    let mut acc: i128 = 0;
    for &v in values {
        if v == 0.0 {
            continue;
        }
        let bits = v.abs().to_bits();
        let raw = (bits >> 52) as i32;
        let full = bits & ((1 << 52) - 1) | (1 << 52);
        let tz = full.trailing_zeros() as i32;
        let m = (full >> tz) as i128;
        let shift = raw - 1075 + tz - min_k;
        assert!((0..=100).contains(&shift), "exponent span too wide");
        let term = m << shift;
        acc += if v < 0.0 { -term } else { term };
    }
    (acc, min_k)
}

/// Core verification loop, generic over the input generator.
fn verify_with<T, G>(net: &Fpan, cfg: Config, mut gen: G) -> Report
where
    T: FloatBase,
    G: FnMut(&mut SmallRng) -> Vec<T>,
{
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut report = Report::new();
    for _ in 0..cfg.trials {
        report.trial();
        let inputs = gen(&mut rng);
        let inputs_f64: Vec<f64> = inputs.iter().map(|x| x.to_f64()).collect();
        let (outputs, precond_ok) = net.run_checked(&inputs);
        if !precond_ok {
            report.record(&inputs_f64, ViolationKind::Precondition);
            continue;
        }
        if !is_nonoverlapping(&outputs) {
            report.record(&inputs_f64, ViolationKind::Overlap);
            continue;
        }
        let outputs_f64: Vec<f64> = outputs.iter().map(|x| x.to_f64()).collect();
        // Discarded error = Σ inputs - Σ outputs, measured exactly.
        let rel_exp = if T::PRECISION <= 26 {
            // Fast integer reference.
            let (si, ki) = exact_sum_i128(&inputs_f64);
            let (so, ko) = exact_sum_i128(&outputs_f64);
            // Align the two scaled sums (spans are narrow at toy precision).
            let k = ki.min(ko);
            assert!(ki - k <= 120 && ko - k <= 120, "alignment span too wide");
            let a = si << (ki - k) as u32;
            let b = so << (ko - k) as u32;
            let diff = (a - b).unsigned_abs();
            if diff == 0 {
                f64::NEG_INFINITY
            } else if a == 0 {
                f64::INFINITY
            } else {
                (diff as f64).log2() - (a.unsigned_abs() as f64).log2()
            }
        } else {
            let exact_in = MpFloat::exact_sum(&inputs_f64);
            let exact_out = MpFloat::exact_sum(&outputs_f64);
            if exact_in.is_zero() {
                if exact_out.is_zero() {
                    f64::NEG_INFINITY
                } else {
                    f64::INFINITY
                }
            } else {
                let err = exact_out.rel_error_vs(&exact_in);
                if err == 0.0 {
                    f64::NEG_INFINITY
                } else {
                    err.log2()
                }
            }
        };
        if rel_exp > report.worst_error_exp {
            report.worst_error_exp = rel_exp;
        }
        if rel_exp > -(cfg.q as f64) {
            report.record(&inputs_f64, ViolationKind::ErrorBound(rel_exp));
        }
    }
    report
}

/// Verify an addition network for `n`-term expansions at `f64`
/// (inputs interleaved `[x0, y0, x1, y1, …]`). Half the trials force heavy
/// head cancellation (`y0 = -x0`).
pub fn verify_addition_f64(net: &Fpan, n: usize, cfg: Config) -> Report {
    assert_eq!(net.n_inputs, 2 * n);
    verify_with::<f64, _>(net, cfg, move |rng| {
        let e0 = rng.gen_range(-40..40);
        let x = random_expansion::<f64>(rng, n, e0);
        let cancel = rng.gen_ratio(1, 4);
        let e1 = if cancel {
            e0 // heads share an exponent so the swap below stays valid
        } else if rng.gen_ratio(1, 2) {
            e0 + rng.gen_range(-2..3)
        } else {
            rng.gen_range(-40..40)
        };
        let mut y = random_expansion::<f64>(rng, n, e1);
        if cancel && !y.is_empty() && y[0] != 0.0 {
            y[0] = -x[0]; // exact head cancellation, tails remain valid
        }
        let mut inputs = Vec::with_capacity(2 * n);
        for i in 0..n {
            inputs.push(x[i]);
            inputs.push(y[i]);
        }
        inputs
    })
}

/// Verify an addition network at a small soft-float precision `P` with the
/// exact integer reference. This is the search's inner-loop oracle.
pub fn verify_addition_soft<const P: u32>(net: &Fpan, n: usize, cfg: Config) -> Report {
    assert_eq!(net.n_inputs, 2 * n);
    verify_with::<SoftFloat<P>, _>(net, cfg, move |rng| {
        let e0 = rng.gen_range(-8..8);
        let x = random_expansion::<SoftFloat<P>>(rng, n, e0);
        let cancel = rng.gen_ratio(1, 4);
        let e1 = if cancel {
            e0
        } else if rng.gen_ratio(1, 2) {
            e0 + rng.gen_range(-2..3)
        } else {
            rng.gen_range(-8..8)
        };
        let mut y = random_expansion::<SoftFloat<P>>(rng, n, e1);
        if cancel && !y[0].is_zero() {
            y[0] = -x[0];
        }
        let mut inputs = Vec::with_capacity(2 * n);
        for i in 0..n {
            inputs.push(x[i]);
            inputs.push(y[i]);
        }
        inputs
    })
}

/// Verify a multiplication accumulation network for `n`-term expansions at
/// `f64`: random nonoverlapping operands go through the pruned expansion
/// step, the network accumulates, and the result is compared to the exact
/// product (the bound is relative to `|x·y|`).
pub fn verify_multiplication_f64(net: &Fpan, n: usize, cfg: Config) -> Report {
    assert_eq!(net.n_inputs, n * n);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut report = Report::new();
    for _ in 0..cfg.trials {
        report.trial();
        let ex = rng.gen_range(-30..30);
        let x = random_expansion::<f64>(&mut rng, n, ex);
        let ey = rng.gen_range(-30..30);
        let y = random_expansion::<f64>(&mut rng, n, ey);
        let inputs = crate::networks::mul_expansion_step(&x, &y);
        let (outputs, precond_ok) = net.run_checked(&inputs);
        if !precond_ok {
            report.record(&inputs, ViolationKind::Precondition);
            continue;
        }
        if !is_nonoverlapping(&outputs) {
            report.record(&inputs, ViolationKind::Overlap);
            continue;
        }
        let exact = MpFloat::exact_sum(&x).mul(&MpFloat::exact_sum(&y), 2000);
        let got = MpFloat::exact_sum(&outputs);
        let rel_exp = if exact.is_zero() {
            if got.is_zero() {
                f64::NEG_INFINITY
            } else {
                f64::INFINITY
            }
        } else {
            let e = got.rel_error_vs(&exact);
            if e == 0.0 {
                f64::NEG_INFINITY
            } else {
                e.log2()
            }
        };
        if rel_exp > report.worst_error_exp {
            report.worst_error_exp = rel_exp;
        }
        if rel_exp > -(cfg.q as f64) {
            report.record(&inputs, ViolationKind::ErrorBound(rel_exp));
        }
    }
    report
}

/// **Exhaustively** verify a 2-term addition network over a bounded input
/// subspace at precision `P`: every pair of nonoverlapping 2-term
/// expansions whose head exponent lies in `[-e_span, e_span]` and whose
/// tail sits at most `gap_max` binades below the nonoverlap boundary
/// (tails at the exact `ulp/2` boundary and zero components included).
///
/// Unlike the stochastic suites this is a complete enumeration of its
/// domain — the strongest claim the reproduction can make without an SMT
/// solver. At `P = 3..5` the space is a few million pairs and runs in
/// seconds; exponent-translation symmetry of the algorithms (they use no
/// absolute thresholds away from overflow) is what justifies the bounded
/// window standing in for the full range, the same symmetry argument the
/// paper's §2.1 normalization relies on.
pub fn verify_addition_exhaustive<const P: u32>(
    net: &Fpan,
    q: i32,
    e_span: i32,
    gap_max: i32,
) -> Report {
    assert_eq!(net.n_inputs, 4, "exhaustive mode covers 2-term networks");
    let p = P as i32;
    // Enumerate all valid single operands (head, tail) as SoftFloat pairs.
    let mut operands: Vec<[SoftFloat<P>; 2]> = Vec::new();
    let mants: Vec<u64> = (1u64 << (P - 1)..1u64 << P).collect();
    let signs = [1.0f64, -1.0];
    // The zero operand.
    operands.push([SoftFloat::zero(), SoftFloat::zero()]);
    for e0 in -e_span..=e_span {
        for &m0 in &mants {
            for &s0 in &signs {
                let head = SoftFloat::<P>::from_f64(s0 * (m0 as f64) * 2.0f64.powi(e0 - p + 1));
                // Tail zero.
                operands.push([head, SoftFloat::zero()]);
                // Tail exactly at the ulp/2 boundary: |tail| = 2^(e0 - p).
                for &st in &signs {
                    let t = SoftFloat::<P>::from_f64(st * 2.0f64.powi(e0 - p));
                    operands.push([head, t]);
                }
                // Tails strictly below the boundary.
                for ge in 1..=gap_max {
                    let et = e0 - p - ge;
                    for &mt in &mants {
                        for &st in &signs {
                            let t = SoftFloat::<P>::from_f64(
                                st * (mt as f64) * 2.0f64.powi(et - p + 1),
                            );
                            operands.push([head, t]);
                        }
                    }
                }
            }
        }
    }

    let mut report = Report::new();
    for a in &operands {
        for b in &operands {
            report.trial();
            let inputs = [a[0], b[0], a[1], b[1]];
            let inputs_f64 = [
                inputs[0].to_f64(),
                inputs[1].to_f64(),
                inputs[2].to_f64(),
                inputs[3].to_f64(),
            ];
            let (outputs, precond_ok) = net.run_checked(&inputs);
            if !precond_ok {
                report.record(&inputs_f64, ViolationKind::Precondition);
                continue;
            }
            if !is_nonoverlapping(&outputs) {
                report.record(&inputs_f64, ViolationKind::Overlap);
                continue;
            }
            let outputs_f64: Vec<f64> = outputs.iter().map(|v| v.to_f64()).collect();
            let (si, ki) = exact_sum_i128(&inputs_f64);
            let (so, ko) = exact_sum_i128(&outputs_f64);
            let k = ki.min(ko);
            let av = si << (ki - k) as u32;
            let bv = so << (ko - k) as u32;
            let diff = (av - bv).unsigned_abs();
            let rel_exp = if diff == 0 {
                f64::NEG_INFINITY
            } else if av == 0 {
                f64::INFINITY
            } else {
                (diff as f64).log2() - (av.unsigned_abs() as f64).log2()
            };
            if rel_exp > report.worst_error_exp {
                report.worst_error_exp = rel_exp;
            }
            if rel_exp > -(q as f64) {
                report.record(&inputs_f64, ViolationKind::ErrorBound(rel_exp));
            }
        }
    }
    report
}

/// Verify a multiplication *accumulation* network at a small soft-float
/// precision with the exact integer reference. The check covers the
/// network itself (|Σ inputs − Σ outputs| against the claimed bound and
/// output nonoverlap); the pruning error of the expansion step is a
/// separate, analytically-bounded term (paper §4.2). This is the cheap
/// inner-loop oracle for [`crate::search::search_multiplication`].
pub fn verify_mul_accumulation_soft<const P: u32>(net: &Fpan, n: usize, cfg: Config) -> Report {
    assert_eq!(net.n_inputs, n * n);
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut report = Report::new();
    for _ in 0..cfg.trials {
        report.trial();
        let ex = rng.gen_range(-6..6);
        let x = random_expansion::<SoftFloat<P>>(&mut rng, n, ex);
        let ey = rng.gen_range(-6..6);
        let y = random_expansion::<SoftFloat<P>>(&mut rng, n, ey);
        let inputs = crate::networks::mul_expansion_step_generic(&x, &y);
        let inputs_f64: Vec<f64> = inputs.iter().map(|v| v.to_f64()).collect();
        let (outputs, precond_ok) = net.run_checked(&inputs);
        if !precond_ok {
            report.record(&inputs_f64, ViolationKind::Precondition);
            continue;
        }
        if !is_nonoverlapping(&outputs) {
            report.record(&inputs_f64, ViolationKind::Overlap);
            continue;
        }
        let outputs_f64: Vec<f64> = outputs.iter().map(|v| v.to_f64()).collect();
        let (si, ki) = exact_sum_i128(&inputs_f64);
        let (so, ko) = exact_sum_i128(&outputs_f64);
        let k = ki.min(ko);
        assert!(ki - k <= 120 && ko - k <= 120, "alignment span too wide");
        let a = si << (ki - k) as u32;
        let b = so << (ko - k) as u32;
        let diff = (a - b).unsigned_abs();
        let rel_exp = if diff == 0 {
            f64::NEG_INFINITY
        } else if a == 0 {
            f64::INFINITY
        } else {
            (diff as f64).log2() - (a.unsigned_abs() as f64).log2()
        };
        if rel_exp > report.worst_error_exp {
            report.worst_error_exp = rel_exp;
        }
        if rel_exp > -(cfg.q as f64) {
            report.record(&inputs_f64, ViolationKind::ErrorBound(rel_exp));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::networks;
    use crate::{Builder, Gate, GateKind};

    #[test]
    fn shipped_addition_networks_verify_at_f64() {
        // E5: the captioned bounds are 2^-(2p-1), 2^-(3p-3), 2^-(4p-4).
        // For n = 2 we assert 2^-(2p-2): our kernel is AccurateDWPlusDW,
        // whose tight worst case is ~2.25u^2, one bit above the paper's
        // Figure-2 claim (see EXPERIMENTS.md E5 for observed worsts).
        for (n, q) in [(2usize, 104i32), (3, 156), (4, 208)] {
            let net = networks::add_n(n);
            let rep = verify_addition_f64(&net, n, Config::new(4000, q, 42));
            assert!(
                rep.pass,
                "add_{n} failed: {:?} worst 2^{:.1}",
                rep.first_violation, rep.worst_error_exp
            );
        }
    }

    #[test]
    fn shipped_multiplication_networks_verify_at_f64() {
        // E6: the captioned bounds 2^-(2p-3), 2^-(3p-3), 2^-(4p-4).
        for (n, q) in [(2usize, 103i32), (3, 156), (4, 208)] {
            let net = networks::mul_n(n);
            let rep = verify_multiplication_f64(&net, n, Config::new(3000, q, 43));
            assert!(
                rep.pass,
                "mul_{n} failed: {:?} worst 2^{:.1}",
                rep.first_violation, rep.worst_error_exp
            );
        }
    }

    #[test]
    fn shipped_addition_networks_verify_at_small_precision() {
        // The same network objects are correct at p = 12 with the scaled
        // bound (the paper's algorithms are precision-generic).
        let net = networks::add_2();
        let rep = verify_addition_soft::<12>(&net, 2, Config::new(30_000, 2 * 12 - 2, 44));
        assert!(
            rep.pass,
            "p=12 add_2 failed: {:?} worst 2^{:.1}",
            rep.first_violation, rep.worst_error_exp
        );
        let net = networks::add_3();
        let rep = verify_addition_soft::<12>(&net, 3, Config::new(20_000, 3 * 12 - 3, 45));
        assert!(
            rep.pass,
            "p=12 add_3 failed: {:?} worst 2^{:.1}",
            rep.first_violation, rep.worst_error_exp
        );
    }

    #[test]
    fn exhaustive_small_space_add2() {
        // Complete enumeration at p = 4 over head exponents [-2, 2] with
        // tails up to 2 binades below the boundary: every single input
        // pair in that space, no sampling.
        let net = networks::add_2();
        let rep = verify_addition_exhaustive::<4>(&net, 2 * 4 - 2, 2, 2);
        assert!(
            rep.pass,
            "exhaustive p=4 verification failed after {} trials: {:?} worst 2^{:.1}",
            rep.trials, rep.first_violation, rep.worst_error_exp
        );
        assert!(
            rep.trials > 100_000,
            "space unexpectedly small: {}",
            rep.trials
        );
    }

    #[test]
    fn exhaustive_rejects_truncated_network() {
        let mut net = networks::add_2();
        net.gates.pop();
        let rep = verify_addition_exhaustive::<4>(&net, 2 * 4 - 2, 1, 1);
        assert!(!rep.pass, "truncated network must fail exhaustively too");
    }

    #[test]
    fn naive_termwise_addition_fails_verification() {
        // The paper's §2.3 negative example: termwise ⊕ without error
        // propagation degrades to machine precision — the verifier must
        // reject it.
        let mut b = Builder::new(4);
        b.add(0, 1).add(2, 3);
        let net = b.finish(vec![0, 2]); // outputs x0⊕y0, x1⊕y1
        let rep = verify_addition_f64(&net, 2, Config::new(2000, 105, 46));
        assert!(!rep.pass, "termwise addition must fail");
        // It should fail the error bound (or overlap), with error around
        // machine precision, i.e. hugely above 2^-105.
        assert!(rep.worst_error_exp > -80.0);
    }

    #[test]
    fn truncated_network_fails_verification() {
        // Drop the final renormalization gate from add_2: outputs overlap
        // or lose the bound on some inputs. The violating inputs are rare
        // enough that one 4k-trial stream can miss them — give the sampler
        // room and two independent streams.
        let mut net = networks::add_2();
        net.gates.pop();
        let failed = [47u64, 48]
            .iter()
            .any(|&seed| !verify_addition_f64(&net, 2, Config::new(20_000, 105, seed)).pass);
        assert!(failed, "truncated add_2 must fail verification");
    }

    #[test]
    fn bad_fast_two_sum_is_caught() {
        // A FastTwoSum pairing the *small* terms first sees unordered
        // operands on many inputs.
        let mut net = networks::add_2();
        net.gates.insert(
            0,
            Gate {
                kind: GateKind::FastTwoSum,
                hi: 2,
                lo: 0,
            },
        );
        let rep = verify_addition_f64(&net, 2, Config::new(2000, 105, 48));
        assert!(!rep.pass);
        assert!(matches!(
            rep.first_violation.as_ref().unwrap().kind,
            ViolationKind::Precondition | ViolationKind::Overlap | ViolationKind::ErrorBound(_)
        ));
    }

    #[test]
    fn exact_sum_i128_basics() {
        let (a, ka) = exact_sum_i128(&[1.5, 0.25]);
        assert_eq!((a as f64) * 2.0f64.powi(ka), 1.75);
        let (z, _) = exact_sum_i128(&[0.0, 0.0]);
        assert_eq!(z, 0);
        let (c, kc) = exact_sum_i128(&[1.0, -1.0, 2.0f64.powi(-40)]);
        assert_eq!((c as f64) * 2.0f64.powi(kc), 2.0f64.powi(-40));
    }
}
