//! `mf-fpan`: floating-point accumulation networks as data.
//!
//! A *floating-point accumulation network* (FPAN, paper §3) is a branch-free
//! algorithm given by a fixed sequence of gates applied to a fixed number of
//! wires. Three gate kinds exist, mirroring the paper's diagrams:
//!
//! * **Add** — `hi <- hi ⊕ lo`; the rounding error of the addition is
//!   *discarded* (this is where an FPAN loses information, and what its
//!   error bound controls).
//! * **TwoSum** — `(hi, lo) <- TwoSum(hi, lo)`: error-free.
//! * **FastTwoSum** — same, under the magnitude precondition of paper
//!   Algorithm 3.
//!
//! This crate provides:
//!
//! * [`Fpan`] — the network representation, with [`Fpan::size`] /
//!   [`Fpan::depth`] matching the paper's cost metrics;
//! * [`Fpan::run`] — an interpreter generic over [`mf_eft::FloatBase`], so
//!   the same network object executes on `f64`, `f32`, or the bit-exact
//!   [`mf_softfloat::SoftFloat`] at any toy precision;
//! * [`networks`] — the six shipped networks (2/3/4-term addition and
//!   multiplication accumulation), each tested bit-for-bit against the
//!   hand-unrolled kernels in `mf-core`;
//! * [`verify`] — the empirical verification procedure standing in for the
//!   paper's SMT pipeline (DESIGN.md substitution T1);
//! * [`search`] — the simulated-annealing discovery procedure of §4.1.

pub mod fault;
pub mod networks;
pub mod search;
pub mod verify;

use mf_eft::{fast_two_sum, two_sum, FloatBase};
use mf_telemetry::Counter;

static EXEC_RUNS: Counter = Counter::new("fpan.exec.runs");
static EXEC_ADD: Counter = Counter::new("fpan.exec.add_gates");
static EXEC_TWO_SUM: Counter = Counter::new("fpan.exec.two_sum_gates");
static EXEC_FAST_TWO_SUM: Counter = Counter::new("fpan.exec.fast_two_sum_gates");

/// Count one interpreter execution of `net` (per-gate-kind totals come from
/// the static structure, so the hot gate loop itself carries no probes).
#[inline]
fn record_run(net: &Fpan) {
    if !mf_telemetry::ENABLED {
        return;
    }
    let (adds, two_sums, fast_two_sums) = net.gate_counts();
    EXEC_RUNS.incr();
    EXEC_ADD.add(adds as u64);
    EXEC_TWO_SUM.add(two_sums as u64);
    EXEC_FAST_TWO_SUM.add(fast_two_sums as u64);
}

/// The three gate kinds of an FPAN diagram (paper §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Plain floating-point addition; discards its rounding error.
    Add,
    /// Error-free `TwoSum` (Algorithm 1).
    TwoSum,
    /// Error-free `FastTwoSum` (Algorithm 3); requires
    /// `exponent(hi) >= exponent(lo)` or a zero operand.
    FastTwoSum,
}

/// One gate: operates on the values currently held by wires `hi` and `lo`.
/// For two-output gates, the sum lands on `hi` and the error on `lo`;
/// for [`GateKind::Add`], the sum lands on `hi` and `lo` becomes dead
/// (zeroed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Gate {
    pub kind: GateKind,
    pub hi: usize,
    pub lo: usize,
}

/// A floating-point accumulation network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fpan {
    /// Number of wires (inputs occupy wires `0..n_inputs`; extra wires
    /// start at zero).
    pub n_wires: usize,
    /// Number of input values.
    pub n_inputs: usize,
    /// Gate sequence, applied in order.
    pub gates: Vec<Gate>,
    /// Wire indices whose final values are the outputs, most significant
    /// first.
    pub outputs: Vec<usize>,
}

impl Fpan {
    /// Create an empty network (no gates: outputs are raw input wires).
    pub fn new(n_inputs: usize, outputs: Vec<usize>) -> Self {
        Fpan {
            n_wires: n_inputs,
            n_inputs,
            gates: Vec::new(),
            outputs,
        }
    }

    /// Total number of gates (the paper's *size* metric).
    pub fn size(&self) -> usize {
        self.gates.len()
    }

    /// Longest gate chain from any input to any output (the paper's *depth*
    /// metric). Computed over wires: executing a gate makes both operand
    /// wires' new values depend on both old values.
    pub fn depth(&self) -> usize {
        let mut d = vec![0usize; self.n_wires];
        for g in &self.gates {
            let nd = d[g.hi].max(d[g.lo]) + 1;
            d[g.hi] = nd;
            match g.kind {
                GateKind::Add => d[g.lo] = 0,
                _ => d[g.lo] = nd,
            }
        }
        self.outputs.iter().map(|&w| d[w]).max().unwrap_or(0)
    }

    /// Execute the network on `inputs` (length `n_inputs`), returning the
    /// output values in `outputs` order.
    pub fn run<T: FloatBase>(&self, inputs: &[T]) -> Vec<T> {
        assert_eq!(inputs.len(), self.n_inputs, "wrong input count");
        record_run(self);
        let mut w = vec![T::ZERO; self.n_wires];
        w[..inputs.len()].copy_from_slice(inputs);
        for g in &self.gates {
            let (a, b) = (w[g.hi], w[g.lo]);
            match g.kind {
                GateKind::Add => {
                    w[g.hi] = a + b;
                    w[g.lo] = T::ZERO;
                }
                GateKind::TwoSum => {
                    let (s, e) = two_sum(a, b);
                    w[g.hi] = s;
                    w[g.lo] = e;
                }
                GateKind::FastTwoSum => {
                    let (s, e) = fast_two_sum(a, b);
                    w[g.hi] = s;
                    w[g.lo] = e;
                }
            }
        }
        self.outputs.iter().map(|&i| w[i]).collect()
    }

    /// Like [`Fpan::run`] but reports whether any `FastTwoSum` gate saw its
    /// precondition violated (checked without `debug_assert`, so usable in
    /// release-mode verification and search).
    pub fn run_checked<T: FloatBase>(&self, inputs: &[T]) -> (Vec<T>, bool) {
        assert_eq!(inputs.len(), self.n_inputs, "wrong input count");
        record_run(self);
        let mut w = vec![T::ZERO; self.n_wires];
        w[..inputs.len()].copy_from_slice(inputs);
        let mut precond_ok = true;
        for g in &self.gates {
            let (a, b) = (w[g.hi], w[g.lo]);
            match g.kind {
                GateKind::Add => {
                    w[g.hi] = a + b;
                    w[g.lo] = T::ZERO;
                }
                GateKind::TwoSum => {
                    let (s, e) = two_sum(a, b);
                    w[g.hi] = s;
                    w[g.lo] = e;
                }
                GateKind::FastTwoSum => {
                    if !(a.is_zero() || b.is_zero() || a.exponent() >= b.exponent()) {
                        precond_ok = false;
                    }
                    // Evaluate with TwoSum semantics of the would-be result:
                    // FastTwoSum computes s = a+b; e = b - (s - a).
                    let s = a + b;
                    let e = b - (s - a);
                    w[g.hi] = s;
                    w[g.lo] = e;
                }
            }
        }
        (self.outputs.iter().map(|&i| w[i]).collect(), precond_ok)
    }

    /// Gate-count breakdown `(adds, two_sums, fast_two_sums)`.
    pub fn gate_counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for g in &self.gates {
            match g.kind {
                GateKind::Add => c.0 += 1,
                GateKind::TwoSum => c.1 += 1,
                GateKind::FastTwoSum => c.2 += 1,
            }
        }
        c
    }

    /// FLOP count with the usual per-gate costs (Add = 1, FastTwoSum = 3,
    /// TwoSum = 6).
    pub fn flops(&self) -> usize {
        let (a, t, f) = self.gate_counts();
        a + 6 * t + 3 * f
    }
}

/// Convenience builder used by [`networks`] and tests.
pub struct Builder {
    fpan: Fpan,
}

impl Builder {
    pub fn new(n_inputs: usize) -> Self {
        Builder {
            fpan: Fpan::new(n_inputs, Vec::new()),
        }
    }

    /// Allocate an extra (zero-initialized) wire.
    pub fn wire(&mut self) -> usize {
        let w = self.fpan.n_wires;
        self.fpan.n_wires += 1;
        w
    }

    pub fn two_sum(&mut self, hi: usize, lo: usize) -> &mut Self {
        self.fpan.gates.push(Gate {
            kind: GateKind::TwoSum,
            hi,
            lo,
        });
        self
    }

    pub fn fast_two_sum(&mut self, hi: usize, lo: usize) -> &mut Self {
        self.fpan.gates.push(Gate {
            kind: GateKind::FastTwoSum,
            hi,
            lo,
        });
        self
    }

    pub fn add(&mut self, hi: usize, lo: usize) -> &mut Self {
        self.fpan.gates.push(Gate {
            kind: GateKind::Add,
            hi,
            lo,
        });
        self
    }

    pub fn finish(mut self, outputs: Vec<usize>) -> Fpan {
        self.fpan.outputs = outputs;
        self.fpan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_two_sum_net() -> Fpan {
        let mut b = Builder::new(2);
        b.two_sum(0, 1);
        b.finish(vec![0, 1])
    }

    #[test]
    fn metrics() {
        let net = tiny_two_sum_net();
        assert_eq!(net.size(), 1);
        assert_eq!(net.depth(), 1);
        assert_eq!(net.gate_counts(), (0, 1, 0));
        assert_eq!(net.flops(), 6);
    }

    #[test]
    fn executor_matches_eft() {
        let net = tiny_two_sum_net();
        let out = net.run(&[1.0e16f64, 1.0]);
        let (s, e) = mf_eft::two_sum(1.0e16f64, 1.0);
        assert_eq!(out, vec![s, e]);
    }

    #[test]
    fn add_gate_discards() {
        let mut b = Builder::new(2);
        b.add(0, 1);
        let net = b.finish(vec![0]);
        let out = net.run(&[1.0e16f64, 1.0]);
        assert_eq!(out, vec![1.0e16 + 1.0]);
        assert_eq!(net.depth(), 1);
    }

    #[test]
    fn depth_counts_longest_chain() {
        // Chain of 3 dependent TwoSums vs 2 independent ones.
        let mut b = Builder::new(4);
        b.two_sum(0, 1).two_sum(2, 3).two_sum(0, 2);
        let net = b.finish(vec![0, 1, 2, 3]);
        assert_eq!(net.size(), 3);
        assert_eq!(net.depth(), 2);
    }

    #[test]
    fn runs_on_softfloat() {
        use mf_softfloat::SoftFloat;
        let net = tiny_two_sum_net();
        let a = SoftFloat::<6>::from_f64(1.0);
        let c = SoftFloat::<6>::from_f64(0.015625);
        let out = net.run(&[a, c]);
        assert_eq!(out[0].to_f64() + out[1].to_f64(), 1.015625);
    }

    #[test]
    fn run_checked_flags_bad_fast_two_sum() {
        let mut b = Builder::new(2);
        b.fast_two_sum(0, 1);
        let net = b.finish(vec![0, 1]);
        let (_, ok) = net.run_checked(&[1.0f64, 2.0]);
        assert!(!ok, "1 < 2 violates the FastTwoSum precondition");
        let (out, ok) = net.run_checked(&[2.0f64, 1.0]);
        assert!(ok);
        assert_eq!(out, vec![3.0, 0.0]);
    }
}
