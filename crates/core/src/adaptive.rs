//! Adaptive precision escalation: the closed guard loop.
//!
//! The guard layer ([`crate::guard`]) *detects* collapse; this module *acts*
//! on it. An [`Adaptive`] engine evaluates every operation on an explicit
//! escalation ladder
//!
//! ```text
//! N=2  →  N=3  →  N=4  →  MpFloat oracle
//! ```
//!
//! starting at the cheap base rung and climbing only when a [`GuardFlags`]
//! detector trips or the head-residual bound fails. This is the
//! cheap-common-case / precise-rare-case architecture from the FPGA
//! literature (de Fine Licht et al.) applied to the paper's branch-free
//! kernels: clean workloads run at full N=2 speed, and only the rare
//! collapse-prone operation pays for more precision.
//!
//! # Escalation triggers
//!
//! An attempt at a finite-`N` rung is rejected (and the ladder climbs) when
//! either
//!
//! 1. the guarded kernel reports any [`GuardFlags`] bit (pre-range operand
//!    regime, non-finite escalation, noncanonical output), or
//! 2. the **head residual** check fails: the result's leading component must
//!    be consistent with a naive base-precision evaluation of the same
//!    operation to within `2^-tol_bits` relative — the same backward-style
//!    bound as [`crate::guard::head_inconsistent`], specialized per
//!    operation (`a+b` vs `r`, `q·b` vs `a`, `s·s` vs `a`, …). Clean inputs
//!    sit near `2^-(P-1)` relative deviation, far inside the default
//!    `tol_bits = 40`, so the check only fires on genuinely corrupted or
//!    collapsed results.
//!
//! The oracle rung always accepts: it evaluates through [`MpFloat`] at the
//! ladder-top working precision and rounds back to `N=2`.
//!
//! # Policy knobs
//!
//! [`EscalationPolicy`] controls the ladder: `max_rung` caps the climb,
//! `sticky` chooses per-value residency (a tripped rung stays resident for
//! subsequent ops) vs per-op escalation (every op restarts at N=2),
//! `decay` is the hysteresis — after that many consecutive clean ops the
//! resident rung steps back down one level, so a burst of trips does not
//! pin the ladder at the oracle forever — and `budget` is the hard ceiling
//! on total escalation steps: once exhausted the engine latches *degraded*
//! and routes every remaining op through the guard layer's plain
//! [`GuardPolicy::OracleFallback`], mirroring the worker pool's
//! degrade-to-serial contract (predictable, safe, no further ladder cost).
//!
//! # Special values
//!
//! §4.4 semantics bypass the ladder entirely: non-finite operands, division
//! by zero, `recip(0)` and `sqrt` of a negative propagate through the plain
//! kernel exactly as the guard layer's own bypass does. They never escalate
//! (the oracle cannot represent them) and never count against the budget.
//!
//! # Telemetry
//!
//! The engine buffers its tallies in plain cells on the hot path and flushes
//! them to the registry (`core.adaptive.{ops,escalations,oracle_falls,
//! degraded_ops}` counters, `core.adaptive.rung` gauge) on [`Adaptive::stats`]
//! and on drop; per-rung latency sketches (`core.adaptive.{n3,n4,oracle}`)
//! time only the escalated attempts, so the N=2 fast path stays atomic-free.

use core::cell::Cell;
use core::fmt;
use core::marker::PhantomData;

use mf_mpsoft::MpFloat;
use mf_telemetry::{Counter, Gauge, Section};

use crate::guard::{GuardBase, GuardFlags, GuardPath, GuardPolicy, Guarded};
use crate::{FloatBase, MultiFloat};

static ADAPT_OPS: Counter = Counter::new("core.adaptive.ops");
static ADAPT_ESCALATIONS: Counter = Counter::new("core.adaptive.escalations");
static ADAPT_ORACLE_FALLS: Counter = Counter::new("core.adaptive.oracle_falls");
static ADAPT_DEGRADED_OPS: Counter = Counter::new("core.adaptive.degraded_ops");
static ADAPT_RUNG: Gauge = Gauge::new("core.adaptive.rung");
static RUNG_N3: Section = Section::new("core.adaptive.n3");
static RUNG_N4: Section = Section::new("core.adaptive.n4");
static RUNG_ORACLE: Section = Section::new("core.adaptive.oracle");

/// One level of the escalation ladder, in climbing order.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rung {
    /// The base rung: the branch-free `N=2` kernel (~107-bit).
    #[default]
    N2,
    /// First escalation: widen to `N=3` (~161-bit) and rerun.
    N3,
    /// Second escalation: widen to `N=4` (~215-bit) and rerun.
    N4,
    /// Ladder top: the [`MpFloat`] software oracle at `N=4`-equivalent
    /// working precision. Always accepts.
    Oracle,
}

impl Rung {
    /// The full ladder, base rung first.
    pub const LADDER: [Rung; 4] = [Rung::N2, Rung::N3, Rung::N4, Rung::Oracle];

    /// Position on the ladder (0 = base rung).
    pub fn index(self) -> usize {
        match self {
            Rung::N2 => 0,
            Rung::N3 => 1,
            Rung::N4 => 2,
            Rung::Oracle => 3,
        }
    }

    /// The next rung up, saturating at the oracle.
    pub fn next(self) -> Rung {
        match self {
            Rung::N2 => Rung::N3,
            Rung::N3 => Rung::N4,
            Rung::N4 | Rung::Oracle => Rung::Oracle,
        }
    }

    /// The next rung down, saturating at the base rung (hysteresis decay).
    pub fn step_down(self) -> Rung {
        match self {
            Rung::Oracle => Rung::N4,
            Rung::N4 => Rung::N3,
            Rung::N3 | Rung::N2 => Rung::N2,
        }
    }

    /// Expansion term count for the finite rungs, `None` for the oracle.
    pub fn terms(self) -> Option<usize> {
        match self {
            Rung::N2 => Some(2),
            Rung::N3 => Some(3),
            Rung::N4 => Some(4),
            Rung::Oracle => None,
        }
    }
}

impl fmt::Display for Rung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Rung::N2 => "N2",
            Rung::N3 => "N3",
            Rung::N4 => "N4",
            Rung::Oracle => "oracle",
        })
    }
}

/// Configuration for an [`Adaptive`] engine's escalation ladder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EscalationPolicy {
    /// Highest rung the ladder may climb to. An attempt at this rung is
    /// accepted even if its detectors still trip (the caller sees the
    /// flags). Default: [`Rung::Oracle`].
    pub max_rung: Rung,
    /// Sticky-per-value mode: after an escalation the accepted rung stays
    /// resident and subsequent operations start there (amortizing bursts of
    /// hard inputs), decaying back down per `decay`. When `false`, every
    /// operation restarts at `N=2`. Default: `true`.
    pub sticky: bool,
    /// Hysteresis: number of consecutive clean operations at an elevated
    /// resident rung before it steps down one level. `0` disables decay
    /// (the rung stays pinned until [`Adaptive::reset`]). Default: `16`.
    pub decay: u32,
    /// Hard budget on total escalation steps. Once the cumulative count
    /// reaches the budget the engine latches *degraded* and every
    /// subsequent operation routes through plain
    /// [`GuardPolicy::OracleFallback`] — the pool's degrade-to-serial
    /// contract, applied to precision. `0` degrades immediately.
    /// Default: `u64::MAX` (unlimited).
    pub budget: u64,
    /// Head-residual tolerance in bits (see module docs). Default: `40`.
    pub tol_bits: u32,
}

impl Default for EscalationPolicy {
    fn default() -> Self {
        EscalationPolicy {
            max_rung: Rung::Oracle,
            sticky: true,
            decay: 16,
            budget: u64::MAX,
            tol_bits: 40,
        }
    }
}

/// Counters exported by [`Adaptive::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdaptiveStats {
    /// Total operations evaluated (including bypassed and degraded ones).
    pub ops: u64,
    /// Total escalation steps (rungs climbed) across all operations.
    pub escalations: u64,
    /// Operations whose ladder climbed all the way to the oracle rung.
    pub oracle_falls: u64,
    /// Operations evaluated after the budget latch (via `OracleFallback`).
    pub degraded_ops: u64,
}

impl AdaptiveStats {
    /// Escalation steps per operation — the headline workload metric.
    pub fn escalation_rate(&self) -> f64 {
        if self.ops == 0 {
            0.0
        } else {
            self.escalations as f64 / self.ops as f64
        }
    }
}

/// One adaptive evaluation result: the value plus ladder provenance.
#[derive(Clone, Copy, Debug)]
pub struct Evaluated<V> {
    /// The accepted result, narrowed to the engine's `N=2` value type.
    pub value: V,
    /// The rung that produced (and accepted) the value.
    pub rung: Rung,
    /// Detector findings from the accepted attempt ([`GuardFlags::NONE`]
    /// for the oracle rung; possibly still set when `max_rung` capped the
    /// climb).
    pub flags: GuardFlags,
    /// Rungs climbed while evaluating this operation (0 = first attempt
    /// accepted).
    pub escalations: u32,
}

impl<V> Evaluated<V> {
    /// True if this operation climbed at least one rung.
    pub fn escalated(&self) -> bool {
        self.escalations > 0
    }
}

/// The operations the ladder evaluates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Op {
    Add,
    Sub,
    Mul,
    Div,
    Recip,
    Sqrt,
}

/// An adaptive evaluation engine over `MultiFloat<T, 2>` values.
///
/// The engine is a small per-thread state machine (interior mutability via
/// [`Cell`]; deliberately not `Sync` — give each worker its own engine and
/// merge [`AdaptiveStats`] afterwards, exactly like the pool's per-chunk
/// partials).
///
/// ```
/// use mf_core::adaptive::{Adaptive, Rung};
/// use mf_core::F64x2;
///
/// let engine = Adaptive::<f64>::default();
/// // Clean inputs stay on the base rung…
/// let r = engine.checked_mul(F64x2::from(3.0), F64x2::from(7.0));
/// assert_eq!(r.rung, Rung::N2);
/// assert!(!r.escalated());
/// // …while a collapse-prone divisor climbs the ladder and still comes
/// // back with the right answer.
/// let tiny = F64x2::from(2.0f64.powi(-1021));
/// let q = engine.checked_div(F64x2::ONE, tiny);
/// assert!(q.escalated());
/// assert_eq!(q.value.to_f64(), 2.0f64.powi(1021));
/// ```
pub struct Adaptive<T: GuardBase = f64> {
    policy: EscalationPolicy,
    rung: Cell<Rung>,
    clean_streak: Cell<u32>,
    degraded: Cell<bool>,
    ops: Cell<u64>,
    escalations: Cell<u64>,
    oracle_falls: Cell<u64>,
    degraded_ops: Cell<u64>,
    flushed: Cell<AdaptiveStats>,
    _base: PhantomData<T>,
}

impl<T: GuardBase> Default for Adaptive<T> {
    fn default() -> Self {
        Adaptive::new(EscalationPolicy::default())
    }
}

impl<T: GuardBase> Adaptive<T> {
    /// Create an engine with the given policy, resident at the base rung.
    pub fn new(policy: EscalationPolicy) -> Self {
        Adaptive {
            policy,
            rung: Cell::new(Rung::N2),
            clean_streak: Cell::new(0),
            // A zero budget means the ladder is never allowed to climb:
            // degrade from the first op, exactly as an exhausted budget
            // would.
            degraded: Cell::new(policy.budget == 0),
            ops: Cell::new(0),
            escalations: Cell::new(0),
            oracle_falls: Cell::new(0),
            degraded_ops: Cell::new(0),
            flushed: Cell::new(AdaptiveStats::default()),
            _base: PhantomData,
        }
    }

    /// The policy this engine was built with.
    pub fn policy(&self) -> &EscalationPolicy {
        &self.policy
    }

    /// The resident rung (always [`Rung::N2`] in per-op mode).
    pub fn rung(&self) -> Rung {
        self.rung.get()
    }

    /// True once the escalation budget is exhausted and the engine has
    /// latched onto the `OracleFallback` degrade path.
    pub fn is_degraded(&self) -> bool {
        self.degraded.get()
    }

    /// Snapshot the engine's counters, flushing them to the telemetry
    /// registry as a side effect.
    pub fn stats(&self) -> AdaptiveStats {
        let now = AdaptiveStats {
            ops: self.ops.get(),
            escalations: self.escalations.get(),
            oracle_falls: self.oracle_falls.get(),
            degraded_ops: self.degraded_ops.get(),
        };
        if mf_telemetry::ENABLED {
            let prev = self.flushed.get();
            ADAPT_OPS.add(now.ops - prev.ops);
            ADAPT_ESCALATIONS.add(now.escalations - prev.escalations);
            ADAPT_ORACLE_FALLS.add(now.oracle_falls - prev.oracle_falls);
            ADAPT_DEGRADED_OPS.add(now.degraded_ops - prev.degraded_ops);
            self.flushed.set(now);
        }
        now
    }

    /// Clear the ladder state: resident rung back to `N=2`, clean-streak
    /// and degrade latch reset (re-arming the budget against the counters
    /// accumulated so far is the caller's business — construct a fresh
    /// engine to also zero the stats).
    pub fn reset(&self) {
        self.rung.set(Rung::N2);
        self.clean_streak.set(0);
        self.degraded
            .set(self.policy.budget == 0 || self.escalations.get() >= self.policy.budget);
        ADAPT_RUNG.set(0);
    }

    /// Adaptive addition.
    #[inline]
    pub fn checked_add(
        &self,
        a: MultiFloat<T, 2>,
        b: MultiFloat<T, 2>,
    ) -> Evaluated<MultiFloat<T, 2>> {
        self.eval(a, b, Op::Add)
    }

    /// Adaptive subtraction.
    #[inline]
    pub fn checked_sub(
        &self,
        a: MultiFloat<T, 2>,
        b: MultiFloat<T, 2>,
    ) -> Evaluated<MultiFloat<T, 2>> {
        self.eval(a, b, Op::Sub)
    }

    /// Adaptive multiplication.
    #[inline]
    pub fn checked_mul(
        &self,
        a: MultiFloat<T, 2>,
        b: MultiFloat<T, 2>,
    ) -> Evaluated<MultiFloat<T, 2>> {
        self.eval(a, b, Op::Mul)
    }

    /// Adaptive division.
    #[inline]
    pub fn checked_div(
        &self,
        a: MultiFloat<T, 2>,
        b: MultiFloat<T, 2>,
    ) -> Evaluated<MultiFloat<T, 2>> {
        self.eval(a, b, Op::Div)
    }

    /// Adaptive reciprocal.
    #[inline]
    pub fn checked_recip(&self, a: MultiFloat<T, 2>) -> Evaluated<MultiFloat<T, 2>> {
        self.eval(a, MultiFloat::ZERO, Op::Recip)
    }

    /// Adaptive square root.
    #[inline]
    pub fn checked_sqrt(&self, a: MultiFloat<T, 2>) -> Evaluated<MultiFloat<T, 2>> {
        self.eval(a, MultiFloat::ZERO, Op::Sqrt)
    }

    /// The hot entry: inlined into `checked_*` so the clean base-rung case
    /// costs one guarded kernel plus the head-residual check and an op
    /// count — everything else (special values, degrade, climbing, an
    /// elevated resident rung) drops into `#[cold]` outlined paths.
    ///
    /// The §4.4 special-value bypass is *not* tested up front: the guarded
    /// base kernel already propagates special values with the documented
    /// semantics, and [`residual_trip`] never trips on a non-finite
    /// quantity, so a special value either sails through here (same value
    /// the bypass would produce) or raises a flag and is re-examined by
    /// [`Self::eval_tripped`] before any ladder climb.
    #[inline(always)]
    fn eval(
        &self,
        a: MultiFloat<T, 2>,
        b: MultiFloat<T, 2>,
        op: Op,
    ) -> Evaluated<MultiFloat<T, 2>> {
        self.ops.set(self.ops.get() + 1);

        if self.degraded.get() {
            return self.eval_degraded(a, b, op);
        }
        if self.policy.sticky && self.rung.get() != Rung::N2 {
            return self.eval_resident(a, b, op);
        }

        let g = base_checked(a, b, op, GuardPolicy::FastOnly);
        if !g.flags.any() && !residual_trip(a.hi(), b.hi(), g.value.hi(), op, self.policy.tol_bits)
        {
            return Evaluated {
                value: g.value,
                rung: Rung::N2,
                flags: g.flags,
                escalations: 0,
            };
        }
        self.eval_tripped(a, b, op)
    }

    /// A base-rung attempt raised a flag or failed the residual bound:
    /// special values take their bypass result as-is (the oracle rung
    /// cannot represent them), everything else enters the ladder.
    #[cold]
    #[inline(never)]
    fn eval_tripped(
        &self,
        a: MultiFloat<T, 2>,
        b: MultiFloat<T, 2>,
        op: Op,
    ) -> Evaluated<MultiFloat<T, 2>> {
        let g = base_checked(a, b, op, GuardPolicy::FastOnly);
        if bypass(&a, &b, op) || self.policy.max_rung == Rung::N2 {
            if !bypass(&a, &b, op) {
                self.settle(Rung::N2, 0);
            }
            return Evaluated {
                value: g.value,
                rung: Rung::N2,
                flags: g.flags,
                escalations: 0,
            };
        }
        self.climb(a, b, op, Rung::N3, 1)
    }

    /// Sticky engine resident above the base rung: evaluate at the
    /// resident rung (special values still bypass the ladder).
    #[cold]
    #[inline(never)]
    fn eval_resident(
        &self,
        a: MultiFloat<T, 2>,
        b: MultiFloat<T, 2>,
        op: Op,
    ) -> Evaluated<MultiFloat<T, 2>> {
        if bypass(&a, &b, op) {
            return eval_bypass(a, b, op);
        }
        self.climb(a, b, op, self.rung.get().min(self.policy.max_rung), 0)
    }

    /// The ladder proper, entered only after the base rung tripped (or with
    /// a sticky resident rung above `N=2`). Outlined and cold so the clean
    /// path stays small enough to inline.
    #[cold]
    #[inline(never)]
    fn climb(
        &self,
        a: MultiFloat<T, 2>,
        b: MultiFloat<T, 2>,
        op: Op,
        start: Rung,
        mut climbs: u32,
    ) -> Evaluated<MultiFloat<T, 2>> {
        let mut rung = start;
        loop {
            let (value, flags, clean) = self.attempt(a, b, op, rung);
            if clean || rung >= self.policy.max_rung {
                self.settle(rung, climbs);
                return Evaluated {
                    value,
                    rung,
                    flags,
                    escalations: climbs,
                };
            }
            rung = rung.next();
            climbs += 1;
        }
    }

    /// Budget exhausted: hand the op to the guard layer's plain
    /// `OracleFallback` — no ladder, predictable cost, mirrors the pool's
    /// degrade-to-serial contract.
    #[cold]
    #[inline(never)]
    fn eval_degraded(
        &self,
        a: MultiFloat<T, 2>,
        b: MultiFloat<T, 2>,
        op: Op,
    ) -> Evaluated<MultiFloat<T, 2>> {
        if bypass(&a, &b, op) {
            return eval_bypass(a, b, op);
        }
        self.degraded_ops.set(self.degraded_ops.get() + 1);
        let g = base_checked(a, b, op, GuardPolicy::OracleFallback);
        let rung = if g.path == GuardPath::Oracle {
            Rung::Oracle
        } else {
            Rung::N2
        };
        Evaluated {
            value: g.value,
            rung,
            flags: g.flags,
            escalations: 0,
        }
    }

    /// One attempt at `rung`. Returns `(narrowed value, flags, clean)`.
    fn attempt(
        &self,
        a: MultiFloat<T, 2>,
        b: MultiFloat<T, 2>,
        op: Op,
        rung: Rung,
    ) -> (MultiFloat<T, 2>, GuardFlags, bool) {
        let tol = self.policy.tol_bits;
        match rung {
            Rung::N2 => {
                let g = base_checked(a, b, op, GuardPolicy::FastOnly);
                let trip = g.flags.any() || residual_trip(a.hi(), b.hi(), g.value.hi(), op, tol);
                (g.value, g.flags, !trip)
            }
            Rung::N3 => RUNG_N3.time(|| attempt_wide::<T, 3>(a, b, op, tol)),
            Rung::N4 => RUNG_N4.time(|| attempt_wide::<T, 4>(a, b, op, tol)),
            Rung::Oracle => RUNG_ORACLE.time(|| (oracle_eval(&a, &b, op), GuardFlags::NONE, true)),
        }
    }

    /// Post-acceptance ladder bookkeeping (cold unless escalating or at an
    /// elevated resident rung).
    fn settle(&self, rung: Rung, climbs: u32) {
        if climbs > 0 {
            let total = self.escalations.get() + climbs as u64;
            self.escalations.set(total);
            if rung == Rung::Oracle {
                self.oracle_falls.set(self.oracle_falls.get() + 1);
            }
            self.clean_streak.set(0);
            if self.policy.sticky {
                self.rung.set(rung);
                ADAPT_RUNG.set(rung.index() as i64);
            }
            if total >= self.policy.budget {
                self.degraded.set(true);
            }
        } else if self.policy.sticky && self.policy.decay > 0 && self.rung.get() != Rung::N2 {
            let streak = self.clean_streak.get() + 1;
            if streak >= self.policy.decay {
                let down = self.rung.get().step_down();
                self.rung.set(down);
                self.clean_streak.set(0);
                ADAPT_RUNG.set(down.index() as i64);
            } else {
                self.clean_streak.set(streak);
            }
        }
    }
}

impl<T: GuardBase> Drop for Adaptive<T> {
    fn drop(&mut self) {
        // Flush any unreported tallies to the registry.
        let _ = self.stats();
    }
}

/// §4.4 special-value handling, outlined from the hot path: run the guard
/// layer's own bypass and report the result as a non-escalated base-rung
/// evaluation.
#[cold]
#[inline(never)]
fn eval_bypass<T: GuardBase>(
    a: MultiFloat<T, 2>,
    b: MultiFloat<T, 2>,
    op: Op,
) -> Evaluated<MultiFloat<T, 2>> {
    let g = base_checked(a, b, op, GuardPolicy::FastOnly);
    Evaluated {
        value: g.value,
        rung: Rung::N2,
        flags: g.flags,
        escalations: 0,
    }
}

/// §4.4 special-value bypass predicate, mirroring the guard layer's own
/// checked_* early returns.
#[inline(always)]
fn bypass<T: GuardBase>(a: &MultiFloat<T, 2>, b: &MultiFloat<T, 2>, op: Op) -> bool {
    match op {
        Op::Add | Op::Sub | Op::Mul => !(a.is_finite() && b.is_finite()),
        Op::Div => !(a.is_finite() && b.is_finite()) || b.is_zero(),
        Op::Recip => !a.is_finite() || a.is_zero(),
        Op::Sqrt => !a.is_finite() || a.is_zero() || a.is_negative(),
    }
}

/// Dispatch one op through the guard layer at `N=2`.
#[inline(always)]
fn base_checked<T: GuardBase>(
    a: MultiFloat<T, 2>,
    b: MultiFloat<T, 2>,
    op: Op,
    policy: GuardPolicy,
) -> Guarded<MultiFloat<T, 2>> {
    match op {
        Op::Add => a.checked_add(b, policy),
        Op::Sub => a.checked_sub(b, policy),
        Op::Mul => a.checked_mul(b, policy),
        Op::Div => a.checked_div(b, policy),
        Op::Recip => a.checked_recip(policy),
        Op::Sqrt => a.checked_sqrt(policy),
    }
}

/// Per-operation head-residual check: is the result head consistent with a
/// naive base-precision evaluation? Same backward-style bound as
/// [`crate::guard::head_inconsistent`], returning `false` (not tripped)
/// whenever any quantity involved is non-finite — range escalation is the
/// pre/post detectors' job.
#[inline(always)]
fn residual_trip<T: FloatBase>(a_hi: T, b_hi: T, r_hi: T, op: Op, tol_bits: u32) -> bool {
    let (naive, reference, mag) = match op {
        Op::Add => (a_hi + b_hi, r_hi, a_hi.abs() + b_hi.abs()),
        Op::Sub => (a_hi - b_hi, r_hi, a_hi.abs() + b_hi.abs()),
        Op::Mul => {
            let p = a_hi * b_hi;
            (p, r_hi, p.abs())
        }
        // For the inverse ops, reconstruct the operand: q·b ≈ a, r·a ≈ 1,
        // s·s ≈ a. This judges the *result* without needing a second
        // division.
        Op::Div => {
            let p = r_hi * b_hi;
            (p, a_hi, a_hi.abs() + p.abs())
        }
        Op::Recip => {
            let p = r_hi * a_hi;
            (p, T::ONE, T::ONE + p.abs())
        }
        Op::Sqrt => {
            let p = r_hi * r_hi;
            (p, a_hi, a_hi.abs() + p.abs())
        }
    };
    if !naive.is_finite() || !reference.is_finite() || !mag.is_finite() {
        return false;
    }
    (naive - reference).abs() > mag * T::exp2i(-(tol_bits as i32))
}

/// Widen an `N=2` value to `N` terms by zero-padding (exact; renormalized
/// defensively so noncanonical inputs cannot poison the wider kernel's
/// invariants).
fn widen<T: FloatBase, const N: usize>(x: MultiFloat<T, 2>) -> MultiFloat<T, N> {
    let c2 = x.components();
    let mut c = [T::ZERO; N];
    c[0] = c2[0];
    c[1] = c2[1];
    MultiFloat::from_components_renorm(c)
}

/// Narrow an `N`-term value back to `N=2`: fold the tail low-to-high into
/// one term (error below the `N=2` representation precision), then
/// renormalize the pair.
fn narrow<T: FloatBase, const N: usize>(x: MultiFloat<T, N>) -> MultiFloat<T, 2> {
    let c = x.components();
    let mut tail = T::ZERO;
    for i in (1..N).rev() {
        tail = tail + c[i];
    }
    MultiFloat::from_components_renorm([c[0], tail])
}

/// One escalated attempt at a finite rung `N ∈ {3, 4}`: widen, rerun the
/// guarded kernel, re-judge, narrow.
fn attempt_wide<T: GuardBase, const N: usize>(
    a: MultiFloat<T, 2>,
    b: MultiFloat<T, 2>,
    op: Op,
    tol_bits: u32,
) -> (MultiFloat<T, 2>, GuardFlags, bool) {
    let wa = widen::<T, N>(a);
    let wb = widen::<T, N>(b);
    let g = match op {
        Op::Add => wa.checked_add(wb, GuardPolicy::FastOnly),
        Op::Sub => wa.checked_sub(wb, GuardPolicy::FastOnly),
        Op::Mul => wa.checked_mul(wb, GuardPolicy::FastOnly),
        Op::Div => wa.checked_div(wb, GuardPolicy::FastOnly),
        Op::Recip => wa.checked_recip(GuardPolicy::FastOnly),
        Op::Sqrt => wa.checked_sqrt(GuardPolicy::FastOnly),
    };
    let trip = g.flags.any() || residual_trip(a.hi(), b.hi(), g.value.hi(), op, tol_bits);
    (narrow(g.value), g.flags, !trip)
}

/// The ladder top: evaluate through [`MpFloat`] at `N=4`-equivalent working
/// precision and round back to `N=2` (correctly rounded; out-of-range
/// results saturate to ±inf through `from_mp`).
fn oracle_eval<T: GuardBase>(
    a: &MultiFloat<T, 2>,
    b: &MultiFloat<T, 2>,
    op: Op,
) -> MultiFloat<T, 2> {
    let prec = 4 * (T::PRECISION + 1) + 64;
    let am = a.to_mp(prec);
    match op {
        Op::Add => MultiFloat::from_mp(&am.add(&b.to_mp(prec), prec)),
        Op::Sub => MultiFloat::from_mp(&am.sub(&b.to_mp(prec), prec)),
        Op::Mul => MultiFloat::from_mp(&am.mul(&b.to_mp(prec), prec)),
        Op::Div => MultiFloat::from_mp(&am.div(&b.to_mp(prec), prec)),
        Op::Recip => {
            let one = MpFloat::from_f64(1.0, prec);
            MultiFloat::from_mp(&one.div(&am, prec))
        }
        Op::Sqrt => MultiFloat::from_mp(&am.sqrt(prec)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::F64x2;

    type Engine = Adaptive<f64>;

    fn lcg(s: &mut u64) -> u64 {
        *s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *s
    }

    /// A well-scaled random f64: mantissa in [1, 2), exponent in [-40, 40].
    fn rand_f64(s: &mut u64) -> f64 {
        let m = 1.0 + (lcg(s) >> 11) as f64 * 2.0f64.powi(-53);
        let e = (lcg(s) % 81) as i32 - 40;
        let sign = if lcg(s) & 1 == 0 { 1.0 } else { -1.0 };
        sign * m * 2.0f64.powi(e)
    }

    /// A random full (nonzero-tail) F64x2 from a product of two scalars.
    fn rand_val(s: &mut u64) -> F64x2 {
        F64x2::from_scalar(rand_f64(s)) * F64x2::from_scalar(rand_f64(s))
    }

    fn oracle_rel_err(got: F64x2, exact: &MpFloat) -> f64 {
        got.to_mp(512).rel_error_vs(exact)
    }

    #[test]
    fn clean_inputs_never_escalate() {
        let engine = Engine::default();
        let mut s = 0x5EED_u64;
        for i in 0..2000 {
            let a = rand_val(&mut s);
            let b = rand_val(&mut s);
            let r = match i % 6 {
                0 => engine.checked_add(a, b),
                1 => engine.checked_sub(a, b),
                2 => engine.checked_mul(a, b),
                3 => engine.checked_div(a, b),
                4 => engine.checked_recip(a),
                _ => engine.checked_sqrt(a.abs()),
            };
            assert_eq!(r.rung, Rung::N2, "op {i} left the base rung");
            assert!(!r.escalated());
            assert!(!r.flags.any());
        }
        let st = engine.stats();
        assert_eq!(st.ops, 2000);
        assert_eq!(st.escalations, 0);
        assert_eq!(st.oracle_falls, 0);
        assert_eq!(engine.rung(), Rung::N2);
        assert!(!engine.is_degraded());
    }

    #[test]
    fn tiny_divisor_boundary_climbs_to_oracle() {
        // pre_div trips for |b.hi| < 2^(TINY_EXP + 1) = 2^-1019: exactly at
        // the threshold is clean, one ulp below trips.
        // Build the ±1 ulp neighbours through the bit patterns — powi is
        // inexact this deep in the exponent range.
        let clean_head = 2.0f64.powi(-1019);
        let trip_heads = [
            2.0f64.powi(-1020),                               // 2^(MIN_EXP + 2)
            f64::from_bits(2.0f64.powi(-1020).to_bits() + 1), // +1 ulp
            f64::from_bits(clean_head.to_bits() - 1),         // 2^-1019 - 1 ulp
        ];
        for head in trip_heads {
            let engine = Engine::default();
            let r = engine.checked_div(F64x2::ONE, F64x2::from_scalar(head));
            assert!(r.escalated(), "head {head:e} did not escalate");
            assert_eq!(r.rung, Rung::Oracle, "range regimes trip at every N");
            let exact = MpFloat::from_f64(1.0, 512).div(&MpFloat::from_f64(head, 512), 512);
            assert!(oracle_rel_err(r.value, &exact) < 2.0f64.powi(-99));
            assert_eq!(engine.stats().oracle_falls, 1);
        }
        let engine = Engine::default();
        let r = engine.checked_div(F64x2::ONE, F64x2::from_scalar(clean_head));
        assert!(!r.escalated(), "2^-1019 is outside the tiny-divisor regime");
        assert_eq!(r.rung, Rung::N2);
    }

    #[test]
    fn huge_head_boundary_escalates_addsub() {
        // pre_addsub trips at head exponent MAX_EXP (2^1023); 2^1022 is clean.
        let engine = Engine::default();
        let big = F64x2::from_scalar(2.0f64.powi(1023));
        let r = engine.checked_add(big, F64x2::ONE);
        assert!(r.escalated());
        assert_eq!(r.rung, Rung::Oracle);
        assert!(r.value.is_finite());
        let exact =
            MpFloat::from_f64(2.0f64.powi(1023), 512).add(&MpFloat::from_f64(1.0, 512), 512);
        assert!(oracle_rel_err(r.value, &exact) < 2.0f64.powi(-99));

        let engine = Engine::default();
        let r = engine.checked_add(F64x2::from_scalar(2.0f64.powi(1022)), F64x2::ONE);
        assert!(!r.escalated());
        assert_eq!(r.rung, Rung::N2);
    }

    #[test]
    fn strict_tolerance_trips_residual_bound() {
        // A cancelling addition leaves the exact head (the surviving tails,
        // 3·2^-55 here) far below the naive sum's magnitude scale: the
        // backward-style bound tolerates that by design at tol 40, but a
        // deliberately strict tolerance (58 > P) makes it trip at every
        // finite rung (the head never moves with N), driving a flags-clean
        // escalation all the way to the oracle.
        let policy = EscalationPolicy {
            tol_bits: 58,
            ..EscalationPolicy::default()
        };
        let engine = Engine::new(policy);
        let a = F64x2::from_components([1.0, 2.0f64.powi(-54)]);
        let b = F64x2::from_components([-1.0, 2.0f64.powi(-55)]);
        let r = engine.checked_add(a, b);
        assert!(r.escalated(), "residual bound did not trip at tol 58");
        assert_eq!(r.rung, Rung::Oracle);
        assert!(
            !r.flags.any(),
            "escalation was residual-driven, not flag-driven"
        );
        assert_eq!(r.value.to_f64(), 3.0 * 2.0f64.powi(-55));
    }

    #[test]
    fn hysteresis_decay_steps_back_down() {
        let policy = EscalationPolicy {
            decay: 2,
            ..EscalationPolicy::default()
        };
        let engine = Engine::new(policy);
        let tiny = F64x2::from_scalar(2.0f64.powi(-1021));
        engine.checked_div(F64x2::ONE, tiny);
        assert_eq!(engine.rung(), Rung::Oracle);

        let mut s = 7u64;
        let mut clean = |n: u32| {
            for _ in 0..n {
                let r = engine.checked_mul(rand_val(&mut s), rand_val(&mut s));
                assert!(!r.escalated());
            }
        };
        clean(2);
        assert_eq!(engine.rung(), Rung::N4);
        clean(2);
        assert_eq!(engine.rung(), Rung::N3);
        clean(2);
        assert_eq!(engine.rung(), Rung::N2);
        clean(8);
        assert_eq!(engine.rung(), Rung::N2, "decay saturates at the base rung");
    }

    #[test]
    fn sticky_residency_starts_ops_at_elevated_rung() {
        let engine = Engine::default(); // sticky, decay 16
        let tiny = F64x2::from_scalar(2.0f64.powi(-1021));
        engine.checked_div(F64x2::ONE, tiny);
        assert_eq!(engine.rung(), Rung::Oracle);
        // The next clean op runs at the resident rung without escalating.
        let r = engine.checked_mul(F64x2::from(3.0), F64x2::from(5.0));
        assert_eq!(r.rung, Rung::Oracle);
        assert!(!r.escalated());
        assert_eq!(r.value.to_f64(), 15.0);
    }

    #[test]
    fn per_op_mode_restarts_at_base_rung() {
        let policy = EscalationPolicy {
            sticky: false,
            ..EscalationPolicy::default()
        };
        let engine = Engine::new(policy);
        let tiny = F64x2::from_scalar(2.0f64.powi(-1021));
        let r = engine.checked_div(F64x2::ONE, tiny);
        assert!(r.escalated());
        assert_eq!(engine.rung(), Rung::N2, "per-op mode has no residency");
        let r = engine.checked_mul(F64x2::from(3.0), F64x2::from(5.0));
        assert_eq!(r.rung, Rung::N2);
        assert!(!r.escalated());
    }

    #[test]
    fn budget_exhaustion_degrades_to_oracle_fallback() {
        let policy = EscalationPolicy {
            budget: 2,
            ..EscalationPolicy::default()
        };
        let engine = Engine::new(policy);
        let tiny = F64x2::from_scalar(2.0f64.powi(-1021));
        // One tiny-divisor op climbs three rungs — past the budget of 2.
        let r = engine.checked_div(F64x2::ONE, tiny);
        assert_eq!(r.escalations, 3);
        assert!(engine.is_degraded());

        // Degraded ops still recover through plain OracleFallback…
        let r = engine.checked_div(F64x2::ONE, tiny);
        assert_eq!(r.rung, Rung::Oracle);
        assert_eq!(r.value.to_f64(), 2.0f64.powi(1021));
        assert!(r.flags.contains(GuardFlags::PRE_RANGE));
        // …and clean ops run the fast path under the same policy.
        let r = engine.checked_mul(F64x2::from(3.0), F64x2::from(5.0));
        assert_eq!(r.rung, Rung::N2);
        assert_eq!(r.value.to_f64(), 15.0);

        let st = engine.stats();
        assert_eq!(st.degraded_ops, 2);
        assert_eq!(st.oracle_falls, 1);

        // A zero budget degrades from the first op.
        let engine = Engine::new(EscalationPolicy {
            budget: 0,
            ..EscalationPolicy::default()
        });
        assert!(engine.is_degraded());
        let r = engine.checked_div(F64x2::ONE, tiny);
        assert_eq!(r.rung, Rung::Oracle);
        assert_eq!(engine.stats().degraded_ops, 1);
    }

    #[test]
    fn max_rung_caps_the_climb() {
        let policy = EscalationPolicy {
            max_rung: Rung::N3,
            ..EscalationPolicy::default()
        };
        let engine = Engine::new(policy);
        let tiny = F64x2::from_scalar(2.0f64.powi(-1021));
        let r = engine.checked_div(F64x2::ONE, tiny);
        assert_eq!(r.rung, Rung::N3, "climb capped below the oracle");
        assert_eq!(r.escalations, 1);
        assert!(r.flags.any(), "capped result still reports its detectors");
        assert_eq!(engine.stats().oracle_falls, 0);
    }

    #[test]
    fn special_values_bypass_the_ladder() {
        let engine = Engine::default();
        let nan = F64x2::from_scalar(f64::NAN);
        let r = engine.checked_add(nan, F64x2::ONE);
        assert!(r.value.is_nan());
        assert_eq!(r.rung, Rung::N2);
        assert!(!r.escalated());

        let r = engine.checked_div(F64x2::ONE, F64x2::ZERO);
        assert!(!r.value.is_finite());
        assert!(!r.escalated());

        let r = engine.checked_sqrt(F64x2::from(-1.0));
        assert!(r.value.is_nan());
        assert!(!r.escalated());

        let r = engine.checked_recip(F64x2::ZERO);
        assert!(!r.value.is_finite());
        assert!(!r.escalated());

        let st = engine.stats();
        assert_eq!(st.ops, 4);
        assert_eq!(st.escalations, 0);
        assert!(!engine.is_degraded());
    }

    #[test]
    fn escalated_sqrt_and_recip_match_oracle() {
        let engine = Engine::default();
        let tiny = F64x2::from_scalar(2.0f64.powi(-1021));
        let r = engine.checked_sqrt(tiny);
        assert!(r.escalated());
        let exact = MpFloat::from_f64(2.0f64.powi(-1021), 512).sqrt(512);
        assert!(oracle_rel_err(r.value, &exact) < 2.0f64.powi(-99));

        // Fresh engine: the sqrt escalation above left the sticky rung
        // resident at the oracle, which would absorb this op's climb.
        let engine = Engine::default();
        let huge = F64x2::from_scalar(2.0f64.powi(1021));
        let r = engine.checked_recip(huge);
        assert!(r.escalated());
        let exact =
            MpFloat::from_f64(1.0, 512).div(&MpFloat::from_f64(2.0f64.powi(1021), 512), 512);
        assert!(oracle_rel_err(r.value, &exact) < 2.0f64.powi(-99));
    }

    #[test]
    fn widen_narrow_roundtrip_is_lossless_for_n2_values() {
        let mut s = 42u64;
        for _ in 0..200 {
            let x = rand_val(&mut s);
            let w3 = widen::<f64, 3>(x);
            let w4 = widen::<f64, 4>(x);
            assert_eq!(narrow(w3).components(), x.components());
            assert_eq!(narrow(w4).components(), x.components());
        }
    }

    #[test]
    fn rung_display_and_order() {
        assert_eq!(Rung::N2.to_string(), "N2");
        assert_eq!(Rung::Oracle.to_string(), "oracle");
        assert!(Rung::N2 < Rung::N3 && Rung::N3 < Rung::N4 && Rung::N4 < Rung::Oracle);
        assert_eq!(Rung::Oracle.next(), Rung::Oracle);
        assert_eq!(Rung::N2.step_down(), Rung::N2);
        for (i, r) in Rung::LADDER.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
    }
}
