//! Rounding to integral values at expansion precision.
//!
//! An expansion's integer part can need more than one component (e.g.
//! `2^80 + 1` is exactly representable in `F64x2` but not in `f64`), so
//! these operate componentwise with a correction pass rather than
//! delegating to the base type once.

use crate::{FloatBase, MultiFloat};

impl<T: FloatBase, const N: usize> MultiFloat<T, N> {
    /// Largest integral value `<= self`.
    pub fn floor(&self) -> Self {
        // Floor each component from the top; the first component whose
        // floor differs from itself cuts off everything below.
        let mut c = [T::ZERO; N];
        for i in 0..N {
            let f = self.c[i].floor();
            c[i] = f;
            if f != self.c[i] {
                // Components below are strictly smaller than 1 ulp of this
                // one; they can only matter if they are negative and this
                // component was already integral — not the case here.
                break;
            }
        }
        let candidate = Self::from_components_renorm(c);
        // Correction: truncating the tail can overshoot by one when the
        // discarded tail was negative and c was integral (e.g. 3 + (-eps)
        // floors to 2, but componentwise gives 3). One conditional step
        // fixes it — a data-dependent branch is acceptable here; rounding
        // to integer is not a hot kernel (and IEEE hardware does the same).
        if candidate > *self {
            candidate.sub_scalar(T::ONE)
        } else {
            candidate
        }
    }

    /// Smallest integral value `>= self`.
    pub fn ceil(&self) -> Self {
        self.neg().floor().neg()
    }

    /// Truncate toward zero.
    pub fn trunc(&self) -> Self {
        if self.is_negative() {
            self.ceil()
        } else {
            self.floor()
        }
    }

    /// Round half away from zero (like `f64::round`).
    pub fn round(&self) -> Self {
        let half = Self::from_scalar(T::HALF);
        if self.is_negative() {
            self.sub(half).ceil()
        } else {
            self.add(half).floor()
        }
    }

    /// Fractional part: `self - self.trunc()` (same sign as `self`).
    pub fn fract(&self) -> Self {
        self.sub(self.trunc())
    }

    /// True if the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.c.iter().all(|&x| x.trunc() == x)
    }

    /// IEEE-style remainder of `self / rhs` rounded toward zero
    /// (`fmod` semantics).
    pub fn fmod(&self, rhs: Self) -> Self {
        let q = self.div(rhs).trunc();
        self.sub(q.mul(rhs))
    }
}

#[cfg(test)]
mod tests {
    use crate::{F64x2, F64x4};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn matches_f64_for_single_component() {
        let mut rng = SmallRng::seed_from_u64(1500);
        for _ in 0..20_000 {
            let v: f64 = rng.gen_range(-1.0e6..1.0e6);
            let x = F64x2::from(v);
            assert_eq!(x.floor().to_f64(), v.floor(), "floor({v})");
            assert_eq!(x.ceil().to_f64(), v.ceil(), "ceil({v})");
            assert_eq!(x.trunc().to_f64(), v.trunc(), "trunc({v})");
            assert_eq!(x.round().to_f64(), v.round(), "round({v})");
            assert_eq!(x.fract().to_f64(), v.fract(), "fract({v})");
        }
    }

    #[test]
    fn multi_component_integers() {
        // 2^80 + 1 is an integer that f64 cannot hold.
        let big = F64x2::from(2.0f64.powi(80)).add_scalar(1.0);
        assert!(big.is_integer());
        assert_eq!(big.floor().components(), big.components());
        // 2^80 + 1.5 floors to 2^80 + 1.
        let x = F64x2::from(2.0f64.powi(80)).add_scalar(1.5);
        assert_eq!(x.floor().components(), big.components());
        assert_eq!(x.ceil().components(), big.add_scalar(1.0).components());
    }

    #[test]
    fn negative_tail_correction() {
        // 3 - eps: componentwise floor would give 3, true floor is 2.
        let x = F64x4::from(3.0).sub_scalar(2.0f64.powi(-70));
        assert_eq!(x.floor().to_f64(), 2.0);
        assert_eq!(x.ceil().to_f64(), 3.0);
        assert_eq!(x.trunc().to_f64(), 2.0);
        // -3 + eps
        let y = F64x4::from(-3.0).add_scalar(2.0f64.powi(-70));
        assert_eq!(y.floor().to_f64(), -3.0);
        assert_eq!(y.ceil().to_f64(), -2.0);
        assert_eq!(y.trunc().to_f64(), -2.0);
    }

    #[test]
    fn exact_integers_are_fixed_points() {
        let mut rng = SmallRng::seed_from_u64(1501);
        for _ in 0..5_000 {
            let v: f64 = rng.gen_range(-1.0e9..1.0e9f64).trunc();
            let x = F64x4::from(v);
            assert_eq!(x.floor().components(), x.components());
            assert_eq!(x.ceil().components(), x.components());
            assert_eq!(x.round().components(), x.components());
            assert!(x.fract().is_zero());
        }
    }

    #[test]
    fn fmod_basics() {
        let x = F64x2::from(7.5);
        let m = x.fmod(F64x2::from(2.0));
        assert!((m.to_f64() - 1.5).abs() < 1e-30);
        let y = F64x2::from(-7.5);
        let m = y.fmod(F64x2::from(2.0));
        assert!((m.to_f64() + 1.5).abs() < 1e-30, "fmod keeps dividend sign");
        // High-precision: fmod(10^20 + 0.125, 1) = 0.125 despite f64's
        // inability to represent the input.
        let big = F64x4::from(1e20).add_scalar(0.125);
        let m = big.fmod(F64x4::ONE);
        assert!((m.to_f64() - 0.125).abs() < 1e-40);
    }

    #[test]
    fn round_half_cases() {
        assert_eq!(F64x2::from(2.5).round().to_f64(), 3.0);
        assert_eq!(F64x2::from(-2.5).round().to_f64(), -3.0);
        assert_eq!(F64x2::from(2.4999999).round().to_f64(), 2.0);
        assert_eq!(F64x2::from(0.5).round().to_f64(), 1.0);
        assert_eq!(F64x2::from(-0.5).round().to_f64(), -1.0);
    }
}
