//! Conversions between `MultiFloat`, machine types, decimal strings, and
//! the arbitrary-precision oracle type [`MpFloat`].
//!
//! Decimal parsing and formatting route through `mf-mpsoft`, which performs
//! the (inherently branchy, allocation-heavy) base conversion exactly; this
//! keeps the arithmetic kernels pure while making I/O correctly rounded.

use crate::{FloatBase, MultiFloat};
use core::fmt;
use core::str::FromStr;
use mf_mpsoft::MpFloat;

impl<T: FloatBase, const N: usize> MultiFloat<T, N> {
    /// Working precision (bits) used for I/O conversions of this format.
    fn io_prec() -> u32 {
        N as u32 * (T::PRECISION + 1) + 64
    }

    /// Exact conversion to an [`MpFloat`] carrying at least `prec` bits
    /// (the expansion's value is a sum of machine floats, hence exactly
    /// representable).
    pub fn to_mp(&self, prec: u32) -> MpFloat {
        let mut acc = MpFloat::zero(prec.max(Self::io_prec()));
        for i in (0..N).rev() {
            let term = MpFloat::from_f64(self.c[i].to_f64(), 53);
            acc = acc.add(&term, prec.max(Self::io_prec()));
        }
        acc
    }

    /// Correctly rounded conversion from an [`MpFloat`]: peels off one
    /// base-precision component at a time (paper Eq. 6). Values beyond the
    /// base type's range overflow to `±inf` (without this check the peeling
    /// loop would emit an overlapping `[MAX, MAX, ..]` expansion, because
    /// `MpFloat::to_f64` saturates at `MAX`).
    pub fn from_mp(mp: &MpFloat) -> Self {
        if let Some(e) = mp.exp2() {
            let max_e = T::MAX_EXP as i64 + 1; // MAX lives in [2^MAX_EXP, 2^(MAX_EXP+1))
            let overflows = e > max_e
                || (e == max_e && mp.round(T::PRECISION).exp2().unwrap_or(i64::MIN) > max_e);
            if overflows {
                return Self::from_scalar(if mp.is_negative() {
                    T::NEG_INFINITY
                } else {
                    T::INFINITY
                });
            }
        }
        // Work at the input's own precision when it exceeds io_prec:
        // rounding up front would truncate sparse expansions (e.g.
        // [1.0, 2^-216, 2^-286]) whose component span is wider than any
        // fixed working precision.
        let prec = Self::io_prec().max(mp.precision());
        let mut c = [T::ZERO; N];
        let mut rem = mp.round(prec);
        for slot in c.iter_mut() {
            // Round the remainder to the base precision and subtract.
            let head = rem.round(T::PRECISION).to_f64();
            *slot = T::from_f64(head);
            if head == 0.0 {
                break;
            }
            rem = rem.sub(&MpFloat::from_f64(slot.to_f64(), T::PRECISION), prec);
        }
        MultiFloat { c }
    }

    /// Parse a decimal string, correctly rounded to this format.
    ///
    /// Accepts the non-finite spellings `Display`/[`Self::to_decimal_string`]
    /// emit — `inf`, `infinity`, `nan` in any case, with an optional sign —
    /// so parse/print roundtrips through special values.
    pub fn parse_decimal(s: &str) -> Result<Self, String> {
        let t = s.trim();
        let (neg, rest) = match t.as_bytes().first() {
            Some(b'-') => (true, &t[1..]),
            Some(b'+') => (false, &t[1..]),
            _ => (false, t),
        };
        if rest.eq_ignore_ascii_case("inf") || rest.eq_ignore_ascii_case("infinity") {
            return Ok(Self::from_scalar(if neg {
                T::NEG_INFINITY
            } else {
                T::INFINITY
            }));
        }
        if rest.eq_ignore_ascii_case("nan") {
            return Ok(Self::from_scalar(T::NAN));
        }
        // Scale the working precision with the input length: a decimal
        // spelling exact in binary (e.g. one printed by to_decimal_string)
        // carries ~3.33 bits per digit, far more than io_prec for long
        // strings, and rounding it early would break print/parse
        // roundtrips of sparse expansions.
        let digits = t.bytes().filter(u8::is_ascii_digit).count() as u32;
        let prec = Self::io_prec().max(digits * 10 / 3 + 64);
        let mp = MpFloat::from_decimal_str(t, prec)?;
        Ok(Self::from_mp(&mp))
    }

    /// Format with `digits` significant decimal digits. NaN and infinite
    /// values format as `NaN` / `inf` / `-inf`.
    pub fn to_decimal_string(&self, digits: usize) -> String {
        if self.is_nan() {
            return "NaN".to_string();
        }
        if !self.is_finite() {
            return if self.is_negative() { "-inf" } else { "inf" }.to_string();
        }
        let mp = self.to_mp(Self::io_prec());
        if mp.is_zero() {
            return "0.0".to_string();
        }
        mp.to_decimal_string(digits)
    }

    /// Number of decimal digits this format can meaningfully carry.
    pub fn decimal_digits() -> usize {
        ((Self::representation_precision_bits() as f64) * core::f64::consts::LOG10_2).floor()
            as usize
    }
}

impl<T: FloatBase, const N: usize> From<f64> for MultiFloat<T, N> {
    /// Exact when the base type is `f64`; correctly rounded for `f32`.
    fn from(x: f64) -> Self {
        if T::PRECISION >= 53 {
            Self::from_scalar(T::from_f64(x))
        } else {
            // Peel components so e.g. MultiFloat<f32, 2> holds f64 values
            // beyond single precision exactly.
            let mut c = [T::ZERO; N];
            let mut rem = x;
            for slot in c.iter_mut() {
                *slot = T::from_f64(rem);
                rem -= slot.to_f64();
                if rem == 0.0 {
                    break;
                }
            }
            MultiFloat {
                c: crate::renorm::renorm(c),
            }
        }
    }
}

impl<T: FloatBase, const N: usize> From<f32> for MultiFloat<T, N> {
    fn from(x: f32) -> Self {
        Self::from(x as f64)
    }
}

impl<T: FloatBase, const N: usize> From<i32> for MultiFloat<T, N> {
    fn from(x: i32) -> Self {
        Self::from(f64::from(x))
    }
}

impl<T: FloatBase, const N: usize> From<u32> for MultiFloat<T, N> {
    fn from(x: u32) -> Self {
        Self::from(f64::from(x))
    }
}

impl<T: FloatBase, const N: usize> From<i64> for MultiFloat<T, N> {
    /// Exact for every `i64` as long as the format carries >= 64 bits
    /// (otherwise correctly rounded).
    fn from(x: i64) -> Self {
        let hi = x >> 32; // fits f64 exactly
        let lo = x - (hi << 32);
        let hi_mf = Self::from((hi as f64) * 4294967296.0);
        hi_mf.add_scalar(T::from_f64(lo as f64))
    }
}

impl<T: FloatBase, const N: usize> From<u64> for MultiFloat<T, N> {
    fn from(x: u64) -> Self {
        let hi = x >> 32;
        let lo = x & 0xffff_ffff;
        let hi_mf = Self::from((hi as f64) * 4294967296.0);
        hi_mf.add_scalar(T::from_f64(lo as f64))
    }
}

impl<T: FloatBase, const N: usize> FromStr for MultiFloat<T, N> {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse_decimal(s)
    }
}

impl<T: FloatBase, const N: usize> fmt::Display for MultiFloat<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_nan() {
            return write!(f, "NaN");
        }
        if !self.is_finite() {
            return write!(f, "{}inf", if self.is_negative() { "-" } else { "" });
        }
        let digits = f.precision().unwrap_or_else(|| Self::decimal_digits());
        write!(f, "{}", self.to_decimal_string(digits.max(1)))
    }
}

#[cfg(test)]
mod tests {
    use crate::{F32x2, F64x2, F64x3, F64x4};
    use mf_mpsoft::MpFloat;

    #[test]
    fn parse_and_print_roundtrip() {
        let cases = [
            "3.14159265358979323846264338327950288419716939937510",
            "-1.4142135623730950488016887242096980785696718753769",
            "1e-40",
            "6.02214076e23",
            "0.1",
        ];
        for &s in &cases {
            let x: F64x4 = s.parse().unwrap();
            let printed = x.to_decimal_string(60);
            let back: F64x4 = printed.parse().unwrap();
            assert_eq!(x.components(), back.components(), "roundtrip {s}");
        }
    }

    #[test]
    fn parse_uses_full_precision() {
        // The first 32+ digits of pi need all of F64x2's precision.
        let pi: F64x2 = "3.14159265358979323846264338327950288".parse().unwrap();
        let c = pi.components();
        assert_eq!(c[0], core::f64::consts::PI);
        assert!(c[1] != 0.0, "second component must capture the residual");
        // Error vs the oracle below 2^-105.
        let exact =
            MpFloat::from_decimal_str("3.14159265358979323846264338327950288", 400).unwrap();
        assert!(pi.to_mp(400).rel_error_vs(&exact) < 2.0f64.powi(-105));
    }

    #[test]
    fn from_integers_exact() {
        let big: i64 = 0x7fff_ffff_ffff_fff3;
        let x = F64x2::from(big);
        let exact = MpFloat::from_i64(big, 80);
        assert!(x.to_mp(100) == exact, "i64 conversion must be exact");
        let u: u64 = u64::MAX - 7;
        let y = F64x2::from(u);
        let exact = MpFloat::from_u64(u, 80);
        assert!(y.to_mp(100) == exact);
        assert_eq!(F64x3::from(42i32).to_f64(), 42.0);
    }

    #[test]
    fn f32_base_holds_doubles() {
        let x = F32x2::from(1.0000001f64);
        // A single f32 can't hold 1.0000001 but two can get much closer.
        assert!((x.to_f64() - 1.0000001).abs() < 1e-10);
    }

    #[test]
    fn display_formats() {
        let x = F64x2::from(0.5);
        assert!(format!("{x}").starts_with("5.0"));
        assert!(format!("{x}").contains("e-1"));
        let nan = F64x2::from(f64::NAN);
        assert_eq!(format!("{nan}"), "NaN");
        let zero = F64x2::ZERO;
        assert_eq!(format!("{zero}"), "0.0");
        // Precision control.
        let pi: F64x3 = "3.14159265358979323846264338327950288".parse().unwrap();
        assert_eq!(format!("{pi:.5}"), "3.1416");
    }

    #[test]
    fn decimal_digit_capacity() {
        assert_eq!(F64x2::decimal_digits(), 32);
        assert_eq!(F64x4::decimal_digits(), 64);
    }

    #[test]
    fn non_finite_roundtrip() {
        for s in [
            "inf",
            "+inf",
            "-inf",
            "Infinity",
            "-INFINITY",
            "NaN",
            "nan",
            "-nan",
        ] {
            let x: F64x2 = s.parse().unwrap();
            let printed = format!("{x}");
            let back: F64x2 = printed.parse().unwrap();
            if x.is_nan() {
                assert!(back.is_nan(), "roundtrip {s}");
            } else {
                assert_eq!(x.to_f64(), back.to_f64(), "roundtrip {s}");
            }
        }
        assert_eq!("inf".parse::<F64x3>().unwrap().to_f64(), f64::INFINITY);
        assert_eq!("-inf".parse::<F64x3>().unwrap().to_f64(), f64::NEG_INFINITY);
        assert!("nan".parse::<F64x3>().unwrap().is_nan());
        // Still rejects non-numeric garbage.
        assert!("infx".parse::<F64x2>().is_err());
        assert!("".parse::<F64x2>().is_err());
    }

    #[test]
    fn parse_overflow_saturates_to_infinity() {
        // Out-of-range magnitudes must overflow to ±inf, not produce an
        // invalid [MAX, MAX, ..] expansion from the saturating peel loop.
        assert_eq!("1e999".parse::<F64x2>().unwrap().to_f64(), f64::INFINITY);
        assert_eq!(
            "-1e999".parse::<F64x4>().unwrap().to_f64(),
            f64::NEG_INFINITY
        );
        // Just inside the range stays finite.
        let big: F64x2 = "1.7e308".parse().unwrap();
        assert!(big.is_finite() && big.to_f64() > 1e308);
        // MAX itself parses back to MAX.
        let max_s = format!("{:e}", f64::MAX);
        let max: F64x2 = max_s.parse().unwrap();
        assert!(max.is_finite());
        assert_eq!(max.to_f64(), f64::MAX);
    }

    #[test]
    fn mp_roundtrip_preserves_sparse_expansions() {
        // The component span here (2^0 down to 2^-286) is wider than
        // io_prec; a fixed working precision would silently drop the last
        // component on the way back. Found by the conformance harness.
        let x = F64x4::from_components([
            -1.0,
            9.495567745759799e-66,              // 2^-216 region
            f64::from_bits(0x2e10000000000000), // 2^-286
            0.0,
        ]);
        let back = F64x4::from_mp(&x.to_mp(512));
        assert_eq!(back.components(), x.components());
    }

    #[test]
    fn from_mp_respects_rounding() {
        // A value needing more bits than the format: the expansion must be
        // the correctly rounded N-term representation.
        let mp =
            MpFloat::from_decimal_str("0.333333333333333333333333333333333333333", 500).unwrap();
        let x = F64x2::from_mp(&mp);
        let err = x.to_mp(500).rel_error_vs(&mp);
        assert!(err <= 2.0f64.powi(-106), "err 2^{:.1}", err.log2());
    }
}
