//! `mf-core`: branch-free extended-precision floating-point arithmetic on
//! floating-point expansions — the paper's primary contribution.
//!
//! [`MultiFloat<T, N>`] represents a high-precision number as an
//! **unevaluated sum** of `N` machine-precision values (`N = 1..=4`),
//! maintained *nonoverlapping* (paper Eq. 8): `|c[i]| <= ulp(c[i-1]) / 2`.
//! On an `f64` base this provides roughly quadruple (N=2, 103-bit), sextuple
//! (N=3, 156-bit), and octuple (N=4, 208-bit) precision; on an `f32` base it
//! extends single-precision hardware the same way (the paper's GPU
//! configuration, Figure 11).
//!
//! Every arithmetic operation is a **fixed, branch-free sequence** of
//! machine additions, [`mf_eft::two_sum`] / [`mf_eft::fast_two_sum`] /
//! [`mf_eft::two_prod`] gates — a *floating-point accumulation network*
//! (FPAN, paper §3). There are no data-dependent branches and no heap
//! allocation, which is what lets compilers vectorize these kernels across
//! array elements (see `mf-blas`) and what makes them an order of magnitude
//! faster than big-integer-based multiprecision libraries.
//!
//! # Quick start
//!
//! ```
//! use mf_core::F64x2; // ~32 significant decimal digits
//!
//! let a = F64x2::from(1.0) / F64x2::from(3.0);
//! let b = a * F64x2::from(3.0);
//! let err = (b - F64x2::ONE).abs();
//! assert!(err.to_f64() < 1e-31);
//! ```
//!
//! # Operation inventory (paper §4)
//!
//! | Operation | Algorithm | Where |
//! |-----------|-----------|-------|
//! | `+`, `-`  | addition FPANs (pairing layer → error absorption → renormalization) | [`addition`] |
//! | `*`       | pruned `TwoProd` expansion + commutative accumulation FPAN | [`multiplication`] |
//! | `/`, `recip` | division-free Newton–Raphson, optional Karp–Markstein fusion | [`division`] |
//! | `sqrt`, `rsqrt` | Newton–Raphson on 1/√a | [`sqrt`] |
//! | `exp`, `ln`, `powi`, … | extensions built on the above | [`math`] |
//!
//! # Semantics of special values
//!
//! Exactly as the paper's §4.4: `-0.0` is not distinguished from `+0.0`,
//! `±Inf` collapses to NaN through the error-free transformations, and the
//! usable magnitude range is that of the base type (no extended exponent
//! range). NaNs propagate.

pub mod adaptive;
pub mod addition;
pub mod cmp;
pub mod complex;
pub mod consts;
pub mod convert;
pub mod division;
pub mod guard;
pub mod math;
pub mod multiplication;
pub mod ops;
pub mod renorm;
pub mod rounding;
pub mod sqrt;
pub mod trig;

pub use adaptive::{Adaptive, AdaptiveStats, EscalationPolicy, Evaluated, Rung};
pub use guard::{GuardFlags, GuardPath, GuardPolicy, Guarded};
pub use mf_eft::FloatBase;

impl<T: FloatBase, const N: usize> Default for MultiFloat<T, N> {
    fn default() -> Self {
        Self::ZERO
    }
}

/// An extended-precision number: the unevaluated, nonoverlapping sum of `N`
/// base-precision components, most significant first.
///
/// `N` must be between 1 and 4; `MultiFloat<T, 1>` behaves as a transparent
/// wrapper over `T` (the paper's `MultiFloat<T, 1>` alias).
#[derive(Clone, Copy, Debug)]
pub struct MultiFloat<T: FloatBase, const N: usize> {
    /// Components, `c[0]` largest. Public to the crate; external users go
    /// through [`Self::components`] / [`Self::from_components_renorm`].
    pub(crate) c: [T; N],
}

/// Double-word `f64` expansion: ~106-bit significand (quadruple precision).
pub type F64x2 = MultiFloat<f64, 2>;
/// Triple-word `f64` expansion: ~159-bit significand (sextuple precision).
pub type F64x3 = MultiFloat<f64, 3>;
/// Quadruple-word `f64` expansion: ~212-bit significand (octuple precision).
pub type F64x4 = MultiFloat<f64, 4>;
/// Double-word `f32` expansion (the GPU substitution base type).
pub type F32x2 = MultiFloat<f32, 2>;
/// Triple-word `f32` expansion.
pub type F32x3 = MultiFloat<f32, 3>;
/// Quadruple-word `f32` expansion.
pub type F32x4 = MultiFloat<f32, 4>;

impl<T: FloatBase, const N: usize> MultiFloat<T, N> {
    const CHECK: () = assert!(N >= 1 && N <= 4, "MultiFloat supports N in 1..=4");

    /// Zero.
    pub const ZERO: Self = {
        #[allow(clippy::let_unit_value)]
        let _ = Self::CHECK;
        MultiFloat { c: [T::ZERO; N] }
    };

    /// One.
    pub const ONE: Self = {
        let mut c = [T::ZERO; N];
        c[0] = T::ONE;
        MultiFloat { c }
    };

    /// Construct from raw components **that are already nonoverlapping**
    /// (checked in debug builds). Use [`Self::from_components_renorm`] for
    /// arbitrary component values.
    pub fn from_components(c: [T; N]) -> Self {
        let out = MultiFloat { c };
        debug_assert!(
            out.is_nonoverlapping() || !out.is_finite(),
            "components are overlapping; use from_components_renorm"
        );
        out
    }

    /// Construct from arbitrary components, renormalizing them into a valid
    /// nonoverlapping expansion of their exact sum (up to `N`-term
    /// truncation error).
    pub fn from_components_renorm(c: [T; N]) -> Self {
        MultiFloat {
            c: renorm::renorm(c),
        }
    }

    /// The raw components, most significant first.
    pub fn components(&self) -> [T; N] {
        self.c
    }

    /// Most significant component (a base-precision approximation of the
    /// full value, correct to within half an ulp for valid expansions).
    pub fn hi(&self) -> T {
        self.c[0]
    }

    /// Lift a base value exactly.
    pub fn from_scalar(x: T) -> Self {
        let mut c = [T::ZERO; N];
        c[0] = x;
        MultiFloat { c }
    }

    /// Round to the base type (sums components from least significant).
    pub fn to_scalar(&self) -> T {
        // For a valid nonoverlapping expansion each tail term is below half
        // an ulp of the head, but summing low-to-high resolves the cases
        // where the tail nudges a rounding decision.
        let mut acc = T::ZERO;
        for i in (0..N).rev() {
            acc = acc + self.c[i];
        }
        acc
    }

    /// Round to `f64` (through the base type).
    pub fn to_f64(&self) -> f64 {
        // Sum in f64 from least significant for the f32-based variants.
        let mut acc = 0.0f64;
        for i in (0..N).rev() {
            acc += self.c[i].to_f64();
        }
        acc
    }

    /// True if any component is NaN.
    pub fn is_nan(&self) -> bool {
        self.c.iter().any(|x| x.is_nan())
    }

    /// True if all components are finite.
    pub fn is_finite(&self) -> bool {
        self.c.iter().all(|x| x.is_finite())
    }

    /// True if the value is exactly zero.
    pub fn is_zero(&self) -> bool {
        // For a valid expansion, zero head implies zero tail.
        self.c[0].is_zero()
    }

    /// True if the value is negative (sign of the leading component).
    pub fn is_negative(&self) -> bool {
        self.c[0] < T::ZERO
    }

    /// Check the nonoverlapping invariant (paper Eq. 8):
    /// `|c[i]| <= ulp(c[i-1]) / 2`, with zero components only followed by
    /// zeros being the canonical form (trailing zeros are permitted after
    /// any component).
    pub fn is_nonoverlapping(&self) -> bool {
        for i in 1..N {
            if self.c[i].is_zero() {
                continue;
            }
            if self.c[i - 1].is_zero() {
                return false; // nonzero term after a zero term
            }
            if self.c[i].abs() > self.c[i - 1].ulp() * T::HALF {
                return false;
            }
        }
        true
    }

    /// Negation (exact: negates every component).
    pub fn neg(&self) -> Self {
        let mut c = self.c;
        for x in &mut c {
            *x = -*x;
        }
        MultiFloat { c }
    }

    /// Absolute value (exact).
    pub fn abs(&self) -> Self {
        if self.is_negative() {
            self.neg()
        } else {
            *self
        }
    }

    /// Exact multiplication by a power of two of the base radix (scales each
    /// component; exact as long as no component over/underflows).
    pub fn scale_exp2(&self, e: i32) -> Self {
        let f = T::exp2i(e);
        let mut c = self.c;
        for x in &mut c {
            *x = *x * f;
        }
        MultiFloat { c }
    }

    /// Effective precision in bits of this format: `N*p + N - 1` (paper
    /// Eq. 7): 53→53, 2→107 usable (reported as 103 with error margins),
    /// etc. This is the *representation* precision; guaranteed operation
    /// accuracy is slightly lower (see the per-operation error bounds).
    pub const fn representation_precision_bits() -> u32 {
        N as u32 * T::PRECISION + N as u32 - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_and_one() {
        assert!(F64x2::ZERO.is_zero());
        assert_eq!(F64x4::ONE.to_f64(), 1.0);
        assert!(F64x3::ZERO.is_nonoverlapping());
        assert!(F64x3::ONE.is_nonoverlapping());
    }

    #[test]
    fn from_scalar_roundtrip() {
        for x in [0.0, 1.5, -2.25e10, 1e-300] {
            assert_eq!(F64x3::from_scalar(x).to_f64(), x);
        }
    }

    #[test]
    fn nonoverlap_checker() {
        // 1 + eps/2 overlaps? c1 = 2^-53 = ulp(1)/2: allowed (boundary).
        let ok = F64x2::from_components([1.0, 2.0f64.powi(-53)]);
        assert!(ok.is_nonoverlapping());
        let bad = MultiFloat::<f64, 2> {
            c: [1.0, 2.0f64.powi(-52)],
        };
        assert!(!bad.is_nonoverlapping());
        let bad2 = MultiFloat::<f64, 2> { c: [0.0, 1.0] };
        assert!(!bad2.is_nonoverlapping());
    }

    #[test]
    fn neg_abs() {
        let x = F64x2::from_components([-3.0, 2.0f64.powi(-55)]);
        assert!(x.is_negative());
        assert!(!x.abs().is_negative());
        assert_eq!(x.neg().hi(), 3.0);
    }

    #[test]
    fn scale_exp2_exact() {
        let x = F64x2::from_components([3.0, 2.0f64.powi(-52)]);
        let y = x.scale_exp2(10);
        assert_eq!(y.hi(), 3.0 * 1024.0);
        assert_eq!(y.components()[1], 2.0f64.powi(-42));
        let z = y.scale_exp2(-10);
        assert_eq!(z.components(), x.components());
    }

    #[test]
    fn representation_precision() {
        assert_eq!(F64x2::representation_precision_bits(), 107);
        assert_eq!(F64x3::representation_precision_bits(), 161);
        assert_eq!(F64x4::representation_precision_bits(), 215);
        assert_eq!(F32x4::representation_precision_bits(), 99);
    }

    #[test]
    fn nan_propagation() {
        let x = F64x2::from_scalar(f64::NAN);
        assert!(x.is_nan());
        assert!(!x.is_finite());
    }
}
