//! Trigonometric and hyperbolic functions at expansion precision.
//!
//! Extension features beyond the paper's core arithmetic (its §4 covers
//! `+ - * / sqrt`): everything here composes the branch-free kernels.
//!
//! Strategy for `sin`/`cos`: reduce modulo π/2 using the full-precision
//! constant (valid for |x| up to ~2^40 before the reduction itself runs
//! out of π digits; inputs beyond that return NaN rather than silently
//! losing precision), halve the residual three times, run both Taylor
//! series, and reconstruct with double-angle identities. Inverses use
//! Newton's method against the forward functions, seeded at machine
//! precision.

use crate::{FloatBase, MultiFloat};

/// Taylor terms for sin/cos after reduction to `|r| <= pi/4 / 8 ≈ 0.1`.
const fn trig_terms(n: usize) -> usize {
    match n {
        1 => 8,
        2 => 12,
        3 => 16,
        _ => 20,
    }
}

/// Halvings applied before the Taylor series (each costs ~2 bits of error
/// amplification through the double-angle reconstruction).
const TRIG_REDUCTION: usize = 3;

/// Newton iterations for inverse functions.
const fn inv_iters(n: usize) -> usize {
    match n {
        1 => 1,
        2 | 3 => 2,
        _ => 3,
    }
}

impl<T: FloatBase, const N: usize> MultiFloat<T, N> {
    /// Simultaneous sine and cosine (sharing the reduction).
    pub fn sin_cos(self) -> (Self, Self) {
        let hi = self.hi().to_f64();
        if !hi.is_finite() || hi.abs() > 2.0f64.powi(40) {
            // Argument reduction beyond 2^40 would need more pi digits
            // than the constants carry for the 4-term format.
            return (Self::from_scalar(T::NAN), Self::from_scalar(T::NAN));
        }
        // x = k * (pi/2) + r, |r| <= pi/4.
        let half_pi = Self::frac_pi_2();
        let kf = (hi / (core::f64::consts::PI / 2.0)).round();
        let k = (kf as i64).rem_euclid(4);
        let r = self.sub(half_pi.mul_scalar(T::from_f64(kf)));
        // Halve, run the series, reconstruct.
        let rs = r.scale_exp2(-(TRIG_REDUCTION as i32));
        let (mut s, mut c) = sin_cos_taylor(rs);
        for _ in 0..TRIG_REDUCTION {
            // sin 2t = 2 s c; cos 2t = 1 - 2 s^2
            let s2 = s.mul(c).mul_scalar(T::TWO);
            let c2 = Self::ONE.sub(s.sqr().mul_scalar(T::TWO));
            s = s2;
            c = c2;
        }
        // Quadrant fixup by k (a small, data-independent-count match).
        match k {
            0 => (s, c),
            1 => (c, s.neg()),
            2 => (s.neg(), c.neg()),
            _ => (c.neg(), s),
        }
    }

    /// Sine.
    pub fn sin(self) -> Self {
        self.sin_cos().0
    }

    /// Cosine.
    pub fn cos(self) -> Self {
        self.sin_cos().1
    }

    /// Tangent.
    pub fn tan(self) -> Self {
        let (s, c) = self.sin_cos();
        s.div(c)
    }

    /// Arctangent via Newton on `tan(y) = x`:
    /// `y <- y + cos(y) * (x * cos(y) - sin(y))` (quadratic convergence;
    /// the update is exactly `-(tan y - x) * cos^2 y`).
    pub fn atan(self) -> Self {
        let hi = self.hi().to_f64();
        if hi.is_nan() {
            return Self::from_scalar(T::NAN);
        }
        let mut y = Self::from(hi.atan());
        for _ in 0..inv_iters(N) {
            let (s, c) = y.sin_cos();
            let corr = c.mul(self.mul(c).sub(s));
            y = y.add(corr);
        }
        y
    }

    /// Two-argument arctangent with the usual quadrant conventions.
    pub fn atan2(self, x: Self) -> Self {
        let ys = self.hi().to_f64();
        let xs = x.hi().to_f64();
        if xs == 0.0 && ys == 0.0 {
            return Self::ZERO;
        }
        if xs > 0.0 {
            self.div(x).atan()
        } else if xs < 0.0 {
            let base = self.div(x).atan();
            if ys >= 0.0 {
                base.add(Self::pi())
            } else {
                base.sub(Self::pi())
            }
        } else if ys > 0.0 {
            Self::frac_pi_2()
        } else {
            Self::frac_pi_2().neg()
        }
    }

    /// Arcsine: `asin(x) = atan(x / sqrt(1 - x^2))` for |x| < 1, with the
    /// endpoints handled exactly.
    pub fn asin(self) -> Self {
        let hi = self.hi().to_f64();
        if hi.abs() > 1.0 {
            return Self::from_scalar(T::NAN);
        }
        let one_minus = Self::ONE.sub(self.sqr());
        if one_minus.is_zero() || one_minus.is_negative() {
            let hp = Self::frac_pi_2();
            return if hi < 0.0 { hp.neg() } else { hp };
        }
        self.div(one_minus.sqrt()).atan()
    }

    /// Arccosine: `acos(x) = pi/2 - asin(x)`.
    pub fn acos(self) -> Self {
        Self::frac_pi_2().sub(self.asin())
    }

    /// Hyperbolic sine. For small |x| uses the series form
    /// `(e^x - e^-x)/2` loses bits; we subtract exactly via `expm1`-style
    /// reconstruction from `e^x`: `sinh = (e^x - 1/e^x) / 2` still cancels,
    /// so for |x| < 0.5 a direct Taylor series is used instead.
    pub fn sinh(self) -> Self {
        let hi = self.hi().to_f64();
        if hi.abs() < 0.5 {
            // x + x^3/3! + x^5/5! + ...
            let x2 = self.sqr();
            let mut term = self;
            let mut sum = self;
            for k in 1..=trig_terms(N) {
                let denom = T::from_f64(((2 * k) * (2 * k + 1)) as f64);
                term = term.mul(x2).div_scalar(denom);
                sum = sum.add(term);
            }
            sum
        } else {
            let e = self.exp();
            e.sub(e.recip()).mul_scalar(T::HALF)
        }
    }

    /// Hyperbolic cosine: `(e^x + e^-x)/2` (no cancellation).
    pub fn cosh(self) -> Self {
        let e = self.exp();
        e.add(e.recip()).mul_scalar(T::HALF)
    }

    /// Hyperbolic tangent.
    pub fn tanh(self) -> Self {
        let hi = self.hi().to_f64();
        if hi.abs() > 200.0 {
            // Saturated far below the format's resolution.
            return if hi > 0.0 { Self::ONE } else { Self::ONE.neg() };
        }
        let e2 = self.mul_scalar(T::TWO).exp();
        e2.sub(Self::ONE).div(e2.add(Self::ONE))
    }

    /// Inverse hyperbolic sine: `ln(x + sqrt(x^2 + 1))`, stabilized for
    /// negative x via odd symmetry.
    pub fn asinh(self) -> Self {
        if self.is_negative() {
            return self.neg().asinh().neg();
        }
        self.add(self.sqr().add_scalar(T::ONE).sqrt()).ln()
    }

    /// Inverse hyperbolic cosine (x >= 1): `ln(x + sqrt(x^2 - 1))`.
    pub fn acosh(self) -> Self {
        self.add(self.sqr().sub_scalar(T::ONE).sqrt()).ln()
    }

    /// Inverse hyperbolic tangent (|x| < 1): `ln((1+x)/(1-x)) / 2`.
    pub fn atanh(self) -> Self {
        Self::ONE
            .add(self)
            .div(Self::ONE.sub(self))
            .ln()
            .mul_scalar(T::HALF)
    }
}

/// Both Taylor series on the reduced argument (`|r| <~ 0.1`).
fn sin_cos_taylor<T: FloatBase, const N: usize>(
    r: MultiFloat<T, N>,
) -> (MultiFloat<T, N>, MultiFloat<T, N>) {
    let r2 = r.sqr();
    // sin: r - r^3/3! + ...
    let mut term = r;
    let mut s = r;
    for k in 1..=trig_terms(N) {
        let denom = T::from_f64(((2 * k) * (2 * k + 1)) as f64);
        term = term.mul(r2).div_scalar(denom).neg();
        s = s.add(term);
    }
    // cos: 1 - r^2/2! + ...
    let mut term = MultiFloat::<T, N>::ONE;
    let mut c = MultiFloat::<T, N>::ONE;
    for k in 1..=trig_terms(N) {
        let denom = T::from_f64(((2 * k - 1) * (2 * k)) as f64);
        term = term.mul(r2).div_scalar(denom).neg();
        c = c.add(term);
    }
    (s, c)
}

#[cfg(test)]
mod tests {
    use crate::{F64x2, F64x3, F64x4};
    use mf_mpsoft::MpFloat;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn assert_close(got: &F64x4, want: &F64x4, bits: i32, ctx: &str) {
        let d = got.sub(*want).abs().to_f64();
        let scale = want.abs().to_f64().max(2.0f64.powi(-60));
        assert!(
            d / scale <= 2.0f64.powi(-bits),
            "{ctx}: rel err 2^{:.1} (bound 2^-{bits})",
            (d / scale).log2()
        );
    }

    #[test]
    fn pythagorean_identity() {
        let mut rng = SmallRng::seed_from_u64(1400);
        for _ in 0..150 {
            let x = F64x4::from(rng.gen_range(-50.0..50.0));
            let (s, c) = x.sin_cos();
            let one = s.sqr().add(c.sqr());
            assert_close(&one, &F64x4::ONE, 195, &format!("sin^2+cos^2 at {x}"));
        }
    }

    #[test]
    fn known_values() {
        let pi = F64x4::pi();
        // sin(pi/6) = 1/2
        let s = pi.div_scalar(6.0).sin();
        assert_close(&s, &F64x4::from(0.5), 196, "sin(pi/6)");
        // cos(pi/3) = 1/2
        let c = pi.div_scalar(3.0).cos();
        assert_close(&c, &F64x4::from(0.5), 196, "cos(pi/3)");
        // sin(pi/4) = cos(pi/4) = 1/sqrt(2)
        let (s, c) = pi.div_scalar(4.0).sin_cos();
        assert_close(&s, &F64x4::frac_1_sqrt_2(), 196, "sin(pi/4)");
        assert_close(&c, &F64x4::frac_1_sqrt_2(), 196, "cos(pi/4)");
        // tan(pi/4) = 1
        assert_close(&pi.div_scalar(4.0).tan(), &F64x4::ONE, 193, "tan(pi/4)");
        // sin(pi) ~ 0 far below the format.
        assert!(
            pi.sin().abs().to_f64() < 1e-60,
            "sin(pi) = {:e}",
            pi.sin().to_f64()
        );
    }

    #[test]
    fn angle_addition_identity() {
        let mut rng = SmallRng::seed_from_u64(1401);
        for _ in 0..80 {
            let a = F64x4::from(rng.gen_range(-3.0..3.0));
            let b = F64x4::from(rng.gen_range(-3.0..3.0));
            let (sa, ca) = a.sin_cos();
            let (sb, cb) = b.sin_cos();
            let lhs = a.add(b).sin();
            let rhs = sa.mul(cb).add(ca.mul(sb));
            assert_close(&lhs, &rhs, 192, &format!("sin(a+b) at a={a} b={b}"));
        }
    }

    #[test]
    fn atan_inverts_tan() {
        let mut rng = SmallRng::seed_from_u64(1402);
        for _ in 0..80 {
            let x = F64x4::from(rng.gen_range(-1.4..1.4));
            let back = x.tan().atan();
            assert_close(&back, &x, 190, &format!("atan(tan(x)) at {x}"));
        }
        // atan(1) = pi/4.
        assert_close(
            &F64x4::ONE.atan(),
            &F64x4::pi().div_scalar(4.0),
            196,
            "atan(1)",
        );
    }

    #[test]
    fn machin_formula_through_public_api() {
        // pi = 16 atan(1/5) - 4 atan(1/239), all in F64x4 arithmetic.
        // (1/5 must be the full-precision fifth, not the f64 literal 0.2!)
        let a5 = F64x4::ONE.div_scalar(5.0).atan();
        let a239 = F64x4::ONE.div_scalar(239.0).atan();
        let pi = a5.mul_scalar(16.0).sub(a239.mul_scalar(4.0));
        assert_close(&pi, &F64x4::pi(), 196, "Machin");
    }

    #[test]
    fn asin_acos_range_and_identity() {
        let mut rng = SmallRng::seed_from_u64(1403);
        for _ in 0..60 {
            let x = F64x4::from(rng.gen_range(-0.99..0.99));
            let s = x.asin();
            assert_close(&s.sin(), &x, 190, &format!("sin(asin(x)) at {x}"));
            let sum = x.asin().add(x.acos());
            assert_close(&sum, &F64x4::frac_pi_2(), 192, "asin+acos");
        }
        assert_close(&F64x4::ONE.asin(), &F64x4::frac_pi_2(), 200, "asin(1)");
    }

    #[test]
    fn atan2_quadrants() {
        let one = F64x4::ONE;
        let q1 = one.atan2(one);
        assert_close(&q1, &F64x4::pi().div_scalar(4.0), 196, "atan2(1,1)");
        let q2 = one.atan2(one.neg());
        assert_close(&q2, &F64x4::pi().mul_scalar(0.75), 196, "atan2(1,-1)");
        let q3 = one.neg().atan2(one.neg());
        assert_close(&q3, &F64x4::pi().mul_scalar(-0.75), 196, "atan2(-1,-1)");
        let up = one.atan2(F64x4::ZERO);
        assert_close(&up, &F64x4::frac_pi_2(), 200, "atan2(1,0)");
    }

    #[test]
    fn hyperbolic_identities() {
        let mut rng = SmallRng::seed_from_u64(1404);
        for _ in 0..60 {
            let x = F64x4::from(rng.gen_range(-5.0..5.0));
            // cosh^2 - sinh^2 = 1
            let one = x.cosh().sqr().sub(x.sinh().sqr());
            assert_close(&one, &F64x4::ONE, 180, &format!("cosh2-sinh2 at {x}"));
            // tanh = sinh/cosh
            let t = x.tanh();
            let ratio = x.sinh().div(x.cosh());
            assert_close(&t, &ratio, 185, &format!("tanh at {x}"));
        }
    }

    #[test]
    fn inverse_hyperbolics_roundtrip() {
        let mut rng = SmallRng::seed_from_u64(1405);
        for _ in 0..60 {
            let x = F64x4::from(rng.gen_range(-10.0..10.0));
            assert_close(&x.sinh().asinh(), &x, 180, &format!("asinh(sinh) at {x}"));
            let y = F64x4::from(rng.gen_range(-0.95..0.95));
            assert_close(&y.tanh().atanh(), &y, 175, &format!("atanh(tanh) at {y}"));
            let z = F64x4::from(rng.gen_range(1.1..20.0));
            assert_close(&z.cosh().acosh().cosh(), &z.cosh(), 170, "acosh roundtrip");
        }
    }

    #[test]
    fn small_sinh_keeps_precision() {
        // The series path: sinh(1e-10) must be accurate to the format, not
        // to the cancellation floor of (e^x - e^-x)/2.
        let x = F64x3::from(1e-10);
        let s = x.sinh();
        // sinh(x) = x + x^3/3! + x^5/5! + O(x^7); the x^7 term (~2e-74)
        // sits far below the F64x3 bound.
        let expect = x
            .add(x.powi(3).div_scalar(6.0))
            .add(x.powi(5).div_scalar(120.0));
        let d = s.sub(expect).abs().to_f64();
        assert!(d <= 1e-10 * 2.0f64.powi(-148), "d = {d:e}");
    }

    #[test]
    fn trig_against_oracle_digits() {
        // sin(1) to 60 digits (reference: independently computable; we pin
        // the value against the F64x2/F64x3/F64x4 agreement plus f64).
        let s4 = F64x4::ONE.sin();
        let s3 = F64x3::ONE.sin();
        let s2 = F64x2::ONE.sin();
        assert!((s4.to_f64() - 1.0f64.sin()).abs() < 1e-15);
        // Successive widths agree to the narrower width's precision.
        let d23 = s2.to_mp(300).rel_error_vs(&s3.to_mp(300));
        let d34 = s3.to_mp(300).rel_error_vs(&s4.to_mp(300));
        assert!(d23 <= 2.0f64.powi(-97), "2v3: 2^{:.1}", d23.log2());
        assert!(d34 <= 2.0f64.powi(-149), "3v4: 2^{:.1}", d34.log2());
        let _ = MpFloat::zero(60);
    }

    #[test]
    fn domain_errors_are_nan() {
        assert!(F64x2::from(2.0).asin().is_nan());
        assert!(F64x2::from(-2.0).asin().is_nan());
        assert!(F64x2::from(f64::NAN).sin().is_nan());
        assert!(F64x2::from(1e100).sin().is_nan(), "out-of-range reduction");
    }
}
