//! Mathematical constants at full expansion precision.
//!
//! Each constant is stored as an 80-significant-digit decimal literal
//! (≈ 265 bits, comfortably above the 215-bit octuple format), parsed
//! through the exact `mf-mpsoft` base converter on first use and cached per
//! monomorphization. The cached form is the component array as `f64`
//! values, which represents both `f64`- and `f32`-based expansions exactly.
//!
//! The literals themselves are independently validated by the workspace
//! test-suite: `π` against a Machin-formula computation carried out in
//! `MpFloat` arithmetic, `√2` by squaring, `e`/`ln 2` through the
//! exp/ln identities in [`crate::math`].

use crate::{FloatBase, MultiFloat};
use core::any::TypeId;
use std::collections::HashMap;
use std::sync::{OnceLock, RwLock};

pub const PI_STR: &str =
    "3.1415926535897932384626433832795028841971693993751058209749445923078164062862089986280348253421170679";
pub const TAU_STR: &str =
    "6.2831853071795864769252867665590057683943387987502116419498891846156328125724179972560696506842341358";
pub const FRAC_PI_2_STR: &str =
    "1.5707963267948966192313216916397514420985846996875529104874722961539082031431044993140174126710585340";
pub const E_STR: &str =
    "2.7182818284590452353602874713526624977572470936999595749669676277240766303535475945713821785251664274";
pub const LN_2_STR: &str =
    "0.69314718055994530941723212145817656807550013436025525412068000949339362196969471560586332699641868754";
pub const LN_10_STR: &str =
    "2.3025850929940456840179914546843642076011014886287729760333279009675726096773524802359972050895982983";
pub const LOG2_E_STR: &str =
    "1.4426950408889634073599246810018921374266459541529859341354494069311092191811850798855266228935063445";
pub const LOG10_E_STR: &str =
    "0.43429448190325182765112891891660508229439700580366656611445378316586464920887077472922494933843174832";
pub const SQRT_2_STR: &str =
    "1.4142135623730950488016887242096980785696718753769480731766797379907324784621070388503875343276415727";
pub const FRAC_1_SQRT_2_STR: &str =
    "0.70710678118654752440084436210484903928483593768847403658833986899536623923105351942519376716382078636";

/// Cache key: base type, width, and the literal's address (each named
/// constant has a distinct `&'static str`).
type ConstKey = (TypeId, usize, usize);
type ConstCache = RwLock<HashMap<ConstKey, [f64; 4]>>;

/// Process-wide cache of parsed constants.
fn cache() -> &'static ConstCache {
    static CACHE: OnceLock<ConstCache> = OnceLock::new();
    CACHE.get_or_init(|| RwLock::new(HashMap::new()))
}

/// Parse (or fetch from cache) a decimal constant as an expansion.
pub fn parse_cached<T: FloatBase, const N: usize>(lit: &'static str) -> MultiFloat<T, N> {
    let key = (TypeId::of::<T>(), N, lit.as_ptr() as usize);
    if let Some(c64) = cache().read().unwrap().get(&key) {
        let mut c = [T::ZERO; N];
        for i in 0..N {
            c[i] = T::from_f64(c64[i]);
        }
        return MultiFloat::from_components(c);
    }
    let parsed: MultiFloat<T, N> =
        MultiFloat::parse_decimal(lit).unwrap_or_else(|e| panic!("invalid constant literal: {e}"));
    let mut c64 = [0.0f64; 4];
    for i in 0..N {
        c64[i] = parsed.components()[i].to_f64();
    }
    cache().write().unwrap().insert(key, c64);
    parsed
}

impl<T: FloatBase, const N: usize> MultiFloat<T, N> {
    /// Archimedes' constant π.
    pub fn pi() -> Self {
        parse_cached(PI_STR)
    }
    /// 2π.
    pub fn tau() -> Self {
        parse_cached(TAU_STR)
    }
    /// π/2.
    pub fn frac_pi_2() -> Self {
        parse_cached(FRAC_PI_2_STR)
    }
    /// Euler's number e.
    pub fn e() -> Self {
        parse_cached(E_STR)
    }
    /// Natural logarithm of 2.
    pub fn ln_2() -> Self {
        parse_cached(LN_2_STR)
    }
    /// Natural logarithm of 10.
    pub fn ln_10() -> Self {
        parse_cached(LN_10_STR)
    }
    /// log2(e) = 1/ln 2.
    pub fn log2_e() -> Self {
        parse_cached(LOG2_E_STR)
    }
    /// log10(e) = 1/ln 10.
    pub fn log10_e() -> Self {
        parse_cached(LOG10_E_STR)
    }
    /// √2.
    pub fn sqrt_2() -> Self {
        parse_cached(SQRT_2_STR)
    }
    /// 1/√2.
    pub fn frac_1_sqrt_2() -> Self {
        parse_cached(FRAC_1_SQRT_2_STR)
    }
}

#[cfg(test)]
mod tests {
    use crate::{F32x4, F64x2, F64x3, F64x4};
    use mf_mpsoft::MpFloat;

    #[test]
    fn heads_match_std() {
        assert_eq!(F64x4::pi().hi(), core::f64::consts::PI);
        assert_eq!(F64x4::e().hi(), core::f64::consts::E);
        assert_eq!(F64x4::ln_2().hi(), core::f64::consts::LN_2);
        assert_eq!(F64x4::sqrt_2().hi(), core::f64::consts::SQRT_2);
        assert_eq!(F64x2::tau().hi(), core::f64::consts::TAU);
    }

    #[test]
    fn sqrt2_squares_to_two() {
        let two = F64x4::sqrt_2().sqr();
        let err = two.to_mp(400).rel_error_vs(&MpFloat::from_f64(2.0, 53));
        assert!(err <= 2.0f64.powi(-208), "err 2^{:.1}", err.log2());
        // And sqrt(2) computed by the library matches the literal.
        let computed = F64x4::from(2.0).sqrt();
        let lit = F64x4::sqrt_2();
        let diff = computed.sub(lit).abs().to_f64();
        assert!(diff <= 2.0f64.powi(-203), "diff {diff:e}");
    }

    #[test]
    fn pi_matches_machin_formula() {
        // π = 16·atan(1/5) − 4·atan(1/239), computed in 400-bit MpFloat
        // arithmetic with a Taylor series — fully independent of the
        // literal.
        let prec = 400;
        let atan_inv = |q: u64| -> MpFloat {
            // atan(1/q) = Σ (-1)^k / ((2k+1) q^(2k+1))
            let qq = MpFloat::from_u64(q * q, prec);
            let mut term = MpFloat::from_u64(1, prec).div(&MpFloat::from_u64(q, prec), prec);
            let mut sum = term.clone();
            let mut k = 1u64;
            loop {
                term = term.div(&qq, prec);
                let add = term.div(&MpFloat::from_u64(2 * k + 1, prec), prec);
                sum = if k % 2 == 1 {
                    sum.sub(&add, prec)
                } else {
                    sum.add(&add, prec)
                };
                if add.abs().to_f64() < 1e-135 {
                    break;
                }
                k += 1;
            }
            sum
        };
        let pi = atan_inv(5)
            .mul(&MpFloat::from_u64(16, prec), prec)
            .sub(&atan_inv(239).mul(&MpFloat::from_u64(4, prec), prec), prec);
        let lit = F64x4::pi().to_mp(400);
        assert!(lit.rel_error_vs(&pi) <= 2.0f64.powi(-214));
    }

    #[test]
    fn reciprocal_identities() {
        // 1/√2 literal == recip of √2 literal to full precision.
        let a = F64x3::frac_1_sqrt_2();
        let b = F64x3::sqrt_2().recip();
        assert!(a.sub(b).abs().to_f64() <= 2.0f64.powi(-152));
        // ln10 * log10(e) == 1.
        let p = F64x3::ln_10().mul(F64x3::log10_e());
        assert!(p.sub(F64x3::ONE).abs().to_f64() <= 2.0f64.powi(-150));
        // ln2 * log2(e) == 1.
        let p = F64x4::ln_2().mul(F64x4::log2_e());
        assert!(p.sub(F64x4::ONE).abs().to_f64() <= 2.0f64.powi(-200));
    }

    #[test]
    fn f32_base_constants() {
        let pi = F32x4::pi();
        assert!(pi.is_nonoverlapping());
        assert!((pi.to_f64() - core::f64::consts::PI).abs() < 1e-15);
    }

    #[test]
    fn cache_returns_identical_values() {
        let a = F64x2::pi();
        let b = F64x2::pi();
        assert_eq!(a.components(), b.components());
    }
}
